/**
 * @file
 * Parallel histogram with fine-grained remote increments -- the
 * communication style the J-Machine was built for: every sample
 * becomes a tiny 2-word message to the node owning its bucket, with
 * no batching (compare the paper's radix-sort reorder phase).
 *
 *   $ ./build/examples/histogram [nodes] [samples-per-node]
 */

#include <cstdio>
#include <cstdlib>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

using namespace jmsim;

namespace
{

const char *kHistogram = R"(
.equ TBL, 1024
.equ HDATA, 2048
; params: +0 samples per node
; state:  +8 markers received, +9 spill, +10 PRNG, +11 -log2(nodes)
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
.region nnr
    LDL A0, seg(TBL, 544)
    MOVEI R3, 0
mk_addr:
    MOVE R0, R3
    CALL A2, jos_nnr
    LDL R1, #32
    ADD R1, R1, R3
    STX [A0+R1], R0
    ADDI R3, R3, #1
    GETSP R1, NODES
    LT R1, R3, R1
    BT R1, mk_addr
.region comp
    ; -log2(nodes)
    GETSP R0, NODES
    MOVEI R1, 0
lg:
    LEI R2, R0, #1
    BT R2, lg_done
    LSHI R0, R0, #-1
    ADDI R1, R1, #-1
    BR lg
lg_done:
    ST [A1+11], R1
    ; PRNG seed from the node id
    GETSP R0, NODEID
    LDL R1, #2654435761
    MUL R0, R0, R1
    ORI R0, R0, #1
    ST [A1+10], R0
    MOVEI R2, 0              ; sample cursor
sample_loop:
    LD R0, [A1+0]
    LT R1, R2, R0
    BF R1, samples_done
    LD R0, [A1+10]
    LSHI R1, R0, #13
    XOR R0, R0, R1
    LSHI R1, R0, #-15
    XOR R0, R0, R1
    LSHI R1, R0, #5
    XOR R0, R0, R1
    ST [A1+10], R0
    ; owner = bucket & (N-1); local index = (bucket >> log2 N) & 63
    GETSP R1, NODES
    ADDI R1, R1, #-1
    AND R3, R0, R1
    LD R1, [A1+11]
    LSH R0, R0, R1
    LDL R1, #63
    AND R0, R0, R1
    ST [A1+9], R2
    LDL A0, seg(TBL, 544)
    LDL R2, #32
    ADD R2, R2, R3
    LDX R3, [A0+R2]
.region comm
    SEND0 R3
    LDL R1, hdr(bump, 2)
    SEND20E R1, R0
.region comp
    LD R2, [A1+9]
    ADDI R2, R2, #1
    BR sample_loop
samples_done:
    ; one completion marker to every node (FIFO behind the samples)
    MOVEI R2, 0
mark_loop:
    GETSP R0, NODES
    LT R0, R2, R0
    BF R0, wait_done
    LDL A0, seg(TBL, 544)
    LDL R0, #32
    ADD R0, R0, R2
    LDX R3, [A0+R0]
.region comm
    SEND0 R3
    LDL R1, hdr(marker, 1)
    SEND0E R1
.region comp
    ADDI R2, R2, #1
    BR mark_loop
wait_done:
.region sync
wd:
    LD R0, [A1+8]
    GETSP R1, NODES
    LT R0, R0, R1
    BT R0, wd
.region comp
    ; total my 64 local buckets and report
    LDL A0, seg(HDATA, 64)
    MOVEI R0, 0
    MOVEI R1, 0
sum:
    LDX R2, [A0+R1]
    ADD R0, R0, R2
    ADDI R1, R1, #1
    LDL R2, #64
    LT R2, R1, R2
    BT R2, sum
    OUT R0
    HALT

bump:                        ; [hdr, local bucket]
    LDL A0, seg(HDATA, 64)
    LD R0, [A3+1]
    LDX R1, [A0+R0]
    ADDI R1, R1, #1
    STX [A0+R0], R1
    SUSPEND

marker:
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+8]
    ADDI R0, R0, #1
    ST [A1+8], R0
    SUSPEND
)";

} // namespace

int
main(int argc, char **argv)
{
    const unsigned nodes = argc > 1 ? std::atoi(argv[1]) : 16;
    const unsigned samples = argc > 2 ? std::atoi(argv[2]) : 500;

    Program prog = assemble(jos::withKernel("histogram.jasm", kHistogram));
    MachineConfig config;
    config.dims = MeshDims::forNodeCount(nodes);
    JMachine machine(config, std::move(prog));
    const Addr hdata = static_cast<Addr>(machine.program().symbol("HDATA"));
    for (NodeId id = 0; id < nodes; ++id) {
        machine.pokeInt(id, jos::kAppScratchBase + 0,
                        static_cast<std::int32_t>(samples));
        for (Addr b = 0; b < 64; ++b)
            machine.pokeInt(id, hdata + b, 0);
        for (Addr s = jos::kAppScratchBase + 8;
             s < jos::kAppScratchBase + 12; ++s)
            machine.pokeInt(id, s, 0);
    }

    const RunResult r = machine.run(400'000'000ull);
    std::uint64_t total = 0;
    for (NodeId id = 0; id < nodes; ++id) {
        const auto &out = machine.node(id).processor().hostOut();
        if (out.size() != 1) {
            std::fprintf(stderr, "node %u reported nothing\n", id);
            return 1;
        }
        total += static_cast<std::uint64_t>(out[0].asInt());
    }
    const std::uint64_t expect =
        static_cast<std::uint64_t>(nodes) * samples;
    std::printf("histogram: %llu samples binned across %u nodes in %llu "
                "cycles (%s)\n",
                static_cast<unsigned long long>(total), nodes,
                static_cast<unsigned long long>(r.cycles),
                total == expect ? "all accounted for" : "MISSING SAMPLES");
    return total == expect ? 0 : 1;
}
