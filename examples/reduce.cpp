/**
 * @file
 * Global reduction with barrier synchronization: every node
 * contributes a value to node 0, everyone meets at the scan-style
 * barrier from the runtime library, and node 0 reports the sum.
 *
 *   $ ./build/examples/reduce [nodes]
 *
 * Shows the barrier library (Table 3's routine) used as an
 * application building block.
 */

#include <cstdio>
#include <cstdlib>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

using namespace jmsim;

namespace
{

const char *kReduce = R"(
; params: +0 my value (poked by the host)
; state:  +8 accumulated sum (node 0), +9 contributions received
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    ; send my contribution to node 0
    LD R2, [A1+0]
.region comm
    MOVEI R0, 0
    SEND0 R0
    LDL R1, hdr(contribute, 2)
    SEND20E R1, R2
.region comp
    ; node 0 waits for everyone before the barrier
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, meet
.region sync
w0:
    LD R0, [A1+9]
    GETSP R1, NODES
    LT R0, R0, R1
    BT R0, w0
.region comp
meet:
    CALL A2, bar_barrier
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, fin
    LD R0, [A1+8]
    OUT R0
fin:
    HALT

contribute:                  ; [hdr, value]
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A3+1]
    LD R1, [A1+8]
    ADD R1, R1, R0
    ST [A1+8], R1
    LD R1, [A1+9]
    ADDI R1, R1, #1
    ST [A1+9], R1
    SUSPEND
)";

} // namespace

int
main(int argc, char **argv)
{
    const unsigned nodes = argc > 1 ? std::atoi(argv[1]) : 32;

    Program prog =
        assemble(jos::withKernel("reduce.jasm", kReduce, true));
    MachineConfig config;
    config.dims = MeshDims::forNodeCount(nodes);
    JMachine machine(config, std::move(prog));

    std::int64_t expect = 0;
    for (NodeId id = 0; id < nodes; ++id) {
        const std::int32_t value = static_cast<std::int32_t>(3 * id + 1);
        machine.pokeInt(id, jos::kAppScratchBase + 0, value);
        machine.pokeInt(id, jos::kAppScratchBase + 8, 0);
        machine.pokeInt(id, jos::kAppScratchBase + 9, 0);
        expect += value;
    }

    const RunResult r = machine.run(10'000'000);
    const auto &out = machine.node(0).processor().hostOut();
    if (out.size() != 1) {
        std::fprintf(stderr, "reduction produced no result\n");
        return 1;
    }
    std::printf("sum over %u nodes = %d (expected %lld), %llu cycles\n",
                nodes, out[0].asInt(), static_cast<long long>(expect),
                static_cast<unsigned long long>(r.cycles));
    return out[0].asInt() == expect ? 0 : 1;
}
