/**
 * @file
 * Quickstart: build a small J-Machine, run a jasm program that fans a
 * token around the ring of nodes, and read the results back.
 *
 *   $ ./build/examples/quickstart
 *
 * Demonstrates the core public API: assembling a program with the JOS
 * runtime kernel, constructing a JMachine, poking parameters, running
 * to quiescence, and reading host output and statistics.
 */

#include <cstdio>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

using namespace jmsim;

namespace
{

// Each node increments the token and forwards it to the next node;
// after a full lap node 0 reports the total.
const char *kRing = R"(
boot:
    CALL A2, jos_init
    ; successor router address -> scratch
    LDL A1, seg(APP_SCRATCH, 64)
    GETSP R0, NODEID
    ADDI R0, R0, #1
    GETSP R1, NODES
    LT R2, R0, R1
    BT R2, have_succ
    MOVEI R0, 0              ; wrap to node 0
have_succ:
    CALL A2, jos_nnr
    ST [A1+8], R0
    ; node 0 launches the token
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, wait
    LD R0, [A1+8]
    SEND0 R0
    LDL R1, hdr(token, 2)
    MOVEI R2, 0
    SEND20E R1, R2
wait:
    CALL A2, jos_park

token:                       ; [hdr, count]
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A3+1]
    ADDI R0, R0, #1          ; one increment per node
    GETSP R1, NODEID
    NEI R1, R1, #0
    BT R1, forward
    OUT R0                   ; back at node 0: the lap is complete
    SUSPEND
forward:
    LD R1, [A1+8]
    SEND0 R1
    LDL R2, hdr(token, 2)
    SEND20E R2, R0
    SUSPEND
)";

} // namespace

int
main()
{
    // 1. Assemble the application together with the JOS runtime.
    Program prog = assemble(jos::withKernel("ring.jasm", kRing));

    // 2. Build an 8-node machine (2x2x2 mesh) and load the program.
    MachineConfig config;
    config.dims = MeshDims::forNodeCount(8);
    JMachine machine(config, std::move(prog));

    // 3. Run until the machine goes quiet.
    const RunResult result = machine.run(100000);

    // 4. Read back the host output of node 0.
    const auto &out = machine.node(0).processor().hostOut();
    if (out.size() != 1) {
        std::fprintf(stderr, "ring produced no result\n");
        return 1;
    }
    std::printf("token made a full lap: %d increments over %u nodes "
                "in %llu cycles (%.1f us at 12.5 MHz)\n",
                out[0].asInt(), machine.nodeCount(),
                static_cast<unsigned long long>(result.cycles),
                cyclesToUs(result.cycles));

    // 5. Statistics are available per node.
    const ProcessorStats &stats = machine.node(0).processor().stats();
    std::printf("node 0 executed %llu instructions, %llu dispatches\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.dispatches));
    return out[0].asInt() == static_cast<int>(machine.nodeCount()) ? 0 : 1;
}
