/**
 * @file
 * Remote memory read as an RPC -- the paper's Figure 2 experiment as
 * a minimal example: node 0 fetches a word from the far corner's
 * external memory and prints the end-to-end latency.
 *
 *   $ ./build/examples/remote_read [nodes]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const unsigned nodes = argc > 1 ? std::atoi(argv[1]) : 512;
    const NodeId corner = nodes - 1;

    const PingResult ping = measurePing(nodes, corner, PingKind::Ping,
                                        false);
    const PingResult read = measurePing(nodes, corner, PingKind::Read1,
                                        true);
    std::printf("machine of %u nodes; corner is %u hops away\n", nodes,
                ping.hops);
    std::printf("null RPC round trip: %.0f cycles (%.2f us)\n",
                ping.roundTripCycles,
                ping.roundTripCycles * kUsPerCycle);
    std::printf("remote DRAM read:    %.0f cycles (%.2f us)\n",
                read.roundTripCycles,
                read.roundTripCycles * kUsPerCycle);
    std::printf("the paper reads a neighbour in 60 cycles and the far "
                "corner in 98\n");
    return 0;
}
