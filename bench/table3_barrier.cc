/**
 * @file
 * Table 3: software barrier time vs machine size, beside the paper's
 * published numbers for the J-Machine and contemporary machines.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const unsigned max_nodes = scale == bench::Scale::Quick ? 64 : 512;

    // Published columns quoted from the paper's Table 3.
    const std::map<unsigned, double> paper_j = {
        {2, 4.4},   {4, 6.5},   {8, 8.7},   {16, 11.7}, {32, 14.4},
        {64, 16.5}, {128, 20.7}, {256, 24.4}, {512, 27.4}};
    const std::map<unsigned, double> em4 = {
        {2, 2.7}, {4, 3.6}, {8, 4.7}, {16, 5.4}, {64, 7.4}};
    const std::map<unsigned, double> ksr = {
        {2, 60}, {4, 90}, {8, 180}, {16, 260}, {32, 525}, {64, 847}};
    const std::map<unsigned, double> ipsc = {
        {2, 111}, {4, 234}, {8, 381}, {16, 546}, {32, 692}, {64, 3587}};
    const std::map<unsigned, double> delta = {
        {2, 109}, {4, 248}, {8, 473}, {16, 923}, {32, 1816}};

    bench::header("Table 3: software barrier synchronization (us)");
    std::printf("%6s %10s %10s | %8s %8s %10s %8s\n", "nodes", "jmsim",
                "paper-J", "EM4", "KSR", "iPSC/860", "Delta");
    const auto col = [](const std::map<unsigned, double> &m, unsigned n) {
        auto it = m.find(n);
        if (it == m.end())
            return std::string("      -");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", it->second);
        return std::string(buf);
    };
    for (unsigned n = 2; n <= max_nodes; n *= 2) {
        const double us = measureBarrierUs(n);
        std::printf("%6u %10.1f %10s |%9s %8s %10s %8s\n", n, us,
                    col(paper_j, n).c_str(), col(em4, n).c_str(),
                    col(ksr, n).c_str(), col(ipsc, n).c_str(),
                    col(delta, n).c_str());
    }
    return 0;
}
