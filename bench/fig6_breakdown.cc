/**
 * @file
 * Figure 6: breakdown of time on a 64-node machine into idle, NNR
 * calculation, communication, synchronization, xlate, and computation
 * for each application.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/apps.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

void
printBreakdown(const char *name, const AppResult &r, unsigned nodes)
{
    const double total =
        static_cast<double>(r.runCycles) * nodes;  // node-cycles
    const auto pct = [&](StatClass c) {
        return 100.0 * r.cyclesByClass[static_cast<std::size_t>(c)] / total;
    };
    const double idle = 100.0 * r.idleCycles / total;
    std::printf("%-8s %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n", name,
                idle, pct(StatClass::Nnr), pct(StatClass::Comm),
                pct(StatClass::Sync), pct(StatClass::Xlate),
                pct(StatClass::Os), pct(StatClass::Compute));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const unsigned nodes = 64;
    const bool full = scale == bench::Scale::Full;

    bench::header("Figure 6: % of time per function, 64 nodes");
    std::printf("%-8s %7s %7s %7s %7s %7s %7s %7s\n", "app", "idle", "nnr",
                "comm", "sync", "xlate", "os", "comp");

    LcsConfig lc;
    lc.nodes = nodes;
    lc.lenB = full ? 4096 : 2048;
    printBreakdown("LCS", runLcs(lc), nodes);

    NQueensConfig qc;
    qc.nodes = nodes;
    qc.queens = full ? 13 : 10;
    printBreakdown("NQUEENS", runNQueens(qc), nodes);

    RadixConfig rc;
    rc.nodes = nodes;
    printBreakdown("RADIX", runRadixSort(rc), nodes);

    TspConfig tc;
    tc.nodes = nodes;
    tc.cities = full ? 12 : 9;
    printBreakdown("TSP", runTsp(tc), nodes);

    std::printf("\npaper: communication dominates radix; TSP shows ~16%%"
                " sync (null calls) and visible xlate time; LCS/NQueens"
                " mostly compute with idle from load imbalance\n");
    return 0;
}
