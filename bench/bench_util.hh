/**
 * @file
 * Shared table-printing and argument helpers for the bench binaries.
 *
 * Each bench regenerates one table or figure of the paper and prints
 * the measured series next to the paper's reported values where those
 * exist. `--quick` shrinks sweeps; `--full` runs paper-scale inputs.
 */

#ifndef JMSIM_BENCH_BENCH_UTIL_HH
#define JMSIM_BENCH_BENCH_UTIL_HH

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace jmsim
{
namespace bench
{

/** Scale selected from the command line. */
enum class Scale
{
    Quick,
    Default,
    Full,
};

inline Scale
parseScale(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            return Scale::Quick;
        if (!std::strcmp(argv[i], "--full"))
            return Scale::Full;
    }
    return Scale::Default;
}

inline void
header(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
row(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

} // namespace bench
} // namespace jmsim

#endif // JMSIM_BENCH_BENCH_UTIL_HH
