/**
 * @file
 * Ablation: sensitivity of fine-grained workloads to the hardware
 * dispatch cost. The MDP dispatches a handler in 4 cycles; software
 * dispatch on contemporary machines cost hundreds of cycles. This
 * sweeps the dispatch constant through the LCS workload (one handler
 * invocation per streamed character).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/apps.hh"
#include "workloads/driver.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);

    bench::header("Ablation: message dispatch cost (LCS, 16 nodes)");
    std::printf("%10s %14s %14s\n", "dispatch", "LCS ms", "slowdown");
    double base = 0;
    for (unsigned dispatch : {2u, 4u, 8u, 16u, 64u, 256u}) {
        LcsConfig lc;
        lc.nodes = 16;
        lc.lenA = 256;
        lc.lenB = scale == bench::Scale::Quick ? 512 : 1024;
        setDispatchCyclesForTesting(dispatch);
        const AppResult r = runLcs(lc);
        if (dispatch == 4)
            base = r.runMs();
        std::printf("%10u %14.2f %14s\n", dispatch, r.runMs(),
                    base > 0 ? "" : "-");
    }
    setDispatchCyclesForTesting(0);
    std::printf("\nfine-grained codes degrade directly with dispatch "
                "cost; at software-dispatch costs (hundreds of cycles) "
                "the one-character-per-message style becomes "
                "untenable\n");
    return 0;
}
