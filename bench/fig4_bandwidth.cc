/**
 * @file
 * Figure 4: terminal network bandwidth between two nodes vs message
 * size, for three delivery treatments. Paper: ~200 Mbits/s peak
 * (0.5 words/cycle at 12.5 MHz); 90% of peak with 8-word messages;
 * ordering discard > copy-to-Imem > copy-to-Emem.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const unsigned messages = scale == bench::Scale::Quick ? 16 : 64;

    bench::header("Figure 4: terminal bandwidth vs message size (Mbits/s)");
    std::printf("%6s %10s %12s %12s\n", "words", "discard", "copy-imem",
                "copy-emem");
    double peak = 0;
    for (unsigned len : {1u, 2u, 4u, 8u, 12u, 16u}) {
        const double d = measureBlast(len, BlastMode::Discard, messages);
        const double i = measureBlast(len, BlastMode::CopyToImem, messages);
        const double e = measureBlast(len, BlastMode::CopyToEmem, messages);
        if (d > peak)
            peak = d;
        std::printf("%6u %10.1f %12.1f %12.1f\n", len, d, i, e);
    }
    std::printf("\npeak %.1f Mbits/s (channel limit 200); paper peak ~190\n",
                peak);

    // Large-mesh extension: aggregate delivered bandwidth under fig4
    // saturation traffic (24-word random-target messages, zero grain)
    // at the paper's top size and the 16x16x16 mesh.
    if (scale != bench::Scale::Quick) {
        bench::header("Figure 4 extension: aggregate saturation bandwidth");
        std::printf("%6s %10s %14s %14s\n", "nodes", "window",
                    "msgs delivered", "agg Gbits/s");
        for (unsigned n : {512u, 4096u}) {
            const Cycle window = n > 1024 ? 1500 : 3000;
            const TrafficProbe p = runFig4Load(n, window);
            const double gbits =
                static_cast<double>(p.netStats.wordsDelivered) * 36.0 *
                12.5e6 / static_cast<double>(window) / 1e9;
            std::printf("%6u %10llu %14llu %14.2f\n", n,
                        static_cast<unsigned long long>(window),
                        static_cast<unsigned long long>(
                            p.netStats.messagesDelivered),
                        gbits);
        }
    }
    return 0;
}
