/**
 * @file
 * Figure 2: round-trip latency vs distance for Ping and remote reads
 * of 1/6 words from internal/external memory, on an unloaded 8x8x8
 * machine. The paper's headline numbers: slope 2 cycles/hop, base
 * round trip 43 cycles, nearest-neighbour read 60 cycles, opposite-
 * corner read 98 cycles.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "net/router_address.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const unsigned nodes = scale == bench::Scale::Quick ? 64 : 512;
    const MeshDims dims = MeshDims::forNodeCount(nodes);

    // Targets at increasing Manhattan distance from node 0.
    std::vector<NodeId> targets;
    targets.push_back(0);
    for (unsigned d = 1; d <= dims.x + dims.y + dims.z - 3; ++d) {
        RouterAddr a{};
        unsigned left = d;
        a.x = static_cast<std::uint8_t>(std::min(left, dims.x - 1));
        left -= a.x;
        a.y = static_cast<std::uint8_t>(std::min(left, dims.y - 1));
        left -= a.y;
        a.z = static_cast<std::uint8_t>(left);
        targets.push_back(dims.toLinear(a));
        if (scale == bench::Scale::Quick && d >= 6)
            break;
    }

    bench::header("Figure 2: round-trip latency vs distance (cycles), " +
                  std::to_string(nodes) + " nodes");
    std::printf("%5s %8s %12s %12s %12s %12s\n", "hops", "ping",
                "read1-imem", "read1-emem", "read6-imem", "read6-emem");
    for (NodeId t : targets) {
        const auto ping = measurePing(nodes, t, PingKind::Ping, false);
        const auto r1i = measurePing(nodes, t, PingKind::Read1, false);
        const auto r1e = measurePing(nodes, t, PingKind::Read1, true);
        const auto r6i = measurePing(nodes, t, PingKind::Read6, false);
        const auto r6e = measurePing(nodes, t, PingKind::Read6, true);
        std::printf("%5u %8.1f %12.1f %12.1f %12.1f %12.1f\n", ping.hops,
                    ping.roundTripCycles, r1i.roundTripCycles,
                    r1e.roundTripCycles, r6i.roundTripCycles,
                    r6e.roundTripCycles);
    }
    std::printf("\npaper: slope 2 cycles/hop; base RTT 43; "
                "neighbour read 60; corner read 98\n");
    return 0;
}
