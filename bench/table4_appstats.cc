/**
 * @file
 * Table 4: application statistics on a 64-node machine -- run time and,
 * per thread class, invocation count, instructions, mean thread
 * length, and message length.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/apps.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

void
printApp(const char *name, const AppResult &r)
{
    std::printf("\n%s: runtime %.1f ms, %llu instructions\n", name,
                r.runMs(), static_cast<unsigned long long>(r.instructions));
    std::printf("  %-14s %10s %14s %12s %8s\n", "thread", "count",
                "instructions", "instr/thread", "msg len");
    for (const auto &t : r.threadClasses) {
        if (t.name == "boot" || t.name.rfind("jos", 0) == 0)
            continue;
        std::printf("  %-14s %10llu %14llu %12.0f %8.1f\n", t.name.c_str(),
                    static_cast<unsigned long long>(t.threads),
                    static_cast<unsigned long long>(t.instructions),
                    t.instrPerThread(), t.avgMessageLength());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const bool full = scale == bench::Scale::Full;

    bench::header("Table 4: application statistics, 64 nodes");

    LcsConfig lc;
    lc.nodes = 64;
    lc.lenB = full ? 4096 : 2048;
    printApp("LCS", runLcs(lc));

    NQueensConfig qc;
    qc.nodes = 64;
    qc.queens = full ? 13 : 10;
    printApp("NQueens", runNQueens(qc));

    RadixConfig rc;
    rc.nodes = 64;
    printApp("RadixSort", runRadixSort(rc));

    std::printf("\npaper (full sizes): LCS 153 ms, 262K NxtChar threads of"
                " 232 instr (msg 3); NQueens 775 ms, 1030 threads of 296K"
                " instr (msg 8); radix 63 ms, 452K WriteData threads of 4"
                " instr (msg 3)\n");
    return 0;
}
