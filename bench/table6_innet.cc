/**
 * @file
 * In-network computing ablation (EXPERIMENTS.md): barrier cost under
 * three implementations — the paper's software scan barrier (Table 3),
 * a fetch-and-add counting barrier, and the hardware reduce/broadcast
 * tree — beside the paper's published J-Machine column, plus the
 * router-combining on/off ablation on hotspot fetch-and-add traffic.
 *
 * Accepts `--quick` / `--full` or the equivalent `--scale quick|full`.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bench_util.hh"
#include "workloads/innet.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--scale"))
            continue;
        if (!std::strcmp(argv[i + 1], "quick"))
            scale = bench::Scale::Quick;
        else if (!std::strcmp(argv[i + 1], "full"))
            scale = bench::Scale::Full;
    }
    const unsigned max_nodes = scale == bench::Scale::Quick ? 64 : 512;

    // The paper's Table 3 J-Machine column, for context.
    const std::map<unsigned, double> paper_j = {
        {2, 4.4},   {4, 6.5},    {8, 8.7},    {16, 11.7}, {32, 14.4},
        {64, 16.5}, {128, 20.7}, {256, 24.4}, {512, 27.4}};

    bench::header("Table 6: barrier cost by implementation (us)");
    std::printf("%6s %10s %10s %10s %10s\n", "nodes", "sw-scan", "faa-cnt",
                "hw-tree", "paper-J");
    for (unsigned n = 2; n <= max_nodes; n *= 2) {
        const double sw = measureBarrierUs(n);
        const double faa = measureFaaBarrierUs(n);
        const double hw = measureTreeBarrierUs(n);
        char pj[32];
        auto it = paper_j.find(n);
        if (it == paper_j.end())
            std::snprintf(pj, sizeof(pj), "-");
        else
            std::snprintf(pj, sizeof(pj), "%.1f", it->second);
        std::printf("%6u %10.1f %10.1f %10.1f %10s\n", n, sw, faa, hw, pj);
    }

    const unsigned hot_nodes = scale == bench::Scale::Quick ? 32 : 64;
    const unsigned ops = scale == bench::Scale::Quick ? 16 : 64;
    bench::header("Table 6b: hotspot fetch-and-add, combining off vs on");
    std::printf("%6s %6s %10s %12s %12s %10s\n", "nodes", "ops/n",
                "combining", "cycles/op", "combine-hits", "speedup");
    const HotspotResult off = runFaaHotspot(hot_nodes, ops, false);
    const HotspotResult on = runFaaHotspot(hot_nodes, ops, true);
    std::printf("%6u %6u %10s %12.1f %12llu %10s\n", hot_nodes, ops, "off",
                off.cyclesPerOp,
                static_cast<unsigned long long>(off.combineHits), "-");
    std::printf("%6u %6u %10s %12.1f %12llu %9.2fx\n", hot_nodes, ops, "on",
                on.cyclesPerOp,
                static_cast<unsigned long long>(on.combineHits),
                off.cyclesPerOp / on.cyclesPerOp);
    return 0;
}
