/**
 * @file
 * Ablation: blocking back-pressure vs return-to-sender flow control
 * (the paper's "future directions" proposal). A hotspot node with a
 * slow handler congests its queue; a bystander node's traffic must
 * cross the same channels. With blocking flow control the stuck worm
 * ties up the path (tree saturation); with return-to-sender the
 * network stays clear at the cost of retransmissions.
 */

#include <cstdio>

#include "bench_util.hh"
#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

using namespace jmsim;

namespace
{

// 4x1x1 chain: node 0 floods node 3 (slow handler); node 1 pings node
// 2 and measures its round trips while the flood passes through.
const char *kApp = R"(
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    GETSP R0, NODEID
    EQI R1, R0, #0
    BT R1, flooder
    EQI R1, R0, #1
    BT R1, prober
    CALL A2, jos_park
flooder:
    MOVEI R3, 0
f_lp:
    MOVEI R0, 3
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(slow, 8)
    SEND0 R1
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND0E R2
    ADDI R3, R3, #1
    LDL R1, #60
    LT R1, R3, R1
    BT R1, f_lp
    HALT
prober:
    MOVEI R3, 0
    GETSP R0, CYCLELO
    ST [A1+9], R0
p_lp:
    MOVEI R0, 0
    ST [A1+8], R0
    MOVEI R0, 2
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(echo, 2)
    GETSP R2, NNR
    SEND20E R1, R2
p_spin:
    LD R0, [A1+8]
    EQI R0, R0, #0
    BT R0, p_spin
    ADDI R3, R3, #1
    LDL R1, #40
    LT R1, R3, R1
    BT R1, p_lp
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
    HALT
slow:
    LDL R3, #250
s_w:
    ADDI R3, R3, #-1
    GTI R1, R3, #0
    BT R1, s_w
    SUSPEND
echo:
    LD R0, [A3+1]
    SEND0 R0
    LDL R1, hdr(ack, 1)
    SEND0E R1
    SUSPEND
ack:
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 1
    ST [A1+8], R0
    SUSPEND
)";

} // namespace

int
main()
{
    bench::header("Ablation: blocking vs return-to-sender flow control");
    std::printf("%-18s %16s %14s %14s\n", "flow control",
                "bystander cycles", "per RTT", "bounces");
    for (const bool rts : {false, true}) {
        Program prog = assemble(jos::withKernel("flow.jasm", kApp, false));
        MachineConfig cfg;
        cfg.dims = MeshDims{4, 1, 1};
        cfg.ni.returnToSender = rts;
        cfg.ni.queueWords0 = 48;
        JMachine m(cfg, std::move(prog));
        for (NodeId id = 0; id < 4; ++id)
            for (Addr a = jos::kAppScratchBase; a < jos::kAppScratchBase + 16;
                 ++a)
                m.pokeInt(id, a, 0);
        const RunResult r = m.run(30'000'000);
        const auto &out = m.node(1).processor().hostOut();
        const double total =
            (r.reason != StopReason::CycleLimit && out.size() == 1)
                ? out[0].asInt()
                : -1;
        std::printf("%-18s %16.0f %14.1f %14llu\n",
                    rts ? "return-to-sender" : "blocking", total,
                    total / 40.0,
                    static_cast<unsigned long long>(
                        m.node(3).ni().stats().messagesBounced));
    }
    std::printf("\nwith blocking flow control the hotspot's worm ties up "
                "the shared channels (tree saturation); return-to-sender "
                "keeps the bystander's path clear\n");
    return 0;
}
