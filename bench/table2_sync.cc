/**
 * @file
 * Table 2: producer-consumer synchronization cycles with and without
 * hardware presence tags, plus the thread save/restore costs.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main()
{
    const SyncCosts c = measureSyncCosts();

    bench::header("Table 2: producer-consumer synchronization (cycles)");
    std::printf("%-10s %12s %12s %16s\n", "event", "tags", "no tags",
                "save/restore");
    std::printf("%-10s %12.1f %12.1f\n", "success", c.tagSuccess,
                c.noTagSuccess);
    std::printf("%-10s %12.1f %12.1f %13.1f\n", "failure", c.tagFailure,
                c.noTagFailure, c.tagSave);
    std::printf("%-10s %12.1f %12.1f\n", "write", c.tagWrite, c.noTagWrite);
    std::printf("%-10s %12d %12d %13.1f\n", "restart", 0, 0, c.tagRestore);
    std::printf("\npaper: success 2/5, failure 6/7, write 4/6, restart 0/0,"
                " save 30-50, restore 20-50\n");
    return 0;
}
