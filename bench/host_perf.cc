/**
 * @file
 * Host-side performance harness for the simulation kernel itself: runs
 * a fixed workload mix (fig3 random traffic, fig4 saturation load,
 * radix sort) at several machine sizes for worker-thread counts
 * {1, 2, 4, hw}, best of three runs per point, and reports
 * simulated-instructions-per-host-second plus the wall-clock speedup
 * of each threaded kernel over the serial one. On a single-CPU host
 * the threads > 1 rows are skipped — they measure barrier overhead,
 * not the kernel. Each traffic row also carries the kernel's phase
 * breakdown (node/net/commit host seconds), the message-pool counters,
 * the machine's audited simulator-state bytes (footprint_bytes), and
 * the process peak RSS. Emits `BENCH_host_perf.json` next to the
 * working directory for tooling.
 *
 * Four scheduler rows ride along: sparse_ring (a token ring over eight
 * hot nodes of a 4096-node mesh while every other node poll-spins,
 * wake scheduler on) against sparse_ring_nosched (same workload,
 * scheduler off) — the A/B proof that kernel cost tracks active nodes
 * — fabric_quiet against fabric_quiet_nosched (same ring, the
 * *network* scheduler as the knob — the A/B proof that mesh step cost
 * tracks in-flight flits) — and a timeout-bounded 4096-node (16x16x16)
 * fig3 smoke row that pins the large-mesh footprint.
 *
 * Threaded runs are bit-identical to serial runs (see
 * tests/determinism_test.cc), so every row of a workload/size group
 * simulates exactly the same cycles and instructions — only the host
 * time changes. Speedups > 1 require real cores; on a single-CPU host
 * the harness still runs and honestly reports the barrier overhead.
 *
 * `--check <baseline.json>` runs a small perf-smoke instead: the
 * 64-node serial workloads, best of three, compared against the
 * committed BENCH_host_perf.json. A drop of more than 20% in
 * sim-instructions/host-second against the baseline fails the run, as
 * does a >20% growth of a row's fabric phase (net_sec + commit_sec)
 * or of the 4096-node fig3 footprint over its baseline row
 * (registered in ctest as `perf_smoke`).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "ckpt/snapshot.hh"
#include "sim/run_result_json.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

struct Sample
{
    std::string workload;
    unsigned nodes = 0;
    unsigned threads = 0;
    double hostSeconds = 0;
    Cycle simCycles = 0;
    std::uint64_t simInstructions = 0;
    double speedup = 1.0;
    KernelProfile profile;  ///< phase breakdown (traffic workloads)
    // Message-pool counters (traffic workloads), read back from the
    // run's counter-registry snapshot.
    std::uint64_t poolLiveHighWater = 0;
    std::uint64_t poolAllocs = 0;
    std::uint64_t poolRecycled = 0;
    std::uint64_t footprintBytes = 0;  ///< audited simulator-state bytes
    /** Process-lifetime peak RSS at sample time. Cumulative, not
     *  per-run: getrusage reports a high-water mark that never falls,
     *  so rows sampled later in the process are >= earlier rows (and
     *  same-sized workloads report the same value). Useful as a
     *  whole-bench memory ceiling, not as a per-row footprint — that
     *  is what footprintBytes audits. */
    std::uint64_t peakRssBytes = 0;
    double bootSeconds = 0;  ///< host seconds booting before cycle 0

    double
    instrPerHostSec() const
    {
        return hostSeconds > 0 ? simInstructions / hostSeconds : 0;
    }

    RunRow
    toRow() const
    {
        RunRow row;
        row.workload = workload;
        row.nodes = nodes;
        row.threads = threads;
        row.hostSeconds = hostSeconds;
        row.simCycles = simCycles;
        row.simInstructions = simInstructions;
        row.speedup = speedup;
        row.nodeSec = profile.nodeSeconds;
        row.netSec = profile.netSeconds;
        row.commitSec = profile.commitSeconds;
        row.poolLiveHighWater = poolLiveHighWater;
        row.poolAllocs = poolAllocs;
        row.poolRecycled = poolRecycled;
        row.footprintBytes = footprintBytes;
        row.peakRssBytes = peakRssBytes;
        row.bootSec = bootSeconds;
        return row;
    }
};

/** Process peak resident-set size, in bytes (0 where unsupported). */
std::uint64_t
peakRssBytes()
{
#if defined(__APPLE__)
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#else
    return 0;
#endif
}

/** peakRssBytes() with its invariant enforced: the kernel's high-water
 *  mark is monotone over the process lifetime, so a sample below an
 *  earlier one means the probe (or its unit scaling) broke. */
std::uint64_t
samplePeakRss()
{
    static std::uint64_t last = 0;
    const std::uint64_t now = peakRssBytes();
    if (now < last)
        std::fprintf(stderr,
                     "peak_rss_bytes went backwards (%llu -> %llu): "
                     "the probe is broken\n",
                     static_cast<unsigned long long>(last),
                     static_cast<unsigned long long>(now));
    last = std::max(last, now);
    return now;
}

Sample
fromProbe(const char *workload, unsigned nodes, unsigned threads,
          const TrafficProbe &p)
{
    Sample s;
    s.workload = workload;
    s.nodes = nodes;
    s.threads = threads;
    s.hostSeconds = p.hostSeconds;
    s.simCycles = p.run.cycles;
    s.simInstructions = p.instructions;
    s.profile = p.run.profile;
    s.poolLiveHighWater = counterValue(p.run.counters, "pool.live_high_water");
    s.poolAllocs = counterValue(p.run.counters, "pool.allocs");
    s.poolRecycled = counterValue(p.run.counters, "pool.recycled");
    s.footprintBytes = p.run.footprintBytes;
    s.peakRssBytes = samplePeakRss();
    s.bootSeconds = p.bootSeconds;
    return s;
}

/** Heterogeneous-activity token ring (runSparseActivity): a handful
 *  of hot nodes keep the fabric busy while thousands sit in a poll
 *  spin — the sparse-activity workload the wake scheduler exists for,
 *  sampled with the scheduler on or off for the A/B rows. */
Sample
sampleSparse(unsigned nodes, Cycle window, bool sched_on)
{
    setSimThreads(1);
    setWakeScheduler(sched_on ? 1 : 0);
    const TrafficProbe p = runSparseActivity(nodes, 8, window);
    setWakeScheduler(-1);
    setSimThreads(-1);
    return fromProbe(sched_on ? "sparse_ring" : "sparse_ring_nosched",
                     nodes, 1, p);
}

/** The same token ring, but the A/B knob is the *fabric* scheduler:
 *  wake scheduling stays at its default so node cost is identical in
 *  both rows, and the gap isolates the event-driven mesh stepping
 *  (next-event skip, fused commit+push, serial fast path). */
Sample
sampleFabricQuiet(unsigned nodes, Cycle window, bool sched_on)
{
    setSimThreads(1);
    setNetScheduler(sched_on ? 1 : 0);
    const TrafficProbe p = runSparseActivity(nodes, 8, window);
    setNetScheduler(-1);
    setSimThreads(-1);
    return fromProbe(sched_on ? "fabric_quiet" : "fabric_quiet_nosched",
                     nodes, 1, p);
}

Sample
sampleTraffic(unsigned nodes, unsigned threads, Cycle window)
{
    setSimThreads(static_cast<int>(threads));
    const TrafficProbe p = runFig3Traffic(nodes, 8, 80, window);
    setSimThreads(-1);
    return fromProbe("fig3_traffic", nodes, threads, p);
}

Sample
sampleTrafficTraced(unsigned nodes, Cycle window)
{
    TraceConfig tc;
    tc.enabled = true;
    setSimThreads(1);
    setTraceConfig(tc);
    const TrafficProbe p = runFig3Traffic(nodes, 8, 80, window);
    clearTraceConfig();
    setSimThreads(-1);
    return fromProbe("fig3_traffic_traced", nodes, 1, p);
}

Sample
sampleFig4(unsigned nodes, unsigned threads, Cycle window)
{
    setSimThreads(static_cast<int>(threads));
    const TrafficProbe p = runFig4Load(nodes, window);
    setSimThreads(-1);
    return fromProbe("fig4_load", nodes, threads, p);
}

Sample
sampleRadix(unsigned nodes, unsigned threads, unsigned keys)
{
    RadixConfig c;
    c.nodes = nodes;
    c.keys = keys;
    setSimThreads(static_cast<int>(threads));
    const auto t0 = std::chrono::steady_clock::now();
    const AppResult r = runRadixSort(c);
    const auto t1 = std::chrono::steady_clock::now();
    setSimThreads(-1);
    Sample s;
    s.workload = "radix_sort";
    s.nodes = nodes;
    s.threads = threads;
    s.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    s.simCycles = r.runCycles;
    s.simInstructions = r.instructions;
    s.profile = r.profile;
    s.poolLiveHighWater = counterValue(r.counters, "pool.live_high_water");
    s.poolAllocs = counterValue(r.counters, "pool.allocs");
    s.poolRecycled = counterValue(r.counters, "pool.recycled");
    s.footprintBytes = r.footprintBytes;
    s.peakRssBytes = samplePeakRss();
    s.bootSeconds = r.bootSeconds;
    return s;
}

/** Shared toggle tuple of one sweep variant (defaults = machine
 *  defaults; every field is applied on every job so variants never
 *  leak into each other through a reused machine). */
struct SweepVariant
{
    const char *tag;
    unsigned threads = 1;
    bool wakeScheduler = true;
    bool netScheduler = true;
    bool superblock = true;
};

constexpr SweepVariant kSweepVariants[] = {
    {"default"},
    {"t2", 2},
    {"nosched", 1, false},
    {"nosb", 1, true, true, false},
};

/** One boot group of the 12-job farm sweep: a workload size plus the
 *  warmup prefix its variants share (parked near the end of the run,
 *  where the amortization headroom is). */
struct SweepGroup
{
    const char *workload;
    Cycle warmup;
};

constexpr SweepGroup kSweepGroups[] = {
    {"radix_sort", 59000},   // full run 61436 cycles at 16/1024
    {"nqueens", 27000},      // full run 28575 cycles at 16 nodes, 8 queens
    {"tsp", 205000},         // full run 208489 cycles at 16 nodes, 8 cities
};

PreparedApp
prepareSweepApp(const char *workload)
{
    if (workload == std::string("radix_sort")) {
        RadixConfig c;
        c.nodes = 16;
        c.keys = 1024;
        return prepareRadixSort(c);
    }
    if (workload == std::string("nqueens")) {
        NQueensConfig c;
        c.nodes = 16;
        c.queens = 8;
        return prepareNQueens(c);
    }
    TspConfig c;
    c.nodes = 16;
    c.cities = 8;
    return prepareTsp(c);
}

void
applySweepVariant(JMachine &m, const SweepVariant &v)
{
    m.setThreads(v.threads);
    m.setWakeScheduler(v.wakeScheduler);
    m.setNetScheduler(v.netScheduler);
    m.setSuperblock(v.superblock);
}

/**
 * The 12-job config sweep (3 workload groups x 4 toggle variants),
 * run two ways: cold boots every job from scratch (what the sweep
 * scripts used to do); farm boots each group once, advances it
 * through the shared warmup prefix, checkpoints, and restores the
 * image per variant — the in-process equivalent of what
 * `tools/jrun_server` does with fork(). The farm row's speedup column
 * is the end-to-end win over the cold row.
 */
Sample
sampleSweep(bool farm)
{
    Sample s;
    s.workload = farm ? "sweep_farm" : "sweep_cold";
    s.nodes = 16;
    s.threads = 1;
    const auto t0 = std::chrono::steady_clock::now();
    for (const SweepGroup &group : kSweepGroups) {
        if (!farm) {
            for (const SweepVariant &v : kSweepVariants) {
                PreparedApp app = prepareSweepApp(group.workload);
                s.bootSeconds += app.bootSeconds;
                applySweepVariant(*app.machine, v);
                const AppResult r = finishApp(app);
                s.simCycles += r.runCycles;
                s.simInstructions += r.instructions;
            }
            continue;
        }
        PreparedApp app = prepareSweepApp(group.workload);
        s.bootSeconds += app.bootSeconds;
        app.machine->run(group.warmup);
        ckpt::Snapshot image;
        app.machine->save(image);
        bool first = true;
        for (const SweepVariant &v : kSweepVariants) {
            std::string err;
            if (!first && !app.machine->restore(image, &err)) {
                std::fprintf(stderr, "sweep restore failed: %s\n",
                             err.c_str());
                std::exit(2);
            }
            first = false;
            applySweepVariant(*app.machine, v);
            const AppResult r = finishApp(app);
            s.simCycles += r.runCycles;
            s.simInstructions += r.instructions;
        }
    }
    s.hostSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    s.peakRssBytes = samplePeakRss();
    return s;
}

void
writeJson(const std::vector<Sample> &samples, unsigned hw)
{
    std::FILE *f = std::fopen("BENCH_host_perf.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_host_perf.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n  \"samples\": [\n",
                 hw);
    // Sample lines use the shared run-result schema (see
    // sim/run_result_json.hh) that jrun_server streams too; the rigid
    // readBaseline() parser below matches its leading prefix.
    for (std::size_t i = 0; i < samples.size(); ++i)
        std::fprintf(f, "    %s%s\n", runRowJson(samples[i].toRow()).c_str(),
                     i + 1 < samples.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/** One baseline sample parsed back out of BENCH_host_perf.json. */
struct BaselineEntry
{
    char workload[32] = {};
    unsigned nodes = 0;
    unsigned threads = 0;
    double rate = 0;
    std::uint64_t footprintBytes = 0;  ///< 0 in pre-footprint baselines
    double fabricSec = -1;  ///< net_sec + commit_sec; -1 in old baselines
};

/**
 * Parse the samples of a BENCH_host_perf.json written by writeJson().
 * Deliberately rigid: one sample per line, fields in the writer's
 * order — this reads our own artifact, not arbitrary JSON.
 */
std::vector<BaselineEntry>
readBaseline(const char *path)
{
    std::vector<BaselineEntry> entries;
    std::FILE *f = std::fopen(path, "r");
    if (!f)
        return entries;
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
        BaselineEntry e;
        double secs = 0;
        unsigned long long cycles = 0, instr = 0;
        if (std::sscanf(line,
                        " {\"workload\": \"%31[^\"]\", \"nodes\": %u, "
                        "\"threads\": %u, \"host_seconds\": %lf, "
                        "\"sim_cycles\": %llu, \"sim_instructions\": %llu, "
                        "\"instr_per_host_sec\": %lf",
                        e.workload, &e.nodes, &e.threads, &secs, &cycles,
                        &instr, &e.rate) == 7) {
            // Appended fields are located by name so the prefix parse
            // above keeps accepting pre-footprint baselines.
            unsigned long long fp = 0;
            if (const char *at = std::strstr(line, "\"footprint_bytes\": "))
                std::sscanf(at, "\"footprint_bytes\": %llu", &fp);
            e.footprintBytes = fp;
            double net = -1, commit = 0;
            if (const char *at = std::strstr(line, "\"net_sec\": "))
                std::sscanf(at, "\"net_sec\": %lf", &net);
            if (const char *at = std::strstr(line, "\"commit_sec\": "))
                std::sscanf(at, "\"commit_sec\": %lf", &commit);
            e.fabricSec = net >= 0 ? net + commit : -1;
            entries.push_back(e);
        }
    }
    std::fclose(f);
    return entries;
}

/**
 * Perf smoke: rerun the 64-node serial workloads at the default scale
 * (same parameters the committed baseline was generated with), best of
 * three to ride out host noise, and fail on a drop below @p floor of
 * the baseline's sim-instructions/host-second (default 0.8, i.e. a
 * >20% regression; CI on shared runners passes a relaxed --floor).
 */
int
runCheck(const char *baseline_path, double floor)
{
    const std::vector<BaselineEntry> base = readBaseline(baseline_path);
    if (base.empty()) {
        std::fprintf(stderr, "perf-check: cannot read baseline %s\n",
                     baseline_path);
        return 2;
    }
    constexpr unsigned kNodes = 64;
    constexpr Cycle kWindow = 8000;
    constexpr unsigned kKeys = 8192;
    constexpr unsigned kReps = 3;
    const double kFloor = floor;

    bench::header("Host performance smoke vs " + std::string(baseline_path));
    std::printf("%-14s %6s %16s %16s %7s\n", "workload", "nodes",
                "base instr/sec", "best instr/sec", "ratio");
    bool ok = true;
    for (const char *workload : {"fig3_traffic", "radix_sort"}) {
        const BaselineEntry *ref = nullptr;
        for (const BaselineEntry &e : base) {
            if (workload == std::string(e.workload) && e.nodes == kNodes &&
                e.threads == 1)
                ref = &e;
        }
        if (!ref || ref->rate <= 0) {
            std::fprintf(stderr,
                         "perf-check: no %s nodes=%u threads=1 sample in "
                         "baseline\n",
                         workload, kNodes);
            return 2;
        }
        double best = 0;
        double best_fabric = -1;
        for (unsigned rep = 0; rep < kReps; ++rep) {
            const Sample s = workload == std::string("fig3_traffic")
                                 ? sampleTraffic(kNodes, 1, kWindow)
                                 : sampleRadix(kNodes, 1, kKeys);
            best = std::max(best, s.instrPerHostSec());
            const double fabric =
                s.profile.netSeconds + s.profile.commitSeconds;
            if (best_fabric < 0 || fabric < best_fabric)
                best_fabric = fabric;
        }
        const double ratio = best / ref->rate;
        std::printf("%-14s %6u %16.0f %16.0f %6.2fx\n", workload, kNodes,
                    ref->rate, best, ratio);
        if (ratio < kFloor) {
            std::fprintf(stderr,
                         "perf-check: %s regressed to %.2fx of baseline "
                         "(floor %.2fx)\n",
                         workload, ratio, kFloor);
            ok = false;
        }
        // Fabric-phase gate: the mesh phases (net + commit host
        // seconds, best of the reps) may not grow past 1/floor of the
        // baseline row's. Tiny baseline phases are exempt — below a
        // few milliseconds the host timer's noise exceeds the signal.
        if (ref->fabricSec >= 0.005 && best_fabric >= 0) {
            const double fratio = best_fabric / ref->fabricSec;
            std::printf("%-14s %6u %16.6f %16.6f %6.2fx  (fabric sec)\n",
                        workload, kNodes, ref->fabricSec, best_fabric,
                        fratio);
            if (fratio > 1.0 / kFloor) {
                std::fprintf(stderr,
                             "perf-check: %s fabric phase grew to %.2fx of "
                             "baseline (limit %.2fx)\n",
                             workload, fratio, 1.0 / kFloor);
                ok = false;
            }
        }
    }

    // Sweep-throughput check: rerun the 12-job farm sweep and hold its
    // sim-instructions/host-second to the same floor (skipped against
    // baselines from before the farm rows existed).
    const BaselineEntry *refSweep = nullptr;
    for (const BaselineEntry &e : base) {
        if (std::string(e.workload) == "sweep_farm" && e.threads == 1)
            refSweep = &e;
    }
    if (refSweep && refSweep->rate > 0) {
        double best = 0;
        for (unsigned rep = 0; rep < kReps; ++rep)
            best = std::max(best, sampleSweep(true).instrPerHostSec());
        const double ratio = best / refSweep->rate;
        std::printf("%-14s %6u %16.0f %16.0f %6.2fx\n", "sweep_farm", 16u,
                    refSweep->rate, best, ratio);
        if (ratio < kFloor) {
            std::fprintf(stderr,
                         "perf-check: sweep_farm regressed to %.2fx of "
                         "baseline (floor %.2fx)\n",
                         ratio, kFloor);
            ok = false;
        }
    }

    // Footprint check: one 4096-node fig3 smoke run; the audited
    // simulator-state bytes may not grow more than 20% over the
    // committed 4K baseline row (skipped against older baselines that
    // carry no such row).
    const BaselineEntry *ref4k = nullptr;
    for (const BaselineEntry &e : base) {
        if (std::string(e.workload) == "fig3_traffic" && e.nodes == 4096 &&
            e.threads == 1 && e.footprintBytes > 0)
            ref4k = &e;
    }
    if (ref4k) {
        const Sample s = sampleTraffic(4096, 1, 400);
        const double ratio =
            static_cast<double>(s.footprintBytes) / ref4k->footprintBytes;
        std::printf("%-14s %6u %16llu %16llu %6.2fx  (footprint bytes)\n",
                    "fig3_traffic", 4096u,
                    static_cast<unsigned long long>(ref4k->footprintBytes),
                    static_cast<unsigned long long>(s.footprintBytes), ratio);
        if (ratio > 1.20) {
            std::fprintf(stderr,
                         "perf-check: 4K-node footprint grew to %.2fx of "
                         "baseline (limit 1.20x)\n",
                         ratio);
            ok = false;
        }
    }
    std::printf("%s\n", ok ? "perf-check OK" : "perf-check FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *check_path = nullptr;
    double floor = 0.8;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--check"))
            check_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--floor"))
            floor = std::atof(argv[i + 1]);
    }
    if (check_path)
        return runCheck(check_path, floor);
    const auto scale = bench::parseScale(argc, argv);
    std::vector<unsigned> sizes = {64, 256, 512};
    Cycle window = 8000;
    unsigned radix_keys = 8192;
    if (scale == bench::Scale::Quick) {
        sizes = {64, 256};
        window = 2500;
        radix_keys = 2048;
    } else if (scale == bench::Scale::Full) {
        window = 20000;
        radix_keys = 32768;
    }

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // Threaded rows on a 1-CPU host measure barrier overhead, not the
    // kernel: skip them (the determinism suite still proves threaded
    // equivalence) and cut the bench wall time.
    std::vector<unsigned> thread_counts = {1, 2, 4, hw};
    if (hw == 1)
        thread_counts = {1};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(
        std::unique(thread_counts.begin(), thread_counts.end()),
        thread_counts.end());

    bench::header("Host performance: simulated instructions per host "
                  "second (hw concurrency " + std::to_string(hw) + ")");
    std::printf("%-14s %6s %8s %10s %14s %16s %9s\n", "workload", "nodes",
                "threads", "host sec", "sim cycles", "instr/host-sec",
                "speedup");

    // Best of N runs per point: the sweep measures the kernel, not the
    // host's scheduling noise (quick mode keeps a single rep).
    const unsigned reps = scale == bench::Scale::Quick ? 1 : 3;
    std::vector<Sample> samples;
    for (const unsigned nodes : sizes) {
        for (const char *workload :
             {"fig3_traffic", "fig4_load", "radix_sort"}) {
            double serial_seconds = 0;
            for (const unsigned threads : thread_counts) {
                Sample s;
                for (unsigned rep = 0; rep < reps; ++rep) {
                    Sample r = workload == std::string("fig3_traffic")
                                   ? sampleTraffic(nodes, threads, window)
                               : workload == std::string("fig4_load")
                                   ? sampleFig4(nodes, threads, window)
                                   : sampleRadix(nodes, threads, radix_keys);
                    if (rep == 0 || r.hostSeconds < s.hostSeconds)
                        s = std::move(r);
                }
                if (threads == 1)
                    serial_seconds = s.hostSeconds;
                s.speedup = s.hostSeconds > 0 && serial_seconds > 0
                                ? serial_seconds / s.hostSeconds
                                : 1.0;
                std::printf("%-14s %6u %8u %10.3f %14llu %16.0f %8.2fx\n",
                            s.workload.c_str(), s.nodes, s.threads,
                            s.hostSeconds,
                            static_cast<unsigned long long>(s.simCycles),
                            s.instrPerHostSec(), s.speedup);
                samples.push_back(std::move(s));
            }
        }
    }

    // Tracing-on datapoint: the 64-node fig3 traffic again, serial,
    // with every trace category recording (no file export). The gap
    // between this row and the untraced one is the taps' cost.
    {
        Sample s;
        for (unsigned rep = 0; rep < reps; ++rep) {
            Sample r = sampleTrafficTraced(64, window);
            if (rep == 0 || r.hostSeconds < s.hostSeconds)
                s = std::move(r);
        }
        std::printf("%-14s %6u %8u %10.3f %14llu %16.0f %8.2fx\n",
                    s.workload.c_str(), s.nodes, s.threads, s.hostSeconds,
                    static_cast<unsigned long long>(s.simCycles),
                    s.instrPerHostSec(), s.speedup);
        samples.push_back(std::move(s));
    }

    // Sparse-activity A/B rows: a token ring over eight hot nodes of a
    // 4096-node mesh while every other node sits in a poll spin. The
    // nosched row rescans all of them each ticked cycle; the sched
    // row's speedup column reports the wake scheduler's win over it.
    {
        const unsigned sparse_nodes = 4096;
        const Cycle sparse_window =
            scale == bench::Scale::Quick ? 10000 : 25000;
        Sample off, on;
        for (unsigned rep = 0; rep < reps; ++rep) {
            Sample r = sampleSparse(sparse_nodes, sparse_window, false);
            if (rep == 0 || r.hostSeconds < off.hostSeconds)
                off = std::move(r);
        }
        for (unsigned rep = 0; rep < reps; ++rep) {
            Sample r = sampleSparse(sparse_nodes, sparse_window, true);
            if (rep == 0 || r.hostSeconds < on.hostSeconds)
                on = std::move(r);
        }
        on.speedup = on.hostSeconds > 0 && off.hostSeconds > 0
                         ? off.hostSeconds / on.hostSeconds
                         : 1.0;
        for (const Sample *s : {&off, &on}) {
            std::printf("%-14s %6u %8u %10.3f %14llu %16.0f %8.2fx\n",
                        s->workload.c_str(), s->nodes, s->threads,
                        s->hostSeconds,
                        static_cast<unsigned long long>(s->simCycles),
                        s->instrPerHostSec(), s->speedup);
        }
        samples.push_back(std::move(off));
        samples.push_back(std::move(on));
    }

    // Fabric-scheduler A/B rows: the same heterogeneous ring, wake
    // scheduling at its default in both, only the mesh stepping
    // strategy differs. The nosched row walks the legacy sharded
    // pull/move/commit; the sched row's speedup column reports the
    // event-driven fabric's end-to-end win (the fabric-phase win is
    // larger — compare the rows' net_sec + commit_sec).
    {
        const unsigned sparse_nodes = 4096;
        const Cycle sparse_window =
            scale == bench::Scale::Quick ? 10000 : 25000;
        Sample off, on;
        for (unsigned rep = 0; rep < reps; ++rep) {
            Sample r = sampleFabricQuiet(sparse_nodes, sparse_window, false);
            if (rep == 0 || r.hostSeconds < off.hostSeconds)
                off = std::move(r);
        }
        for (unsigned rep = 0; rep < reps; ++rep) {
            Sample r = sampleFabricQuiet(sparse_nodes, sparse_window, true);
            if (rep == 0 || r.hostSeconds < on.hostSeconds)
                on = std::move(r);
        }
        on.speedup = on.hostSeconds > 0 && off.hostSeconds > 0
                         ? off.hostSeconds / on.hostSeconds
                         : 1.0;
        for (const Sample *s : {&off, &on}) {
            std::printf("%-14s %6u %8u %10.3f %14llu %16.0f %8.2fx  "
                        "(fabric %.4fs)\n",
                        s->workload.c_str(), s->nodes, s->threads,
                        s->hostSeconds,
                        static_cast<unsigned long long>(s->simCycles),
                        s->instrPerHostSec(), s->speedup,
                        s->profile.netSeconds + s->profile.commitSeconds);
        }
        samples.push_back(std::move(off));
        samples.push_back(std::move(on));
    }

    // Large-mesh smoke row: one serial 4096-node (16x16x16) fig3 run
    // over a short, timeout-bounded window. Pins the mesh's audited
    // footprint for the --check regression gate.
    {
        const Sample s = sampleTraffic(4096, 1,
                                       scale == bench::Scale::Quick ? 300
                                                                    : 400);
        std::printf("%-14s %6u %8u %10.3f %14llu %16.0f %8.2fx  "
                    "(footprint %.1f MB)\n",
                    s.workload.c_str(), s.nodes, s.threads, s.hostSeconds,
                    static_cast<unsigned long long>(s.simCycles),
                    s.instrPerHostSec(), s.speedup,
                    s.footprintBytes / (1024.0 * 1024.0));
        samples.push_back(s);
    }

    // Sweep-throughput A/B rows: the 12-job radix/nqueens/tsp config
    // sweep, cold-booted per job vs farmed from warmed checkpoints
    // (the in-process equivalent of tools/jrun_server). The farm row's
    // speedup column is the end-to-end amortization win; both rows
    // simulate identical cycles and instructions.
    {
        Sample cold = sampleSweep(false);
        Sample farmed = sampleSweep(true);
        farmed.speedup = farmed.hostSeconds > 0 && cold.hostSeconds > 0
                             ? cold.hostSeconds / farmed.hostSeconds
                             : 1.0;
        for (const Sample *s : {&cold, &farmed}) {
            std::printf("%-14s %6u %8u %10.3f %14llu %16.0f %8.2fx  "
                        "(%.0f jobs/min, boot %.3fs)\n",
                        s->workload.c_str(), s->nodes, s->threads,
                        s->hostSeconds,
                        static_cast<unsigned long long>(s->simCycles),
                        s->instrPerHostSec(), s->speedup,
                        s->hostSeconds > 0 ? 12 * 60.0 / s->hostSeconds : 0.0,
                        s->bootSeconds);
        }
        samples.push_back(std::move(cold));
        samples.push_back(std::move(farmed));
    }

    writeJson(samples, hw);
    std::printf("\nwrote BENCH_host_perf.json (%zu samples)\n",
                samples.size());
    return 0;
}
