/**
 * @file
 * Figure 3: one-way message latency vs bisection traffic under uniform
 * random traffic (left) and processor efficiency vs grain size
 * (right). Paper: the 512-node network saturates near 6 Gbits/s of
 * its 14.4 Gbits/s one-direction bisection capacity; the 50%%
 * efficiency point falls at 100-300 cycles of computation per message
 * exchange.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "net/router_address.hh"
#include "trace/tracer.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

/**
 * `--trace <file>` mode: one traced fig3 run instead of the sweep.
 * Prints the fabric's own latency percentiles so
 * `jtrace_tool summarize <file>` can be checked against them (the
 * trace-reconstructed histogram must match within a cycle).
 */
int
runTraced(const char *path, unsigned nodes, Cycle window)
{
    TraceConfig tc;
    tc.enabled = true;
    tc.outPath = path;
    setTraceConfig(tc);
    const TrafficProbe p = runFig3Traffic(nodes, 6, 40, window);
    clearTraceConfig();
    bench::header("Figure 3 traced run: " + std::to_string(nodes) +
                  " nodes, " + std::to_string(window) + " cycles");
    std::printf("%zu trace events (%llu dropped), %llu messages "
                "delivered\n",
                p.trace.size(),
                static_cast<unsigned long long>(p.traceDropped),
                static_cast<unsigned long long>(
                    p.netStats.messagesDelivered));
    const Histogram &lat = p.netLatency;
    std::printf("latency cycles: count %llu mean %.1f p50 %llu p90 %llu "
                "p99 %llu max %llu\n",
                static_cast<unsigned long long>(lat.count()), lat.mean(),
                static_cast<unsigned long long>(lat.percentile(0.50)),
                static_cast<unsigned long long>(lat.percentile(0.90)),
                static_cast<unsigned long long>(lat.percentile(0.99)),
                static_cast<unsigned long long>(lat.max()));
    std::printf("wrote %s (open in chrome://tracing, or run "
                "jtrace_tool summarize)\n", path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace"))
            trace_path = argv[i + 1];
    }
    const auto scale = bench::parseScale(argc, argv);
    unsigned nodes = 512;
    Cycle window = 15000;
    std::vector<unsigned> idles = {0, 30, 80, 200, 500, 1500};
    if (scale == bench::Scale::Quick) {
        nodes = 64;
        window = 8000;
        idles = {0, 80, 500};
    } else if (scale == bench::Scale::Full) {
        window = 30000;
        idles = {0, 15, 30, 60, 120, 250, 500, 1000, 2000};
    }
    if (trace_path)
        return runTraced(trace_path, nodes, window);

    const MeshDims dims = MeshDims::forNodeCount(nodes);
    const double capacity =
        static_cast<double>(dims.y) * dims.z * 0.5 * 36 * 12.5e6 / 1e9;
    bench::header("Figure 3 (left): latency vs bisection traffic, " +
                  std::to_string(nodes) + " nodes (capacity " +
                  std::to_string(capacity).substr(0, 5) + " Gb/s)");
    std::printf("%6s %10s %14s %14s %12s\n", "words", "idle-iter",
                "traffic Mb/s", "latency cyc", "grain cyc");

    struct Point { unsigned words; LoadPoint p; };
    std::vector<Point> points;
    for (unsigned words : {2u, 4u, 8u, 16u}) {
        for (unsigned idle : idles) {
            const LoadPoint p = measureLoadPoint(nodes, words, idle, window);
            points.push_back({words, p});
            std::printf("%6u %10u %14.1f %14.1f %12.1f\n", words, idle,
                        p.bisectionMbits, p.oneWayLatency, p.grainCycles);
        }
    }

    bench::header("Figure 3 (right): efficiency vs grain size");
    std::printf("%6s %12s %12s\n", "words", "grain cyc", "efficiency");
    for (const auto &[words, p] : points)
        std::printf("%6u %12.1f %12.2f\n", words, p.grainCycles,
                    p.efficiency);
    std::printf("\npaper: saturation ~6 of 14.4 Gb/s; 50%% efficiency at "
                "100-300 cycles/message\n");

    // Large-mesh extension: the same latency/load probe on a 4096-node
    // (16x16x16) mesh — QCDSP-class sizes the wake scheduler makes
    // affordable. Shorter window: the points are for curve shape, not
    // saturation precision.
    if (scale != bench::Scale::Quick) {
        const unsigned big = 4096;
        const Cycle big_window = 3000;
        const MeshDims bd = MeshDims::forNodeCount(big);
        const double bcap =
            static_cast<double>(bd.y) * bd.z * 0.5 * 36 * 12.5e6 / 1e9;
        bench::header("Figure 3 (large mesh): " + std::to_string(big) +
                      " nodes (capacity " +
                      std::to_string(bcap).substr(0, 5) + " Gb/s)");
        std::printf("%6s %10s %14s %14s %12s\n", "words", "idle-iter",
                    "traffic Mb/s", "latency cyc", "grain cyc");
        for (unsigned idle : {0u, 100u, 400u}) {
            const LoadPoint p = measureLoadPoint(big, 6, idle, big_window);
            std::printf("%6u %10u %14.1f %14.1f %12.1f\n", 6u, idle,
                        p.bisectionMbits, p.oneWayLatency, p.grainCycles);
        }
    }
    return 0;
}
