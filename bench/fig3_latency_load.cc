/**
 * @file
 * Figure 3: one-way message latency vs bisection traffic under uniform
 * random traffic (left) and processor efficiency vs grain size
 * (right). Paper: the 512-node network saturates near 6 Gbits/s of
 * its 14.4 Gbits/s one-direction bisection capacity; the 50%%
 * efficiency point falls at 100-300 cycles of computation per message
 * exchange.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "net/router_address.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    unsigned nodes = 512;
    Cycle window = 15000;
    std::vector<unsigned> idles = {0, 30, 80, 200, 500, 1500};
    if (scale == bench::Scale::Quick) {
        nodes = 64;
        window = 8000;
        idles = {0, 80, 500};
    } else if (scale == bench::Scale::Full) {
        window = 30000;
        idles = {0, 15, 30, 60, 120, 250, 500, 1000, 2000};
    }

    const MeshDims dims = MeshDims::forNodeCount(nodes);
    const double capacity =
        static_cast<double>(dims.y) * dims.z * 0.5 * 36 * 12.5e6 / 1e9;
    bench::header("Figure 3 (left): latency vs bisection traffic, " +
                  std::to_string(nodes) + " nodes (capacity " +
                  std::to_string(capacity).substr(0, 5) + " Gb/s)");
    std::printf("%6s %10s %14s %14s %12s\n", "words", "idle-iter",
                "traffic Mb/s", "latency cyc", "grain cyc");

    struct Point { unsigned words; LoadPoint p; };
    std::vector<Point> points;
    for (unsigned words : {2u, 4u, 8u, 16u}) {
        for (unsigned idle : idles) {
            const LoadPoint p = measureLoadPoint(nodes, words, idle, window);
            points.push_back({words, p});
            std::printf("%6u %10u %14.1f %14.1f %12.1f\n", words, idle,
                        p.bisectionMbits, p.oneWayLatency, p.grainCycles);
        }
    }

    bench::header("Figure 3 (right): efficiency vs grain size");
    std::printf("%6s %12s %12s\n", "words", "grain cyc", "efficiency");
    for (const auto &[words, p] : points)
        std::printf("%6u %12.1f %12.2f\n", words, p.grainCycles,
                    p.efficiency);
    std::printf("\npaper: saturation ~6 of 14.4 Gb/s; 50%% efficiency at "
                "100-300 cycles/message\n");
    return 0;
}
