/**
 * @file
 * Table 5: major cost components of TSP under the CST-like object
 * layer -- user/OS split, xlate counts, and thread/message statistics.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/apps.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    TspConfig tc;
    tc.nodes = 64;
    tc.cities = scale == bench::Scale::Full ? 12 : 10;

    const AppResult r = runTsp(tc);

    std::uint64_t user_threads = 0, user_instr = 0, user_msg_words = 0;
    for (const auto &t : r.threadClasses) {
        if (t.name.rfind("tsp_", 0) != 0)
            continue;
        user_threads += t.threads;
        user_instr += t.instructions;
        user_msg_words += t.messageWords;
    }

    bench::header("Table 5: TSP cost components, 64 nodes, " +
                  std::to_string(tc.cities) + " cities");
    std::printf("%-24s %14s %14s\n", "", "user", "O/S");
    std::printf("%-24s %14.1f\n", "run time (ms)", r.runMs());
    std::printf("%-24s %14llu\n", "threads (msgs)",
                static_cast<unsigned long long>(user_threads));
    std::printf("%-24s %14llu %14llu\n", "instructions",
                static_cast<unsigned long long>(r.instructions -
                                                r.instructionsOs),
                static_cast<unsigned long long>(r.instructionsOs));
    std::printf("%-24s %14llu\n", "xlates",
                static_cast<unsigned long long>(r.xlates));
    std::printf("%-24s %14llu\n", "xlate faults",
                static_cast<unsigned long long>(r.xlateFaults));
    std::printf("%-24s %14.0f\n", "instr/thread (mean)",
                user_threads ? static_cast<double>(r.instructions -
                                                   r.instructionsOs) /
                                   user_threads
                             : 0.0);
    std::printf("%-24s %14.1f\n", "avg msg length",
                user_threads ? static_cast<double>(user_msg_words) /
                                   user_threads
                             : 0.0);
    std::printf("\npaper (14 cities): 26.3 s; 9.1M user threads of 309"
                " instr; 5.4e8 OS instr; 5.1e8 xlates with 1.6e4 faults;"
                " avg msg 5.1 words\n");
    return 0;
}
