/**
 * @file
 * Ablation: fixed-priority vs round-robin router output arbitration.
 * The paper blames part of radix sort's 64->128-node glitch on unfair
 * fixed-priority arbitration that can starve injection indefinitely.
 * This bench compares per-router injection-stall statistics and run
 * time under random traffic with both policies.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workloads/apps.hh"
#include "workloads/driver.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const unsigned nodes = scale == bench::Scale::Quick ? 64 : 256;

    bench::header("Ablation: router arbitration policy under load (" +
                  std::to_string(nodes) + " nodes)");
    std::printf("%-14s %14s %16s %14s\n", "policy", "msgs delivered",
                "max inj stalls", "mean stalls");

    for (const bool rr : {false, true}) {
        // Saturating random traffic, measured at the fabric level.
        auto m = buildMachine(nodes, "load.jasm", R"(
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
loop:
    LD R0, [A1+10]
    LSHI R1, R0, #13
    XOR R0, R0, R1
    LSHI R1, R0, #-15
    XOR R0, R0, R1
    LSHI R1, R0, #5
    XOR R0, R0, R1
    ST [A1+10], R0
    GETSP R1, NODES
    ADDI R1, R1, #-1
    AND R0, R0, R1
    CALL A2, jos_nnr
.region comm
    SEND0 R0
    LDL R1, hdr(sink, 3)
    SEND0 R1
    MOVEI R2, 0
    SEND20E R2, R2
.region comp
    BR loop
sink:
    SUSPEND
)");
        m->network().setRoundRobin(rr);
        for (NodeId id = 0; id < m->nodeCount(); ++id)
            m->pokeInt(id, jos::kAppScratchBase + 10,
                       static_cast<std::int32_t>((id + 1) * 2654435761u | 1));
        m->run(20000);
        std::uint64_t max_stalls = 0, sum_stalls = 0;
        for (NodeId id = 0; id < m->nodeCount(); ++id) {
            const auto s = m->network().router(id).stats().injectStalls;
            max_stalls = std::max(max_stalls, s);
            sum_stalls += s;
        }
        std::printf("%-14s %14llu %16llu %14.0f\n",
                    rr ? "round-robin" : "fixed-priority",
                    static_cast<unsigned long long>(
                        m->network().stats().messagesDelivered),
                    static_cast<unsigned long long>(max_stalls),
                    static_cast<double>(sum_stalls) / m->nodeCount());
    }
    std::printf("\nfixed-priority shows a much larger worst-case "
                "injection stall (the paper's two-orders-of-magnitude "
                "send-fault outliers)\n");
    return 0;
}
