/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: assembly
 * speed and simulated instruction throughput. These guard the
 * simulator's performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

using namespace jmsim;

namespace
{

const char *kSpin = R"(
boot:
    CALL A2, jos_init
    LDL R0, #100000
loop:
    ADDI R0, R0, #-1
    GTI R1, R0, #0
    BT R1, loop
    HALT
)";

void
BM_AssembleKernel(benchmark::State &state)
{
    for (auto _ : state) {
        Program prog = assemble(jos::withKernel("app.jasm", kSpin, true));
        benchmark::DoNotOptimize(prog.instructionCount());
    }
}
BENCHMARK(BM_AssembleKernel);

void
BM_SimulatedInstructions(benchmark::State &state)
{
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        Program prog = assemble(jos::withKernel("app.jasm", kSpin, false));
        MachineConfig cfg;
        cfg.dims = MeshDims::forNodeCount(1);
        JMachine m(cfg, std::move(prog));
        m.run(2'000'000);
        instructions += m.node(0).processor().stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedInstructions);

void
BM_MachineConstruction512(benchmark::State &state)
{
    Program prog = assemble(jos::withKernel("app.jasm", kSpin, false));
    for (auto _ : state) {
        MachineConfig cfg;
        cfg.dims = MeshDims::forNodeCount(512);
        Program copy = prog;
        JMachine m(cfg, std::move(copy));
        benchmark::DoNotOptimize(m.nodeCount());
    }
}
BENCHMARK(BM_MachineConstruction512);

} // namespace

BENCHMARK_MAIN();
