/**
 * @file
 * Table 1: one-way message overhead. The measured jmsim row appears
 * beside the paper's published numbers for contemporary machines
 * (vendor libraries and Active Messages implementations).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main()
{
    const OverheadResult r = measureOverhead();

    bench::header("Table 1: one-way message overhead");
    std::printf("%-22s %10s %10s %12s %12s\n", "machine", "us/msg",
                "us/byte", "cycles/msg", "cycles/byte");
    // Published values quoted from the paper (its Table 1).
    std::printf("%-22s %10.1f %10.2f %12d %12d\n", "nCUBE/2 (Vendor)",
                160.0, 0.45, 3200, 9);
    std::printf("%-22s %10.1f %10.2f %12d %12d\n", "CM-5 (Vendor)", 86.0,
                0.12, 2838, 4);
    std::printf("%-22s %10.1f %10.2f %12d %12d\n", "DELTA (Vendor)", 72.0,
                0.08, 2880, 3);
    std::printf("%-22s %10.1f %10.2f %12d %12d\n", "nCUBE/2 (Active)",
                23.0, 0.45, 460, 9);
    std::printf("%-22s %10.1f %10.2f %12d %12d\n", "CM-5 (Active)", 3.3,
                0.12, 109, 4);
    std::printf("%-22s %10.1f %10.2f %12.1f %12.2f   <- measured\n",
                "J-Machine (jmsim)", r.usPerMsg(), r.usPerByte(),
                r.cyclesPerMsg(), r.cyclesPerByte);
    std::printf("%-22s %10.1f %10.2f %12d %12.1f\n",
                "J-Machine (paper)", 0.9, 0.04, 11, 0.5);
    std::printf("\nsend overhead %.1f + receive overhead %.1f cycles\n",
                r.sendCyclesPerMsg, r.receiveCyclesPerMsg);
    return 0;
}
