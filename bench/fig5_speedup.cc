/**
 * @file
 * Figure 5: speedup of the four applications vs machine size at
 * constant problem size. Speedups are relative to the one-node run of
 * the same parallel program (the paper used tuned sequential bases
 * for LCS/Radix/N-Queens, which mainly shifts the curves; shapes are
 * comparable). Default problem sizes are scaled down from the paper's
 * where a full-size sweep would be too slow on one host core;
 * --full selects the paper's sizes.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workloads/apps.hh"

using namespace jmsim;
using namespace jmsim::workloads;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    std::vector<unsigned> sizes = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
    if (scale == bench::Scale::Quick)
        sizes = {1, 4, 16, 64};

    const unsigned lcs_a = 1024;
    const unsigned lcs_b = scale == bench::Scale::Full ? 4096 : 2048;
    const unsigned radix_keys = 65536;
    const unsigned queens = scale == bench::Scale::Full ? 13 : 10;
    const unsigned cities = scale == bench::Scale::Full ? 12 : 9;

    bench::header("Figure 5: application speedup vs machine size");
    std::printf("LCS %ux%u, radix %u keys, %u-queens, %u-city TSP\n",
                lcs_a, lcs_b, radix_keys, queens, cities);

    // Sequential jasm baselines for LCS / radix / N-Queens (as the
    // paper); TSP's base is the one-node parallel code (also as the
    // paper).
    std::printf("measuring sequential baselines...\n");
    const double base_lcs =
        cyclesToSeconds(runLcsSequential(lcs_a, lcs_b)) * 1e3;
    const double base_radix =
        cyclesToSeconds(runRadixSequential(radix_keys)) * 1e3;
    const double base_q =
        cyclesToSeconds(runNQueensSequential(queens)) * 1e3;
    std::printf("%6s %12s %12s %12s %12s\n", "nodes", "LCS", "Radix",
                "NQueens", "TSP");

    double base_tsp = 0;
    for (unsigned n : sizes) {
        LcsConfig lc;
        lc.nodes = n;
        lc.lenA = lcs_a;
        lc.lenB = lcs_b;
        const double t_lcs = runLcs(lc).runMs();

        RadixConfig rc;
        rc.nodes = n;
        rc.keys = radix_keys;
        const double t_radix = runRadixSort(rc).runMs();

        NQueensConfig qc;
        qc.nodes = n;
        qc.queens = queens;
        const double t_q = runNQueens(qc).runMs();

        TspConfig tc;
        tc.nodes = n;
        tc.cities = cities;
        const double t_tsp = runTsp(tc).runMs();

        if (n == sizes.front())
            base_tsp = t_tsp;
        std::printf("%6u %12.2f %12.2f %12.2f %12.2f\n", n,
                    base_lcs / t_lcs, base_radix / t_radix, base_q / t_q,
                    base_tsp / t_tsp);
    }
    std::printf("\npaper shapes: LCS/NQueens near-linear into the "
                "hundreds, radix with a glitch near the 64->128 "
                "bisection-constant step, TSP super-linear early\n");

    // Large-mesh extension (QCDSP-class sizes, see ROADMAP): the
    // node->router tables relocate to external memory past 544 nodes
    // (routerTablePrologue), so LCS scales to 4096 nodes and radix to
    // its combining tree's 1024-node ceiling; reported as throughput
    // since a sequential baseline at these sizes would take longer
    // than the whole sweep.
    if (scale == bench::Scale::Full) {
        bench::header("Figure 5 extension: large-mesh LCS");
        std::printf("%6s %12s %16s\n", "nodes", "run ms", "cells/kcycle");
        for (unsigned n : {1024u, 2048u, 4096u}) {
            LcsConfig lc;
            lc.nodes = n;
            lc.lenA = n;
            lc.lenB = lcs_b;
            const AppResult r = runLcs(lc);
            const double cells =
                static_cast<double>(n) * lcs_b /
                static_cast<double>(r.runCycles) * 1000.0;
            std::printf("%6u %12.2f %16.1f\n", n, r.runMs(), cells);
        }
        bench::header("Figure 5 extension: 1024-node radix sort");
        std::printf("%6s %12s %16s\n", "nodes", "run ms", "keys/kcycle");
        {
            RadixConfig rc;
            rc.nodes = 1024;
            rc.keys = radix_keys;
            const AppResult r = runRadixSort(rc);
            const double rate = static_cast<double>(radix_keys) /
                                static_cast<double>(r.runCycles) * 1000.0;
            std::printf("%6u %12.2f %16.1f\n", 1024u, r.runMs(), rate);
        }
    }
    return 0;
}
