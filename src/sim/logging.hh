/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic() is for internal simulator bugs (condition that can never
 * happen regardless of user input); fatal() is for user errors (bad
 * configuration, malformed assembly, ...). Both throw typed exceptions
 * rather than aborting so that library users and tests can recover.
 */

#ifndef JMSIM_SIM_LOGGING_HH
#define JMSIM_SIM_LOGGING_HH

#include <stdexcept>
#include <string>

namespace jmsim
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Report an internal simulator bug. Never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user error. Never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr (simulation continues). */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

} // namespace jmsim

#endif // JMSIM_SIM_LOGGING_HH
