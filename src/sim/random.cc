#include "sim/random.hh"

namespace jmsim
{

Xorshift64::Xorshift64(std::uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
}

std::uint64_t
Xorshift64::next()
{
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Xorshift64::nextBelow(std::uint64_t bound)
{
    return bound <= 1 ? 0 : next() % bound;
}

double
Xorshift64::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace jmsim
