#include "sim/stats.hh"

#include <cstdio>

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"

namespace jmsim
{

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets + 1, 0)
{
    if (bucket_width == 0)
        fatal("Histogram bucket width must be >= 1");
    if (num_buckets == 0)
        fatal("Histogram needs at least one bucket");
}

void
Histogram::add(std::uint64_t value)
{
    std::size_t idx = static_cast<std::size_t>(value / bucketWidth_);
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1; // overflow bucket
    buckets_[idx] += 1;
    stat_.add(static_cast<double>(value));
}

void
Histogram::merge(const Histogram &other)
{
    if (other.bucketWidth_ != bucketWidth_ ||
        other.buckets_.size() != buckets_.size())
        fatal("Histogram::merge with mismatched geometry");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    stat_.merge(other.stat_);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    stat_.reset();
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (stat_.count() == 0)
        return 0;
    if (fraction < 0)
        fraction = 0;
    if (fraction > 1)
        fraction = 1;
    const std::uint64_t target =
        static_cast<std::uint64_t>(fraction * static_cast<double>(stat_.count()));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (i + 1) * bucketWidth_ - 1;
    }
    return static_cast<std::uint64_t>(stat_.max());
}

void
SampleStat::save(ckpt::Writer &w) const
{
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
    w.u64(count_);
}

void
SampleStat::restore(ckpt::Reader &r)
{
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
    count_ = r.u64();
}

void
Histogram::save(ckpt::Writer &w) const
{
    w.u64(bucketWidth_);
    w.u64(buckets_.size());
    for (std::uint64_t b : buckets_)
        w.u64(b);
    stat_.save(w);
}

void
Histogram::restore(ckpt::Reader &r)
{
    if (r.u64() != bucketWidth_ || r.u64() != buckets_.size())
        fatal("checkpoint: histogram geometry mismatch");
    for (auto &b : buckets_)
        b = r.u64();
    stat_.restore(r);
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace jmsim
