/**
 * @file
 * A growable FIFO over a flat power-of-two array.
 *
 * Drop-in replacement for the std::deque-as-queue pattern on simulator
 * hot paths: push_back/pop_front never allocate once the ring has grown
 * to the workload's high-water mark, and the elements sit contiguously
 * (modulo one wrap point) instead of in scattered deque blocks.
 */

#ifndef JMSIM_SIM_RING_QUEUE_HH
#define JMSIM_SIM_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace jmsim
{

/** FIFO ring buffer; capacity doubles on demand and is never returned. */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Allocated slots (the grown-to high-water mark, never shrunk). */
    std::size_t capacity() const { return slots_.size(); }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    T &back() { return slots_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return slots_[wrap(head_ + count_ - 1)]; }

    /** i-th element from the front (0 == front()), for iteration. */
    const T &at(std::size_t i) const { return slots_[wrap(head_ + i)]; }

    void
    push_back(T value)
    {
        if (count_ == slots_.size())
            grow();
        slots_[wrap(head_ + count_)] = std::move(value);
        ++count_;
    }

    void
    pop_front()
    {
        slots_[head_] = T{};  // drop held resources eagerly
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    std::size_t wrap(std::size_t i) const { return i & (slots_.size() - 1); }

    void
    grow()
    {
        const std::size_t cap = slots_.size() ? slots_.size() * 2 : 8;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(slots_[wrap(head_ + i)]);
        slots_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace jmsim

#endif // JMSIM_SIM_RING_QUEUE_HH
