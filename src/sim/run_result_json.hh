/**
 * @file
 * The one run-result JSON row schema, shared by every emitter.
 *
 * `bench/host_perf` writes BENCH_host_perf.json sample lines and
 * `tools/jrun_server` streams per-job result lines in exactly this
 * format, so downstream tooling (and host_perf's own rigid baseline
 * parser) reads one schema. Fields are emitted in a fixed order, one
 * object per line; new fields are only ever appended after
 * `peak_rss_bytes` so older prefix parsers keep matching.
 */

#ifndef JMSIM_SIM_RUN_RESULT_JSON_HH
#define JMSIM_SIM_RUN_RESULT_JSON_HH

#include <cstdint>
#include <string>

namespace jmsim
{

/** One emitted row: a workload run's identity, host cost, simulated
 *  work, kernel phase split, pool traffic, and memory marks. */
struct RunRow
{
    std::string workload;
    unsigned nodes = 0;
    unsigned threads = 0;
    double hostSeconds = 0;            ///< wall time inside the run phase
    std::uint64_t simCycles = 0;
    std::uint64_t simInstructions = 0;
    double speedup = 1.0;              ///< vs the row's serial/cold peer
    double nodeSec = 0;                ///< kernel node-step phase
    double netSec = 0;                 ///< kernel fabric phase
    double commitSec = 0;              ///< kernel commit/barrier phase
    std::uint64_t poolLiveHighWater = 0;
    std::uint64_t poolAllocs = 0;
    std::uint64_t poolRecycled = 0;
    std::uint64_t footprintBytes = 0;  ///< audited simulator-state bytes
    /** Process-lifetime peak RSS at sample time — cumulative across
     *  every run the process has done so far, NOT per-run (getrusage
     *  reports a high-water mark that never falls). Rows sampled later
     *  in a process are therefore >= earlier rows. */
    std::uint64_t peakRssBytes = 0;
    /** Host seconds spent booting (assemble, predecode, build, poke)
     *  before the first stepped cycle. Zero for runs that reused a
     *  checkpoint or forked image instead of booting. */
    double bootSec = 0;

    double
    instrPerHostSec() const
    {
        return hostSeconds > 0 ? simInstructions / hostSeconds : 0;
    }
};

/** The row as one JSON object (no trailing newline or comma). */
std::string runRowJson(const RunRow &row);

} // namespace jmsim

#endif // JMSIM_SIM_RUN_RESULT_JSON_HH
