#include "sim/logging.hh"

#include <cstdio>

namespace jmsim
{

namespace
{
bool quietMode = false;
} // namespace

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace jmsim
