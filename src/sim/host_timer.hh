/**
 * @file
 * Cheap host-side phase timing for the simulation kernels.
 *
 * The per-cycle phase buckets (node step, net step, commit/barrier)
 * are stamped twice per phase per simulated cycle, so the probe has to
 * cost nanoseconds, not a syscall: on x86 we read the TSC directly and
 * calibrate it against the steady clock once per process; on aarch64
 * we read the generic-timer virtual counter, whose frequency the
 * architecture publishes in cntfrq_el0 (both are userspace-readable).
 * Everything else falls back to std::chrono::steady_clock. The
 * absolute error of the TSC calibration (~0.1%) is irrelevant — the
 * buckets are only ever compared against each other and wall time.
 */

#ifndef JMSIM_SIM_HOST_TIMER_HH
#define JMSIM_SIM_HOST_TIMER_HH

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace jmsim
{

/** Monotonic host tick counter (TSC where available). */
inline std::uint64_t
hostTicks()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/** Ticks per second, calibrated once against the steady clock. */
inline double
hostTicksPerSecond()
{
#if defined(__x86_64__) || defined(__i386__)
    static const double rate = [] {
        using clock = std::chrono::steady_clock;
        const auto w0 = clock::now();
        const std::uint64_t t0 = hostTicks();
        while (clock::now() - w0 < std::chrono::milliseconds(5)) {
        }
        const std::uint64_t t1 = hostTicks();
        const double dt = std::chrono::duration<double>(clock::now() - w0)
                              .count();
        return static_cast<double>(t1 - t0) / dt;
    }();
    return rate;
#elif defined(__aarch64__)
    static const double rate = [] {
        std::uint64_t hz;
        asm volatile("mrs %0, cntfrq_el0" : "=r"(hz));
        return static_cast<double>(hz);
    }();
    return rate;
#else
    using period = std::chrono::steady_clock::period;
    return static_cast<double>(period::den) / period::num;
#endif
}

/** Convert a tick delta to seconds. */
inline double
hostSeconds(std::uint64_t ticks)
{
    return static_cast<double>(ticks) / hostTicksPerSecond();
}

} // namespace jmsim

#endif // JMSIM_SIM_HOST_TIMER_HH
