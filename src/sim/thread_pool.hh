/**
 * @file
 * A persistent worker pool with a per-cycle barrier, built for the
 * simulation kernel's sharded node stepping.
 *
 * The pool owns `shards - 1` worker threads; the calling thread
 * participates as shard 0, so `run(fn)` executes `fn(shard)` exactly
 * once per shard and returns only when every shard has finished — one
 * release/arrive barrier pair per call. Workers spin briefly between
 * cycles (the serial network phase is short) and park on a futex-backed
 * atomic wait when the gap is long or the host is oversubscribed, so an
 * idle pool costs nothing.
 */

#ifndef JMSIM_SIM_THREAD_POOL_HH
#define JMSIM_SIM_THREAD_POOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace jmsim
{

/** Fork-join pool: one shard per thread, caller included. */
class ThreadPool
{
  public:
    /** Spawn a pool of @p shards shards (@p shards - 1 threads). */
    explicit ThreadPool(unsigned shards);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total shards, including the calling thread's shard 0. */
    unsigned shards() const { return shards_; }

    /**
     * Execute @p fn(shard) on every shard and barrier until all done.
     * The caller runs shard 0; @p fn must not call run() reentrantly.
     */
    void run(const std::function<void(unsigned)> &fn);

    /**
     * Shard index of the calling thread: the worker's own shard inside
     * run(), 0 anywhere else (the main thread is always shard 0).
     */
    static unsigned currentShard();

  private:
    void workerMain(unsigned shard);

    unsigned shards_ = 1;
    unsigned spinLimit_ = 0;  ///< spins before parking (0 on small hosts)
    std::vector<std::thread> workers_;
    const std::function<void(unsigned)> *job_ = nullptr;
    std::atomic<std::uint32_t> epoch_{0};  ///< bumped to release a cycle
    std::atomic<std::uint32_t> done_{0};   ///< workers finished this cycle
    std::atomic<bool> stop_{false};
};

} // namespace jmsim

#endif // JMSIM_SIM_THREAD_POOL_HH
