#include "sim/run_result_json.hh"

#include <cstdio>

namespace jmsim
{

std::string
runRowJson(const RunRow &row)
{
    // Fixed field order; see the header. host_perf's readBaseline()
    // sscanf-parses the leading prefix of exactly this layout.
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "{\"workload\": \"%s\", \"nodes\": %u, \"threads\": %u, "
        "\"host_seconds\": %.6f, \"sim_cycles\": %llu, "
        "\"sim_instructions\": %llu, \"instr_per_host_sec\": %.1f, "
        "\"speedup_vs_serial\": %.3f, "
        "\"node_sec\": %.6f, \"net_sec\": %.6f, \"commit_sec\": %.6f, "
        "\"pool_live_high_water\": %llu, \"pool_allocs\": %llu, "
        "\"pool_recycled\": %llu, \"footprint_bytes\": %llu, "
        "\"peak_rss_bytes\": %llu, \"boot_sec\": %.6f}",
        row.workload.c_str(), row.nodes, row.threads, row.hostSeconds,
        static_cast<unsigned long long>(row.simCycles),
        static_cast<unsigned long long>(row.simInstructions),
        row.instrPerHostSec(), row.speedup, row.nodeSec, row.netSec,
        row.commitSec,
        static_cast<unsigned long long>(row.poolLiveHighWater),
        static_cast<unsigned long long>(row.poolAllocs),
        static_cast<unsigned long long>(row.poolRecycled),
        static_cast<unsigned long long>(row.footprintBytes),
        static_cast<unsigned long long>(row.peakRssBytes), row.bootSec);
    return std::string(buf);
}

} // namespace jmsim
