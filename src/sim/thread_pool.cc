#include "sim/thread_pool.hh"

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

thread_local unsigned tShard = 0;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

unsigned
ThreadPool::currentShard()
{
    return tShard;
}

ThreadPool::ThreadPool(unsigned shards)
    : shards_(shards < 1 ? 1 : shards)
{
    // Spinning only pays when every shard can hold a core through the
    // serial phase; on an oversubscribed host, park immediately so the
    // main thread gets the CPU back.
    const unsigned hw = std::thread::hardware_concurrency();
    spinLimit_ = (hw >= shards_ && hw > 1) ? 4096 : 0;
    workers_.reserve(shards_ - 1);
    for (unsigned s = 1; s < shards_; ++s)
        workers_.emplace_back([this, s] { workerMain(s); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::run(const std::function<void(unsigned)> &fn)
{
    if (shards_ == 1) {
        fn(0);
        return;
    }
    job_ = &fn;
    done_.store(0, std::memory_order_relaxed);
    // The epoch bump publishes job_ (release) and releases the workers.
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    fn(0);
    // Arrive: wait for every worker, spinning first (they are usually
    // a few node-steps from done), then parking.
    const std::uint32_t target = shards_ - 1;
    unsigned spins = 0;
    for (;;) {
        const std::uint32_t d = done_.load(std::memory_order_acquire);
        if (d == target)
            break;
        if (spins++ < spinLimit_) {
            cpuRelax();
            continue;
        }
        done_.wait(d, std::memory_order_acquire);
    }
    job_ = nullptr;
}

void
ThreadPool::workerMain(unsigned shard)
{
    tShard = shard;
    std::uint32_t seen = 0;
    for (;;) {
        // Release gate: wait for the epoch to advance past what we ran.
        std::uint32_t e;
        unsigned spins = 0;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
            if (spins++ < spinLimit_) {
                cpuRelax();
                continue;
            }
            epoch_.wait(seen, std::memory_order_acquire);
            spins = 0;
        }
        seen = e;
        if (stop_.load(std::memory_order_acquire))
            return;
        if (job_)
            (*job_)(shard);
        done_.fetch_add(1, std::memory_order_release);
        done_.notify_all();
    }
}

} // namespace jmsim
