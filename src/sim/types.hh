/**
 * @file
 * Fundamental scalar types shared by every jmsim module.
 */

#ifndef JMSIM_SIM_TYPES_HH
#define JMSIM_SIM_TYPES_HH

#include <cstdint>

namespace jmsim
{

/** Simulated processor cycle count (12.5 MHz clock: 80 ns per cycle). */
using Cycle = std::uint64_t;

/** Word address inside one node's flat local address space. */
using Addr = std::uint32_t;

/** Linear node index inside a machine (0 .. nodes-1). */
using NodeId = std::uint32_t;

/** Processor clock frequency of the J-Machine prototype, in Hz. */
inline constexpr double kClockHz = 12.5e6;

/** Duration of one processor cycle in microseconds. */
inline constexpr double kUsPerCycle = 1e6 / kClockHz;

/** Convert a cycle count to microseconds at the prototype clock. */
inline constexpr double
cyclesToUs(Cycle cycles)
{
    return static_cast<double>(cycles) * kUsPerCycle;
}

/** Convert a cycle count to seconds at the prototype clock. */
inline constexpr double
cyclesToSeconds(Cycle cycles)
{
    return static_cast<double>(cycles) / kClockHz;
}

} // namespace jmsim

#endif // JMSIM_SIM_TYPES_HH
