/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * All stochastic behaviour in jmsim (random traffic destinations, key
 * generation, ...) flows through Xorshift64 so that every experiment
 * is reproducible from its seed.
 */

#ifndef JMSIM_SIM_RANDOM_HH
#define JMSIM_SIM_RANDOM_HH

#include <cstdint>

namespace jmsim
{

/** Marsaglia xorshift64* generator: tiny, fast, and deterministic. */
class Xorshift64
{
  public:
    /** Seed must be non-zero; zero is remapped to a fixed constant. */
    explicit Xorshift64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) for bound >= 1. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    std::uint64_t state_;
};

} // namespace jmsim

#endif // JMSIM_SIM_RANDOM_HH
