/**
 * @file
 * Lightweight statistics primitives used throughout the simulator.
 *
 * Components keep their statistics as plain member structs built from
 * these types; experiment harnesses may read the fields directly, and
 * machine-wide consumers go through the CounterRegistry
 * (src/trace/counter_registry.hh), which components feed by
 * registering pointers or reader callbacks at machine build time.
 */

#ifndef JMSIM_SIM_STATS_HH
#define JMSIM_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jmsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Running mean/min/max/count accumulator for scalar samples. */
class SampleStat
{
  public:
    /** Record one sample. */
    void
    add(double value)
    {
        sum_ += value;
        count_ += 1;
        if (count_ == 1 || value < min_)
            min_ = value;
        if (count_ == 1 || value > max_)
            max_ = value;
    }

    /** Merge another accumulator into this one. */
    void
    merge(const SampleStat &other)
    {
        if (other.count_ == 0)
            return;
        sum_ += other.sum_;
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (count_ == 0 || other.max_ > max_)
            max_ = other.max_;
        count_ += other.count_;
    }

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0;
        min_ = 0;
        max_ = 0;
        count_ = 0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0; }
    double max() const { return count_ ? max_ : 0; }
    double mean() const { return count_ ? sum_ / count_ : 0; }

    void save(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-width bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /** An empty single-bucket histogram (assign or merge into it). */
    Histogram() : Histogram(1, 1) {}

    /**
     * @param bucket_width width of each bucket (>=1)
     * @param num_buckets  number of regular buckets before overflow
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void add(std::uint64_t value);

    /** Fold another histogram of identical geometry into this one. */
    void merge(const Histogram &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return stat_.count(); }
    double mean() const { return stat_.mean(); }
    std::uint64_t min() const { return static_cast<std::uint64_t>(stat_.min()); }
    std::uint64_t max() const { return static_cast<std::uint64_t>(stat_.max()); }

    /** Value below which the given fraction of samples fall. */
    std::uint64_t percentile(double fraction) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }

    /** Serialize counts only; geometry must match on restore. */
    void save(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    SampleStat stat_;
};

/** Format a double with the given precision (table printing helper). */
std::string formatDouble(double value, int precision);

} // namespace jmsim

#endif // JMSIM_SIM_STATS_HH
