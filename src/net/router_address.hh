/**
 * @file
 * 3-D mesh coordinates and mesh geometry.
 *
 * Router addresses are (x, y, z) coordinates packed into a word as
 * x | y<<5 | z<<10 (5 bits per dimension, up to 32 nodes per axis).
 * Applications obtain their own address from the NNR special register
 * and compute peers' addresses from linear node indices — the "NNR
 * calc" overhead category of the paper's Figure 6.
 */

#ifndef JMSIM_NET_ROUTER_ADDRESS_HH
#define JMSIM_NET_ROUTER_ADDRESS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace jmsim
{

/** Coordinates of one node in the 3-D mesh. */
struct RouterAddr
{
    std::uint8_t x = 0;
    std::uint8_t y = 0;
    std::uint8_t z = 0;

    bool operator==(const RouterAddr &other) const = default;

    /** Pack into the NNR word format. */
    std::uint32_t
    pack() const
    {
        return static_cast<std::uint32_t>(x) |
               (static_cast<std::uint32_t>(y) << 5) |
               (static_cast<std::uint32_t>(z) << 10);
    }

    /** Unpack from the NNR word format. */
    static RouterAddr
    unpack(std::uint32_t bits)
    {
        return {static_cast<std::uint8_t>(bits & 0x1f),
                static_cast<std::uint8_t>((bits >> 5) & 0x1f),
                static_cast<std::uint8_t>((bits >> 10) & 0x1f)};
    }

    /** Manhattan distance to @p other (network hops). */
    unsigned hopsTo(const RouterAddr &other) const;

    std::string toString() const;
};

/** Mesh dimensions plus linear <-> coordinate conversion. */
struct MeshDims
{
    unsigned x = 1;
    unsigned y = 1;
    unsigned z = 1;

    unsigned nodes() const { return x * y * z; }

    /** Packed form for the DIMS special register. */
    std::uint32_t
    pack() const
    {
        return x | (y << 5) | (z << 10);
    }

    /** x-major linear index of a coordinate. */
    NodeId
    toLinear(const RouterAddr &addr) const
    {
        return addr.x + x * (addr.y + y * addr.z);
    }

    /** Coordinate of a linear index. */
    RouterAddr
    toCoord(NodeId id) const
    {
        return {static_cast<std::uint8_t>(id % x),
                static_cast<std::uint8_t>((id / x) % y),
                static_cast<std::uint8_t>(id / (x * y))};
    }

    /**
     * Standard experiment geometry for a node count: the most cubic
     * power-of-two box (matches how the 512-node prototype was run as
     * 8x8x8). fatal() unless @p nodes is a power of two <= 32768.
     */
    static MeshDims forNodeCount(unsigned nodes);
};

} // namespace jmsim

#endif // JMSIM_NET_ROUTER_ADDRESS_HH
