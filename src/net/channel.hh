/**
 * @file
 * A one-flit pipeline register between adjacent routers.
 *
 * A flit written in cycle t becomes visible to the downstream router
 * in cycle t+1 (the paper's 1 cycle/hop minimum latency). The channel
 * holds at most one flit; if the downstream input buffer is full, the
 * flit stays put and the upstream router cannot send — wormhole
 * back-pressure.
 */

#ifndef JMSIM_NET_CHANNEL_HH
#define JMSIM_NET_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "net/message.hh"
#include "sim/types.hh"

namespace jmsim
{

namespace ckpt
{
class Writer;
class Reader;
struct HandleMap;
} // namespace ckpt

/**
 * Bitmap over the mesh's channel array, one bit per channel index,
 * plus a dirty-word list so the commit phase pays for the channels
 * actually written, not for the bitmap's size.
 *
 * The move phase marks every channel it writes; marking a word that
 * was zero records its index once. The commit phase sorts the (small)
 * dirty-word list and scans the set bits of each listed word in
 * ascending word/bit order, which is exactly ascending channel index —
 * the deterministic commit order — in O(channels written) instead of
 * the O(mesh-channels / 64) full-word scan (384 words/cycle at 4096
 * nodes). The full-word scan survives as the `--net-sched off` legacy
 * path, which simply ignores the dirty list.
 */
class ChannelBitmap
{
  public:
    /** Size to @p words 64-bit words, all clear. */
    void
    assign(std::size_t words)
    {
        bits_.assign(words, 0);
        dirty_.clear();
    }

    /** Mark channel @p index as written this cycle. */
    void
    mark(std::uint32_t index)
    {
        const std::uint32_t w = index >> 6;
        if (bits_[w] == 0)
            dirty_.push_back(w);
        bits_[w] |= std::uint64_t{1} << (index & 63u);
    }

    std::size_t words() const { return bits_.size(); }
    std::uint64_t word(std::size_t w) const { return bits_[w]; }

    /** Read-and-clear one word (dirty-list consumers). */
    std::uint64_t
    takeWord(std::size_t w)
    {
        const std::uint64_t b = bits_[w];
        bits_[w] = 0;
        return b;
    }

    /** Indices of the words marked since the last clear, in mark
     *  order (one entry per word; consumers sort for commit order). */
    std::vector<std::uint32_t> &dirtyWords() { return dirty_; }
    const std::vector<std::uint32_t> &dirtyWords() const { return dirty_; }

    /** Forget the dirty list (after its words have been cleared). */
    void clearDirty() { dirty_.clear(); }

    std::uint64_t
    footprintBytes() const
    {
        return bits_.capacity() * sizeof(std::uint64_t) +
               dirty_.capacity() * sizeof(std::uint32_t);
    }

  private:
    std::vector<std::uint64_t> bits_;
    std::vector<std::uint32_t> dirty_;
};

/** Mark channel @p index as written this cycle. */
inline void
markTouched(ChannelBitmap &bits, std::uint32_t index)
{
    bits.mark(index);
}

/** Unidirectional link between two routers. */
class Channel
{
  public:
    Channel() = default;

    /** Identify endpoints (set once by the mesh at construction). */
    void
    setEndpoints(NodeId from, NodeId to, unsigned axis, bool positive)
    {
        from_ = from;
        to_ = to;
        axis_ = axis;
        positive_ = positive;
        // Downstream input direction: the opposite of the direction the
        // channel leaves the upstream router in (dir = axis*2 + sign).
        inDir_ = static_cast<std::uint8_t>((axis * 2 + (positive ? 1 : 0)) ^
                                           1u);
    }

    /** Position in the mesh's channel array (set once at construction;
     *  the commit phase's bitmap is keyed by it). */
    void setIndex(std::uint32_t index) { index_ = index; }
    std::uint32_t index() const { return index_; }

    /** Bisection accounting role, precomputed at construction: +1 if
     *  this channel crosses the X mid-plane positively, -1 negatively,
     *  0 (the overwhelmingly common case) if it doesn't cross. */
    void setBisectRole(std::int8_t role) { bisectRole_ = role; }
    std::int8_t bisectRole() const { return bisectRole_; }

    NodeId from() const { return from_; }
    NodeId to() const { return to_; }
    unsigned axis() const { return axis_; }
    bool positive() const { return positive_; }

    /** Input direction this channel feeds on the downstream router. */
    unsigned inDir() const { return inDir_; }

    /** Upstream: may a flit be written this cycle? */
    bool canSend() const { return !curValid_ && !nextValid_; }

    /** Upstream: write a flit (requires canSend()). */
    void
    send(Flit flit)
    {
        next_ = std::move(flit);
        nextValid_ = true;
    }

    /** Downstream: is a flit visible this cycle? */
    bool hasFlit() const { return curValid_; }

    /** Downstream: inspect the visible flit. */
    const Flit &peek() const { return cur_; }

    /** Downstream: consume the visible flit. */
    Flit
    take()
    {
        curValid_ = false;
        return std::move(cur_);
    }

    /** The flit staged for commit (valid only after a send this cycle;
     *  the commit phase reads it for stats and the fused push). */
    const Flit &staged() const { return next_; }

    /** Fused-commit fast path: the staged flit went straight into the
     *  downstream input FIFO, so it never needs to become visible.
     *  Equivalent to commit() followed by take(). */
    void dropStaged() { nextValid_ = false; }

    /** End of cycle: advance the pipeline register. @return true if a
     *  flit became visible (the mesh then wakes the destination). */
    bool
    commit()
    {
        if (!nextValid_)
            return false;
        cur_ = std::move(next_);
        curValid_ = true;
        nextValid_ = false;
        return true;
    }

    /** True if the channel holds anything at all. */
    bool busy() const { return curValid_ || nextValid_; }

    /** Live pool handles in the pipeline register (visible + staged). */
    void collectHandles(std::vector<MsgHandle> &out) const;

    /** Serialize the dynamic register state (wiring is rebuilt). */
    void save(ckpt::Writer &w, const ckpt::HandleMap &map) const;
    void restore(ckpt::Reader &r, const ckpt::HandleMap &map);

  private:
    Flit cur_;
    Flit next_;
    bool curValid_ = false;
    bool nextValid_ = false;
    NodeId from_ = 0;
    NodeId to_ = 0;
    std::uint32_t index_ = 0;
    unsigned axis_ = 0;
    bool positive_ = true;
    std::uint8_t inDir_ = 0;
    std::int8_t bisectRole_ = 0;
};

} // namespace jmsim

#endif // JMSIM_NET_CHANNEL_HH
