/**
 * @file
 * A recycling slab arena for in-flight messages.
 *
 * Messages are allocated in fixed-size slabs and named by a 32-bit
 * MsgHandle (slab index · slot index), so a Flit can reference its
 * message without owning it: no heap allocation and no atomic
 * reference count anywhere on the per-cycle flit path. A released
 * message keeps its payload vector's capacity, so the steady state of
 * a traffic-bound run allocates nothing at all — the pool's recycle
 * counters prove it (see tests/message_pool_test.cc).
 *
 * Threading: free lists and counters are per worker shard (indexed by
 * ThreadPool::currentShard()), because allocation happens in the
 * parallel node phase (NI send) and release in the parallel fabric
 * move phase (tail delivery) of the sharded kernel. A shard only ever
 * touches its own free list, and the two phases are separated by the
 * cycle barrier, so no per-message operation takes a lock; only slab
 * growth — which the recycling makes vanishingly rare — serializes.
 * Slab pointers live in a fixed-capacity directory so get() never
 * races a concurrent grow.
 */

#ifndef JMSIM_NET_MESSAGE_POOL_HH
#define JMSIM_NET_MESSAGE_POOL_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/message.hh"

namespace jmsim
{

/** Pool observability counters (host-side; reduced over shards). */
struct PoolStats
{
    std::uint64_t allocs = 0;        ///< messages handed out
    std::uint64_t recycled = 0;      ///< allocs served from a free list
    std::uint64_t released = 0;      ///< messages returned to the pool
    std::uint64_t liveNow = 0;       ///< currently outstanding handles
    std::uint64_t liveHighWater = 0; ///< peak of end-of-cycle samples
    std::uint32_t capacity = 0;      ///< slots carved out of slabs so far
};

/** Slab-allocated, handle-indexed message arena. */
class MessagePool
{
  public:
    static constexpr unsigned kSlabShift = 8;
    static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;
    static constexpr std::uint32_t kMaxSlabs = 1u << 14;  ///< 4M messages

    MessagePool() : shards_(1) {}

    MessagePool(const MessagePool &) = delete;
    MessagePool &operator=(const MessagePool &) = delete;

    /** Size the per-shard free lists (main thread, between cycles).
     *  Shrinking folds the dropped shards' lists into shard 0. */
    void setShards(unsigned shards);

    /** Take a message (recycled when possible). Fields are reset; the
     *  payload vector keeps its capacity. */
    MsgHandle alloc();

    /** Return a message to the calling shard's free list. */
    void release(MsgHandle handle);

    Message &
    get(MsgHandle handle)
    {
        return slabs_[handle >> kSlabShift][handle & (kSlabSize - 1)];
    }

    const Message &
    get(MsgHandle handle) const
    {
        return slabs_[handle >> kSlabShift][handle & (kSlabSize - 1)];
    }

    /** Outstanding handles (call from the main thread at a barrier). */
    std::uint64_t live() const;

    /** Record an end-of-cycle high-water sample of live(). */
    void
    sampleHighWater()
    {
        const std::uint64_t l = live();
        if (l > liveHighWater_)
            liveHighWater_ = l;
    }

    /** Reduce the per-shard counters (main thread, workers idle). */
    PoolStats stats() const;

    /** Zero the counters; live accounting and free lists persist. */
    void resetStats();

    /** Drop every slab, free list, and counter (checkpoint restore:
     *  live messages are re-alloc()ed from the image afterwards). */
    void resetAll();

    /** Overwrite the folded counters after a restore. The restore path
     *  re-allocates live messages (bumping shard-0 allocs), so this
     *  runs last and installs the image's exact values. */
    void restoreCounters(std::uint64_t allocs, std::uint64_t recycled,
                         std::uint64_t released, std::uint64_t liveNow,
                         std::uint64_t liveHighWater);

    /** Heap bytes behind the arena: every carved slab, each slot's
     *  retained payload capacity, and the per-shard free lists (main
     *  thread, workers idle — like stats()). */
    std::uint64_t footprintBytes() const;

  private:
    struct alignas(64) Shard
    {
        std::vector<MsgHandle> freeList;
        std::uint64_t allocs = 0;
        std::uint64_t recycled = 0;
        std::uint64_t released = 0;
        std::int64_t liveDelta = 0;  ///< +1 per alloc, -1 per release
    };

    /** Carve a fresh slab into @p shard's free list (takes the lock). */
    MsgHandle grow(Shard &shard);

    std::vector<Shard> shards_;
    /** Fixed directory: entries are written once, under growMutex_,
     *  before any handle into the slab escapes the allocating shard. */
    std::array<std::unique_ptr<Message[]>, kMaxSlabs> slabs_;
    std::uint32_t slabCount_ = 0;  ///< guarded by growMutex_
    std::mutex growMutex_;
    std::uint64_t liveHighWater_ = 0;  ///< main thread only
};

} // namespace jmsim

#endif // JMSIM_NET_MESSAGE_POOL_HH
