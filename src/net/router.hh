/**
 * @file
 * One MDP router: deterministic e-cube wormhole routing on a 3-D mesh
 * with two priority levels carried on separate virtual networks.
 *
 * Output arbitration is fixed-priority by input index with injection
 * last — the source of the unfairness the paper observed in radix sort
 * ("nodes may be unable to inject a message ... for an arbitrarily
 * long period of time"). A round-robin mode is provided for the
 * arbitration ablation. Priority-1 traffic is preferred over
 * priority-0 whenever both want the same physical channel.
 */

#ifndef JMSIM_NET_ROUTER_HH
#define JMSIM_NET_ROUTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "net/channel.hh"
#include "net/message.hh"
#include "net/message_pool.hh"
#include "net/router_address.hh"

namespace jmsim
{

class Tracer;

namespace ckpt
{
class Writer;
class Reader;
struct HandleMap;
} // namespace ckpt

/** Input/output directions; Inject/Deliver are the local ports. */
enum Direction : std::uint8_t
{
    kXNeg = 0, kXPos, kYNeg, kYPos, kZNeg, kZPos,
    kNumDirs = 6,
};

/** Input port indices: six directions then injection. */
inline constexpr unsigned kInjectPort = 6;
inline constexpr unsigned kNumInPorts = 7;

/** Output port indices: six directions then delivery. */
inline constexpr unsigned kDeliverPort = 6;
inline constexpr unsigned kNumOutPorts = 7;

/** Number of virtual networks (message priorities). */
inline constexpr unsigned kNumVns = 2;

/** Sink for flits that reach their destination (the node's NI). */
class DeliverSink
{
  public:
    virtual ~DeliverSink() = default;

    /** May the sink accept this flit this cycle? */
    virtual bool canAcceptFlit(const Flit &flit) = 0;

    /** Hand a flit to the sink (only after canAcceptFlit). */
    virtual void acceptFlit(const Flit &flit, Cycle now) = 0;
};

/** A small flit FIFO (per input port, per virtual network). */
class FlitFifo
{
  public:
    static constexpr unsigned kCapacity = 4;

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == kCapacity; }
    unsigned size() const { return count_; }

    void
    push(Flit flit)
    {
        slots_[(head_ + count_) % kCapacity] = std::move(flit);
        ++count_;
    }

    const Flit &front() const { return slots_[head_]; }
    Flit &frontMut() { return slots_[head_]; }

    /** i-th flit from the front (0 == front()), for serialization. */
    const Flit &at(unsigned i) const { return slots_[(head_ + i) % kCapacity]; }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    Flit
    pop()
    {
        Flit f = std::move(slots_[head_]);
        head_ = (head_ + 1) % kCapacity;
        --count_;
        return f;
    }

    /** Discard the front flit (pop without the copy out — movers that
     *  already forwarded the front by reference). */
    void
    drop()
    {
        head_ = (head_ + 1) % kCapacity;
        --count_;
    }

  private:
    std::array<Flit, kCapacity> slots_;
    unsigned head_ = 0;
    unsigned count_ = 0;
};

/** Router statistics. */
struct RouterStats
{
    std::uint64_t flitsRouted = 0;     ///< flits moved to any output
    std::uint64_t flitsDelivered = 0;  ///< flits handed to the local sink
    std::uint64_t injectStalls = 0;    ///< cycles the inject head lost arbitration
};

/** One node's router. */
class Router
{
  public:
    Router() = default;

    /** Wire the router into the mesh. One-shot: re-initialising a live
     *  router would silently discard worm-allocation state. */
    void init(NodeId id, RouterAddr addr);

    /** Attach (or replace) the local delivery sink (the node's NI). */
    void setDeliverSink(DeliverSink *sink) { sink_ = sink; }

    /** Attach the message pool flits resolve through (set by the mesh).
     *  The router releases a message when it consumes its tail flit at
     *  the delivery port and the sink's callback has returned. */
    void setPool(MessagePool *pool) { pool_ = pool; }

    /** Attach the outgoing channel in direction @p dir (may be null). */
    void setOutChannel(Direction dir, Channel *ch) { out_[dir] = ch; }

    /** Attach the incoming channel in direction @p dir (may be null). */
    void setInChannel(Direction dir, Channel *ch) { in_[dir] = ch; }

    /** Select round-robin (true) or fixed-priority (false) arbitration. */
    void setRoundRobin(bool rr) { roundRobin_ = rr; }

    /** Attach the machine's tracer (null = tracing off). */
    void setTracer(Tracer *tracer) { trace_ = tracer; }

    /** Phase 1: drain visible flits from incoming channels. */
    void pullPhase();

    /** Pull the single visible flit on input @p dir. The event-driven
     *  mesh calls this at commit time (fused push) and from the
     *  back-pressure retry list. @return false if the input FIFO is
     *  full — the flit stays visible in the channel. */
    bool
    pullChannel(unsigned dir)
    {
        Channel *ch = in_[dir];
        const unsigned vn = ch->peek().vn;
        if (fifos_[dir][vn].full())
            return false;  // back-pressure: the flit stays visible
        fifos_[dir][vn].push(ch->take());
        pendingIn_ &= ~(1u << dir);
        occ_[vn] |= 1u << dir;
        ++resident_;
        if (fifos_[dir][vn].size() == 1)
            updateFront(dir, vn);
        return true;
    }

    /** Fused-commit push: append a committing channel's staged flit to
     *  input @p dir without routing it through the channel's visible
     *  register (the mesh drops the staged copy on success). @return
     *  false if the input FIFO is full — the mesh then commits the
     *  channel normally and parks it for retry. */
    bool
    pushInput(unsigned dir, const Flit &flit)
    {
        const unsigned vn = flit.vn;
        FlitFifo &fifo = fifos_[dir][vn];
        if (fifo.full())
            return false;
        fifo.push(flit);
        occ_[vn] |= 1u << dir;
        ++resident_;
        if (fifo.size() == 1)
            updateFront(dir, vn);
        return true;
    }

    /** Phase 2: arbitrate outputs and move at most 1 flit per output.
     *  Channels written this cycle are marked in @p touched so the
     *  mesh commits only those pipeline registers.
     *  @return true if any output channel was written. */
    bool movePhase(Cycle now, ChannelBitmap &touched);

    /** May the NI enqueue a flit on the inject port? */
    bool
    canInject(unsigned vn) const
    {
        return !fifos_[kInjectPort][vn].full();
    }

    /** Free inject-FIFO slots at priority @p vn (staged-injection
     *  accounting for the threaded kernel). */
    unsigned
    injectFree(unsigned vn) const
    {
        return FlitFifo::kCapacity - fifos_[kInjectPort][vn].size();
    }

    /** NI pushes one flit onto the inject port. */
    void inject(Flit flit);

    /** Mesh: a committed channel made a flit visible on input @p dir. */
    void notePendingIn(unsigned dir) { pendingIn_ |= 1u << dir; }
    void clearPendingIn() { pendingIn_ = 0; }

    /** Total flits buffered in this router. */
    unsigned residentFlits() const { return resident_; }

    /** True if an incoming channel holds a flit we have not pulled. */
    bool hasPendingInput() const;

    const RouterStats &stats() const { return stats_; }
    void resetStats() { stats_ = RouterStats{}; }

    NodeId id() const { return id_; }
    RouterAddr addr() const { return addr_; }

    /** E-cube output port for a head flit, read off its cached route:
     *  the first axis with remaining hops in dimension order, or the
     *  delivery port when all three are spent. Pure function of the
     *  flit — no message-slab load, no address arithmetic. */
    static unsigned
    headRoute(const Flit &flit)
    {
        for (unsigned axis = 0; axis < 3; ++axis) {
            const std::uint8_t r = flit.route[axis];
            if (r & 0x7fu)
                return axis * 2 + ((r & 0x80u) ? 0u : 1u);
        }
        return kDeliverPort;
    }

    /** Live pool handles buffered in this router's FIFOs, in
     *  deterministic (port, vn, FIFO) order. */
    void collectHandles(std::vector<MsgHandle> &out) const;

    /** Serialize FIFO contents, worm ownership, and statistics; the
     *  derived masks (occ_/head snapshot/ownerMask_) are recomputed on
     *  restore. */
    void save(ckpt::Writer &w, const ckpt::HandleMap &map) const;
    void restore(ckpt::Reader &r, const ckpt::HandleMap &map);

  private:
    /** Move one flit from input @p in to output @p out if possible. */
    bool tryMove(unsigned out, unsigned vn, unsigned in, Cycle now,
                 ChannelBitmap &touched);

    /** Re-derive the head-snapshot entry for (input, vn) from the FIFO
     *  front. Called wherever the front changes — every pop, and every
     *  push into an empty FIFO — so the snapshot is always current and
     *  the move phase never rescans FIFO contents. */
    void
    updateFront(unsigned in, unsigned vn)
    {
        const FlitFifo &fifo = fifos_[in][vn];
        if (!fifo.empty() && fifo.front().isHead()) {
            headOut_[in][vn] =
                static_cast<std::uint8_t>(headRoute(fifo.front()));
            headMask_[vn] |= 1u << in;
        } else {
            headMask_[vn] &= ~(1u << in);
        }
    }

    /** Set the worm owning (output, vn), keeping ownerMask_ in sync. */
    void
    setOwner(unsigned out, unsigned vn, std::int8_t in)
    {
        owner_[out][vn] = in;
        if (in >= 0)
            ownerMask_[vn] |= 1u << out;
        else
            ownerMask_[vn] &= ~(1u << out);
    }

    NodeId id_ = 0;
    bool initialized_ = false;
    RouterAddr addr_;
    DeliverSink *sink_ = nullptr;
    MessagePool *pool_ = nullptr;
    Tracer *trace_ = nullptr;
    std::array<Channel *, kNumDirs> in_{};
    std::array<Channel *, kNumDirs> out_{};
    std::array<std::array<FlitFifo, kNumVns>, kNumInPorts> fifos_;
    /** Input currently owning each (output, vn), or -1. */
    std::array<std::array<std::int8_t, kNumVns>, kNumOutPorts> owner_;
    /** Per-vn bitmask over inputs: FIFO non-empty (movePhase skip). */
    std::array<std::uint8_t, kNumVns> occ_{};
    /** Persistent head snapshot: which inputs front a head flit on each
     *  vn, and the output port each such head routes to. Maintained by
     *  updateFront at every front change, so the move phase reads it
     *  instead of rescanning FIFO contents every cycle. Entries of
     *  headOut_ are meaningful only under a set headMask_ bit. */
    std::array<std::array<std::uint8_t, kNumVns>, kNumInPorts> headOut_;
    std::array<std::uint8_t, kNumVns> headMask_{};
    /** Bitmask over directions: in-channel holds a visible flit. */
    std::uint8_t pendingIn_ = 0;
    /** Per-vn bitmask over outputs: owner_ >= 0 (movePhase skip). */
    std::array<std::uint8_t, kNumVns> ownerMask_{};
    /** Round-robin scan start per output (ablation mode only). */
    std::array<std::uint8_t, kNumOutPorts> rrNext_{};
    unsigned resident_ = 0;
    bool roundRobin_ = false;
    bool sentThisCycle_ = false;
    std::array<bool, kNumVns> injectMoved_{};
    RouterStats stats_;
};

} // namespace jmsim

#endif // JMSIM_NET_ROUTER_HH
