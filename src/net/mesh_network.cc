#include "net/mesh_network.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

namespace
{

/** Neighbour coordinate in direction @p dir, or false if off-mesh. */
bool
neighbour(const MeshDims &dims, RouterAddr at, unsigned dir, RouterAddr &out)
{
    int x = at.x, y = at.y, z = at.z;
    switch (dir) {
      case kXNeg: x -= 1; break;
      case kXPos: x += 1; break;
      case kYNeg: y -= 1; break;
      case kYPos: y += 1; break;
      case kZNeg: z -= 1; break;
      case kZPos: z += 1; break;
      default: panic("bad direction");
    }
    if (x < 0 || y < 0 || z < 0 || x >= static_cast<int>(dims.x) ||
        y >= static_cast<int>(dims.y) || z >= static_cast<int>(dims.z))
        return false;
    out = {static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y),
           static_cast<std::uint8_t>(z)};
    return true;
}

unsigned
oppositeDir(unsigned dir)
{
    return dir ^ 1u;
}

} // namespace

MeshNetwork::MeshNetwork(const MeshDims &dims)
    : dims_(dims),
      routers_(dims.nodes()),
      channels_(static_cast<std::size_t>(dims.nodes()) * kNumDirs),
      routerShard_(dims.nodes(), 0),
      activeFlag_(dims.nodes(), 0),
      busyHint_(dims.nodes(), 0)
{
    for (NodeId id = 0; id < dims.nodes(); ++id) {
        const RouterAddr addr = dims.toCoord(id);
        routers_[id].init(id, addr);
        routers_[id].setPool(&pool_);
        for (unsigned dir = 0; dir < kNumDirs; ++dir) {
            RouterAddr to;
            if (!neighbour(dims, addr, dir, to))
                continue;
            const NodeId to_id = dims.toLinear(to);
            Channel &ch = channels_[id * kNumDirs + dir];
            ch.setEndpoints(id, to_id, dir / 2, (dir & 1) != 0);
            ch.setIndex(static_cast<std::uint32_t>(id * kNumDirs + dir));
            if (dims.x > 1 && ch.axis() == 0) {
                const unsigned mid = dims.x / 2;
                if (ch.positive() && addr.x == mid - 1)
                    ch.setBisectRole(1);
                else if (!ch.positive() && addr.x == mid)
                    ch.setBisectRole(-1);
            }
            routers_[id].setOutChannel(static_cast<Direction>(dir), &ch);
            routers_[to_id].setInChannel(
                static_cast<Direction>(oppositeDir(dir)), &ch);
        }
    }
    commitBits_.assign((channels_.size() + 63) / 64, 0);
    setShards(1);
}

void
MeshNetwork::setDeliverSink(NodeId id, DeliverSink *sink)
{
    routers_[id].setDeliverSink(sink);
}

void
MeshNetwork::setRoundRobin(bool rr)
{
    for (auto &r : routers_)
        r.setRoundRobin(rr);
}

void
MeshNetwork::setTracer(Tracer *tracer)
{
    for (auto &r : routers_)
        r.setTracer(tracer);
}

void
MeshNetwork::registerCounters(CounterRegistry &reg)
{
    reg.addCounter("net.messages_delivered", &stats_.messagesDelivered);
    reg.addCounter("net.words_delivered", &stats_.wordsDelivered);
    reg.addCounter("net.bisection_flits_pos", &stats_.bisectionFlitsPos);
    reg.addCounter("net.bisection_flits_neg", &stats_.bisectionFlitsNeg);
    for (const Router &r : routers_) {
        reg.addCounter("net.flits_routed", &r.stats().flitsRouted);
        reg.addCounter("net.flits_delivered", &r.stats().flitsDelivered);
        reg.addCounter("net.inject_stalls", &r.stats().injectStalls);
    }
    // The pool's per-shard counters re-shard between runs, so they go
    // through reader callbacks instead of pointers.
    reg.addCounter("pool.allocs",
                   [this] { return pool_.stats().allocs; });
    reg.addCounter("pool.recycled",
                   [this] { return pool_.stats().recycled; });
    reg.addCounter("pool.released",
                   [this] { return pool_.stats().released; });
    reg.addCounter("pool.live_high_water",
                   [this] { return pool_.stats().liveHighWater; });
    reg.addCounter("pool.capacity",
                   [this] { return pool_.stats().capacity; });
    reg.addHistogram("net.latency_cycles",
                     [this] { return latencyHistogram(); });
}

Histogram
MeshNetwork::latencyHistogram() const
{
    Histogram merged{1, kLatencyHistBuckets};
    for (const Shard &sh : shards_)
        merged.merge(sh.latency);
    return merged;
}

void
MeshNetwork::setShards(unsigned shards)
{
    if (shards < 1)
        shards = 1;
    // Gather the live active set before the bins move under it, and
    // fold the latency samples of shards about to be dropped.
    std::vector<NodeId> live;
    live.reserve(activeCount_);
    for (Shard &sh : shards_) {
        live.insert(live.end(), sh.active.begin(), sh.active.end());
        sh.active.clear();
    }
    for (std::size_t s = shards; s < shards_.size(); ++s) {
        shards_[0].latency.merge(shards_[s].latency);
        shards_[s].latency.reset();
    }
    const NodeId n = dims_.nodes();
    shards_.resize(shards);
    for (NodeId id = 0; id < n; ++id)
        routerShard_[id] = static_cast<std::uint16_t>(
            static_cast<std::uint64_t>(id) * shards / n);
    for (Shard &sh : shards_) {
        sh.active.reserve(n / shards + 1);
        sh.touched.assign((channels_.size() + 63) / 64, 0);
    }
    for (const NodeId id : live)
        shards_[routerShard_[id]].active.push_back(id);
    pool_.setShards(shards);
}

void
MeshNetwork::injectFlit(NodeId id, Flit flit)
{
    if (staging_) {
        // Parallel node phase: only the shard stepping node id injects
        // into router id, so the per-(node, vn) counter needs no
        // locking.
        stagedInject_[id * kNumVns + flit.vn] += 1;
        staged_[ThreadPool::currentShard()].push_back({id, flit});
        return;
    }
    routers_[id].inject(flit);
    activate(id);
}

void
MeshNetwork::beginStaging(unsigned shards)
{
    staging_ = true;
    staged_.resize(shards);
    stagedInject_.assign(static_cast<std::size_t>(dims_.nodes()) * kNumVns,
                         0);
    setShards(shards);
}

void
MeshNetwork::commitStaged()
{
    commitScratch_.clear();
    for (auto &queue : staged_) {
        for (auto &entry : queue)
            commitScratch_.push_back(entry);
        queue.clear();
    }
    if (commitScratch_.empty())
        return;
    // Each node's flits sit in one shard's queue in injection order, so
    // a stable sort by node id reproduces the serial commit order.
    std::stable_sort(commitScratch_.begin(), commitScratch_.end(),
                     [](const StagedFlit &a, const StagedFlit &b) {
                         return a.id < b.id;
                     });
    for (auto &entry : commitScratch_) {
        stagedInject_[entry.id * kNumVns + entry.flit.vn] = 0;
        routers_[entry.id].inject(entry.flit);
        activate(entry.id);
    }
    commitScratch_.clear();
}

void
MeshNetwork::endStaging()
{
    for (const auto &queue : staged_) {
        if (!queue.empty())
            panic("MeshNetwork::endStaging with uncommitted flits");
    }
    staging_ = false;
    setShards(1);
}

void
MeshNetwork::pullShard(unsigned s)
{
    Shard &sh = shards_[s];
    // Index-based with a snapshot length: in the serial kernel a
    // delivery callback can inject (and so activate) mid-phase, which
    // appends to the bin being walked.
    const std::size_t n = sh.active.size();
    for (std::size_t i = 0; i < n; ++i)
        routers_[sh.active[i]].pullPhase();
}

void
MeshNetwork::moveShard(unsigned s, Cycle now)
{
    Shard &sh = shards_[s];
    const std::size_t n = sh.active.size();
    for (std::size_t i = 0; i < n; ++i) {
        const NodeId id = sh.active[i];
        Router &r = routers_[id];
        r.movePhase(now, sh.touched);
        // Record the busy verdict while the router is hot in cache;
        // the commit-phase compaction reads only this byte array.
        busyHint_[id] =
            r.residentFlits() > 0 || r.hasPendingInput() ? 1 : 0;
    }
}

void
MeshNetwork::noteMessageDelivered(const Message &msg)
{
    Shard &sh = shards_[ThreadPool::currentShard()];
    sh.messagesDelivered += 1;
    sh.wordsDelivered += msg.words.size();
    sh.latency.add(msg.deliverCycle - msg.injectCycle);
}

void
MeshNetwork::commitPhase(Cycle now)
{
    (void)now;
    // Union the shard bitmaps. Scanning the set bits in ascending
    // word/bit order is exactly channel-index order — the same commit
    // order the serial kernel produces, independent of how routers
    // were sharded — with no per-cycle sort.
    const std::size_t words = commitBits_.size();
    for (Shard &sh : shards_) {
        for (std::size_t w = 0; w < words; ++w) {
            commitBits_[w] |= sh.touched[w];
            sh.touched[w] = 0;
        }
        stats_.messagesDelivered += sh.messagesDelivered;
        stats_.wordsDelivered += sh.wordsDelivered;
        sh.messagesDelivered = 0;
        sh.wordsDelivered = 0;
    }

    // Commit only the channel pipeline registers written by this
    // cycle's moves, waking the downstream routers and counting
    // bisection crossings.
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = commitBits_[w];
        commitBits_[w] = 0;
        while (bits) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            Channel &ch = channels_[w * 64 + bit];
            ch.commit();
            routers_[ch.to()].notePendingIn(ch.inDir());
            busyHint_[ch.to()] = 1;  // wake arrived after the move phase
            activate(ch.to());
            if (ch.bisectRole() != 0 && !ch.peek().isHead()) {
                if (ch.bisectRole() > 0)
                    stats_.bisectionFlitsPos += 1;
                else
                    stats_.bisectionFlitsNeg += 1;
            }
        }
    }

    // Keep only routers that still have (or are about to have) work.
    // busyHint_ was settled by moveShard (routers woken during the
    // commit loop above had their hint re-raised), so the scan stays
    // inside two contiguous byte arrays — no Router objects touched.
    std::size_t total = 0;
    for (Shard &sh : shards_) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < sh.active.size(); ++i) {
            const NodeId id = sh.active[i];
            if (busyHint_[id]) {
                sh.active[keep++] = id;
            } else {
                activeFlag_[id] = 0;
            }
        }
        sh.active.resize(keep);
        total += keep;
    }
    activeCount_ = total;
}

void
MeshNetwork::step(Cycle now)
{
    if (!anyActive())
        return;
    const unsigned shards = shardCount();
    for (unsigned s = 0; s < shards; ++s)
        pullShard(s);
    for (unsigned s = 0; s < shards; ++s)
        moveShard(s, now);
    commitPhase(now);
}

bool
MeshNetwork::busy() const
{
    for (const auto &r : routers_) {
        if (r.residentFlits() > 0)
            return true;
    }
    for (const auto &ch : channels_) {
        if (ch.busy())
            return true;
    }
    return false;
}

void
MeshNetwork::resetStats()
{
    stats_ = NetworkStats{};
    for (auto &r : routers_)
        r.resetStats();
    for (auto &sh : shards_)
        sh.latency.reset();
    pool_.resetStats();
}

double
MeshNetwork::bisectionCapacityBitsPerSec() const
{
    const double channels = static_cast<double>(dims_.y) * dims_.z;
    const double words_per_cycle = 1.0 / kFlitsPerWord;
    return channels * words_per_cycle * kBitsPerWord * kClockHz;
}

std::uint64_t
MeshNetwork::footprintBytes() const
{
    std::uint64_t total = routers_.capacity() * sizeof(Router) +
                          channels_.capacity() * sizeof(Channel) +
                          shards_.capacity() * sizeof(Shard) +
                          routerShard_.capacity() * sizeof(std::uint16_t) +
                          activeFlag_.capacity() + busyHint_.capacity() +
                          stagedInject_.capacity() +
                          commitScratch_.capacity() * sizeof(StagedFlit) +
                          commitBits_.capacity() * sizeof(std::uint64_t);
    for (const Shard &sh : shards_) {
        total += sh.active.capacity() * sizeof(NodeId) +
                 sh.touched.capacity() * sizeof(std::uint64_t) +
                 sh.latency.buckets().capacity() * sizeof(std::uint64_t);
    }
    total += staged_.capacity() * sizeof(staged_[0]);
    for (const auto &q : staged_)
        total += q.capacity() * sizeof(StagedFlit);
    return total + pool_.footprintBytes();
}

} // namespace jmsim
