#include "net/mesh_network.hh"

#include <algorithm>
#include <bit>

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

namespace
{

/** Neighbour coordinate in direction @p dir, or false if off-mesh. */
bool
neighbour(const MeshDims &dims, RouterAddr at, unsigned dir, RouterAddr &out)
{
    int x = at.x, y = at.y, z = at.z;
    switch (dir) {
      case kXNeg: x -= 1; break;
      case kXPos: x += 1; break;
      case kYNeg: y -= 1; break;
      case kYPos: y += 1; break;
      case kZNeg: z -= 1; break;
      case kZPos: z += 1; break;
      default: panic("bad direction");
    }
    if (x < 0 || y < 0 || z < 0 || x >= static_cast<int>(dims.x) ||
        y >= static_cast<int>(dims.y) || z >= static_cast<int>(dims.z))
        return false;
    out = {static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y),
           static_cast<std::uint8_t>(z)};
    return true;
}

unsigned
oppositeDir(unsigned dir)
{
    return dir ^ 1u;
}

} // namespace

MeshNetwork::MeshNetwork(const MeshDims &dims)
    : dims_(dims),
      routers_(dims.nodes()),
      channels_(static_cast<std::size_t>(dims.nodes()) * kNumDirs),
      routerShard_(dims.nodes(), 0),
      activeFlag_(dims.nodes(), 0),
      busyHint_(dims.nodes(), 0)
{
    for (NodeId id = 0; id < dims.nodes(); ++id) {
        const RouterAddr addr = dims.toCoord(id);
        routers_[id].init(id, addr);
        routers_[id].setPool(&pool_);
        for (unsigned dir = 0; dir < kNumDirs; ++dir) {
            RouterAddr to;
            if (!neighbour(dims, addr, dir, to))
                continue;
            const NodeId to_id = dims.toLinear(to);
            Channel &ch = channels_[id * kNumDirs + dir];
            ch.setEndpoints(id, to_id, dir / 2, (dir & 1) != 0);
            ch.setIndex(static_cast<std::uint32_t>(id * kNumDirs + dir));
            if (dims.x > 1 && ch.axis() == 0) {
                const unsigned mid = dims.x / 2;
                if (ch.positive() && addr.x == mid - 1)
                    ch.setBisectRole(1);
                else if (!ch.positive() && addr.x == mid)
                    ch.setBisectRole(-1);
            }
            routers_[id].setOutChannel(static_cast<Direction>(dir), &ch);
            routers_[to_id].setInChannel(
                static_cast<Direction>(oppositeDir(dir)), &ch);
        }
    }
    commitBits_.assign((channels_.size() + 63) / 64, 0);
    setShards(1);
}

void
MeshNetwork::setDeliverSink(NodeId id, DeliverSink *sink)
{
    routers_[id].setDeliverSink(sink);
}

void
MeshNetwork::setRoundRobin(bool rr)
{
    for (auto &r : routers_)
        r.setRoundRobin(rr);
}

void
MeshNetwork::setTracer(Tracer *tracer)
{
    for (auto &r : routers_)
        r.setTracer(tracer);
}

void
MeshNetwork::registerCounters(CounterRegistry &reg)
{
    reg.addCounter("net.messages_delivered", &stats_.messagesDelivered);
    reg.addCounter("net.words_delivered", &stats_.wordsDelivered);
    reg.addCounter("net.bisection_flits_pos", &stats_.bisectionFlitsPos);
    reg.addCounter("net.bisection_flits_neg", &stats_.bisectionFlitsNeg);
    // Fabric scheduling work accounting: router visits made vs avoided
    // and whole fabric-quiet cycles. The kernel drives these so that
    // router_steps + skipped_router_steps == routers * cycles exactly
    // on a fresh machine (see tests/fabric_sched_test.cc).
    reg.addCounter("net.router_steps", &routerSteps_);
    reg.addCounter("net.skipped_router_steps", &skippedRouterSteps_);
    reg.addCounter("net.event_skipped_cycles", &eventSkippedCycles_);
    for (const Router &r : routers_) {
        reg.addCounter("net.flits_routed", &r.stats().flitsRouted);
        reg.addCounter("net.flits_delivered", &r.stats().flitsDelivered);
        reg.addCounter("net.inject_stalls", &r.stats().injectStalls);
    }
    // The pool's per-shard counters re-shard between runs, so they go
    // through reader callbacks instead of pointers.
    reg.addCounter("pool.allocs",
                   [this] { return pool_.stats().allocs; });
    reg.addCounter("pool.recycled",
                   [this] { return pool_.stats().recycled; });
    reg.addCounter("pool.released",
                   [this] { return pool_.stats().released; });
    reg.addCounter("pool.live_high_water",
                   [this] { return pool_.stats().liveHighWater; });
    reg.addCounter("pool.capacity",
                   [this] { return pool_.stats().capacity; });
    reg.addHistogram("net.latency_cycles",
                     [this] { return latencyHistogram(); });
}

Histogram
MeshNetwork::latencyHistogram() const
{
    Histogram merged{1, kLatencyHistBuckets};
    for (const Shard &sh : shards_)
        merged.merge(sh.latency);
    return merged;
}

void
MeshNetwork::setShards(unsigned shards)
{
    if (shards < 1)
        shards = 1;
    // Gather the live active set before the bins move under it, and
    // fold the latency samples of shards about to be dropped. The
    // back-pressure retry list is unsharded (main-thread only), so it
    // survives re-sharding untouched.
    std::vector<NodeId> live;
    live.reserve(activeCount_);
    for (Shard &sh : shards_) {
        live.insert(live.end(), sh.active.begin(), sh.active.end());
        sh.active.clear();
    }
    for (std::size_t s = shards; s < shards_.size(); ++s) {
        shards_[0].latency.merge(shards_[s].latency);
        shards_[s].latency.reset();
    }
    const NodeId n = dims_.nodes();
    shards_.resize(shards);
    for (NodeId id = 0; id < n; ++id)
        routerShard_[id] = static_cast<std::uint16_t>(
            static_cast<std::uint64_t>(id) * shards / n);
    for (Shard &sh : shards_) {
        sh.active.reserve(n / shards + 1);
        sh.touched.assign((channels_.size() + 63) / 64);
    }
    for (const NodeId id : live)
        shards_[routerShard_[id]].active.push_back(id);
    pool_.setShards(shards);
}

void
MeshNetwork::injectFlit(NodeId id, Flit flit)
{
    // Routing-decision cache: the dimension-order route is a pure
    // function of (source, destination), so compute the per-axis hop
    // counts once here and let every router on the path read its
    // output port straight off the flit (Router::headRoute) instead of
    // loading the message slab and comparing addresses per hop.
    if (flit.isHead()) {
        const RouterAddr src = routers_[id].addr();
        const RouterAddr &dst = pool_.get(flit.msg).destAddr;
        flit.route[0] = encodeRouteHops(src.x, dst.x);
        flit.route[1] = encodeRouteHops(src.y, dst.y);
        flit.route[2] = encodeRouteHops(src.z, dst.z);
    }
    if (staging_) {
        // Parallel node phase: only the shard stepping node id injects
        // into router id, so the per-(node, vn) counter needs no
        // locking.
        stagedInject_[id * kNumVns + flit.vn] += 1;
        staged_[ThreadPool::currentShard()].push_back({id, flit});
        return;
    }
    routers_[id].inject(flit);
    activate(id);
}

void
MeshNetwork::beginStaging(unsigned shards)
{
    staging_ = true;
    staged_.resize(shards);
    stagedInject_.assign(static_cast<std::size_t>(dims_.nodes()) * kNumVns,
                         0);
    setShards(shards);
}

void
MeshNetwork::commitStaged()
{
    commitScratch_.clear();
    for (auto &queue : staged_) {
        for (auto &entry : queue)
            commitScratch_.push_back(entry);
        queue.clear();
    }
    if (commitScratch_.empty())
        return;
    // Each node's flits sit in one shard's queue in injection order, so
    // a stable sort by node id reproduces the serial commit order.
    std::stable_sort(commitScratch_.begin(), commitScratch_.end(),
                     [](const StagedFlit &a, const StagedFlit &b) {
                         return a.id < b.id;
                     });
    for (auto &entry : commitScratch_) {
        stagedInject_[entry.id * kNumVns + entry.flit.vn] = 0;
        routers_[entry.id].inject(entry.flit);
        activate(entry.id);
    }
    commitScratch_.clear();
}

void
MeshNetwork::endStaging()
{
    for (const auto &queue : staged_) {
        if (!queue.empty())
            panic("MeshNetwork::endStaging with uncommitted flits");
    }
    staging_ = false;
    setShards(1);
}

void
MeshNetwork::retryPulls()
{
    // Wormhole back-pressure at channel granularity: each entry holds a
    // committed flit whose downstream FIFO was full when it committed.
    // This runs after the move phase (pops) and before the fresh
    // commits, which is exactly when the legacy pull of the next cycle
    // would observe the same FIFO state.
    std::size_t keep = 0;
    const std::size_t n = retryPull_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t ci = retryPull_[i];
        const Channel &ch = channels_[ci];
        if (routers_[ch.to()].pullChannel(ch.inDir())) {
            busyHint_[ch.to()] = 1;
            activate(ch.to());
        } else {
            retryPull_[keep++] = ci;
        }
    }
    retryPull_.resize(keep);
}

void
MeshNetwork::pullShard(unsigned s)
{
    if (eventDriven_)
        return;  // the commit phase already pushed every visible flit
    Shard &sh = shards_[s];
    // Index-based with a snapshot length: in the serial kernel a
    // delivery callback can inject (and so activate) mid-phase, which
    // appends to the bin being walked.
    const std::size_t n = sh.active.size();
    for (std::size_t i = 0; i < n; ++i)
        routers_[sh.active[i]].pullPhase();
}

void
MeshNetwork::moveShard(unsigned s, Cycle now)
{
    Shard &sh = shards_[s];
    const std::size_t n = sh.active.size();
    for (std::size_t i = 0; i < n; ++i) {
        const NodeId id = sh.active[i];
        Router &r = routers_[id];
        r.movePhase(now, sh.touched);
        // Record the busy verdict while the router is hot in cache;
        // the commit-phase compaction reads only this byte array.
        busyHint_[id] =
            r.residentFlits() > 0 || r.hasPendingInput() ? 1 : 0;
    }
}

void
MeshNetwork::noteMessageDelivered(const Message &msg)
{
    Shard &sh = shards_[ThreadPool::currentShard()];
    sh.messagesDelivered += 1;
    sh.wordsDelivered += msg.words.size();
    sh.latency.add(msg.deliverCycle - msg.injectCycle);
}

void
MeshNetwork::commitWord(std::size_t w, std::uint64_t bits)
{
    while (bits) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t ci = static_cast<std::uint32_t>(w * 64 + bit);
        Channel &ch = channels_[ci];
        // Bisection counting reads the staged flit before it moves on.
        if (ch.bisectRole() != 0 && !ch.staged().isHead()) {
            if (ch.bisectRole() > 0)
                stats_.bisectionFlitsPos += 1;
            else
                stats_.bisectionFlitsNeg += 1;
        }
        if (eventDriven_) {
            // Fused push: hand the staged flit to the downstream FIFO
            // directly — identical to next cycle's pull (nothing drains
            // the FIFO in between) minus the round-trip through the
            // channel's visible register. A refusal means the FIFO is
            // full; the flit becomes visible in the channel (wormhole
            // back-pressure: upstream canSend stays false) and the
            // index parks on the retry list.
            if (routers_[ch.to()].pushInput(ch.inDir(), ch.staged())) {
                ch.dropStaged();
            } else {
                ch.commit();
                retryPull_.push_back(ci);
            }
        } else {
            ch.commit();
            routers_[ch.to()].notePendingIn(ch.inDir());
        }
        busyHint_[ch.to()] = 1;  // wake arrived after the move phase
        activate(ch.to());
    }
}

void
MeshNetwork::commitPhase(Cycle now)
{
    (void)now;
    const std::size_t words = commitBits_.size();
    for (Shard &sh : shards_) {
        stats_.messagesDelivered += sh.messagesDelivered;
        stats_.wordsDelivered += sh.wordsDelivered;
        sh.messagesDelivered = 0;
        sh.wordsDelivered = 0;
    }

    // Commit only the channel pipeline registers written by this
    // cycle's moves, in ascending channel-index order — the same
    // commit order the serial kernel produces, independent of how
    // routers were sharded.
    if (eventDriven_) {
        // Back-pressured pushes first: their FIFOs may have drained in
        // this cycle's move phase. (Order against the fresh commits is
        // immaterial — the channel sets are disjoint and pushes are
        // commutative.)
        if (!retryPull_.empty())
            retryPulls();
        // Merge the shards' dirty-word lists: cost proportional to the
        // channels written this cycle, not to the mesh size. A word can
        // be dirty in two slabs only at a slab boundary; pushing on the
        // union's 0->nonzero transition dedups it.
        commitWords_.clear();
        for (Shard &sh : shards_) {
            for (const std::uint32_t w : sh.touched.dirtyWords()) {
                if (commitBits_[w] == 0)
                    commitWords_.push_back(w);
                commitBits_[w] |= sh.touched.takeWord(w);
            }
            sh.touched.clearDirty();
        }
        if (commitWords_.size() * 4 >= words) {
            // Saturated cycle: most words are dirty, so the ascending
            // full scan beats sorting the list — same visit order.
            for (std::size_t w = 0; w < words; ++w) {
                if (commitBits_[w] != 0) {
                    commitWord(w, commitBits_[w]);
                    commitBits_[w] = 0;
                }
            }
        } else {
            std::sort(commitWords_.begin(), commitWords_.end());
            for (const std::uint32_t w : commitWords_) {
                commitWord(w, commitBits_[w]);
                commitBits_[w] = 0;
            }
        }
    } else {
        // Legacy full-scan path (`--net-sched off`): union and scan
        // every bitmap word every cycle.
        for (Shard &sh : shards_) {
            for (std::size_t w = 0; w < words; ++w)
                commitBits_[w] |= sh.touched.takeWord(w);
            sh.touched.clearDirty();
        }
        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t bits = commitBits_[w];
            commitBits_[w] = 0;
            if (bits != 0)
                commitWord(w, bits);
        }
    }

    // Keep only routers that still have (or are about to have) work.
    // busyHint_ was settled by moveShard (routers woken during the
    // commit loop above had their hint re-raised), so the scan stays
    // inside two contiguous byte arrays — no Router objects touched.
    std::size_t total = 0;
    for (Shard &sh : shards_) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < sh.active.size(); ++i) {
            const NodeId id = sh.active[i];
            if (busyHint_[id]) {
                sh.active[keep++] = id;
            } else {
                activeFlag_[id] = 0;
            }
        }
        sh.active.resize(keep);
        total += keep;
    }
    activeCount_ = total;
}

void
MeshNetwork::step(Cycle now)
{
    if (!anyActive())
        return;
    const unsigned shards = shardCount();
    for (unsigned s = 0; s < shards; ++s)
        pullShard(s);
    for (unsigned s = 0; s < shards; ++s)
        moveShard(s, now);
    commitPhase(now);
}

void
MeshNetwork::stepFast(Cycle now)
{
    // Fused serial step for sparse cycles (fastPathEligible): the same
    // move-all, commit-all phase order as the sharded path — a single
    // pass per phase keeps the phased semantics (every move lands
    // before any commit) while skipping the shard orchestration, the
    // cross-shard bitmap union, and the per-shard counter folds. There
    // is no pull pass: the previous commit already pushed every
    // visible flit (see the file comment in mesh_network.hh).
    Shard &sh = shards_[0];

    // Snapshot length: a delivery callback can activate mid-loop,
    // appending to the bin being walked.
    const std::size_t n = sh.active.size();
    for (std::size_t i = 0; i < n; ++i) {
        const NodeId id = sh.active[i];
        Router &r = routers_[id];
        r.movePhase(now, sh.touched);
        busyHint_[id] =
            r.residentFlits() > 0 || r.hasPendingInput() ? 1 : 0;
    }
    stats_.messagesDelivered += sh.messagesDelivered;
    stats_.wordsDelivered += sh.wordsDelivered;
    sh.messagesDelivered = 0;
    sh.wordsDelivered = 0;

    // Commit straight off the single shard's dirty words — sorting the
    // word list reproduces the ascending channel-index commit order; on
    // a saturated cycle (most words dirty) the ascending full scan is
    // cheaper than the sort and visits the same bits in the same order.
    if (!retryPull_.empty())
        retryPulls();
    auto &dirty = sh.touched.dirtyWords();
    const std::size_t words = sh.touched.words();
    if (dirty.size() * 4 >= words) {
        for (std::size_t w = 0; w < words; ++w) {
            if (sh.touched.word(w) != 0)
                commitWord(w, sh.touched.takeWord(w));
        }
    } else {
        std::sort(dirty.begin(), dirty.end());
        for (const std::uint32_t w : dirty)
            commitWord(w, sh.touched.takeWord(w));
    }
    sh.touched.clearDirty();

    // Compact the active bin exactly as commitPhase does (routers woken
    // by the commit loop had their hint re-raised).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < sh.active.size(); ++i) {
        const NodeId id = sh.active[i];
        if (busyHint_[id]) {
            sh.active[keep++] = id;
        } else {
            activeFlag_[id] = 0;
        }
    }
    sh.active.resize(keep);
    activeCount_ = keep;
}

bool
MeshNetwork::busy() const
{
    for (const auto &r : routers_) {
        if (r.residentFlits() > 0)
            return true;
    }
    for (const auto &ch : channels_) {
        if (ch.busy())
            return true;
    }
    return false;
}

void
MeshNetwork::resetStats()
{
    stats_ = NetworkStats{};
    for (auto &r : routers_)
        r.resetStats();
    for (auto &sh : shards_)
        sh.latency.reset();
    pool_.resetStats();
}

double
MeshNetwork::bisectionCapacityBitsPerSec() const
{
    const double channels = static_cast<double>(dims_.y) * dims_.z;
    const double words_per_cycle = 1.0 / kFlitsPerWord;
    return channels * words_per_cycle * kBitsPerWord * kClockHz;
}

std::uint64_t
MeshNetwork::footprintBytes() const
{
    std::uint64_t total = routers_.capacity() * sizeof(Router) +
                          channels_.capacity() * sizeof(Channel) +
                          shards_.capacity() * sizeof(Shard) +
                          routerShard_.capacity() * sizeof(std::uint16_t) +
                          activeFlag_.capacity() + busyHint_.capacity() +
                          stagedInject_.capacity() +
                          commitScratch_.capacity() * sizeof(StagedFlit) +
                          commitBits_.capacity() * sizeof(std::uint64_t) +
                          commitWords_.capacity() * sizeof(std::uint32_t) +
                          retryPull_.capacity() * sizeof(std::uint32_t);
    for (const Shard &sh : shards_) {
        total += sh.active.capacity() * sizeof(NodeId) +
                 sh.touched.footprintBytes() +
                 sh.latency.buckets().capacity() * sizeof(std::uint64_t);
    }
    total += staged_.capacity() * sizeof(staged_[0]);
    for (const auto &q : staged_)
        total += q.capacity() * sizeof(StagedFlit);
    return total + pool_.footprintBytes();
}

// ---- checkpointing --------------------------------------------------

void
Channel::collectHandles(std::vector<MsgHandle> &out) const
{
    if (curValid_)
        out.push_back(cur_.msg);
    if (nextValid_)
        out.push_back(next_.msg);
}

namespace
{

void
saveChannelFlit(ckpt::Writer &w, const ckpt::HandleMap &map, const Flit &flit)
{
    w.u32(map.ordinalOf(flit.msg));
    w.u32(flit.index);
    w.u8(flit.vn);
    w.u8(flit.tail);
    for (std::uint8_t hop : flit.route)
        w.u8(hop);
}

Flit
restoreChannelFlit(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    Flit flit;
    flit.msg = map.handleOf(r.u32());
    flit.index = r.u32();
    flit.vn = r.u8();
    flit.tail = r.u8();
    for (std::uint8_t &hop : flit.route)
        hop = r.u8();
    return flit;
}

} // namespace

void
Channel::save(ckpt::Writer &w, const ckpt::HandleMap &map) const
{
    w.b(curValid_);
    if (curValid_)
        saveChannelFlit(w, map, cur_);
    w.b(nextValid_);
    if (nextValid_)
        saveChannelFlit(w, map, next_);
}

void
Channel::restore(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    curValid_ = r.b();
    cur_ = curValid_ ? restoreChannelFlit(r, map) : Flit{};
    nextValid_ = r.b();
    next_ = nextValid_ ? restoreChannelFlit(r, map) : Flit{};
}

void
MeshNetwork::collectHandles(std::vector<MsgHandle> &out) const
{
    for (const Router &router : routers_)
        router.collectHandles(out);
    for (const Channel &ch : channels_)
        ch.collectHandles(out);
}

void
MeshNetwork::setEventDriven(bool on)
{
    if (eventDriven_ == on)
        return;
    eventDriven_ = on;
    rebuildUndrainedTracking();
}

void
MeshNetwork::rebuildUndrainedTracking()
{
    // Between cycles, a channel's visible cur_ flit is exactly a
    // committed word the downstream router has not pulled yet. The
    // legacy pull phase finds those through the router's pendingIn_
    // bits; the event-driven fabric through retryPull_. Rebuild from
    // the channels in ascending index (each channel feeds a distinct
    // (router, direction) FIFO, so the order is architecturally
    // immaterial; ascending keeps save/restore/save byte-identical).
    retryPull_.clear();
    for (Router &router : routers_)
        router.clearPendingIn();
    for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
        const Channel &ch = channels_[ci];
        if (!ch.hasFlit())
            continue;
        if (eventDriven_)
            retryPull_.push_back(static_cast<std::uint32_t>(ci));
        else
            routers_[ch.to()].notePendingIn(ch.inDir());
    }
}

void
MeshNetwork::save(ckpt::Writer &w, const ckpt::HandleMap &map) const
{
    if (staging_)
        panic("MeshNetwork::save while staging (mid-threaded-cycle)");
    for (const Router &router : routers_)
        router.save(w, map);
    for (const Channel &ch : channels_)
        ch.save(w, map);
    const NodeId n = dims_.nodes();
    for (NodeId id = 0; id < n; ++id)
        w.u8(activeFlag_[id]);
    w.u64(routerSteps_);
    w.u64(skippedRouterSteps_);
    w.u64(eventSkippedCycles_);
    w.u64(stats_.messagesDelivered);
    w.u64(stats_.wordsDelivered);
    w.u64(stats_.bisectionFlitsPos);
    w.u64(stats_.bisectionFlitsNeg);
    // Latency samples merged across shards: the shard split is a host
    // concern and the merge is commutative, so one folded histogram is
    // the canonical architectural value.
    latencyHistogram().save(w);
}

void
MeshNetwork::restore(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    if (staging_)
        panic("MeshNetwork::restore while staging (mid-threaded-cycle)");
    for (Router &router : routers_)
        router.restore(r, map);
    for (Channel &ch : channels_)
        ch.restore(r, map);
    const NodeId n = dims_.nodes();
    for (NodeId id = 0; id < n; ++id)
        activeFlag_[id] = r.u8();
    // Rebuild the active bins in ascending node id (the order the
    // serial kernel would have produced) and align the busy hints: a
    // set hint for an idle router is harmless, a clear one for a busy
    // router is not, and activeFlag_ covers exactly the routers with
    // work.
    activeCount_ = 0;
    for (Shard &sh : shards_)
        sh.active.clear();
    for (NodeId id = 0; id < n; ++id) {
        busyHint_[id] = activeFlag_[id];
        if (activeFlag_[id]) {
            shards_[routerShard_[id]].active.push_back(id);
            ++activeCount_;
        }
    }
    // A committed-but-undrained channel flit (visible cur_) is tracked
    // by whichever side the fabric scheduler mode makes responsible;
    // the image stores neither side — rebuild the one this machine
    // needs.
    rebuildUndrainedTracking();
    routerSteps_ = r.u64();
    skippedRouterSteps_ = r.u64();
    eventSkippedCycles_ = r.u64();
    stats_.messagesDelivered = r.u64();
    stats_.wordsDelivered = r.u64();
    stats_.bisectionFlitsPos = r.u64();
    stats_.bisectionFlitsNeg = r.u64();
    // All samples land in shard 0; per-shard split is host-side only.
    for (Shard &sh : shards_)
        sh.latency.reset();
    shards_[0].latency.restore(r);
    // Per-cycle scratch is empty between cycles by construction.
    for (Shard &sh : shards_) {
        sh.messagesDelivered = 0;
        sh.wordsDelivered = 0;
        sh.touched.assign(sh.touched.words());
    }
}

} // namespace jmsim
