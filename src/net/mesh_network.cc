#include "net/mesh_network.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace jmsim
{

namespace
{

/** Neighbour coordinate in direction @p dir, or false if off-mesh. */
bool
neighbour(const MeshDims &dims, RouterAddr at, unsigned dir, RouterAddr &out)
{
    int x = at.x, y = at.y, z = at.z;
    switch (dir) {
      case kXNeg: x -= 1; break;
      case kXPos: x += 1; break;
      case kYNeg: y -= 1; break;
      case kYPos: y += 1; break;
      case kZNeg: z -= 1; break;
      case kZPos: z += 1; break;
      default: panic("bad direction");
    }
    if (x < 0 || y < 0 || z < 0 || x >= static_cast<int>(dims.x) ||
        y >= static_cast<int>(dims.y) || z >= static_cast<int>(dims.z))
        return false;
    out = {static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y),
           static_cast<std::uint8_t>(z)};
    return true;
}

unsigned
oppositeDir(unsigned dir)
{
    return dir ^ 1u;
}

} // namespace

MeshNetwork::MeshNetwork(const MeshDims &dims)
    : dims_(dims),
      routers_(dims.nodes()),
      channels_(static_cast<std::size_t>(dims.nodes()) * kNumDirs),
      activeFlag_(dims.nodes(), 0)
{
    for (NodeId id = 0; id < dims.nodes(); ++id) {
        const RouterAddr addr = dims.toCoord(id);
        routers_[id].init(id, addr);
        for (unsigned dir = 0; dir < kNumDirs; ++dir) {
            RouterAddr to;
            if (!neighbour(dims, addr, dir, to))
                continue;
            const NodeId to_id = dims.toLinear(to);
            Channel &ch = channels_[id * kNumDirs + dir];
            ch.setEndpoints(id, to_id, dir / 2, (dir & 1) != 0);
            routers_[id].setOutChannel(static_cast<Direction>(dir), &ch);
            routers_[to_id].setInChannel(
                static_cast<Direction>(oppositeDir(dir)), &ch);
        }
    }
    touched_.reserve(channels_.size());
    active_.reserve(dims.nodes());
}

void
MeshNetwork::setDeliverSink(NodeId id, DeliverSink *sink)
{
    routers_[id].setDeliverSink(sink);
}

void
MeshNetwork::setRoundRobin(bool rr)
{
    for (auto &r : routers_)
        r.setRoundRobin(rr);
}

void
MeshNetwork::activate(NodeId id)
{
    if (!activeFlag_[id]) {
        activeFlag_[id] = 1;
        active_.push_back(id);
    }
}

void
MeshNetwork::injectFlit(NodeId id, Flit flit)
{
    if (staging_) {
        // Parallel node phase: only node id's own shard injects into
        // router id, so the per-(node, vn) counter needs no locking.
        stagedInject_[id * kNumVns + flit.vn] += 1;
        staged_[ThreadPool::currentShard()].push_back({id, std::move(flit)});
        return;
    }
    routers_[id].inject(std::move(flit));
    activate(id);
}

void
MeshNetwork::beginStaging(unsigned shards)
{
    staging_ = true;
    staged_.resize(shards);
    stagedInject_.assign(static_cast<std::size_t>(dims_.nodes()) * kNumVns,
                         0);
}

void
MeshNetwork::commitStaged()
{
    commitScratch_.clear();
    for (auto &queue : staged_) {
        for (auto &entry : queue)
            commitScratch_.push_back(std::move(entry));
        queue.clear();
    }
    if (commitScratch_.empty())
        return;
    // Each node's flits sit in one shard's queue in injection order, so
    // a stable sort by node id reproduces the serial commit order.
    std::stable_sort(commitScratch_.begin(), commitScratch_.end(),
                     [](const StagedFlit &a, const StagedFlit &b) {
                         return a.id < b.id;
                     });
    for (auto &entry : commitScratch_) {
        stagedInject_[entry.id * kNumVns + entry.flit.vn] = 0;
        routers_[entry.id].inject(std::move(entry.flit));
        activate(entry.id);
    }
    commitScratch_.clear();
}

void
MeshNetwork::endStaging()
{
    for (const auto &queue : staged_) {
        if (!queue.empty())
            panic("MeshNetwork::endStaging with uncommitted flits");
    }
    staging_ = false;
}

void
MeshNetwork::step(Cycle now)
{
    if (active_.empty())
        return;

    // activate() may append to active_ during the commit loop below, so
    // phases iterate by index over the cycle-start snapshot length.
    const std::size_t n = active_.size();

    for (std::size_t i = 0; i < n; ++i)
        routers_[active_[i]].pullPhase();

    touched_.clear();
    for (std::size_t i = 0; i < n; ++i)
        routers_[active_[i]].movePhase(now, touched_);

    // Commit only the channel pipeline registers written by this
    // cycle's moves, waking the downstream routers and counting
    // bisection crossings.
    const unsigned mid = dims_.x / 2;
    for (Channel *chp : touched_) {
        Channel &ch = *chp;
        ch.commit();
        routers_[ch.to()].notePendingIn(ch.inDir());
        activate(ch.to());
        if (dims_.x > 1 && ch.axis() == 0 && !ch.peek().isHead()) {
            const RouterAddr from = dims_.toCoord(ch.from());
            if (ch.positive() && from.x == mid - 1)
                stats_.bisectionFlitsPos += 1;
            else if (!ch.positive() && from.x == mid)
                stats_.bisectionFlitsNeg += 1;
        }
    }

    // Keep only routers that still have (or are about to have) work;
    // routers woken during commit carry a pending channel flit and so
    // pass the hasPendingInput() test.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        const NodeId id = active_[i];
        const Router &r = routers_[id];
        if (r.residentFlits() > 0 || r.hasPendingInput()) {
            active_[keep++] = id;
        } else {
            activeFlag_[id] = 0;
        }
    }
    active_.resize(keep);
}

bool
MeshNetwork::busy() const
{
    for (const auto &r : routers_) {
        if (r.residentFlits() > 0)
            return true;
    }
    for (const auto &ch : channels_) {
        if (ch.busy())
            return true;
    }
    return false;
}

void
MeshNetwork::resetStats()
{
    stats_ = NetworkStats{};
    for (auto &r : routers_)
        r.resetStats();
}

double
MeshNetwork::bisectionCapacityBitsPerSec() const
{
    const double channels = static_cast<double>(dims_.y) * dims_.z;
    const double words_per_cycle = 1.0 / kFlitsPerWord;
    return channels * words_per_cycle * kBitsPerWord * kClockHz;
}

} // namespace jmsim
