#include "net/mesh_network.hh"

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

/** Neighbour coordinate in direction @p dir, or false if off-mesh. */
bool
neighbour(const MeshDims &dims, RouterAddr at, unsigned dir, RouterAddr &out)
{
    int x = at.x, y = at.y, z = at.z;
    switch (dir) {
      case kXNeg: x -= 1; break;
      case kXPos: x += 1; break;
      case kYNeg: y -= 1; break;
      case kYPos: y += 1; break;
      case kZNeg: z -= 1; break;
      case kZPos: z += 1; break;
      default: panic("bad direction");
    }
    if (x < 0 || y < 0 || z < 0 || x >= static_cast<int>(dims.x) ||
        y >= static_cast<int>(dims.y) || z >= static_cast<int>(dims.z))
        return false;
    out = {static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y),
           static_cast<std::uint8_t>(z)};
    return true;
}

unsigned
oppositeDir(unsigned dir)
{
    return dir ^ 1u;
}

} // namespace

MeshNetwork::MeshNetwork(const MeshDims &dims)
    : dims_(dims),
      routers_(dims.nodes()),
      channels_(static_cast<std::size_t>(dims.nodes()) * kNumDirs),
      activeFlag_(dims.nodes(), 0)
{
    for (NodeId id = 0; id < dims.nodes(); ++id) {
        const RouterAddr addr = dims.toCoord(id);
        routers_[id].init(id, addr, nullptr);
        for (unsigned dir = 0; dir < kNumDirs; ++dir) {
            RouterAddr to;
            if (!neighbour(dims, addr, dir, to))
                continue;
            const NodeId to_id = dims.toLinear(to);
            Channel &ch = channels_[id * kNumDirs + dir];
            ch.setEndpoints(id, to_id, dir / 2, (dir & 1) != 0);
            routers_[id].setOutChannel(static_cast<Direction>(dir), &ch);
            routers_[to_id].setInChannel(
                static_cast<Direction>(oppositeDir(dir)), &ch);
        }
    }
    touched_.reserve(channels_.size());
    active_.reserve(dims.nodes());
}

void
MeshNetwork::setDeliverSink(NodeId id, DeliverSink *sink)
{
    routers_[id].init(id, dims_.toCoord(id), sink);
}

void
MeshNetwork::setRoundRobin(bool rr)
{
    for (auto &r : routers_)
        r.setRoundRobin(rr);
}

void
MeshNetwork::activate(NodeId id)
{
    if (!activeFlag_[id]) {
        activeFlag_[id] = 1;
        active_.push_back(id);
    }
}

void
MeshNetwork::injectFlit(NodeId id, Flit flit)
{
    routers_[id].inject(std::move(flit));
    activate(id);
}

void
MeshNetwork::step(Cycle now)
{
    if (active_.empty())
        return;

    // activate() may append to active_ during the commit loop below, so
    // phases iterate by index over the cycle-start snapshot length.
    const std::size_t n = active_.size();

    for (std::size_t i = 0; i < n; ++i)
        routers_[active_[i]].pullPhase();

    for (std::size_t i = 0; i < n; ++i)
        routers_[active_[i]].movePhase(now);

    // Commit channel pipeline registers written by this cycle's moves,
    // waking the downstream routers and counting bisection crossings.
    const unsigned mid = dims_.x / 2;
    for (std::size_t i = 0; i < n; ++i) {
        const NodeId id = active_[i];
        for (unsigned dir = 0; dir < kNumDirs; ++dir) {
            Channel &ch = channels_[id * kNumDirs + dir];
            if (!ch.commit())
                continue;
            activate(ch.to());
            if (dims_.x > 1 && ch.axis() == 0 && !ch.peek().isHead()) {
                const RouterAddr from = dims_.toCoord(ch.from());
                if (ch.positive() && from.x == mid - 1)
                    stats_.bisectionFlitsPos += 1;
                else if (!ch.positive() && from.x == mid)
                    stats_.bisectionFlitsNeg += 1;
            }
        }
    }

    // Keep only routers that still have (or are about to have) work;
    // routers woken during commit carry a pending channel flit and so
    // pass the hasPendingInput() test.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        const NodeId id = active_[i];
        const Router &r = routers_[id];
        if (r.residentFlits() > 0 || r.hasPendingInput()) {
            active_[keep++] = id;
        } else {
            activeFlag_[id] = 0;
        }
    }
    active_.resize(keep);
}

bool
MeshNetwork::busy() const
{
    for (const auto &r : routers_) {
        if (r.residentFlits() > 0)
            return true;
    }
    for (const auto &ch : channels_) {
        if (ch.busy())
            return true;
    }
    return false;
}

void
MeshNetwork::resetStats()
{
    stats_ = NetworkStats{};
    for (auto &r : routers_)
        r.resetStats();
}

double
MeshNetwork::bisectionCapacityBitsPerSec() const
{
    const double channels = static_cast<double>(dims_.y) * dims_.z;
    const double words_per_cycle = 1.0 / kFlitsPerWord;
    return channels * words_per_cycle * kBitsPerWord * kClockHz;
}

} // namespace jmsim
