#include "net/message_pool.hh"

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace jmsim
{

void
MessagePool::setShards(unsigned shards)
{
    if (shards < 1)
        shards = 1;
    if (shards < shards_.size()) {
        // Fold the dropped shards' free lists and counters into shard 0
        // so no carved slot is stranded.
        Shard &keep = shards_[0];
        for (std::size_t s = shards; s < shards_.size(); ++s) {
            Shard &drop = shards_[s];
            keep.freeList.insert(keep.freeList.end(), drop.freeList.begin(),
                                 drop.freeList.end());
            keep.allocs += drop.allocs;
            keep.recycled += drop.recycled;
            keep.released += drop.released;
            keep.liveDelta += drop.liveDelta;
        }
    }
    shards_.resize(shards);
}

MsgHandle
MessagePool::alloc()
{
    Shard &shard = shards_[ThreadPool::currentShard()];
    shard.allocs += 1;
    shard.liveDelta += 1;
    MsgHandle handle;
    if (!shard.freeList.empty()) {
        handle = shard.freeList.back();
        shard.freeList.pop_back();
        shard.recycled += 1;
    } else {
        handle = grow(shard);
    }
    Message &msg = get(handle);
    msg.src = 0;
    msg.dest = 0;
    msg.destAddr = RouterAddr{};
    msg.priority = 0;
    msg.words.clear();  // capacity survives: the recycling payoff
    msg.injectCycle = 0;
    msg.deliverCycle = 0;
    msg.srcSeq = 0;
    msg.finalized = false;
    msg.netop = 0;
    return handle;
}

void
MessagePool::release(MsgHandle handle)
{
    Shard &shard = shards_[ThreadPool::currentShard()];
    shard.released += 1;
    shard.liveDelta -= 1;
    shard.freeList.push_back(handle);
}

MsgHandle
MessagePool::grow(Shard &shard)
{
    std::lock_guard<std::mutex> lock(growMutex_);
    if (slabCount_ == kMaxSlabs)
        panic("MessagePool exhausted");
    const std::uint32_t slab = slabCount_;
    slabs_[slab] = std::make_unique<Message[]>(kSlabSize);
    slabCount_ += 1;
    const MsgHandle base = static_cast<MsgHandle>(slab) << kSlabShift;
    // Hand the first slot to the caller; stack the rest so the shard
    // pops them in ascending handle order.
    shard.freeList.reserve(shard.freeList.size() + kSlabSize - 1);
    for (std::uint32_t i = kSlabSize; i-- > 1;)
        shard.freeList.push_back(base + i);
    return base;
}

std::uint64_t
MessagePool::live() const
{
    std::int64_t live = 0;
    for (const Shard &shard : shards_)
        live += shard.liveDelta;
    return live > 0 ? static_cast<std::uint64_t>(live) : 0;
}

PoolStats
MessagePool::stats() const
{
    PoolStats s;
    for (const Shard &shard : shards_) {
        s.allocs += shard.allocs;
        s.recycled += shard.recycled;
        s.released += shard.released;
    }
    s.liveNow = live();
    s.liveHighWater = liveHighWater_;
    s.capacity = slabCount_ * kSlabSize;
    return s;
}

void
MessagePool::resetStats()
{
    for (Shard &shard : shards_) {
        shard.allocs = 0;
        shard.recycled = 0;
        shard.released = 0;
    }
    liveHighWater_ = live();
}

void
MessagePool::resetAll()
{
    for (Shard &shard : shards_) {
        shard.freeList.clear();
        shard.allocs = 0;
        shard.recycled = 0;
        shard.released = 0;
        shard.liveDelta = 0;
    }
    for (std::uint32_t s = 0; s < slabCount_; ++s)
        slabs_[s].reset();
    slabCount_ = 0;
    liveHighWater_ = 0;
}

void
MessagePool::restoreCounters(std::uint64_t allocs, std::uint64_t recycled,
                             std::uint64_t released, std::uint64_t liveNow,
                             std::uint64_t liveHighWater)
{
    for (std::size_t s = 1; s < shards_.size(); ++s) {
        shards_[s].allocs = 0;
        shards_[s].recycled = 0;
        shards_[s].released = 0;
        // liveDelta stays: resetAll zeroed it and restore allocations
        // all ran on the calling (main) shard.
    }
    shards_[0].allocs = allocs;
    shards_[0].recycled = recycled;
    shards_[0].released = released;
    shards_[0].liveDelta = static_cast<std::int64_t>(liveNow);
    liveHighWater_ = liveHighWater;
}

std::uint64_t
MessagePool::footprintBytes() const
{
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < slabCount_; ++s) {
        total += kSlabSize * sizeof(Message);
        for (std::uint32_t i = 0; i < kSlabSize; ++i)
            total += slabs_[s][i].words.capacity() * sizeof(Word);
    }
    for (const Shard &shard : shards_)
        total += shard.freeList.capacity() * sizeof(MsgHandle);
    total += shards_.capacity() * sizeof(Shard);
    return total;
}

} // namespace jmsim
