// message.hh is header-only; this file anchors the translation unit.
#include "net/message.hh"
