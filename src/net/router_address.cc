#include "net/router_address.hh"

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

unsigned
absDiff(std::uint8_t a, std::uint8_t b)
{
    return a > b ? a - b : b - a;
}

} // namespace

unsigned
RouterAddr::hopsTo(const RouterAddr &other) const
{
    return absDiff(x, other.x) + absDiff(y, other.y) + absDiff(z, other.z);
}

std::string
RouterAddr::toString() const
{
    return "(" + std::to_string(x) + "," + std::to_string(y) + "," +
           std::to_string(z) + ")";
}

MeshDims
MeshDims::forNodeCount(unsigned nodes)
{
    if (nodes == 0 || (nodes & (nodes - 1)) != 0 || nodes > 32768)
        fatal("node count must be a power of two <= 32768, got " +
              std::to_string(nodes));
    // Distribute the log2 across z, y, x so that dims differ by at
    // most a factor of two and x gets the largest share.
    unsigned log = 0;
    for (unsigned n = nodes; n > 1; n >>= 1)
        ++log;
    MeshDims dims;
    dims.x = 1u << ((log + 2) / 3);
    dims.y = 1u << ((log + 1) / 3);
    dims.z = 1u << (log / 3);
    return dims;
}

} // namespace jmsim
