/**
 * @file
 * In-flight network messages and their flit decomposition.
 *
 * A message on the wire is a head flit carrying the destination and
 * priority followed by two body flits per 36-bit payload word (the
 * channel moves half a word per cycle: the paper's 0.5 words/cycle
 * channel bandwidth). Payload word 0 is the Msg-tagged header holding
 * the dispatch IP and length; the destination word consumed by the
 * first SEND never appears in the payload, mirroring the MDP.
 *
 * Messages live in a recycling MessagePool (message_pool.hh) and are
 * named by a 32-bit MsgHandle; a Flit is a plain {handle, index, vn}
 * cursor, so moving flits through channels and FIFOs copies 12 bytes
 * and touches no allocator and no reference count.
 */

#ifndef JMSIM_NET_MESSAGE_HH
#define JMSIM_NET_MESSAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/word.hh"
#include "net/router_address.hh"
#include "sim/types.hh"

namespace jmsim
{

/** Number of body flits per payload word. */
inline constexpr unsigned kFlitsPerWord = 2;

/** Bits per payload word for bandwidth accounting (36-bit words). */
inline constexpr unsigned kBitsPerWord = 36;

/** Name of a pool-resident message (see MessagePool). */
using MsgHandle = std::uint32_t;

/** "No message": the default of a freshly constructed Flit. */
inline constexpr MsgHandle kNullMsg = 0xFFFFFFFFu;

/** One message travelling through the mesh. */
struct Message
{
    NodeId src = 0;
    NodeId dest = 0;
    RouterAddr destAddr;
    std::uint8_t priority = 0;           ///< 0 or 1
    std::vector<Word> words;             ///< payload, [0] = Msg header
    Cycle injectCycle = 0;               ///< first flit entered the router
    Cycle deliverCycle = 0;              ///< last word written to the queue
    /** Per-sender sequence number stamped when the message finalizes.
     *  (src, srcSeq) is the stable identity tracing matches send and
     *  receive events on — pool handles recycle differently per shard
     *  count, so they cannot name a message deterministically. */
    std::uint32_t srcSeq = 0;
    /** Cut-through: words may still be appended until the sender's
     *  SEND*E executes; only then is the last flit a tail. */
    bool finalized = false;
    /** 0 = regular message; else 1 + the NetOp opcode — an in-network
     *  computing request the NI hands to the NetOps engine instead of
     *  the inject port (see netops/netops.hh). */
    std::uint8_t netop = 0;

    /** Total flits on a channel so far: head + 2 per word. */
    std::uint32_t
    flitCount() const
    {
        return 1 + kFlitsPerWord * static_cast<std::uint32_t>(words.size());
    }

    /** Is flit @p index the tail of this message (as built so far)? */
    bool
    tailAt(std::uint32_t index) const
    {
        return finalized && index + 1 == flitCount();
    }
};

/** Per-axis remaining-hop encoding of a cached e-cube route: bit 7 is
 *  the direction sign (set = negative), bits 0..6 the hop count. */
inline std::uint8_t
encodeRouteHops(unsigned from, unsigned to)
{
    return to >= from ? static_cast<std::uint8_t>(to - from)
                      : static_cast<std::uint8_t>(0x80u | (from - to));
}

/** One flit: a POD cursor into a pooled message. */
struct Flit
{
    MsgHandle msg = kNullMsg;
    std::uint32_t index = 0;   ///< 0 = head flit
    std::uint8_t vn = 0;       ///< virtual network (= message priority)
    /** Precomputed Message::tailAt(index), set at injection so the
     *  per-hop move path never touches the message slab. */
    std::uint8_t tail = 0;
    /** Cached dimension-order route of a head flit: remaining hops per
     *  axis (encodeRouteHops), computed once at injection from
     *  (source, destination) and decremented as the head moves, so the
     *  per-hop routing decision never loads the message slab and does
     *  no address arithmetic. Unused on body flits (they follow the
     *  worm's allocated path). */
    std::array<std::uint8_t, 3> route{};

    bool isHead() const { return index == 0; }

    /**
     * Payload word this flit completes, or -1.
     * Body flits for word w have indices 1+2w and 2+2w; the second one
     * completes the word.
     */
    std::int32_t
    completesWord() const
    {
        if (index == 0 || (index % kFlitsPerWord) != 0)
            return -1;
        return static_cast<std::int32_t>(index / kFlitsPerWord) - 1;
    }
};

} // namespace jmsim

#endif // JMSIM_NET_MESSAGE_HH
