#include "net/router.hh"

#include <bit>

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace jmsim
{

void
Router::init(NodeId id, RouterAddr addr)
{
    if (initialized_)
        panic("Router::init called twice (use setDeliverSink to rewire)");
    initialized_ = true;
    id_ = id;
    addr_ = addr;
    for (auto &per_out : owner_)
        per_out.fill(-1);
}

void
Router::pullPhase()
{
    // pendingIn_ tracks exactly the input channels holding a visible
    // flit (set by the mesh when a channel commits, cleared when the
    // flit is consumed), so only live directions are touched.
    unsigned m = pendingIn_;
    while (m) {
        const unsigned dir = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        Channel *ch = in_[dir];
        const unsigned vn = ch->peek().vn;
        if (fifos_[dir][vn].full())
            continue;  // back-pressure: the flit stays visible
        fifos_[dir][vn].push(ch->take());
        pendingIn_ &= ~(1u << dir);
        occ_[vn] |= 1u << dir;
        ++resident_;
        if (fifos_[dir][vn].size() == 1)
            updateFront(dir, vn);
    }
}

bool
Router::tryMove(unsigned out, unsigned vn, unsigned in, Cycle now,
                ChannelBitmap &touched)
{
    FlitFifo &fifo = fifos_[in][vn];
    if (out == kDeliverPort) {
        if (!sink_->canAcceptFlit(fifo.front()))
            return false;
        // Forward the front by reference — the sink copies what it
        // keeps — then drop it; msg/tail are captured first because
        // drop() invalidates the reference.
        const Flit &flit = fifo.front();
        const MsgHandle msg_ref = flit.msg;
        const bool tail = flit.tail != 0;
        stats_.flitsDelivered += 1;
        if (kTraceCompiledIn && trace_ && flit.isHead() &&
            trace_->wants(TraceKind::FlitForward)) {
            const Message &msg = pool_->get(flit.msg);
            TraceEvent ev;
            ev.cycle = now;
            ev.node = id_;
            ev.kind = TraceKind::FlitForward;
            ev.arg8 = static_cast<std::uint8_t>(out);
            ev.a0 = (static_cast<std::uint64_t>(msg.src) << 32) | msg.srcSeq;
            ev.a1 = vn;
            trace_->record(ev);
        }
        sink_->acceptFlit(flit, now);
        fifo.drop();
        --resident_;
        if (fifo.empty())
            occ_[vn] &= ~(1u << in);
        updateFront(in, vn);
        // The tail was the last live reference: recycle the message.
        if (tail)
            pool_->release(msg_ref);
        setOwner(out, vn, tail ? -1 : static_cast<std::int8_t>(in));
        return true;
    }
    Channel *ch = out_[out];
    if (!ch || !ch->canSend())
        return false;
    Flit &flit = fifo.frontMut();
    // A head flit forwarded on an axis has one less hop to go on it.
    // The hop count is nonzero (that is why this output was routed),
    // so the decrement never borrows into the sign bit.
    if (flit.isHead())
        flit.route[out / 2] -= 1;
    const bool tail = flit.tail != 0;
    stats_.flitsRouted += 1;
    if (kTraceCompiledIn && trace_ && flit.isHead() &&
        trace_->wants(TraceKind::FlitForward)) {
        const Message &msg = pool_->get(flit.msg);
        TraceEvent ev;
        ev.cycle = now;
        ev.node = id_;
        ev.kind = TraceKind::FlitForward;
        ev.arg8 = static_cast<std::uint8_t>(out);
        ev.a0 = (static_cast<std::uint64_t>(msg.src) << 32) | msg.srcSeq;
        ev.a1 = vn;
        trace_->record(ev);
    }
    ch->send(flit);
    fifo.drop();
    --resident_;
    if (fifo.empty())
        occ_[vn] &= ~(1u << in);
    updateFront(in, vn);
    markTouched(touched, ch->index());
    setOwner(out, vn, tail ? -1 : static_cast<std::int8_t>(in));
    sentThisCycle_ = true;
    if (in == kInjectPort)
        injectMoved_[vn] = true;
    return true;
}

bool
Router::movePhase(Cycle now, ChannelBitmap &touched)
{
    sentThisCycle_ = false;
    injectMoved_.fill(false);
    if (resident_ == 0)
        return false;

    // The head snapshot (which inputs front a head on each virtual
    // network, and where each head routes) is persistent router state,
    // maintained by updateFront at every FIFO front change — so the
    // move phase does not rescan FIFO contents. Only the request mask
    // is derived per cycle, from the few set snapshot bits. The output
    // loop below then visits only ports that have a continuing worm or
    // a head requesting them — routers typically carry one or two
    // worms, so most of the 7x2 (port, vn) grid is dead on any given
    // cycle.
    std::array<unsigned, kNumVns> want{};
    for (unsigned vn = 0; vn < kNumVns; ++vn) {
        unsigned m = headMask_[vn];
        while (m) {
            const unsigned in = static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            want[vn] |= 1u << headOut_[in][vn];
        }
    }

    // Outputs are arbitrated in ascending order exactly once, as in the
    // straightforward 0..6 sweep: `passed` covers every index at or
    // below the port being processed, so a head exposed mid-sweep (by a
    // retiring worm) can still claim a later port but never an earlier
    // one.
    unsigned passed = 0;
    while (true) {
        const unsigned pending =
            (want[0] | want[1] | ownerMask_[0] | ownerMask_[1]) & ~passed;
        if (!pending)
            break;
        const unsigned out = static_cast<unsigned>(std::countr_zero(pending));
        passed |= (2u << out) - 1;
        bool moved = false;
        // Priority-1 virtual network is preferred on every physical port.
        for (unsigned vn_i = 0; vn_i < kNumVns && !moved; ++vn_i) {
            const unsigned vn = 1 - vn_i;
            const std::int8_t own = owner_[out][vn];
            if (own >= 0) {
                // Continuing worm: only its body flits may use the port.
                const unsigned in = static_cast<unsigned>(own);
                if (!fifos_[in][vn].empty()) {
                    moved = tryMove(out, vn, in, now, touched);
                    // A head exposed by this move (tail retired, next
                    // message fronting) may still claim a later port in
                    // this sweep: fold it into the request mask.
                    if (moved && (headMask_[vn] >> in & 1u))
                        want[vn] |= 1u << headOut_[in][vn];
                }
                continue;
            }
            if (!(want[vn] >> out & 1u))
                continue;
            // Allocate the output to a new worm: scan head flits in the
            // arbitration order (fixed: ascending input index; round
            // robin: rotated). The first head that wants this output
            // settles it — a blocked head still holds its request, so
            // no lower-priority input may claim the port either.
            const unsigned start = roundRobin_ ? rrNext_[out] : 0;
            for (unsigned k = 0; k < kNumInPorts; ++k) {
                const unsigned in = (start + k) % kNumInPorts;
                if (!(headMask_[vn] >> in & 1u))
                    continue;
                if (headOut_[in][vn] != out)
                    continue;
                if (tryMove(out, vn, in, now, touched)) {
                    moved = true;
                    if (headMask_[vn] >> in & 1u)
                        want[vn] |= 1u << headOut_[in][vn];
                    if (roundRobin_)
                        rrNext_[out] =
                            static_cast<std::uint8_t>((in + 1) % kNumInPorts);
                }
                break;
            }
        }
    }

    // Injection fairness statistic: a pending inject head that did not
    // move this cycle counts as a stall.
    for (unsigned vn = 0; vn < kNumVns; ++vn) {
        const FlitFifo &inj = fifos_[kInjectPort][vn];
        if (!inj.empty() && !injectMoved_[vn])
            stats_.injectStalls += 1;
    }

    // Any head still in the snapshot fronts a FIFO and did not move:
    // it lost arbitration or its output was unavailable.
    if (kTraceCompiledIn && trace_ && trace_->wants(TraceKind::FlitBlock)) {
        for (unsigned vn = 0; vn < kNumVns; ++vn) {
            unsigned m = headMask_[vn];
            while (m) {
                const unsigned in =
                    static_cast<unsigned>(std::countr_zero(m));
                m &= m - 1;
                const Message &msg =
                    pool_->get(fifos_[in][vn].front().msg);
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::FlitBlock;
                ev.arg8 = headOut_[in][vn];
                ev.a0 = (static_cast<std::uint64_t>(msg.src) << 32) |
                        msg.srcSeq;
                ev.a1 = in;
                trace_->record(ev);
            }
        }
    }
    return sentThisCycle_;
}

void
Router::inject(Flit flit)
{
    const unsigned vn = flit.vn;
    if (fifos_[kInjectPort][vn].full())
        panic("Router::inject on full FIFO (call canInject first)");
    fifos_[kInjectPort][vn].push(std::move(flit));
    occ_[vn] |= 1u << kInjectPort;
    ++resident_;
    if (fifos_[kInjectPort][vn].size() == 1)
        updateFront(kInjectPort, vn);
}

bool
Router::hasPendingInput() const
{
    return pendingIn_ != 0;
}

void
Router::collectHandles(std::vector<MsgHandle> &out) const
{
    for (unsigned in = 0; in < kNumInPorts; ++in) {
        for (unsigned vn = 0; vn < kNumVns; ++vn) {
            const FlitFifo &fifo = fifos_[in][vn];
            for (unsigned i = 0; i < fifo.size(); ++i)
                out.push_back(fifo.at(i).msg);
        }
    }
}

namespace
{

void
saveFlit(ckpt::Writer &w, const ckpt::HandleMap &map, const Flit &flit)
{
    w.u32(map.ordinalOf(flit.msg));
    w.u32(flit.index);
    w.u8(flit.vn);
    w.u8(flit.tail);
    for (std::uint8_t hop : flit.route)
        w.u8(hop);
}

Flit
restoreFlit(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    Flit flit;
    flit.msg = map.handleOf(r.u32());
    flit.index = r.u32();
    flit.vn = r.u8();
    flit.tail = r.u8();
    for (std::uint8_t &hop : flit.route)
        hop = r.u8();
    return flit;
}

} // namespace

void
Router::save(ckpt::Writer &w, const ckpt::HandleMap &map) const
{
    for (unsigned in = 0; in < kNumInPorts; ++in) {
        for (unsigned vn = 0; vn < kNumVns; ++vn) {
            const FlitFifo &fifo = fifos_[in][vn];
            w.u8(static_cast<std::uint8_t>(fifo.size()));
            for (unsigned i = 0; i < fifo.size(); ++i)
                saveFlit(w, map, fifo.at(i));
        }
    }
    for (unsigned out = 0; out < kNumOutPorts; ++out)
        for (unsigned vn = 0; vn < kNumVns; ++vn)
            w.u8(static_cast<std::uint8_t>(owner_[out][vn]));
    // pendingIn_ is deliberately absent: which side tracks a committed
    // but undrained channel flit depends on the fabric scheduler mode
    // (legacy sets the downstream router's pendingIn_ bit; the
    // event-driven fabric keeps a retry list in MeshNetwork instead).
    // The image stores only the channel contents; MeshNetwork::restore
    // rebuilds the tracking for whichever mode the restoring machine
    // runs in.
    for (std::uint8_t n : rrNext_)
        w.u8(n);
    w.b(sentThisCycle_);
    for (bool moved : injectMoved_)
        w.b(moved);
    w.u64(stats_.flitsRouted);
    w.u64(stats_.flitsDelivered);
    w.u64(stats_.injectStalls);
}

void
Router::restore(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    resident_ = 0;
    for (unsigned vn = 0; vn < kNumVns; ++vn) {
        occ_[vn] = 0;
        headMask_[vn] = 0;
        ownerMask_[vn] = 0;
    }
    for (unsigned in = 0; in < kNumInPorts; ++in) {
        for (unsigned vn = 0; vn < kNumVns; ++vn) {
            FlitFifo &fifo = fifos_[in][vn];
            fifo.clear();
            const unsigned count = r.u8();
            if (count > FlitFifo::kCapacity)
                fatal("checkpoint: flit FIFO overflow");
            for (unsigned i = 0; i < count; ++i)
                fifo.push(restoreFlit(r, map));
            if (count > 0) {
                occ_[vn] |= 1u << in;
                resident_ += count;
                updateFront(in, vn);
            }
        }
    }
    for (unsigned out = 0; out < kNumOutPorts; ++out)
        for (unsigned vn = 0; vn < kNumVns; ++vn)
            setOwner(out, vn, static_cast<std::int8_t>(r.u8()));
    pendingIn_ = 0;  // rebuilt from channel state by MeshNetwork::restore
    for (std::uint8_t &n : rrNext_)
        n = r.u8();
    sentThisCycle_ = r.b();
    for (bool &moved : injectMoved_)
        moved = r.b();
    stats_.flitsRouted = r.u64();
    stats_.flitsDelivered = r.u64();
    stats_.injectStalls = r.u64();
}

} // namespace jmsim
