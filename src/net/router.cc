#include "net/router.hh"

#include <bit>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace jmsim
{

void
Router::init(NodeId id, RouterAddr addr)
{
    if (initialized_)
        panic("Router::init called twice (use setDeliverSink to rewire)");
    initialized_ = true;
    id_ = id;
    addr_ = addr;
    for (auto &per_out : owner_)
        per_out.fill(-1);
}

void
Router::pullPhase()
{
    // pendingIn_ tracks exactly the input channels holding a visible
    // flit (set by the mesh when a channel commits, cleared when the
    // flit is consumed), so only live directions are touched.
    unsigned m = pendingIn_;
    while (m) {
        const unsigned dir = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        Channel *ch = in_[dir];
        const unsigned vn = ch->peek().vn;
        if (fifos_[dir][vn].full())
            continue;  // back-pressure: the flit stays visible
        fifos_[dir][vn].push(ch->take());
        pendingIn_ &= ~(1u << dir);
        occ_[vn] |= 1u << dir;
        ++resident_;
    }
}

unsigned
Router::route(const RouterAddr &dest) const
{
    if (dest.x != addr_.x)
        return dest.x > addr_.x ? kXPos : kXNeg;
    if (dest.y != addr_.y)
        return dest.y > addr_.y ? kYPos : kYNeg;
    if (dest.z != addr_.z)
        return dest.z > addr_.z ? kZPos : kZNeg;
    return kDeliverPort;
}

bool
Router::tryMove(unsigned out, unsigned vn, unsigned in, Cycle now,
                ChannelBitmap &touched)
{
    FlitFifo &fifo = fifos_[in][vn];
    if (out == kDeliverPort) {
        if (!sink_->canAcceptFlit(fifo.front()))
            return false;
        const Flit flit = fifo.pop();
        --resident_;
        if (fifo.empty())
            occ_[vn] &= ~(1u << in);
        const bool tail = flit.tail != 0;
        stats_.flitsDelivered += 1;
        if (kTraceCompiledIn && trace_ && flit.isHead() &&
            trace_->wants(TraceKind::FlitForward)) {
            const Message &msg = pool_->get(flit.msg);
            TraceEvent ev;
            ev.cycle = now;
            ev.node = id_;
            ev.kind = TraceKind::FlitForward;
            ev.arg8 = static_cast<std::uint8_t>(out);
            ev.a0 = (static_cast<std::uint64_t>(msg.src) << 32) | msg.srcSeq;
            ev.a1 = vn;
            trace_->record(ev);
        }
        sink_->acceptFlit(flit, now);
        // The tail was the last live reference: recycle the message.
        if (tail)
            pool_->release(flit.msg);
        setOwner(out, vn, tail ? -1 : static_cast<std::int8_t>(in));
        return true;
    }
    Channel *ch = out_[out];
    if (!ch || !ch->canSend())
        return false;
    const Flit flit = fifo.pop();
    --resident_;
    if (fifo.empty())
        occ_[vn] &= ~(1u << in);
    const bool tail = flit.tail != 0;
    stats_.flitsRouted += 1;
    if (kTraceCompiledIn && trace_ && flit.isHead() &&
        trace_->wants(TraceKind::FlitForward)) {
        const Message &msg = pool_->get(flit.msg);
        TraceEvent ev;
        ev.cycle = now;
        ev.node = id_;
        ev.kind = TraceKind::FlitForward;
        ev.arg8 = static_cast<std::uint8_t>(out);
        ev.a0 = (static_cast<std::uint64_t>(msg.src) << 32) | msg.srcSeq;
        ev.a1 = vn;
        trace_->record(ev);
    }
    ch->send(flit);
    markTouched(touched, ch->index());
    setOwner(out, vn, tail ? -1 : static_cast<std::int8_t>(in));
    sentThisCycle_ = true;
    if (in == kInjectPort)
        injectMoved_[vn] = true;
    return true;
}

bool
Router::movePhase(Cycle now, ChannelBitmap &touched)
{
    sentThisCycle_ = false;
    injectMoved_.fill(false);
    if (resident_ == 0)
        return false;

    // Snapshot the head flits once: which inputs front a head on each
    // virtual network, and where each head routes. The output loop
    // below then visits only ports that have a continuing worm or a
    // head requesting them — routers typically carry one or two worms,
    // so most of the 7x2 (port, vn) grid is dead on any given cycle.
    // The snapshot is kept in sync as moves pop FIFOs; the occupancy
    // masks make it touch only non-empty FIFOs.
    std::array<std::array<std::uint8_t, kNumVns>, kNumInPorts> head_out;
    std::array<unsigned, kNumVns> head_mask{};
    std::array<unsigned, kNumVns> want{};
    const auto refresh = [&](unsigned in, unsigned vn) {
        const FlitFifo &fifo = fifos_[in][vn];
        head_mask[vn] &= ~(1u << in);
        if (!fifo.empty() && fifo.front().isHead()) {
            const unsigned out = route(pool_->get(fifo.front().msg).destAddr);
            head_out[in][vn] = static_cast<std::uint8_t>(out);
            head_mask[vn] |= 1u << in;
            want[vn] |= 1u << out;
        }
    };
    for (unsigned vn = 0; vn < kNumVns; ++vn) {
        unsigned m = occ_[vn];
        while (m) {
            const unsigned in = static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            refresh(in, vn);
        }
    }

    // Outputs are arbitrated in ascending order exactly once, as in the
    // straightforward 0..6 sweep: `passed` covers every index at or
    // below the port being processed, so a head exposed mid-sweep (by a
    // retiring worm) can still claim a later port but never an earlier
    // one.
    unsigned passed = 0;
    while (true) {
        const unsigned pending =
            (want[0] | want[1] | ownerMask_[0] | ownerMask_[1]) & ~passed;
        if (!pending)
            break;
        const unsigned out = static_cast<unsigned>(std::countr_zero(pending));
        passed |= (2u << out) - 1;
        bool moved = false;
        // Priority-1 virtual network is preferred on every physical port.
        for (unsigned vn_i = 0; vn_i < kNumVns && !moved; ++vn_i) {
            const unsigned vn = 1 - vn_i;
            const std::int8_t own = owner_[out][vn];
            if (own >= 0) {
                // Continuing worm: only its body flits may use the port.
                FlitFifo &fifo = fifos_[static_cast<unsigned>(own)][vn];
                if (!fifo.empty()) {
                    moved = tryMove(out, vn, static_cast<unsigned>(own), now,
                                    touched);
                    if (moved)
                        refresh(static_cast<unsigned>(own), vn);
                }
                continue;
            }
            if (!(want[vn] >> out & 1u))
                continue;
            // Allocate the output to a new worm: scan head flits in the
            // arbitration order (fixed: ascending input index; round
            // robin: rotated). The first head that wants this output
            // settles it — a blocked head still holds its request, so
            // no lower-priority input may claim the port either.
            const unsigned start = roundRobin_ ? rrNext_[out] : 0;
            for (unsigned k = 0; k < kNumInPorts; ++k) {
                const unsigned in = (start + k) % kNumInPorts;
                if (!(head_mask[vn] >> in & 1u))
                    continue;
                if (head_out[in][vn] != out)
                    continue;
                if (tryMove(out, vn, in, now, touched)) {
                    moved = true;
                    refresh(in, vn);
                    if (roundRobin_)
                        rrNext_[out] =
                            static_cast<std::uint8_t>((in + 1) % kNumInPorts);
                }
                break;
            }
        }
    }

    // Injection fairness statistic: a pending inject head that did not
    // move this cycle counts as a stall.
    for (unsigned vn = 0; vn < kNumVns; ++vn) {
        const FlitFifo &inj = fifos_[kInjectPort][vn];
        if (!inj.empty() && !injectMoved_[vn])
            stats_.injectStalls += 1;
    }

    // Any head still in the snapshot fronts a FIFO and did not move:
    // it lost arbitration or its output was unavailable.
    if (kTraceCompiledIn && trace_ && trace_->wants(TraceKind::FlitBlock)) {
        for (unsigned vn = 0; vn < kNumVns; ++vn) {
            unsigned m = head_mask[vn];
            while (m) {
                const unsigned in =
                    static_cast<unsigned>(std::countr_zero(m));
                m &= m - 1;
                const Message &msg =
                    pool_->get(fifos_[in][vn].front().msg);
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::FlitBlock;
                ev.arg8 = head_out[in][vn];
                ev.a0 = (static_cast<std::uint64_t>(msg.src) << 32) |
                        msg.srcSeq;
                ev.a1 = in;
                trace_->record(ev);
            }
        }
    }
    return sentThisCycle_;
}

void
Router::inject(Flit flit)
{
    const unsigned vn = flit.vn;
    if (fifos_[kInjectPort][vn].full())
        panic("Router::inject on full FIFO (call canInject first)");
    fifos_[kInjectPort][vn].push(std::move(flit));
    occ_[vn] |= 1u << kInjectPort;
    ++resident_;
}

bool
Router::hasPendingInput() const
{
    return pendingIn_ != 0;
}

} // namespace jmsim
