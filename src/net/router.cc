#include "net/router.hh"

#include "sim/logging.hh"

namespace jmsim
{

void
Router::init(NodeId id, RouterAddr addr)
{
    if (initialized_)
        panic("Router::init called twice (use setDeliverSink to rewire)");
    initialized_ = true;
    id_ = id;
    addr_ = addr;
    for (auto &per_out : owner_)
        per_out.fill(-1);
}

void
Router::pullPhase()
{
    for (unsigned dir = 0; dir < kNumDirs; ++dir) {
        Channel *ch = in_[dir];
        if (!ch || !ch->hasFlit())
            continue;
        const unsigned vn = ch->peek().vn;
        if (fifos_[dir][vn].full())
            continue;
        fifos_[dir][vn].push(ch->take());
        ++resident_;
    }
}

unsigned
Router::route(const RouterAddr &dest) const
{
    if (dest.x != addr_.x)
        return dest.x > addr_.x ? kXPos : kXNeg;
    if (dest.y != addr_.y)
        return dest.y > addr_.y ? kYPos : kYNeg;
    if (dest.z != addr_.z)
        return dest.z > addr_.z ? kZPos : kZNeg;
    return kDeliverPort;
}

bool
Router::tryMove(unsigned out, unsigned vn, unsigned in, Cycle now,
                std::vector<Channel *> &touched)
{
    FlitFifo &fifo = fifos_[in][vn];
    if (out == kDeliverPort) {
        if (!sink_->canAcceptFlit(fifo.front()))
            return false;
        Flit flit = fifo.pop();
        --resident_;
        const bool tail = flit.isTail();
        stats_.flitsDelivered += 1;
        sink_->acceptFlit(flit, now);
        owner_[out][vn] = tail ? -1 : static_cast<std::int8_t>(in);
        return true;
    }
    Channel *ch = out_[out];
    if (!ch || !ch->canSend())
        return false;
    Flit flit = fifo.pop();
    --resident_;
    const bool tail = flit.isTail();
    stats_.flitsRouted += 1;
    ch->send(std::move(flit));
    touched.push_back(ch);
    owner_[out][vn] = tail ? -1 : static_cast<std::int8_t>(in);
    sentThisCycle_ = true;
    if (in == kInjectPort)
        injectMoved_[vn] = true;
    return true;
}

bool
Router::movePhase(Cycle now, std::vector<Channel *> &touched)
{
    sentThisCycle_ = false;
    injectMoved_.fill(false);
    if (resident_ == 0)
        return false;

    for (unsigned out = 0; out < kNumOutPorts; ++out) {
        bool moved = false;
        // Priority-1 virtual network is preferred on every physical port.
        for (unsigned vn_i = 0; vn_i < kNumVns && !moved; ++vn_i) {
            const unsigned vn = 1 - vn_i;
            const std::int8_t own = owner_[out][vn];
            if (own >= 0) {
                // Continuing worm: only its body flits may use the port.
                FlitFifo &fifo = fifos_[own][vn];
                if (!fifo.empty())
                    moved = tryMove(out, vn, own, now, touched);
                continue;
            }
            // Allocate the output to a new worm: scan head flits.
            const unsigned start = roundRobin_ ? rrNext_[out] : 0;
            for (unsigned k = 0; k < kNumInPorts; ++k) {
                const unsigned in = (start + k) % kNumInPorts;
                FlitFifo &fifo = fifos_[in][vn];
                if (fifo.empty() || !fifo.front().isHead())
                    continue;
                if (route(fifo.front().msg->destAddr) != out)
                    continue;
                if (tryMove(out, vn, in, now, touched)) {
                    moved = true;
                    if (roundRobin_)
                        rrNext_[out] =
                            static_cast<std::uint8_t>((in + 1) % kNumInPorts);
                    break;
                }
                // Head flit blocked downstream: the output stays free
                // this cycle, but no lower-priority input may claim it
                // either (a blocked head still holds its request).
                break;
            }
        }
    }

    // Injection fairness statistic: a pending inject head that did not
    // move this cycle counts as a stall.
    for (unsigned vn = 0; vn < kNumVns; ++vn) {
        const FlitFifo &inj = fifos_[kInjectPort][vn];
        if (!inj.empty() && !injectMoved_[vn])
            stats_.injectStalls += 1;
    }
    return sentThisCycle_;
}

void
Router::inject(Flit flit)
{
    const unsigned vn = flit.vn;
    if (fifos_[kInjectPort][vn].full())
        panic("Router::inject on full FIFO (call canInject first)");
    fifos_[kInjectPort][vn].push(std::move(flit));
    ++resident_;
}

bool
Router::hasPendingInput() const
{
    for (unsigned dir = 0; dir < kNumDirs; ++dir) {
        if (in_[dir] && in_[dir]->hasFlit())
            return true;
    }
    return false;
}

} // namespace jmsim
