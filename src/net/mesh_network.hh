/**
 * @file
 * The 3-D mesh fabric: routers, channels, and activity tracking.
 *
 * The mesh advances in lock-step with the processor clock but only
 * touches routers that hold flits (or are about to receive one), so an
 * idle network costs nothing. Bisection traffic is counted the way the
 * paper quotes it: payload flits crossing the X mid-plane in the
 * positive direction, at 36 bits per word, against a one-direction
 * capacity of width * 0.5 words/cycle.
 *
 * Execution is split into three phases so the threaded kernel can
 * shard the fabric over contiguous node-id slabs (setShards):
 *
 *   pullShard(s)  — drain last cycle's committed channel outputs into
 *                   the slab's router FIFOs. Only reads channel `cur`
 *                   registers, each owned by its downstream router.
 *   moveShard(s)  — arbitrate and move flits. Writes only channel
 *                   `next` registers (each owned by its unique
 *                   upstream router) and the slab's own delivery
 *                   sinks; written channels are recorded per shard.
 *   commitPhase() — main thread, at the barrier: advance the written
 *                   pipeline registers in channel-index order, wake
 *                   downstream routers, count bisection crossings,
 *                   fold per-shard delivery counters, compact the
 *                   active bins.
 *
 * The one-flit channel pipeline register is the synchronization
 * boundary: within a phase no two shards touch the same field, and the
 * phases are separated by the kernel's cycle barrier, so a sharded run
 * is bit-identical to the serial one (step() runs the same three
 * phases inline with a single shard).
 *
 * In the event-driven mode (MachineConfig::netScheduler, default on)
 * the pull phase disappears entirely: commitPhase pushes each committed
 * flit straight into the downstream input FIFO. This is exact, not an
 * approximation — nothing drains an input FIFO between commit(t) and
 * pull(t+1) (pops happen only in the move phase, which precedes the
 * commit), so the FIFO state a fused push observes at commit(t) is
 * bit-for-bit the state the legacy pull would observe at t+1, and a
 * push succeeds iff that pull would. A push blocked by a full FIFO
 * leaves the flit visible in the channel and parks the channel index on
 * retryPull_, which is retried each commit — the same cycle the legacy
 * pull would first succeed. Cost per cycle is therefore proportional
 * to flits moved, with no per-cycle scan of routers or channels.
 */

#ifndef JMSIM_NET_MESH_NETWORK_HH
#define JMSIM_NET_MESH_NETWORK_HH

#include <cstdint>
#include <vector>

#include "net/channel.hh"
#include "net/message_pool.hh"
#include "net/router.hh"
#include "net/router_address.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace_event.hh"

namespace jmsim
{

class CounterRegistry;
class Tracer;

/** MeshNetwork::nextEventCycle when the fabric is provably dead. */
inline constexpr Cycle kNoFabricEvent = ~Cycle{0};

/** Fabric-level statistics. */
struct NetworkStats
{
    std::uint64_t messagesDelivered = 0;
    std::uint64_t wordsDelivered = 0;
    /** Payload flits crossing the X mid-plane, per direction. */
    std::uint64_t bisectionFlitsPos = 0;
    std::uint64_t bisectionFlitsNeg = 0;

    /** Bits crossing the mid-plane in the positive direction. */
    double
    bisectionBitsPos() const
    {
        return static_cast<double>(bisectionFlitsPos) *
               (kBitsPerWord / kFlitsPerWord);
    }
};

/** The complete interconnect of one J-Machine. */
class MeshNetwork
{
  public:
    explicit MeshNetwork(const MeshDims &dims);

    MeshNetwork(const MeshNetwork &) = delete;
    MeshNetwork &operator=(const MeshNetwork &) = delete;

    /** The arena every in-flight message of this fabric lives in. */
    MessagePool &pool() { return pool_; }
    const MessagePool &pool() const { return pool_; }

    /** Attach node @p id's delivery sink (must precede stepping). */
    void setDeliverSink(NodeId id, DeliverSink *sink);

    /** Select arbitration policy on every router (ablation hook). */
    void setRoundRobin(bool rr);

    /** Attach the machine's tracer to every router (null = off). */
    void setTracer(Tracer *tracer);

    /** Register fabric, router, pool, and latency stats by name. */
    void registerCounters(CounterRegistry &reg);

    /** Per-message inject->deliver latency, merged across shards. */
    Histogram latencyHistogram() const;

    /** Advance the fabric by one cycle (serial: all phases inline). */
    void step(Cycle now);

    // ---- event-driven fabric scheduling (MachineConfig::netScheduler) ----

    /** Select the event-driven stepping paths (commit-produced pull
     *  worklists, dirty-word commit, fused serial fast path) or the
     *  legacy full-scan ones. Pure host-side A/B: runs are
     *  bit-identical either way. */
    /** Switch stepping strategy between cycles. Re-homes the tracking
     *  of committed-but-undrained channel flits (retry list vs router
     *  pendingIn_ bits) so a live flip never strands a worm. */
    void setEventDriven(bool on);
    bool eventDriven() const { return eventDriven_; }

    /**
     * Earliest cycle the fabric can change architectural state, given
     * the clock stands at @p now: with any router active (a flit in a
     * FIFO, a channel pipeline register occupied, or a committed flit
     * awaiting its pull) the fabric has work next cycle; otherwise it
     * is provably dead until an NI injects — kNoFabricEvent. Exact,
     * not conservative: active routers are compacted away the cycle
     * they drain, so a quiet verdict means no flit exists anywhere.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        return activeCount_ != 0 ? now + 1 : kNoFabricEvent;
    }

    /** May the serial kernel run the fused single-pass fast path this
     *  cycle? Requires the event-driven mode and an unsharded fabric —
     *  the fused step then strictly dominates the sharded sequence (it
     *  runs the same phases over the same sets minus the cross-shard
     *  bitmap union, and its commit makes the same sort-vs-scan choice
     *  the sharded commit does). */
    bool
    fastPathEligible() const
    {
        return eventDriven_ && shards_.size() == 1;
    }

    /** Fused serial step: pull worklist, move the active routers, and
     *  commit shard 0's dirty words inline — one pass, no cross-shard
     *  union, no histogram folding beyond shard 0. Bit-identical to
     *  pullShard(0)+moveShard(0)+commitPhase() by construction: the
     *  three sub-loops run in the same phase order over the same sets,
     *  and the commit still applies in ascending channel index. */
    void stepFast(Cycle now);

    /** Account one stepped fabric cycle: the active routers were
     *  visited, every other router's step was skipped. */
    void
    noteStepBegin()
    {
        routerSteps_ += activeCount_;
        skippedRouterSteps_ += dims_.nodes() - activeCount_;
    }

    /** Account @p cycles fabric-quiet cycles (single unticked-fabric
     *  cycles and idle-skip jumps): every router's step was skipped,
     *  and the cycles count as event-skipped. Together with
     *  noteStepBegin this keeps router_steps + skipped_router_steps ==
     *  routers * cycles exact on a fresh machine. */
    void
    noteQuietCycles(Cycle cycles)
    {
        skippedRouterSteps_ +=
            static_cast<std::uint64_t>(cycles) * dims_.nodes();
        eventSkippedCycles_ += cycles;
    }

    // ---- sharded stepping (threaded kernel) ----

    /** Partition routers into @p shards contiguous node-id slabs and
     *  size the pool's per-shard free lists (main thread only). */
    void setShards(unsigned shards);

    unsigned shardCount() const { return static_cast<unsigned>(shards_.size()); }

    /** Phase 1 (parallel): pull committed channel flits into shard
     *  @p s's active routers. A no-op in the event-driven mode, where
     *  the commit phase already pushed the flits (see the file
     *  comment). */
    void pullShard(unsigned s);

    /** Phase 2 (parallel): arbitrate and move shard @p s's active
     *  routers; deliveries land in the slab's own sinks. */
    void moveShard(unsigned s, Cycle now);

    /** Phase 3 (main thread): commit written channels in channel-index
     *  order, fold per-shard counters, compact the active bins. */
    void commitPhase(Cycle now);

    /** NI-side: may node @p id inject a flit at priority @p vn?
     *  While staging is enabled, flits staged this cycle count against
     *  the inject-FIFO capacity. */
    bool
    canInject(NodeId id, unsigned vn) const
    {
        const unsigned free = routers_[id].injectFree(vn);
        if (!staging_)
            return free > 0;
        return free > stagedInject_[id * kNumVns + vn];
    }

    /** NI-side: push one flit into node @p id's inject port. */
    void injectFlit(NodeId id, Flit flit);

    // ---- staged injection (threaded kernel) ----
    //
    // During a threaded run the machine steps nodes in parallel, so
    // injectFlit buffers into a per-shard staging queue instead of
    // mutating the shared active list. commitStaged() replays the
    // buffered flits in node-id order at the cycle barrier, which makes
    // a threaded run bit-identical to the serial kernel.

    /** Enter staged-injection mode with @p shards worker shards (also
     *  partitions the fabric and pool: see setShards). */
    void beginStaging(unsigned shards);

    /** Replay this cycle's staged flits in node-id order. */
    void commitStaged();

    /** Leave staged-injection mode (staging queues must be empty). */
    void endStaging();

    /** Called by sinks when a whole message has been delivered. May run
     *  inside a parallel move phase: counts (and samples the latency
     *  histogram) per executing shard. */
    void noteMessageDelivered(const Message &msg);

    /** True if any flit is in flight anywhere (exhaustive scan). */
    bool busy() const;

    /** Cheap activity check: any router on an active bin? */
    bool anyActive() const { return activeCount_ != 0; }

    const MeshDims &dims() const { return dims_; }
    Router &router(NodeId id) { return routers_[id]; }
    const NetworkStats &stats() const { return stats_; }
    void resetStats();

    /** One-direction bisection capacity in bits per second. */
    double bisectionCapacityBitsPerSec() const;

    /** Heap bytes behind the fabric: routers, channels, shard state,
     *  staging queues, activity arrays, and the message arena. */
    std::uint64_t footprintBytes() const;

    /** Live pool handles buffered in routers and channels, appended in
     *  deterministic (router-id, then channel-index) order. */
    void collectHandles(std::vector<MsgHandle> &out) const;

    /** Serialize routers, channels, activity state, and fabric
     *  counters. Must be between cycles with staging off. */
    void save(ckpt::Writer &w, const ckpt::HandleMap &map) const;
    void restore(ckpt::Reader &r, const ckpt::HandleMap &map);

  private:
    /** Re-derive the mode-specific tracking of committed-but-undrained
     *  channel flits from the channels themselves: the event-driven
     *  fabric retries them from retryPull_, the legacy pull phase
     *  consumes the downstream router's pendingIn_ bits. Called after
     *  a restore and on a live scheduler-mode flip. */
    void rebuildUndrainedTracking();

    /** Put router @p id on its shard's active bin (hot: inlined). */
    void
    activate(NodeId id)
    {
        if (!activeFlag_[id]) {
            activeFlag_[id] = 1;
            busyHint_[id] = 1;
            shards_[routerShard_[id]].active.push_back(id);
            ++activeCount_;
        }
    }

    /** One buffered injection awaiting the cycle barrier. */
    struct StagedFlit
    {
        NodeId id;
        Flit flit;
    };

    /** Per-slab state, cache-line separated for the parallel phases. */
    struct alignas(64) Shard
    {
        std::vector<NodeId> active;       ///< routers to step this cycle
        ChannelBitmap touched;            ///< channels written this cycle
        std::uint64_t messagesDelivered = 0;  ///< folded at commitPhase
        std::uint64_t wordsDelivered = 0;
        /** Inject->deliver cycles of every delivery this shard saw.
         *  Not folded per cycle (histogram merge is commutative, so
         *  merging on demand stays deterministic); setShards folds
         *  dropped shards into shard 0 when shrinking. */
        Histogram latency{1, kLatencyHistBuckets};
    };

    /** Retry the back-pressured fused pushes (event mode, main thread,
     *  at commit time): each entry is a committed channel whose
     *  downstream FIFO was full. Runs before the fresh commits; pushes
     *  are commutative (each targets a distinct (channel, input-FIFO)
     *  pair), so the list order never affects architectural state. */
    void retryPulls();

    /** Commit the set channels of bitmap word @p w: advance pipeline
     *  registers, count bisection crossings, and hand each flit to its
     *  downstream router (event mode: fused push into the input FIFO;
     *  legacy: raise the pending-input bit for the next pull phase). */
    void commitWord(std::size_t w, std::uint64_t bits);

    MeshDims dims_;
    MessagePool pool_;
    std::vector<Router> routers_;
    /** Channels indexed [node * kNumDirs + dir] = outgoing channel. */
    std::vector<Channel> channels_;
    std::vector<Shard> shards_;
    std::vector<std::uint16_t> routerShard_;  ///< slab of each router
    std::size_t activeCount_ = 0;
    std::vector<std::uint8_t> activeFlag_;
    /** Per-router "still has work" flag for the commit-phase bin
     *  compaction. Written where the router state is already hot in
     *  cache — by moveShard right after the router's move phase, by the
     *  commit loop when a channel wake arrives, and by activate() — so
     *  the compaction scan reads one contiguous byte array instead of
     *  chasing two cold fields per Router object. Keeping an idle
     *  router binned one cycle too long is harmless (its phases are
     *  no-ops); the hint is never stale in the dropping direction. */
    std::vector<std::uint8_t> busyHint_;
    bool staging_ = false;
    std::vector<std::vector<StagedFlit>> staged_;  ///< per worker shard
    /** Flits staged this cycle per (node, vn), for canInject. */
    std::vector<std::uint8_t> stagedInject_;
    std::vector<StagedFlit> commitScratch_;
    /** Per-cycle union of the shard bitmaps (legacy full-scan commit
     *  and the event-driven multi-shard merge both stage here). */
    std::vector<std::uint64_t> commitBits_;
    /** Scratch: dirty word indices merged across shards, sorted so the
     *  commit applies in ascending channel index. */
    std::vector<std::uint32_t> commitWords_;
    /** Committed channels whose fused push was refused by a full
     *  downstream FIFO; retried each commit. A channel appears at most
     *  once: while its flit is visible the upstream router cannot send
     *  (canSend is false), so no fresh commit of it can occur. */
    std::vector<std::uint32_t> retryPull_;
    bool eventDriven_ = true;
    /** Event accounting (net.router_steps / net.skipped_router_steps /
     *  net.event_skipped_cycles): router visits made vs avoided, and
     *  whole cycles the fabric never ticked. */
    std::uint64_t routerSteps_ = 0;
    std::uint64_t skippedRouterSteps_ = 0;
    std::uint64_t eventSkippedCycles_ = 0;
    NetworkStats stats_;
};

} // namespace jmsim

#endif // JMSIM_NET_MESH_NETWORK_HH
