#include "trace/counter_registry.hh"

#include "sim/logging.hh"

namespace jmsim
{

void
CounterRegistry::addCounter(const std::string &name,
                            const std::uint64_t *source)
{
    counters_[name].pointers.push_back(source);
}

void
CounterRegistry::addCounter(const std::string &name,
                            std::function<std::uint64_t()> reader)
{
    counters_[name].readers.push_back(std::move(reader));
}

void
CounterRegistry::addHistogram(const std::string &name,
                              std::function<Histogram()> provider)
{
    histograms_[name].push_back(std::move(provider));
}

bool
CounterRegistry::hasCounter(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

std::uint64_t
CounterRegistry::sum(const Entry &entry) const
{
    std::uint64_t total = 0;
    for (const std::uint64_t *p : entry.pointers)
        total += *p;
    for (const auto &reader : entry.readers)
        total += reader();
    return total;
}

std::uint64_t
CounterRegistry::value(const std::string &name) const
{
    const auto it = counters_.find(name);
    if (it == counters_.end())
        fatal("CounterRegistry: unknown counter '" + name + "'");
    return sum(it->second);
}

Histogram
CounterRegistry::histogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    if (it == histograms_.end() || it->second.empty())
        fatal("CounterRegistry: unknown histogram '" + name + "'");
    Histogram merged = it->second.front()();
    for (std::size_t i = 1; i < it->second.size(); ++i)
        merged.merge(it->second[i]());
    return merged;
}

std::vector<CounterSample>
CounterRegistry::snapshot() const
{
    std::vector<CounterSample> out;
    out.reserve(counters_.size());
    for (const auto &[name, entry] : counters_)
        out.push_back({name, sum(entry)});
    return out;
}

std::vector<std::string>
CounterRegistry::counterNames() const
{
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto &[name, entry] : counters_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
CounterRegistry::histogramNames() const
{
    std::vector<std::string> out;
    out.reserve(histograms_.size());
    for (const auto &[name, providers] : histograms_)
        out.push_back(name);
    return out;
}

std::uint64_t
counterValue(const std::vector<CounterSample> &snapshot,
             const std::string &name)
{
    for (const CounterSample &s : snapshot) {
        if (s.name == name)
            return s.value;
    }
    return 0;
}

} // namespace jmsim
