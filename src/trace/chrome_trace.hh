/**
 * @file
 * Chrome trace-event JSON export, parse, and summary.
 *
 * The writer emits the trace-event format that chrome://tracing and
 * Perfetto's legacy importer read: one process (pid) per node plus a
 * "machine" process for kernel-level events, one thread (tid) per
 * component (0 = processor, 1 = NI, 2 = router), timestamps in
 * microseconds with 1 simulated cycle mapped to 1 us. Instant events
 * carry the raw record payload under args {k, v, a0, a1}; queue depth
 * becomes a counter ("C") event plotting words/messages; idle-skip
 * spans become duration ("X") events on the machine track.
 *
 * Every event is one rigidly formatted line, so parseChromeTrace()
 * reads our own artifact back with sscanf — the same deliberate
 * rigid-own-format pattern bench/host_perf.cc uses for its baseline.
 * summarizeTrace() reconstructs per-message latency percentiles and
 * queue-occupancy percentiles from the parsed stream (jtrace_tool's
 * `summarize` verb, also asserted against the fabric's architectural
 * histogram in tests/trace_test.cc).
 */

#ifndef JMSIM_TRACE_CHROME_TRACE_HH
#define JMSIM_TRACE_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "trace/trace_event.hh"

namespace jmsim
{

/** Serialize a canonical event stream to trace-event JSON. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events,
                            std::uint64_t dropped);

/** Write chromeTraceJson() to @p path; false (with a stderr note) if
 *  the file cannot be written. */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TraceEvent> &events,
                      std::uint64_t dropped);

/** A trace read back from disk. */
struct ParsedTrace
{
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
};

/** Parse a file written by writeChromeTrace(); false if the file is
 *  missing or no header line matches. */
bool parseChromeTrace(const std::string &path, ParsedTrace &out);

/** What jtrace_tool's `summarize` verb reports. */
struct TraceSummary
{
    std::uint64_t countByKind[kNumTraceKinds] = {};
    Cycle firstCycle = 0;
    Cycle lastCycle = 0;
    /** Per-message network latency (inject -> deliver), rebuilt from
     *  the msg.recv events; geometry matches the fabric's histogram. */
    Histogram latency{1, kLatencyHistBuckets};
    std::uint64_t matchedMessages = 0;   ///< recv paired with its send
    std::uint64_t unmatchedSends = 0;    ///< sent, never delivered (in flight)
    std::uint64_t unmatchedRecvs = 0;    ///< delivered, send event missing
    /** Queue words in use at each delivery, per virtual network. */
    Histogram queueWords[2] = {Histogram{1, 1024}, Histogram{1, 1024}};
    Cycle idleSkippedCycles = 0;
};

TraceSummary summarizeTrace(const std::vector<TraceEvent> &events);

} // namespace jmsim

#endif // JMSIM_TRACE_CHROME_TRACE_HH
