/**
 * @file
 * A machine-wide registry of named counters and histograms.
 *
 * Components register their statistics once at machine build time and
 * every consumer — RunResult, bench/host_perf, the figure benchmarks,
 * jasm_tool — reads them uniformly by name instead of hand-plumbing
 * per-component structs. Registration is pull-based: a source is
 * either a pointer to stable uint64 storage (e.g. a per-node
 * ProcessorStats field inside the machine's node arena) or a callback
 * for storage that moves (e.g. the message pool's per-shard counters,
 * which re-shard between runs). Multiple sources under one name sum,
 * which is how 512 nodes aggregate into one `proc.instructions`.
 *
 * Reading is always on the main thread between cycles, so no
 * synchronization is needed; the registry never owns the stats and
 * never resets them.
 */

#ifndef JMSIM_TRACE_COUNTER_REGISTRY_HH
#define JMSIM_TRACE_COUNTER_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace jmsim
{

/** One named value of a registry snapshot. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/** Named counter/histogram registry for one machine. */
class CounterRegistry
{
  public:
    /** Register a counter backed by stable storage. Same-name sources
     *  sum when read. */
    void addCounter(const std::string &name, const std::uint64_t *source);

    /** Register a counter backed by a reader callback (for storage
     *  that resizes or re-shards under the registry). */
    void addCounter(const std::string &name,
                    std::function<std::uint64_t()> reader);

    /** Register a histogram provider; same-name providers merge. */
    void addHistogram(const std::string &name,
                      std::function<Histogram()> provider);

    bool hasCounter(const std::string &name) const;

    /** Sum of every source registered under @p name (fatal if none). */
    std::uint64_t value(const std::string &name) const;

    /** Merge of every histogram provider under @p name (fatal if none). */
    Histogram histogram(const std::string &name) const;

    /** Every counter, name-sorted, summed across sources. */
    std::vector<CounterSample> snapshot() const;

    std::vector<std::string> counterNames() const;
    std::vector<std::string> histogramNames() const;

  private:
    struct Entry
    {
        std::vector<const std::uint64_t *> pointers;
        std::vector<std::function<std::uint64_t()>> readers;
    };

    std::uint64_t sum(const Entry &entry) const;

    std::map<std::string, Entry> counters_;
    std::map<std::string, std::vector<std::function<Histogram()>>>
        histograms_;
};

/** Value of @p name in a snapshot(), or 0 when absent. */
std::uint64_t counterValue(const std::vector<CounterSample> &snapshot,
                           const std::string &name);

} // namespace jmsim

#endif // JMSIM_TRACE_COUNTER_REGISTRY_HH
