/**
 * @file
 * POD trace records emitted by the simulator's observability taps.
 *
 * A TraceEvent is 32 bytes of plain data — no strings, no pointers —
 * so recording one is a handful of stores into a per-shard ring buffer
 * (see tracer.hh). Every tap site belongs to exactly one kernel phase
 * (node phase, fabric move phase, or the main-thread kernel itself),
 * and within a phase every (cycle, node) group of events is emitted by
 * exactly one shard in a fixed order. Merging the per-shard rings with
 * a stable sort on (cycle, phase, node) therefore reproduces one
 * canonical stream: serial and `--threads N` runs emit bit-identical
 * traces (asserted in tests/trace_test.cc).
 */

#ifndef JMSIM_TRACE_TRACE_EVENT_HH
#define JMSIM_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "sim/types.hh"

namespace jmsim
{

/** What a trace record describes; see the payload table below. */
enum class TraceKind : std::uint8_t
{
    // ---- node phase (processor execution) ----
    Dispatch,     ///< arg8=prio, a0=handler IP, a1=queue message count
    Suspend,      ///< arg8=priority level at suspension
    Fault,        ///< arg8=FaultKind, a0=faulting instruction address
    MsgSend,      ///< arg8=prio, a0=src sequence, a1=(dest<<32)|words
    // ---- fabric move phase ----
    MsgRecv,      ///< arg8=vn, a0=(src<<32)|seq, a1=inject->deliver cycles
    MsgBounce,    ///< arg8=vn, a0=(orig src<<32)|orig seq, a1=return seq
    QueueDepth,   ///< arg8=vn, a0=queue words used, a1=queued messages
    FlitForward,  ///< arg8=output port, a0=(src<<32)|seq, a1=vn
    FlitBlock,    ///< arg8=wanted output port, a0=(src<<32)|seq, a1=input
    // ---- main-thread kernel ----
    IdleSkip,     ///< cycle=span start, a0=span end (exclusive)
    NetCombine,   ///< arg8=NetOp, a0=(owner src<<32)|seq, a1=(child src<<32)|seq

    NumKinds,
};

inline constexpr unsigned kNumTraceKinds =
    static_cast<unsigned>(TraceKind::NumKinds);

/** Track id used for machine-level (not per-node) events. */
inline constexpr std::uint32_t kMachineTrack = 0xFFFFFFFFu;

/** Bucket count of the 1-cycle-wide network latency histograms kept by
 *  the fabric and rebuilt by the trace summarizer (they must agree so
 *  the reconstruction comparison is exact). */
inline constexpr std::size_t kLatencyHistBuckets = 1024;

/** One trace record. The pad field is always zero so whole events can
 *  be compared with memcmp. */
struct TraceEvent
{
    Cycle cycle = 0;
    std::uint32_t node = 0;      ///< emitting node/router, or kMachineTrack
    TraceKind kind = TraceKind::Dispatch;
    std::uint8_t arg8 = 0;
    std::uint16_t pad = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

inline bool
operator==(const TraceEvent &a, const TraceEvent &b)
{
    return std::memcmp(&a, &b, sizeof(TraceEvent)) == 0;
}

/** Kernel phase a kind is emitted in (the sort key's middle field). */
inline constexpr unsigned
phaseOf(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Dispatch:
      case TraceKind::Suspend:
      case TraceKind::Fault:
      case TraceKind::MsgSend:
        return 0;  // node phase
      case TraceKind::MsgRecv:
      case TraceKind::MsgBounce:
      case TraceKind::QueueDepth:
      case TraceKind::FlitForward:
      case TraceKind::FlitBlock:
        return 1;  // fabric move phase
      default:
        return 2;  // main-thread kernel
    }
}

// ---- category filtering (--trace-filter) ----

inline constexpr std::uint32_t kTraceCatProc = 1u << 0;
inline constexpr std::uint32_t kTraceCatNi = 1u << 1;
inline constexpr std::uint32_t kTraceCatNet = 1u << 2;
inline constexpr std::uint32_t kTraceCatKernel = 1u << 3;
inline constexpr std::uint32_t kTraceCatAll =
    kTraceCatProc | kTraceCatNi | kTraceCatNet | kTraceCatKernel;

inline constexpr std::uint32_t
categoryOf(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Dispatch:
      case TraceKind::Suspend:
      case TraceKind::Fault:
        return kTraceCatProc;
      case TraceKind::MsgSend:
      case TraceKind::MsgRecv:
      case TraceKind::MsgBounce:
      case TraceKind::QueueDepth:
        return kTraceCatNi;
      case TraceKind::FlitForward:
      case TraceKind::FlitBlock:
      case TraceKind::NetCombine:
        return kTraceCatNet;
      default:
        return kTraceCatKernel;
    }
}

/** Display name (also the Chrome trace-event "name" field). */
const char *traceKindName(TraceKind kind);

/** Kind for a name from traceKindName(); false if unknown. */
bool traceKindFromName(const std::string &name, TraceKind &out);

/** Parse a comma-separated category list ("proc,ni,net,kernel" or
 *  "all") into a bitmask; false on an unknown token. */
bool parseTraceCategories(const std::string &spec, std::uint32_t &mask);

} // namespace jmsim

#endif // JMSIM_TRACE_TRACE_EVENT_HH
