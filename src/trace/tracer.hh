/**
 * @file
 * The event tracer: per-shard ring buffers of POD TraceEvents.
 *
 * Recording is lock-free: each worker shard writes only its own ring
 * (indexed by ThreadPool::currentShard(), exactly the MessagePool
 * sharding pattern), so taps add no synchronization to the parallel
 * kernel. A ring that fills up overwrites its oldest records and
 * counts the drops — tracing never stalls or aborts a run.
 *
 * collect() merges the rings into the canonical stream with a stable
 * sort on (cycle, phase, node). Each such group of events lands
 * contiguously in exactly one ring per run (see trace_event.hh), so
 * the merged stream is identical for serial and sharded runs as long
 * as no ring dropped events; with drops the stream is still valid but
 * the determinism guarantee is waived (the drop counter says so).
 *
 * Compile-time off switch: building with -DJMSIM_TRACE_COMPILED_IN=0
 * folds every tap away entirely. The default build keeps them as a
 * null-pointer test on the component's tracer pointer, which is the
 * tracing-disabled fast path.
 */

#ifndef JMSIM_TRACE_TRACER_HH
#define JMSIM_TRACE_TRACER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_event.hh"

#ifndef JMSIM_TRACE_COMPILED_IN
#define JMSIM_TRACE_COMPILED_IN 1
#endif

namespace jmsim
{

/** True when the tap sites are compiled in at all. */
inline constexpr bool kTraceCompiledIn = JMSIM_TRACE_COMPILED_IN != 0;

/** Everything configurable about tracing a machine. */
struct TraceConfig
{
    bool enabled = false;
    /** Bitmask of kTraceCat* category bits to record. */
    std::uint32_t categories = kTraceCatAll;
    /** Ring capacity in events, per worker shard. */
    std::uint32_t shardCapacity = 1u << 20;
    /** Chrome-trace JSON written here by JMachine::exportTrace() (and
     *  automatically at machine destruction); empty = no file. */
    std::string outPath;
};

/** Fixed-capacity overwrite-oldest ring of trace events. */
class TraceRing
{
  public:
    explicit TraceRing(std::uint32_t capacity);

    void
    push(const TraceEvent &ev)
    {
        if (slots_.empty())
            slots_.resize(capacity_);  // first event: back the ring
        if (count_ == capacity_) {
            slots_[head_] = ev;
            head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
            dropped_ += 1;
            return;
        }
        std::uint32_t at = head_ + count_;
        if (at >= capacity_)
            at -= capacity_;
        slots_[at] = ev;
        count_ += 1;
    }

    std::uint32_t size() const { return count_; }
    std::uint32_t capacity() const { return capacity_; }
    std::uint64_t dropped() const { return dropped_; }

    /** Heap bytes behind this ring (zero until the first push). */
    std::uint64_t
    footprintBytes() const
    {
        return slots_.capacity() * sizeof(TraceEvent);
    }

    /** Append the buffered events, oldest first. */
    void appendTo(std::vector<TraceEvent> &out) const;

    void clear();

  private:
    std::uint32_t capacity_;
    std::uint32_t head_ = 0;
    std::uint32_t count_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> slots_;
};

/** One machine's tracer. Components hold a Tracer* (null = off). */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &config);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    const TraceConfig &config() const { return config_; }

    /** Is this kind's category enabled? Tap sites test this before
     *  computing payloads. */
    bool
    wants(TraceKind kind) const
    {
        return (kindMask_ >> static_cast<unsigned>(kind)) & 1u;
    }

    /** Record one event into the calling shard's ring. */
    void record(const TraceEvent &ev);

    /** Grow to at least @p shards rings (main thread, between cycles). */
    void ensureShards(unsigned shards);

    /** Merge every ring into the canonical (cycle, phase, node) ordered
     *  stream. Non-destructive: the rings keep their contents. */
    std::vector<TraceEvent> collect() const;

    /** Total events lost to ring overwrites, across all shards. */
    std::uint64_t dropped() const;

    /** Heap bytes behind every shard's ring (rings allocate lazily). */
    std::uint64_t footprintBytes() const;

  private:
    TraceConfig config_;
    std::uint32_t kindMask_ = 0;  ///< bit per TraceKind
    std::vector<std::unique_ptr<TraceRing>> rings_;
};

} // namespace jmsim

#endif // JMSIM_TRACE_TRACER_HH
