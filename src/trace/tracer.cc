#include "trace/tracer.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace jmsim
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Dispatch: return "dispatch";
      case TraceKind::Suspend: return "suspend";
      case TraceKind::Fault: return "fault";
      case TraceKind::MsgSend: return "msg.send";
      case TraceKind::MsgRecv: return "msg.recv";
      case TraceKind::MsgBounce: return "msg.bounce";
      case TraceKind::QueueDepth: return "queue.depth";
      case TraceKind::FlitForward: return "flit.fwd";
      case TraceKind::FlitBlock: return "flit.blk";
      case TraceKind::IdleSkip: return "idle.skip";
      case TraceKind::NetCombine: return "net.combine";
      default: return "?";
    }
}

bool
traceKindFromName(const std::string &name, TraceKind &out)
{
    for (unsigned k = 0; k < kNumTraceKinds; ++k) {
        if (name == traceKindName(static_cast<TraceKind>(k))) {
            out = static_cast<TraceKind>(k);
            return true;
        }
    }
    return false;
}

bool
parseTraceCategories(const std::string &spec, std::uint32_t &mask)
{
    mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        if (tok == "all")
            mask |= kTraceCatAll;
        else if (tok == "proc")
            mask |= kTraceCatProc;
        else if (tok == "ni")
            mask |= kTraceCatNi;
        else if (tok == "net")
            mask |= kTraceCatNet;
        else if (tok == "kernel")
            mask |= kTraceCatKernel;
        else if (!tok.empty())
            return false;
        pos = comma + 1;
    }
    return mask != 0;
}

TraceRing::TraceRing(std::uint32_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    // Slot storage is allocated on the first push (see push): a machine
    // built with tracing on but recording little — or nothing on most
    // shards — should not pay capacity * 32 bytes per ring up front.
}

void
TraceRing::appendTo(std::vector<TraceEvent> &out) const
{
    for (std::uint32_t i = 0; i < count_; ++i) {
        std::uint32_t at = head_ + i;
        if (at >= capacity_)
            at -= capacity_;
        out.push_back(slots_[at]);
    }
}

void
TraceRing::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

Tracer::Tracer(const TraceConfig &config)
    : config_(config)
{
    for (unsigned k = 0; k < kNumTraceKinds; ++k) {
        if (config_.categories & categoryOf(static_cast<TraceKind>(k)))
            kindMask_ |= 1u << k;
    }
    ensureShards(1);
}

void
Tracer::record(const TraceEvent &ev)
{
    rings_[ThreadPool::currentShard()]->push(ev);
}

void
Tracer::ensureShards(unsigned shards)
{
    while (rings_.size() < shards)
        rings_.push_back(std::make_unique<TraceRing>(config_.shardCapacity));
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::vector<TraceEvent> out;
    std::size_t total = 0;
    for (const auto &ring : rings_)
        total += ring->size();
    out.reserve(total);
    for (const auto &ring : rings_)
        ring->appendTo(out);
    // Each (cycle, phase, node) group lives contiguously in one ring,
    // so the stable sort fully determines the merged order regardless
    // of how the emitters were sharded.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.cycle != b.cycle)
                             return a.cycle < b.cycle;
                         const unsigned pa = phaseOf(a.kind);
                         const unsigned pb = phaseOf(b.kind);
                         if (pa != pb)
                             return pa < pb;
                         return a.node < b.node;
                     });
    return out;
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->dropped();
    return total;
}

std::uint64_t
Tracer::footprintBytes() const
{
    std::uint64_t total = rings_.capacity() * sizeof(rings_[0]);
    for (const auto &ring : rings_)
        total += sizeof(TraceRing) + ring->footprintBytes();
    return total;
}

} // namespace jmsim
