#include "trace/chrome_trace.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

namespace jmsim
{

namespace
{

/** Chrome thread id for a kind: 0 = processor, 1 = NI, 2 = router. */
unsigned
tidOf(TraceKind kind)
{
    switch (kind) {
      case TraceKind::MsgSend:
      case TraceKind::MsgRecv:
      case TraceKind::MsgBounce:
      case TraceKind::QueueDepth:
        return 1;
      case TraceKind::FlitForward:
      case TraceKind::FlitBlock:
        return 2;
      default:
        return 0;
    }
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events, std::uint64_t dropped)
{
    std::string out;
    out.reserve(events.size() * 96 + 4096);
    appendf(out,
            "{\"displayTimeUnit\":\"ms\",\"otherData\":"
            "{\"droppedEvents\":\"%llu\",\"cyclesPerUs\":\"1\"},"
            "\"traceEvents\":[\n",
            static_cast<unsigned long long>(dropped));

    // Metadata first: name each node process and its component threads
    // so chrome://tracing shows "node 12 / router" instead of raw ids.
    std::set<std::uint32_t> pids;
    for (const TraceEvent &ev : events)
        pids.insert(ev.node);
    static const char *const tid_names[3] = {"proc", "ni", "router"};
    bool first = true;
    for (const std::uint32_t pid : pids) {
        if (!first)
            out += ",\n";
        first = false;
        if (pid == kMachineTrack) {
            appendf(out,
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"args\":{\"name\":\"machine\"}}",
                    pid);
            continue;
        }
        appendf(out,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                "\"args\":{\"name\":\"node %u\"}}",
                pid, pid);
        for (unsigned tid = 0; tid < 3; ++tid)
            appendf(out,
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                    pid, tid, tid_names[tid]);
    }

    for (const TraceEvent &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        if (ev.kind == TraceKind::QueueDepth) {
            appendf(out,
                    "{\"name\":\"queue.p%u\",\"ph\":\"C\",\"ts\":%llu,"
                    "\"pid\":%u,\"args\":{\"words\":%llu,\"msgs\":%llu}}",
                    ev.arg8, static_cast<unsigned long long>(ev.cycle),
                    ev.node, static_cast<unsigned long long>(ev.a0),
                    static_cast<unsigned long long>(ev.a1));
            continue;
        }
        const bool span = ev.kind == TraceKind::IdleSkip;
        const std::uint64_t dur = span && ev.a0 > ev.cycle
                                      ? ev.a0 - ev.cycle
                                      : 0;
        appendf(out,
                "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%llu,\"dur\":%llu,"
                "\"pid\":%u,\"tid\":%u,\"args\":{\"k\":%u,\"v\":%u,"
                "\"a0\":%llu,\"a1\":%llu}}",
                traceKindName(ev.kind), span ? "X" : "i",
                static_cast<unsigned long long>(ev.cycle),
                static_cast<unsigned long long>(dur), ev.node, tidOf(ev.kind),
                static_cast<unsigned>(ev.kind), ev.arg8,
                static_cast<unsigned long long>(ev.a0),
                static_cast<unsigned long long>(ev.a1));
    }
    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TraceEvent> &events, std::uint64_t dropped)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
        return false;
    }
    const std::string json = chromeTraceJson(events, dropped);
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                    json.size();
    std::fclose(f);
    if (!ok)
        std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
    return ok;
}

bool
parseChromeTrace(const std::string &path, ParsedTrace &out)
{
    out.events.clear();
    out.dropped = 0;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    bool header = false;
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
        unsigned long long dropped = 0;
        if (!header &&
            std::sscanf(line,
                        "{\"displayTimeUnit\":\"ms\",\"otherData\":"
                        "{\"droppedEvents\":\"%llu\"",
                        &dropped) == 1) {
            header = true;
            out.dropped = dropped;
            continue;
        }
        if (std::strstr(line, "\"ph\":\"M\""))
            continue;  // metadata
        TraceEvent ev;
        unsigned vn = 0;
        unsigned long long ts = 0, a0 = 0, a1 = 0, dur = 0;
        unsigned pid = 0, tid = 0, k = 0, v = 0;
        if (std::sscanf(line,
                        "{\"name\":\"queue.p%u\",\"ph\":\"C\",\"ts\":%llu,"
                        "\"pid\":%u,\"args\":{\"words\":%llu,\"msgs\":%llu",
                        &vn, &ts, &pid, &a0, &a1) == 5 ||
            std::sscanf(line,
                        ",{\"name\":\"queue.p%u\",\"ph\":\"C\",\"ts\":%llu,"
                        "\"pid\":%u,\"args\":{\"words\":%llu,\"msgs\":%llu",
                        &vn, &ts, &pid, &a0, &a1) == 5) {
            ev.kind = TraceKind::QueueDepth;
            ev.cycle = ts;
            ev.node = pid;
            ev.arg8 = static_cast<std::uint8_t>(vn);
            ev.a0 = a0;
            ev.a1 = a1;
            out.events.push_back(ev);
            continue;
        }
        char name[24];
        char ph[4];
        if (std::sscanf(line,
                        "{\"name\":\"%23[^\"]\",\"ph\":\"%1[iX]\","
                        "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
                        "\"args\":{\"k\":%u,\"v\":%u,\"a0\":%llu,"
                        "\"a1\":%llu",
                        name, ph, &ts, &dur, &pid, &tid, &k, &v, &a0,
                        &a1) == 10 &&
            k < kNumTraceKinds) {
            ev.kind = static_cast<TraceKind>(k);
            ev.cycle = ts;
            ev.node = pid;
            ev.arg8 = static_cast<std::uint8_t>(v);
            ev.a0 = a0;
            ev.a1 = a1;
            out.events.push_back(ev);
        }
    }
    std::fclose(f);
    return header;
}

TraceSummary
summarizeTrace(const std::vector<TraceEvent> &events)
{
    TraceSummary s;
    std::map<std::uint64_t, std::uint64_t> sends;  // (src<<32)|seq -> count
    bool any = false;
    for (const TraceEvent &ev : events) {
        s.countByKind[static_cast<unsigned>(ev.kind)] += 1;
        if (!any || ev.cycle < s.firstCycle)
            s.firstCycle = ev.cycle;
        if (!any || ev.cycle > s.lastCycle)
            s.lastCycle = ev.cycle;
        any = true;
        switch (ev.kind) {
          case TraceKind::MsgSend:
            sends[(static_cast<std::uint64_t>(ev.node) << 32) | ev.a0] += 1;
            break;
          case TraceKind::MsgRecv: {
            s.latency.add(ev.a1);
            const auto it = sends.find(ev.a0);
            if (it != sends.end() && it->second > 0) {
                it->second -= 1;
                s.matchedMessages += 1;
            } else {
                s.unmatchedRecvs += 1;
            }
            break;
          }
          case TraceKind::QueueDepth:
            s.queueWords[ev.arg8 & 1].add(ev.a0);
            break;
          case TraceKind::IdleSkip:
            if (ev.a0 > ev.cycle)
                s.idleSkippedCycles += ev.a0 - ev.cycle;
            break;
          default:
            break;
        }
    }
    for (const auto &[key, count] : sends)
        s.unmatchedSends += count;
    return s;
}

} // namespace jmsim
