/**
 * @file
 * One of the MDP's three register sets.
 *
 * The MDP keeps a full register set per execution level (background,
 * priority 0, priority 1) so that dispatching a higher-priority task
 * never spills registers — the paper's "fast interrupt processing is
 * achieved through the use of three distinct register sets".
 */

#ifndef JMSIM_MDP_REGISTER_SET_HH
#define JMSIM_MDP_REGISTER_SET_HH

#include <array>

#include "isa/instruction.hh"
#include "isa/word.hh"

namespace jmsim
{

/** Execution levels, lowest to highest priority. */
enum class Level : std::uint8_t
{
    Background = 0,
    P0 = 1,
    P1 = 2,
};

inline constexpr unsigned kNumLevels = 3;

/** Registers and per-level execution state. */
struct RegisterSet
{
    std::array<Word, 8> regs{};  ///< R0-R3 then A0-A3
    IAddr ip = 0;
    bool live = false;           ///< a thread is running at this level
    bool parked = false;         ///< background only: suspended for good
    /** A SEND sequence is open (first SEND seen, no SEND*E yet). The
     *  MDP makes send sequences atomic: no dispatch or preemption may
     *  interleave another thread's words into the send channel. */
    bool sending = false;

    // Fault state (one outstanding fault per level).
    bool inFault = false;
    IAddr faultIp = 0;           ///< instruction to retry on RFE
    Word fval0;                  ///< fault value (e.g. the missed key)
    Word fval1;
    std::array<Word, 4> tmp{};   ///< SETSP/GETSP fault temporaries

    Word &operator[](std::uint8_t r) { return regs[r & 7]; }
    const Word &operator[](std::uint8_t r) const { return regs[r & 7]; }

    bool operator==(const RegisterSet &other) const = default;
};

} // namespace jmsim

#endif // JMSIM_MDP_REGISTER_SET_HH
