/**
 * @file
 * The MDP's hardware message queue (one per priority).
 *
 * Arriving messages are buffered in a ring region of on-chip SRAM.
 * Messages are stored contiguously so the dispatched handler can
 * address its arguments through an A3 segment descriptor; if a message
 * does not fit in the space remaining at the end of the region, the
 * allocator skips to the start (the skipped words are reclaimed when
 * their predecessor is freed). When a message does not fit at all the
 * delivery port refuses flits and the worm blocks in the network —
 * the back-pressure behaviour the paper critiques.
 *
 * The queue manages only allocation metadata; the words themselves
 * live in node SRAM so that ordinary LD instructions (and the JOS
 * spill code) see them.
 */

#ifndef JMSIM_MDP_MESSAGE_QUEUE_HH
#define JMSIM_MDP_MESSAGE_QUEUE_HH

#include <cstdint>

#include "isa/word.hh"
#include "sim/ring_queue.hh"
#include "sim/types.hh"

namespace jmsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Allocation record for one buffered message. */
struct QueuedMessage
{
    Addr start = 0;          ///< absolute SRAM address of word 0 (header)
    std::uint32_t length = 0;///< message length in words
    std::uint32_t arrived = 0; ///< words delivered so far
    std::uint32_t padBefore = 0; ///< ring words skipped to stay contiguous
    NodeId src = 0;
    Cycle firstWordCycle = 0;

    bool complete() const { return arrived == length; }
};

/** Queue statistics. */
struct QueueStats
{
    std::uint64_t messagesAccepted = 0;
    std::uint64_t wordsAccepted = 0;
    std::uint64_t refusals = 0;      ///< begin attempts refused (full)
    std::uint32_t maxWordsUsed = 0;  ///< high-water mark
};

/** Ring allocator over one SRAM region. */
class MessageQueue
{
  public:
    MessageQueue() = default;

    /** Configure the SRAM region [base, base+size). */
    void configure(Addr base, std::uint32_t size_words);

    /** Can a message of @p length words be accepted now? */
    bool canBegin(std::uint32_t length) const;

    /**
     * Allocate space for an arriving message.
     * @return the absolute address of its first word.
     */
    Addr begin(std::uint32_t length, NodeId src, Cycle now);

    /** Record the arrival of the next word of the newest message. */
    void wordArrived();

    /** Message currently being delivered into (newest), if any. */
    QueuedMessage *incoming();

    /** True if a dispatchable message (header arrived) is queued. */
    bool
    headDispatchable() const
    {
        return !messages_.empty() && messages_.front().arrived >= 1;
    }

    const QueuedMessage &head() const { return messages_.front(); }
    QueuedMessage &head() { return messages_.front(); }

    /** Free the head message (handler SUSPENDed). */
    void pop();

    bool empty() const { return messages_.empty(); }
    std::size_t messageCount() const { return messages_.size(); }
    std::uint32_t wordsUsed() const { return used_; }
    std::uint32_t capacity() const { return size_; }
    Addr base() const { return base_; }

    const QueueStats &stats() const { return stats_; }
    void resetStats() { stats_ = QueueStats{}; }

    /** Heap bytes behind the descriptor ring (payloads live in SRAM). */
    std::uint64_t
    footprintBytes() const
    {
        return messages_.capacity() * sizeof(QueuedMessage);
    }

    void save(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    Addr base_ = 0;
    std::uint32_t size_ = 0;
    std::uint32_t tail_ = 0;   ///< next free offset
    std::uint32_t used_ = 0;   ///< words allocated (incl. pads)
    RingQueue<QueuedMessage> messages_;
    QueueStats stats_;
};

} // namespace jmsim

#endif // JMSIM_MDP_MESSAGE_QUEUE_HH
