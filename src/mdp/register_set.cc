// register_set.hh is header-only; this file anchors the translation unit.
#include "mdp/register_set.hh"
