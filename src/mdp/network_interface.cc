#include "mdp/network_interface.hh"

#include "ckpt/snapshot.hh"
#include "netops/netops.hh"
#include "sim/logging.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

void
NetworkInterface::init(NodeId id, const Config &config, MeshNetwork *net,
                       NodeMemory *mem, std::function<void()> wake)
{
    id_ = id;
    config_ = config;
    net_ = net;
    mem_ = mem;
    wake_ = std::move(wake);
    queues_[0].configure(config.queueBase0, config.queueWords0);
    queues_[1].configure(config.queueBase1, config.queueWords1);
    net_->setDeliverSink(id, this);
}

void
NetworkInterface::registerCounters(CounterRegistry &reg)
{
    reg.addCounter("ni.messages_sent", &stats_.messagesSent);
    reg.addCounter("ni.words_sent", &stats_.wordsSent);
    reg.addCounter("ni.send_full_events", &stats_.sendFullEvents);
    reg.addCounter("ni.delivery_stall_cycles", &stats_.deliveryStallCycles);
    reg.addCounter("ni.messages_bounced", &stats_.messagesBounced);
}

SendResult
NetworkInterface::appendWord(unsigned prio, Word word, bool end, Cycle now)
{
    SendChannel &ch = send_[prio];
    if (!ch.buildingStarted) {
        // First word of a new message: the destination router address.
        if (end)
            return SendResult::BadFormat;  // dest-only message
        if (netops_ && word.tag == Tag::User0) {
            // In-network computing request: the "destination" word is a
            // User0-tagged NetOp opcode. Build it like a message (the
            // payload carries handler ip, variable, operand) but mark
            // it for handoff to the netops engine instead of the
            // inject port. The real destination is fixed at SEND*E.
            const std::uint32_t op = word.bits;
            const bool faa_op =
                op < kNetOpFaaCount && netops_->config().faa;
            const bool bar_op =
                op == static_cast<std::uint32_t>(NetOp::Barrier) &&
                netops_->config().barrierTree;
            if (!faa_op && !bar_op)
                return SendResult::BadFormat;
            const MsgHandle h = net_->pool().alloc();
            Message &msg = net_->pool().get(h);
            msg.src = id_;
            msg.dest = id_;
            msg.destAddr = net_->dims().toCoord(id_);
            msg.priority = static_cast<std::uint8_t>(prio);
            msg.netop = static_cast<std::uint8_t>(1 + op);
            ch.pending.push_back(h);
            ch.buildingStarted = true;
            return SendResult::Ok;
        }
        if (word.tag != Tag::Int && word.tag != Tag::Sym)
            return SendResult::BadFormat;
        const RouterAddr dest = RouterAddr::unpack(word.bits);
        const MeshDims &dims = net_->dims();
        if (dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z)
            return SendResult::BadDest;
        const MsgHandle h = net_->pool().alloc();
        Message &msg = net_->pool().get(h);
        msg.src = id_;
        msg.destAddr = dest;
        msg.dest = dims.toLinear(dest);
        msg.priority = static_cast<std::uint8_t>(prio);
        ch.pending.push_back(h);
        ch.buildingStarted = true;
        return SendResult::Ok;
    }

    Message &msg = net_->pool().get(ch.pending.back());
    msg.words.push_back(word);
    ch.bufferedWords += 1;
    if (end) {
        if (msg.words.empty() || msg.words[0].tag != Tag::Msg)
            return SendResult::BadFormat;
        const MsgHeader hdr = MsgHeader::decode(msg.words[0]);
        if (hdr.length != msg.words.size())
            return SendResult::BadFormat;
        if (msg.netop != 0) {
            // Shape-check the request and resolve its true target.
            const std::uint8_t op = static_cast<std::uint8_t>(msg.netop - 1);
            if (op < kNetOpFaaCount) {
                // {reply header, variable, operand}
                if (msg.words.size() != 3 ||
                    msg.words[1].tag != Tag::Int ||
                    msg.words[2].tag != Tag::Int)
                    return SendResult::BadFormat;
                const std::int32_t var = msg.words[1].asInt();
                if (var < 0 || static_cast<std::uint32_t>(var) >=
                                   netops_->slotCount())
                    return SendResult::BadDest;
                msg.dest = static_cast<std::uint32_t>(var) %
                           net_->dims().nodes();
                msg.destAddr = net_->dims().toCoord(msg.dest);
            } else if (msg.words.size() != 1) {
                return SendResult::BadFormat;  // barrier: header only
            }
        }
        msg.finalized = true;
        ch.buildingStarted = false;
        msg.srcSeq = ++sendSeq_;
        stats_.messagesSent += 1;
        stats_.wordsSent += msg.words.size();
        if (kTraceCompiledIn && trace_ &&
            trace_->wants(TraceKind::MsgSend)) {
            TraceEvent ev;
            ev.cycle = now;
            ev.node = id_;
            ev.kind = TraceKind::MsgSend;
            ev.arg8 = static_cast<std::uint8_t>(prio);
            ev.a0 = msg.srcSeq;
            ev.a1 = (static_cast<std::uint64_t>(msg.dest) << 32) |
                    msg.words.size();
            trace_->record(ev);
        }
    }
    return SendResult::Ok;
}

SendResult
NetworkInterface::sendWord(unsigned prio, Word word, bool end, Cycle now)
{
    SendChannel &ch = send_[prio];
    // Capacity check: the destination word costs no buffer space (it
    // becomes the head flit), payload words do.
    const bool is_dest = !ch.buildingStarted;
    if (!is_dest && ch.bufferedWords + 1 > config_.sendBufferWords) {
        stats_.sendFullEvents += 1;
        return SendResult::Full;
    }
    return appendWord(prio, word, end, now);
}

SendResult
NetworkInterface::sendWords2(unsigned prio, Word w0, Word w1, bool end,
                             Cycle now)
{
    SendChannel &ch = send_[prio];
    const unsigned payload = ch.buildingStarted ? 2 : 1;
    if (ch.bufferedWords + payload > config_.sendBufferWords) {
        stats_.sendFullEvents += 1;
        return SendResult::Full;
    }
    const SendResult first = appendWord(prio, w0, false, now);
    if (first != SendResult::Ok)
        return first;
    return appendWord(prio, w1, end, now);
}

void
NetworkInterface::step(Cycle now)
{
    // Next-send hint: with nothing buffered to inject and no returned
    // message waiting behind the send channel, the per-priority loop
    // below is a provable no-op — the common case on compute-phase
    // nodes, and the NI half of the fabric's next-event reasoning
    // (MeshNetwork::nextEventCycle covers the in-flight half).
    if (!sendBusy() && bounceReady_[0].empty() && bounceReady_[1].empty())
        return;
    for (unsigned prio = 0; prio < 2; ++prio) {
        SendChannel &ch = send_[prio];
        // Queue captured bounce-backs behind any complete messages (a
        // message under construction by the processor keeps the back
        // slot until its SEND*E).
        while (!bounceReady_[prio].empty() && !ch.buildingStarted) {
            const MsgHandle b = bounceReady_[prio].front();
            ch.bufferedWords += static_cast<std::uint32_t>(
                net_->pool().get(b).words.size());
            ch.pending.push_back(b);
            bounceReady_[prio].pop_front();
        }
        // Offer up to two flits per cycle to keep the router's inject
        // FIFO primed (the channel itself drains 1 flit/cycle).
        for (unsigned burst = 0; burst < 2; ++burst) {
            if (ch.pending.empty())
                break;
            const MsgHandle h = ch.pending.front();
            Message &msg = net_->pool().get(h);
            if (msg.netop != 0) {
                // Netops request: hand the complete message to the
                // engine — it never occupies the inject port. An
                // unfinished one blocks the channel like cut-through.
                if (!msg.finalized)
                    break;
                ch.bufferedWords -=
                    static_cast<std::uint32_t>(msg.words.size());
                ch.pending.pop_front();
                ch.flitsInjected = 0;
                const std::uint8_t op =
                    static_cast<std::uint8_t>(msg.netop - 1);
                const bool is_faa = op < kNetOpFaaCount;
                netops_->stageIssue(
                    id_, static_cast<std::uint8_t>(prio), op,
                    is_faa ? msg.words[1].asInt() : 0,
                    is_faa ? msg.words[2].asInt() : 0,
                    MsgHeader::decode(msg.words[0]).handlerIp, msg.srcSeq,
                    now);
                net_->pool().release(h);
                continue;
            }
            // Flits that exist so far: head + 2 per appended word.
            const std::uint32_t available = msg.flitCount();
            if (ch.flitsInjected >= available)
                break;
            if (!net_->canInject(id_, prio))
                break;
            Flit flit;
            flit.msg = h;
            flit.index = ch.flitsInjected;
            flit.vn = static_cast<std::uint8_t>(prio);
            if (flit.index == 0)
                msg.injectCycle = now;
            const bool was_tail = msg.tailAt(flit.index);
            flit.tail = was_tail;
            // A word leaves the buffer when its second flit goes out.
            if (flit.index > 0 && flit.index % kFlitsPerWord == 0)
                ch.bufferedWords -= 1;
            net_->injectFlit(id_, flit);
            ch.flitsInjected += 1;
            if (was_tail) {
                ch.pending.pop_front();
                ch.flitsInjected = 0;
            }
        }
    }
}

bool
NetworkInterface::canAcceptFlit(const Flit &flit)
{
    const std::int32_t word = flit.completesWord();
    if (word != 0)
        return true;  // head flits and non-allocating flits always fit
    if (bounce_[flit.vn].active)
        return true;  // mid-capture: keep absorbing the worm
    const Message &m = net_->pool().get(flit.msg);
    const MsgHeader hdr = MsgHeader::decode(m.words[0]);
    MessageQueue &q = queues_[flit.vn];
    if (q.canBegin(hdr.length))
        return true;
    if (config_.returnToSender && bounceHandler_ != 0)
        return true;  // absorb and return instead of blocking
    stats_.deliveryStallCycles += 1;
    return false;
}

void
NetworkInterface::acceptFlit(const Flit &flit, Cycle now)
{
    // The slab reference stays valid across the pool alloc in the
    // bounce path below (slab storage never moves), and the router
    // releases the message only after this callback returns.
    Message &m = net_->pool().get(flit.msg);
    const std::int32_t word = flit.completesWord();
    const bool tail = flit.tail != 0;
    if (word < 0) {
        if (tail)
            panic("tail flit should complete a word");
        return;
    }
    MessageQueue &q = queues_[flit.vn];
    // Return-to-sender capture path.
    BounceCapture &cap = bounce_[flit.vn];
    if (cap.active || (word == 0 && config_.returnToSender &&
                       bounceHandler_ != 0 &&
                       !q.canBegin(MsgHeader::decode(m.words[0]).length))) {
        // Starting a capture makes this NI non-quiescent: wake the node
        // so the machine clears any doze horizon and steps the NI (the
        // bounce flits must start re-injecting even while the core is
        // mid-span).
        if (word == 0 && wake_)
            wake_();
        if (!cap.active) {
            cap.active = true;
            cap.msg = net_->pool().alloc();
            Message &bmsg = net_->pool().get(cap.msg);
            bmsg.src = id_;
            bmsg.dest = m.src;
            bmsg.destAddr = net_->dims().toCoord(m.src);
            bmsg.priority = flit.vn;
            const MsgHeader orig = MsgHeader::decode(m.words[0]);
            MsgHeader hdr;
            hdr.handlerIp = bounceHandler_;
            hdr.length = orig.length + 2;
            bmsg.words.push_back(hdr.encode());
            bmsg.words.push_back(Word::makeInt(static_cast<std::int32_t>(
                net_->dims().toCoord(id_).pack())));
        }
        Message &bmsg = net_->pool().get(cap.msg);
        bmsg.words.push_back(m.words[static_cast<std::size_t>(word)]);
        if (tail) {
            bmsg.finalized = true;
            bmsg.srcSeq = ++sendSeq_;
            bounceReady_[flit.vn].push_back(cap.msg);
            cap.msg = kNullMsg;
            cap.active = false;
            stats_.messagesBounced += 1;
            if (kTraceCompiledIn && trace_ &&
                trace_->wants(TraceKind::MsgBounce)) {
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::MsgBounce;
                ev.arg8 = flit.vn;
                ev.a0 = (static_cast<std::uint64_t>(m.src) << 32) |
                        m.srcSeq;
                ev.a1 = bmsg.srcSeq;
                trace_->record(ev);
            }
        }
        return;
    }
    Addr start;
    if (word == 0) {
        const MsgHeader hdr = MsgHeader::decode(m.words[0]);
        // A message landing in an empty queue makes the head newly
        // dispatchable this cycle: tell the processor, which may have
        // run an optimistic span past this point.
        const bool wasEmpty = q.empty();
        start = q.begin(hdr.length, m.src, now);
        if (wasEmpty && dispatchNotify_)
            dispatchNotify_(flit.vn, now);
    } else {
        QueuedMessage *in = q.incoming();
        if (!in)
            panic("body word with no incoming message");
        start = in->start;
    }
    mem_->write(start + static_cast<Addr>(word),
                m.words[static_cast<std::size_t>(word)]);
    q.wordArrived();
    if (tail) {
        m.deliverCycle = now;
        net_->noteMessageDelivered(m);
        if (kTraceCompiledIn && trace_) {
            if (trace_->wants(TraceKind::MsgRecv)) {
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::MsgRecv;
                ev.arg8 = flit.vn;
                ev.a0 = (static_cast<std::uint64_t>(m.src) << 32) |
                        m.srcSeq;
                ev.a1 = now - m.injectCycle;
                trace_->record(ev);
            }
            if (trace_->wants(TraceKind::QueueDepth)) {
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::QueueDepth;
                ev.arg8 = flit.vn;
                ev.a0 = q.wordsUsed();
                ev.a1 = q.messageCount();
                trace_->record(ev);
            }
        }
    }
    // Header arrival makes the message dispatchable; wake the node.
    if (word == 0 && wake_)
        wake_();
}

void
NetworkInterface::collectHandles(std::vector<MsgHandle> &out) const
{
    for (unsigned p = 0; p < 2; ++p) {
        for (std::size_t i = 0; i < send_[p].pending.size(); ++i)
            out.push_back(send_[p].pending.at(i));
        if (bounce_[p].active)
            out.push_back(bounce_[p].msg);
        for (std::size_t i = 0; i < bounceReady_[p].size(); ++i)
            out.push_back(bounceReady_[p].at(i));
    }
}

void
NetworkInterface::save(ckpt::Writer &w, const ckpt::HandleMap &map) const
{
    for (unsigned p = 0; p < 2; ++p) {
        const SendChannel &sc = send_[p];
        w.u32(static_cast<std::uint32_t>(sc.pending.size()));
        for (std::size_t i = 0; i < sc.pending.size(); ++i)
            w.u32(map.ordinalOf(sc.pending.at(i)));
        w.u32(sc.flitsInjected);
        w.u32(sc.bufferedWords);
        w.b(sc.buildingStarted);
        queues_[p].save(w);
        w.b(bounce_[p].active);
        w.u32(bounce_[p].active ? map.ordinalOf(bounce_[p].msg)
                                : ckpt::kNullOrdinal);
        w.u32(static_cast<std::uint32_t>(bounceReady_[p].size()));
        for (std::size_t i = 0; i < bounceReady_[p].size(); ++i)
            w.u32(map.ordinalOf(bounceReady_[p].at(i)));
    }
    w.u64(stats_.messagesSent);
    w.u64(stats_.wordsSent);
    w.u64(stats_.sendFullEvents);
    w.u64(stats_.deliveryStallCycles);
    w.u64(stats_.messagesBounced);
    w.u32(sendSeq_);
}

void
NetworkInterface::restore(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    for (unsigned p = 0; p < 2; ++p) {
        SendChannel &sc = send_[p];
        sc.pending.clear();
        const std::uint32_t pendCount = r.u32();
        for (std::uint32_t i = 0; i < pendCount; ++i)
            sc.pending.push_back(map.handleOf(r.u32()));
        sc.flitsInjected = r.u32();
        sc.bufferedWords = r.u32();
        sc.buildingStarted = r.b();
        queues_[p].restore(r);
        bounce_[p].active = r.b();
        bounce_[p].msg = map.handleOf(r.u32());
        bounceReady_[p].clear();
        const std::uint32_t readyCount = r.u32();
        for (std::uint32_t i = 0; i < readyCount; ++i)
            bounceReady_[p].push_back(map.handleOf(r.u32()));
    }
    stats_.messagesSent = r.u64();
    stats_.wordsSent = r.u64();
    stats_.sendFullEvents = r.u64();
    stats_.deliveryStallCycles = r.u64();
    stats_.messagesBounced = r.u64();
    sendSeq_ = r.u32();
}

} // namespace jmsim
