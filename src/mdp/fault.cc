#include "mdp/fault.hh"

#include <array>

namespace jmsim
{

const char *
faultName(FaultKind kind)
{
    static constexpr std::array<const char *, kNumFaults> names = {
        "cfut-read", "fut-use",      "send-fault",   "send-format",
        "xlate-miss", "tag-mismatch", "bounds-error", "bad-address",
    };
    return names[static_cast<unsigned>(kind)];
}

StatClass
faultStatClass(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CfutRead:
      case FaultKind::FutUse:
        return StatClass::Sync;
      case FaultKind::SendFault:
      case FaultKind::SendFormat:
        return StatClass::Comm;
      case FaultKind::XlateMiss:
        return StatClass::Xlate;
      default:
        return StatClass::Sync;
    }
}

} // namespace jmsim
