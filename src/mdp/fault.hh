/**
 * @file
 * MDP fault (trap) kinds and their metadata.
 *
 * Faults vector to software handlers in the JOS runtime kernel. The
 * handler either repairs the condition and RFEs (retrying the faulting
 * instruction — send faults, xlate misses) or turns the event into a
 * scheduling action (cfut reads suspend the thread).
 */

#ifndef JMSIM_MDP_FAULT_HH
#define JMSIM_MDP_FAULT_HH

#include <cstdint>

#include "isa/opcode.hh"

namespace jmsim
{

/** Trap causes. */
enum class FaultKind : std::uint8_t
{
    CfutRead = 0,  ///< load touched a cfut-tagged memory word
    FutUse,        ///< ALU consumed a cfut/fut-tagged operand
    SendFault,     ///< network send buffer cannot accept a word
    SendFormat,    ///< malformed message (bad header / length mismatch)
    XlateMiss,     ///< XLATE key absent from the translation table
    TagMismatch,   ///< CHECK failed or ill-typed operand
    BoundsError,   ///< indexed access outside its segment
    BadAddress,    ///< unmapped address or bad destination coordinates
    NumFaults,
};

inline constexpr unsigned kNumFaults =
    static_cast<unsigned>(FaultKind::NumFaults);

/** Human-readable fault name. */
const char *faultName(FaultKind kind);

/** Accounting class charged for entering this fault's handler. */
StatClass faultStatClass(FaultKind kind);

} // namespace jmsim

#endif // JMSIM_MDP_FAULT_HH
