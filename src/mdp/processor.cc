#include "mdp/processor.hh"

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

/** Sentinel forcing an instruction-word refetch. */
constexpr Addr kNoFetchWord = 0xffffffffu;

} // namespace

void
Processor::init(NodeId id, const MeshDims &dims, const ProcessorConfig &config,
                NodeMemory *mem, NetworkInterface *ni, const Program *prog)
{
    id_ = id;
    dims_ = dims;
    config_ = config;
    mem_ = mem;
    ni_ = ni;
    prog_ = prog;
    lastFetchWord_.fill(kNoFetchWord);
}

void
Processor::boot(IAddr entry)
{
    RegisterSet &bg = sets_[static_cast<unsigned>(Level::Background)];
    bg.live = true;
    bg.parked = false;
    bg.ip = entry;
    handlerEntry_[static_cast<unsigned>(Level::Background)] = entry;
    handlerStats_[entry].dispatches += 1;
}

void
Processor::resetStats()
{
    stats_ = ProcessorStats{};
    handlerStats_.clear();
    xlate_.resetStats();
}

bool
Processor::runnable() const
{
    for (unsigned l = 0; l < kNumLevels; ++l) {
        const RegisterSet &rs = sets_[l];
        if (rs.live && !(l == 0 && rs.parked))
            return true;
    }
    return ni_->queue(0).headDispatchable() ||
           ni_->queue(1).headDispatchable();
}

void
Processor::noteWake(Cycle now)
{
    if (sleeping_) {
        stats_.idleCycles += now - sleepStart_;
        attributeIdle(now - sleepStart_);
        sleeping_ = false;
    }
}

void
Processor::noteSleep(Cycle now)
{
    if (!sleeping_ && !halted_) {
        sleeping_ = true;
        sleepStart_ = now;
    }
}

void
Processor::attribute(StatClass cls, unsigned cycles)
{
    stats_.cyclesByClass[static_cast<std::size_t>(cls)] += cycles;
    stats_.runCycles += cycles;
}

void
Processor::attributeIdle(Cycle cycles)
{
    stats_.cyclesByClass[static_cast<std::size_t>(StatClass::Idle)] += cycles;
}

void
Processor::die(const std::string &msg, IAddr iaddr)
{
    std::string what = "node " + std::to_string(id_) + " @ iaddr " +
                       std::to_string(iaddr) + " (near '" +
                       prog_->nearestLabel(iaddr) + "'): " + msg;
    if (prog_->validIaddr(iaddr))
        what += " [" + prog_->fetch(iaddr).toString() + "]";
    fatal(what);
}

void
Processor::selectLevel(Cycle now)
{
    // An open send sequence is atomic: stay on its level until the
    // SEND*E instruction closes the message.
    for (unsigned l = kNumLevels; l-- > 0;) {
        if (sets_[l].live && sets_[l].sending) {
            current_ = static_cast<Level>(l);
            currentValid_ = true;
            return;
        }
    }

    // A live fault handler is never preempted.
    for (unsigned l = kNumLevels; l-- > 0;) {
        if (sets_[l].live && sets_[l].inFault) {
            current_ = static_cast<Level>(l);
            currentValid_ = true;
            return;
        }
    }

    for (int prio = 1; prio >= 0; --prio) {
        const Level level = prio ? Level::P1 : Level::P0;
        RegisterSet &rs = sets_[static_cast<unsigned>(level)];
        if (rs.live) {
            current_ = level;
            currentValid_ = true;
            return;
        }
        MessageQueue &q = ni_->queue(static_cast<unsigned>(prio));
        if (q.headDispatchable()) {
            // Hardware dispatch: load IP from the header, point A3 at
            // the message, fetch the first instruction — 4 cycles.
            const QueuedMessage &m = q.head();
            const MsgHeader hdr = MsgHeader::decode(mem_->read(m.start));
            rs.live = true;
            rs.ip = hdr.handlerIp;
            rs[reg::A3] = SegDesc{m.start, m.length}.encode();
            lastFetchWord_[static_cast<unsigned>(level)] = kNoFetchWord;
            current_ = level;
            currentValid_ = true;
            busyUntil_ = now + config_.dispatchCycles;
            attribute(StatClass::Comm, config_.dispatchCycles);
            stats_.dispatches += 1;
            handlerEntry_[static_cast<unsigned>(level)] = hdr.handlerIp;
            HandlerStats &hs = handlerStats_[hdr.handlerIp];
            hs.dispatches += 1;
            hs.messageWords += m.length;
            return;
        }
    }

    RegisterSet &bg = sets_[static_cast<unsigned>(Level::Background)];
    if (bg.live && !bg.parked) {
        current_ = Level::Background;
        currentValid_ = true;
        return;
    }
    currentValid_ = false;
}

bool
Processor::step(Cycle now)
{
    if (halted_)
        return false;
    if (busyUntil_ > now)
        return true;
    selectLevel(now);
    if (!currentValid_)
        return false;
    if (busyUntil_ > now)
        return true;  // this cycle went to a dispatch
    executeOne(now);
    return true;
}

bool
Processor::aluOperand(std::uint8_t r, std::int32_t &out)
{
    const Word &w = cur()[r];
    if (w.isFuture()) {
        faultPending_ = true;
        faultKind_ = FaultKind::FutUse;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    if (w.tag != Tag::Int && w.tag != Tag::Bool) {
        faultPending_ = true;
        faultKind_ = FaultKind::TagMismatch;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    out = w.asInt();
    return true;
}

bool
Processor::boolOperand(std::uint8_t r, bool &out)
{
    const Word &w = cur()[r];
    if (w.isFuture()) {
        faultPending_ = true;
        faultKind_ = FaultKind::FutUse;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    out = w.bits != 0;
    return true;
}

bool
Processor::memAddress(const Instruction &inst, bool indexed, Addr &addr,
                      unsigned &penalty)
{
    const Word &aw = cur()[4 + inst.abase];
    if (aw.tag != Tag::Addr) {
        faultPending_ = true;
        faultKind_ = FaultKind::TagMismatch;
        faultVal0_ = aw;
        faultVal1_ = Word::makeInt(4 + inst.abase);
        return false;
    }
    const SegDesc desc = SegDesc::decode(aw);
    std::int32_t off;
    if (indexed) {
        if (!aluOperand(inst.rb, off))
            return false;
    } else {
        off = inst.imm;
    }
    if (off < 0 || !desc.contains(static_cast<std::uint32_t>(off))) {
        faultPending_ = true;
        faultKind_ = FaultKind::BoundsError;
        faultVal0_ = Word::makeInt(off);
        faultVal1_ = aw;
        return false;
    }
    addr = desc.base + static_cast<Addr>(off);
    if (!mem_->isValid(addr)) {
        faultPending_ = true;
        faultKind_ = FaultKind::BadAddress;
        faultVal0_ = Word::makeInt(static_cast<std::int32_t>(addr));
        faultVal1_ = aw;
        return false;
    }
    penalty = mem_->accessPenalty(addr);
    return true;
}

bool
Processor::queueWordReady(Addr addr)
{
    if (current_ == Level::Background)
        return true;
    const unsigned prio = current_ == Level::P1 ? 1 : 0;
    const MessageQueue &q = ni_->queue(prio);
    if (q.empty())
        return true;
    const QueuedMessage &m = q.head();
    if (addr < m.start || addr >= m.start + m.length)
        return true;
    return addr < m.start + m.arrived;
}

void
Processor::raiseFault(FaultKind kind, Word fval0, Word fval1)
{
    faultPending_ = true;
    faultKind_ = kind;
    faultVal0_ = fval0;
    faultVal1_ = fval1;
}

void
Processor::executeOne(Cycle now)
{
    RegisterSet &rs = cur();
    const unsigned lvl = static_cast<unsigned>(current_);
    const IAddr ip = rs.ip;
    if (!prog_->validIaddr(ip))
        die("execution reached a non-code address", ip);
    const Instruction &inst = prog_->fetch(ip);
    const OpcodeInfo &info = opcodeInfo(inst.op);
    if (trace_) {
        std::fprintf(stderr,
                     "[n%u c%llu L%u i%u %s] %-28s R0=%s R1=%s R2=%s R3=%s\n",
                     id_, static_cast<unsigned long long>(now),
                     static_cast<unsigned>(current_), ip,
                     prog_->nearestLabel(ip).c_str(),
                     inst.toString().c_str(),
                     rs[0].toString().c_str(), rs[1].toString().c_str(),
                     rs[2].toString().c_str(), rs[3].toString().c_str());
    }
    unsigned cost = info.baseCycles;

    // Instruction fetch: internal fetches overlap execution; a new
    // external code word costs a DRAM access.
    const Addr word_addr = ip >> 1;
    if (lastFetchWord_[lvl] != word_addr) {
        lastFetchWord_[lvl] = word_addr;
        if (word_addr >= kEmemBase)
            cost += config_.ememFetchCycles;
    }

    IAddr next = ip + 1;
    faultPending_ = false;
    bool stall = false;
    unsigned penalty = 0;
    Addr addr = 0;
    std::int32_t a = 0, b = 0;

    const auto takeBranch = [&](std::int32_t word_off) {
        next = (static_cast<IAddr>(
                    static_cast<std::int64_t>(word_addr) + word_off)) *
               2;
        cost += config_.takenBranchPenalty;
    };

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        break;

      case Opcode::Suspend:
        stats_.suspends += 1;
        if (current_ == Level::Background) {
            rs.parked = true;
            rs.inFault = false;
        } else {
            MessageQueue &q = ni_->queue(current_ == Level::P1 ? 1 : 0);
            if (!q.head().complete()) {
                stall = true;  // wait for the worm's tail before freeing
                stats_.suspends -= 1;
            } else {
                q.pop();
                rs.live = false;
                rs.inFault = false;  // cfut handlers suspend to end a fault
            }
        }
        break;

      case Opcode::Rfe:
        if (!rs.inFault)
            die("RFE outside a fault handler", ip);
        next = rs.faultIp;
        rs.inFault = false;
        lastFetchWord_[lvl] = kNoFetchWord;
        break;

      case Opcode::Br:
        takeBranch(inst.imm);
        break;
      case Opcode::Bt:
      case Opcode::Bf: {
        bool cond;
        if (!boolOperand(inst.rd, cond))
            break;
        if (cond == (inst.op == Opcode::Bt))
            takeBranch(inst.imm);
        break;
      }
      case Opcode::Call:
        // Wide format: the return point skips the literal word.
        rs[inst.rd] = Word::makeIp(ip + 4);
        next = inst.literal.bits;
        cost += config_.takenBranchPenalty;
        break;
      case Opcode::Jmp: {
        const Word &t = rs[inst.rd];
        if (t.tag != Tag::Ip && t.tag != Tag::Int) {
            raiseFault(FaultKind::TagMismatch, t, Word::makeInt(inst.rd));
            break;
        }
        next = t.bits;
        cost += config_.takenBranchPenalty;
        break;
      }

      case Opcode::Move:
        rs[inst.rd] = rs[inst.ra];
        break;
      case Opcode::Movei:
        rs[inst.rd] = Word::makeInt(inst.imm);
        break;
      case Opcode::Ldl:
        rs[inst.rd] = inst.literal;
        next = ip + 4;  // skip the filler slot and the literal word
        break;

      case Opcode::Ld:
      case Opcode::Ldx:
      case Opcode::Ldraw:
      case Opcode::Ldrawx: {
        const bool indexed =
            inst.op == Opcode::Ldx || inst.op == Opcode::Ldrawx;
        const bool no_trap =
            inst.op == Opcode::Ldraw || inst.op == Opcode::Ldrawx;
        if (!memAddress(inst, indexed, addr, penalty))
            break;
        if (!queueWordReady(addr)) {
            stall = true;
            break;
        }
        cost += penalty;
        const Word v = mem_->read(addr);
        if (!no_trap && v.tag == Tag::Cfut) {
            raiseFault(FaultKind::CfutRead,
                       Word::makeInt(static_cast<std::int32_t>(addr)), v);
            break;
        }
        rs[inst.rd] = v;
        break;
      }

      case Opcode::St:
      case Opcode::Stx:
        if (!memAddress(inst, inst.op == Opcode::Stx, addr, penalty))
            break;
        cost += penalty;
        mem_->write(addr, rs[inst.rd]);
        break;

      case Opcode::Addm:
      case Opcode::Subm:
      case Opcode::Andm:
      case Opcode::Orm:
      case Opcode::Xorm: {
        if (!memAddress(inst, false, addr, penalty))
            break;
        if (!queueWordReady(addr)) {
            stall = true;
            break;
        }
        cost += penalty;
        const Word m = mem_->read(addr);
        if (m.tag == Tag::Cfut) {
            raiseFault(FaultKind::CfutRead,
                       Word::makeInt(static_cast<std::int32_t>(addr)), m);
            break;
        }
        if (m.tag == Tag::Fut) {
            raiseFault(FaultKind::FutUse, m, Word::makeInt(inst.rd));
            break;
        }
        if (m.tag != Tag::Int && m.tag != Tag::Bool) {
            raiseFault(FaultKind::TagMismatch, m, Word::makeInt(inst.rd));
            break;
        }
        if (!aluOperand(inst.rd, a))
            break;
        const std::int32_t mv = m.asInt();
        std::int32_t r = 0;
        switch (inst.op) {
          case Opcode::Addm: r = a + mv; break;
          case Opcode::Subm: r = a - mv; break;
          case Opcode::Andm: r = a & mv; break;
          case Opcode::Orm:  r = a | mv; break;
          case Opcode::Xorm: r = a ^ mv; break;
          default: break;
        }
        rs[inst.rd] = Word::makeInt(r);
        break;
      }

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Ash:
      case Opcode::Lsh:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        if (!aluOperand(inst.ra, a) || !aluOperand(inst.rb, b))
            break;
        std::int32_t r = 0;
        switch (inst.op) {
          case Opcode::Add: r = a + b; break;
          case Opcode::Sub: r = a - b; break;
          case Opcode::Mul: r = a * b; break;
          case Opcode::Ash:
            r = b >= 0 ? (b > 31 ? 0 : a << b) : (-b > 31 ? (a < 0 ? -1 : 0)
                                                          : a >> -b);
            break;
          case Opcode::Lsh:
            r = b >= 0
                    ? (b > 31 ? 0 : a << b)
                    : (-b > 31 ? 0
                               : static_cast<std::int32_t>(
                                     static_cast<std::uint32_t>(a) >> -b));
            break;
          case Opcode::And: r = a & b; break;
          case Opcode::Or:  r = a | b; break;
          case Opcode::Xor: r = a ^ b; break;
          default: break;
        }
        rs[inst.rd] = Word::makeInt(r);
        break;
      }

      case Opcode::Not:
        if (!aluOperand(inst.ra, a))
            break;
        rs[inst.rd] = Word::makeInt(~a);
        break;
      case Opcode::Neg:
        if (!aluOperand(inst.ra, a))
            break;
        rs[inst.rd] = Word::makeInt(-a);
        break;

      case Opcode::Addi:
      case Opcode::Ashi:
      case Opcode::Lshi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori: {
        if (!aluOperand(inst.ra, a))
            break;
        const std::int32_t k = inst.imm;
        std::int32_t r = 0;
        switch (inst.op) {
          case Opcode::Addi: r = a + k; break;
          case Opcode::Ashi:
            r = k >= 0 ? (k > 31 ? 0 : a << k) : (-k > 31 ? (a < 0 ? -1 : 0)
                                                          : a >> -k);
            break;
          case Opcode::Lshi:
            r = k >= 0
                    ? (k > 31 ? 0 : a << k)
                    : (-k > 31 ? 0
                               : static_cast<std::int32_t>(
                                     static_cast<std::uint32_t>(a) >> -k));
            break;
          case Opcode::Andi: r = a & k; break;
          case Opcode::Ori:  r = a | k; break;
          case Opcode::Xori: r = a ^ k; break;
          default: break;
        }
        rs[inst.rd] = Word::makeInt(r);
        break;
      }

      case Opcode::Eq:
      case Opcode::Ne: {
        const Word &wa = rs[inst.ra];
        const Word &wb = rs[inst.rb];
        if (wa.isFuture() || wb.isFuture()) {
            raiseFault(FaultKind::FutUse, wa.isFuture() ? wa : wb,
                       Word::makeInt(inst.rd));
            break;
        }
        const bool equal = wa == wb;
        rs[inst.rd] = Word::makeBool(inst.op == Opcode::Eq ? equal : !equal);
        break;
      }
      case Opcode::Lt:
      case Opcode::Le:
      case Opcode::Gt:
      case Opcode::Ge: {
        if (!aluOperand(inst.ra, a) || !aluOperand(inst.rb, b))
            break;
        bool r = false;
        switch (inst.op) {
          case Opcode::Lt: r = a < b; break;
          case Opcode::Le: r = a <= b; break;
          case Opcode::Gt: r = a > b; break;
          case Opcode::Ge: r = a >= b; break;
          default: break;
        }
        rs[inst.rd] = Word::makeBool(r);
        break;
      }
      case Opcode::Eqi:
      case Opcode::Nei:
      case Opcode::Lti:
      case Opcode::Lei:
      case Opcode::Gti:
      case Opcode::Gei: {
        if (!aluOperand(inst.ra, a))
            break;
        const std::int32_t k = inst.imm;
        bool r = false;
        switch (inst.op) {
          case Opcode::Eqi: r = a == k; break;
          case Opcode::Nei: r = a != k; break;
          case Opcode::Lti: r = a < k; break;
          case Opcode::Lei: r = a <= k; break;
          case Opcode::Gti: r = a > k; break;
          case Opcode::Gei: r = a >= k; break;
          default: break;
        }
        rs[inst.rd] = Word::makeBool(r);
        break;
      }

      case Opcode::Send0:
      case Opcode::Send0e:
      case Opcode::Send20:
      case Opcode::Send20e:
      case Opcode::Send1:
      case Opcode::Send1e:
      case Opcode::Send21:
      case Opcode::Send21e: {
        const unsigned prio = sendPriority(inst.op);
        const bool end = isSendEnd(inst.op);
        SendResult res;
        if (sendWords(inst.op) == 2)
            res = ni_->sendWords2(prio, rs[inst.rd], rs[inst.ra], end);
        else
            res = ni_->sendWord(prio, rs[inst.rd], end);
        switch (res) {
          case SendResult::Ok:
            rs.sending = !end;
            break;
          case SendResult::Full:
            raiseFault(FaultKind::SendFault,
                       Word::makeInt(static_cast<std::int32_t>(prio)),
                       Word::makeNil());
            break;
          case SendResult::BadDest:
            raiseFault(FaultKind::BadAddress, rs[inst.rd], Word::makeNil());
            break;
          case SendResult::BadFormat:
            raiseFault(FaultKind::SendFormat, rs[inst.rd], Word::makeNil());
            break;
        }
        break;
      }

      case Opcode::Rtag:
        rs[inst.rd] = Word::makeInt(
            static_cast<std::int32_t>(rs[inst.ra].tag));
        break;
      case Opcode::Wtag:
        rs[inst.rd] = Word{rs[inst.ra].bits,
                           static_cast<Tag>(inst.imm & 0xf)};
        break;
      case Opcode::Check:
        if (rs[inst.rd].tag != static_cast<Tag>(inst.imm & 0xf))
            raiseFault(FaultKind::TagMismatch, rs[inst.rd],
                       Word::makeInt(inst.imm));
        break;

      case Opcode::Setseg: {
        if (!aluOperand(inst.ra, a) || !aluOperand(inst.rb, b))
            break;
        SegDesc desc;
        desc.base = static_cast<Addr>(a);
        desc.length = static_cast<std::uint32_t>(b);
        if (a < 0 || b < 0 || !desc.encodable()) {
            raiseFault(FaultKind::BoundsError, Word::makeInt(a),
                       Word::makeInt(b));
            break;
        }
        rs[inst.rd] = desc.encode();
        break;
      }

      case Opcode::Mkhdr: {
        const Word &ipw = rs[inst.ra];
        if (ipw.tag != Tag::Ip && ipw.tag != Tag::Int) {
            raiseFault(FaultKind::TagMismatch, ipw, Word::makeInt(inst.ra));
            break;
        }
        if (!aluOperand(inst.rb, b))
            break;
        MsgHeader hdr;
        hdr.handlerIp = ipw.bits;
        hdr.length = static_cast<std::uint32_t>(b);
        if (b < 0 || hdr.handlerIp > MsgHeader::kMaxIp ||
            hdr.length > MsgHeader::kMaxLength) {
            raiseFault(FaultKind::BoundsError, ipw, Word::makeInt(b));
            break;
        }
        rs[inst.rd] = hdr.encode();
        break;
      }

      case Opcode::Enter:
        xlate_.enter(rs[inst.rd], rs[inst.ra]);
        break;
      case Opcode::Xlate: {
        const auto hit = xlate_.lookup(rs[inst.ra]);
        if (!hit) {
            raiseFault(FaultKind::XlateMiss, rs[inst.ra], Word::makeNil());
            break;
        }
        rs[inst.rd] = *hit;
        break;
      }
      case Opcode::Probe: {
        const auto hit = xlate_.lookup(rs[inst.ra]);
        rs[inst.rd] = hit ? *hit : Word::makeNil();
        break;
      }

      case Opcode::Getsp: {
        Word v;
        switch (static_cast<SpecialReg>(inst.imm)) {
          case SpecialReg::NodeId:
            v = Word::makeInt(static_cast<std::int32_t>(id_));
            break;
          case SpecialReg::Nnr:
            v = Word::makeInt(static_cast<std::int32_t>(
                dims_.toCoord(id_).pack()));
            break;
          case SpecialReg::Nodes:
            v = Word::makeInt(static_cast<std::int32_t>(dims_.nodes()));
            break;
          case SpecialReg::Dims:
            v = Word::makeInt(static_cast<std::int32_t>(dims_.pack()));
            break;
          case SpecialReg::CycleLo:
            v = Word::makeInt(static_cast<std::int32_t>(now & 0xffffffffu));
            break;
          case SpecialReg::CycleHi:
            v = Word::makeInt(static_cast<std::int32_t>(now >> 32));
            break;
          case SpecialReg::QLen0:
            v = Word::makeInt(static_cast<std::int32_t>(
                ni_->queue(0).wordsUsed()));
            break;
          case SpecialReg::QLen1:
            v = Word::makeInt(static_cast<std::int32_t>(
                ni_->queue(1).wordsUsed()));
            break;
          case SpecialReg::Fval0:
            v = rs.fval0;
            break;
          case SpecialReg::Fval1:
            v = rs.fval1;
            break;
          case SpecialReg::Fip:
            v = Word::makeIp(rs.faultIp);
            break;
          case SpecialReg::Tmp0:
          case SpecialReg::Tmp1:
          case SpecialReg::Tmp2:
          case SpecialReg::Tmp3:
            v = rs.tmp[inst.imm -
                       static_cast<std::int32_t>(SpecialReg::Tmp0)];
            break;
          default:
            die("GETSP of unknown special register", ip);
        }
        rs[inst.rd] = v;
        break;
      }

      case Opcode::Setsp: {
        const auto spec = static_cast<SpecialReg>(inst.imm);
        if (spec < SpecialReg::Tmp0 || spec > SpecialReg::Tmp3)
            die("SETSP target must be a fault temporary", ip);
        rs.tmp[inst.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)] =
            rs[inst.rd];
        break;
      }

      case Opcode::Jsp: {
        Word t;
        switch (static_cast<SpecialReg>(inst.imm)) {
          case SpecialReg::Fip:
            t = Word::makeIp(rs.faultIp);
            break;
          case SpecialReg::Tmp0:
          case SpecialReg::Tmp1:
          case SpecialReg::Tmp2:
          case SpecialReg::Tmp3:
            t = rs.tmp[inst.imm -
                       static_cast<std::int32_t>(SpecialReg::Tmp0)];
            break;
          default:
            die("JSP source must be FIP or a fault temporary", ip);
        }
        if (t.tag != Tag::Ip && t.tag != Tag::Int) {
            raiseFault(FaultKind::TagMismatch, t, Word::makeInt(inst.imm));
            break;
        }
        next = t.bits;
        cost += config_.takenBranchPenalty;
        break;
      }

      case Opcode::Out:
        hostOut_.push_back(rs[inst.rd]);
        break;

      case Opcode::NumOpcodes:
        die("corrupt opcode", ip);
    }

    if (faultPending_) {
        stats_.faults[static_cast<unsigned>(faultKind_)] += 1;
        if (rs.inFault)
            die(std::string("fault '") + faultName(faultKind_) +
                    "' inside a fault handler",
                ip);
        if (!config_.hasVector[static_cast<unsigned>(faultKind_)])
            die(std::string("unhandled fault '") + faultName(faultKind_) +
                    "' (fval0=" + faultVal0_.toString() + ")",
                ip);
        rs.inFault = true;
        rs.faultIp = ip;
        rs.fval0 = faultVal0_;
        rs.fval1 = faultVal1_;
        rs.ip = config_.vectors[static_cast<unsigned>(faultKind_)];
        lastFetchWord_[lvl] = kNoFetchWord;
        cost += config_.faultEntryCycles;
        attribute(faultStatClass(faultKind_), cost);
        busyUntil_ = now + cost;
        return;
    }

    if (stall) {
        stats_.queueStallCycles += 1;
        attribute(StatClass::Comm, 1);
        busyUntil_ = now + 1;
        return;
    }

    rs.ip = next;
    busyUntil_ = now + cost;
    stats_.instructions += 1;

    const StatClass region = prog_->klassAt(ip);
    StatClass effective;
    if (region == StatClass::Os) {
        effective = StatClass::Os;
        stats_.instructionsOs += 1;
    } else if (info.defaultClass != StatClass::Compute) {
        effective = info.defaultClass;
    } else {
        effective = region;
    }
    attribute(effective, cost);

    HandlerStats &hs = handlerStats_[handlerEntry_[lvl]];
    hs.instructions += 1;
    hs.cycles += cost;
}

} // namespace jmsim
