#include "mdp/processor.hh"

#include <algorithm>
#include <cstdio>

#include "ckpt/snapshot.hh"
#include "isa/superblock.hh"
#include "sim/logging.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

void
Processor::init(NodeId id, const MeshDims &dims, const ProcessorConfig &config,
                NodeMemory *mem, NetworkInterface *ni, const Program *prog)
{
    id_ = id;
    dims_ = dims;
    config_ = config;
    mem_ = mem;
    ni_ = ni;
    prog_ = prog;
    decoded_ = prog->decodedOps().data();
    decodedCount_ = prog->decodedOps().size();
    fetchKnown_.fill(false);
    handlerSlot_.fill(nullptr);
}

void
Processor::boot(IAddr entry)
{
    const unsigned lvl = static_cast<unsigned>(Level::Background);
    RegisterSet &bg = sets_[lvl];
    bg.live = true;
    bg.parked = false;
    bg.ip = entry;
    handlerEntry_[lvl] = entry;
    HandlerStats &hs = handlerStats_[entry];
    hs.dispatches += 1;
    handlerSlot_[lvl] = &hs;
}

void
Processor::resetStats()
{
    stats_ = ProcessorStats{};
    handlerStats_.clear();
    handlerSlot_.fill(nullptr);
    xlate_.resetStats();
    // A finished optimistic span can no longer be invalidated: any
    // later arrival lands after the span's last issue cycle.
    spanActive_ = false;
    // Re-seed the dispatch that brought in each still-live handler so a
    // post-reset read sees the running threads accounted the same way
    // boot() seeds the background handler.
    for (unsigned l = 0; l < kNumLevels; ++l) {
        if (sets_[l].live) {
            HandlerStats &hs = handlerStats_[handlerEntry_[l]];
            hs.dispatches += 1;
            handlerSlot_[l] = &hs;
        }
    }
}

void
Processor::registerCounters(CounterRegistry &reg)
{
    reg.addCounter("proc.instructions", &stats_.instructions);
    reg.addCounter("proc.instructions_os", &stats_.instructionsOs);
    reg.addCounter("proc.dispatches", &stats_.dispatches);
    reg.addCounter("proc.suspends", &stats_.suspends);
    reg.addCounter("proc.queue_stall_cycles", &stats_.queueStallCycles);
    reg.addCounter("proc.run_cycles", &stats_.runCycles);
    reg.addCounter("proc.idle_cycles", &stats_.idleCycles);
    reg.addCounter("proc.seg_cache_hits", &stats_.segCacheHits);
    reg.addCounter("proc.seg_cache_misses", &stats_.segCacheMisses);
    reg.addCounter("proc.xlate_cache_hits", &stats_.xlateCacheHits);
    reg.addCounter("proc.xlate_cache_misses", &stats_.xlateCacheMisses);
    for (unsigned c = 0;
         c < static_cast<unsigned>(StatClass::NumClasses); ++c) {
        reg.addCounter(std::string("proc.cycles.") +
                           statClassName(static_cast<StatClass>(c)),
                       &stats_.cyclesByClass[c]);
    }
    for (unsigned f = 0; f < kNumFaults; ++f) {
        reg.addCounter(std::string("proc.faults.") +
                           faultName(static_cast<FaultKind>(f)),
                       &stats_.faults[f]);
    }
}

void
Processor::invalidateSegCache()
{
    for (auto &level : segCache_) {
        for (auto &e : level)
            e.valid = false;
    }
}

bool
Processor::runnable() const
{
    for (unsigned l = 0; l < kNumLevels; ++l) {
        const RegisterSet &rs = sets_[l];
        if (rs.live && !(l == 0 && rs.parked))
            return true;
    }
    return ni_->queue(0).headDispatchable() ||
           ni_->queue(1).headDispatchable();
}

void
Processor::noteWake(Cycle now)
{
    if (sleeping_) {
        stats_.idleCycles += now - sleepStart_;
        attributeIdle(now - sleepStart_);
        sleeping_ = false;
    }
}

void
Processor::noteSleep(Cycle now)
{
    if (!sleeping_ && !halted_) {
        sleeping_ = true;
        sleepStart_ = now;
    }
}

void
Processor::attribute(StatClass cls, unsigned cycles)
{
    stats_.cyclesByClass[static_cast<std::size_t>(cls)] += cycles;
    stats_.runCycles += cycles;
}

void
Processor::attributeIdle(Cycle cycles)
{
    stats_.cyclesByClass[static_cast<std::size_t>(StatClass::Idle)] += cycles;
}

void
Processor::die(const std::string &msg, IAddr iaddr)
{
    std::string what = "node " + std::to_string(id_) + " @ iaddr " +
                       std::to_string(iaddr) + " (near '" +
                       prog_->nearestLabel(iaddr) + "'): " + msg;
    if (prog_->validIaddr(iaddr))
        what += " [" + prog_->fetch(iaddr).toString() + "]";
    fatal(what);
}

void
Processor::selectLevel(Cycle now)
{
    // An open send sequence is atomic: stay on its level until the
    // SEND*E instruction closes the message.
    for (unsigned l = kNumLevels; l-- > 0;) {
        if (sets_[l].live && sets_[l].sending) {
            current_ = static_cast<Level>(l);
            currentValid_ = true;
            return;
        }
    }

    // A live fault handler is never preempted.
    for (unsigned l = kNumLevels; l-- > 0;) {
        if (sets_[l].live && sets_[l].inFault) {
            current_ = static_cast<Level>(l);
            currentValid_ = true;
            return;
        }
    }

    for (int prio = 1; prio >= 0; --prio) {
        const Level level = prio ? Level::P1 : Level::P0;
        const unsigned lvl = static_cast<unsigned>(level);
        RegisterSet &rs = sets_[lvl];
        if (rs.live) {
            current_ = level;
            currentValid_ = true;
            return;
        }
        MessageQueue &q = ni_->queue(static_cast<unsigned>(prio));
        if (q.headDispatchable()) {
            // Hardware dispatch: load IP from the header, point A3 at
            // the message, fetch the first instruction — 4 cycles.
            const QueuedMessage &m = q.head();
            const MsgHeader hdr = MsgHeader::decode(mem_->read(m.start));
            rs.live = true;
            rs.ip = hdr.handlerIp;
            rs[reg::A3] = SegDesc{m.start, m.length}.encode();
            segCache_[lvl][reg::A3 & 3u].valid = false;
            invalidateFetch(lvl);
            current_ = level;
            currentValid_ = true;
            busyUntil_ = now + config_.dispatchCycles;
            attribute(StatClass::Comm, config_.dispatchCycles);
            stats_.dispatches += 1;
            if (kTraceCompiledIn && tracer_ &&
                tracer_->wants(TraceKind::Dispatch)) {
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::Dispatch;
                ev.arg8 = static_cast<std::uint8_t>(prio);
                ev.a0 = hdr.handlerIp;
                ev.a1 = q.messageCount();
                tracer_->record(ev);
            }
            handlerEntry_[lvl] = hdr.handlerIp;
            HandlerStats &hs = handlerStats_[hdr.handlerIp];
            hs.dispatches += 1;
            hs.messageWords += m.length;
            handlerSlot_[lvl] = &hs;
            return;
        }
    }

    RegisterSet &bg = sets_[static_cast<unsigned>(Level::Background)];
    if (bg.live && !bg.parked) {
        current_ = Level::Background;
        currentValid_ = true;
        return;
    }
    currentValid_ = false;
}

bool
Processor::step(Cycle now, Cycle horizon, bool exclusive)
{
    if (halted_)
        return false;
    if (busyUntil_ > now)
        return true;
    selectLevel(now);
    if (!currentValid_)
        return false;
    if (busyUntil_ > now)
        return true;  // this cycle went to a dispatch
    if (config_.superblock && !trace_ && horizon > now + 1)
        executeSpan(now, horizon, exclusive);
    else
        executeOne(now);
    return true;
}

bool
Processor::aluOperand(std::uint8_t r, std::int32_t &out)
{
    const Word &w = cur()[r];
    if (w.isFuture()) {
        faultPending_ = true;
        faultKind_ = FaultKind::FutUse;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    if (w.tag != Tag::Int && w.tag != Tag::Bool) {
        faultPending_ = true;
        faultKind_ = FaultKind::TagMismatch;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    out = w.asInt();
    return true;
}

bool
Processor::boolOperand(std::uint8_t r, bool &out)
{
    const Word &w = cur()[r];
    if (w.isFuture()) {
        faultPending_ = true;
        faultKind_ = FaultKind::FutUse;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    out = w.bits != 0;
    return true;
}

bool
Processor::memAddress(const DecodedOp &op, bool indexed, Addr &addr,
                      unsigned &penalty)
{
    const unsigned lvl = static_cast<unsigned>(current_);
    SegCacheEntry &e = segCache_[lvl][op.abase & 3u];
    const Word &aw = cur()[4 + op.abase];
    if (!e.valid) {
        // Miss: decode the descriptor and classify the segment. The tag
        // check only needs to run here — any write to the address
        // register invalidates this entry, so a valid entry proves the
        // register still holds the decoded Addr word.
        if (aw.tag != Tag::Addr) {
            faultPending_ = true;
            faultKind_ = FaultKind::TagMismatch;
            faultVal0_ = aw;
            faultVal1_ = Word::makeInt(4 + op.abase);
            return false;
        }
        stats_.segCacheMisses += 1;
        e.desc = SegDesc::decode(aw);
        e.uniform = false;
        e.penalty = 0;
        if (e.desc.length > 0) {
            const Addr first = e.desc.base;
            const Addr last = e.desc.base + (e.desc.length - 1);
            if (last >= first && mem_->isValid(first) && mem_->isValid(last) &&
                mem_->isInternal(first) == mem_->isInternal(last)) {
                // Whole segment inside one region: hits can skip the
                // per-access validity and penalty checks.
                e.uniform = true;
                e.penalty = mem_->accessPenalty(first);
            }
        }
        e.valid = true;
    } else {
        stats_.segCacheHits += 1;
    }
    std::int32_t off;
    if (indexed) {
        if (!aluOperand(op.rb, off))
            return false;
    } else {
        off = op.imm;
    }
    if (off < 0 || !e.desc.contains(static_cast<std::uint32_t>(off))) {
        faultPending_ = true;
        faultKind_ = FaultKind::BoundsError;
        faultVal0_ = Word::makeInt(off);
        faultVal1_ = aw;
        return false;
    }
    addr = e.desc.base + static_cast<Addr>(off);
    if (eagerGuard_) {
        // Superblock span: a queue-region access outside the frozen
        // arrived-prefix allowance aborts the op side-effect-free; the
        // span ends and the op re-executes per-op at its architectural
        // cycle, observing the true queue state.
        for (unsigned qi = 0; qi < 2; ++qi) {
            const MessageQueue &q = ni_->queue(qi);
            if (addr >= q.base() && addr < q.base() + q.capacity() &&
                (addr < eagerQLo_ || addr >= eagerQHi_)) {
                eagerAbort_ = true;
                return false;
            }
        }
    }
    if (e.uniform) {
        penalty = e.penalty;
        return true;
    }
    if (!mem_->isValid(addr)) {
        faultPending_ = true;
        faultKind_ = FaultKind::BadAddress;
        faultVal0_ = Word::makeInt(static_cast<std::int32_t>(addr));
        faultVal1_ = aw;
        return false;
    }
    penalty = mem_->accessPenalty(addr);
    return true;
}

bool
Processor::queueWordReady(Addr addr)
{
    if (current_ == Level::Background)
        return true;
    const unsigned prio = current_ == Level::P1 ? 1 : 0;
    const MessageQueue &q = ni_->queue(prio);
    if (q.empty())
        return true;
    const QueuedMessage &m = q.head();
    if (addr < m.start || addr >= m.start + m.length)
        return true;
    return addr < m.start + m.arrived;
}

void
Processor::raiseFault(FaultKind kind, Word fval0, Word fval1)
{
    faultPending_ = true;
    faultKind_ = kind;
    faultVal0_ = fval0;
    faultVal1_ = fval1;
}

bool
Processor::xlateCached(Word key, Word &out)
{
    if (xlateCacheVersion_ != xlate_.version()) {
        // The table changed (ENTER / invalidate / clear): every cached
        // translation is suspect, including ones evicted from the
        // set-associative table itself.
        for (auto &e : xlateCache_)
            e.valid = false;
        xlateCacheVersion_ = xlate_.version();
    }
    XlateCacheEntry &e =
        xlateCache_[(key.bits ^ (static_cast<std::uint64_t>(key.tag) << 3)) &
                    (kXlateCacheSize - 1)];
    if (e.valid && e.key == key) {
        stats_.xlateCacheHits += 1;
        // A front hit is architecturally a table hit: keep XlateStats
        // identical to the uncached path.
        xlate_.noteFrontHit();
        out = e.value;
        return true;
    }
    stats_.xlateCacheMisses += 1;
    return false;
}

void
Processor::xlateFill(Word key, Word value)
{
    XlateCacheEntry &e =
        xlateCache_[(key.bits ^ (static_cast<std::uint64_t>(key.tag) << 3)) &
                    (kXlateCacheSize - 1)];
    e.valid = true;
    e.key = key;
    e.value = value;
}

HandlerStats &
Processor::handlerSlot(unsigned lvl)
{
    // unordered_map element references are stable, so the pointer stays
    // good until the map is cleared (resetStats nulls the slots).
    if (!handlerSlot_[lvl])
        handlerSlot_[lvl] = &handlerStats_[handlerEntry_[lvl]];
    return *handlerSlot_[lvl];
}

/**
 * The per-opcode handlers. Each runs with the per-instruction state
 * already primed by executeOne(): xNext_ = fall-through successor,
 * xCost_ = base + fetch cost, xStall_ = false, faultPending_ = false.
 * A handler either completes (possibly redirecting xNext_ / adding to
 * xCost_), sets xStall_ to retry next cycle, or records a fault.
 */
struct Processor::Exec
{
    using Fn = void (*)(Processor &, const DecodedOp &);

    static const std::array<Fn, static_cast<std::size_t>(
                                    Opcode::NumOpcodes) + 1> table;

    // ---- scalar op kernels (match the original switch bit-for-bit) ----
    static std::int32_t fnAdd(std::int32_t a, std::int32_t b) { return a + b; }
    static std::int32_t fnSub(std::int32_t a, std::int32_t b) { return a - b; }
    static std::int32_t fnMul(std::int32_t a, std::int32_t b) { return a * b; }
    static std::int32_t fnAnd(std::int32_t a, std::int32_t b) { return a & b; }
    static std::int32_t fnOr(std::int32_t a, std::int32_t b) { return a | b; }
    static std::int32_t fnXor(std::int32_t a, std::int32_t b) { return a ^ b; }

    static std::int32_t
    fnAsh(std::int32_t a, std::int32_t b)
    {
        return b >= 0 ? (b > 31 ? 0 : a << b)
                      : (-b > 31 ? (a < 0 ? -1 : 0) : a >> -b);
    }

    static std::int32_t
    fnLsh(std::int32_t a, std::int32_t b)
    {
        return b >= 0 ? (b > 31 ? 0 : a << b)
                      : (-b > 31 ? 0
                                 : static_cast<std::int32_t>(
                                       static_cast<std::uint32_t>(a) >> -b));
    }

    static bool fnLt(std::int32_t a, std::int32_t b) { return a < b; }
    static bool fnLe(std::int32_t a, std::int32_t b) { return a <= b; }
    static bool fnGt(std::int32_t a, std::int32_t b) { return a > b; }
    static bool fnGe(std::int32_t a, std::int32_t b) { return a >= b; }
    static bool fnEq(std::int32_t a, std::int32_t b) { return a == b; }
    static bool fnNe(std::int32_t a, std::int32_t b) { return a != b; }

    // ---- control ----

    static void
    nop(Processor &, const DecodedOp &)
    {
    }

    static void
    halt(Processor &p, const DecodedOp &)
    {
        p.halted_ = true;
    }

    static void
    suspend(Processor &p, const DecodedOp &)
    {
        RegisterSet &rs = p.cur();
        p.stats_.suspends += 1;
        if (p.current_ == Level::Background) {
            rs.parked = true;
            rs.inFault = false;
        } else {
            MessageQueue &q = p.ni_->queue(p.current_ == Level::P1 ? 1 : 0);
            if (!q.head().complete()) {
                p.xStall_ = true;  // wait for the worm's tail before freeing
                p.stats_.suspends -= 1;
                return;
            }
            q.pop();
            rs.live = false;
            rs.inFault = false;  // cfut handlers suspend to end a fault
        }
        if (kTraceCompiledIn && p.tracer_ &&
            p.tracer_->wants(TraceKind::Suspend)) {
            TraceEvent ev;
            ev.cycle = p.xNow_;
            ev.node = p.id_;
            ev.kind = TraceKind::Suspend;
            ev.arg8 = static_cast<std::uint8_t>(p.current_);
            p.tracer_->record(ev);
        }
    }

    static void
    rfe(Processor &p, const DecodedOp &)
    {
        RegisterSet &rs = p.cur();
        if (!rs.inFault)
            p.die("RFE outside a fault handler", rs.ip);
        p.xNext_ = rs.faultIp;
        rs.inFault = false;
        p.invalidateFetch(static_cast<unsigned>(p.current_));
    }

    static void
    br(Processor &p, const DecodedOp &op)
    {
        p.xNext_ = op.target;
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    template <bool OnTrue>
    static void
    condBranch(Processor &p, const DecodedOp &op)
    {
        bool cond;
        if (!p.boolOperand(op.rd, cond))
            return;
        if (cond == OnTrue) {
            p.xNext_ = op.target;
            p.xCost_ += p.config_.takenBranchPenalty;
        }
    }

    static void
    call(Processor &p, const DecodedOp &op)
    {
        // Wide format: op.imm is the precomputed return point past the
        // literal word; op.target is the resolved entry.
        p.setReg(p.cur(), op.rd, Word::makeIp(static_cast<IAddr>(op.imm)));
        p.xNext_ = op.target;
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    static void
    jmp(Processor &p, const DecodedOp &op)
    {
        const Word &t = p.cur()[op.rd];
        if (t.tag != Tag::Ip && t.tag != Tag::Int) {
            p.raiseFault(FaultKind::TagMismatch, t, Word::makeInt(op.rd));
            return;
        }
        p.xNext_ = static_cast<IAddr>(t.bits);
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    // ---- moves ----

    static void
    move(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.setReg(rs, op.rd, rs[op.ra]);
    }

    static void
    movei(Processor &p, const DecodedOp &op)
    {
        p.setReg(p.cur(), op.rd, Word::makeInt(op.imm));
    }

    static void
    ldl(Processor &p, const DecodedOp &op)
    {
        // xNext_ already skips the filler slot and the literal word.
        p.setReg(p.cur(), op.rd, op.literal);
    }

    // ---- memory ----

    template <bool Indexed, bool NoTrap>
    static void
    load(Processor &p, const DecodedOp &op)
    {
        Addr addr = 0;
        unsigned penalty = 0;
        if (!p.memAddress(op, Indexed, addr, penalty))
            return;
        if (!p.queueWordReady(addr)) {
            p.xStall_ = true;
            return;
        }
        p.xCost_ += penalty;
        const Word v = p.mem_->read(addr);
        if (!NoTrap && v.tag == Tag::Cfut) {
            p.raiseFault(FaultKind::CfutRead,
                         Word::makeInt(static_cast<std::int32_t>(addr)), v);
            return;
        }
        p.setReg(p.cur(), op.rd, v);
    }

    template <bool Indexed>
    static void
    store(Processor &p, const DecodedOp &op)
    {
        Addr addr = 0;
        unsigned penalty = 0;
        if (!p.memAddress(op, Indexed, addr, penalty))
            return;
        p.xCost_ += penalty;
        if (p.eagerUndo_)
            p.undo_.emplace_back(addr, p.mem_->read(addr));
        p.mem_->write(addr, p.cur()[op.rd]);
    }

    template <std::int32_t (*F)(std::int32_t, std::int32_t)>
    static void
    aluMem(Processor &p, const DecodedOp &op)
    {
        Addr addr = 0;
        unsigned penalty = 0;
        if (!p.memAddress(op, false, addr, penalty))
            return;
        if (!p.queueWordReady(addr)) {
            p.xStall_ = true;
            return;
        }
        p.xCost_ += penalty;
        const Word m = p.mem_->read(addr);
        if (m.tag == Tag::Cfut) {
            p.raiseFault(FaultKind::CfutRead,
                         Word::makeInt(static_cast<std::int32_t>(addr)), m);
            return;
        }
        if (m.tag == Tag::Fut) {
            p.raiseFault(FaultKind::FutUse, m, Word::makeInt(op.rd));
            return;
        }
        if (m.tag != Tag::Int && m.tag != Tag::Bool) {
            p.raiseFault(FaultKind::TagMismatch, m, Word::makeInt(op.rd));
            return;
        }
        std::int32_t a;
        if (!p.aluOperand(op.rd, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(F(a, m.asInt())));
    }

    // ---- arithmetic / logic ----

    template <std::int32_t (*F)(std::int32_t, std::int32_t)>
    static void
    aluRR(Processor &p, const DecodedOp &op)
    {
        std::int32_t a, b;
        if (!p.aluOperand(op.ra, a) || !p.aluOperand(op.rb, b))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(F(a, b)));
    }

    template <std::int32_t (*F)(std::int32_t, std::int32_t)>
    static void
    aluRI(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(F(a, op.imm)));
    }

    static void
    notOp(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(~a));
    }

    static void
    negOp(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(-a));
    }

    // ---- comparisons ----

    template <bool WantEq>
    static void
    eqNe(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word &wa = rs[op.ra];
        const Word &wb = rs[op.rb];
        if (wa.isFuture() || wb.isFuture()) {
            p.raiseFault(FaultKind::FutUse, wa.isFuture() ? wa : wb,
                         Word::makeInt(op.rd));
            return;
        }
        const bool equal = wa == wb;
        p.setReg(rs, op.rd, Word::makeBool(WantEq ? equal : !equal));
    }

    template <bool (*F)(std::int32_t, std::int32_t)>
    static void
    cmpRR(Processor &p, const DecodedOp &op)
    {
        std::int32_t a, b;
        if (!p.aluOperand(op.ra, a) || !p.aluOperand(op.rb, b))
            return;
        p.setReg(p.cur(), op.rd, Word::makeBool(F(a, b)));
    }

    template <bool (*F)(std::int32_t, std::int32_t)>
    static void
    cmpRI(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeBool(F(a, op.imm)));
    }

    // ---- network ----

    template <unsigned Words, unsigned Prio, bool End>
    static void
    send(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        SendResult res;
        if constexpr (Words == 2)
            res = p.ni_->sendWords2(Prio, rs[op.rd], rs[op.ra], End, p.xNow_);
        else
            res = p.ni_->sendWord(Prio, rs[op.rd], End, p.xNow_);
        switch (res) {
          case SendResult::Ok:
            rs.sending = !End;
            break;
          case SendResult::Full:
            p.raiseFault(FaultKind::SendFault,
                         Word::makeInt(static_cast<std::int32_t>(Prio)),
                         Word::makeNil());
            break;
          case SendResult::BadDest:
            p.raiseFault(FaultKind::BadAddress, rs[op.rd], Word::makeNil());
            break;
          case SendResult::BadFormat:
            p.raiseFault(FaultKind::SendFormat, rs[op.rd], Word::makeNil());
            break;
        }
    }

    // ---- tags ----

    static void
    rtag(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.setReg(rs, op.rd,
                 Word::makeInt(static_cast<std::int32_t>(rs[op.ra].tag)));
    }

    static void
    wtag(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.setReg(rs, op.rd,
                 Word{rs[op.ra].bits, static_cast<Tag>(op.imm & 0xf)});
    }

    static void
    check(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        if (rs[op.rd].tag != static_cast<Tag>(op.imm & 0xf))
            p.raiseFault(FaultKind::TagMismatch, rs[op.rd],
                         Word::makeInt(op.imm));
    }

    // ---- segments / headers / translation ----

    static void
    setseg(Processor &p, const DecodedOp &op)
    {
        std::int32_t a, b;
        if (!p.aluOperand(op.ra, a) || !p.aluOperand(op.rb, b))
            return;
        SegDesc desc;
        desc.base = static_cast<Addr>(a);
        desc.length = static_cast<std::uint32_t>(b);
        if (a < 0 || b < 0 || !desc.encodable()) {
            p.raiseFault(FaultKind::BoundsError, Word::makeInt(a),
                         Word::makeInt(b));
            return;
        }
        p.setReg(p.cur(), op.rd, desc.encode());
    }

    static void
    mkhdr(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word &ipw = rs[op.ra];
        if (ipw.tag != Tag::Ip && ipw.tag != Tag::Int) {
            p.raiseFault(FaultKind::TagMismatch, ipw, Word::makeInt(op.ra));
            return;
        }
        std::int32_t b;
        if (!p.aluOperand(op.rb, b))
            return;
        MsgHeader hdr;
        hdr.handlerIp = static_cast<IAddr>(ipw.bits);
        hdr.length = static_cast<std::uint32_t>(b);
        if (b < 0 || hdr.handlerIp > MsgHeader::kMaxIp ||
            hdr.length > MsgHeader::kMaxLength) {
            p.raiseFault(FaultKind::BoundsError, ipw, Word::makeInt(b));
            return;
        }
        p.setReg(rs, op.rd, hdr.encode());
    }

    static void
    enter(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.xlate_.enter(rs[op.rd], rs[op.ra]);
    }

    static void
    xlateOp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word key = rs[op.ra];
        Word v;
        if (p.xlateCached(key, v)) {
            p.setReg(rs, op.rd, v);
            return;
        }
        const auto hit = p.xlate_.lookup(key);
        if (!hit) {
            p.raiseFault(FaultKind::XlateMiss, key, Word::makeNil());
            return;
        }
        p.xlateFill(key, *hit);
        p.setReg(rs, op.rd, *hit);
    }

    static void
    probe(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word key = rs[op.ra];
        Word v;
        if (p.xlateCached(key, v)) {
            p.setReg(rs, op.rd, v);
            return;
        }
        const auto hit = p.xlate_.lookup(key);
        if (hit)
            p.xlateFill(key, *hit);
        p.setReg(rs, op.rd, hit ? *hit : Word::makeNil());
    }

    // ---- special registers ----

    static void
    getsp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        Word v;
        switch (static_cast<SpecialReg>(op.imm)) {
          case SpecialReg::NodeId:
            v = Word::makeInt(static_cast<std::int32_t>(p.id_));
            break;
          case SpecialReg::Nnr:
            v = Word::makeInt(static_cast<std::int32_t>(
                p.dims_.toCoord(p.id_).pack()));
            break;
          case SpecialReg::Nodes:
            v = Word::makeInt(static_cast<std::int32_t>(p.dims_.nodes()));
            break;
          case SpecialReg::Dims:
            v = Word::makeInt(static_cast<std::int32_t>(p.dims_.pack()));
            break;
          case SpecialReg::CycleLo:
            v = Word::makeInt(
                static_cast<std::int32_t>(p.xNow_ & 0xffffffffu));
            break;
          case SpecialReg::CycleHi:
            v = Word::makeInt(static_cast<std::int32_t>(p.xNow_ >> 32));
            break;
          case SpecialReg::QLen0:
            v = Word::makeInt(static_cast<std::int32_t>(
                p.ni_->queue(0).wordsUsed()));
            break;
          case SpecialReg::QLen1:
            v = Word::makeInt(static_cast<std::int32_t>(
                p.ni_->queue(1).wordsUsed()));
            break;
          case SpecialReg::Fval0:
            v = rs.fval0;
            break;
          case SpecialReg::Fval1:
            v = rs.fval1;
            break;
          case SpecialReg::Fip:
            v = Word::makeIp(rs.faultIp);
            break;
          case SpecialReg::Tmp0:
          case SpecialReg::Tmp1:
          case SpecialReg::Tmp2:
          case SpecialReg::Tmp3:
            v = rs.tmp[op.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)];
            break;
          default:
            p.die("GETSP of unknown special register", rs.ip);
        }
        p.setReg(rs, op.rd, v);
    }

    static void
    setsp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const auto spec = static_cast<SpecialReg>(op.imm);
        if (spec < SpecialReg::Tmp0 || spec > SpecialReg::Tmp3)
            p.die("SETSP target must be a fault temporary", rs.ip);
        rs.tmp[op.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)] =
            rs[op.rd];
    }

    static void
    jsp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        Word t;
        switch (static_cast<SpecialReg>(op.imm)) {
          case SpecialReg::Fip:
            t = Word::makeIp(rs.faultIp);
            break;
          case SpecialReg::Tmp0:
          case SpecialReg::Tmp1:
          case SpecialReg::Tmp2:
          case SpecialReg::Tmp3:
            t = rs.tmp[op.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)];
            break;
          default:
            p.die("JSP source must be FIP or a fault temporary", rs.ip);
        }
        if (t.tag != Tag::Ip && t.tag != Tag::Int) {
            p.raiseFault(FaultKind::TagMismatch, t, Word::makeInt(op.imm));
            return;
        }
        p.xNext_ = static_cast<IAddr>(t.bits);
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    static void
    out(Processor &p, const DecodedOp &op)
    {
        p.hostOut_.push_back(p.cur()[op.rd]);
    }

    static void
    badOp(Processor &p, const DecodedOp &)
    {
        p.die("corrupt opcode", p.cur().ip);
    }

    static std::array<Fn, static_cast<std::size_t>(Opcode::NumOpcodes) + 1>
    makeTable()
    {
        std::array<Fn, static_cast<std::size_t>(Opcode::NumOpcodes) + 1> t{};
        t.fill(&badOp);
        const auto set = [&t](Opcode op, Fn fn) {
            t[static_cast<std::size_t>(op)] = fn;
        };
        set(Opcode::Nop, &nop);
        set(Opcode::Halt, &halt);
        set(Opcode::Suspend, &suspend);
        set(Opcode::Rfe, &rfe);
        set(Opcode::Br, &br);
        set(Opcode::Bt, &condBranch<true>);
        set(Opcode::Bf, &condBranch<false>);
        set(Opcode::Call, &call);
        set(Opcode::Jmp, &jmp);
        set(Opcode::Move, &move);
        set(Opcode::Movei, &movei);
        set(Opcode::Ldl, &ldl);
        set(Opcode::Ld, &load<false, false>);
        set(Opcode::Ldx, &load<true, false>);
        set(Opcode::Ldraw, &load<false, true>);
        set(Opcode::Ldrawx, &load<true, true>);
        set(Opcode::St, &store<false>);
        set(Opcode::Stx, &store<true>);
        set(Opcode::Addm, &aluMem<&fnAdd>);
        set(Opcode::Subm, &aluMem<&fnSub>);
        set(Opcode::Andm, &aluMem<&fnAnd>);
        set(Opcode::Orm, &aluMem<&fnOr>);
        set(Opcode::Xorm, &aluMem<&fnXor>);
        set(Opcode::Add, &aluRR<&fnAdd>);
        set(Opcode::Sub, &aluRR<&fnSub>);
        set(Opcode::Mul, &aluRR<&fnMul>);
        set(Opcode::Ash, &aluRR<&fnAsh>);
        set(Opcode::Lsh, &aluRR<&fnLsh>);
        set(Opcode::And, &aluRR<&fnAnd>);
        set(Opcode::Or, &aluRR<&fnOr>);
        set(Opcode::Xor, &aluRR<&fnXor>);
        set(Opcode::Not, &notOp);
        set(Opcode::Neg, &negOp);
        set(Opcode::Addi, &aluRI<&fnAdd>);
        set(Opcode::Ashi, &aluRI<&fnAsh>);
        set(Opcode::Lshi, &aluRI<&fnLsh>);
        set(Opcode::Andi, &aluRI<&fnAnd>);
        set(Opcode::Ori, &aluRI<&fnOr>);
        set(Opcode::Xori, &aluRI<&fnXor>);
        set(Opcode::Eq, &eqNe<true>);
        set(Opcode::Ne, &eqNe<false>);
        set(Opcode::Lt, &cmpRR<&fnLt>);
        set(Opcode::Le, &cmpRR<&fnLe>);
        set(Opcode::Gt, &cmpRR<&fnGt>);
        set(Opcode::Ge, &cmpRR<&fnGe>);
        set(Opcode::Eqi, &cmpRI<&fnEq>);
        set(Opcode::Nei, &cmpRI<&fnNe>);
        set(Opcode::Lti, &cmpRI<&fnLt>);
        set(Opcode::Lei, &cmpRI<&fnLe>);
        set(Opcode::Gti, &cmpRI<&fnGt>);
        set(Opcode::Gei, &cmpRI<&fnGe>);
        set(Opcode::Send0, &send<1, 0, false>);
        set(Opcode::Send0e, &send<1, 0, true>);
        set(Opcode::Send20, &send<2, 0, false>);
        set(Opcode::Send20e, &send<2, 0, true>);
        set(Opcode::Send1, &send<1, 1, false>);
        set(Opcode::Send1e, &send<1, 1, true>);
        set(Opcode::Send21, &send<2, 1, false>);
        set(Opcode::Send21e, &send<2, 1, true>);
        set(Opcode::Rtag, &rtag);
        set(Opcode::Wtag, &wtag);
        set(Opcode::Check, &check);
        set(Opcode::Setseg, &setseg);
        set(Opcode::Mkhdr, &mkhdr);
        set(Opcode::Enter, &enter);
        set(Opcode::Xlate, &xlateOp);
        set(Opcode::Probe, &probe);
        set(Opcode::Getsp, &getsp);
        set(Opcode::Setsp, &setsp);
        set(Opcode::Jsp, &jsp);
        set(Opcode::Out, &out);
        return t;
    }
};

const std::array<Processor::Exec::Fn,
                 static_cast<std::size_t>(Opcode::NumOpcodes) + 1>
    Processor::Exec::table = Processor::Exec::makeTable();

void
Processor::executeOne(Cycle now)
{
    RegisterSet &rs = cur();
    const unsigned lvl = static_cast<unsigned>(current_);
    const IAddr ip = rs.ip;
    if (ip >= decodedCount_ || !decoded_[ip].valid)
        die("execution reached a non-code address", ip);
    const DecodedOp &op = decoded_[ip];
    if (trace_) {
        std::fprintf(stderr,
                     "[n%u c%llu L%u i%u %s] %-28s R0=%s R1=%s R2=%s R3=%s\n",
                     id_, static_cast<unsigned long long>(now),
                     static_cast<unsigned>(current_), ip,
                     prog_->nearestLabel(ip).c_str(),
                     prog_->fetch(ip).toString().c_str(),
                     rs[0].toString().c_str(), rs[1].toString().c_str(),
                     rs[2].toString().c_str(), rs[3].toString().c_str());
    }

    xCost_ = op.baseCycles;

    // Instruction fetch: internal fetches overlap execution; a new
    // external code word costs a DRAM access.
    if (!fetchKnown_[lvl] || lastFetchWord_[lvl] != op.wordAddr) {
        fetchKnown_[lvl] = true;
        lastFetchWord_[lvl] = op.wordAddr;
        if (op.ememWord)
            xCost_ += config_.ememFetchCycles;
    }

    xNext_ = op.nextIp;
    xStall_ = false;
    xNow_ = now;
    faultPending_ = false;

    Exec::table[op.handler](*this, op);

    if (faultPending_) {
        stats_.faults[static_cast<unsigned>(faultKind_)] += 1;
        if (kTraceCompiledIn && tracer_ &&
            tracer_->wants(TraceKind::Fault)) {
            TraceEvent ev;
            ev.cycle = now;
            ev.node = id_;
            ev.kind = TraceKind::Fault;
            ev.arg8 = static_cast<std::uint8_t>(faultKind_);
            ev.a0 = ip;
            tracer_->record(ev);
        }
        if (rs.inFault)
            die(std::string("fault '") + faultName(faultKind_) +
                    "' inside a fault handler",
                ip);
        if (!config_.hasVector[static_cast<unsigned>(faultKind_)])
            die(std::string("unhandled fault '") + faultName(faultKind_) +
                    "' (fval0=" + faultVal0_.toString() + ")",
                ip);
        rs.inFault = true;
        rs.faultIp = ip;
        rs.fval0 = faultVal0_;
        rs.fval1 = faultVal1_;
        rs.ip = config_.vectors[static_cast<unsigned>(faultKind_)];
        invalidateFetch(lvl);
        xCost_ += config_.faultEntryCycles;
        attribute(faultStatClass(faultKind_), xCost_);
        busyUntil_ = now + xCost_;
        return;
    }

    if (xStall_) {
        stats_.queueStallCycles += 1;
        attribute(StatClass::Comm, 1);
        busyUntil_ = now + 1;
        return;
    }

    rs.ip = xNext_;
    busyUntil_ = now + xCost_;
    stats_.instructions += 1;
    if (op.countsOs)
        stats_.instructionsOs += 1;
    attribute(op.effClass, xCost_);

    HandlerStats &hs = handlerSlot(lvl);
    hs.instructions += 1;
    hs.cycles += xCost_;
}

/**
 * Superblock execution. A span is a straight-line run of predecoded
 * ops retired back-to-back inside one kernel step: the kernel-loop
 * round trip, level selection, and fetch checks are paid once per run
 * instead of once per op, while every architectural observable (cycle
 * counts, stats, faults, memory, trace events) stays bit-identical to
 * per-op stepping.
 *
 * Tier selection decides how far a span may run ahead of the machine:
 *
 *  - Exclusive: the kernel proved no message can arrive (single active
 *    node, empty network, quiescent NI). Fuse with no guards; faults
 *    and queue stalls are replicated inline at their logical cycle.
 *  - Safe: the current level cannot be preempted no matter what
 *    arrives — an open send sequence, a live fault handler, live P1,
 *    or live P0 in an image with no P1 sends (selectLevel's priority
 *    order keeps picking it). Queue-region reads are guarded against
 *    words that had not arrived at span entry: such an access aborts
 *    the op side-effect-free and the span falls back to per-op
 *    execution at the op's architectural cycle.
 *  - Optimistic: background (any arrival preempts) or P0 with P1
 *    traffic possible. The span snapshots its level's state and logs
 *    store undos; if the NI later reports an arrival that would have
 *    preempted mid-span (noteDispatchable), the span rolls back and
 *    deterministically replays only the prefix that architecturally
 *    executed before the arrival became visible.
 *
 * Ops flagged kSbStopBefore (SEND/SUSPEND/HALT/GETSP-QLen) always run
 * per-op; kSbStopOpt ops (ENTER/XLATE/PROBE/OUT) additionally end
 * optimistic spans since rollback cannot undo them.
 */
Processor::SpanResult
Processor::runSpanOps(Cycle start, Cycle stop, unsigned budget,
                      SpanTier tier)
{
    const unsigned lvl = static_cast<unsigned>(current_);
    RegisterSet &rs = sets_[lvl];
    HandlerStats &hs = handlerSlot(lvl);
    const std::vector<std::uint32_t> &runLens = prog_->sbRunLens();
    const std::size_t runCount = runLens.size();
    const bool optimistic = tier == SpanTier::Optimistic;
    const bool guarded = tier != SpanTier::Exclusive;

    SpanResult r;
    r.lastStart = start;
    Cycle c = start;
    std::uint32_t run = 0;      ///< ops left in the current superblock
    bool chainFetch = false;    ///< previous span op fell through here

    // ---- spin fast-forward (see Program::spinHeads) ----
    //
    // A pure busy-wait loop reads only state that is frozen for the
    // span's lifetime: its body has no stores or sends, writes from
    // other levels cannot interleave with a span, and NI deliveries
    // touch only the (guarded) queue region. So once one whole probe
    // iteration reproduces the registers, fetch latch, and segment
    // cache exactly, every further iteration is provably identical —
    // the remaining iterations up to `stop` are retired in bulk by
    // scaling the probe iteration's measured statistics deltas. The
    // bulk count is a pure function of the entry state and `stop`, so
    // a rollback replay with a shorter stop deterministically commits
    // exactly the prefix the original span committed.
    const std::vector<IAddr> &spinHeads = prog_->spinHeads();
    const std::size_t spinCount = spinHeads.size();
    IAddr spinIp = Program::kNoSpinHead;       ///< armed closing branch
    IAddr spinBlocked = Program::kNoSpinHead;  ///< not steady: gave up
    unsigned spinMiss = 0;
    RegisterSet spinRegs;
    std::array<SegCacheEntry, 4> spinSeg{};
    bool spinFetchKnown = false;
    Addr spinFetchWord = 0;
    Cycle spinC = 0;
    std::uint64_t spinInstr = 0;
    std::uint64_t spinInstrOs = 0;
    Cycle spinRunCycles = 0;
    decltype(stats_.cyclesByClass) spinByClass{};
    std::uint64_t spinHits = 0;
    std::uint64_t spinMisses = 0;
    std::uint64_t spinHsI = 0;
    std::uint64_t spinHsC = 0;
    std::uint64_t spinExec = 0;
    const auto armSpin = [&](Cycle at) {
        spinRegs = rs;
        spinSeg = segCache_[lvl];
        spinFetchKnown = fetchKnown_[lvl];
        spinFetchWord = lastFetchWord_[lvl];
        spinC = at;
        spinInstr = stats_.instructions;
        spinInstrOs = stats_.instructionsOs;
        spinRunCycles = stats_.runCycles;
        spinByClass = stats_.cyclesByClass;
        spinHits = stats_.segCacheHits;
        spinMisses = stats_.segCacheMisses;
        spinHsI = hs.instructions;
        spinHsC = hs.cycles;
        spinExec = r.executed;
    };
    /** Don't bother probing unless the span has this much runway. */
    constexpr Cycle kSpinArmRunway = 64;

    while (r.executed < budget && c < stop) {
        const IAddr ip = rs.ip;
        if (run == 0) {
            // Block lookup: how many ops are provably fusable from
            // here along the fall-through path?
            const std::uint32_t packed = ip < runCount ? runLens[ip] : 0;
            run = optimistic ? packed >> 16 : (packed & 0xffffu);
            if (run == 0)
                break;  // stop-flagged or invalid head: per-op fallback
        }
        const DecodedOp &op = decoded_[ip];
        const std::uint8_t f = op.sbFlags;

        xCost_ = op.baseCycles;
        // Fetch cost, elided when the predecessor in this span already
        // latched the same instruction word.
        if (!(chainFetch && (f & sb::kSameWord))) {
            if (!fetchKnown_[lvl] || lastFetchWord_[lvl] != op.wordAddr) {
                fetchKnown_[lvl] = true;
                lastFetchWord_[lvl] = op.wordAddr;
                if (op.ememWord)
                    xCost_ += config_.ememFetchCycles;
            }
        }
        xNext_ = op.nextIp;
        xStall_ = false;
        xNow_ = c;
        faultPending_ = false;
        eagerAbort_ = false;

        const bool memSaved = guarded && (f & sb::kMem);
        if (memSaved) {
            memSaveEntry_ = segCache_[lvl][op.abase & 3u];
            memSaveHits_ = stats_.segCacheHits;
            memSaveMisses_ = stats_.segCacheMisses;
        }

        // Direct-threaded dispatch: the hot opcodes are distributed
        // switch cases the compiler lowers to a jump table and inlines;
        // everything else tail-dispatches through the handler table.
        switch (static_cast<Opcode>(op.handler)) {
          case Opcode::Nop: break;
          case Opcode::Br: Exec::br(*this, op); break;
          case Opcode::Bt: Exec::condBranch<true>(*this, op); break;
          case Opcode::Bf: Exec::condBranch<false>(*this, op); break;
          case Opcode::Call: Exec::call(*this, op); break;
          case Opcode::Jmp: Exec::jmp(*this, op); break;
          case Opcode::Move: Exec::move(*this, op); break;
          case Opcode::Movei: Exec::movei(*this, op); break;
          case Opcode::Ldl: Exec::ldl(*this, op); break;
          case Opcode::Ld: Exec::load<false, false>(*this, op); break;
          case Opcode::Ldx: Exec::load<true, false>(*this, op); break;
          case Opcode::Ldraw: Exec::load<false, true>(*this, op); break;
          case Opcode::Ldrawx: Exec::load<true, true>(*this, op); break;
          case Opcode::St: Exec::store<false>(*this, op); break;
          case Opcode::Stx: Exec::store<true>(*this, op); break;
          case Opcode::Addm: Exec::aluMem<&Exec::fnAdd>(*this, op); break;
          case Opcode::Subm: Exec::aluMem<&Exec::fnSub>(*this, op); break;
          case Opcode::Andm: Exec::aluMem<&Exec::fnAnd>(*this, op); break;
          case Opcode::Orm: Exec::aluMem<&Exec::fnOr>(*this, op); break;
          case Opcode::Xorm: Exec::aluMem<&Exec::fnXor>(*this, op); break;
          case Opcode::Add: Exec::aluRR<&Exec::fnAdd>(*this, op); break;
          case Opcode::Sub: Exec::aluRR<&Exec::fnSub>(*this, op); break;
          case Opcode::Mul: Exec::aluRR<&Exec::fnMul>(*this, op); break;
          case Opcode::Ash: Exec::aluRR<&Exec::fnAsh>(*this, op); break;
          case Opcode::Lsh: Exec::aluRR<&Exec::fnLsh>(*this, op); break;
          case Opcode::And: Exec::aluRR<&Exec::fnAnd>(*this, op); break;
          case Opcode::Or: Exec::aluRR<&Exec::fnOr>(*this, op); break;
          case Opcode::Xor: Exec::aluRR<&Exec::fnXor>(*this, op); break;
          case Opcode::Addi: Exec::aluRI<&Exec::fnAdd>(*this, op); break;
          case Opcode::Ashi: Exec::aluRI<&Exec::fnAsh>(*this, op); break;
          case Opcode::Lshi: Exec::aluRI<&Exec::fnLsh>(*this, op); break;
          case Opcode::Andi: Exec::aluRI<&Exec::fnAnd>(*this, op); break;
          case Opcode::Ori: Exec::aluRI<&Exec::fnOr>(*this, op); break;
          case Opcode::Xori: Exec::aluRI<&Exec::fnXor>(*this, op); break;
          case Opcode::Eq: Exec::eqNe<true>(*this, op); break;
          case Opcode::Ne: Exec::eqNe<false>(*this, op); break;
          case Opcode::Lt: Exec::cmpRR<&Exec::fnLt>(*this, op); break;
          case Opcode::Le: Exec::cmpRR<&Exec::fnLe>(*this, op); break;
          case Opcode::Gt: Exec::cmpRR<&Exec::fnGt>(*this, op); break;
          case Opcode::Ge: Exec::cmpRR<&Exec::fnGe>(*this, op); break;
          case Opcode::Eqi: Exec::cmpRI<&Exec::fnEq>(*this, op); break;
          case Opcode::Nei: Exec::cmpRI<&Exec::fnNe>(*this, op); break;
          case Opcode::Lti: Exec::cmpRI<&Exec::fnLt>(*this, op); break;
          case Opcode::Lei: Exec::cmpRI<&Exec::fnLe>(*this, op); break;
          case Opcode::Gti: Exec::cmpRI<&Exec::fnGt>(*this, op); break;
          case Opcode::Gei: Exec::cmpRI<&Exec::fnGe>(*this, op); break;
          default: Exec::table[op.handler](*this, op); break;
        }

        if (eagerAbort_) {
            // Queue-guard abort: unwind the segment-cache lookup and
            // end the span before this op.
            segCache_[lvl][op.abase & 3u] = memSaveEntry_;
            stats_.segCacheHits = memSaveHits_;
            stats_.segCacheMisses = memSaveMisses_;
            break;
        }
        if (faultPending_) {
            if (optimistic) {
                // End the span before the op; the per-op retry at the
                // correct cycle re-faults with identical side effects.
                if (memSaved) {
                    segCache_[lvl][op.abase & 3u] = memSaveEntry_;
                    stats_.segCacheHits = memSaveHits_;
                    stats_.segCacheMisses = memSaveMisses_;
                }
                break;
            }
            // Safe/exclusive tiers take the fault inline, replicating
            // executeOne's fault path at the op's logical cycle.
            stats_.faults[static_cast<unsigned>(faultKind_)] += 1;
            if (kTraceCompiledIn && tracer_ &&
                tracer_->wants(TraceKind::Fault)) {
                TraceEvent ev;
                ev.cycle = c;
                ev.node = id_;
                ev.kind = TraceKind::Fault;
                ev.arg8 = static_cast<std::uint8_t>(faultKind_);
                ev.a0 = ip;
                tracer_->record(ev);
            }
            if (rs.inFault)
                die(std::string("fault '") + faultName(faultKind_) +
                        "' inside a fault handler",
                    ip);
            if (!config_.hasVector[static_cast<unsigned>(faultKind_)])
                die(std::string("unhandled fault '") +
                        faultName(faultKind_) +
                        "' (fval0=" + faultVal0_.toString() + ")",
                    ip);
            rs.inFault = true;
            rs.faultIp = ip;
            rs.fval0 = faultVal0_;
            rs.fval1 = faultVal1_;
            rs.ip = config_.vectors[static_cast<unsigned>(faultKind_)];
            invalidateFetch(lvl);
            xCost_ += config_.faultEntryCycles;
            attribute(faultStatClass(faultKind_), xCost_);
            busyUntil_ = c + xCost_;
            r.end = c + xCost_;
            r.endedInline = true;
            return r;
        }
        if (xStall_) {
            // Only reachable in exclusive spans (the guard pre-empts
            // queue stalls elsewhere); replicate the per-op stall.
            stats_.queueStallCycles += 1;
            attribute(StatClass::Comm, 1);
            busyUntil_ = c + 1;
            r.end = c + 1;
            r.endedInline = true;
            return r;
        }

        // Commit, exactly as executeOne does.
        rs.ip = xNext_;
        stats_.instructions += 1;
        if (op.countsOs)
            stats_.instructionsOs += 1;
        attribute(op.effClass, xCost_);
        hs.instructions += 1;
        hs.cycles += xCost_;
        r.lastStart = c;
        c += xCost_;
        r.executed += 1;
        run -= 1;
        chainFetch = xNext_ == op.nextIp;
        if (!chainFetch) {
            run = 0;  // control transfer: re-enter block lookup
            // Taken closing branch of a discovered spin loop: probe
            // for a steady state, then retire iterations in bulk. The
            // c < stop guard keeps the k computation from underflowing
            // (and the loop is about to exit anyway).
            if (c < stop && ip < spinCount &&
                spinHeads[ip] != Program::kNoSpinHead &&
                ip != spinBlocked) {
                if (spinIp == ip) {
                    const bool steady = spinRegs == rs &&
                                        spinSeg == segCache_[lvl] &&
                                        spinFetchKnown == fetchKnown_[lvl] &&
                                        spinFetchWord == lastFetchWord_[lvl];
                    if (steady) {
                        // One iteration costs d cycles and ends with
                        // the branch's xCost_; k more whole iterations
                        // fit while the branch still starts before
                        // `stop` (matching the per-op c < stop check).
                        const Cycle d = c - spinC;
                        const std::uint64_t k = (stop - c - 1 + xCost_) / d;
                        if (k > 0) {
                            const std::uint64_t dI = stats_.instructions - spinInstr;
                            const std::uint64_t dIOs = stats_.instructionsOs - spinInstrOs;
                            const Cycle dRun = stats_.runCycles - spinRunCycles;
                            const std::uint64_t dHit = stats_.segCacheHits - spinHits;
                            const std::uint64_t dMiss = stats_.segCacheMisses - spinMisses;
                            const std::uint64_t dHsI = hs.instructions - spinHsI;
                            const std::uint64_t dHsC = hs.cycles - spinHsC;
                            const std::uint64_t dExec = r.executed - spinExec;
                            stats_.instructions += k * dI;
                            stats_.instructionsOs += k * dIOs;
                            stats_.runCycles += k * dRun;
                            for (std::size_t i = 0;
                                 i < stats_.cyclesByClass.size(); ++i)
                                stats_.cyclesByClass[i] +=
                                    k * (stats_.cyclesByClass[i] -
                                         spinByClass[i]);
                            stats_.segCacheHits += k * dHit;
                            stats_.segCacheMisses += k * dMiss;
                            hs.instructions += k * dHsI;
                            hs.cycles += k * dHsC;
                            r.executed += k * dExec;
                            c += k * d;
                            r.lastStart = c - xCost_;
                        }
                        armSpin(c);  // re-baseline (k can be 0 near stop)
                    } else if (++spinMiss >= 2) {
                        spinBlocked = ip;  // a real loop, not a busy-wait
                        spinIp = Program::kNoSpinHead;
                    } else {
                        armSpin(c);  // converging (e.g. cache warm-up)
                    }
                } else if (stop - c >= kSpinArmRunway) {
                    spinIp = ip;
                    spinMiss = 0;
                    armSpin(c);
                }
            }
        }
        if (f & sb::kStopAfter)
            break;    // RFE changed the preemption tier
    }
    r.end = c;
    busyUntil_ = c;
    return r;
}

void
Processor::executeSpan(Cycle now, Cycle horizon, bool exclusive)
{
    const unsigned lvl = static_cast<unsigned>(current_);
    RegisterSet &rs = sets_[lvl];
    spanActive_ = false;

    SpanTier tier;
    unsigned violPrioMin = 0;
    if (exclusive) {
        tier = SpanTier::Exclusive;
    } else if (rs.sending || rs.inFault || current_ == Level::P1 ||
               (current_ == Level::P0 && !prog_->hasP1Sends())) {
        // selectLevel keeps picking this level no matter what arrives:
        // an arrival cannot create a sending, faulting, or
        // higher-priority live candidate.
        tier = SpanTier::Safe;
    } else {
        tier = SpanTier::Optimistic;
        violPrioMin = current_ == Level::P0 ? 1 : 0;
    }

    // A stop-flagged (SEND/SUSPEND/HALT/GETSP-QLen) or invalid head
    // cannot fuse at all: skip the allowance freeze and the optimistic
    // snapshot and run the per-op interpreter directly.
    {
        const std::vector<std::uint32_t> &runLens = prog_->sbRunLens();
        const IAddr headIp = rs.ip;
        const std::uint32_t packed =
            headIp < runLens.size() ? runLens[headIp] : 0;
        const std::uint32_t len = tier == SpanTier::Optimistic
                                      ? packed >> 16
                                      : (packed & 0xffffu);
        if (len == 0) {
            executeOne(now);
            return;
        }
    }

    // Freeze the queue-region allowance: the arrived prefix of the
    // current level's head message. NI deliveries only append past it,
    // so reads inside the allowance are stable for the span's lifetime.
    eagerQLo_ = 1;
    eagerQHi_ = 0;
    if (tier != SpanTier::Exclusive && current_ != Level::Background) {
        const MessageQueue &q = ni_->queue(current_ == Level::P1 ? 1 : 0);
        if (!q.empty()) {
            eagerQLo_ = q.head().start;
            eagerQHi_ = q.head().start + q.head().arrived;
        }
    }

    const bool optimistic = tier == SpanTier::Optimistic;
    if (optimistic) {
        snap_.regs = rs;
        snap_.seg = segCache_[lvl];
        snap_.fetchKnown = fetchKnown_[lvl];
        snap_.fetchWord = lastFetchWord_[lvl];
        snap_.instructions = stats_.instructions;
        snap_.instructionsOs = stats_.instructionsOs;
        snap_.runCycles = stats_.runCycles;
        snap_.cyclesByClass = stats_.cyclesByClass;
        snap_.segCacheHits = stats_.segCacheHits;
        snap_.segCacheMisses = stats_.segCacheMisses;
        const HandlerStats &hs = handlerSlot(lvl);
        snap_.hsInstructions = hs.instructions;
        snap_.hsCycles = hs.cycles;
        undo_.clear();
    }

    eagerGuard_ = tier != SpanTier::Exclusive;
    eagerUndo_ = optimistic;
    const SpanResult r = runSpanOps(now, horizon, spanBudget_, tier);
    eagerGuard_ = false;
    eagerUndo_ = false;

    if (r.executed == 0 && !r.endedInline) {
        // Span head is stop-flagged (SEND/SUSPEND/HALT/GETSP-QLen...),
        // invalid, guard-aborted, or optimistically faulting: execute
        // exactly one op through the per-op interpreter.
        executeOne(now);
        return;
    }

    if (optimistic && !r.endedInline) {
        spanActive_ = true;
        spanLvl_ = lvl;
        spanViolPrioMin_ = violPrioMin;
        spanEntryNow_ = now;
        spanLastStart_ = r.lastStart;
    }
    // Budget adaptation: spans that fill their budget earn a longer
    // one; rollbacks (noteDispatchable) halve it.
    if (r.executed >= spanBudget_ && spanBudget_ < kSpanBudgetMax)
        spanBudget_ *= 2;
}

void
Processor::noteDispatchable(unsigned prio, Cycle now)
{
    if (!spanActive_)
        return;
    if (prio < spanViolPrioMin_)
        return;  // cannot preempt the span's level
    spanActive_ = false;
    // The arrival becomes schedulable at now + 1; ops issued strictly
    // before that were architecturally allowed to run.
    if (now + 1 > spanLastStart_)
        return;  // every span op already issued: the span stands

    // Roll the span back to its entry state...
    const unsigned lvl = spanLvl_;
    sets_[lvl] = snap_.regs;
    segCache_[lvl] = snap_.seg;
    fetchKnown_[lvl] = snap_.fetchKnown;
    lastFetchWord_[lvl] = snap_.fetchWord;
    stats_.instructions = snap_.instructions;
    stats_.instructionsOs = snap_.instructionsOs;
    stats_.runCycles = snap_.runCycles;
    stats_.cyclesByClass = snap_.cyclesByClass;
    stats_.segCacheHits = snap_.segCacheHits;
    stats_.segCacheMisses = snap_.segCacheMisses;
    HandlerStats &hs = handlerSlot(lvl);
    hs.instructions = snap_.hsInstructions;
    hs.cycles = snap_.hsCycles;
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
        mem_->write(it->first, it->second);
    undo_.clear();

    // ...and replay the prefix that issued before the arrival became
    // visible. The replay is deterministic: the queue guard kept the
    // span free of arrival-dependent reads, so identical inputs replay
    // to identical state, and busyUntil_ lands at the preemption point.
    current_ = static_cast<Level>(lvl);
    eagerGuard_ = true;
    eagerUndo_ = false;
    runSpanOps(spanEntryNow_, now + 1, ~0u, SpanTier::Optimistic);
    eagerGuard_ = false;
    spanBudget_ = std::max(spanBudget_ / 2, kSpanBudgetMin);
}

// ---- checkpointing --------------------------------------------------

namespace
{

void
saveRegs(ckpt::Writer &w, const RegisterSet &rs)
{
    for (const Word &word : rs.regs)
        w.word(word);
    w.u32(rs.ip);
    w.b(rs.live);
    w.b(rs.parked);
    w.b(rs.sending);
    w.b(rs.inFault);
    w.u32(rs.faultIp);
    w.word(rs.fval0);
    w.word(rs.fval1);
    for (const Word &word : rs.tmp)
        w.word(word);
}

void
restoreRegs(ckpt::Reader &r, RegisterSet &rs)
{
    for (Word &word : rs.regs)
        word = r.word();
    rs.ip = r.u32();
    rs.live = r.b();
    rs.parked = r.b();
    rs.sending = r.b();
    rs.inFault = r.b();
    rs.faultIp = r.u32();
    rs.fval0 = r.word();
    rs.fval1 = r.word();
    for (Word &word : rs.tmp)
        word = r.word();
}

} // namespace

void
Processor::save(ckpt::Writer &w) const
{
    xlate_.save(w);
    for (const RegisterSet &rs : sets_)
        saveRegs(w, rs);
    w.u8(static_cast<std::uint8_t>(current_));
    w.b(currentValid_);
    w.b(halted_);
    w.u64(busyUntil_);
    for (unsigned l = 0; l < kNumLevels; ++l) {
        w.u32(lastFetchWord_[l]);
        w.b(fetchKnown_[l]);
    }
    w.b(faultPending_);
    w.u8(static_cast<std::uint8_t>(faultKind_));
    w.word(faultVal0_);
    w.word(faultVal1_);
    w.u32(xNext_);
    w.u32(xCost_);
    w.b(xStall_);
    w.u64(xNow_);
    auto saveSegEntry = [&](const SegCacheEntry &e) {
        w.b(e.valid);
        w.b(e.uniform);
        w.u32(e.penalty);
        w.u32(e.desc.base);
        w.u32(e.desc.length);
    };
    for (const auto &level : segCache_)
        for (const SegCacheEntry &e : level)
            saveSegEntry(e);
    w.b(eagerGuard_);
    w.b(eagerAbort_);
    w.b(eagerUndo_);
    w.u32(eagerQLo_);
    w.u32(eagerQHi_);
    saveRegs(w, snap_.regs);
    for (const SegCacheEntry &e : snap_.seg)
        saveSegEntry(e);
    w.b(snap_.fetchKnown);
    w.u32(snap_.fetchWord);
    w.u64(snap_.instructions);
    w.u64(snap_.instructionsOs);
    w.u64(snap_.runCycles);
    for (std::uint64_t c : snap_.cyclesByClass)
        w.u64(c);
    w.u64(snap_.segCacheHits);
    w.u64(snap_.segCacheMisses);
    w.u64(snap_.hsInstructions);
    w.u64(snap_.hsCycles);
    w.u32(static_cast<std::uint32_t>(undo_.size()));
    for (const auto &[addr, word] : undo_) {
        w.u32(addr);
        w.word(word);
    }
    w.b(spanActive_);
    w.u32(spanLvl_);
    w.u32(spanViolPrioMin_);
    w.u64(spanEntryNow_);
    w.u64(spanLastStart_);
    w.u32(spanBudget_);
    saveSegEntry(memSaveEntry_);
    w.u64(memSaveHits_);
    w.u64(memSaveMisses_);
    for (const XlateCacheEntry &e : xlateCache_) {
        w.b(e.valid);
        w.word(e.key);
        w.word(e.value);
    }
    w.u64(xlateCacheVersion_);
    w.b(sleeping_);
    w.u64(sleepStart_);
    for (IAddr e : handlerEntry_)
        w.u32(e);
    w.u32(static_cast<std::uint32_t>(hostOut_.size()));
    for (const Word &word : hostOut_)
        w.word(word);
    for (std::uint64_t c : stats_.cyclesByClass)
        w.u64(c);
    w.u64(stats_.instructions);
    w.u64(stats_.instructionsOs);
    w.u64(stats_.dispatches);
    w.u64(stats_.suspends);
    for (std::uint64_t f : stats_.faults)
        w.u64(f);
    w.u64(stats_.queueStallCycles);
    w.u64(stats_.runCycles);
    w.u64(stats_.idleCycles);
    w.u64(stats_.segCacheHits);
    w.u64(stats_.segCacheMisses);
    w.u64(stats_.xlateCacheHits);
    w.u64(stats_.xlateCacheMisses);
    // Handler map in sorted iaddr order so the image is deterministic
    // regardless of hash-map iteration order.
    std::vector<std::pair<IAddr, const HandlerStats *>> handlers;
    handlers.reserve(handlerStats_.size());
    for (const auto &[iaddr, hs] : handlerStats_)
        handlers.emplace_back(iaddr, &hs);
    std::sort(handlers.begin(), handlers.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u32(static_cast<std::uint32_t>(handlers.size()));
    for (const auto &[iaddr, hs] : handlers) {
        w.u32(iaddr);
        w.u64(hs->dispatches);
        w.u64(hs->instructions);
        w.u64(hs->cycles);
        w.u64(hs->messageWords);
    }
}

void
Processor::restore(ckpt::Reader &r)
{
    xlate_.restore(r);
    for (RegisterSet &rs : sets_)
        restoreRegs(r, rs);
    current_ = static_cast<Level>(r.u8());
    currentValid_ = r.b();
    halted_ = r.b();
    busyUntil_ = r.u64();
    for (unsigned l = 0; l < kNumLevels; ++l) {
        lastFetchWord_[l] = r.u32();
        fetchKnown_[l] = r.b();
    }
    faultPending_ = r.b();
    faultKind_ = static_cast<FaultKind>(r.u8());
    faultVal0_ = r.word();
    faultVal1_ = r.word();
    xNext_ = r.u32();
    xCost_ = r.u32();
    xStall_ = r.b();
    xNow_ = r.u64();
    auto restoreSegEntry = [&](SegCacheEntry &e) {
        e.valid = r.b();
        e.uniform = r.b();
        e.penalty = r.u32();
        e.desc.base = r.u32();
        e.desc.length = r.u32();
    };
    for (auto &level : segCache_)
        for (SegCacheEntry &e : level)
            restoreSegEntry(e);
    eagerGuard_ = r.b();
    eagerAbort_ = r.b();
    eagerUndo_ = r.b();
    eagerQLo_ = r.u32();
    eagerQHi_ = r.u32();
    restoreRegs(r, snap_.regs);
    for (SegCacheEntry &e : snap_.seg)
        restoreSegEntry(e);
    snap_.fetchKnown = r.b();
    snap_.fetchWord = r.u32();
    snap_.instructions = r.u64();
    snap_.instructionsOs = r.u64();
    snap_.runCycles = r.u64();
    for (std::uint64_t &c : snap_.cyclesByClass)
        c = r.u64();
    snap_.segCacheHits = r.u64();
    snap_.segCacheMisses = r.u64();
    snap_.hsInstructions = r.u64();
    snap_.hsCycles = r.u64();
    undo_.clear();
    const std::uint32_t undoCount = r.u32();
    for (std::uint32_t i = 0; i < undoCount; ++i) {
        const Addr addr = r.u32();
        undo_.emplace_back(addr, r.word());
    }
    spanActive_ = r.b();
    spanLvl_ = r.u32();
    spanViolPrioMin_ = r.u32();
    spanEntryNow_ = r.u64();
    spanLastStart_ = r.u64();
    spanBudget_ = r.u32();
    restoreSegEntry(memSaveEntry_);
    memSaveHits_ = r.u64();
    memSaveMisses_ = r.u64();
    for (XlateCacheEntry &e : xlateCache_) {
        e.valid = r.b();
        e.key = r.word();
        e.value = r.word();
    }
    xlateCacheVersion_ = r.u64();
    sleeping_ = r.b();
    sleepStart_ = r.u64();
    for (IAddr &e : handlerEntry_)
        e = r.u32();
    hostOut_.clear();
    const std::uint32_t outCount = r.u32();
    hostOut_.reserve(outCount);
    for (std::uint32_t i = 0; i < outCount; ++i)
        hostOut_.push_back(r.word());
    for (std::uint64_t &c : stats_.cyclesByClass)
        c = r.u64();
    stats_.instructions = r.u64();
    stats_.instructionsOs = r.u64();
    stats_.dispatches = r.u64();
    stats_.suspends = r.u64();
    for (std::uint64_t &f : stats_.faults)
        f = r.u64();
    stats_.queueStallCycles = r.u64();
    stats_.runCycles = r.u64();
    stats_.idleCycles = r.u64();
    stats_.segCacheHits = r.u64();
    stats_.segCacheMisses = r.u64();
    stats_.xlateCacheHits = r.u64();
    stats_.xlateCacheMisses = r.u64();
    handlerStats_.clear();
    // Map values move on rehash; the cached per-level slots re-resolve
    // lazily from handlerEntry_ (handlerSlot()).
    handlerSlot_.fill(nullptr);
    const std::uint32_t handlerCount = r.u32();
    for (std::uint32_t i = 0; i < handlerCount; ++i) {
        const IAddr iaddr = r.u32();
        HandlerStats &hs = handlerStats_[iaddr];
        hs.dispatches = r.u64();
        hs.instructions = r.u64();
        hs.cycles = r.u64();
        hs.messageWords = r.u64();
    }
}

} // namespace jmsim
