#include "mdp/processor.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

void
Processor::init(NodeId id, const MeshDims &dims, const ProcessorConfig &config,
                NodeMemory *mem, NetworkInterface *ni, const Program *prog)
{
    id_ = id;
    dims_ = dims;
    config_ = config;
    mem_ = mem;
    ni_ = ni;
    prog_ = prog;
    decoded_ = prog->decodedOps().data();
    decodedCount_ = prog->decodedOps().size();
    fetchKnown_.fill(false);
    handlerSlot_.fill(nullptr);
}

void
Processor::boot(IAddr entry)
{
    const unsigned lvl = static_cast<unsigned>(Level::Background);
    RegisterSet &bg = sets_[lvl];
    bg.live = true;
    bg.parked = false;
    bg.ip = entry;
    handlerEntry_[lvl] = entry;
    HandlerStats &hs = handlerStats_[entry];
    hs.dispatches += 1;
    handlerSlot_[lvl] = &hs;
}

void
Processor::resetStats()
{
    stats_ = ProcessorStats{};
    handlerStats_.clear();
    handlerSlot_.fill(nullptr);
    xlate_.resetStats();
    // Re-seed the dispatch that brought in each still-live handler so a
    // post-reset read sees the running threads accounted the same way
    // boot() seeds the background handler.
    for (unsigned l = 0; l < kNumLevels; ++l) {
        if (sets_[l].live) {
            HandlerStats &hs = handlerStats_[handlerEntry_[l]];
            hs.dispatches += 1;
            handlerSlot_[l] = &hs;
        }
    }
}

void
Processor::registerCounters(CounterRegistry &reg)
{
    reg.addCounter("proc.instructions", &stats_.instructions);
    reg.addCounter("proc.instructions_os", &stats_.instructionsOs);
    reg.addCounter("proc.dispatches", &stats_.dispatches);
    reg.addCounter("proc.suspends", &stats_.suspends);
    reg.addCounter("proc.queue_stall_cycles", &stats_.queueStallCycles);
    reg.addCounter("proc.run_cycles", &stats_.runCycles);
    reg.addCounter("proc.idle_cycles", &stats_.idleCycles);
    reg.addCounter("proc.seg_cache_hits", &stats_.segCacheHits);
    reg.addCounter("proc.seg_cache_misses", &stats_.segCacheMisses);
    reg.addCounter("proc.xlate_cache_hits", &stats_.xlateCacheHits);
    reg.addCounter("proc.xlate_cache_misses", &stats_.xlateCacheMisses);
    for (unsigned c = 0;
         c < static_cast<unsigned>(StatClass::NumClasses); ++c) {
        reg.addCounter(std::string("proc.cycles.") +
                           statClassName(static_cast<StatClass>(c)),
                       &stats_.cyclesByClass[c]);
    }
    for (unsigned f = 0; f < kNumFaults; ++f) {
        reg.addCounter(std::string("proc.faults.") +
                           faultName(static_cast<FaultKind>(f)),
                       &stats_.faults[f]);
    }
}

void
Processor::invalidateSegCache()
{
    for (auto &level : segCache_) {
        for (auto &e : level)
            e.valid = false;
    }
}

bool
Processor::runnable() const
{
    for (unsigned l = 0; l < kNumLevels; ++l) {
        const RegisterSet &rs = sets_[l];
        if (rs.live && !(l == 0 && rs.parked))
            return true;
    }
    return ni_->queue(0).headDispatchable() ||
           ni_->queue(1).headDispatchable();
}

void
Processor::noteWake(Cycle now)
{
    if (sleeping_) {
        stats_.idleCycles += now - sleepStart_;
        attributeIdle(now - sleepStart_);
        sleeping_ = false;
    }
}

void
Processor::noteSleep(Cycle now)
{
    if (!sleeping_ && !halted_) {
        sleeping_ = true;
        sleepStart_ = now;
    }
}

void
Processor::attribute(StatClass cls, unsigned cycles)
{
    stats_.cyclesByClass[static_cast<std::size_t>(cls)] += cycles;
    stats_.runCycles += cycles;
}

void
Processor::attributeIdle(Cycle cycles)
{
    stats_.cyclesByClass[static_cast<std::size_t>(StatClass::Idle)] += cycles;
}

void
Processor::die(const std::string &msg, IAddr iaddr)
{
    std::string what = "node " + std::to_string(id_) + " @ iaddr " +
                       std::to_string(iaddr) + " (near '" +
                       prog_->nearestLabel(iaddr) + "'): " + msg;
    if (prog_->validIaddr(iaddr))
        what += " [" + prog_->fetch(iaddr).toString() + "]";
    fatal(what);
}

void
Processor::selectLevel(Cycle now)
{
    // An open send sequence is atomic: stay on its level until the
    // SEND*E instruction closes the message.
    for (unsigned l = kNumLevels; l-- > 0;) {
        if (sets_[l].live && sets_[l].sending) {
            current_ = static_cast<Level>(l);
            currentValid_ = true;
            return;
        }
    }

    // A live fault handler is never preempted.
    for (unsigned l = kNumLevels; l-- > 0;) {
        if (sets_[l].live && sets_[l].inFault) {
            current_ = static_cast<Level>(l);
            currentValid_ = true;
            return;
        }
    }

    for (int prio = 1; prio >= 0; --prio) {
        const Level level = prio ? Level::P1 : Level::P0;
        const unsigned lvl = static_cast<unsigned>(level);
        RegisterSet &rs = sets_[lvl];
        if (rs.live) {
            current_ = level;
            currentValid_ = true;
            return;
        }
        MessageQueue &q = ni_->queue(static_cast<unsigned>(prio));
        if (q.headDispatchable()) {
            // Hardware dispatch: load IP from the header, point A3 at
            // the message, fetch the first instruction — 4 cycles.
            const QueuedMessage &m = q.head();
            const MsgHeader hdr = MsgHeader::decode(mem_->read(m.start));
            rs.live = true;
            rs.ip = hdr.handlerIp;
            rs[reg::A3] = SegDesc{m.start, m.length}.encode();
            segCache_[lvl][reg::A3 & 3u].valid = false;
            invalidateFetch(lvl);
            current_ = level;
            currentValid_ = true;
            busyUntil_ = now + config_.dispatchCycles;
            attribute(StatClass::Comm, config_.dispatchCycles);
            stats_.dispatches += 1;
            if (kTraceCompiledIn && tracer_ &&
                tracer_->wants(TraceKind::Dispatch)) {
                TraceEvent ev;
                ev.cycle = now;
                ev.node = id_;
                ev.kind = TraceKind::Dispatch;
                ev.arg8 = static_cast<std::uint8_t>(prio);
                ev.a0 = hdr.handlerIp;
                ev.a1 = q.messageCount();
                tracer_->record(ev);
            }
            handlerEntry_[lvl] = hdr.handlerIp;
            HandlerStats &hs = handlerStats_[hdr.handlerIp];
            hs.dispatches += 1;
            hs.messageWords += m.length;
            handlerSlot_[lvl] = &hs;
            return;
        }
    }

    RegisterSet &bg = sets_[static_cast<unsigned>(Level::Background)];
    if (bg.live && !bg.parked) {
        current_ = Level::Background;
        currentValid_ = true;
        return;
    }
    currentValid_ = false;
}

bool
Processor::step(Cycle now)
{
    if (halted_)
        return false;
    if (busyUntil_ > now)
        return true;
    selectLevel(now);
    if (!currentValid_)
        return false;
    if (busyUntil_ > now)
        return true;  // this cycle went to a dispatch
    executeOne(now);
    return true;
}

bool
Processor::aluOperand(std::uint8_t r, std::int32_t &out)
{
    const Word &w = cur()[r];
    if (w.isFuture()) {
        faultPending_ = true;
        faultKind_ = FaultKind::FutUse;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    if (w.tag != Tag::Int && w.tag != Tag::Bool) {
        faultPending_ = true;
        faultKind_ = FaultKind::TagMismatch;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    out = w.asInt();
    return true;
}

bool
Processor::boolOperand(std::uint8_t r, bool &out)
{
    const Word &w = cur()[r];
    if (w.isFuture()) {
        faultPending_ = true;
        faultKind_ = FaultKind::FutUse;
        faultVal0_ = w;
        faultVal1_ = Word::makeInt(r);
        return false;
    }
    out = w.bits != 0;
    return true;
}

bool
Processor::memAddress(const DecodedOp &op, bool indexed, Addr &addr,
                      unsigned &penalty)
{
    const unsigned lvl = static_cast<unsigned>(current_);
    SegCacheEntry &e = segCache_[lvl][op.abase & 3u];
    const Word &aw = cur()[4 + op.abase];
    if (!e.valid) {
        // Miss: decode the descriptor and classify the segment. The tag
        // check only needs to run here — any write to the address
        // register invalidates this entry, so a valid entry proves the
        // register still holds the decoded Addr word.
        if (aw.tag != Tag::Addr) {
            faultPending_ = true;
            faultKind_ = FaultKind::TagMismatch;
            faultVal0_ = aw;
            faultVal1_ = Word::makeInt(4 + op.abase);
            return false;
        }
        stats_.segCacheMisses += 1;
        e.desc = SegDesc::decode(aw);
        e.uniform = false;
        e.penalty = 0;
        if (e.desc.length > 0) {
            const Addr first = e.desc.base;
            const Addr last = e.desc.base + (e.desc.length - 1);
            if (last >= first && mem_->isValid(first) && mem_->isValid(last) &&
                mem_->isInternal(first) == mem_->isInternal(last)) {
                // Whole segment inside one region: hits can skip the
                // per-access validity and penalty checks.
                e.uniform = true;
                e.penalty = mem_->accessPenalty(first);
            }
        }
        e.valid = true;
    } else {
        stats_.segCacheHits += 1;
    }
    std::int32_t off;
    if (indexed) {
        if (!aluOperand(op.rb, off))
            return false;
    } else {
        off = op.imm;
    }
    if (off < 0 || !e.desc.contains(static_cast<std::uint32_t>(off))) {
        faultPending_ = true;
        faultKind_ = FaultKind::BoundsError;
        faultVal0_ = Word::makeInt(off);
        faultVal1_ = aw;
        return false;
    }
    addr = e.desc.base + static_cast<Addr>(off);
    if (e.uniform) {
        penalty = e.penalty;
        return true;
    }
    if (!mem_->isValid(addr)) {
        faultPending_ = true;
        faultKind_ = FaultKind::BadAddress;
        faultVal0_ = Word::makeInt(static_cast<std::int32_t>(addr));
        faultVal1_ = aw;
        return false;
    }
    penalty = mem_->accessPenalty(addr);
    return true;
}

bool
Processor::queueWordReady(Addr addr)
{
    if (current_ == Level::Background)
        return true;
    const unsigned prio = current_ == Level::P1 ? 1 : 0;
    const MessageQueue &q = ni_->queue(prio);
    if (q.empty())
        return true;
    const QueuedMessage &m = q.head();
    if (addr < m.start || addr >= m.start + m.length)
        return true;
    return addr < m.start + m.arrived;
}

void
Processor::raiseFault(FaultKind kind, Word fval0, Word fval1)
{
    faultPending_ = true;
    faultKind_ = kind;
    faultVal0_ = fval0;
    faultVal1_ = fval1;
}

bool
Processor::xlateCached(Word key, Word &out)
{
    if (xlateCacheVersion_ != xlate_.version()) {
        // The table changed (ENTER / invalidate / clear): every cached
        // translation is suspect, including ones evicted from the
        // set-associative table itself.
        for (auto &e : xlateCache_)
            e.valid = false;
        xlateCacheVersion_ = xlate_.version();
    }
    XlateCacheEntry &e =
        xlateCache_[(key.bits ^ (static_cast<std::uint64_t>(key.tag) << 3)) &
                    (kXlateCacheSize - 1)];
    if (e.valid && e.key == key) {
        stats_.xlateCacheHits += 1;
        // A front hit is architecturally a table hit: keep XlateStats
        // identical to the uncached path.
        xlate_.noteFrontHit();
        out = e.value;
        return true;
    }
    stats_.xlateCacheMisses += 1;
    return false;
}

void
Processor::xlateFill(Word key, Word value)
{
    XlateCacheEntry &e =
        xlateCache_[(key.bits ^ (static_cast<std::uint64_t>(key.tag) << 3)) &
                    (kXlateCacheSize - 1)];
    e.valid = true;
    e.key = key;
    e.value = value;
}

HandlerStats &
Processor::handlerSlot(unsigned lvl)
{
    // unordered_map element references are stable, so the pointer stays
    // good until the map is cleared (resetStats nulls the slots).
    if (!handlerSlot_[lvl])
        handlerSlot_[lvl] = &handlerStats_[handlerEntry_[lvl]];
    return *handlerSlot_[lvl];
}

/**
 * The per-opcode handlers. Each runs with the per-instruction state
 * already primed by executeOne(): xNext_ = fall-through successor,
 * xCost_ = base + fetch cost, xStall_ = false, faultPending_ = false.
 * A handler either completes (possibly redirecting xNext_ / adding to
 * xCost_), sets xStall_ to retry next cycle, or records a fault.
 */
struct Processor::Exec
{
    using Fn = void (*)(Processor &, const DecodedOp &);

    static const std::array<Fn, static_cast<std::size_t>(
                                    Opcode::NumOpcodes) + 1> table;

    // ---- scalar op kernels (match the original switch bit-for-bit) ----
    static std::int32_t fnAdd(std::int32_t a, std::int32_t b) { return a + b; }
    static std::int32_t fnSub(std::int32_t a, std::int32_t b) { return a - b; }
    static std::int32_t fnMul(std::int32_t a, std::int32_t b) { return a * b; }
    static std::int32_t fnAnd(std::int32_t a, std::int32_t b) { return a & b; }
    static std::int32_t fnOr(std::int32_t a, std::int32_t b) { return a | b; }
    static std::int32_t fnXor(std::int32_t a, std::int32_t b) { return a ^ b; }

    static std::int32_t
    fnAsh(std::int32_t a, std::int32_t b)
    {
        return b >= 0 ? (b > 31 ? 0 : a << b)
                      : (-b > 31 ? (a < 0 ? -1 : 0) : a >> -b);
    }

    static std::int32_t
    fnLsh(std::int32_t a, std::int32_t b)
    {
        return b >= 0 ? (b > 31 ? 0 : a << b)
                      : (-b > 31 ? 0
                                 : static_cast<std::int32_t>(
                                       static_cast<std::uint32_t>(a) >> -b));
    }

    static bool fnLt(std::int32_t a, std::int32_t b) { return a < b; }
    static bool fnLe(std::int32_t a, std::int32_t b) { return a <= b; }
    static bool fnGt(std::int32_t a, std::int32_t b) { return a > b; }
    static bool fnGe(std::int32_t a, std::int32_t b) { return a >= b; }
    static bool fnEq(std::int32_t a, std::int32_t b) { return a == b; }
    static bool fnNe(std::int32_t a, std::int32_t b) { return a != b; }

    // ---- control ----

    static void
    nop(Processor &, const DecodedOp &)
    {
    }

    static void
    halt(Processor &p, const DecodedOp &)
    {
        p.halted_ = true;
    }

    static void
    suspend(Processor &p, const DecodedOp &)
    {
        RegisterSet &rs = p.cur();
        p.stats_.suspends += 1;
        if (p.current_ == Level::Background) {
            rs.parked = true;
            rs.inFault = false;
        } else {
            MessageQueue &q = p.ni_->queue(p.current_ == Level::P1 ? 1 : 0);
            if (!q.head().complete()) {
                p.xStall_ = true;  // wait for the worm's tail before freeing
                p.stats_.suspends -= 1;
                return;
            }
            q.pop();
            rs.live = false;
            rs.inFault = false;  // cfut handlers suspend to end a fault
        }
        if (kTraceCompiledIn && p.tracer_ &&
            p.tracer_->wants(TraceKind::Suspend)) {
            TraceEvent ev;
            ev.cycle = p.xNow_;
            ev.node = p.id_;
            ev.kind = TraceKind::Suspend;
            ev.arg8 = static_cast<std::uint8_t>(p.current_);
            p.tracer_->record(ev);
        }
    }

    static void
    rfe(Processor &p, const DecodedOp &)
    {
        RegisterSet &rs = p.cur();
        if (!rs.inFault)
            p.die("RFE outside a fault handler", rs.ip);
        p.xNext_ = rs.faultIp;
        rs.inFault = false;
        p.invalidateFetch(static_cast<unsigned>(p.current_));
    }

    static void
    br(Processor &p, const DecodedOp &op)
    {
        p.xNext_ = op.target;
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    template <bool OnTrue>
    static void
    condBranch(Processor &p, const DecodedOp &op)
    {
        bool cond;
        if (!p.boolOperand(op.rd, cond))
            return;
        if (cond == OnTrue) {
            p.xNext_ = op.target;
            p.xCost_ += p.config_.takenBranchPenalty;
        }
    }

    static void
    call(Processor &p, const DecodedOp &op)
    {
        // Wide format: op.imm is the precomputed return point past the
        // literal word; op.target is the resolved entry.
        p.setReg(p.cur(), op.rd, Word::makeIp(static_cast<IAddr>(op.imm)));
        p.xNext_ = op.target;
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    static void
    jmp(Processor &p, const DecodedOp &op)
    {
        const Word &t = p.cur()[op.rd];
        if (t.tag != Tag::Ip && t.tag != Tag::Int) {
            p.raiseFault(FaultKind::TagMismatch, t, Word::makeInt(op.rd));
            return;
        }
        p.xNext_ = static_cast<IAddr>(t.bits);
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    // ---- moves ----

    static void
    move(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.setReg(rs, op.rd, rs[op.ra]);
    }

    static void
    movei(Processor &p, const DecodedOp &op)
    {
        p.setReg(p.cur(), op.rd, Word::makeInt(op.imm));
    }

    static void
    ldl(Processor &p, const DecodedOp &op)
    {
        // xNext_ already skips the filler slot and the literal word.
        p.setReg(p.cur(), op.rd, op.literal);
    }

    // ---- memory ----

    template <bool Indexed, bool NoTrap>
    static void
    load(Processor &p, const DecodedOp &op)
    {
        Addr addr = 0;
        unsigned penalty = 0;
        if (!p.memAddress(op, Indexed, addr, penalty))
            return;
        if (!p.queueWordReady(addr)) {
            p.xStall_ = true;
            return;
        }
        p.xCost_ += penalty;
        const Word v = p.mem_->read(addr);
        if (!NoTrap && v.tag == Tag::Cfut) {
            p.raiseFault(FaultKind::CfutRead,
                         Word::makeInt(static_cast<std::int32_t>(addr)), v);
            return;
        }
        p.setReg(p.cur(), op.rd, v);
    }

    template <bool Indexed>
    static void
    store(Processor &p, const DecodedOp &op)
    {
        Addr addr = 0;
        unsigned penalty = 0;
        if (!p.memAddress(op, Indexed, addr, penalty))
            return;
        p.xCost_ += penalty;
        p.mem_->write(addr, p.cur()[op.rd]);
    }

    template <std::int32_t (*F)(std::int32_t, std::int32_t)>
    static void
    aluMem(Processor &p, const DecodedOp &op)
    {
        Addr addr = 0;
        unsigned penalty = 0;
        if (!p.memAddress(op, false, addr, penalty))
            return;
        if (!p.queueWordReady(addr)) {
            p.xStall_ = true;
            return;
        }
        p.xCost_ += penalty;
        const Word m = p.mem_->read(addr);
        if (m.tag == Tag::Cfut) {
            p.raiseFault(FaultKind::CfutRead,
                         Word::makeInt(static_cast<std::int32_t>(addr)), m);
            return;
        }
        if (m.tag == Tag::Fut) {
            p.raiseFault(FaultKind::FutUse, m, Word::makeInt(op.rd));
            return;
        }
        if (m.tag != Tag::Int && m.tag != Tag::Bool) {
            p.raiseFault(FaultKind::TagMismatch, m, Word::makeInt(op.rd));
            return;
        }
        std::int32_t a;
        if (!p.aluOperand(op.rd, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(F(a, m.asInt())));
    }

    // ---- arithmetic / logic ----

    template <std::int32_t (*F)(std::int32_t, std::int32_t)>
    static void
    aluRR(Processor &p, const DecodedOp &op)
    {
        std::int32_t a, b;
        if (!p.aluOperand(op.ra, a) || !p.aluOperand(op.rb, b))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(F(a, b)));
    }

    template <std::int32_t (*F)(std::int32_t, std::int32_t)>
    static void
    aluRI(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(F(a, op.imm)));
    }

    static void
    notOp(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(~a));
    }

    static void
    negOp(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeInt(-a));
    }

    // ---- comparisons ----

    template <bool WantEq>
    static void
    eqNe(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word &wa = rs[op.ra];
        const Word &wb = rs[op.rb];
        if (wa.isFuture() || wb.isFuture()) {
            p.raiseFault(FaultKind::FutUse, wa.isFuture() ? wa : wb,
                         Word::makeInt(op.rd));
            return;
        }
        const bool equal = wa == wb;
        p.setReg(rs, op.rd, Word::makeBool(WantEq ? equal : !equal));
    }

    template <bool (*F)(std::int32_t, std::int32_t)>
    static void
    cmpRR(Processor &p, const DecodedOp &op)
    {
        std::int32_t a, b;
        if (!p.aluOperand(op.ra, a) || !p.aluOperand(op.rb, b))
            return;
        p.setReg(p.cur(), op.rd, Word::makeBool(F(a, b)));
    }

    template <bool (*F)(std::int32_t, std::int32_t)>
    static void
    cmpRI(Processor &p, const DecodedOp &op)
    {
        std::int32_t a;
        if (!p.aluOperand(op.ra, a))
            return;
        p.setReg(p.cur(), op.rd, Word::makeBool(F(a, op.imm)));
    }

    // ---- network ----

    template <unsigned Words, unsigned Prio, bool End>
    static void
    send(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        SendResult res;
        if constexpr (Words == 2)
            res = p.ni_->sendWords2(Prio, rs[op.rd], rs[op.ra], End, p.xNow_);
        else
            res = p.ni_->sendWord(Prio, rs[op.rd], End, p.xNow_);
        switch (res) {
          case SendResult::Ok:
            rs.sending = !End;
            break;
          case SendResult::Full:
            p.raiseFault(FaultKind::SendFault,
                         Word::makeInt(static_cast<std::int32_t>(Prio)),
                         Word::makeNil());
            break;
          case SendResult::BadDest:
            p.raiseFault(FaultKind::BadAddress, rs[op.rd], Word::makeNil());
            break;
          case SendResult::BadFormat:
            p.raiseFault(FaultKind::SendFormat, rs[op.rd], Word::makeNil());
            break;
        }
    }

    // ---- tags ----

    static void
    rtag(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.setReg(rs, op.rd,
                 Word::makeInt(static_cast<std::int32_t>(rs[op.ra].tag)));
    }

    static void
    wtag(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.setReg(rs, op.rd,
                 Word{rs[op.ra].bits, static_cast<Tag>(op.imm & 0xf)});
    }

    static void
    check(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        if (rs[op.rd].tag != static_cast<Tag>(op.imm & 0xf))
            p.raiseFault(FaultKind::TagMismatch, rs[op.rd],
                         Word::makeInt(op.imm));
    }

    // ---- segments / headers / translation ----

    static void
    setseg(Processor &p, const DecodedOp &op)
    {
        std::int32_t a, b;
        if (!p.aluOperand(op.ra, a) || !p.aluOperand(op.rb, b))
            return;
        SegDesc desc;
        desc.base = static_cast<Addr>(a);
        desc.length = static_cast<std::uint32_t>(b);
        if (a < 0 || b < 0 || !desc.encodable()) {
            p.raiseFault(FaultKind::BoundsError, Word::makeInt(a),
                         Word::makeInt(b));
            return;
        }
        p.setReg(p.cur(), op.rd, desc.encode());
    }

    static void
    mkhdr(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word &ipw = rs[op.ra];
        if (ipw.tag != Tag::Ip && ipw.tag != Tag::Int) {
            p.raiseFault(FaultKind::TagMismatch, ipw, Word::makeInt(op.ra));
            return;
        }
        std::int32_t b;
        if (!p.aluOperand(op.rb, b))
            return;
        MsgHeader hdr;
        hdr.handlerIp = static_cast<IAddr>(ipw.bits);
        hdr.length = static_cast<std::uint32_t>(b);
        if (b < 0 || hdr.handlerIp > MsgHeader::kMaxIp ||
            hdr.length > MsgHeader::kMaxLength) {
            p.raiseFault(FaultKind::BoundsError, ipw, Word::makeInt(b));
            return;
        }
        p.setReg(rs, op.rd, hdr.encode());
    }

    static void
    enter(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        p.xlate_.enter(rs[op.rd], rs[op.ra]);
    }

    static void
    xlateOp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word key = rs[op.ra];
        Word v;
        if (p.xlateCached(key, v)) {
            p.setReg(rs, op.rd, v);
            return;
        }
        const auto hit = p.xlate_.lookup(key);
        if (!hit) {
            p.raiseFault(FaultKind::XlateMiss, key, Word::makeNil());
            return;
        }
        p.xlateFill(key, *hit);
        p.setReg(rs, op.rd, *hit);
    }

    static void
    probe(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const Word key = rs[op.ra];
        Word v;
        if (p.xlateCached(key, v)) {
            p.setReg(rs, op.rd, v);
            return;
        }
        const auto hit = p.xlate_.lookup(key);
        if (hit)
            p.xlateFill(key, *hit);
        p.setReg(rs, op.rd, hit ? *hit : Word::makeNil());
    }

    // ---- special registers ----

    static void
    getsp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        Word v;
        switch (static_cast<SpecialReg>(op.imm)) {
          case SpecialReg::NodeId:
            v = Word::makeInt(static_cast<std::int32_t>(p.id_));
            break;
          case SpecialReg::Nnr:
            v = Word::makeInt(static_cast<std::int32_t>(
                p.dims_.toCoord(p.id_).pack()));
            break;
          case SpecialReg::Nodes:
            v = Word::makeInt(static_cast<std::int32_t>(p.dims_.nodes()));
            break;
          case SpecialReg::Dims:
            v = Word::makeInt(static_cast<std::int32_t>(p.dims_.pack()));
            break;
          case SpecialReg::CycleLo:
            v = Word::makeInt(
                static_cast<std::int32_t>(p.xNow_ & 0xffffffffu));
            break;
          case SpecialReg::CycleHi:
            v = Word::makeInt(static_cast<std::int32_t>(p.xNow_ >> 32));
            break;
          case SpecialReg::QLen0:
            v = Word::makeInt(static_cast<std::int32_t>(
                p.ni_->queue(0).wordsUsed()));
            break;
          case SpecialReg::QLen1:
            v = Word::makeInt(static_cast<std::int32_t>(
                p.ni_->queue(1).wordsUsed()));
            break;
          case SpecialReg::Fval0:
            v = rs.fval0;
            break;
          case SpecialReg::Fval1:
            v = rs.fval1;
            break;
          case SpecialReg::Fip:
            v = Word::makeIp(rs.faultIp);
            break;
          case SpecialReg::Tmp0:
          case SpecialReg::Tmp1:
          case SpecialReg::Tmp2:
          case SpecialReg::Tmp3:
            v = rs.tmp[op.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)];
            break;
          default:
            p.die("GETSP of unknown special register", rs.ip);
        }
        p.setReg(rs, op.rd, v);
    }

    static void
    setsp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        const auto spec = static_cast<SpecialReg>(op.imm);
        if (spec < SpecialReg::Tmp0 || spec > SpecialReg::Tmp3)
            p.die("SETSP target must be a fault temporary", rs.ip);
        rs.tmp[op.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)] =
            rs[op.rd];
    }

    static void
    jsp(Processor &p, const DecodedOp &op)
    {
        RegisterSet &rs = p.cur();
        Word t;
        switch (static_cast<SpecialReg>(op.imm)) {
          case SpecialReg::Fip:
            t = Word::makeIp(rs.faultIp);
            break;
          case SpecialReg::Tmp0:
          case SpecialReg::Tmp1:
          case SpecialReg::Tmp2:
          case SpecialReg::Tmp3:
            t = rs.tmp[op.imm - static_cast<std::int32_t>(SpecialReg::Tmp0)];
            break;
          default:
            p.die("JSP source must be FIP or a fault temporary", rs.ip);
        }
        if (t.tag != Tag::Ip && t.tag != Tag::Int) {
            p.raiseFault(FaultKind::TagMismatch, t, Word::makeInt(op.imm));
            return;
        }
        p.xNext_ = static_cast<IAddr>(t.bits);
        p.xCost_ += p.config_.takenBranchPenalty;
    }

    static void
    out(Processor &p, const DecodedOp &op)
    {
        p.hostOut_.push_back(p.cur()[op.rd]);
    }

    static void
    badOp(Processor &p, const DecodedOp &)
    {
        p.die("corrupt opcode", p.cur().ip);
    }

    static std::array<Fn, static_cast<std::size_t>(Opcode::NumOpcodes) + 1>
    makeTable()
    {
        std::array<Fn, static_cast<std::size_t>(Opcode::NumOpcodes) + 1> t{};
        t.fill(&badOp);
        const auto set = [&t](Opcode op, Fn fn) {
            t[static_cast<std::size_t>(op)] = fn;
        };
        set(Opcode::Nop, &nop);
        set(Opcode::Halt, &halt);
        set(Opcode::Suspend, &suspend);
        set(Opcode::Rfe, &rfe);
        set(Opcode::Br, &br);
        set(Opcode::Bt, &condBranch<true>);
        set(Opcode::Bf, &condBranch<false>);
        set(Opcode::Call, &call);
        set(Opcode::Jmp, &jmp);
        set(Opcode::Move, &move);
        set(Opcode::Movei, &movei);
        set(Opcode::Ldl, &ldl);
        set(Opcode::Ld, &load<false, false>);
        set(Opcode::Ldx, &load<true, false>);
        set(Opcode::Ldraw, &load<false, true>);
        set(Opcode::Ldrawx, &load<true, true>);
        set(Opcode::St, &store<false>);
        set(Opcode::Stx, &store<true>);
        set(Opcode::Addm, &aluMem<&fnAdd>);
        set(Opcode::Subm, &aluMem<&fnSub>);
        set(Opcode::Andm, &aluMem<&fnAnd>);
        set(Opcode::Orm, &aluMem<&fnOr>);
        set(Opcode::Xorm, &aluMem<&fnXor>);
        set(Opcode::Add, &aluRR<&fnAdd>);
        set(Opcode::Sub, &aluRR<&fnSub>);
        set(Opcode::Mul, &aluRR<&fnMul>);
        set(Opcode::Ash, &aluRR<&fnAsh>);
        set(Opcode::Lsh, &aluRR<&fnLsh>);
        set(Opcode::And, &aluRR<&fnAnd>);
        set(Opcode::Or, &aluRR<&fnOr>);
        set(Opcode::Xor, &aluRR<&fnXor>);
        set(Opcode::Not, &notOp);
        set(Opcode::Neg, &negOp);
        set(Opcode::Addi, &aluRI<&fnAdd>);
        set(Opcode::Ashi, &aluRI<&fnAsh>);
        set(Opcode::Lshi, &aluRI<&fnLsh>);
        set(Opcode::Andi, &aluRI<&fnAnd>);
        set(Opcode::Ori, &aluRI<&fnOr>);
        set(Opcode::Xori, &aluRI<&fnXor>);
        set(Opcode::Eq, &eqNe<true>);
        set(Opcode::Ne, &eqNe<false>);
        set(Opcode::Lt, &cmpRR<&fnLt>);
        set(Opcode::Le, &cmpRR<&fnLe>);
        set(Opcode::Gt, &cmpRR<&fnGt>);
        set(Opcode::Ge, &cmpRR<&fnGe>);
        set(Opcode::Eqi, &cmpRI<&fnEq>);
        set(Opcode::Nei, &cmpRI<&fnNe>);
        set(Opcode::Lti, &cmpRI<&fnLt>);
        set(Opcode::Lei, &cmpRI<&fnLe>);
        set(Opcode::Gti, &cmpRI<&fnGt>);
        set(Opcode::Gei, &cmpRI<&fnGe>);
        set(Opcode::Send0, &send<1, 0, false>);
        set(Opcode::Send0e, &send<1, 0, true>);
        set(Opcode::Send20, &send<2, 0, false>);
        set(Opcode::Send20e, &send<2, 0, true>);
        set(Opcode::Send1, &send<1, 1, false>);
        set(Opcode::Send1e, &send<1, 1, true>);
        set(Opcode::Send21, &send<2, 1, false>);
        set(Opcode::Send21e, &send<2, 1, true>);
        set(Opcode::Rtag, &rtag);
        set(Opcode::Wtag, &wtag);
        set(Opcode::Check, &check);
        set(Opcode::Setseg, &setseg);
        set(Opcode::Mkhdr, &mkhdr);
        set(Opcode::Enter, &enter);
        set(Opcode::Xlate, &xlateOp);
        set(Opcode::Probe, &probe);
        set(Opcode::Getsp, &getsp);
        set(Opcode::Setsp, &setsp);
        set(Opcode::Jsp, &jsp);
        set(Opcode::Out, &out);
        return t;
    }
};

const std::array<Processor::Exec::Fn,
                 static_cast<std::size_t>(Opcode::NumOpcodes) + 1>
    Processor::Exec::table = Processor::Exec::makeTable();

void
Processor::executeOne(Cycle now)
{
    RegisterSet &rs = cur();
    const unsigned lvl = static_cast<unsigned>(current_);
    const IAddr ip = rs.ip;
    if (ip >= decodedCount_ || !decoded_[ip].valid)
        die("execution reached a non-code address", ip);
    const DecodedOp &op = decoded_[ip];
    if (trace_) {
        std::fprintf(stderr,
                     "[n%u c%llu L%u i%u %s] %-28s R0=%s R1=%s R2=%s R3=%s\n",
                     id_, static_cast<unsigned long long>(now),
                     static_cast<unsigned>(current_), ip,
                     prog_->nearestLabel(ip).c_str(),
                     prog_->fetch(ip).toString().c_str(),
                     rs[0].toString().c_str(), rs[1].toString().c_str(),
                     rs[2].toString().c_str(), rs[3].toString().c_str());
    }

    xCost_ = op.baseCycles;

    // Instruction fetch: internal fetches overlap execution; a new
    // external code word costs a DRAM access.
    if (!fetchKnown_[lvl] || lastFetchWord_[lvl] != op.wordAddr) {
        fetchKnown_[lvl] = true;
        lastFetchWord_[lvl] = op.wordAddr;
        if (op.ememWord)
            xCost_ += config_.ememFetchCycles;
    }

    xNext_ = op.nextIp;
    xStall_ = false;
    xNow_ = now;
    faultPending_ = false;

    Exec::table[op.handler](*this, op);

    if (faultPending_) {
        stats_.faults[static_cast<unsigned>(faultKind_)] += 1;
        if (kTraceCompiledIn && tracer_ &&
            tracer_->wants(TraceKind::Fault)) {
            TraceEvent ev;
            ev.cycle = now;
            ev.node = id_;
            ev.kind = TraceKind::Fault;
            ev.arg8 = static_cast<std::uint8_t>(faultKind_);
            ev.a0 = ip;
            tracer_->record(ev);
        }
        if (rs.inFault)
            die(std::string("fault '") + faultName(faultKind_) +
                    "' inside a fault handler",
                ip);
        if (!config_.hasVector[static_cast<unsigned>(faultKind_)])
            die(std::string("unhandled fault '") + faultName(faultKind_) +
                    "' (fval0=" + faultVal0_.toString() + ")",
                ip);
        rs.inFault = true;
        rs.faultIp = ip;
        rs.fval0 = faultVal0_;
        rs.fval1 = faultVal1_;
        rs.ip = config_.vectors[static_cast<unsigned>(faultKind_)];
        invalidateFetch(lvl);
        xCost_ += config_.faultEntryCycles;
        attribute(faultStatClass(faultKind_), xCost_);
        busyUntil_ = now + xCost_;
        return;
    }

    if (xStall_) {
        stats_.queueStallCycles += 1;
        attribute(StatClass::Comm, 1);
        busyUntil_ = now + 1;
        return;
    }

    rs.ip = xNext_;
    busyUntil_ = now + xCost_;
    stats_.instructions += 1;
    if (op.countsOs)
        stats_.instructionsOs += 1;
    attribute(op.effClass, xCost_);

    HandlerStats &hs = handlerSlot(lvl);
    hs.instructions += 1;
    hs.cycles += xCost_;
}

} // namespace jmsim
