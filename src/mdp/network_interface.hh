/**
 * @file
 * The MDP network interface: send buffers and delivery logic.
 *
 * Sending: the SEND instruction family writes words into a per-priority
 * send buffer at up to 2 words/cycle. The first word of each message is
 * the destination router address; the following words are the payload
 * (word 0 = Msg header). The NI cuts messages through: flits are
 * offered to the router's inject port as soon as their words exist, so
 * injection overlaps execution. A full buffer makes the next SEND
 * raise a send fault, which JOS retries — the congestion back-pressure
 * the paper describes.
 *
 * Receiving: the NI is the mesh's DeliverSink. Arriving words are
 * written into the message-queue region of node SRAM at 0.5
 * words/cycle; a message that no longer fits leaves the worm blocked
 * in the network.
 */

#ifndef JMSIM_MDP_NETWORK_INTERFACE_HH
#define JMSIM_MDP_NETWORK_INTERFACE_HH

#include <array>
#include <functional>

#include "isa/instruction.hh"
#include "mdp/message_queue.hh"
#include "mem/memory.hh"
#include "net/mesh_network.hh"
#include "sim/ring_queue.hh"

namespace jmsim
{

class NetOps;

/** Result of offering a word to the send buffer. */
enum class SendResult : std::uint8_t
{
    Ok,
    Full,       ///< buffer cannot accept the word(s): send fault
    BadDest,    ///< destination coordinates outside the mesh
    BadFormat,  ///< header not Msg-tagged or length mismatch at end
};

/** NI statistics. */
struct NiStats
{
    std::uint64_t messagesSent = 0;
    std::uint64_t wordsSent = 0;
    std::uint64_t sendFullEvents = 0;
    std::uint64_t deliveryStallCycles = 0;  ///< queue-full refusals
    std::uint64_t messagesBounced = 0;      ///< return-to-sender mode
};

/** One node's network interface. */
class NetworkInterface : public DeliverSink
{
  public:
    struct Config
    {
        std::uint32_t sendBufferWords = 16;  ///< per priority
        Addr queueBase0 = 3072;
        std::uint32_t queueWords0 = 512;
        Addr queueBase1 = 3584;
        std::uint32_t queueWords1 = 256;
        /** The paper's "future directions" flow control: when a
         *  message no longer fits in the queue, absorb it and return
         *  it to the sender (dispatching the jos_bounce handler there)
         *  instead of blocking the network. */
        bool returnToSender = false;
    };

    NetworkInterface() = default;

    /** Wire the NI into its node (called once at machine build). */
    void init(NodeId id, const Config &config, MeshNetwork *net,
              NodeMemory *mem, std::function<void()> wake);

    // ---- processor side ----

    /**
     * Append a word to the priority-@p prio message under construction
     * (the first word of a message is the destination).
     * @param end this word ends the message (SEND*E)
     * @param now current cycle, for the msg.send trace event
     */
    SendResult sendWord(unsigned prio, Word word, bool end, Cycle now = 0);

    /** Two-word variant (SEND2x): both words or neither. */
    SendResult sendWords2(unsigned prio, Word w0, Word w1, bool end,
                          Cycle now = 0);

    /** Loader hook: handler dispatched at the sender for returned
     *  messages (return-to-sender mode). */
    void setBounceHandler(IAddr entry) { bounceHandler_ = entry; }

    /**
     * Called the instant a delivery makes a queue's head message newly
     * dispatchable (the queue was empty and its first word landed),
     * with the priority and the delivery cycle. The processor uses it
     * to bound — and if necessary roll back — optimistic superblock
     * spans that ran ahead of a preempting arrival.
     */
    void
    setDispatchNotify(std::function<void(unsigned, Cycle)> notify)
    {
        dispatchNotify_ = std::move(notify);
    }

    /** The message queue for a priority level. */
    MessageQueue &queue(unsigned prio) { return queues_[prio]; }
    const MessageQueue &queue(unsigned prio) const { return queues_[prio]; }

    // ---- per-cycle ----

    /** Offer pending flits to the router inject port. */
    void step(Cycle now);

    /** True while unsent flits remain buffered. */
    bool
    sendBusy() const
    {
        return !send_[0].pending.empty() || !send_[1].pending.empty();
    }

    /**
     * True when a step() is guaranteed to be a no-op: nothing buffered
     * to inject, no captured bounce mid-flight, and no returned message
     * waiting to be queued behind the send channel. Used by the
     * machine's idle-skip to prove skipped cycles are dead.
     */
    bool
    quiescent() const
    {
        return !sendBusy() && !bounce_[0].active && !bounce_[1].active &&
               bounceReady_[0].empty() && bounceReady_[1].empty();
    }

    // ---- DeliverSink ----
    bool canAcceptFlit(const Flit &flit) override;
    void acceptFlit(const Flit &flit, Cycle now) override;

    const NiStats &stats() const { return stats_; }
    void resetStats() { stats_ = NiStats{}; }

    /** Attach the machine's tracer (null = tracing off). */
    void setTracer(Tracer *tracer) { trace_ = tracer; }

    /** Attach the in-network computing engine (null = netops off): SEND
     *  sequences whose destination word is User0-tagged become netops
     *  requests handed to the engine instead of the inject port. */
    void setNetOps(NetOps *netops) { netops_ = netops; }

    /** Stamp the next sender sequence number. The netops engine uses
     *  this for the reply messages it synthesizes on a node's behalf,
     *  so (src, srcSeq) stays a unique message identity. */
    std::uint32_t allocSendSeq() { return ++sendSeq_; }

    /** Register this NI's counters under the shared "ni." names. */
    void registerCounters(CounterRegistry &reg);

    /** Live pool handles this NI holds, in deterministic order. */
    void collectHandles(std::vector<MsgHandle> &out) const;

    void save(ckpt::Writer &w, const ckpt::HandleMap &map) const;
    void restore(ckpt::Reader &r, const ckpt::HandleMap &map);

    /** Heap bytes behind the send/bounce rings and queue descriptors
     *  (all demand-grown; a never-sending node reports zero). */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = 0;
        for (unsigned p = 0; p < 2; ++p) {
            total += send_[p].pending.capacity() * sizeof(MsgHandle) +
                     bounceReady_[p].capacity() * sizeof(MsgHandle) +
                     queues_[p].footprintBytes();
        }
        return total;
    }

  private:
    struct SendChannel
    {
        /** front = injecting, back = building (pool handles). */
        RingQueue<MsgHandle> pending;
        std::uint32_t flitsInjected = 0; ///< cursor into front message
        std::uint32_t bufferedWords = 0; ///< words not yet fully injected
        bool buildingStarted = false;    ///< back message got its dest word
    };

    SendResult appendWord(unsigned prio, Word word, bool end, Cycle now);

    /** Per-VN capture of a message being returned to its sender. */
    struct BounceCapture
    {
        MsgHandle msg = kNullMsg;  ///< under construction, dest = orig src
        bool active = false;
    };

    NodeId id_ = 0;
    Config config_;
    MeshNetwork *net_ = nullptr;
    NodeMemory *mem_ = nullptr;
    std::function<void()> wake_;
    std::function<void(unsigned, Cycle)> dispatchNotify_;
    std::array<SendChannel, 2> send_;
    std::array<MessageQueue, 2> queues_;
    std::array<BounceCapture, 2> bounce_;
    std::array<RingQueue<MsgHandle>, 2> bounceReady_;
    IAddr bounceHandler_ = 0;
    NiStats stats_;
    Tracer *trace_ = nullptr;
    NetOps *netops_ = nullptr;
    /** Sequence stamped into outgoing messages; (id_, sendSeq_) is the
     *  deterministic message identity traces rely on. */
    std::uint32_t sendSeq_ = 0;
};

} // namespace jmsim

#endif // JMSIM_MDP_NETWORK_INTERFACE_HH
