#include "mdp/message_queue.hh"

#include "sim/logging.hh"

namespace jmsim
{

void
MessageQueue::configure(Addr base, std::uint32_t size_words)
{
    if (size_words == 0)
        fatal("message queue needs a non-empty region");
    base_ = base;
    size_ = size_words;
    tail_ = 0;
    used_ = 0;
    messages_.clear();
}

bool
MessageQueue::canBegin(std::uint32_t length) const
{
    if (length == 0 || length > size_)
        return false;
    // Fits at the tail without wrapping?
    if (tail_ + length <= size_)
        return used_ + length <= size_;
    // Otherwise we would skip (size_ - tail_) pad words and start at 0.
    const std::uint32_t pad = size_ - tail_;
    return used_ + pad + length <= size_;
}

Addr
MessageQueue::begin(std::uint32_t length, NodeId src, Cycle now)
{
    if (!canBegin(length)) {
        stats_.refusals += 1;
        panic("MessageQueue::begin without canBegin");
    }
    QueuedMessage qm;
    qm.length = length;
    qm.src = src;
    qm.firstWordCycle = now;
    if (tail_ + length <= size_) {
        qm.start = base_ + tail_;
        qm.padBefore = 0;
        used_ += length;
        tail_ = (tail_ + length) % size_;
    } else {
        qm.padBefore = size_ - tail_;
        qm.start = base_;
        used_ += qm.padBefore + length;
        tail_ = length % size_;
    }
    messages_.push_back(qm);
    stats_.messagesAccepted += 1;
    if (used_ > stats_.maxWordsUsed)
        stats_.maxWordsUsed = used_;
    return qm.start;
}

void
MessageQueue::wordArrived()
{
    if (messages_.empty())
        panic("wordArrived with no incoming message");
    QueuedMessage &qm = messages_.back();
    if (qm.complete())
        panic("wordArrived past end of message");
    qm.arrived += 1;
    stats_.wordsAccepted += 1;
}

QueuedMessage *
MessageQueue::incoming()
{
    if (messages_.empty() || messages_.back().complete())
        return nullptr;
    return &messages_.back();
}

void
MessageQueue::pop()
{
    if (messages_.empty())
        panic("pop of empty message queue");
    const QueuedMessage &qm = messages_.front();
    if (!qm.complete())
        panic("pop of incompletely delivered message");
    used_ -= qm.padBefore + qm.length;
    messages_.pop_front();
    if (messages_.empty()) {
        // Reset to keep allocations contiguous from the region start.
        tail_ = 0;
        used_ = 0;
    }
}

} // namespace jmsim
