#include "mdp/message_queue.hh"

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"

namespace jmsim
{

void
MessageQueue::save(ckpt::Writer &w) const
{
    w.u32(tail_);
    w.u32(used_);
    w.u32(static_cast<std::uint32_t>(messages_.size()));
    for (std::size_t i = 0; i < messages_.size(); ++i) {
        const QueuedMessage &m = messages_.at(i);
        w.u32(m.start);
        w.u32(m.length);
        w.u32(m.arrived);
        w.u32(m.padBefore);
        w.u32(m.src);
        w.u64(m.firstWordCycle);
    }
    w.u64(stats_.messagesAccepted);
    w.u64(stats_.wordsAccepted);
    w.u64(stats_.refusals);
    w.u32(stats_.maxWordsUsed);
}

void
MessageQueue::restore(ckpt::Reader &r)
{
    tail_ = r.u32();
    used_ = r.u32();
    messages_.clear();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        QueuedMessage m;
        m.start = r.u32();
        m.length = r.u32();
        m.arrived = r.u32();
        m.padBefore = r.u32();
        m.src = r.u32();
        m.firstWordCycle = r.u64();
        messages_.push_back(m);
    }
    stats_.messagesAccepted = r.u64();
    stats_.wordsAccepted = r.u64();
    stats_.refusals = r.u64();
    stats_.maxWordsUsed = r.u32();
}

void
MessageQueue::configure(Addr base, std::uint32_t size_words)
{
    if (size_words == 0)
        fatal("message queue needs a non-empty region");
    base_ = base;
    size_ = size_words;
    tail_ = 0;
    used_ = 0;
    messages_.clear();
}

bool
MessageQueue::canBegin(std::uint32_t length) const
{
    if (length == 0 || length > size_)
        return false;
    // Fits at the tail without wrapping?
    if (tail_ + length <= size_)
        return used_ + length <= size_;
    // Otherwise we would skip (size_ - tail_) pad words and start at 0.
    const std::uint32_t pad = size_ - tail_;
    return used_ + pad + length <= size_;
}

Addr
MessageQueue::begin(std::uint32_t length, NodeId src, Cycle now)
{
    if (!canBegin(length)) {
        stats_.refusals += 1;
        panic("MessageQueue::begin without canBegin");
    }
    QueuedMessage qm;
    qm.length = length;
    qm.src = src;
    qm.firstWordCycle = now;
    if (tail_ + length <= size_) {
        qm.start = base_ + tail_;
        qm.padBefore = 0;
        used_ += length;
        tail_ = (tail_ + length) % size_;
    } else {
        qm.padBefore = size_ - tail_;
        qm.start = base_;
        used_ += qm.padBefore + length;
        tail_ = length % size_;
    }
    messages_.push_back(qm);
    stats_.messagesAccepted += 1;
    if (used_ > stats_.maxWordsUsed)
        stats_.maxWordsUsed = used_;
    return qm.start;
}

void
MessageQueue::wordArrived()
{
    if (messages_.empty())
        panic("wordArrived with no incoming message");
    QueuedMessage &qm = messages_.back();
    if (qm.complete())
        panic("wordArrived past end of message");
    qm.arrived += 1;
    stats_.wordsAccepted += 1;
}

QueuedMessage *
MessageQueue::incoming()
{
    if (messages_.empty() || messages_.back().complete())
        return nullptr;
    return &messages_.back();
}

void
MessageQueue::pop()
{
    if (messages_.empty())
        panic("pop of empty message queue");
    const QueuedMessage &qm = messages_.front();
    if (!qm.complete())
        panic("pop of incompletely delivered message");
    used_ -= qm.padBefore + qm.length;
    messages_.pop_front();
    if (messages_.empty()) {
        // Reset to keep allocations contiguous from the region start.
        tail_ = 0;
        used_ = 0;
    }
}

} // namespace jmsim
