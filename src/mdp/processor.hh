/**
 * @file
 * The MDP processor core.
 *
 * Executes the decoded program with the paper's cost model: one cycle
 * for register-register instructions, two when one operand is in
 * internal memory, six cycles total for an external-memory access,
 * a four-cycle hardware dispatch from the message queue to the first
 * handler instruction, three-cycle XLATE hits, and a one-cycle taken-
 * branch penalty (two 18-bit instructions per word, branch targets
 * word-aligned). Instruction fetch from external memory costs a DRAM
 * access per instruction word.
 *
 * Three register sets (background / priority 0 / priority 1) allow
 * preemption at instruction boundaries without spilling state;
 * presence tags (cfut/fut) and the fault machinery implement the
 * paper's synchronization mechanisms.
 *
 * Interpreter structure (host-side speed, no architectural effect):
 * the core executes from the program's predecoded DecodedOp array
 * (isa/decoded_op.hh) through a per-opcode handler table — `step()` is
 * an indexed load plus one indirect call, with the operand fields,
 * branch targets, and accounting class already resolved. Two
 * translation caches sit in front of the architectural decode paths: a
 * per-level segment-descriptor cache (invalidated whenever an address
 * register is written) and a direct-mapped front cache over the XLATE
 * table (invalidated by the table's version counter on ENTER /
 * invalidate / clear). Both keep the architectural statistics
 * bit-identical to the uncached paths and expose their own hit/miss
 * counters in ProcessorStats.
 */

#ifndef JMSIM_MDP_PROCESSOR_HH
#define JMSIM_MDP_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/decoded_op.hh"
#include "jasm/program.hh"
#include "mdp/fault.hh"
#include "mdp/network_interface.hh"
#include "mdp/register_set.hh"
#include "mem/memory.hh"
#include "mem/xlate_table.hh"
#include "net/router_address.hh"

namespace jmsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Processor timing and fault-vector configuration. */
struct ProcessorConfig
{
    unsigned dispatchCycles = 4;     ///< queue head -> first handler instr
    unsigned faultEntryCycles = 4;   ///< trap entry overhead
    unsigned takenBranchPenalty = 1; ///< pipeline flush on taken branch
    unsigned ememFetchCycles = 6;    ///< fetch of an external code word

    /** Execute discovered superblocks as fused spans (host-side speed
     *  only; cycle counts and statistics are bit-identical either
     *  way). See Processor::executeSpan. */
    bool superblock = true;

    /** Fault vectors: entry iaddr per FaultKind (valid if hasVector). */
    std::array<IAddr, kNumFaults> vectors{};
    std::array<bool, kNumFaults> hasVector{};
};

/** Per-handler ("thread class") statistics for Table 4. */
struct HandlerStats
{
    std::uint64_t dispatches = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t messageWords = 0;
};

/** Processor statistics. */
struct ProcessorStats
{
    std::array<std::uint64_t,
        static_cast<std::size_t>(StatClass::NumClasses)> cyclesByClass{};
    std::uint64_t instructions = 0;
    std::uint64_t instructionsOs = 0;   ///< executed under .region os
    std::uint64_t dispatches = 0;
    std::uint64_t suspends = 0;
    std::array<std::uint64_t, kNumFaults> faults{};
    std::uint64_t queueStallCycles = 0; ///< waiting for message words
    Cycle runCycles = 0;                ///< busy (non-idle) cycles
    Cycle idleCycles = 0;

    // Host-side translation-cache counters (no architectural effect).
    std::uint64_t segCacheHits = 0;     ///< segment-descriptor cache hits
    std::uint64_t segCacheMisses = 0;   ///< decode-and-fill events
    std::uint64_t xlateCacheHits = 0;   ///< XLATE front-cache hits
    std::uint64_t xlateCacheMisses = 0; ///< fell through to the table

    std::uint64_t
    totalCycles() const
    {
        return runCycles + idleCycles;
    }
};

/** One MDP core. */
class Processor
{
  public:
    Processor() = default;

    /** Wire the core into its node (called once at machine build). */
    void init(NodeId id, const MeshDims &dims, const ProcessorConfig &config,
              NodeMemory *mem, NetworkInterface *ni, const Program *prog);

    /** Start the background thread at @p entry (boot). */
    void boot(IAddr entry);

    /** Point a fault's vector at a handler entry (loader use). */
    void
    setFaultVector(FaultKind kind, IAddr entry)
    {
        config_.vectors[static_cast<unsigned>(kind)] = entry;
        config_.hasVector[static_cast<unsigned>(kind)] = true;
    }

    /**
     * Advance by one cycle — and, when superblock execution is on,
     * possibly further: the core may retire a whole straight-line span
     * of instructions whose start cycles lie in [now, horizon), leaving
     * `busyUntil_` at the span's architectural end. Every observable
     * (cycle counts, statistics, fault behaviour, memory, trace events)
     * is bit-identical to stepping per op.
     *
     * @param horizon exclusive bound on fused-op start cycles; pass
     *        `now + 1` to force exact single-op stepping.
     * @param exclusive the caller proved no message can arrive at this
     *        node while it runs (single active node, empty network,
     *        quiescent NI), removing every preemption guard.
     * @return true if the core is doing anything (false = idle/halted).
     */
    bool step(Cycle now, Cycle horizon, bool exclusive);

    /** Exact single-cycle step (tests, tools). */
    bool step(Cycle now) { return step(now, now + 1, false); }

    /**
     * Delivery callback from the NI: the priority-@p prio queue head
     * became newly dispatchable at cycle @p now. If an optimistic
     * superblock span ran past the point where that message would have
     * preempted this core, roll the span back and replay only the
     * prefix that architecturally executed (start cycles < now + 1).
     */
    void noteDispatchable(unsigned prio, Cycle now);

    /** A message header arrived (or other wake source) at @p now. */
    void noteWake(Cycle now);

    /** The machine deactivated the node at @p now (idle accounting). */
    void noteSleep(Cycle now);

    bool halted() const { return halted_; }

    /** Is any level live (or dispatchable work pending)? */
    bool runnable() const;

    /** First cycle at which the core can issue again: while the clock
     *  is below this the core is burning a multi-cycle instruction (or
     *  a dispatch) and step() is a guaranteed no-op. The machine's
     *  idle-skip uses this to jump the clock over dead cycles. */
    Cycle nextEventCycle() const { return busyUntil_; }

    /** Host output buffer written by the OUT instruction. */
    const std::vector<Word> &hostOut() const { return hostOut_; }
    std::vector<Word> &hostOut() { return hostOut_; }

    /** Heap bytes behind the core (rollback undo log, host output). */
    std::uint64_t
    footprintBytes() const
    {
        return undo_.capacity() * sizeof(undo_[0]) +
               hostOut_.capacity() * sizeof(Word);
    }

    /** Direct register access (tests, drivers). The caller may write
     *  address registers behind the interpreter's back, so this drops
     *  the level's cached segment translations up front. */
    RegisterSet &
    regs(Level level)
    {
        for (auto &e : segCache_[static_cast<unsigned>(level)])
            e.valid = false;
        return sets_[static_cast<unsigned>(level)];
    }
    XlateTable &xlate() { return xlate_; }
    const XlateTable &xlate() const { return xlate_; }

    /** Drop every cached segment-descriptor translation. */
    void invalidateSegCache();

    const ProcessorStats &stats() const { return stats_; }
    void resetStats();

    /** Idle cycles including any still-open sleep interval. */
    Cycle
    idleCyclesAt(Cycle now) const
    {
        return stats_.idleCycles + (sleeping_ ? now - sleepStart_ : 0);
    }

    /** Per-handler statistics, keyed by handler entry iaddr. */
    const std::unordered_map<IAddr, HandlerStats> &handlerStats() const
    {
        return handlerStats_;
    }

    NodeId id() const { return id_; }

    /** Debug: stream every executed instruction to stderr. */
    void setTrace(bool on) { trace_ = on; }

    /** Attach the machine's tracer (null = tracing off). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Register this core's counters under the shared "proc." names. */
    void registerCounters(CounterRegistry &reg);

    /** Flip superblock execution after machine build (checkpoint
     *  restores may land in a machine configured the other way). */
    void setSuperblock(bool on) { config_.superblock = on; }

    /** Serialize the core's architectural + interpreter state. */
    void save(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    /** Per-opcode handler implementations (defined in processor.cc). */
    struct Exec;
    friend struct Exec;

    RegisterSet &cur() { return sets_[static_cast<unsigned>(current_)]; }

    /** Pick the level to run; dispatch a queued message if possible. */
    void selectLevel(Cycle now);

    /** Execute one instruction at the current level. */
    void executeOne(Cycle now);

    // ---- superblock span execution (see executeSpan in processor.cc) ----

    /** How far ahead of the machine a span may safely run. */
    enum class SpanTier : std::uint8_t
    {
        Exclusive,   ///< no arrival possible: fuse without guards
        Safe,        ///< current level is unpreemptable: guard queue reads
        Optimistic,  ///< arrivals may preempt: snapshot + rollback
    };

    struct SpanResult
    {
        /** Committed instructions (64-bit: a fast-forwarded spin loop
         *  can retire iterations up to a distant horizon in one call). */
        std::uint64_t executed = 0;
        Cycle end = 0;           ///< architectural cycle after the span
        Cycle lastStart = 0;     ///< start cycle of the last committed op
        bool endedInline = false;///< a fault/stall consumed the last op
    };

    /** Fuse a span at the current level; dispatch per-op on failure. */
    void executeSpan(Cycle now, Cycle horizon, bool exclusive);

    /** The fused-execution loop shared by spans and rollback replay. */
    SpanResult runSpanOps(Cycle start, Cycle stop, unsigned budget,
                          SpanTier tier);

    /** Raise a fault: redirect to the vector (or die loudly). */
    void raiseFault(FaultKind kind, Word fval0, Word fval1);

    // ---- operand helpers (set fault state on error) ----
    bool aluOperand(std::uint8_t r, std::int32_t &out);
    bool boolOperand(std::uint8_t r, bool &out);
    bool memAddress(const DecodedOp &op, bool indexed, Addr &addr,
                    unsigned &penalty);
    bool queueWordReady(Addr addr);

    /** Write a register of the current level; invalidates the segment
     *  cache when the target is an address register. */
    void
    setReg(RegisterSet &rs, std::uint8_t r, Word w)
    {
        rs[r] = w;
        if (r & 4u)
            segCache_[static_cast<unsigned>(current_)][r & 3u].valid = false;
    }

    /** Force an instruction-word refetch at @p lvl (dispatch, RFE,
     *  fault entry). */
    void
    invalidateFetch(unsigned lvl)
    {
        fetchKnown_[lvl] = false;
    }

    /** XLATE front cache: true on hit (fills @p out, counts the table
     *  hit architecturally). */
    bool xlateCached(Word key, Word &out);

    /** Fill the front cache after a successful table lookup. */
    void xlateFill(Word key, Word value);

    /** Per-handler stats slot for @p lvl (cached map lookup). */
    HandlerStats &handlerSlot(unsigned lvl);

    void attribute(StatClass cls, unsigned cycles);
    void attributeIdle(Cycle cycles);

    [[noreturn]] void die(const std::string &msg, IAddr iaddr);

    NodeId id_ = 0;
    MeshDims dims_;
    ProcessorConfig config_;
    NodeMemory *mem_ = nullptr;
    NetworkInterface *ni_ = nullptr;
    const Program *prog_ = nullptr;
    const DecodedOp *decoded_ = nullptr;   ///< flat predecoded image
    std::size_t decodedCount_ = 0;
    XlateTable xlate_;

    std::array<RegisterSet, kNumLevels> sets_;
    Level current_ = Level::Background;
    bool currentValid_ = false;
    bool halted_ = false;
    Cycle busyUntil_ = 0;

    // Instruction-fetch tracking: the decoded word index last fetched
    // per level, valid only while fetchKnown_ is set (no sentinel).
    std::array<Addr, kNumLevels> lastFetchWord_{};
    std::array<bool, kNumLevels> fetchKnown_{};

    // Fault raised by the executing instruction (applied by executeOne).
    bool faultPending_ = false;
    FaultKind faultKind_ = FaultKind::CfutRead;
    Word faultVal0_;
    Word faultVal1_;

    // Per-instruction execution state shared with the handlers.
    IAddr xNext_ = 0;       ///< successor ip (handlers may redirect)
    unsigned xCost_ = 0;    ///< cycles accumulated by this instruction
    bool xStall_ = false;   ///< retry next cycle (queue word not ready)
    Cycle xNow_ = 0;        ///< cycle stamp visible to GETSP

    // Segment-descriptor translation cache: one entry per (level,
    // address register), filled on first use, invalidated on register
    // writes. `uniform` marks segments that lie entirely inside one
    // valid memory region, letting hits skip the per-access validity
    // and penalty checks.
    struct SegCacheEntry
    {
        bool valid = false;
        bool uniform = false;
        unsigned penalty = 0;
        SegDesc desc;

        bool operator==(const SegCacheEntry &other) const = default;
    };
    std::array<std::array<SegCacheEntry, 4>, kNumLevels> segCache_{};

    // ---- superblock span state ----
    static constexpr unsigned kSpanBudgetMin = 8;
    static constexpr unsigned kSpanBudgetMax = 1024;

    /** Queue-region access guard for non-exclusive spans: memAddress
     *  aborts the op (eagerAbort_) when a resolved address falls in a
     *  message-queue region but outside [eagerQLo_, eagerQHi_), the
     *  already-arrived prefix of the current level's head message as
     *  frozen at span entry. */
    bool eagerGuard_ = false;
    bool eagerAbort_ = false;
    bool eagerUndo_ = false;   ///< record store undo (optimistic spans)
    Addr eagerQLo_ = 1;
    Addr eagerQHi_ = 0;

    /** Optimistic-span rollback snapshot (taken at span entry). */
    struct SpanSnapshot
    {
        RegisterSet regs;
        std::array<SegCacheEntry, 4> seg;
        bool fetchKnown = false;
        Addr fetchWord = 0;
        std::uint64_t instructions = 0;
        std::uint64_t instructionsOs = 0;
        Cycle runCycles = 0;
        std::array<std::uint64_t,
            static_cast<std::size_t>(StatClass::NumClasses)> cyclesByClass{};
        std::uint64_t segCacheHits = 0;
        std::uint64_t segCacheMisses = 0;
        std::uint64_t hsInstructions = 0;
        std::uint64_t hsCycles = 0;
    };
    SpanSnapshot snap_;
    std::vector<std::pair<Addr, Word>> undo_;  ///< store undo log

    bool spanActive_ = false;     ///< an optimistic span may roll back
    unsigned spanLvl_ = 0;
    unsigned spanViolPrioMin_ = 0;///< arrivals at prio >= this violate
    Cycle spanEntryNow_ = 0;
    Cycle spanLastStart_ = 0;
    unsigned spanBudget_ = 64;    ///< adaptive span length bound

    /** Mid-op save of the segment-cache lookup side effects, so a
     *  guard abort or optimistic fault can unwind them exactly. */
    SegCacheEntry memSaveEntry_;
    std::uint64_t memSaveHits_ = 0;
    std::uint64_t memSaveMisses_ = 0;

    // Direct-mapped front cache over the XLATE table, guarded by the
    // table's version counter (ENTER / invalidate / clear bump it).
    static constexpr unsigned kXlateCacheSize = 64;
    struct XlateCacheEntry
    {
        bool valid = false;
        Word key;
        Word value;
    };
    std::array<XlateCacheEntry, kXlateCacheSize> xlateCache_{};
    std::uint64_t xlateCacheVersion_ = 0;

    // Idle bookkeeping.
    bool sleeping_ = false;
    Cycle sleepStart_ = 0;

    // Per-level handler attribution (entry iaddr + cached stats slot).
    std::array<IAddr, kNumLevels> handlerEntry_{};
    std::array<HandlerStats *, kNumLevels> handlerSlot_{};

    std::vector<Word> hostOut_;
    bool trace_ = false;
    Tracer *tracer_ = nullptr;
    ProcessorStats stats_;
    std::unordered_map<IAddr, HandlerStats> handlerStats_;
};

} // namespace jmsim

#endif // JMSIM_MDP_PROCESSOR_HH
