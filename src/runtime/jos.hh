/**
 * @file
 * JOS: the jmsim runtime kernel, written in jasm.
 *
 * JOS provides what the J-Machine's runtime provided on the hardware:
 *
 *  - fault handlers: send retry (jos_fault_send), cfut thread
 *    suspension (jos_fault_cfut), and xlate-miss refill from a
 *    software name directory (jos_fault_xlate)
 *  - jos_init: boot-time setup (NNR shift/mask tables, context pool)
 *  - jos_nnr: linear node index -> packed router address (the "NNR
 *    calc" overhead category of Figure 6)
 *  - jos_dir_add: bind a global name in the software directory and the
 *    hardware XLATE table
 *  - jos_put: producer-side store that restarts a consumer suspended
 *    on a cfut slot
 *  - jos_park / jos_die: background parking and loud failure
 *
 * Calling conventions are per-routine and documented in the source;
 * the link register for CALLs into JOS is A2 unless noted.
 *
 * SRAM layout (word addresses):
 *   0    .. 3071  code + data (JOS first, application after)
 *   3072 .. 3583  priority-0 message queue (128 minimum messages)
 *   3584 .. 3839  priority-1 message queue
 *   3840 .. 3855  fault-handler scratch
 *   3856 .. 3871  JOS globals (NNR shifts/masks, context free list)
 *   3872 .. 3999  context pool (8 contexts x 16 words)
 *   4000 .. 4031  barrier-library state
 *   4032 .. 4095  application scratch
 */

#ifndef JMSIM_RUNTIME_JOS_HH
#define JMSIM_RUNTIME_JOS_HH

#include <string>
#include <vector>

#include "jasm/assembler.hh"
#include "sim/types.hh"

namespace jmsim
{
namespace jos
{

/** SRAM layout constants (must match the .equ block in the kernel). */
inline constexpr Addr kScratchBase = 3840;
inline constexpr Addr kGlobalsBase = 3856;
inline constexpr Addr kCtxPoolBase = 3872;
inline constexpr unsigned kCtxCount = 8;
inline constexpr unsigned kCtxSize = 16;
inline constexpr Addr kBarrierBase = 4000;
inline constexpr Addr kAppScratchBase = 4032;

/** External-memory words reserved for the JOS name directory. */
inline constexpr Addr kDirBase = 0x10000;
inline constexpr std::uint32_t kDirWords = 8192;
/** First external word available to applications. */
inline constexpr Addr kAppEmemBase = kDirBase + kDirWords;

/** The kernel source (fault handlers + library routines). */
const char *kernelSource();

/** The scan-style barrier library source. */
const char *barrierSource();

/** SRAM words used by the netops library (top of application scratch:
 *  the driver zeroes the whole APP_SCRATCH region at build). */
inline constexpr Addr kNetOpsScratchBase = 4080;

/** The in-network computing library source (nop_faa, nop_barrier);
 *  needs MachineConfig::netops toggles on or every call send-faults. */
const char *netopsSource();

/**
 * Bundle the kernel (and optionally the barrier and netops libraries)
 * with an application for assembly. The kernel comes first so its code
 * sits at low SRAM addresses.
 */
std::vector<SourceFile> withKernel(const std::string &app_name,
                                   const std::string &app_source,
                                   bool with_barrier = true,
                                   bool with_netops = false);

} // namespace jos
} // namespace jmsim

#endif // JMSIM_RUNTIME_JOS_HH
