#include "runtime/jos.hh"

namespace jmsim
{
namespace jos
{

const char *
kernelSource()
{
    return R"(
; ======================================================================
; JOS -- the jmsim runtime kernel.
; See runtime/jos.hh for the memory map and calling conventions.
; ======================================================================
.region os

.equ JOS_SCRATCH,   3840
.equ JOS_GLOBALS,   3856
.equ JOS_CTX_POOL,  3872
.equ JOS_CTX_COUNT, 8
.equ JOS_CTX_SIZE,  16
.equ BAR_BASE,      4000
.equ APP_SCRATCH,   4032
.equ JOS_DIR,       65536
.equ JOS_DIR_WORDS, 8192
.equ TAG_CTX,       10

; ----------------------------------------------------------------------
; jos_init: boot-time setup. Link in A2. Clobbers R0-R3, A0, A1.
; Globals: +0 -xshift   +1 -(xshift+yshift)   +2 xmask   +3 ymask
;          +4 context free-list head (0 = exhausted)
; ----------------------------------------------------------------------
jos_init:
    LDL A0, seg(JOS_GLOBALS, 16)
    GETSP R0, DIMS
    LDL R3, #31
    AND R1, R0, R3          ; dx
    ADDI R2, R1, #-1
    ST [A0+2], R2           ; xmask = dx-1
    MOVEI R2, 0
jos_init_xs:
    LEI A1, R1, #1
    BT A1, jos_init_xd
    LSHI R1, R1, #-1
    ADDI R2, R2, #1
    BR jos_init_xs
jos_init_xd:
    MOVE A1, R2             ; keep xshift
    NEG R2, R2
    ST [A0+0], R2           ; -xshift
    LSHI R1, R0, #-5
    LDL R3, #31
    AND R1, R1, R3          ; dy
    ADDI R2, R1, #-1
    ST [A0+3], R2           ; ymask = dy-1
    MOVEI R2, 0
jos_init_ys:
    LEI R3, R1, #1
    BT R3, jos_init_yd
    LSHI R1, R1, #-1
    ADDI R2, R2, #1
    BR jos_init_ys
jos_init_yd:
    ADD R2, R2, A1
    NEG R2, R2
    ST [A0+1], R2           ; -(xshift+yshift)
    ; Thread the context pool onto the free list.
    LDL R0, #JOS_CTX_POOL
    ST [A0+4], R0
    MOVEI R1, 0
jos_init_ctx:
    MOVEI R2, 16
    SETSEG A1, R0, R2
    ADD R3, R0, R2          ; next block
    EQI R2, R1, #JOS_CTX_COUNT-1
    BF R2, jos_init_ctx_link
    MOVEI R3, 0             ; last block terminates the list
jos_init_ctx_link:
    ST [A1+10], R3
    MOVEI R2, 16
    ADD R0, R0, R2
    ADDI R1, R1, #1
    LTI R2, R1, #JOS_CTX_COUNT
    BT R2, jos_init_ctx
    ; Zero the barrier-library state region (counters live in SRAM).
    LDL A1, seg(BAR_BASE, 32)
    MOVEI R0, 0
    MOVEI R1, 0
    MOVEI R2, 19
jos_init_bar:
    STX [A1+R1], R0
    ADDI R1, R1, #1
    LT R3, R1, R2
    BT R3, jos_init_bar
    JMP A2

; ----------------------------------------------------------------------
; jos_nnr: linear node index (R0) -> packed router address (R0).
; Link A2. Clobbers R1, R2, A1.
; ----------------------------------------------------------------------
.region nnr
jos_nnr:
    SETSP TMP0, A1
    LDL A1, seg(JOS_GLOBALS, 16)
    LD R1, [A1+1]           ; -(xshift+yshift)
    LSH R1, R0, R1          ; z
    LSHI R1, R1, #10
    LD R2, [A1+0]           ; -xshift
    LSH R2, R0, R2
    ANDM R2, [A1+3]         ; y
    LSHI R2, R2, #5
    OR R1, R1, R2
    ANDM R0, [A1+2]         ; x
    OR R0, R0, R1
    GETSP A1, TMP0
    JMP A2
.region os

; ----------------------------------------------------------------------
; jos_park: park the background thread (workers idle here).
; ----------------------------------------------------------------------
jos_park:
    SUSPEND

; ----------------------------------------------------------------------
; jos_die: force an unhandled fault so the simulator stops with a
; diagnostic pointing here.
; ----------------------------------------------------------------------
jos_die:
    MOVEI R0, 0
    CHECK R0, #bad

; ----------------------------------------------------------------------
; Send fault: the NI buffer is full; retry the SEND until it drains.
; ----------------------------------------------------------------------
jos_fault_send:
    RFE

; ----------------------------------------------------------------------
; Cfut fault: a load touched a not-yet-present value. Suspend the
; thread: allocate a context block, save the register set and resume
; point, leave a ctx-tagged reference in the slot, and give up the
; processor. jos_put restarts it when the value arrives.
; ----------------------------------------------------------------------
jos_fault_cfut:
    SETSP TMP0, A3
    SETSP TMP1, R0
    SETSP TMP2, R1
    LDL A3, seg(JOS_GLOBALS, 16)
    LD R0, [A3+4]           ; context free-list head
    NEI R1, R0, #0
    BT R1, jos_cfut_have
    BR jos_die              ; context pool exhausted
jos_cfut_have:
    MOVEI R1, 16
    SETSEG A3, R0, R1       ; A3 -> context block
    ST [A3+11], R0          ; ctx[11] = own address
    LD R1, [A3+10]          ; next free block
    SETSP TMP3, R1
    GETSP R1, TMP1
    ST [A3+0], R1           ; R0
    GETSP R1, TMP2
    ST [A3+1], R1           ; R1
    ST [A3+2], R2
    ST [A3+3], R3
    ST [A3+4], A0
    ST [A3+5], A1
    ST [A3+6], A2
    GETSP R1, TMP0
    ST [A3+7], R1           ; A3
    GETSP R1, FIP
    ST [A3+8], R1           ; resume point (retries the load)
    GETSP R1, FVAL0
    ST [A3+9], R1           ; slot address
    ; Write the ctx reference into the slot (arbitrary address: build
    ; a 64-word descriptor around it).
    LDL R3, #63
    AND R2, R1, R3
    SUB R1, R1, R2
    MOVEI R3, 64
    SETSEG A0, R1, R3
    WTAG R3, R0, #ctx
    STX [A0+R2], R3
    ; Commit the free-list pop.
    LDL A1, seg(JOS_GLOBALS, 16)
    GETSP R1, TMP3
    ST [A1+4], R1
    SUSPEND

; ----------------------------------------------------------------------
; jos_put: producer-side store with consumer restart.
;   A0 = segment holding the slot, R0 = slot index, R1 = value.
; Link A2. Clobbers R2, R3; on restart the suspended thread resumes
; inside this task (A2/A3 are consumed).
; ----------------------------------------------------------------------
jos_put:
    LDRAWX R3, [A0+R0]
    RTAG R2, R3
    EQI R2, R2, #TAG_CTX
    BT R2, jos_put_restart
    STX [A0+R0], R1
    JMP A2
jos_put_restart:
    STX [A0+R0], R1         ; deliver the value first
    WTAG R1, R3, #int       ; R1 = context address
    MOVEI R2, 16
    SETSEG A3, R1, R2       ; A3 -> context
    LDL A2, seg(JOS_GLOBALS, 16)
    LD R2, [A2+4]           ; free-list push
    ST [A3+10], R2
    ST [A2+4], R1
    LD R0, [A3+8]           ; resume IP
    SETSP TMP0, R0
    LD A0, [A3+4]
    LD A1, [A3+5]
    LD A2, [A3+6]
    LD R0, [A3+0]
    LD R1, [A3+1]
    LD R2, [A3+2]
    LD R3, [A3+3]
    LD A3, [A3+7]
    JSP TMP0

; ----------------------------------------------------------------------
; Xlate miss: refill the hardware table from the software directory
; and retry. Dies if the name was never bound.
; ----------------------------------------------------------------------
jos_fault_xlate:
    SETSP TMP0, A3
    LDL A3, seg(JOS_SCRATCH, 16)
    ST [A3+0], R0
    ST [A3+1], R1
    ST [A3+2], R2
    ST [A3+3], R3
    ST [A3+4], A0
    ST [A3+5], A1
    LDL A0, seg(JOS_DIR, JOS_DIR_WORDS)
    LD R0, [A0+0]           ; number of (key, value) pairs
    MOVEI R1, 0
    GETSP R2, FVAL0         ; the missed key
jos_xl_loop:
    GE R3, R1, R0
    BT R3, jos_die          ; unbound name
    ASHI R3, R1, #1
    ADDI R3, R3, #1
    LDX A1, [A0+R3]         ; candidate key
    EQ A1, A1, R2
    BF A1, jos_xl_next
    ADDI R3, R3, #1
    LDX A1, [A0+R3]         ; bound value
    ENTER R2, A1
    LDL A3, seg(JOS_SCRATCH, 16)
    LD R0, [A3+0]
    LD R1, [A3+1]
    LD R2, [A3+2]
    LD R3, [A3+3]
    LD A0, [A3+4]
    LD A1, [A3+5]
    GETSP A3, TMP0
    RFE
jos_xl_next:
    ADDI R1, R1, #1
    BR jos_xl_loop

; ----------------------------------------------------------------------
; jos_dir_add: bind R0 (key) -> R1 (value) in the software directory
; and the hardware table. Link A2. Clobbers R2, R3, A1.
; ----------------------------------------------------------------------
jos_dir_add:
    LDL A1, seg(JOS_DIR, JOS_DIR_WORDS)
    LD R2, [A1+0]
    ASHI R3, R2, #1
    ADDI R3, R3, #1
    STX [A1+R3], R0
    ADDI R3, R3, #1
    STX [A1+R3], R1
    ADDI R2, R2, #1
    ST [A1+0], R2
    ENTER R0, R1
    JMP A2

; ----------------------------------------------------------------------
; jos_dir_bind: like jos_dir_add but without priming the hardware
; table -- the first XLATE of the name takes a cold miss (how CST
; populated translations lazily). Same interface and clobbers.
; ----------------------------------------------------------------------
jos_dir_bind:
    LDL A1, seg(JOS_DIR, JOS_DIR_WORDS)
    LD R2, [A1+0]
    ASHI R3, R2, #1
    ADDI R3, R3, #1
    STX [A1+R3], R0
    ADDI R3, R3, #1
    STX [A1+R3], R1
    ADDI R2, R2, #1
    ST [A1+0], R2
    JMP A2

; ----------------------------------------------------------------------
; jos_bounce: a message we sent was refused (return-to-sender flow
; control) and came back as [hdr, original dest, original message...].
; Retransmit it.
; ----------------------------------------------------------------------
jos_bounce:
    LD R0, [A3+1]           ; original destination
    SEND0 R0
    LD R1, [A3+2]           ; original header
    WTAG R2, R1, #int       ; strip the Msg tag to reach the length
    LDL R3, #4095
    AND R2, R2, R3
    ADDI R2, R2, #-1        ; payload words after the header
    EQI R0, R2, #0
    BF R0, jos_rb_multi
    SEND0E R1
    SUSPEND
jos_rb_multi:
    SEND0 R1
    MOVEI R3, 3
jos_rb_loop:
    LDX R0, [A3+R3]
    ADDI R3, R3, #1
    ADDI R2, R2, #-1
    EQI R1, R2, #0
    BT R1, jos_rb_last
    SEND0 R0
    BR jos_rb_loop
jos_rb_last:
    SEND0E R0
    SUSPEND

; The directory's pair count lives at its first word.
.emem
.org JOS_DIR
.word 0
.imem
.region comp
)";
}

const char *
barrierSource()
{
    return R"(
; ======================================================================
; Scan-style (dissemination) barrier library -- Table 3's routine.
; bar_barrier: call from the background thread with CALL A2, bar_barrier.
; Clobbers R0-R3, A0, A1. ceil(log2 N) waves; one message per wave per
; node; handlers bump per-wave counters that the caller spins on.
; State at BAR_BASE: +0..15 wave counters, +16 instance, +17 saved
; link, +18 current wave bit.
; ======================================================================
.region sync
bar_barrier:
    LDL A0, seg(BAR_BASE, 32)
    ST [A0+17], A2
    LD R3, [A0+16]
    ADDI R3, R3, #1
    ST [A0+16], R3          ; new barrier instance
    GETSP R0, NODES
    EQI R1, R0, #1
    BT R1, bar_exit
    MOVEI R0, 1
    ST [A0+18], R0          ; wave bit = 1
    MOVEI R3, 0             ; wave index k = 0
bar_wave:
    GETSP R0, NODEID
    LD R1, [A0+18]
    XOR R0, R0, R1          ; partner = id ^ bit
    CALL A2, jos_nnr
.region comm
    SEND0 R0
    LDL R1, hdr(bar_handler, 2)
    SEND20E R1, R3
.region sync
bar_spin:
    LDX R1, [A0+R3]         ; counts[k]
    LD R2, [A0+16]
    LT R1, R1, R2
    BT R1, bar_spin
    ADDI R3, R3, #1
    LD R1, [A0+18]
    ASHI R1, R1, #1
    ST [A0+18], R1
    GETSP R2, NODES
    LT R2, R1, R2
    BT R2, bar_wave
bar_exit:
    LD A2, [A0+17]
    JMP A2

bar_handler:
    LDL A0, seg(BAR_BASE, 32)
    LD R0, [A3+1]           ; wave index
    LDX R1, [A0+R0]
    ADDI R1, R1, #1
    STX [A0+R0], R1
    SUSPEND
; Barrier state (counters, instance, link, bit) lives at BAR_BASE in
; SRAM and is zeroed by jos_init.
.region comp
)";
}

const char *
netopsSource()
{
    return R"(
; ======================================================================
; In-network computing library (needs MachineConfig::netops enabled).
; A request is a SEND whose destination word carries the User0 tag: the
; NI hands it to the fabric's netops engine instead of injecting it,
; and the engine's reply comes back as a normal message that dispatches
; the handler named in the request header.
;
; nop_faa: R0 = variable, R1 = operand, R2 = op (0 add, 1 min, 2 max,
; 3 or). Returns R0 = fetched (pre-op) value. CALL A2, nop_faa;
; clobbers R0-R3, A0.
; nop_barrier: hardware tree barrier. CALL A2, nop_barrier; clobbers
; R1-R3, A0.
; State at NOP_BASE (top of APP_SCRATCH, zeroed by the driver):
; +0 replies seen, +1 reply value, +2 requests issued, +3 releases
; seen, +4 barriers entered, +5/+6 saved links.
; ======================================================================
.equ NOP_BASE, 4080
.region sync
nop_faa:
    LDL A0, seg(NOP_BASE, 16)
    ST [A0+5], A2
    LD R3, [A0+2]
    ADDI R3, R3, #1
    ST [A0+2], R3           ; requests issued += 1
.region comm
    WTAG R2, R2, #user0
    SEND0 R2                ; User0 opcode opens the request
    LDL R2, hdr(nop_reply, 3)
    SEND0 R2
    SEND20E R0, R1          ; variable, operand
.region sync
nop_faa_spin:
    LD R1, [A0+0]           ; replies seen
    LD R2, [A0+2]
    LT R1, R1, R2
    BT R1, nop_faa_spin
    LD R0, [A0+1]           ; the fetched value
    LD A2, [A0+5]
    JMP A2

nop_reply:
    LDL A0, seg(NOP_BASE, 16)
    LD R0, [A3+1]
    ST [A0+1], R0
    LD R0, [A0+0]
    ADDI R0, R0, #1
    ST [A0+0], R0
    SUSPEND

nop_barrier:
    LDL A0, seg(NOP_BASE, 16)
    ST [A0+6], A2
    LD R3, [A0+4]
    ADDI R3, R3, #1
    ST [A0+4], R3           ; barriers entered += 1
.region comm
    MOVEI R2, 4
    WTAG R2, R2, #user0
    SEND0 R2
    LDL R1, hdr(nop_bar_reply, 1)
    SEND0E R1               ; header-only request
.region sync
nop_bar_spin:
    LD R1, [A0+3]           ; releases seen
    LD R2, [A0+4]
    LT R1, R1, R2
    BT R1, nop_bar_spin
    LD A2, [A0+6]
    JMP A2

nop_bar_reply:
    LDL A0, seg(NOP_BASE, 16)
    LD R0, [A0+3]
    ADDI R0, R0, #1
    ST [A0+3], R0
    SUSPEND
.region comp
)";
}

std::vector<SourceFile>
withKernel(const std::string &app_name, const std::string &app_source,
           bool with_barrier, bool with_netops)
{
    std::vector<SourceFile> sources;
    sources.push_back({"jos.jasm", kernelSource()});
    if (with_barrier)
        sources.push_back({"barrier.jasm", barrierSource()});
    if (with_netops)
        sources.push_back({"netops.jasm", netopsSource()});
    sources.push_back({app_name, app_source});
    return sources;
}

} // namespace jos
} // namespace jmsim
