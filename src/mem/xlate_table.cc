#include "mem/xlate_table.hh"

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"

namespace jmsim
{

void
XlateTable::save(ckpt::Writer &w) const
{
    w.u64(version_);
    for (const Entry &e : entries_) {
        w.b(e.valid);
        w.word(e.key);
        w.word(e.value);
    }
    for (std::uint8_t v : victim_)
        w.u8(v);
    w.u64(stats_.lookups);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    w.u64(stats_.inserts);
    w.u64(stats_.evictions);
}

void
XlateTable::restore(ckpt::Reader &r)
{
    version_ = r.u64();
    for (Entry &e : entries_) {
        e.valid = r.b();
        e.key = r.word();
        e.value = r.word();
    }
    for (std::uint8_t &v : victim_)
        v = r.u8();
    stats_.lookups = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.inserts = r.u64();
    stats_.evictions = r.u64();
}

XlateTable::XlateTable(unsigned num_sets, unsigned ways)
    : numSets_(num_sets), ways_(ways),
      entries_(static_cast<std::size_t>(num_sets) * ways),
      victim_(num_sets, 0)
{
    if (num_sets == 0 || (num_sets & (num_sets - 1)) != 0)
        fatal("XlateTable sets must be a power of two");
    if (ways == 0)
        fatal("XlateTable needs at least one way");
}

std::size_t
XlateTable::setIndex(Word key) const
{
    // Mix data bits and tag so consecutive names spread across sets.
    std::uint32_t h = key.bits ^ (static_cast<std::uint32_t>(key.tag) << 28);
    h ^= h >> 16;
    h *= 0x45d9f3b;
    h ^= h >> 16;
    return h & (numSets_ - 1);
}

void
XlateTable::enter(Word key, Word value)
{
    stats_.inserts += 1;
    version_ += 1;
    Entry *set = &entries_[setIndex(key) * ways_];
    // Update in place on re-ENTER of an existing key.
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key) {
            set[w].value = value;
            return;
        }
    }
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            set[w] = {true, key, value};
            return;
        }
    }
    auto &vic = victim_[setIndex(key)];
    set[vic] = {true, key, value};
    vic = static_cast<std::uint8_t>((vic + 1) % ways_);
    stats_.evictions += 1;
}

std::optional<Word>
XlateTable::lookup(Word key)
{
    stats_.lookups += 1;
    Entry *set = &entries_[setIndex(key) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key) {
            stats_.hits += 1;
            return set[w].value;
        }
    }
    stats_.misses += 1;
    return std::nullopt;
}

void
XlateTable::invalidate(Word key)
{
    version_ += 1;
    Entry *set = &entries_[setIndex(key) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key)
            set[w].valid = false;
    }
}

void
XlateTable::clear()
{
    version_ += 1;
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace jmsim
