/**
 * @file
 * The MDP's hardware name-translation table.
 *
 * ENTER inserts a (key, value) pair; XLATE looks a key up in 3 cycles
 * on a hit and faults to a software handler on a miss. The table is a
 * small set-associative cache of bindings; software owns the full
 * name directory and refills the table inside the miss handler, which
 * is exactly how CST/COSMOS used the mechanism (Table 5's xlate-fault
 * counts).
 */

#ifndef JMSIM_MEM_XLATE_TABLE_HH
#define JMSIM_MEM_XLATE_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/word.hh"

namespace jmsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Statistics kept by the translation table. */
struct XlateStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
};

/** Set-associative hardware translation cache. */
class XlateTable
{
  public:
    /**
     * @param num_sets power-of-two number of sets
     * @param ways     associativity
     */
    explicit XlateTable(unsigned num_sets = 64, unsigned ways = 2);

    /** Insert or update a binding (ENTER). */
    void enter(Word key, Word value);

    /** Look up a key (XLATE / PROBE); counts hit or miss. */
    std::optional<Word> lookup(Word key);

    /** Remove one binding if present. */
    void invalidate(Word key);

    /** Drop every binding. */
    void clear();

    /**
     * Mutation counter: bumped by every enter/invalidate/clear. External
     * translation caches (the processor's XLATE front cache) compare it
     * to decide when their copies of bindings are stale.
     */
    std::uint64_t version() const { return version_; }

    /**
     * Account a hit served by an external front cache. A front cache may
     * only hold bindings this table returned while version() was
     * unchanged, so the hit is architecturally a table hit and must
     * count as one.
     */
    void
    noteFrontHit()
    {
        stats_.lookups += 1;
        stats_.hits += 1;
    }

    const XlateStats &stats() const { return stats_; }
    void resetStats() { stats_ = XlateStats{}; }

    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

    void save(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    struct Entry
    {
        bool valid = false;
        Word key;
        Word value;
    };

    std::size_t setIndex(Word key) const;

    unsigned numSets_;
    unsigned ways_;
    std::uint64_t version_ = 0;
    std::vector<Entry> entries_;   ///< numSets_ * ways_, set-major
    std::vector<std::uint8_t> victim_;  ///< round-robin pointer per set
    XlateStats stats_;
};

} // namespace jmsim

#endif // JMSIM_MEM_XLATE_TABLE_HH
