#include "mem/memory.hh"

#include "sim/logging.hh"

namespace jmsim
{

NodeMemory::NodeMemory(const MemoryConfig &config)
    : config_(config), imem_(config.imemWords, Word::makeBad()),
      emem_((config.ememWords + kEmemChunkWords - 1) / kEmemChunkWords)
{
    if (config.imemWords > kEmemBase)
        fatal("internal memory overlaps external base");
    if (config.ememAccessCycles < 1)
        fatal("external access must cost at least one cycle");
    static_assert(kEmemChunkWords == (1u << kEmemChunkShift));
}

void
NodeMemory::fillChunk(std::vector<Word> &chunk)
{
    chunk.assign(kEmemChunkWords, Word::makeBad());
    ememTouched_ = true;
}

void
NodeMemory::unmappedRead(Addr addr) const
{
    panic("NodeMemory::read of unmapped address " + std::to_string(addr));
}

void
NodeMemory::unmappedWrite(Addr addr) const
{
    panic("NodeMemory::write of unmapped address " + std::to_string(addr));
}

} // namespace jmsim
