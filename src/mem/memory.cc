#include "mem/memory.hh"

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"

namespace jmsim
{

NodeMemory::NodeMemory(const MemoryConfig &config)
    : config_(config), imem_(config.imemWords, Word::makeBad()),
      emem_((config.ememWords + kEmemChunkWords - 1) / kEmemChunkWords)
{
    if (config.imemWords > kEmemBase)
        fatal("internal memory overlaps external base");
    if (config.ememAccessCycles < 1)
        fatal("external access must cost at least one cycle");
    static_assert(kEmemChunkWords == (1u << kEmemChunkShift));
}

void
NodeMemory::fillChunk(std::vector<Word> &chunk)
{
    chunk.assign(kEmemChunkWords, Word::makeBad());
    ememTouched_ = true;
}

void
NodeMemory::save(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(imem_.size()));
    for (const Word &word : imem_)
        w.word(word);
    std::uint32_t backed = 0;
    for (const std::vector<Word> &chunk : emem_)
        backed += !chunk.empty();
    w.u32(backed);
    for (std::size_t i = 0; i < emem_.size(); ++i) {
        if (emem_[i].empty())
            continue;
        w.u32(static_cast<std::uint32_t>(i));
        for (const Word &word : emem_[i])
            w.word(word);
    }
    w.b(ememTouched_);
}

void
NodeMemory::restore(ckpt::Reader &r)
{
    if (r.u32() != imem_.size())
        fatal("checkpoint: internal-memory size mismatch");
    for (Word &word : imem_)
        word = r.word();
    // Release backed chunks first so chunks absent from the image
    // revert to unbacked (reads of them return Bad again).
    for (std::vector<Word> &chunk : emem_)
        if (!chunk.empty())
            std::vector<Word>().swap(chunk);
    const std::uint32_t backed = r.u32();
    for (std::uint32_t n = 0; n < backed; ++n) {
        const std::uint32_t idx = r.u32();
        if (idx >= emem_.size())
            fatal("checkpoint: external chunk index out of range");
        std::vector<Word> &chunk = emem_[idx];
        chunk.resize(kEmemChunkWords);
        for (Word &word : chunk)
            word = r.word();
    }
    ememTouched_ = r.b();
}

void
NodeMemory::unmappedRead(Addr addr) const
{
    panic("NodeMemory::read of unmapped address " + std::to_string(addr));
}

void
NodeMemory::unmappedWrite(Addr addr) const
{
    panic("NodeMemory::write of unmapped address " + std::to_string(addr));
}

} // namespace jmsim
