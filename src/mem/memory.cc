#include "mem/memory.hh"

#include "sim/logging.hh"

namespace jmsim
{

NodeMemory::NodeMemory(const MemoryConfig &config)
    : config_(config), imem_(config.imemWords, Word::makeBad())
{
    if (config.imemWords > kEmemBase)
        fatal("internal memory overlaps external base");
    if (config.ememAccessCycles < 1)
        fatal("external access must cost at least one cycle");
}

Word
NodeMemory::read(Addr addr) const
{
    if (isInternal(addr))
        return imem_[addr];
    if (isExternal(addr)) {
        if (emem_.empty())
            return Word::makeBad();
        return emem_[addr - kEmemBase];
    }
    panic("NodeMemory::read of unmapped address " + std::to_string(addr));
}

void
NodeMemory::write(Addr addr, Word value)
{
    if (isInternal(addr)) {
        imem_[addr] = value;
        return;
    }
    if (isExternal(addr)) {
        if (emem_.empty())
            emem_.assign(config_.ememWords, Word::makeBad());
        emem_[addr - kEmemBase] = value;
        return;
    }
    panic("NodeMemory::write of unmapped address " + std::to_string(addr));
}

} // namespace jmsim
