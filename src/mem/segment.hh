/**
 * @file
 * Segment allocation helpers.
 *
 * The MDP references local memory through segment descriptors (base +
 * length, see SegDesc in isa/word.hh). SegmentAllocator is the host's
 * bump allocator used by workload drivers to lay out per-node objects
 * before a run; it hands out 16-word-aligned segments so every
 * allocation is representable as a descriptor word.
 */

#ifndef JMSIM_MEM_SEGMENT_HH
#define JMSIM_MEM_SEGMENT_HH

#include <cstdint>

#include "isa/word.hh"
#include "mem/memory.hh"

namespace jmsim
{

/** Bump allocator over one region of a node's address space. */
class SegmentAllocator
{
  public:
    /** Manage [base, base + size) of some node's memory. */
    SegmentAllocator(Addr base, std::uint32_t size_words);

    /** Allocator over a node's whole external memory. */
    static SegmentAllocator forExternal(const NodeMemory &mem);

    /** Allocator over internal SRAM above the given reserved prefix. */
    static SegmentAllocator forInternal(const NodeMemory &mem,
                                        Addr reserved_words);

    /**
     * Allocate @p length words (16-word-aligned base); fatal() if the
     * region is exhausted.
     */
    SegDesc allocate(std::uint32_t length);

    /** Words still available (ignoring alignment loss). */
    std::uint32_t remaining() const { return end_ - next_; }

    /** Next base that would be returned. */
    Addr watermark() const { return next_; }

  private:
    Addr next_;
    Addr end_;
};

} // namespace jmsim

#endif // JMSIM_MEM_SEGMENT_HH
