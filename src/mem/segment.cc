#include "mem/segment.hh"

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

Addr
alignUp(Addr addr)
{
    const Addr mask = SegDesc::kBaseAlign - 1;
    return (addr + mask) & ~mask;
}

} // namespace

SegmentAllocator::SegmentAllocator(Addr base, std::uint32_t size_words)
    : next_(alignUp(base)), end_(base + size_words)
{
    if (next_ > end_)
        fatal("SegmentAllocator region too small for alignment");
}

SegmentAllocator
SegmentAllocator::forExternal(const NodeMemory &mem)
{
    return {mem.ememBase(), mem.config().ememWords};
}

SegmentAllocator
SegmentAllocator::forInternal(const NodeMemory &mem, Addr reserved_words)
{
    if (reserved_words > mem.config().imemWords)
        fatal("internal reservation exceeds SRAM size");
    return {reserved_words, mem.config().imemWords - reserved_words};
}

SegDesc
SegmentAllocator::allocate(std::uint32_t length)
{
    if (length > SegDesc::kMaxLength)
        fatal("segment too large: " + std::to_string(length));
    const Addr base = next_;
    if (base + length > end_)
        fatal("segment allocator exhausted (wanted " +
              std::to_string(length) + " words, " +
              std::to_string(end_ - base) + " left)");
    next_ = alignUp(base + length);
    return SegDesc{base, length};
}

} // namespace jmsim
