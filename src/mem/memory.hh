/**
 * @file
 * Per-node memory: 4K-word on-chip SRAM plus 1 MByte of external DRAM.
 *
 * The node sees a flat word-addressed space: internal memory occupies
 * [0, 4096) and external memory [kEmemBase, kEmemBase + 256K). The two
 * regions differ only in access cost: internal accesses add one cycle
 * to an instruction, external accesses cost kEmemAccessCycles in total
 * (the paper's 6-cycle external-memory latency). Addresses in the gap
 * or past the end raise a BadAddress fault in the processor.
 */

#ifndef JMSIM_MEM_MEMORY_HH
#define JMSIM_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "isa/word.hh"
#include "sim/types.hh"

namespace jmsim
{

/** Geometry and timing constants of a node's memory system. */
struct MemoryConfig
{
    std::uint32_t imemWords = 4096;        ///< on-chip SRAM size
    std::uint32_t ememWords = 262144;      ///< 1 MByte of DRAM (32b data/word)
    unsigned ememAccessCycles = 6;         ///< total cost of a DRAM access
    unsigned imemExtraCycles = 1;          ///< extra cost of an SRAM operand
};

/** Default base address of external memory. */
inline constexpr Addr kEmemBase = 0x10000;

/** One node's data memory. */
class NodeMemory
{
  public:
    explicit NodeMemory(const MemoryConfig &config = MemoryConfig{});

    /** True if @p addr names a valid internal-SRAM word. */
    bool isInternal(Addr addr) const { return addr < config_.imemWords; }

    /** True if @p addr names a valid external-DRAM word. */
    bool
    isExternal(Addr addr) const
    {
        return addr >= kEmemBase && addr < kEmemBase + config_.ememWords;
    }

    /** True if @p addr is mapped at all. */
    bool isValid(Addr addr) const { return isInternal(addr) || isExternal(addr); }

    /**
     * Extra cycles an instruction pays to touch @p addr
     * (on top of its 1-cycle base cost).
     */
    unsigned
    accessPenalty(Addr addr) const
    {
        return isInternal(addr) ? config_.imemExtraCycles
                                : config_.ememAccessCycles - 1;
    }

    /** Read a word; panics on unmapped address (callers pre-check). */
    Word read(Addr addr) const;

    /** Has this node ever written external memory? (lazy backing) */
    bool ememTouched() const { return !emem_.empty(); }

    /** Write a word; panics on unmapped address (callers pre-check). */
    void write(Addr addr, Word value);

    const MemoryConfig &config() const { return config_; }

    /** First address of external memory. */
    Addr ememBase() const { return kEmemBase; }

    /** One-past-last valid external address. */
    Addr ememEnd() const { return kEmemBase + config_.ememWords; }

  private:
    MemoryConfig config_;
    std::vector<Word> imem_;
    /** Allocated on first external write (most nodes never touch DRAM
     *  in small experiments; eager allocation would cost 2 MB/node). */
    mutable std::vector<Word> emem_;
};

} // namespace jmsim

#endif // JMSIM_MEM_MEMORY_HH
