/**
 * @file
 * Per-node memory: 4K-word on-chip SRAM plus 1 MByte of external DRAM.
 *
 * The node sees a flat word-addressed space: internal memory occupies
 * [0, 4096) and external memory [kEmemBase, kEmemBase + 256K). The two
 * regions differ only in access cost: internal accesses add one cycle
 * to an instruction, external accesses cost kEmemAccessCycles in total
 * (the paper's 6-cycle external-memory latency). Addresses in the gap
 * or past the end raise a BadAddress fault in the processor.
 */

#ifndef JMSIM_MEM_MEMORY_HH
#define JMSIM_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "isa/word.hh"
#include "sim/types.hh"

namespace jmsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Geometry and timing constants of a node's memory system. */
struct MemoryConfig
{
    std::uint32_t imemWords = 4096;        ///< on-chip SRAM size
    std::uint32_t ememWords = 262144;      ///< 1 MByte of DRAM (32b data/word)
    unsigned ememAccessCycles = 6;         ///< total cost of a DRAM access
    unsigned imemExtraCycles = 1;          ///< extra cost of an SRAM operand
};

/** Default base address of external memory. */
inline constexpr Addr kEmemBase = 0x10000;

/** One node's data memory. */
class NodeMemory
{
  public:
    explicit NodeMemory(const MemoryConfig &config = MemoryConfig{});

    /** True if @p addr names a valid internal-SRAM word. */
    bool isInternal(Addr addr) const { return addr < config_.imemWords; }

    /** True if @p addr names a valid external-DRAM word. */
    bool
    isExternal(Addr addr) const
    {
        return addr >= kEmemBase && addr < kEmemBase + config_.ememWords;
    }

    /** True if @p addr is mapped at all. */
    bool isValid(Addr addr) const { return isInternal(addr) || isExternal(addr); }

    /**
     * Extra cycles an instruction pays to touch @p addr
     * (on top of its 1-cycle base cost).
     */
    unsigned
    accessPenalty(Addr addr) const
    {
        return isInternal(addr) ? config_.imemExtraCycles
                                : config_.ememAccessCycles - 1;
    }

    /** Read a word; panics on unmapped address (callers pre-check). */
    Word
    read(Addr addr) const
    {
        if (isInternal(addr))
            return imem_[addr];
        if (isExternal(addr)) {
            const Addr off = addr - kEmemBase;
            const std::vector<Word> &chunk = emem_[off >> kEmemChunkShift];
            if (chunk.empty())
                return Word::makeBad();
            return chunk[off & (kEmemChunkWords - 1)];
        }
        unmappedRead(addr);
    }

    /** Has this node ever written external memory? (lazy backing) */
    bool ememTouched() const { return ememTouched_; }

    /** Write a word; panics on unmapped address (callers pre-check). */
    void
    write(Addr addr, Word value)
    {
        if (isInternal(addr)) {
            imem_[addr] = value;
            return;
        }
        if (isExternal(addr)) {
            const Addr off = addr - kEmemBase;
            std::vector<Word> &chunk = emem_[off >> kEmemChunkShift];
            if (chunk.empty())
                fillChunk(chunk);
            chunk[off & (kEmemChunkWords - 1)] = value;
            return;
        }
        unmappedWrite(addr);
    }

    const MemoryConfig &config() const { return config_; }

    /** First address of external memory. */
    Addr ememBase() const { return kEmemBase; }

    /** One-past-last valid external address. */
    Addr ememEnd() const { return kEmemBase + config_.ememWords; }

    /** Heap bytes behind this memory: the SRAM array, the chunk
     *  directory, and only the DRAM chunks actually backed so far. */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = imem_.capacity() * sizeof(Word) +
                              emem_.capacity() * sizeof(emem_[0]);
        for (const std::vector<Word> &chunk : emem_)
            total += chunk.capacity() * sizeof(Word);
        return total;
    }

    /** Serialize SRAM plus only the backed DRAM chunks. */
    void save(ckpt::Writer &w) const;

    /** Restore; previously backed chunks absent from the image drop. */
    void restore(ckpt::Reader &r);

  private:
    /** Words per external-memory chunk (must stay a power of two). */
    static constexpr std::uint32_t kEmemChunkWords = 4096;
    static constexpr std::uint32_t kEmemChunkShift = 12;

    /** Back an external chunk on first write (cold path). */
    void fillChunk(std::vector<Word> &chunk);

    [[noreturn]] void unmappedRead(Addr addr) const;
    [[noreturn]] void unmappedWrite(Addr addr) const;

    MemoryConfig config_;
    std::vector<Word> imem_;
    /** External DRAM, backed chunk by chunk on first write: most nodes
     *  touch only a small window of their 1 MByte (or none at all), so
     *  eager allocation would cost 2 MB/node and pattern-filling the
     *  whole array on first touch dominated simulator run time. */
    std::vector<std::vector<Word>> emem_;
    bool ememTouched_ = false;
};

} // namespace jmsim

#endif // JMSIM_MEM_MEMORY_HH
