/**
 * @file
 * MDP opcode set and per-opcode metadata.
 *
 * The MDP packs two 17-bit instructions per 36-bit word. jmsim keeps a
 * faithful 17-bit encoding (checked at assembly time) but executes from
 * a decoded side table for speed. Per-opcode metadata carries the base
 * cycle cost and the default accounting category used to reproduce the
 * paper's Figure 6 time breakdown.
 */

#ifndef JMSIM_ISA_OPCODE_HH
#define JMSIM_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace jmsim
{

/** All MDP operations implemented by jmsim. */
enum class Opcode : std::uint8_t
{
    // control
    Nop, Halt, Suspend, Rfe,
    Br, Bt, Bf, Call, Jmp,
    // data movement
    Move, Movei, Ldl,
    Ld, Ldx, Ldraw, Ldrawx, St, Stx,
    // arithmetic / logic (register forms)
    Add, Sub, Mul, Ash, Lsh, And, Or, Xor, Not, Neg,
    // arithmetic / logic (5-bit immediate forms)
    Addi, Ashi, Lshi, Andi, Ori, Xori,
    // arithmetic with one internal-memory operand (2-address)
    Addm, Subm, Andm, Orm, Xorm,
    // comparisons (Bool result)
    Eq, Ne, Lt, Le, Gt, Ge,
    Eqi, Nei, Lti, Lei, Gti, Gei,
    // communication: SEND<words><priority><E = end of message>
    Send0, Send0e, Send20, Send20e,
    Send1, Send1e, Send21, Send21e,
    // tags and synchronization
    Rtag, Wtag, Check,
    // naming
    Setseg, Mkhdr, Enter, Xlate, Probe,
    // special registers and host I/O
    Getsp, Setsp, Jsp, Out,

    NumOpcodes,
};

/** Operand layout of an instruction (drives encoding and parsing). */
enum class Format : std::uint8_t
{
    None,      ///< no operands
    R,         ///< single register source (JMP, OUT)
    RR,        ///< rd, ra
    RRR,       ///< rd, ra, rb
    RRI,       ///< rd, ra, simm5
    RI,        ///< rd, simm8
    RIT,       ///< rd/rs, ra, tag4 (WTAG / CHECK)
    MemLoad,   ///< rd, [Aj + offset6]
    MemLoadX,  ///< rd, [Aj + Rx]
    MemStore,  ///< [Aj + offset6], rs
    MemStoreX, ///< [Aj + Rx], rs
    MemOp,     ///< rd (src+dst), [Aj + offset6]
    Branch,    ///< word offset, 11-bit signed
    CondBranch,///< rs, word offset, 8-bit signed
    CallF,     ///< rd (link), word offset, 8-bit signed
    Wide,      ///< rd + 32-bit literal in the following word
};

/** Accounting category for the Figure 6 breakdown. */
enum class StatClass : std::uint8_t
{
    Compute = 0,  ///< plain computation
    Comm,         ///< message formatting / injection / dispatch
    Sync,         ///< suspension, restart, presence-tag handling
    Xlate,        ///< name translation
    Nnr,          ///< node-number to router-address calculation
    Os,           ///< runtime kernel (fault handlers etc.)
    Idle,         ///< nothing to run
    NumClasses,
};

/** Human-readable class name for reports. */
const char *statClassName(StatClass cls);

/** Static description of one opcode. */
struct OpcodeInfo
{
    const char *mnemonic;
    Format format;
    std::uint8_t baseCycles;  ///< cost with all operands in registers
    StatClass defaultClass;   ///< accounting class unless overridden
};

/** Metadata for an opcode. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Reverse-lookup an opcode by (case-insensitive) mnemonic. */
std::optional<Opcode> opcodeFromMnemonic(const std::string &mnemonic);

/** True for the eight SEND-family opcodes. */
bool isSend(Opcode op);

/** True for SEND*E opcodes that terminate a message. */
bool isSendEnd(Opcode op);

/** 0 or 1: the network priority a SEND-family opcode targets. */
unsigned sendPriority(Opcode op);

/** Number of words a SEND-family opcode injects (1 or 2). */
unsigned sendWords(Opcode op);

} // namespace jmsim

#endif // JMSIM_ISA_OPCODE_HH
