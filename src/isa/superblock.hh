/**
 * @file
 * Superblock IR: per-op fusion flags and block summaries.
 *
 * A superblock is a straight-line run of DecodedOps that the processor
 * may execute back-to-back inside one kernel step ("span"), committing
 * cycle accounting per op but paying the kernel-loop round trip and the
 * level-selection scan only once per run. Discovery happens once, right
 * after `Program::predecode`, and annotates every DecodedOp with a
 * flags byte (`DecodedOp::sbFlags`); the executor in
 * `Processor::executeSpan` treats those flags as authoritative and the
 * per-iaddr run lengths as an advisory bound.
 *
 * The flags partition the ISA by what an op may observe or publish:
 *
 *  - kSbStopBefore: ops that must always execute on the architectural
 *    clock edge, under the plain per-op interpreter. These either
 *    publish state the rest of the machine sees the same cycle (SEND*
 *    injects flits into the NI on the cycle it executes), change the
 *    scheduling state machine (SUSPEND pops the message queue, HALT),
 *    or read clock/queue state that arrivals mutate (GETSP of QLen).
 *  - kSbStopOpt: ops that are only unsafe inside *optimistic* spans
 *    (rollback-capable background/P0 spans): ENTER/XLATE/PROBE mutate
 *    the translation table and its stats, OUT appends to the host
 *    buffer — none of which the rollback path can undo. Safe and
 *    exclusive spans execute them inline.
 *  - kSbStopAfter: RFE. Executes inline but ends the span: it clears
 *    `inFault` (changing the preemption tier) and redirects the ip.
 *  - kSbMem: memory-class handlers (LD/ST and read-modify-write forms).
 *    Non-exclusive spans snapshot the segment-cache entry and hit/miss
 *    counters before these so a queue-guard abort or an optimistic
 *    fault can unwind the lookup side effects exactly.
 *  - kSbBranch: control transfers (BR/BT/BF/CALL/JMP/JSP). Spans
 *    follow them trace-style; they terminate *block discovery* only.
 *  - kSbSameWord: this op shares its fetch word with its fall-through
 *    predecessor (odd slot of the same instruction word), so when the
 *    predecessor executed immediately before it in the same span the
 *    fetch-cost check is elided — the predecessor already recorded the
 *    word in the fetch latch.
 */

#ifndef JMSIM_ISA_SUPERBLOCK_HH
#define JMSIM_ISA_SUPERBLOCK_HH

#include <cstdint>

#include "sim/types.hh"

namespace jmsim
{
namespace sb
{

constexpr std::uint8_t kStopBefore = 1u << 0;
constexpr std::uint8_t kStopOpt = 1u << 1;
constexpr std::uint8_t kStopAfter = 1u << 2;
constexpr std::uint8_t kMem = 1u << 3;
constexpr std::uint8_t kBranch = 1u << 4;
constexpr std::uint8_t kSameWord = 1u << 5;

} // namespace sb

/**
 * Summary of the superblock starting at one instruction address, as
 * reported by `Program::superblockAt` (introspection and tests; the
 * executor reads the packed run-length table directly).
 */
struct SuperBlockInfo
{
    IAddr start = 0;
    /** Ops executable from `start` in a safe/exclusive span before the
     *  first stop-flagged op (0 when the op at `start` itself stops). */
    std::uint16_t safeLen = 0;
    /** Same bound for optimistic (rollback-capable) spans, which also
     *  stop at kStopOpt ops. Always <= safeLen. */
    std::uint16_t optLen = 0;
    /** The run ends by executing a control transfer (vs. stopping
     *  before a flagged/invalid op). */
    bool endsInBranch = false;
};

} // namespace jmsim

#endif // JMSIM_ISA_SUPERBLOCK_HH
