/**
 * @file
 * Decoded MDP instructions and their binary encoding.
 *
 * The MDP stores two instructions per 36-bit memory word. jmsim encodes
 * each instruction in an 18-bit slot (the physical MDP used 17-bit
 * slots plus two spare bits; we fold the spare bits into the slots to
 * afford a 7-bit opcode field). Instruction addresses ("iaddr") count
 * slots: iaddr = word_address * 2 + slot. Branch targets are always
 * slot 0 of a word; the assembler pads with NOP to guarantee this.
 *
 * Wide instructions (LDL) occupy a full word by themselves and take
 * their 36-bit literal from the following memory word, so literals can
 * carry any tag (Ip continuations, Msg headers, Addr descriptors, ...).
 */

#ifndef JMSIM_ISA_INSTRUCTION_HH
#define JMSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/word.hh"

namespace jmsim
{

/** Instruction address: word_address * 2 + slot. */
using IAddr = std::uint32_t;

/** Register file addressing: 0-3 = R0-R3 (data), 4-7 = A0-A3 (address). */
namespace reg
{
inline constexpr std::uint8_t R0 = 0, R1 = 1, R2 = 2, R3 = 3;
inline constexpr std::uint8_t A0 = 4, A1 = 5, A2 = 6, A3 = 7;

/** True for the four address registers. */
inline constexpr bool isAddrReg(std::uint8_t r) { return r >= 4; }

/** Register mnemonic ("R2", "A3"). */
const char *name(std::uint8_t r);
} // namespace reg

/** Special registers readable through GETSP. */
enum class SpecialReg : std::uint8_t
{
    NodeId = 0,   ///< linear node index
    Nnr,          ///< own router address, packed x | y<<5 | z<<10
    Nodes,        ///< total node count
    Dims,         ///< mesh dims, packed x | y<<5 | z<<10
    CycleLo,      ///< low 32 bits of the cycle counter
    CycleHi,      ///< high 32 bits of the cycle counter
    QLen0,        ///< words pending in the priority-0 queue
    QLen1,        ///< words pending in the priority-1 queue
    Fval0,        ///< first fault-value word of the current level
    Fval1,        ///< second fault-value word of the current level
    Fip,          ///< faulting instruction address (Ip word)
    Tmp0,         ///< fault temporaries: writable via SETSP, one set
    Tmp1,         ///<   per level, used by JOS handlers to free up
    Tmp2,         ///<   general registers before saving state
    Tmp3,
    NumSpecials,
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;     ///< destination / first register
    std::uint8_t ra = 0;     ///< second register
    std::uint8_t rb = 0;     ///< third register
    std::uint8_t abase = 0;  ///< address-register index for memory formats
    std::int32_t imm = 0;    ///< immediate / branch offset / tag / special#
    Word literal;            ///< 36-bit literal for Wide format

    bool operator==(const Instruction &other) const = default;

    /** Pack into an 18-bit slot; range-checks every field. */
    std::uint32_t encode() const;

    /** Unpack from an 18-bit slot (literal must be supplied separately). */
    static Instruction decode(std::uint32_t slot_bits);

    /** Assembly rendering, e.g.\ "ADD R0, R1, R2". */
    std::string toString() const;
};

/** Field ranges for the 18-bit slot encoding. */
namespace encoding
{
inline constexpr int kSlotBits = 18;
inline constexpr std::int32_t kSimm5Min = -16, kSimm5Max = 15;
inline constexpr std::int32_t kSimm8Min = -128, kSimm8Max = 127;
inline constexpr std::int32_t kOff11Min = -1024, kOff11Max = 1023;
inline constexpr std::int32_t kOffset6Max = 63;
} // namespace encoding

/** Pack two slots into a 36-bit instruction word. */
std::uint64_t packInstrWord(std::uint32_t slot0, std::uint32_t slot1);

/** Extract slot 0 or 1 from a 36-bit instruction word. */
std::uint32_t unpackInstrSlot(std::uint64_t instr_word, unsigned slot);

/** Disassemble one slot (convenience wrapper over decode + toString). */
std::string disassemble(std::uint32_t slot_bits);

} // namespace jmsim

#endif // JMSIM_ISA_INSTRUCTION_HH
