/**
 * @file
 * The predecoded execution form of an MDP instruction.
 *
 * The interpreter does not walk `Instruction` + `OpcodeInfo` at run
 * time: at program load every instruction slot is translated once into
 * a flat `DecodedOp` array indexed by instruction address (see
 * `Program::predecode`). A DecodedOp carries everything `step()` needs
 * with no further table walks:
 *
 *  - a handler index into the processor's per-opcode dispatch table,
 *  - the register fields and immediate, already widened,
 *  - the statically-known successor (`nextIp`) and, for direct
 *    branches and calls, the resolved target instruction address,
 *  - the pre-resolved accounting class (region/default-class merge)
 *    and the base cycle cost,
 *  - fetch geometry: the instruction's word address and whether that
 *    word lives in external memory (DRAM fetch cost).
 *
 * Predecoding is a pure host-side optimization: it must not change any
 * architectural behaviour (cycle counts, fault values, statistics) —
 * tests/determinism_test.cc pins golden cycle counts from the
 * fetch/switch interpreter to enforce this.
 */

#ifndef JMSIM_ISA_DECODED_OP_HH
#define JMSIM_ISA_DECODED_OP_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/word.hh"

namespace jmsim
{

/** One predecoded instruction slot. */
struct DecodedOp
{
    std::uint8_t handler = 0;  ///< dispatch-table index (= opcode value)
    std::uint8_t rd = 0;       ///< destination / first register
    std::uint8_t ra = 0;       ///< second register
    std::uint8_t rb = 0;       ///< third register
    std::uint8_t abase = 0;    ///< address-register index (0-3) for memory ops
    std::uint8_t baseCycles = 1;
    std::uint8_t sbFlags = 0;  ///< superblock fusion flags (isa/superblock.hh)
    bool valid = false;        ///< a real instruction lives at this iaddr
    bool ememWord = false;     ///< instruction word fetched from DRAM
    bool countsOs = false;     ///< assembled under `.region os`
    StatClass effClass = StatClass::Compute;  ///< pre-resolved accounting
    /** Immediate / branch offset / tag / special#. For CALL this is
     *  repurposed as the precomputed link address (iaddr + 4). */
    std::int32_t imm = 0;
    Addr wordAddr = 0;         ///< iaddr >> 1 (fetch-group id)
    IAddr nextIp = 0;          ///< fall-through successor iaddr
    IAddr target = 0;          ///< resolved BR/BT/BF/CALL target iaddr
    Word literal;              ///< 36-bit literal for the Wide format
};

} // namespace jmsim

#endif // JMSIM_ISA_DECODED_OP_HH
