#include "isa/opcode.hh"

#include <array>
#include <cctype>
#include <unordered_map>

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

constexpr auto N = static_cast<std::size_t>(Opcode::NumOpcodes);

constexpr std::array<OpcodeInfo, N> kOpcodeTable = {{
    // mnemonic   format              cycles  class
    {"NOP",      Format::None,       1, StatClass::Compute},
    {"HALT",     Format::None,       1, StatClass::Compute},
    {"SUSPEND",  Format::None,       1, StatClass::Sync},
    {"RFE",      Format::None,       1, StatClass::Sync},
    {"BR",       Format::Branch,     1, StatClass::Compute},
    {"BT",       Format::CondBranch, 1, StatClass::Compute},
    {"BF",       Format::CondBranch, 1, StatClass::Compute},
    {"CALL",     Format::Wide,       2, StatClass::Compute},
    {"JMP",      Format::R,          1, StatClass::Compute},
    {"MOVE",     Format::RR,         1, StatClass::Compute},
    {"MOVEI",    Format::RI,         1, StatClass::Compute},
    {"LDL",      Format::Wide,       2, StatClass::Compute},
    {"LD",       Format::MemLoad,    1, StatClass::Compute},
    {"LDX",      Format::MemLoadX,   1, StatClass::Compute},
    {"LDRAW",    Format::MemLoad,    1, StatClass::Sync},
    {"LDRAWX",   Format::MemLoadX,   1, StatClass::Sync},
    {"ST",       Format::MemStore,   1, StatClass::Compute},
    {"STX",      Format::MemStoreX,  1, StatClass::Compute},
    {"ADD",      Format::RRR,        1, StatClass::Compute},
    {"SUB",      Format::RRR,        1, StatClass::Compute},
    {"MUL",      Format::RRR,        2, StatClass::Compute},
    {"ASH",      Format::RRR,        1, StatClass::Compute},
    {"LSH",      Format::RRR,        1, StatClass::Compute},
    {"AND",      Format::RRR,        1, StatClass::Compute},
    {"OR",       Format::RRR,        1, StatClass::Compute},
    {"XOR",      Format::RRR,        1, StatClass::Compute},
    {"NOT",      Format::RR,         1, StatClass::Compute},
    {"NEG",      Format::RR,         1, StatClass::Compute},
    {"ADDI",     Format::RRI,        1, StatClass::Compute},
    {"ASHI",     Format::RRI,        1, StatClass::Compute},
    {"LSHI",     Format::RRI,        1, StatClass::Compute},
    {"ANDI",     Format::RRI,        1, StatClass::Compute},
    {"ORI",      Format::RRI,        1, StatClass::Compute},
    {"XORI",     Format::RRI,        1, StatClass::Compute},
    {"ADDM",     Format::MemOp,      1, StatClass::Compute},
    {"SUBM",     Format::MemOp,      1, StatClass::Compute},
    {"ANDM",     Format::MemOp,      1, StatClass::Compute},
    {"ORM",      Format::MemOp,      1, StatClass::Compute},
    {"XORM",     Format::MemOp,      1, StatClass::Compute},
    {"EQ",       Format::RRR,        1, StatClass::Compute},
    {"NE",       Format::RRR,        1, StatClass::Compute},
    {"LT",       Format::RRR,        1, StatClass::Compute},
    {"LE",       Format::RRR,        1, StatClass::Compute},
    {"GT",       Format::RRR,        1, StatClass::Compute},
    {"GE",       Format::RRR,        1, StatClass::Compute},
    {"EQI",      Format::RRI,        1, StatClass::Compute},
    {"NEI",      Format::RRI,        1, StatClass::Compute},
    {"LTI",      Format::RRI,        1, StatClass::Compute},
    {"LEI",      Format::RRI,        1, StatClass::Compute},
    {"GTI",      Format::RRI,        1, StatClass::Compute},
    {"GEI",      Format::RRI,        1, StatClass::Compute},
    {"SEND0",    Format::R,          1, StatClass::Comm},
    {"SEND0E",   Format::R,          1, StatClass::Comm},
    {"SEND20",   Format::RR,         1, StatClass::Comm},
    {"SEND20E",  Format::RR,         1, StatClass::Comm},
    {"SEND1",    Format::R,          1, StatClass::Comm},
    {"SEND1E",   Format::R,          1, StatClass::Comm},
    {"SEND21",   Format::RR,         1, StatClass::Comm},
    {"SEND21E",  Format::RR,         1, StatClass::Comm},
    {"RTAG",     Format::RR,         1, StatClass::Compute},
    {"WTAG",     Format::RIT,        1, StatClass::Compute},
    {"CHECK",    Format::RIT,        1, StatClass::Sync},
    {"SETSEG",   Format::RRR,        1, StatClass::Compute},
    {"MKHDR",    Format::RRR,        1, StatClass::Comm},
    {"ENTER",    Format::RR,         3, StatClass::Xlate},
    {"XLATE",    Format::RR,         3, StatClass::Xlate},
    {"PROBE",    Format::RR,         3, StatClass::Xlate},
    {"GETSP",    Format::RI,         1, StatClass::Compute},
    {"SETSP",    Format::RI,         1, StatClass::Compute},
    {"JSP",      Format::RI,         1, StatClass::Compute},
    {"OUT",      Format::R,          1, StatClass::Compute},
}};

} // namespace

const char *
statClassName(StatClass cls)
{
    static constexpr std::array<const char *,
        static_cast<std::size_t>(StatClass::NumClasses)> names = {
        "comp", "comm", "sync", "xlate", "nnr", "os", "idle",
    };
    return names[static_cast<std::size_t>(cls)];
}

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= N)
        panic("opcodeInfo: bad opcode " + std::to_string(idx));
    return kOpcodeTable[idx];
}

std::optional<Opcode>
opcodeFromMnemonic(const std::string &mnemonic)
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (std::size_t i = 0; i < N; ++i)
            m.emplace(kOpcodeTable[i].mnemonic, static_cast<Opcode>(i));
        return m;
    }();
    std::string upper;
    upper.reserve(mnemonic.size());
    for (char c : mnemonic)
        upper.push_back(static_cast<char>(std::toupper(
            static_cast<unsigned char>(c))));
    auto it = map.find(upper);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

bool
isSend(Opcode op)
{
    return op >= Opcode::Send0 && op <= Opcode::Send21e;
}

bool
isSendEnd(Opcode op)
{
    return op == Opcode::Send0e || op == Opcode::Send20e ||
           op == Opcode::Send1e || op == Opcode::Send21e;
}

unsigned
sendPriority(Opcode op)
{
    return (op >= Opcode::Send1 && op <= Opcode::Send21e) ? 1 : 0;
}

unsigned
sendWords(Opcode op)
{
    switch (op) {
      case Opcode::Send20:
      case Opcode::Send20e:
      case Opcode::Send21:
      case Opcode::Send21e:
        return 2;
      default:
        return 1;
    }
}

} // namespace jmsim
