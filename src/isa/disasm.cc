#include <sstream>

#include "isa/instruction.hh"

namespace jmsim
{

std::string
Instruction::toString() const
{
    const auto &info = opcodeInfo(op);
    std::ostringstream out;
    out << info.mnemonic;

    const auto r = [](std::uint8_t n) { return reg::name(n); };
    const auto a = [](std::uint8_t n) {
        return std::string(reg::name(static_cast<std::uint8_t>(n + 4)));
    };

    switch (info.format) {
      case Format::None:
        break;
      case Format::R:
      case Format::Wide:
        out << " " << r(rd);
        if (info.format == Format::Wide)
            out << ", #" << literal.toString();
        break;
      case Format::RR:
        out << " " << r(rd) << ", " << r(ra);
        break;
      case Format::RRR:
        out << " " << r(rd) << ", " << r(ra) << ", " << r(rb);
        break;
      case Format::RRI:
        out << " " << r(rd) << ", " << r(ra) << ", #" << imm;
        break;
      case Format::RI:
        out << " " << r(rd) << ", #" << imm;
        break;
      case Format::RIT:
        out << " " << r(rd) << ", " << r(ra) << ", #"
            << tagName(static_cast<Tag>(imm));
        break;
      case Format::MemLoad:
        out << " " << r(rd) << ", [" << a(abase) << "+" << imm << "]";
        break;
      case Format::MemLoadX:
        out << " " << r(rd) << ", [" << a(abase) << "+" << r(rb) << "]";
        break;
      case Format::MemStore:
        out << " [" << a(abase) << "+" << imm << "], " << r(rd);
        break;
      case Format::MemStoreX:
        out << " [" << a(abase) << "+" << r(rb) << "], " << r(rd);
        break;
      case Format::MemOp:
        out << " " << r(rd) << ", [" << a(abase) << "+" << imm << "]";
        break;
      case Format::Branch:
        out << " " << (imm >= 0 ? "+" : "") << imm;
        break;
      case Format::CondBranch:
      case Format::CallF:
        out << " " << r(rd) << ", " << (imm >= 0 ? "+" : "") << imm;
        break;
    }
    return out.str();
}

std::string
disassemble(std::uint32_t slot_bits)
{
    return Instruction::decode(slot_bits).toString();
}

} // namespace jmsim
