#include "isa/word.hh"

#include <array>

#include "sim/logging.hh"

namespace jmsim
{

const char *
tagName(Tag tag)
{
    static constexpr std::array<const char *, kNumTags> names = {
        "int",  "bool", "sym",  "nil",   "ip",    "addr", "msg",   "ptr",
        "cfut", "fut",  "ctx",  "user0", "user1", "user2", "user3", "bad",
    };
    return names[static_cast<unsigned>(tag) & 0xf];
}

std::string
Word::toString() const
{
    return std::string(tagName(tag)) + ":" + std::to_string(asInt());
}

Word
MsgHeader::encode() const
{
    if (handlerIp > kMaxIp)
        fatal("message header IP out of range: " + std::to_string(handlerIp));
    if (length > kMaxLength)
        fatal("message length out of range: " + std::to_string(length));
    return {(handlerIp << 12) | length, Tag::Msg};
}

MsgHeader
MsgHeader::decode(Word word)
{
    MsgHeader hdr;
    hdr.handlerIp = word.bits >> 12;
    hdr.length = word.bits & 0xfff;
    return hdr;
}

bool
SegDesc::encodable() const
{
    if (base <= kSmallMax && length <= kSmallMax)
        return true;
    return base % kBaseAlign == 0 && base <= kMaxBase &&
           length <= kMaxLength;
}

Word
SegDesc::encode() const
{
    if (base <= kSmallMax && length <= kSmallMax)
        return {(base << 12) | length, Tag::Addr};
    if (base % kBaseAlign != 0)
        fatal("large segment base not 64-word aligned: " +
              std::to_string(base));
    if (base > kMaxBase)
        fatal("segment base out of range: " + std::to_string(base));
    if (length > kMaxLength)
        fatal("segment length out of range: " + std::to_string(length));
    return {0x80000000u | ((base / kBaseAlign) << 18) | length, Tag::Addr};
}

SegDesc
SegDesc::decode(Word word)
{
    SegDesc desc;
    if (word.bits & 0x80000000u) {
        desc.base = ((word.bits >> 18) & 0x1fff) * kBaseAlign;
        desc.length = word.bits & 0x3ffff;
    } else {
        desc.base = (word.bits >> 12) & 0xfff;
        desc.length = word.bits & 0xfff;
    }
    return desc;
}

} // namespace jmsim
