#include "isa/instruction.hh"

#include <array>

#include "sim/logging.hh"

namespace jmsim
{

namespace reg
{

const char *
name(std::uint8_t r)
{
    static constexpr std::array<const char *, 8> names = {
        "R0", "R1", "R2", "R3", "A0", "A1", "A2", "A3",
    };
    return names[r & 7];
}

} // namespace reg

namespace
{

void
checkField(std::int64_t value, std::int64_t min, std::int64_t max,
           const char *what)
{
    if (value < min || value > max)
        fatal(std::string("instruction field out of range: ") + what +
              " = " + std::to_string(value));
}

/** Encode a signed value into @p bits bits. */
std::uint32_t
signedField(std::int32_t value, unsigned bits)
{
    return static_cast<std::uint32_t>(value) & ((1u << bits) - 1);
}

/** Sign-extend the low @p bits bits. */
std::int32_t
signExtend(std::uint32_t value, unsigned bits)
{
    const std::uint32_t mask = (1u << bits) - 1;
    std::uint32_t v = value & mask;
    if (v & (1u << (bits - 1)))
        v |= ~mask;
    return static_cast<std::int32_t>(v);
}

} // namespace

std::uint32_t
Instruction::encode() const
{
    using namespace encoding;
    const auto &info = opcodeInfo(op);
    const std::uint32_t opbits = static_cast<std::uint32_t>(op) << 11;
    checkField(rd, 0, 7, "rd");
    checkField(ra, 0, 7, "ra");
    checkField(rb, 0, 7, "rb");
    checkField(abase, 0, 3, "abase");

    switch (info.format) {
      case Format::None:
        return opbits;
      case Format::R:
        return opbits | (rd << 8);
      case Format::RR:
        return opbits | (rd << 8) | (ra << 5);
      case Format::RRR:
        return opbits | (rd << 8) | (ra << 5) | (rb << 2);
      case Format::RRI:
        checkField(imm, kSimm5Min, kSimm5Max, "simm5");
        return opbits | (rd << 8) | (ra << 5) | signedField(imm, 5);
      case Format::RI:
        checkField(imm, kSimm8Min, kSimm8Max, "simm8");
        return opbits | (rd << 8) | signedField(imm, 8);
      case Format::RIT:
        checkField(imm, 0, 15, "tag4");
        return opbits | (rd << 8) | (ra << 5) |
               (static_cast<std::uint32_t>(imm) << 1);
      case Format::MemLoad:
      case Format::MemStore:
      case Format::MemOp:
        checkField(imm, 0, kOffset6Max, "offset6");
        return opbits | (rd << 8) | (static_cast<std::uint32_t>(abase) << 6) |
               static_cast<std::uint32_t>(imm);
      case Format::MemLoadX:
      case Format::MemStoreX:
        return opbits | (rd << 8) | (static_cast<std::uint32_t>(abase) << 6) |
               (rb << 3);
      case Format::Branch:
        checkField(imm, kOff11Min, kOff11Max, "off11");
        return opbits | signedField(imm, 11);
      case Format::CondBranch:
      case Format::CallF:
        checkField(imm, kSimm8Min, kSimm8Max, "off8");
        return opbits | (rd << 8) | signedField(imm, 8);
      case Format::Wide:
        return opbits | (rd << 8);
    }
    panic("unhandled instruction format");
}

Instruction
Instruction::decode(std::uint32_t slot_bits)
{
    Instruction inst;
    const auto opidx = (slot_bits >> 11) & 0x7f;
    if (opidx >= static_cast<std::uint32_t>(Opcode::NumOpcodes))
        fatal("decode: bad opcode field " + std::to_string(opidx));
    inst.op = static_cast<Opcode>(opidx);
    const auto &info = opcodeInfo(inst.op);

    const auto rd = (slot_bits >> 8) & 7;
    const auto ra = (slot_bits >> 5) & 7;
    const auto rb = (slot_bits >> 2) & 7;

    switch (info.format) {
      case Format::None:
        break;
      case Format::R:
      case Format::Wide:
        inst.rd = rd;
        break;
      case Format::RR:
        inst.rd = rd;
        inst.ra = ra;
        break;
      case Format::RRR:
        inst.rd = rd;
        inst.ra = ra;
        inst.rb = rb;
        break;
      case Format::RRI:
        inst.rd = rd;
        inst.ra = ra;
        inst.imm = signExtend(slot_bits, 5);
        break;
      case Format::RI:
        inst.rd = rd;
        inst.imm = signExtend(slot_bits, 8);
        break;
      case Format::RIT:
        inst.rd = rd;
        inst.ra = ra;
        inst.imm = static_cast<std::int32_t>((slot_bits >> 1) & 0xf);
        break;
      case Format::MemLoad:
      case Format::MemStore:
      case Format::MemOp:
        inst.rd = rd;
        inst.abase = static_cast<std::uint8_t>((slot_bits >> 6) & 3);
        inst.imm = static_cast<std::int32_t>(slot_bits & 0x3f);
        break;
      case Format::MemLoadX:
      case Format::MemStoreX:
        inst.rd = rd;
        inst.abase = static_cast<std::uint8_t>((slot_bits >> 6) & 3);
        inst.rb = (slot_bits >> 3) & 7;
        break;
      case Format::Branch:
        inst.imm = signExtend(slot_bits, 11);
        break;
      case Format::CondBranch:
      case Format::CallF:
        inst.rd = rd;
        inst.imm = signExtend(slot_bits, 8);
        break;
    }
    return inst;
}

std::uint64_t
packInstrWord(std::uint32_t slot0, std::uint32_t slot1)
{
    const std::uint32_t mask = (1u << encoding::kSlotBits) - 1;
    if (slot0 > mask || slot1 > mask)
        panic("packInstrWord: slot exceeds 18 bits");
    return static_cast<std::uint64_t>(slot0) |
           (static_cast<std::uint64_t>(slot1) << encoding::kSlotBits);
}

std::uint32_t
unpackInstrSlot(std::uint64_t instr_word, unsigned slot)
{
    const std::uint32_t mask = (1u << encoding::kSlotBits) - 1;
    return static_cast<std::uint32_t>(
        instr_word >> (slot ? encoding::kSlotBits : 0)) & mask;
}

} // namespace jmsim
