/**
 * @file
 * The MDP's 36-bit tagged word: 32 data bits plus a 4-bit type tag.
 *
 * Tags drive the J-Machine's synchronization and naming mechanisms:
 * reading a @c Cfut / @c Fut tagged slot raises a fault (presence
 * tags), @c Addr words are segment descriptors, @c Msg words are
 * message headers carrying the dispatch IP and message length, and
 * @c Ptr words are global virtual names resolved through the XLATE
 * table.
 */

#ifndef JMSIM_ISA_WORD_HH
#define JMSIM_ISA_WORD_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace jmsim
{

/** The sixteen MDP data types (4-bit tag). */
enum class Tag : std::uint8_t
{
    Int = 0,   ///< 32-bit signed integer
    Bool,      ///< boolean (0 / 1)
    Sym,       ///< symbol / opaque enumeration value
    Nil,       ///< the distinguished empty value
    Ip,        ///< instruction pointer (continuation)
    Addr,      ///< segment descriptor: base + length
    Msg,       ///< message header: dispatch IP + message length
    Ptr,       ///< global virtual name (XLATE key)
    Cfut,      ///< c-future: single-slot presence tag, traps on any read
    Fut,       ///< future: copyable without fault, traps on use
    Ctx,       ///< reference to a suspended thread context
    User0,     ///< application-defined
    User1,     ///< application-defined
    User2,     ///< application-defined
    User3,     ///< application-defined
    Bad,       ///< uninitialized / poisoned memory
};

/** Number of distinct tags (fits in 4 bits). */
inline constexpr unsigned kNumTags = 16;

/** Human-readable tag mnemonic (e.g.\ "int", "cfut"). */
const char *tagName(Tag tag);

/** One 36-bit MDP word. */
struct Word
{
    std::uint32_t bits = 0;
    Tag tag = Tag::Bad;

    constexpr Word() = default;
    constexpr Word(std::uint32_t b, Tag t) : bits(b), tag(t) {}

    /** Interpret the data bits as a signed integer. */
    constexpr std::int32_t asInt() const
    {
        return static_cast<std::int32_t>(bits);
    }

    constexpr bool operator==(const Word &other) const = default;

    /** True for the two presence-tag types that fault on read. */
    constexpr bool
    isFuture() const
    {
        return tag == Tag::Cfut || tag == Tag::Fut;
    }

    /** Short diagnostic rendering, e.g.\ "int:42". */
    std::string toString() const;

    // ---- constructors for each interpretation ----
    static constexpr Word
    makeInt(std::int32_t v)
    {
        return {static_cast<std::uint32_t>(v), Tag::Int};
    }

    static constexpr Word makeBool(bool v) { return {v ? 1u : 0u, Tag::Bool}; }
    static constexpr Word makeNil() { return {0, Tag::Nil}; }
    static constexpr Word makeIp(Addr ip) { return {ip, Tag::Ip}; }
    static constexpr Word makeSym(std::uint32_t v) { return {v, Tag::Sym}; }
    static constexpr Word makePtr(std::uint32_t name) { return {name, Tag::Ptr}; }
    static constexpr Word makeCfut(std::uint32_t v = 0) { return {v, Tag::Cfut}; }
    static constexpr Word makeBad() { return {0xdeadbeef, Tag::Bad}; }
};

/**
 * Message header word (tag @c Msg).
 *
 * Layout: bits [31:12] = dispatch instruction address (word address of
 * the handler's first instruction word), bits [11:0] = message length
 * in words, including this header.
 */
struct MsgHeader
{
    Addr handlerIp = 0;
    std::uint32_t length = 0;

    /** Largest encodable handler address. */
    static constexpr Addr kMaxIp = (1u << 20) - 1;
    /** Largest encodable message length (words). */
    static constexpr std::uint32_t kMaxLength = (1u << 12) - 1;

    /** Pack into a Msg-tagged word; faults on field overflow. */
    Word encode() const;

    /** Unpack from a word (tag is not checked here). */
    static MsgHeader decode(Word word);
};

/**
 * Segment descriptor word (tag @c Addr).
 *
 * Two formats share the 32 data bits, selected by bit 31:
 *
 *  - small/exact (bit31 = 0): base = bits [23:12] (any SRAM address,
 *    0..4095), length = bits [11:0] (up to 4095 words). Used for
 *    message segments, queue regions, and other on-chip objects whose
 *    base is not aligned.
 *  - large (bit31 = 1): base = bits [30:18] * 64 (64-word aligned, up
 *    to 512K), length = bits [17:0] (up to 256K words). Used for heap
 *    objects in external memory.
 *
 * encode() picks the small format whenever it fits exactly, otherwise
 * the large format (requiring 64-word alignment).
 */
struct SegDesc
{
    Addr base = 0;
    std::uint32_t length = 0;

    constexpr bool operator==(const SegDesc &other) const = default;

    /** Base alignment granule of the large format, in words. */
    static constexpr Addr kBaseAlign = 64;
    /** Largest small-format base / length. */
    static constexpr std::uint32_t kSmallMax = (1u << 12) - 1;
    /** Largest large-format length. */
    static constexpr std::uint32_t kMaxLength = (1u << 18) - 1;
    /** Largest encodable base address. */
    static constexpr Addr kMaxBase = ((1u << 13) - 1) * kBaseAlign;

    /** Can this (base, length) pair be represented at all? */
    bool encodable() const;

    /** Pack into an Addr-tagged word; fatal() unless encodable(). */
    Word encode() const;

    /** Unpack from a word (tag is not checked here). */
    static SegDesc decode(Word word);

    /** True if the word-offset lies inside the segment. */
    constexpr bool
    contains(std::uint32_t offset) const
    {
        return offset < length;
    }
};

} // namespace jmsim

#endif // JMSIM_ISA_WORD_HH
