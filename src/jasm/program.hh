/**
 * @file
 * The output of the jasm assembler: a loadable MDP program image.
 *
 * A Program holds the decoded instruction store (indexed by
 * instruction address), the per-instruction accounting class used for
 * the paper's Figure 6 breakdown, the initialized data words, and the
 * symbol table. One Program is shared read-only by every node of a
 * machine; per-node data is poked by workload drivers after loading.
 */

#ifndef JMSIM_JASM_PROGRAM_HH
#define JMSIM_JASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "isa/decoded_op.hh"
#include "isa/instruction.hh"
#include "isa/superblock.hh"
#include "isa/word.hh"
#include "sim/types.hh"

namespace jmsim
{

/** An assembled, loadable program image. */
class Program
{
  public:
    /** Is @p iaddr inside the assembled code? */
    bool
    validIaddr(IAddr iaddr) const
    {
        return iaddr < code_.size() && present_[iaddr];
    }

    /** Decoded instruction at @p iaddr (panics unless validIaddr). */
    const Instruction &fetch(IAddr iaddr) const;

    /** Accounting class of the instruction at @p iaddr. */
    StatClass
    klassAt(IAddr iaddr) const
    {
        return iaddr < klass_.size() ? klass_[iaddr] : StatClass::Compute;
    }

    /** Value of a symbol (label word address or .equ constant). */
    std::int32_t symbol(const std::string &name) const;

    /** True if @p name was defined. */
    bool hasSymbol(const std::string &name) const;

    /** Instruction address of a code label (slot 0 of its word). */
    IAddr
    entry(const std::string &label) const
    {
        return static_cast<IAddr>(symbol(label)) * 2;
    }

    /** Initialized data words (address, value), in emit order. */
    const std::vector<std::pair<Addr, Word>> &data() const { return data_; }

    /** Name of the nearest label at or before @p iaddr ("?" if none). */
    std::string nearestLabel(IAddr iaddr) const;

    /** Number of instruction slots emitted (for size reporting). */
    std::uint64_t instructionCount() const { return instrCount_; }

    /** Highest code word address + 1. */
    Addr codeEndWord() const { return static_cast<Addr>(code_.size() / 2); }

    /**
     * Translate the instruction store into the flat DecodedOp array the
     * interpreter executes from (see isa/decoded_op.hh). Idempotent;
     * called once at machine build. @p emem_base is the first external
     * memory address (instruction words at or above it pay the DRAM
     * fetch cost).
     */
    void predecode(Addr emem_base);

    /** Predecoded ops indexed by iaddr (empty before predecode()). */
    const std::vector<DecodedOp> &decodedOps() const { return decoded_; }

    /**
     * Per-iaddr superblock run lengths, filled by predecode(): the low
     * 16 bits bound a safe/exclusive span starting at that iaddr, the
     * high 16 bits an optimistic span (see isa/superblock.hh). A zero
     * half means the op at that address must run under the per-op
     * interpreter in that span kind.
     */
    const std::vector<std::uint32_t> &sbRunLens() const { return sbRunLen_; }

    /** No spin loop closes at this iaddr (spinHeads sentinel). */
    static constexpr IAddr kNoSpinHead = ~IAddr{0};

    /**
     * Per-iaddr spin-loop table, filled by predecode(): for a backward
     * BT/BF whose body is a pure busy-wait (only loads, register ALU,
     * compares, moves, and NOPs falling straight through from the
     * branch target back to the branch), the loop-head iaddr; the
     * kNoSpinHead sentinel everywhere else. The span executor uses it
     * to fast-forward steady spin loops in O(1) (see
     * Processor::runSpanOps).
     */
    const std::vector<IAddr> &spinHeads() const { return spinHead_; }

    /** Superblock summary starting at @p iaddr (for tests/tools). */
    SuperBlockInfo superblockAt(IAddr iaddr) const;

    /** Any SEND at priority 1 anywhere in the image? Decides whether a
     *  priority-0 handler span can ever be preempted by P1 traffic. */
    bool hasP1Sends() const { return hasP1Sends_; }

    /** Heap bytes behind the image and its predecode tables (shared
     *  machine-wide: one copy regardless of mesh size; symbol/label
     *  string storage is approximated by the container entries). */
    std::uint64_t
    footprintBytes() const
    {
        return code_.capacity() * sizeof(Instruction) +
               present_.capacity() + klass_.capacity() * sizeof(StatClass) +
               decoded_.capacity() * sizeof(DecodedOp) +
               sbRunLen_.capacity() * sizeof(std::uint32_t) +
               spinHead_.capacity() * sizeof(IAddr) +
               data_.capacity() * sizeof(data_[0]) +
               labels_.capacity() * sizeof(labels_[0]);
    }

    // ---- assembler-side construction interface ----

    /** Record an instruction at @p iaddr. */
    void setInstruction(IAddr iaddr, const Instruction &inst, StatClass cls);

    /** Record an initialized data word. */
    void addData(Addr addr, Word value) { data_.emplace_back(addr, value); }

    /** Define a symbol; fatal() on redefinition. */
    void define(const std::string &name, std::int32_t value);

    /** Record a code label for nearestLabel() reporting. */
    void addLabel(const std::string &name, IAddr iaddr);

  private:
    std::vector<Instruction> code_;
    std::vector<std::uint8_t> present_;
    std::vector<StatClass> klass_;
    std::vector<DecodedOp> decoded_;
    std::vector<std::uint32_t> sbRunLen_;
    std::vector<IAddr> spinHead_;
    bool hasP1Sends_ = false;
    std::vector<std::pair<Addr, Word>> data_;
    std::map<std::string, std::int32_t> symbols_;
    std::vector<std::pair<IAddr, std::string>> labels_;  ///< sorted by iaddr
    std::uint64_t instrCount_ = 0;
};

} // namespace jmsim

#endif // JMSIM_JASM_PROGRAM_HH
