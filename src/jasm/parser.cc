#include "jasm/parser.hh"

#include <cctype>

#include "sim/logging.hh"

namespace jmsim
{

const Token &
TokenCursor::expect(TokKind kind, const char *what)
{
    if (peek().kind != kind)
        error(std::string("expected ") + what);
    return next();
}

bool
TokenCursor::accept(TokKind kind)
{
    if (peek().kind != kind)
        return false;
    next();
    return true;
}

void
TokenCursor::error(const std::string &msg) const
{
    fatal(file_ + ":" + std::to_string(peek().line) + ": " + msg);
}

namespace
{

Expr
makeBinary(Expr::Kind kind, Expr lhs, Expr rhs)
{
    Expr e;
    e.kind = kind;
    e.lhs = std::make_unique<Expr>(std::move(lhs));
    e.rhs = std::make_unique<Expr>(std::move(rhs));
    return e;
}

Expr
parseFactor(TokenCursor &cur)
{
    if (cur.accept(TokKind::Minus)) {
        Expr e;
        e.kind = Expr::Kind::Neg;
        e.lhs = std::make_unique<Expr>(parseFactor(cur));
        return e;
    }
    if (cur.accept(TokKind::LParen)) {
        Expr e = parseExpr(cur);
        cur.expect(TokKind::RParen, "')'");
        return e;
    }
    const Token &t = cur.peek();
    if (t.kind == TokKind::Number) {
        cur.next();
        Expr e;
        e.kind = Expr::Kind::Num;
        e.num = t.value;
        return e;
    }
    if (t.kind == TokKind::Ident) {
        cur.next();
        Expr e;
        e.kind = Expr::Kind::Sym;
        e.sym = t.text;
        return e;
    }
    cur.error("expected number, symbol, or '('");
}

Expr
parseTerm(TokenCursor &cur)
{
    Expr lhs = parseFactor(cur);
    while (cur.peek().kind == TokKind::Star) {
        cur.next();
        lhs = makeBinary(Expr::Kind::Mul, std::move(lhs), parseFactor(cur));
    }
    return lhs;
}

std::string
lowered(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(c))));
    return out;
}

} // namespace

Expr
parseExpr(TokenCursor &cur)
{
    Expr lhs = parseTerm(cur);
    while (true) {
        if (cur.peek().kind == TokKind::Plus) {
            cur.next();
            lhs = makeBinary(Expr::Kind::Add, std::move(lhs), parseTerm(cur));
        } else if (cur.peek().kind == TokKind::Minus) {
            cur.next();
            lhs = makeBinary(Expr::Kind::Sub, std::move(lhs), parseTerm(cur));
        } else {
            return lhs;
        }
    }
}

LiteralSpec
parseLiteral(TokenCursor &cur)
{
    LiteralSpec spec;
    if (cur.accept(TokKind::Hash)) {
        spec.kind = LiteralSpec::Kind::IntExpr;
        spec.a = parseExpr(cur);
        return spec;
    }
    const Token &t = cur.peek();
    if (t.kind == TokKind::Ident) {
        const std::string name = lowered(t.text);
        const auto oneArg = [&](LiteralSpec::Kind kind) {
            cur.next();
            cur.expect(TokKind::LParen, "'('");
            spec.kind = kind;
            spec.a = parseExpr(cur);
            cur.expect(TokKind::RParen, "')'");
            return std::move(spec);
        };
        const auto twoArg = [&](LiteralSpec::Kind kind) {
            cur.next();
            cur.expect(TokKind::LParen, "'('");
            spec.kind = kind;
            spec.a = parseExpr(cur);
            cur.expect(TokKind::Comma, "','");
            spec.b = parseExpr(cur);
            cur.expect(TokKind::RParen, "')'");
            return std::move(spec);
        };
        if (name == "seg")
            return twoArg(LiteralSpec::Kind::Seg);
        if (name == "hdr")
            return twoArg(LiteralSpec::Kind::Hdr);
        if (name == "ip")
            return oneArg(LiteralSpec::Kind::Ip);
        if (name == "ptr")
            return oneArg(LiteralSpec::Kind::Ptr);
        if (name == "sym")
            return oneArg(LiteralSpec::Kind::Sym);
        if (name == "bool")
            return oneArg(LiteralSpec::Kind::Bool);
        if (name == "nil") {
            cur.next();
            spec.kind = LiteralSpec::Kind::Nil;
            return spec;
        }
        if (name == "cfut") {
            cur.next();
            spec.kind = LiteralSpec::Kind::Cfut;
            return spec;
        }
    }
    // Bare expression in .word context: an int word.
    spec.kind = LiteralSpec::Kind::IntExpr;
    spec.a = parseExpr(cur);
    return spec;
}

std::int64_t
evalExpr(const Expr &expr, const SymbolResolver &resolve)
{
    switch (expr.kind) {
      case Expr::Kind::Num:
        return expr.num;
      case Expr::Kind::Sym:
        return resolve(expr.sym);
      case Expr::Kind::Add:
        return evalExpr(*expr.lhs, resolve) + evalExpr(*expr.rhs, resolve);
      case Expr::Kind::Sub:
        return evalExpr(*expr.lhs, resolve) - evalExpr(*expr.rhs, resolve);
      case Expr::Kind::Mul:
        return evalExpr(*expr.lhs, resolve) * evalExpr(*expr.rhs, resolve);
      case Expr::Kind::Neg:
        return -evalExpr(*expr.lhs, resolve);
    }
    panic("bad expression node");
}

Word
resolveLiteral(const LiteralSpec &spec, const SymbolResolver &resolve)
{
    switch (spec.kind) {
      case LiteralSpec::Kind::IntExpr:
        return Word::makeInt(
            static_cast<std::int32_t>(evalExpr(spec.a, resolve)));
      case LiteralSpec::Kind::Seg: {
        SegDesc desc;
        desc.base = static_cast<Addr>(evalExpr(spec.a, resolve));
        desc.length = static_cast<std::uint32_t>(evalExpr(spec.b, resolve));
        return desc.encode();
      }
      case LiteralSpec::Kind::Hdr: {
        MsgHeader hdr;
        // Symbols evaluate to word addresses; the dispatch IP is an
        // instruction address (slot 0 of the word).
        hdr.handlerIp = static_cast<Addr>(evalExpr(spec.a, resolve)) * 2;
        hdr.length = static_cast<std::uint32_t>(evalExpr(spec.b, resolve));
        return hdr.encode();
      }
      case LiteralSpec::Kind::Ip:
        return Word::makeIp(
            static_cast<Addr>(evalExpr(spec.a, resolve)) * 2);
      case LiteralSpec::Kind::Ptr:
        return Word::makePtr(
            static_cast<std::uint32_t>(evalExpr(spec.a, resolve)));
      case LiteralSpec::Kind::Sym:
        return Word::makeSym(
            static_cast<std::uint32_t>(evalExpr(spec.a, resolve)));
      case LiteralSpec::Kind::Nil:
        return Word::makeNil();
      case LiteralSpec::Kind::Cfut:
        return Word::makeCfut();
      case LiteralSpec::Kind::Bool:
        return Word::makeBool(evalExpr(spec.a, resolve) != 0);
    }
    panic("bad literal spec");
}

Tag
tagFromName(TokenCursor &cur, const std::string &name)
{
    const std::string low = lowered(name);
    for (unsigned i = 0; i < kNumTags; ++i) {
        if (low == tagName(static_cast<Tag>(i)))
            return static_cast<Tag>(i);
    }
    cur.error("unknown tag name '" + name + "'");
}

} // namespace jmsim
