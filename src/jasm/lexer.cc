#include "jasm/lexer.hh"

#include <cctype>

#include "sim/logging.hh"

namespace jmsim
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** R0-R3 -> 0-3, A0-A3 -> 4-7, anything else -> -1. */
int
registerNumber(const std::string &ident)
{
    if (ident.size() != 2)
        return -1;
    const char c0 = static_cast<char>(std::toupper(
        static_cast<unsigned char>(ident[0])));
    const char c1 = ident[1];
    if (c1 < '0' || c1 > '3')
        return -1;
    if (c0 == 'R')
        return c1 - '0';
    if (c0 == 'A')
        return 4 + (c1 - '0');
    return -1;
}

} // namespace

std::vector<Token>
tokenize(const SourceFile &src)
{
    std::vector<Token> out;
    int line = 1;
    const std::string &s = src.text;
    std::size_t i = 0;

    auto fail = [&](const std::string &msg) {
        fatal(src.name + ":" + std::to_string(line) + ": " + msg);
    };
    auto push = [&](TokKind kind, std::string text = "",
                    std::int64_t value = 0) {
        out.push_back(Token{kind, std::move(text), value, line});
    };

    while (i < s.size()) {
        const char c = s[i];
        if (c == '\n') {
            push(TokKind::Eol);
            ++line;
            ++i;
            continue;
        }
        if (c == ';') {
            while (i < s.size() && s[i] != '\n')
                ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '.' && i + 1 < s.size() && isIdentStart(s[i + 1])) {
            std::size_t j = i + 1;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            push(TokKind::Directive, s.substr(i + 1, j - i - 1));
            i = j;
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            std::string ident = s.substr(i, j - i);
            const int regnum = registerNumber(ident);
            if (regnum >= 0)
                push(TokKind::Reg, std::move(ident), regnum);
            else
                push(TokKind::Ident, std::move(ident));
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            std::int64_t value = 0;
            if (c == '0' && j + 1 < s.size() &&
                (s[j + 1] == 'x' || s[j + 1] == 'X')) {
                j += 2;
                if (j >= s.size() ||
                    !std::isxdigit(static_cast<unsigned char>(s[j])))
                    fail("malformed hex literal");
                while (j < s.size() &&
                       std::isxdigit(static_cast<unsigned char>(s[j]))) {
                    value = value * 16 +
                            (std::isdigit(static_cast<unsigned char>(s[j]))
                                 ? s[j] - '0'
                                 : (std::tolower(s[j]) - 'a' + 10));
                    ++j;
                }
            } else {
                while (j < s.size() &&
                       std::isdigit(static_cast<unsigned char>(s[j]))) {
                    value = value * 10 + (s[j] - '0');
                    ++j;
                }
            }
            push(TokKind::Number, "", value);
            i = j;
            continue;
        }
        if (c == '\'') {
            if (i + 2 >= s.size() || s[i + 2] != '\'')
                fail("malformed character literal");
            push(TokKind::Number, "", static_cast<unsigned char>(s[i + 1]));
            i += 3;
            continue;
        }
        switch (c) {
          case ',': push(TokKind::Comma); break;
          case ':': push(TokKind::Colon); break;
          case '#': push(TokKind::Hash); break;
          case '[': push(TokKind::LBracket); break;
          case ']': push(TokKind::RBracket); break;
          case '(': push(TokKind::LParen); break;
          case ')': push(TokKind::RParen); break;
          case '+': push(TokKind::Plus); break;
          case '-': push(TokKind::Minus); break;
          case '*': push(TokKind::Star); break;
          default:
            fail(std::string("unexpected character '") + c + "'");
        }
        ++i;
    }
    push(TokKind::Eol);
    return out;
}

} // namespace jmsim
