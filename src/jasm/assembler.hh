/**
 * @file
 * The jasm assembler.
 *
 * Single layout pass with fixups: instructions and data are placed
 * immediately (sizes never depend on symbol values), symbol references
 * are patched once every source file has been read, and finally every
 * instruction is round-tripped through its 18-bit encoding to validate
 * field ranges.
 *
 * Directives:
 *   .imem / .emem        switch between the internal- and external-
 *                        memory location counters
 *   .org expr            set the current counter (eager expression)
 *   .equ NAME, expr      define a constant (eager)
 *   .word lit {, lit}    emit initialized data words
 *   .space expr          reserve words without emitting data
 *   .align               close a half-filled instruction word
 *   .region name         accounting class for following instructions
 *                        (comp, comm, sync, xlate, nnr, os)
 */

#ifndef JMSIM_JASM_ASSEMBLER_HH
#define JMSIM_JASM_ASSEMBLER_HH

#include <string>
#include <vector>

#include "jasm/lexer.hh"
#include "jasm/program.hh"

namespace jmsim
{

/** Assemble one or more source files into a program image. */
Program assemble(const std::vector<SourceFile> &sources);

/** Convenience: assemble a single anonymous source string. */
Program assembleString(const std::string &text);

} // namespace jmsim

#endif // JMSIM_JASM_ASSEMBLER_HH
