/**
 * @file
 * Expression and literal parsing shared by the assembler.
 *
 * Expressions support +, -, *, unary minus, decimal/hex/char numbers,
 * and symbols (labels evaluate to their word address). Literal specs
 * are the tagged-word constructors usable in LDL and .word:
 *
 *   #expr           int word        ip(sym)      Ip continuation
 *   seg(base, len)  Addr descriptor hdr(sym, n)  Msg header (n words)
 *   ptr(expr)       Ptr name        sym(expr)    Sym word
 *   nil             Nil word        cfut         Cfut word
 *   bool(expr)      Bool word
 */

#ifndef JMSIM_JASM_PARSER_HH
#define JMSIM_JASM_PARSER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "isa/word.hh"
#include "jasm/lexer.hh"

namespace jmsim
{

/** Expression AST node. */
struct Expr
{
    enum class Kind : std::uint8_t { Num, Sym, Add, Sub, Mul, Neg };

    Kind kind = Kind::Num;
    std::int64_t num = 0;
    std::string sym;
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
};

/** Maps a symbol name to its value; fatal() on undefined symbols. */
using SymbolResolver = std::function<std::int64_t(const std::string &)>;

/** Tagged-word literal constructor (see file comment). */
struct LiteralSpec
{
    enum class Kind : std::uint8_t
    {
        IntExpr, Seg, Hdr, Ip, Ptr, Sym, Nil, Cfut, Bool,
    };

    Kind kind = Kind::IntExpr;
    Expr a;
    Expr b;
};

/** Token stream cursor with file:line error reporting. */
class TokenCursor
{
  public:
    TokenCursor(const std::string &file, const std::vector<Token> &tokens)
        : file_(file), tokens_(tokens)
    {
    }

    const Token &peek() const { return tokens_[pos_]; }
    bool atEol() const { return peek().kind == TokKind::Eol; }
    bool atEnd() const { return pos_ + 1 >= tokens_.size(); }

    const Token &
    next()
    {
        const Token &t = tokens_[pos_];
        if (t.kind != TokKind::Eol || pos_ + 1 < tokens_.size())
            ++pos_;
        return t;
    }

    /** Consume a token of the given kind or fail with @p what. */
    const Token &expect(TokKind kind, const char *what);

    /** Consume the token if it matches; @return whether it did. */
    bool accept(TokKind kind);

    /** Report a parse error at the current token. Never returns. */
    [[noreturn]] void error(const std::string &msg) const;

  private:
    std::string file_;
    const std::vector<Token> &tokens_;
    std::size_t pos_ = 0;
};

/** Parse an expression at the cursor. */
Expr parseExpr(TokenCursor &cur);

/** Parse a literal spec (LDL operand / .word element). */
LiteralSpec parseLiteral(TokenCursor &cur);

/** Evaluate an expression tree. */
std::int64_t evalExpr(const Expr &expr, const SymbolResolver &resolve);

/** Build the tagged word a literal spec describes. */
Word resolveLiteral(const LiteralSpec &spec, const SymbolResolver &resolve);

/** Parse a tag name ("cfut", "int", ...) used after '#'. */
Tag tagFromName(TokenCursor &cur, const std::string &name);

} // namespace jmsim

#endif // JMSIM_JASM_PARSER_HH
