/**
 * @file
 * Tokenizer for jasm assembly source.
 *
 * jasm is line-oriented: ';' starts a comment, a trailing ':' makes a
 * label, directives begin with '.'. The lexer recognizes register
 * names (R0-R3, A0-A3) as their own token kind so the parser can
 * select instruction variants (e.g. LD vs LDX) by operand shape.
 */

#ifndef JMSIM_JASM_LEXER_HH
#define JMSIM_JASM_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jmsim
{

/** Token kinds produced by the lexer. */
enum class TokKind : std::uint8_t
{
    Ident,      ///< identifier (mnemonic, symbol, tag name, ...)
    Directive,  ///< .identifier
    Reg,        ///< R0-R3 / A0-A3; value = register number 0-7
    Number,     ///< integer literal (decimal, 0x hex, 'c' char)
    Comma, Colon, Hash,
    LBracket, RBracket, LParen, RParen,
    Plus, Minus, Star,
    Eol,        ///< end of line (one per source line)
};

/** One token. */
struct Token
{
    TokKind kind;
    std::string text;       ///< identifier / directive spelling
    std::int64_t value = 0; ///< number value or register index
    int line = 0;           ///< 1-based source line
};

/** A named piece of assembly source. */
struct SourceFile
{
    std::string name;
    std::string text;
};

/**
 * Tokenize one source file.
 * fatal() (with file:line) on a character the grammar can't start.
 */
std::vector<Token> tokenize(const SourceFile &src);

} // namespace jmsim

#endif // JMSIM_JASM_LEXER_HH
