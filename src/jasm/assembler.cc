#include "jasm/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <unordered_set>

#include "jasm/parser.hh"
#include "mem/memory.hh"
#include "sim/logging.hh"

namespace jmsim
{

namespace
{

std::string
upperCased(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(static_cast<char>(std::toupper(
            static_cast<unsigned char>(c))));
    return out;
}

std::optional<SpecialReg>
specialFromName(const std::string &name)
{
    static const std::map<std::string, SpecialReg> map = {
        {"NODEID", SpecialReg::NodeId},   {"NNR", SpecialReg::Nnr},
        {"NODES", SpecialReg::Nodes},     {"DIMS", SpecialReg::Dims},
        {"CYCLELO", SpecialReg::CycleLo}, {"CYCLEHI", SpecialReg::CycleHi},
        {"QLEN0", SpecialReg::QLen0},     {"QLEN1", SpecialReg::QLen1},
        {"FVAL0", SpecialReg::Fval0},     {"FVAL1", SpecialReg::Fval1},
        {"FIP", SpecialReg::Fip},
        {"TMP0", SpecialReg::Tmp0},       {"TMP1", SpecialReg::Tmp1},
        {"TMP2", SpecialReg::Tmp2},       {"TMP3", SpecialReg::Tmp3},
    };
    auto it = map.find(upperCased(name));
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

std::optional<StatClass>
statClassFromName(const std::string &name)
{
    for (unsigned i = 0; i < static_cast<unsigned>(StatClass::NumClasses);
         ++i) {
        if (name == statClassName(static_cast<StatClass>(i)))
            return static_cast<StatClass>(i);
    }
    return std::nullopt;
}

/** One placed instruction awaiting final symbol resolution. */
struct Placed
{
    IAddr iaddr;
    Instruction inst;
    StatClass cls;
    int line;
    std::string file;
};

class Assembly
{
  public:
    Program run(const std::vector<SourceFile> &sources);

    std::string curFile_;

  private:
    // ---- layout ----
    Addr &counter() { return inEmem_ ? ememCounter_ : imemCounter_; }

    void markWord(Addr addr, TokenCursor &cur);
    std::size_t emit(TokenCursor &cur, const Instruction &inst);
    void flushSlot(TokenCursor &cur);
    void defineSymbol(TokenCursor &cur, const std::string &name,
                      std::int64_t value);

    // ---- per-line parsing ----
    void parseLine(TokenCursor &cur);
    void parseDirective(TokenCursor &cur, const std::string &name);
    void parseInstruction(TokenCursor &cur, const std::string &mnemonic);
    std::int64_t eagerExpr(TokenCursor &cur);

    // ---- finalization ----
    void resolveFixups();
    Program finish();

    // Layout state.
    Addr imemCounter_ = 0;
    Addr ememCounter_ = kEmemBase;
    bool inEmem_ = false;
    unsigned slot_ = 0;             ///< next slot in the current code word
    StatClass region_ = StatClass::Compute;
    std::unordered_set<Addr> usedWords_;

    // Output under construction.
    std::vector<Placed> placed_;
    std::vector<std::pair<Addr, Word>> data_;
    std::map<std::string, std::int64_t> symbols_;
    std::vector<std::pair<IAddr, std::string>> labels_;

    // Fixups.
    struct BranchFix { std::size_t placedIdx; Expr target; };
    struct ImmFix { std::size_t placedIdx; Expr value; };
    struct LitFix { std::size_t placedIdx; Addr litAddr; LiteralSpec spec; };
    struct DataFix { std::size_t dataIdx; LiteralSpec spec; };
    std::vector<BranchFix> branchFixes_;
    std::vector<ImmFix> immFixes_;
    std::vector<LitFix> litFixes_;
    std::vector<DataFix> dataFixes_;
};

void
Assembly::markWord(Addr addr, TokenCursor &cur)
{
    if (!usedWords_.insert(addr).second)
        cur.error("word address " + std::to_string(addr) +
                  " assembled twice");
}

std::size_t
Assembly::emit(TokenCursor &cur, const Instruction &inst)
{
    const Addr word = counter();
    if (slot_ == 0)
        markWord(word, cur);
    Placed p;
    p.iaddr = word * 2 + slot_;
    p.inst = inst;
    p.cls = region_;
    p.line = cur.peek().line;
    p.file = curFile_;
    placed_.push_back(std::move(p));
    if (slot_ == 0) {
        slot_ = 1;
    } else {
        slot_ = 0;
        counter() += 1;
    }
    return placed_.size() - 1;
}

void
Assembly::flushSlot(TokenCursor &cur)
{
    if (slot_ == 1)
        emit(cur, Instruction{});  // NOP filler
}

void
Assembly::defineSymbol(TokenCursor &cur, const std::string &name,
                       std::int64_t value)
{
    auto [it, inserted] = symbols_.emplace(name, value);
    if (!inserted)
        cur.error("symbol redefined: " + name);
}

std::int64_t
Assembly::eagerExpr(TokenCursor &cur)
{
    const Expr expr = parseExpr(cur);
    return evalExpr(expr, [&](const std::string &sym) -> std::int64_t {
        auto it = symbols_.find(sym);
        if (it == symbols_.end())
            cur.error("symbol must be defined before use here: " + sym);
        return it->second;
    });
}

void
Assembly::parseDirective(TokenCursor &cur, const std::string &name)
{
    if (name == "imem") {
        flushSlot(cur);
        inEmem_ = false;
        return;
    }
    if (name == "emem") {
        flushSlot(cur);
        inEmem_ = true;
        return;
    }
    if (name == "org") {
        flushSlot(cur);
        counter() = static_cast<Addr>(eagerExpr(cur));
        return;
    }
    if (name == "equ") {
        const Token &sym = cur.expect(TokKind::Ident, "symbol name");
        const std::string sym_name = sym.text;
        cur.expect(TokKind::Comma, "','");
        defineSymbol(cur, sym_name, eagerExpr(cur));
        return;
    }
    if (name == "word") {
        flushSlot(cur);
        do {
            const Addr addr = counter();
            markWord(addr, cur);
            counter() += 1;
            data_.emplace_back(addr, Word::makeBad());
            dataFixes_.push_back({data_.size() - 1, parseLiteral(cur)});
        } while (cur.accept(TokKind::Comma));
        return;
    }
    if (name == "space") {
        flushSlot(cur);
        counter() += static_cast<Addr>(eagerExpr(cur));
        return;
    }
    if (name == "align") {
        flushSlot(cur);
        return;
    }
    if (name == "region") {
        const Token &t = cur.expect(TokKind::Ident, "region name");
        auto cls = statClassFromName(t.text);
        if (!cls)
            cur.error("unknown region '" + t.text + "'");
        region_ = *cls;
        return;
    }
    cur.error("unknown directive '." + name + "'");
}

void
Assembly::parseInstruction(TokenCursor &cur, const std::string &mnemonic)
{
    std::string canonical = upperCased(mnemonic);
    if (canonical == "RET")
        canonical = "JMP";
    auto opcode = opcodeFromMnemonic(canonical);
    if (!opcode)
        cur.error("unknown mnemonic '" + mnemonic + "'");
    Opcode op = *opcode;
    const Format format = opcodeInfo(op).format;

    Instruction inst;
    inst.op = op;

    const auto parseReg = [&]() -> std::uint8_t {
        return static_cast<std::uint8_t>(
            cur.expect(TokKind::Reg, "register").value);
    };
    const auto parseAddrRegBase = [&]() -> std::uint8_t {
        const Token &t = cur.expect(TokKind::Reg, "address register");
        if (t.value < 4)
            cur.error("memory base must be an address register");
        return static_cast<std::uint8_t>(t.value - 4);
    };

    switch (format) {
      case Format::None:
        emit(cur, inst);
        return;

      case Format::R:
        inst.rd = parseReg();
        emit(cur, inst);
        return;

      case Format::RR:
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        inst.ra = parseReg();
        emit(cur, inst);
        return;

      case Format::RRR:
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        inst.ra = parseReg();
        cur.expect(TokKind::Comma, "','");
        inst.rb = parseReg();
        emit(cur, inst);
        return;

      case Format::RRI: {
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        inst.ra = parseReg();
        cur.expect(TokKind::Comma, "','");
        cur.accept(TokKind::Hash);  // '#' before immediates is optional
        Expr e = parseExpr(cur);
        const std::size_t idx = emit(cur, inst);
        immFixes_.push_back({idx, std::move(e)});
        return;
      }

      case Format::RI: {
        if (op == Opcode::Jsp) {
            // JSP <special>: jump to the address held in a special reg.
            const Token &t = cur.expect(TokKind::Ident, "special register");
            auto spec = specialFromName(t.text);
            if (!spec)
                cur.error("unknown special register '" + t.text + "'");
            inst.imm = static_cast<std::int32_t>(*spec);
            emit(cur, inst);
            return;
        }
        if (op == Opcode::Setsp) {
            // SETSP <special>, <reg>: special := reg.
            const Token &t = cur.expect(TokKind::Ident, "special register");
            auto spec = specialFromName(t.text);
            if (!spec)
                cur.error("unknown special register '" + t.text + "'");
            inst.imm = static_cast<std::int32_t>(*spec);
            cur.expect(TokKind::Comma, "','");
            inst.rd = parseReg();
            emit(cur, inst);
            return;
        }
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        if (op == Opcode::Getsp && cur.peek().kind == TokKind::Ident) {
            auto spec = specialFromName(cur.peek().text);
            if (!spec)
                cur.error("unknown special register '" + cur.peek().text +
                          "'");
            cur.next();
            inst.imm = static_cast<std::int32_t>(*spec);
            emit(cur, inst);
            return;
        }
        cur.accept(TokKind::Hash);  // '#' before immediates is optional
        Expr e = parseExpr(cur);
        const std::size_t idx = emit(cur, inst);
        immFixes_.push_back({idx, std::move(e)});
        return;
      }

      case Format::RIT: {
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        if (op == Opcode::Wtag) {
            inst.ra = parseReg();
            cur.expect(TokKind::Comma, "','");
        }
        cur.expect(TokKind::Hash, "'#'");
        const Token &t = cur.expect(TokKind::Ident, "tag name");
        inst.imm = static_cast<std::int32_t>(tagFromName(cur, t.text));
        emit(cur, inst);
        return;
      }

      case Format::MemLoad:
      case Format::MemLoadX: {
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        cur.expect(TokKind::LBracket, "'['");
        inst.abase = parseAddrRegBase();
        if (cur.accept(TokKind::Plus)) {
            if (cur.peek().kind == TokKind::Reg) {
                const Token &t = cur.next();
                if (t.value >= 4)
                    cur.error("index must be a data register");
                if (op == Opcode::Ldraw)
                    cur.error("LDRAW does not support an index register");
                if (op != Opcode::Ldrawx)
                    inst.op = Opcode::Ldx;
                inst.rb = static_cast<std::uint8_t>(t.value);
                cur.expect(TokKind::RBracket, "']'");
                emit(cur, inst);
                return;
            }
            Expr e = parseExpr(cur);
            cur.expect(TokKind::RBracket, "']'");
            const std::size_t idx = emit(cur, inst);
            immFixes_.push_back({idx, std::move(e)});
            return;
        }
        cur.expect(TokKind::RBracket, "']'");
        emit(cur, inst);
        return;
      }

      case Format::MemStore:
      case Format::MemStoreX: {
        cur.expect(TokKind::LBracket, "'['");
        inst.abase = parseAddrRegBase();
        bool indexed = false;
        Expr off;
        if (cur.accept(TokKind::Plus)) {
            if (cur.peek().kind == TokKind::Reg) {
                const Token &t = cur.next();
                if (t.value >= 4)
                    cur.error("index must be a data register");
                inst.op = Opcode::Stx;
                inst.rb = static_cast<std::uint8_t>(t.value);
                indexed = true;
            } else {
                inst.op = Opcode::St;
                off = parseExpr(cur);
            }
        } else {
            inst.op = Opcode::St;
        }
        cur.expect(TokKind::RBracket, "']'");
        cur.expect(TokKind::Comma, "','");
        inst.rd = parseReg();
        const std::size_t idx = emit(cur, inst);
        if (!indexed && (off.kind != Expr::Kind::Num || off.num != 0))
            immFixes_.push_back({idx, std::move(off)});
        return;
      }

      case Format::MemOp: {
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        cur.expect(TokKind::LBracket, "'['");
        inst.abase = parseAddrRegBase();
        Expr off;
        bool have_off = false;
        if (cur.accept(TokKind::Plus)) {
            off = parseExpr(cur);
            have_off = true;
        }
        cur.expect(TokKind::RBracket, "']'");
        const std::size_t idx = emit(cur, inst);
        if (have_off)
            immFixes_.push_back({idx, std::move(off)});
        return;
      }

      case Format::Branch: {
        Expr target = parseExpr(cur);
        const std::size_t idx = emit(cur, inst);
        branchFixes_.push_back({idx, std::move(target)});
        return;
      }

      case Format::CondBranch:
      case Format::CallF: {
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        Expr target = parseExpr(cur);
        const std::size_t idx = emit(cur, inst);
        branchFixes_.push_back({idx, std::move(target)});
        return;
      }

      case Format::Wide: {
        inst.rd = parseReg();
        cur.expect(TokKind::Comma, "','");
        LiteralSpec spec;
        if (op == Opcode::Call) {
            // CALL <link>, <label>: the literal is the target Ip.
            spec.kind = LiteralSpec::Kind::Ip;
            spec.a = parseExpr(cur);
        } else {
            spec = parseLiteral(cur);
        }
        flushSlot(cur);
        const Addr lit_addr = counter() + 1;
        const std::size_t idx = emit(cur, inst);  // slot 0
        emit(cur, Instruction{});                 // slot 1 filler, never runs
        markWord(counter(), cur);                 // the literal word
        counter() += 1;
        litFixes_.push_back({idx, lit_addr, std::move(spec)});
        return;
      }
    }
    cur.error("unhandled instruction format");
}

void
Assembly::parseLine(TokenCursor &cur)
{
    // Labels: IDENT ':' (possibly several).
    while (cur.peek().kind == TokKind::Ident) {
        // Lookahead for ':' by trying the accept after saving state is
        // awkward with this cursor; instead peek the token after the
        // identifier via a copy-free convention: an identifier followed
        // by ':' is always a label, anything else is a mnemonic.
        const Token ident = cur.peek();
        cur.next();
        if (cur.accept(TokKind::Colon)) {
            flushSlot(cur);
            defineSymbol(cur, ident.text,
                         static_cast<std::int64_t>(counter()));
            labels_.emplace_back(counter() * 2, ident.text);
            continue;
        }
        parseInstruction(cur, ident.text);
        break;
    }
    if (cur.peek().kind == TokKind::Directive) {
        const Token t = cur.next();
        parseDirective(cur, t.text);
    }
    if (!cur.atEol())
        cur.error("trailing tokens on line");
    cur.next();  // consume EOL
}

void
Assembly::resolveFixups()
{
    const SymbolResolver resolve =
        [this](const std::string &sym) -> std::int64_t {
        auto it = symbols_.find(sym);
        if (it == symbols_.end())
            fatal("undefined symbol: " + sym);
        return it->second;
    };

    for (auto &fix : immFixes_)
        placed_[fix.placedIdx].inst.imm =
            static_cast<std::int32_t>(evalExpr(fix.value, resolve));

    for (auto &fix : branchFixes_) {
        Placed &p = placed_[fix.placedIdx];
        const std::int64_t target_word = evalExpr(fix.target, resolve);
        p.inst.imm = static_cast<std::int32_t>(
            target_word - static_cast<std::int64_t>(p.iaddr / 2));
    }

    for (auto &fix : litFixes_) {
        const Word lit = resolveLiteral(fix.spec, resolve);
        placed_[fix.placedIdx].inst.literal = lit;
        data_.emplace_back(fix.litAddr, lit);
    }

    for (auto &fix : dataFixes_)
        data_[fix.dataIdx].second = resolveLiteral(fix.spec, resolve);
}

Program
Assembly::finish()
{
    Program prog;
    for (const Placed &p : placed_) {
        // Validate every field by round-tripping the encoding.
        const std::uint32_t bits = p.inst.encode();
        Instruction check = Instruction::decode(bits);
        check.literal = p.inst.literal;
        if (!(check == p.inst))
            panic("encode/decode mismatch at " + p.file + ":" +
                  std::to_string(p.line) + " for " + p.inst.toString());
        prog.setInstruction(p.iaddr, p.inst, p.cls);
    }
    for (const auto &[name, value] : symbols_)
        prog.define(name, static_cast<std::int32_t>(value));
    for (const auto &[iaddr, name] : labels_)
        prog.addLabel(name, iaddr);
    for (const auto &[addr, word] : data_)
        prog.addData(addr, word);
    return prog;
}

Program
Assembly::run(const std::vector<SourceFile> &sources)
{
    for (const SourceFile &src : sources) {
        curFile_ = src.name;
        const std::vector<Token> tokens = tokenize(src);
        TokenCursor cur(src.name, tokens);
        while (!cur.atEnd())
            parseLine(cur);
        // Close a half-filled word at end of file.
        TokenCursor tail(src.name, tokens);
        flushSlot(tail);
    }
    resolveFixups();
    return finish();
}

} // namespace

Program
assemble(const std::vector<SourceFile> &sources)
{
    Assembly assembly;
    return assembly.run(sources);
}

Program
assembleString(const std::string &text)
{
    return assemble({SourceFile{"<string>", text}});
}

} // namespace jmsim
