#include "jasm/program.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jmsim
{

const Instruction &
Program::fetch(IAddr iaddr) const
{
    if (!validIaddr(iaddr))
        panic("instruction fetch from non-code address " +
              std::to_string(iaddr));
    return code_[iaddr];
}

std::int32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("undefined symbol: " + name);
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

std::string
Program::nearestLabel(IAddr iaddr) const
{
    auto it = std::upper_bound(
        labels_.begin(), labels_.end(), iaddr,
        [](IAddr a, const auto &entry) { return a < entry.first; });
    if (it == labels_.begin())
        return "?";
    return std::prev(it)->second;
}

namespace
{

/** Superblock fusion flags for one decoded op (see isa/superblock.hh). */
std::uint8_t
sbFlagsFor(const DecodedOp &d)
{
    switch (static_cast<Opcode>(d.handler)) {
      case Opcode::Halt:
      case Opcode::Suspend:
      case Opcode::Send0:
      case Opcode::Send0e:
      case Opcode::Send20:
      case Opcode::Send20e:
      case Opcode::Send1:
      case Opcode::Send1e:
      case Opcode::Send21:
      case Opcode::Send21e:
        return sb::kStopBefore;
      case Opcode::Getsp:
        // Queue lengths mutate under message arrival; the clock
        // specials are safe because spans track the logical cycle.
        return (d.imm == static_cast<std::int32_t>(SpecialReg::QLen0) ||
                d.imm == static_cast<std::int32_t>(SpecialReg::QLen1))
                   ? sb::kStopBefore
                   : 0;
      case Opcode::Enter:
      case Opcode::Xlate:
      case Opcode::Probe:
      case Opcode::Out:
        return sb::kStopOpt;
      case Opcode::Rfe:
        return sb::kStopAfter;
      case Opcode::Ld:
      case Opcode::Ldx:
      case Opcode::Ldraw:
      case Opcode::Ldrawx:
      case Opcode::St:
      case Opcode::Stx:
      case Opcode::Addm:
      case Opcode::Subm:
      case Opcode::Andm:
      case Opcode::Orm:
      case Opcode::Xorm:
        return sb::kMem;
      case Opcode::Br:
      case Opcode::Bt:
      case Opcode::Bf:
      case Opcode::Call:
      case Opcode::Jmp:
      case Opcode::Jsp:
        return sb::kBranch;
      default:
        return 0;
    }
}

/**
 * May this op sit inside a spin-loop body that the span executor
 * fast-forwards? Requires: no memory or external-state writes, no
 * clock or queue-length reads, and a cost that is a pure function of
 * the (frozen) registers, segment cache, and memory — so that once one
 * whole iteration reproduces the machine state exactly, every further
 * iteration is provably identical.
 */
bool
spinSafeOp(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Move:
      case Opcode::Movei:
      case Opcode::Ldl:
      case Opcode::Ld:
      case Opcode::Ldx:
      case Opcode::Ldraw:
      case Opcode::Ldrawx:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Ash:
      case Opcode::Lsh:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Addi:
      case Opcode::Ashi:
      case Opcode::Lshi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Eq:
      case Opcode::Ne:
      case Opcode::Lt:
      case Opcode::Le:
      case Opcode::Gt:
      case Opcode::Ge:
      case Opcode::Eqi:
      case Opcode::Nei:
      case Opcode::Lti:
      case Opcode::Lei:
      case Opcode::Gti:
      case Opcode::Gei:
        return true;
      default:
        return false;
    }
}

/** Longest spin-loop body considered for fast-forwarding. */
constexpr unsigned kSpinBodyMax = 16;

} // namespace

void
Program::predecode(Addr emem_base)
{
    if (decoded_.size() == code_.size() && !code_.empty())
        return;
    decoded_.assign(code_.size(), DecodedOp{});
    for (IAddr i = 0; i < code_.size(); ++i) {
        if (!present_[i])
            continue;
        const Instruction &inst = code_[i];
        const OpcodeInfo &info = opcodeInfo(inst.op);
        DecodedOp &d = decoded_[i];
        d.valid = true;
        d.handler = static_cast<std::uint8_t>(inst.op);
        d.rd = inst.rd;
        d.ra = inst.ra;
        d.rb = inst.rb;
        d.abase = inst.abase;
        d.imm = inst.imm;
        d.literal = inst.literal;
        d.baseCycles = info.baseCycles;
        d.wordAddr = i >> 1;
        d.ememWord = d.wordAddr >= emem_base;
        const StatClass region = klass_[i];
        d.countsOs = region == StatClass::Os;
        d.effClass = d.countsOs ? StatClass::Os
                     : info.defaultClass != StatClass::Compute
                         ? info.defaultClass
                         : region;
        d.nextIp = i + 1;
        switch (inst.op) {
          case Opcode::Ldl:
            d.nextIp = i + 4;  // skip the filler slot and the literal word
            break;
          case Opcode::Call:
            d.imm = static_cast<std::int32_t>(i + 4);  // link address
            d.target = inst.literal.bits;
            break;
          case Opcode::Br:
          case Opcode::Bt:
          case Opcode::Bf:
            d.target = static_cast<IAddr>(
                           static_cast<std::int64_t>(d.wordAddr) + inst.imm) *
                       2;
            break;
          default:
            break;
        }
        d.sbFlags = sbFlagsFor(d);
    }

    // ---- superblock discovery (see isa/superblock.hh) ----
    hasP1Sends_ = false;
    for (IAddr i = 0; i < code_.size(); ++i) {
        DecodedOp &d = decoded_[i];
        if (!d.valid)
            continue;
        // Odd slot reached by fall-through from the even slot of the
        // same word: the fetch-cost check can be elided in a span.
        if ((i & 1u) && decoded_[i - 1].valid &&
            decoded_[i - 1].nextIp == i)
            d.sbFlags |= sb::kSameWord;
        switch (static_cast<Opcode>(d.handler)) {
          case Opcode::Send1:
          case Opcode::Send1e:
          case Opcode::Send21:
          case Opcode::Send21e:
            hasP1Sends_ = true;
            break;
          default:
            break;
        }
    }
    // Run lengths by reverse walk: nextIp is always > i, so the
    // successor's length is final when we visit i.
    sbRunLen_.assign(code_.size(), 0);
    for (IAddr i = code_.size(); i-- > 0;) {
        const DecodedOp &d = decoded_[i];
        if (!d.valid || (d.sbFlags & sb::kStopBefore))
            continue;
        std::uint32_t safe = 1;
        std::uint32_t opt = 1;
        if (!(d.sbFlags & (sb::kBranch | sb::kStopAfter))) {
            const std::uint32_t next =
                d.nextIp < sbRunLen_.size() ? sbRunLen_[d.nextIp] : 0;
            safe = std::min<std::uint32_t>(1 + (next & 0xffffu), 0xffffu);
            opt = std::min<std::uint32_t>(1 + (next >> 16), 0xffffu);
        }
        if (d.sbFlags & sb::kStopOpt)
            opt = 0;
        sbRunLen_[i] = safe | (opt << 16);
    }

    // ---- spin-loop discovery (see Processor::runSpanOps) ----
    // A closing backward BT/BF whose body falls straight through from
    // the branch target back to the branch, touching nothing but
    // registers and (frozen-during-a-span) memory reads, marks a pure
    // busy-wait the executor may fast-forward.
    spinHead_.assign(code_.size(), kNoSpinHead);
    for (IAddr i = 0; i < code_.size(); ++i) {
        const DecodedOp &d = decoded_[i];
        if (!d.valid)
            continue;
        const Opcode op = static_cast<Opcode>(d.handler);
        if ((op != Opcode::Bt && op != Opcode::Bf) || d.target >= i)
            continue;
        IAddr ip = d.target;
        unsigned n = 0;
        while (ip < i && n < kSpinBodyMax &&
               decoded_[ip].valid &&
               spinSafeOp(static_cast<Opcode>(decoded_[ip].handler))) {
            ip = decoded_[ip].nextIp;
            n += 1;
        }
        if (ip == i)
            spinHead_[i] = d.target;
    }
}

SuperBlockInfo
Program::superblockAt(IAddr iaddr) const
{
    SuperBlockInfo info;
    info.start = iaddr;
    if (iaddr >= sbRunLen_.size())
        return info;
    info.safeLen = static_cast<std::uint16_t>(sbRunLen_[iaddr] & 0xffffu);
    info.optLen = static_cast<std::uint16_t>(sbRunLen_[iaddr] >> 16);
    IAddr ip = iaddr;
    for (std::uint16_t n = info.safeLen; n > 1; --n)
        ip = decoded_[ip].nextIp;
    info.endsInBranch =
        info.safeLen > 0 && (decoded_[ip].sbFlags & sb::kBranch) != 0;
    return info;
}

void
Program::setInstruction(IAddr iaddr, const Instruction &inst, StatClass cls)
{
    if (iaddr >= code_.size()) {
        code_.resize(iaddr + 1);
        present_.resize(iaddr + 1, 0);
        klass_.resize(iaddr + 1, StatClass::Compute);
    }
    if (present_[iaddr])
        fatal("code overlap at instruction address " + std::to_string(iaddr));
    code_[iaddr] = inst;
    present_[iaddr] = 1;
    klass_[iaddr] = cls;
    instrCount_ += 1;
}

void
Program::define(const std::string &name, std::int32_t value)
{
    auto [it, inserted] = symbols_.emplace(name, value);
    if (!inserted)
        fatal("symbol redefined: " + name);
}

void
Program::addLabel(const std::string &name, IAddr iaddr)
{
    labels_.emplace_back(iaddr, name);
    // Labels arrive in increasing address order within a section but
    // sections may interleave; keep the vector sorted incrementally.
    for (std::size_t i = labels_.size(); i > 1; --i) {
        if (labels_[i - 1].first < labels_[i - 2].first)
            std::swap(labels_[i - 1], labels_[i - 2]);
        else
            break;
    }
}

} // namespace jmsim
