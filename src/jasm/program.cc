#include "jasm/program.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jmsim
{

const Instruction &
Program::fetch(IAddr iaddr) const
{
    if (!validIaddr(iaddr))
        panic("instruction fetch from non-code address " +
              std::to_string(iaddr));
    return code_[iaddr];
}

std::int32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("undefined symbol: " + name);
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

std::string
Program::nearestLabel(IAddr iaddr) const
{
    auto it = std::upper_bound(
        labels_.begin(), labels_.end(), iaddr,
        [](IAddr a, const auto &entry) { return a < entry.first; });
    if (it == labels_.begin())
        return "?";
    return std::prev(it)->second;
}

void
Program::predecode(Addr emem_base)
{
    if (decoded_.size() == code_.size() && !code_.empty())
        return;
    decoded_.assign(code_.size(), DecodedOp{});
    for (IAddr i = 0; i < code_.size(); ++i) {
        if (!present_[i])
            continue;
        const Instruction &inst = code_[i];
        const OpcodeInfo &info = opcodeInfo(inst.op);
        DecodedOp &d = decoded_[i];
        d.valid = true;
        d.handler = static_cast<std::uint8_t>(inst.op);
        d.rd = inst.rd;
        d.ra = inst.ra;
        d.rb = inst.rb;
        d.abase = inst.abase;
        d.imm = inst.imm;
        d.literal = inst.literal;
        d.baseCycles = info.baseCycles;
        d.wordAddr = i >> 1;
        d.ememWord = d.wordAddr >= emem_base;
        const StatClass region = klass_[i];
        d.countsOs = region == StatClass::Os;
        d.effClass = d.countsOs ? StatClass::Os
                     : info.defaultClass != StatClass::Compute
                         ? info.defaultClass
                         : region;
        d.nextIp = i + 1;
        switch (inst.op) {
          case Opcode::Ldl:
            d.nextIp = i + 4;  // skip the filler slot and the literal word
            break;
          case Opcode::Call:
            d.imm = static_cast<std::int32_t>(i + 4);  // link address
            d.target = inst.literal.bits;
            break;
          case Opcode::Br:
          case Opcode::Bt:
          case Opcode::Bf:
            d.target = static_cast<IAddr>(
                           static_cast<std::int64_t>(d.wordAddr) + inst.imm) *
                       2;
            break;
          default:
            break;
        }
    }
}

void
Program::setInstruction(IAddr iaddr, const Instruction &inst, StatClass cls)
{
    if (iaddr >= code_.size()) {
        code_.resize(iaddr + 1);
        present_.resize(iaddr + 1, 0);
        klass_.resize(iaddr + 1, StatClass::Compute);
    }
    if (present_[iaddr])
        fatal("code overlap at instruction address " + std::to_string(iaddr));
    code_[iaddr] = inst;
    present_[iaddr] = 1;
    klass_[iaddr] = cls;
    instrCount_ += 1;
}

void
Program::define(const std::string &name, std::int32_t value)
{
    auto [it, inserted] = symbols_.emplace(name, value);
    if (!inserted)
        fatal("symbol redefined: " + name);
}

void
Program::addLabel(const std::string &name, IAddr iaddr)
{
    labels_.emplace_back(iaddr, name);
    // Labels arrive in increasing address order within a section but
    // sections may interleave; keep the vector sorted incrementally.
    for (std::size_t i = labels_.size(); i > 1; --i) {
        if (labels_[i - 1].first < labels_[i - 2].first)
            std::swap(labels_[i - 1], labels_[i - 2]);
        else
            break;
    }
}

} // namespace jmsim
