#include "jasm/program.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jmsim
{

const Instruction &
Program::fetch(IAddr iaddr) const
{
    if (!validIaddr(iaddr))
        panic("instruction fetch from non-code address " +
              std::to_string(iaddr));
    return code_[iaddr];
}

std::int32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("undefined symbol: " + name);
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

std::string
Program::nearestLabel(IAddr iaddr) const
{
    auto it = std::upper_bound(
        labels_.begin(), labels_.end(), iaddr,
        [](IAddr a, const auto &entry) { return a < entry.first; });
    if (it == labels_.begin())
        return "?";
    return std::prev(it)->second;
}

void
Program::setInstruction(IAddr iaddr, const Instruction &inst, StatClass cls)
{
    if (iaddr >= code_.size()) {
        code_.resize(iaddr + 1);
        present_.resize(iaddr + 1, 0);
        klass_.resize(iaddr + 1, StatClass::Compute);
    }
    if (present_[iaddr])
        fatal("code overlap at instruction address " + std::to_string(iaddr));
    code_[iaddr] = inst;
    present_[iaddr] = 1;
    klass_[iaddr] = cls;
    instrCount_ += 1;
}

void
Program::define(const std::string &name, std::int32_t value)
{
    auto [it, inserted] = symbols_.emplace(name, value);
    if (!inserted)
        fatal("symbol redefined: " + name);
}

void
Program::addLabel(const std::string &name, IAddr iaddr)
{
    labels_.emplace_back(iaddr, name);
    // Labels arrive in increasing address order within a section but
    // sections may interleave; keep the vector sorted incrementally.
    for (std::size_t i = labels_.size(); i > 1; --i) {
        if (labels_[i - 1].first < labels_[i - 2].first)
            std::swap(labels_[i - 1], labels_[i - 2]);
        else
            break;
    }
}

} // namespace jmsim
