/**
 * @file
 * In-network computing: router-level combining, fetch-and-add, and a
 * hardware barrier tree (DESIGN.md §3k).
 *
 * Three opt-in fabric primitives, each a MachineConfig toggle that
 * defaults off so the baseline machine is bit-identical to before:
 *
 *  - Fetch-and-add / reduction (add/min/max/or): a combinable request
 *    the NI hands off to this engine instead of the inject port. The
 *    request walks the e-cube path hop by hop on the dedicated netops
 *    wires toward the *home node* of its variable (var % nodes, the
 *    memory-bank interleave), is applied memory-side there, and the
 *    fetched value returns as a plain two-word message dispatched
 *    through the normal receive queue.
 *
 *  - Router-level combining (NYU Ultracomputer style): while a request
 *    waits at a router (for the output port or the home memory), it
 *    sits in that router's combine table. A later same-(var, op)
 *    request arriving at the router merges into it — one request
 *    continues, carrying both operands — and the reply de-combines on
 *    the way back: each absorbed child receives op(base, prefix) where
 *    prefix is the owner's accumulated operand at merge time, which is
 *    exactly a valid serialization of the merged requests.
 *
 *  - Hardware barrier tree: a dedicated reduce/broadcast wire tree
 *    (binomial over linear node ids, parent(i) = i & (i-1)) with
 *    per-hop mesh-distance latency. BARRIER requests climb the tree;
 *    the root's wave broadcasts back down and releases every node with
 *    a reply message carrying the wave number.
 *
 * The engine is event-driven and runs on the main thread between
 * fabric phases, so serial and sharded kernels see the identical
 * sequence: worker shards only *stage* issues (per-shard buffers,
 * exactly the MessagePool pattern) and the commit sorts them by
 * (src, srcSeq) before anything touches shared state.
 */

#ifndef JMSIM_NETOPS_NETOPS_HH
#define JMSIM_NETOPS_NETOPS_HH

#include <cstdint>
#include <vector>

#include "net/message.hh"
#include "net/router_address.hh"
#include "sim/types.hh"

namespace jmsim
{

class MeshNetwork;
class NetworkInterface;
class CounterRegistry;
class Tracer;

namespace ckpt
{
class Writer;
class Reader;
struct HandleMap;
} // namespace ckpt

/** Combinable reduction opcodes, plus the barrier marker. The value is
 *  what a program puts in the bits of its User0-tagged SEND word. */
enum class NetOp : std::uint8_t
{
    Add = 0,
    Min = 1,
    Max = 2,
    Or = 3,
    Barrier = 4,
};

/** Opcodes strictly below this are fetch-and-op reductions. */
inline constexpr std::uint8_t kNetOpFaaCount = 4;

/** MachineConfig block for the in-network computing engine. */
struct NetOpsConfig
{
    /** Router combine tables merge same-(var, op) requests in flight. */
    bool combining = false;
    /** Fetch-and-add/min/max/or requests (User0 opcodes 0..3). */
    bool faa = false;
    /** Hardware barrier tree (User0 opcode 4). */
    bool barrierTree = false;

    /** Live entries per router combine table. */
    std::uint32_t combineEntries = 4;
    /** Max requests merged into one (owner + children). */
    std::uint32_t combineFanIn = 8;
    /** NI handoff to first router, cycles. */
    std::uint32_t issueCycles = 1;
    /** Per mesh hop on the netops wires, cycles. */
    std::uint32_t hopCycles = 2;
    /** Router occupancy per forwarded request, cycles. */
    std::uint32_t serviceCycles = 1;
    /** Home-node memory update occupancy, cycles. */
    std::uint32_t memCycles = 2;
    /** Per tree edge (scaled by mesh distance), cycles. */
    std::uint32_t treeHopCycles = 2;
    /** Combine/forward latency at each tree stage, cycles. */
    std::uint32_t treeCombineCycles = 1;
    /** FAA variables per node; variable v lives at node v % nodes. */
    std::uint32_t slotsPerNode = 64;

    /** Does the machine need the engine at all? */
    bool enabled() const { return faa || barrierTree; }
};

/** nextEventCycle() when the engine has nothing scheduled. */
inline constexpr Cycle kNoNetOpsEvent = ~Cycle{0};

/** The in-network computing engine for one machine. */
class NetOps
{
  public:
    NetOps(const NetOpsConfig &config, MeshNetwork *net);

    NetOps(const NetOps &) = delete;
    NetOps &operator=(const NetOps &) = delete;

    const NetOpsConfig &config() const { return config_; }

    /** One NI pointer per node, in node-id order. */
    void attachNis(std::vector<NetworkInterface *> nis);

    void setTracer(Tracer *tracer) { trace_ = tracer; }
    void registerCounters(CounterRegistry &registry);

    /** Grow the per-shard staging buffers (main thread, before fork). */
    void setStageShards(unsigned shards);

    /** Stage one request handed off by a node's NI. Callable from any
     *  worker shard; nothing shared is touched until step() commits. */
    void stageIssue(NodeId src, std::uint8_t prio, std::uint8_t op,
                    std::int32_t var, std::int32_t operand,
                    std::uint32_t reply_ip, std::uint32_t src_seq,
                    Cycle now);

    /** No events scheduled (valid between cycles, after step()). */
    bool idle() const { return events_.empty(); }

    /** Cycle of the earliest scheduled event, or kNoNetOpsEvent. */
    Cycle
    nextEventCycle() const
    {
        return events_.empty() ? kNoNetOpsEvent : events_.front().at;
    }

    /** Commit staged issues and run every event due at @p now. Main
     *  thread, after the fabric phases of the cycle. */
    void step(Cycle now);

    /** Number of FAA variables (nodes * slotsPerNode). */
    std::uint32_t slotCount() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    /** Current value of FAA variable @p var. */
    std::int32_t slotValue(std::uint32_t var) const { return slots_[var]; }

    std::uint64_t combineHits() const { return combineHits_; }
    std::uint64_t faaOps() const { return faaOps_; }
    std::uint64_t waves() const { return waves_; }

    void resetStats();
    std::uint64_t footprintBytes() const;

    /** Reply messages built but still waiting on a full receive queue. */
    void collectHandles(std::vector<MsgHandle> &out) const;
    void save(ckpt::Writer &w, const ckpt::HandleMap &map) const;
    void restore(ckpt::Reader &r, const ckpt::HandleMap &map);

  private:
    enum class EvKind : std::uint8_t
    {
        FaaHop = 0,   ///< request arrives at router `node`
        FaaApply = 1, ///< home memory update completes
        TreeUp = 2,   ///< one arrival reaches tree stage `node`
        TreeDown = 3, ///< release wave reaches tree stage `node`
        Reply = 4,    ///< deliver a reply message into `node`'s queue
    };

    struct Event
    {
        Cycle at = 0;
        std::uint64_t seq = 0; ///< creation order; total-order tiebreak
        std::uint8_t kind = 0;
        std::uint8_t prio = 0;
        NodeId node = 0;
        NodeId src = 0;            ///< reply's nominal sender
        std::uint32_t req = 0;     ///< request slab index (Faa events)
        std::uint32_t ip = 0;      ///< reply handler ip
        std::int32_t value = 0;    ///< reply payload / wave number
        MsgHandle msg = kNullMsg;  ///< built reply awaiting retry
    };

    static constexpr std::uint32_t kNoReq = ~std::uint32_t{0};

    /** One in-flight (or absorbed) FAA request. */
    struct Request
    {
        NodeId src = 0;
        std::uint8_t prio = 0;
        std::uint8_t op = 0;
        std::uint8_t state = 0; ///< 0 free, 1 in flight, 2 absorbed
        std::int32_t var = 0;
        std::int32_t operand = 0;
        /** Owner's accumulated operand at the moment this request was
         *  absorbed — the reply de-combine prefix. */
        std::int32_t prefix = 0;
        std::uint32_t replyIp = 0;
        std::uint32_t srcSeq = 0;
        NodeId absorbedAt = 0;
        std::uint32_t firstChild = kNoReq;
        std::uint32_t lastChild = kNoReq;
        std::uint32_t nextSibling = kNoReq;
        std::uint32_t childCount = 0;
    };

    /** One combine-table entry: a request waiting at this router until
     *  @p expiresAt (its departure or memory-start time). */
    struct WaitEntry
    {
        std::uint32_t req = 0;
        Cycle expiresAt = 0;
    };

    struct Staged
    {
        NodeId src = 0;
        std::uint8_t prio = 0;
        std::uint8_t op = 0;
        std::int32_t var = 0;
        std::int32_t operand = 0;
        std::uint32_t replyIp = 0;
        std::uint32_t srcSeq = 0;
        Cycle now = 0;
    };

    struct TreeNode
    {
        std::uint32_t needed = 1; ///< children + self (rebuilt at ctor)
        std::uint32_t arrived = 0;
        std::uint32_t replyIp = 0;
        std::uint8_t prio = 0;
    };

    void commitStaged();
    void schedule(Event ev);
    Event popEvent();

    std::uint32_t allocRequest();
    void freeSubtree(std::uint32_t ri);
    std::uint64_t subtreeSize(std::uint32_t ri) const;

    NodeId homeOf(std::int32_t var) const;
    NodeId nextHop(NodeId at, NodeId dest) const;
    unsigned dist(NodeId a, NodeId b) const;
    Cycle edgeLat(NodeId a, NodeId b) const;

    static std::int32_t applyOp(std::uint8_t op, std::int32_t a,
                                std::int32_t b);

    bool tryCombine(NodeId router, std::uint32_t ri, Cycle t);
    void registerWaiting(NodeId router, std::uint32_t ri, Cycle expires);
    void pruneWaiting(NodeId router, Cycle t);

    void onFaaHop(const Event &ev);
    void onFaaApply(const Event &ev);
    void spawnReplies(std::uint32_t ri, std::int32_t base, NodeId at,
                      Cycle t0);
    void onTreeUp(const Event &ev);
    void onTreeDown(const Event &ev);
    void onReply(Event ev, Cycle now);

    NetOpsConfig config_;
    MeshNetwork *net_;
    MeshDims dims_;
    std::vector<NetworkInterface *> nis_;
    Tracer *trace_ = nullptr;

    /** Binary min-heap on (at, seq). */
    std::vector<Event> events_;
    std::uint64_t eventSeq_ = 0;

    std::vector<Request> reqs_;
    std::vector<std::uint32_t> freeReqs_;

    std::vector<std::int32_t> slots_;     ///< FAA variables, interleaved
    std::vector<Cycle> routerFree_;       ///< netops port busy-until
    std::vector<Cycle> memFree_;          ///< home memory busy-until
    std::vector<std::vector<WaitEntry>> waiting_; ///< combine tables

    std::vector<TreeNode> tree_;

    std::vector<std::vector<Staged>> stage_;

    std::uint64_t combineHits_ = 0;
    std::uint64_t combineMisses_ = 0;
    std::uint64_t faaOps_ = 0;
    std::uint64_t waves_ = 0;
    std::uint64_t replyRetries_ = 0;
};

} // namespace jmsim

#endif // JMSIM_NETOPS_NETOPS_HH
