#include "netops/netops.hh"

#include <algorithm>
#include <cassert>

#include "ckpt/snapshot.hh"
#include "isa/word.hh"
#include "mdp/network_interface.hh"
#include "net/mesh_network.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

NetOps::NetOps(const NetOpsConfig &config, MeshNetwork *net)
    : config_(config), net_(net), dims_(net->dims())
{
    const unsigned n = dims_.nodes();
    slots_.assign(static_cast<std::size_t>(n) * config_.slotsPerNode, 0);
    routerFree_.assign(n, 0);
    memFree_.assign(n, 0);
    waiting_.resize(n);
    stage_.resize(1);

    // Binomial barrier tree over linear ids: parent(i) = i & (i - 1).
    // needed = own arrival + one per child inside the machine.
    tree_.resize(n);
    for (NodeId j = 0; j < n; ++j) {
        std::uint32_t needed = 1;
        const std::uint32_t limit =
            j == 0 ? ~std::uint32_t{0} : (j & (~j + 1u));
        for (std::uint32_t bit = 1; bit < limit && (j | bit) < n &&
                                    bit != 0;
             bit <<= 1) {
            if ((j | bit) != j)
                needed += 1;
        }
        tree_[j].needed = needed;
    }
}

void
NetOps::attachNis(std::vector<NetworkInterface *> nis)
{
    nis_ = std::move(nis);
}

void
NetOps::registerCounters(CounterRegistry &registry)
{
    registry.addCounter("net.combine_hits", &combineHits_);
    registry.addCounter("net.combine_misses", &combineMisses_);
    registry.addCounter("net.faa_ops", &faaOps_);
    registry.addCounter("barrier.waves", &waves_);
    registry.addCounter("netops.reply_retries", &replyRetries_);
}

void
NetOps::setStageShards(unsigned shards)
{
    if (shards < 1)
        shards = 1;
    if (stage_.size() < shards)
        stage_.resize(shards);
}

void
NetOps::stageIssue(NodeId src, std::uint8_t prio, std::uint8_t op,
                   std::int32_t var, std::int32_t operand,
                   std::uint32_t reply_ip, std::uint32_t src_seq, Cycle now)
{
    Staged s;
    s.src = src;
    s.prio = prio;
    s.op = op;
    s.var = var;
    s.operand = operand;
    s.replyIp = reply_ip;
    s.srcSeq = src_seq;
    s.now = now;
    stage_[ThreadPool::currentShard()].push_back(s);
}

void
NetOps::resetStats()
{
    combineHits_ = 0;
    combineMisses_ = 0;
    faaOps_ = 0;
    waves_ = 0;
    replyRetries_ = 0;
}

std::uint64_t
NetOps::footprintBytes() const
{
    std::uint64_t total = 0;
    total += events_.capacity() * sizeof(Event);
    total += reqs_.capacity() * sizeof(Request);
    total += freeReqs_.capacity() * sizeof(std::uint32_t);
    total += slots_.capacity() * sizeof(std::int32_t);
    total += routerFree_.capacity() * sizeof(Cycle);
    total += memFree_.capacity() * sizeof(Cycle);
    total += tree_.capacity() * sizeof(TreeNode);
    total += nis_.capacity() * sizeof(NetworkInterface *);
    for (const auto &w : waiting_)
        total += w.capacity() * sizeof(WaitEntry);
    total += waiting_.capacity() * sizeof(std::vector<WaitEntry>);
    for (const auto &s : stage_)
        total += s.capacity() * sizeof(Staged);
    total += stage_.capacity() * sizeof(std::vector<Staged>);
    return total;
}

// --- event heap -------------------------------------------------------

void
NetOps::schedule(Event ev)
{
    ev.seq = eventSeq_++;
    events_.push_back(ev);
    std::size_t i = events_.size() - 1;
    while (i > 0) {
        const std::size_t p = (i - 1) / 2;
        const bool before = events_[i].at < events_[p].at ||
                            (events_[i].at == events_[p].at &&
                             events_[i].seq < events_[p].seq);
        if (!before)
            break;
        std::swap(events_[i], events_[p]);
        i = p;
    }
}

NetOps::Event
NetOps::popEvent()
{
    const Event top = events_.front();
    events_.front() = events_.back();
    events_.pop_back();
    const std::size_t n = events_.size();
    std::size_t i = 0;
    while (true) {
        std::size_t best = i;
        for (std::size_t c = 2 * i + 1; c <= 2 * i + 2 && c < n; ++c) {
            const bool before = events_[c].at < events_[best].at ||
                                (events_[c].at == events_[best].at &&
                                 events_[c].seq < events_[best].seq);
            if (before)
                best = c;
        }
        if (best == i)
            break;
        std::swap(events_[i], events_[best]);
        i = best;
    }
    return top;
}

// --- request slab -----------------------------------------------------

std::uint32_t
NetOps::allocRequest()
{
    if (!freeReqs_.empty()) {
        const std::uint32_t ri = freeReqs_.back();
        freeReqs_.pop_back();
        reqs_[ri] = Request{};
        return ri;
    }
    reqs_.push_back(Request{});
    return static_cast<std::uint32_t>(reqs_.size() - 1);
}

void
NetOps::freeSubtree(std::uint32_t ri)
{
    for (std::uint32_t c = reqs_[ri].firstChild; c != kNoReq;) {
        const std::uint32_t next = reqs_[c].nextSibling;
        freeSubtree(c);
        c = next;
    }
    reqs_[ri].state = 0;
    freeReqs_.push_back(ri);
}

std::uint64_t
NetOps::subtreeSize(std::uint32_t ri) const
{
    std::uint64_t total = 1;
    for (std::uint32_t c = reqs_[ri].firstChild; c != kNoReq;
         c = reqs_[c].nextSibling)
        total += subtreeSize(c);
    return total;
}

// --- geometry ---------------------------------------------------------

NodeId
NetOps::homeOf(std::int32_t var) const
{
    return static_cast<NodeId>(static_cast<std::uint32_t>(var) %
                               dims_.nodes());
}

unsigned
NetOps::dist(NodeId a, NodeId b) const
{
    return dims_.toCoord(a).hopsTo(dims_.toCoord(b));
}

Cycle
NetOps::edgeLat(NodeId a, NodeId b) const
{
    return static_cast<Cycle>(dist(a, b)) * config_.treeHopCycles +
           config_.treeCombineCycles;
}

NodeId
NetOps::nextHop(NodeId at, NodeId dest) const
{
    RouterAddr c = dims_.toCoord(at);
    const RouterAddr d = dims_.toCoord(dest);
    if (c.x != d.x)
        c.x = static_cast<std::uint8_t>(c.x + (d.x > c.x ? 1 : -1));
    else if (c.y != d.y)
        c.y = static_cast<std::uint8_t>(c.y + (d.y > c.y ? 1 : -1));
    else
        c.z = static_cast<std::uint8_t>(c.z + (d.z > c.z ? 1 : -1));
    return dims_.toLinear(c);
}

std::int32_t
NetOps::applyOp(std::uint8_t op, std::int32_t a, std::int32_t b)
{
    switch (static_cast<NetOp>(op)) {
    case NetOp::Add:
        // Wraparound add via unsigned: overflow must stay defined.
        return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                         static_cast<std::uint32_t>(b));
    case NetOp::Min:
        return std::min(a, b);
    case NetOp::Max:
        return std::max(a, b);
    case NetOp::Or:
        return a | b;
    default:
        fatal("netops: applyOp on non-reduction opcode");
    }
}

// --- combine table ----------------------------------------------------

void
NetOps::pruneWaiting(NodeId router, Cycle t)
{
    auto &table = waiting_[router];
    table.erase(std::remove_if(table.begin(), table.end(),
                               [&](const WaitEntry &e) {
                                   return e.expiresAt <= t ||
                                          reqs_[e.req].state != 1;
                               }),
                table.end());
}

void
NetOps::registerWaiting(NodeId router, std::uint32_t ri, Cycle expires)
{
    if (!config_.combining)
        return;
    auto &table = waiting_[router];
    if (table.size() >= config_.combineEntries) {
        combineMisses_ += 1;  // table full: this request is uncombinable
        return;
    }
    table.push_back(WaitEntry{ri, expires});
}

bool
NetOps::tryCombine(NodeId router, std::uint32_t ri, Cycle t)
{
    if (!config_.combining)
        return false;
    pruneWaiting(router, t);
    Request &r = reqs_[ri];
    for (const WaitEntry &e : waiting_[router]) {
        Request &w = reqs_[e.req];
        if (w.var != r.var || w.op != r.op || w.prio != r.prio)
            continue;
        if (w.childCount + 1 >= config_.combineFanIn) {
            combineMisses_ += 1;  // fan-in limit: keep travelling
            return false;
        }
        // Merge: r's reply value is op(base, w's operands so far).
        r.state = 2;
        r.prefix = w.operand;
        r.absorbedAt = router;
        r.nextSibling = kNoReq;
        if (w.lastChild == kNoReq)
            w.firstChild = ri;
        else
            reqs_[w.lastChild].nextSibling = ri;
        w.lastChild = ri;
        w.childCount += 1;
        w.operand = applyOp(w.op, w.operand, r.operand);
        combineHits_ += 1;
        if (kTraceCompiledIn && trace_ && trace_->wants(TraceKind::NetCombine)) {
            TraceEvent ev{};
            ev.cycle = t;
            ev.node = router;
            ev.kind = TraceKind::NetCombine;
            ev.arg8 = r.op;
            ev.a0 = (static_cast<std::uint64_t>(w.src) << 32) | w.srcSeq;
            ev.a1 = (static_cast<std::uint64_t>(r.src) << 32) | r.srcSeq;
            trace_->record(ev);
        }
        return true;
    }
    return false;
}

// --- issue commit -----------------------------------------------------

void
NetOps::commitStaged()
{
    std::vector<Staged> batch;
    for (auto &shard : stage_) {
        batch.insert(batch.end(), shard.begin(), shard.end());
        shard.clear();
    }
    if (batch.empty())
        return;
    // Canonical issue order regardless of kernel sharding: srcSeq is
    // unique per sender and monotone in program order.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Staged &a, const Staged &b) {
                         if (a.src != b.src)
                             return a.src < b.src;
                         return a.srcSeq < b.srcSeq;
                     });
    for (const Staged &s : batch) {
        if (s.op < kNetOpFaaCount) {
            const std::uint32_t ri = allocRequest();
            Request &r = reqs_[ri];
            r.src = s.src;
            r.prio = s.prio;
            r.op = s.op;
            r.state = 1;
            r.var = s.var;
            r.operand = s.operand;
            r.replyIp = s.replyIp;
            r.srcSeq = s.srcSeq;
            Event ev;
            ev.at = s.now + config_.issueCycles;
            ev.kind = static_cast<std::uint8_t>(EvKind::FaaHop);
            ev.node = s.src;  // requests enter at their own router
            ev.req = ri;
            schedule(ev);
        } else {
            TreeNode &tn = tree_[s.src];
            tn.replyIp = s.replyIp;
            tn.prio = s.prio;
            Event ev;
            ev.at = s.now + config_.issueCycles;
            ev.kind = static_cast<std::uint8_t>(EvKind::TreeUp);
            ev.node = s.src;
            schedule(ev);
        }
    }
}

// --- FAA path ---------------------------------------------------------

void
NetOps::onFaaHop(const Event &ev)
{
    const NodeId router = ev.node;
    const Cycle t = ev.at;
    if (tryCombine(router, ev.req, t))
        return;
    Request &r = reqs_[ev.req];
    const NodeId home = homeOf(r.var);
    if (router == home) {
        // Queue for the home memory port; combinable until it starts.
        const Cycle start = std::max(t, memFree_[home]);
        const Cycle done = start + config_.memCycles;
        memFree_[home] = done;
        registerWaiting(router, ev.req, start);
        Event apply;
        apply.at = done;
        apply.kind = static_cast<std::uint8_t>(EvKind::FaaApply);
        apply.node = home;
        apply.req = ev.req;
        schedule(apply);
        return;
    }
    // Forward one e-cube hop; combinable while holding this router.
    const Cycle depart = std::max(t, routerFree_[router]) +
                         config_.serviceCycles;
    routerFree_[router] = depart;
    registerWaiting(router, ev.req, depart);
    Event hop;
    hop.at = depart + config_.hopCycles;
    hop.kind = static_cast<std::uint8_t>(EvKind::FaaHop);
    hop.node = nextHop(router, home);
    hop.req = ev.req;
    schedule(hop);
}

void
NetOps::onFaaApply(const Event &ev)
{
    Request &r = reqs_[ev.req];
    const std::int32_t old = slots_[static_cast<std::uint32_t>(r.var)];
    slots_[static_cast<std::uint32_t>(r.var)] =
        applyOp(r.op, old, r.operand);
    faaOps_ += subtreeSize(ev.req);
    spawnReplies(ev.req, old, ev.node, ev.at);
    freeSubtree(ev.req);
}

void
NetOps::spawnReplies(std::uint32_t ri, std::int32_t base, NodeId at,
                     Cycle t0)
{
    const Request &r = reqs_[ri];
    Event reply;
    reply.at = t0 + static_cast<Cycle>(dist(at, r.src)) * config_.hopCycles;
    reply.kind = static_cast<std::uint8_t>(EvKind::Reply);
    reply.prio = r.prio;
    reply.node = r.src;
    reply.src = homeOf(r.var);
    reply.ip = r.replyIp;
    reply.value = base;
    schedule(reply);
    // De-combine: each child's value resumes from the owner's operand
    // prefix at its own merge point, recursively.
    for (std::uint32_t c = r.firstChild; c != kNoReq;
         c = reqs_[c].nextSibling) {
        const Request &cr = reqs_[c];
        const Cycle tc = t0 +
                         static_cast<Cycle>(dist(at, cr.absorbedAt)) *
                             config_.hopCycles +
                         config_.serviceCycles;
        spawnReplies(c, applyOp(r.op, base, cr.prefix), cr.absorbedAt, tc);
    }
}

// --- barrier tree -----------------------------------------------------

void
NetOps::onTreeUp(const Event &ev)
{
    TreeNode &tn = tree_[ev.node];
    tn.arrived += 1;
    if (tn.arrived < tn.needed)
        return;
    tn.arrived = 0;
    if (ev.node == 0) {
        waves_ += 1;
        Event down;
        down.at = ev.at + config_.treeCombineCycles;
        down.kind = static_cast<std::uint8_t>(EvKind::TreeDown);
        down.node = 0;
        down.value = static_cast<std::int32_t>(waves_);
        schedule(down);
        return;
    }
    const NodeId parent = ev.node & (ev.node - 1);
    Event up;
    up.at = ev.at + edgeLat(ev.node, parent);
    up.kind = static_cast<std::uint8_t>(EvKind::TreeUp);
    up.node = parent;
    schedule(up);
}

void
NetOps::onTreeDown(const Event &ev)
{
    const NodeId j = ev.node;
    const TreeNode &tn = tree_[j];
    Event reply;
    reply.at = ev.at;
    reply.kind = static_cast<std::uint8_t>(EvKind::Reply);
    reply.prio = tn.prio;
    reply.node = j;
    reply.src = j == 0 ? 0 : (j & (j - 1));
    reply.ip = tn.replyIp;
    reply.value = ev.value;
    schedule(reply);
    const unsigned n = dims_.nodes();
    const std::uint32_t limit = j == 0 ? ~std::uint32_t{0} : (j & (~j + 1u));
    for (std::uint32_t bit = 1; bit < limit && (j | bit) < n && bit != 0;
         bit <<= 1) {
        const NodeId child = j | bit;
        if (child == j)
            continue;
        Event down;
        down.at = ev.at + edgeLat(j, child);
        down.kind = static_cast<std::uint8_t>(EvKind::TreeDown);
        down.node = child;
        down.value = ev.value;
        schedule(down);
    }
}

// --- reply delivery ---------------------------------------------------

void
NetOps::onReply(Event ev, Cycle now)
{
    MessagePool &pool = net_->pool();
    MsgHandle h = ev.msg;
    if (h == kNullMsg) {
        h = pool.alloc();
        Message &m = pool.get(h);
        m.src = ev.src;
        m.dest = ev.node;
        m.destAddr = dims_.toCoord(ev.node);
        m.priority = ev.prio;
        MsgHeader hdr;
        hdr.handlerIp = ev.ip;
        hdr.length = 2;
        m.words.push_back(hdr.encode());
        m.words.push_back(Word::makeInt(ev.value));
        m.finalized = true;
        m.injectCycle = now;
        m.srcSeq = nis_[ev.src]->allocSendSeq();
    }
    Flit f;
    f.msg = h;
    f.vn = ev.prio;
    f.index = 2;  // completes word 0 (the header)
    f.tail = 0;
    NetworkInterface *ni = nis_[ev.node];
    if (!ni->canAcceptFlit(f)) {
        // Receive queue full: retry next cycle, keeping the built
        // message (its srcSeq is already allocated).
        replyRetries_ += 1;
        Event again = ev;
        again.msg = h;
        again.at = now + 1;
        schedule(again);
        return;
    }
    ni->acceptFlit(f, now);
    f.index = 4;  // completes word 1 (the value) and tails the message
    f.tail = 1;
    ni->acceptFlit(f, now);
    pool.release(h);
}

// --- per-cycle step ---------------------------------------------------

void
NetOps::step(Cycle now)
{
    commitStaged();
    while (!events_.empty() && events_.front().at <= now) {
        const Event ev = popEvent();
        switch (static_cast<EvKind>(ev.kind)) {
        case EvKind::FaaHop:
            onFaaHop(ev);
            break;
        case EvKind::FaaApply:
            onFaaApply(ev);
            break;
        case EvKind::TreeUp:
            onTreeUp(ev);
            break;
        case EvKind::TreeDown:
            onTreeDown(ev);
            break;
        case EvKind::Reply:
            onReply(ev, now);
            break;
        }
    }
}

// --- checkpointing ----------------------------------------------------

void
NetOps::collectHandles(std::vector<MsgHandle> &out) const
{
    for (const Event &ev : events_)
        if (ev.msg != kNullMsg)
            out.push_back(ev.msg);
}

void
NetOps::save(ckpt::Writer &w, const ckpt::HandleMap &map) const
{
    w.u32(static_cast<std::uint32_t>(slots_.size()));
    for (std::int32_t v : slots_)
        w.u32(static_cast<std::uint32_t>(v));

    w.u32(static_cast<std::uint32_t>(reqs_.size()));
    for (const Request &r : reqs_) {
        w.u32(r.src);
        w.u8(r.prio);
        w.u8(r.op);
        w.u8(r.state);
        w.u32(static_cast<std::uint32_t>(r.var));
        w.u32(static_cast<std::uint32_t>(r.operand));
        w.u32(static_cast<std::uint32_t>(r.prefix));
        w.u32(r.replyIp);
        w.u32(r.srcSeq);
        w.u32(r.absorbedAt);
        w.u32(r.firstChild);
        w.u32(r.lastChild);
        w.u32(r.nextSibling);
        w.u32(r.childCount);
    }
    w.u32(static_cast<std::uint32_t>(freeReqs_.size()));
    for (std::uint32_t ri : freeReqs_)
        w.u32(ri);

    w.u32(static_cast<std::uint32_t>(events_.size()));
    for (const Event &ev : events_) {
        w.u64(ev.at);
        w.u64(ev.seq);
        w.u8(ev.kind);
        w.u8(ev.prio);
        w.u32(ev.node);
        w.u32(ev.src);
        w.u32(ev.req);
        w.u32(ev.ip);
        w.u32(static_cast<std::uint32_t>(ev.value));
        w.u32(map.ordinalOf(ev.msg));
    }
    w.u64(eventSeq_);

    for (Cycle c : routerFree_)
        w.u64(c);
    for (Cycle c : memFree_)
        w.u64(c);

    std::uint32_t nonempty = 0;
    for (const auto &table : waiting_)
        if (!table.empty())
            nonempty += 1;
    w.u32(nonempty);
    for (std::uint32_t router = 0; router < waiting_.size(); ++router) {
        const auto &table = waiting_[router];
        if (table.empty())
            continue;
        w.u32(router);
        w.u32(static_cast<std::uint32_t>(table.size()));
        for (const WaitEntry &e : table) {
            w.u32(e.req);
            w.u64(e.expiresAt);
        }
    }

    for (const TreeNode &tn : tree_) {
        w.u32(tn.arrived);
        w.u32(tn.replyIp);
        w.u8(tn.prio);
    }

    w.u64(combineHits_);
    w.u64(combineMisses_);
    w.u64(faaOps_);
    w.u64(waves_);
    w.u64(replyRetries_);
}

void
NetOps::restore(ckpt::Reader &r, const ckpt::HandleMap &map)
{
    const std::uint32_t slot_count = r.u32();
    if (slot_count != slots_.size())
        fatal("netops restore: slot count mismatch");
    for (std::uint32_t i = 0; i < slot_count; ++i)
        slots_[i] = static_cast<std::int32_t>(r.u32());

    reqs_.assign(r.u32(), Request{});
    for (Request &req : reqs_) {
        req.src = r.u32();
        req.prio = r.u8();
        req.op = r.u8();
        req.state = r.u8();
        req.var = static_cast<std::int32_t>(r.u32());
        req.operand = static_cast<std::int32_t>(r.u32());
        req.prefix = static_cast<std::int32_t>(r.u32());
        req.replyIp = r.u32();
        req.srcSeq = r.u32();
        req.absorbedAt = r.u32();
        req.firstChild = r.u32();
        req.lastChild = r.u32();
        req.nextSibling = r.u32();
        req.childCount = r.u32();
    }
    freeReqs_.assign(r.u32(), 0);
    for (std::uint32_t &ri : freeReqs_)
        ri = r.u32();

    events_.assign(r.u32(), Event{});
    for (Event &ev : events_) {
        ev.at = r.u64();
        ev.seq = r.u64();
        ev.kind = r.u8();
        ev.prio = r.u8();
        ev.node = r.u32();
        ev.src = r.u32();
        ev.req = r.u32();
        ev.ip = r.u32();
        ev.value = static_cast<std::int32_t>(r.u32());
        ev.msg = map.handleOf(r.u32());
    }
    eventSeq_ = r.u64();

    for (Cycle &c : routerFree_)
        c = r.u64();
    for (Cycle &c : memFree_)
        c = r.u64();

    for (auto &table : waiting_)
        table.clear();
    const std::uint32_t nonempty = r.u32();
    for (std::uint32_t i = 0; i < nonempty; ++i) {
        const std::uint32_t router = r.u32();
        if (router >= waiting_.size())
            fatal("netops restore: combine-table router out of range");
        auto &table = waiting_[router];
        table.assign(r.u32(), WaitEntry{});
        for (WaitEntry &e : table) {
            e.req = r.u32();
            e.expiresAt = r.u64();
        }
    }

    for (TreeNode &tn : tree_) {
        tn.arrived = r.u32();
        tn.replyIp = r.u32();
        tn.prio = r.u8();
    }

    combineHits_ = r.u64();
    combineMisses_ = r.u64();
    faaOps_ = r.u64();
    waves_ = r.u64();
    replyRetries_ = r.u64();

    for (auto &shard : stage_)
        shard.clear();
}

} // namespace jmsim
