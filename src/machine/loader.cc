#include "machine/loader.hh"

#include <array>

#include "machine/jmachine.hh"
#include "sim/logging.hh"

namespace jmsim
{

const char *
faultVectorSymbol(unsigned fault_kind)
{
    static constexpr std::array<const char *, kNumFaults> names = {
        "jos_fault_cfut",  "jos_fault_fut",    "jos_fault_send",
        "jos_fault_sendfmt", "jos_fault_xlate", "jos_fault_tag",
        "jos_fault_bounds", "jos_fault_badaddr",
    };
    return names[fault_kind];
}

void
loadProgram(JMachine &machine, const std::string &boot_label)
{
    const Program &prog = machine.program();
    const NetworkInterface::Config &ni = machine.config().ni;

    // The message-queue regions live in SRAM; refuse images that walk
    // into them.
    const auto overlapsQueues = [&](Addr addr) {
        return (addr >= ni.queueBase0 && addr < ni.queueBase0 + ni.queueWords0) ||
               (addr >= ni.queueBase1 && addr < ni.queueBase1 + ni.queueWords1);
    };
    for (const auto &[addr, word] : prog.data()) {
        (void)word;
        if (overlapsQueues(addr))
            fatal("program data at address " + std::to_string(addr) +
                  " overlaps a message-queue region");
    }
    for (Addr w = 0; w < prog.codeEndWord(); ++w) {
        if ((prog.validIaddr(w * 2) || prog.validIaddr(w * 2 + 1)) &&
            overlapsQueues(w))
            fatal("program code at word " + std::to_string(w) +
                  " overlaps a message-queue region");
    }

    if (!prog.hasSymbol(boot_label))
        fatal("program has no boot symbol '" + boot_label + "'");
    const IAddr boot_ip = prog.entry(boot_label);

    for (NodeId id = 0; id < machine.nodeCount(); ++id) {
        Node &node = machine.node(id);
        for (const auto &[addr, word] : prog.data())
            node.memory().write(addr, word);
        if (prog.hasSymbol("jos_bounce"))
            node.ni().setBounceHandler(prog.entry("jos_bounce"));
        for (unsigned f = 0; f < kNumFaults; ++f) {
            const char *sym = faultVectorSymbol(f);
            if (prog.hasSymbol(sym)) {
                node.processor().setFaultVector(static_cast<FaultKind>(f),
                                                prog.entry(sym));
            }
        }
        node.processor().boot(boot_ip);
    }
}

} // namespace jmsim
