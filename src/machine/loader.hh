/**
 * @file
 * Program loading: data image, fault vectors, and boot.
 *
 * Fault vectors are taken from well-known program symbols (defined by
 * the JOS runtime kernel): jos_fault_cfut, jos_fault_fut,
 * jos_fault_send, jos_fault_sendfmt, jos_fault_xlate, jos_fault_tag,
 * jos_fault_bounds, jos_fault_badaddr. Missing symbols leave the
 * corresponding fault unhandled (the simulator stops with a
 * diagnostic if one fires).
 */

#ifndef JMSIM_MACHINE_LOADER_HH
#define JMSIM_MACHINE_LOADER_HH

#include <string>

namespace jmsim
{

class JMachine;

/** Load the machine's program onto every node and boot them. */
void loadProgram(JMachine &machine, const std::string &boot_label);

/** The vector symbol for a fault kind ("jos_fault_cfut", ...). */
const char *faultVectorSymbol(unsigned fault_kind);

} // namespace jmsim

#endif // JMSIM_MACHINE_LOADER_HH
