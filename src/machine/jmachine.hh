/**
 * @file
 * The top-level machine: an X*Y*Z mesh of nodes plus the interconnect.
 *
 * The run loop is cycle-stepped but only touches active components:
 * nodes deactivate when their processor has nothing runnable and their
 * NI has drained, and reactivate when a message header arrives. A run
 * ends at a cycle limit, when every node has executed HALT, or when
 * the whole machine is quiescent (nothing running, nothing in flight).
 */

#ifndef JMSIM_MACHINE_JMACHINE_HH
#define JMSIM_MACHINE_JMACHINE_HH

#include <memory>
#include <vector>

#include "jasm/program.hh"
#include "machine/node.hh"
#include "net/mesh_network.hh"

namespace jmsim
{

/** Everything configurable about a machine. */
struct MachineConfig
{
    MeshDims dims{2, 1, 1};
    MemoryConfig memory;
    NetworkInterface::Config ni;
    ProcessorConfig proc;
    bool roundRobinArbitration = false;
};

/** Why a run() returned. */
enum class StopReason : std::uint8_t
{
    CycleLimit,
    AllHalted,
    Quiescent,   ///< nothing running and nothing in flight
};

/** Result of a run() call. */
struct RunResult
{
    Cycle cycles = 0;        ///< absolute cycle count at stop
    StopReason reason = StopReason::CycleLimit;
};

/** One simulated J-Machine. */
class JMachine
{
  public:
    /**
     * Build a machine and load @p prog on every node.
     * @param boot_label program symbol where background threads start
     */
    JMachine(const MachineConfig &config, Program prog,
             const std::string &boot_label = "boot");

    JMachine(const JMachine &) = delete;
    JMachine &operator=(const JMachine &) = delete;

    /** Run until @p max_cycles (absolute), all-halt, or quiescence. */
    RunResult run(Cycle max_cycles);

    /** Run for @p cycles more cycles. */
    RunResult runFor(Cycle cycles) { return run(now_ + cycles); }

    Node &node(NodeId id) { return *nodes_[id]; }
    const Node &node(NodeId id) const { return *nodes_[id]; }
    MeshNetwork &network() { return net_; }
    const Program &program() const { return prog_; }
    const MachineConfig &config() const { return config_; }
    Cycle now() const { return now_; }
    unsigned nodeCount() const { return config_.dims.nodes(); }

    /** Mark a node as needing stepping (message arrival etc.). */
    void activateNode(NodeId id);

    // ---- host (driver) access to node memory ----
    void poke(NodeId id, Addr addr, Word value);
    Word peek(NodeId id, Addr addr) const;
    void pokeInt(NodeId id, Addr addr, std::int32_t v);
    std::int32_t peekInt(NodeId id, Addr addr) const;

    /** Aggregate processor statistics over every node. */
    ProcessorStats aggregateStats() const;

    /** Reset all statistics (nodes, NIs, network) for a fresh window. */
    void resetStats();

  private:
    MachineConfig config_;
    Program prog_;
    MeshNetwork net_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<NodeId> activeNodes_;
    std::vector<std::uint8_t> activeFlag_;
    Cycle now_ = 0;
    unsigned haltedCount_ = 0;
    std::vector<std::uint8_t> haltedFlag_;
};

} // namespace jmsim

#endif // JMSIM_MACHINE_JMACHINE_HH
