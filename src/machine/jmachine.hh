/**
 * @file
 * The top-level machine: an X*Y*Z mesh of nodes plus the interconnect.
 *
 * The run loop is cycle-stepped but only touches active components:
 * nodes deactivate when their processor has nothing runnable and their
 * NI has drained, and reactivate when a message header arrives. A run
 * ends at a cycle limit, when every node has executed HALT, or when
 * the whole machine is quiescent (nothing running, nothing in flight).
 *
 * On top of that, the event-driven wake scheduler (on by default)
 * parks nodes whose next steps are provably no-ops — core burning a
 * multi-cycle instruction or a fused superblock span, NI quiescent —
 * in a cycle-keyed min-heap keyed on Processor::nextEventCycle(). A
 * parked node is not scanned at all until its wake cycle pops, or a
 * message header arrives and wakes it early. Per-cycle kernel cost is
 * therefore proportional to the nodes with actual work this cycle
 * (plus the fabric's own active-router bins), not to the mesh size,
 * which is what makes 4K-node (16x16x16) meshes affordable. The
 * machine-wide idle skip degenerates to reading the heap top: when
 * the step list is empty and the fabric is idle, the clock jumps
 * straight to the earliest scheduled wake.
 *
 * With `MachineConfig::threads` > 1 each cycle runs as two fork-joins
 * over a persistent worker pool. Fork A fuses the node phase with the
 * fabric's pull phase: workers step their slice of the active-node
 * list (buffering injections and wakes per shard) and drain committed
 * channel flits into their router slab's input FIFOs. The barrier
 * applies wakes and staged injections in node-id order. Fork B runs
 * the fabric's move phase per router slab — writes go only to channel
 * `next` registers (unique upstream owner) and the slab's own delivery
 * sinks — and the main thread then commits the written channels in
 * channel-index order. A threaded run is therefore bit-identical to a
 * serial one: same cycle counts, same statistics.
 */

#ifndef JMSIM_MACHINE_JMACHINE_HH
#define JMSIM_MACHINE_JMACHINE_HH

#include <memory>
#include <vector>

#include "jasm/program.hh"
#include "machine/node.hh"
#include "net/mesh_network.hh"
#include "netops/netops.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"

namespace jmsim
{

class ThreadPool;

namespace ckpt
{
struct Snapshot;
} // namespace ckpt

/** Everything configurable about a machine. */
struct MachineConfig
{
    MeshDims dims{2, 1, 1};
    MemoryConfig memory;
    NetworkInterface::Config ni;
    ProcessorConfig proc;
    bool roundRobinArbitration = false;
    /** Worker shards for the run loop: 1 = the serial kernel, N > 1 =
     *  exactly N shards (clamped to the node count), 0 = auto (host
     *  hardware concurrency, capped so small machines stay serial). */
    unsigned threads = 0;
    /** Jump the clock straight to the next processor event when the
     *  network is empty, every NI is drained, and every active core is
     *  burning a multi-cycle instruction — a pure host-side
     *  optimization with no architectural effect (off for A/B tests). */
    bool idleSkip = true;
    /** Event-driven wake scheduler: nodes whose next step is provably
     *  a no-op (core mid-instruction or mid-span, NI quiescent) are
     *  parked in a cycle-keyed wake heap instead of being rescanned
     *  every cycle, so per-cycle kernel cost tracks nodes with actual
     *  work. A message header arrival wakes a parked node early. Pure
     *  host-side: runs are bit-identical on or off (off for A/B). */
    bool wakeScheduler = true;
    /** Event-driven fabric scheduling: the mesh steps off commit-
     *  produced pull worklists and dirty-word commit lists (cost
     *  proportional to routers with work), the serial kernel fuses
     *  sparse cycles into a single-pass fast step, and the idle skip
     *  consults MeshNetwork::nextEventCycle. Pure host-side: runs are
     *  bit-identical on or off (off = legacy full-scan paths, the
     *  `--net-sched off` A/B). */
    bool netScheduler = true;
    /** In-network computing: router combining, fetch-and-add, hardware
     *  barrier tree (all off by default; see netops/netops.hh). Unlike
     *  the kernel toggles above these are *architectural* — they change
     *  simulated behavior and are covered by the config digest. */
    NetOpsConfig netops;
    /** Event tracing (off by default: taps reduce to a null test). */
    TraceConfig trace;
};

/** Why a run() returned. */
enum class StopReason : std::uint8_t
{
    CycleLimit,
    AllHalted,
    Quiescent,   ///< nothing running and nothing in flight
};

/** Host-time breakdown of a run, by kernel phase. */
struct KernelProfile
{
    double nodeSeconds = 0.0;    ///< node stepping (+ fused pull phase)
    double netSeconds = 0.0;     ///< fabric move phase
    double commitSeconds = 0.0;  ///< barrier bookkeeping and channel commit
    std::uint64_t steppedCycles = 0;  ///< cycles actually ticked (this run)
    std::uint64_t skippedCycles = 0;  ///< cycles jumped by idle-skip (this run)
};

/** Result of a run() call. */
struct RunResult
{
    Cycle cycles = 0;        ///< absolute cycle count at stop
    StopReason reason = StopReason::CycleLimit;
    KernelProfile profile;   ///< where the host time of this run went
    /** Host-memory footprint of the whole machine at stop (simulator
     *  state only: node memories, fabric, pool, rings — not the host
     *  process). See JMachine::footprintBytes. */
    std::uint64_t footprintBytes = 0;
    /** Name-sorted snapshot of every registered counter at stop. */
    std::vector<CounterSample> counters;
};

/** One simulated J-Machine. */
class JMachine
{
  public:
    /**
     * Build a machine and load @p prog on every node.
     * @param boot_label program symbol where background threads start
     */
    JMachine(const MachineConfig &config, Program prog,
             const std::string &boot_label = "boot");
    ~JMachine();

    JMachine(const JMachine &) = delete;
    JMachine &operator=(const JMachine &) = delete;

    /** Run until @p max_cycles (absolute), all-halt, or quiescence. */
    RunResult run(Cycle max_cycles);

    /** Run for @p cycles more cycles. */
    RunResult runFor(Cycle cycles) { return run(now_ + cycles); }

    Node &node(NodeId id) { return nodes_[id]; }
    const Node &node(NodeId id) const { return nodes_[id]; }
    MeshNetwork &network() { return net_; }
    const Program &program() const { return prog_; }
    const MachineConfig &config() const { return config_; }
    Cycle now() const { return now_; }
    unsigned nodeCount() const { return config_.dims.nodes(); }

    /** Worker shards a run() will actually use (resolves auto mode). */
    unsigned resolvedThreads() const;

    /** Mark a node as needing stepping (message arrival etc.). */
    void activateNode(NodeId id);

    // ---- host (driver) access to node memory ----
    void poke(NodeId id, Addr addr, Word value);
    Word peek(NodeId id, Addr addr) const;
    void pokeInt(NodeId id, Addr addr, std::int32_t v);
    std::int32_t peekInt(NodeId id, Addr addr) const;

    /** Aggregate processor statistics over every node (reads the
     *  counter registry: every field is a registered machine-wide sum). */
    ProcessorStats aggregateStats() const;

    /** The machine-wide counter registry (every node and the fabric
     *  register their stats here at construction). */
    const CounterRegistry &counters() const { return counters_; }

    /** The machine's tracer, or null when tracing is off. */
    Tracer *tracer() { return tracer_.get(); }
    const Tracer *tracer() const { return tracer_.get(); }

    /** The in-network computing engine, or null when netops is off. */
    NetOps *netops() { return netops_.get(); }
    const NetOps *netops() const { return netops_.get(); }

    /** Write the collected trace to config().trace.outPath as Chrome
     *  trace-event JSON. Returns false if tracing is off, the path is
     *  empty, or the write failed. Runs automatically at destruction
     *  for any machine that traced but never exported. */
    bool exportTrace();

    /** Cycles the run loop never ticked thanks to idle-skip. */
    Cycle idleSkippedCycles() const { return idleSkipped_; }

    /** Nodes currently parked in the wake heap (mid-instruction or
     *  mid-span with a quiescent NI; not scanned until their wake
     *  cycle or an early message arrival). */
    std::size_t parkedNodes() const { return parkedCount_; }

    /** Total host bytes behind the simulated machine: node memories,
     *  cores, NIs, fabric, message pool, trace rings, and kernel
     *  bookkeeping. The 4K-node memory-audit number BENCH tracks. */
    std::uint64_t footprintBytes() const;

    /** Reset all statistics (nodes, NIs, network) for a fresh window. */
    void resetStats();

    // ---- checkpointing (src/ckpt) ----

    /**
     * Serialize the complete architectural state into @p out (between
     * run() calls only). The image is deterministic — two machines in
     * the same architectural state produce identical bytes — and is
     * independent of the host toggles (threads, idleSkip, schedulers,
     * superblock, trace), so it restores into a machine running any
     * execution strategy.
     */
    void save(ckpt::Snapshot &out) const;

    /**
     * Restore from @p snap. Header problems (bad magic/version, or a
     * digest from a different machine configuration or program) leave
     * the machine untouched, set @p err if non-null, and return false.
     * Body corruption past a valid header is fatal.
     */
    bool restore(const ckpt::Snapshot &snap, std::string *err = nullptr);

    /** FNV-1a digest over the architectural configuration and program
     *  image (host toggles excluded) — the snapshot compatibility key. */
    std::uint64_t configDigest() const;

    // ---- post-boot host-toggle setters (checkpoint farm: one booted
    // machine serves jobs with different execution strategies) ----

    void setThreads(unsigned threads) { config_.threads = threads; }
    void setIdleSkip(bool on) { config_.idleSkip = on; }

    /** Switch wake scheduling between cycles. Turning it off hands
     *  every parked node back to the step list (the scheduler-off
     *  kernel tracks dozing nodes there against dozeUntil_, and its
     *  idle-skip scan consults only the step list), so a live flip
     *  never strands a parked node past its wake cycle. */
    void setWakeScheduler(bool on);

    void
    setNetScheduler(bool on)
    {
        config_.netScheduler = on;
        net_.setEventDriven(on);
    }

    /** Propagates to every core (each holds its own config copy). */
    void setSuperblock(bool on);

  private:
    /** Move every parked node back onto the step list (see
     *  setWakeScheduler) and drop the wake heap. */
    void unparkAllNodes();

    RunResult runSerial(Cycle max_cycles);
    RunResult runThreaded(Cycle max_cycles, unsigned shards);

    /** Advance now_ over provably dead cycles (see MachineConfig::idleSkip). */
    void maybeIdleSkip(Cycle max_cycles);

    /** Step one shard's slice of the active-node snapshot. */
    void stepShard(unsigned shard, unsigned shards, std::size_t n,
                   Cycle horizon, bool exclusive);

    /** Apply wakes buffered during the parallel phase, in id order. */
    void mergePendingWakes();

    // ---- event-driven wake scheduler (MachineConfig::wakeScheduler) ----

    /** One scheduled wake: node @p id steps again at cycle @p at. */
    struct Wake
    {
        Cycle at;
        NodeId id;
    };

    /** Min-heap order on (cycle, id) — deterministic pop order. */
    static bool
    wakeAfter(const Wake &a, const Wake &b)
    {
        return a.at > b.at || (a.at == b.at && a.id > b.id);
    }

    /** Park an active node until @p until (its step is a provable
     *  no-op before then). The node leaves the step list but stays
     *  architecturally awake — noteSleep is NOT called. */
    void parkNode(NodeId id, Cycle until);

    /** Pop every wake due at or before now_ back onto the step list.
     *  Stale entries (node unparked early by a message, or re-parked
     *  on a different horizon) are discarded. */
    void wakeDueNodes();

    /** Earliest live wake cycle, or ~0 when every entry is stale.
     *  Drops stale heap tops as a side effect. */
    Cycle nextParkedWake();

    MachineConfig config_;
    Program prog_;
    MeshNetwork net_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<NetOps> netops_;
    CounterRegistry counters_;
    bool traceExported_ = false;
    /** Contiguous node arena (cache-friendly sequential stepping). */
    std::unique_ptr<Node[]> nodes_;
    std::vector<NodeId> activeNodes_;
    std::vector<std::uint8_t> activeFlag_;
    /** Per-node doze horizon: while `now_ < dozeUntil_[id]` the node's
     *  step() is a provable no-op (core mid-instruction or mid-span,
     *  NI quiescent), so the run loop skips the call entirely. Cleared
     *  whenever a message header reaches the node (activateNode), which
     *  also covers optimistic-span rollbacks shortening busyUntil.
     *  With the wake scheduler on, a nonzero entry doubles as the
     *  node's scheduled wake cycle (heap entries are validated against
     *  it, so clearing it also invalidates the heap entry). */
    std::vector<Cycle> dozeUntil_;
    /** Cycle-keyed wake queue over the parked nodes. Entries are
     *  lazily deleted: one is live iff its node is still parked with
     *  exactly that doze horizon. Main-thread only. */
    std::vector<Wake> wakeHeap_;
    std::vector<std::uint8_t> parkedFlag_;
    std::size_t parkedCount_ = 0;
    /** Kernel work counters (registered as kernel.*): node.step calls
     *  made vs. calls avoided by parking/dozing. */
    std::uint64_t nodeSteps_ = 0;
    std::uint64_t skippedNodeSteps_ = 0;
    Cycle now_ = 0;
    Cycle idleSkipped_ = 0;
    unsigned haltedCount_ = 0;
    std::vector<std::uint8_t> haltedFlag_;

    // ---- threaded-kernel state ----
    std::unique_ptr<ThreadPool> pool_;
    bool inParallel_ = false;                ///< inside the node phase
    /** Per active-list index: 0 = inactive, 1 = keep stepping,
     *  2 = park at the barrier (doze horizon in dozeUntil_). */
    std::vector<std::uint8_t> stillActive_;
    std::vector<unsigned> shardHalted_;      ///< newly halted, per shard
    std::vector<std::uint64_t> shardSteps_;  ///< node.step calls, per shard
    std::vector<std::uint64_t> shardSkipped_;  ///< doze skips, per shard
    std::vector<std::vector<NodeId>> pendingWakes_;  ///< per shard
    std::vector<NodeId> wakeScratch_;
};

} // namespace jmsim

#endif // JMSIM_MACHINE_JMACHINE_HH
