/**
 * @file
 * One J-Machine processing node: an MDP core, its network interface,
 * and 1 MByte of DRAM next to the on-chip SRAM.
 */

#ifndef JMSIM_MACHINE_NODE_HH
#define JMSIM_MACHINE_NODE_HH

#include <functional>

#include "mdp/network_interface.hh"
#include "mdp/processor.hh"
#include "mem/memory.hh"

namespace jmsim
{

/** A complete processing node. */
class Node
{
  public:
    Node() = default;

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /** Wire the node into a machine (called once at machine build). */
    void init(NodeId id, const MeshDims &dims, const MemoryConfig &mem_cfg,
              const NetworkInterface::Config &ni_cfg,
              const ProcessorConfig &proc_cfg, MeshNetwork *net,
              const Program *prog, std::function<void()> wake);

    /**
     * Advance one cycle.
     * @param horizon cycle bound for superblock spans: the core may run
     *        ahead of `now` as long as every fused op starts before
     *        `horizon` (pass `now + 1` for exact per-op stepping).
     * @param exclusive the kernel proved this is the only active node
     *        and the network is empty, so no arrival can preempt.
     * @return true if the node still needs stepping next cycle.
     */
    bool
    step(Cycle now, Cycle horizon, bool exclusive)
    {
        // Quiescence for the exclusivity proof is sampled before the
        // core runs; SENDs execute per-op, so a span never wakes the NI.
        const bool proc_active =
            proc_.step(now, horizon, exclusive && ni_.quiescent());
        // A quiescent NI's step is a no-op (nothing queued to inject,
        // no bounce in flight) and sendBusy() is false by definition.
        // Re-checked after the core step: a SEND must inject this cycle.
        if (ni_.quiescent())
            return proc_active;
        ni_.step(now);
        return proc_active || ni_.sendBusy();
    }

    /** Exact single-cycle step (tests and tools). */
    bool step(Cycle now) { return step(now, now + 1, false); }

    /**
     * Cycle before which step() is a provable no-op, or 0 when the node
     * needs stepping next cycle. Valid only right after a step() that
     * returned true: the core is mid-instruction (or mid-span) and the
     * NI has nothing to inject, so nothing changes until the core
     * resumes — unless a message header arrives, which the machine
     * handles by clearing its doze entry (activateNode).
     */
    Cycle
    dozeHint(Cycle now) const
    {
        if (!ni_.quiescent())
            return 0;
        const Cycle ready = proc_.nextEventCycle();
        return ready > now + 1 ? ready : 0;
    }

    /** Attach the machine's tracer to the core and NI (null = off). */
    void
    setTracer(Tracer *tracer)
    {
        proc_.setTracer(tracer);
        ni_.setTracer(tracer);
    }

    /** Register the node's processor and NI counters. */
    void
    registerCounters(CounterRegistry &reg)
    {
        proc_.registerCounters(reg);
        ni_.registerCounters(reg);
    }

    /** Heap bytes behind this node: the off-arena NodeMemory object,
     *  its SRAM/DRAM storage, and the core's and NI's grown buffers
     *  (the Node object itself lives in the machine's node arena). */
    std::uint64_t
    footprintBytes() const
    {
        return sizeof(NodeMemory) + mem_->footprintBytes() +
               ni_.footprintBytes() + proc_.footprintBytes();
    }

    NodeMemory &memory() { return *mem_; }
    const NodeMemory &memory() const { return *mem_; }
    Processor &processor() { return proc_; }
    const Processor &processor() const { return proc_; }
    NetworkInterface &ni() { return ni_; }
    const NetworkInterface &ni() const { return ni_; }

    NodeId id() const { return id_; }

    /** Live pool handles held by this node (the NI's buffers). */
    void collectHandles(std::vector<MsgHandle> &out) const
    {
        ni_.collectHandles(out);
    }

    void
    save(ckpt::Writer &w, const ckpt::HandleMap &map) const
    {
        mem_->save(w);
        proc_.save(w);
        ni_.save(w, map);
    }

    void
    restore(ckpt::Reader &r, const ckpt::HandleMap &map)
    {
        mem_->restore(r);
        proc_.restore(r);
        ni_.restore(r, map);
    }

  private:
    NodeId id_ = 0;
    std::unique_ptr<NodeMemory> mem_;
    NetworkInterface ni_;
    Processor proc_;
};

} // namespace jmsim

#endif // JMSIM_MACHINE_NODE_HH
