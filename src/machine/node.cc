#include "machine/node.hh"

namespace jmsim
{

void
Node::init(NodeId id, const MeshDims &dims, const MemoryConfig &mem_cfg,
           const NetworkInterface::Config &ni_cfg,
           const ProcessorConfig &proc_cfg, MeshNetwork *net,
           const Program *prog, std::function<void()> wake)
{
    id_ = id;
    mem_ = std::make_unique<NodeMemory>(mem_cfg);
    ni_.init(id, ni_cfg, net, mem_.get(), std::move(wake));
    proc_.init(id, net->dims(), proc_cfg, mem_.get(), &ni_, prog);
    ni_.setDispatchNotify(
        [this](unsigned prio, Cycle now) { proc_.noteDispatchable(prio, now); });
    (void)dims;
}

} // namespace jmsim
