#include "machine/jmachine.hh"

#include <algorithm>
#include <thread>

#include "ckpt/snapshot.hh"
#include "machine/loader.hh"
#include "sim/host_timer.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "trace/chrome_trace.hh"

namespace jmsim
{

JMachine::JMachine(const MachineConfig &config, Program prog,
                   const std::string &boot_label)
    : config_(config),
      prog_(std::move(prog)),
      net_(config.dims),
      activeFlag_(config.dims.nodes(), 0),
      dozeUntil_(config.dims.nodes(), 0),
      parkedFlag_(config.dims.nodes(), 0),
      haltedFlag_(config.dims.nodes(), 0)
{
    const unsigned n = config_.dims.nodes();
    net_.setEventDriven(config_.netScheduler);
    // Translate the instruction store into the interpreter's flat
    // DecodedOp array before any node captures a pointer to it.
    prog_.predecode(kEmemBase);
    nodes_ = std::make_unique<Node[]>(n);
    net_.setRoundRobin(config_.roundRobinArbitration);
    for (NodeId id = 0; id < n; ++id) {
        nodes_[id].init(id, config_.dims, config_.memory, config_.ni,
                        config_.proc, &net_, &prog_,
                        [this, id] { activateNode(id); });
    }
    if (config_.netops.enabled()) {
        netops_ = std::make_unique<NetOps>(config_.netops, &net_);
        std::vector<NetworkInterface *> nis;
        nis.reserve(n);
        for (NodeId id = 0; id < n; ++id)
            nis.push_back(&nodes_[id].ni());
        netops_->attachNis(std::move(nis));
        for (NodeId id = 0; id < n; ++id)
            nodes_[id].ni().setNetOps(netops_.get());
    }
    loadProgram(*this, boot_label);
    if (kTraceCompiledIn && config_.trace.enabled) {
        tracer_ = std::make_unique<Tracer>(config_.trace);
        net_.setTracer(tracer_.get());
        for (NodeId id = 0; id < n; ++id)
            nodes_[id].setTracer(tracer_.get());
        if (netops_)
            netops_->setTracer(tracer_.get());
    }
    for (NodeId id = 0; id < n; ++id)
        nodes_[id].registerCounters(counters_);
    net_.registerCounters(counters_);
    if (netops_)
        netops_->registerCounters(counters_);
    counters_.addCounter("kernel.node_steps", &nodeSteps_);
    counters_.addCounter("kernel.skipped_node_steps", &skippedNodeSteps_);
    counters_.addCounter("kernel.idle_skipped_cycles", &idleSkipped_);
    for (NodeId id = 0; id < n; ++id)
        activateNode(id);
}

JMachine::~JMachine()
{
    // A machine that traced to a file but was torn down without an
    // explicit export still writes its trace (the common driver path).
    if (tracer_ && !traceExported_ && !config_.trace.outPath.empty())
        exportTrace();
}

bool
JMachine::exportTrace()
{
    if (!tracer_ || config_.trace.outPath.empty())
        return false;
    traceExported_ = true;
    return writeChromeTrace(config_.trace.outPath, tracer_->collect(),
                            tracer_->dropped());
}

unsigned
JMachine::resolvedThreads() const
{
    const unsigned n = nodeCount();
    unsigned t = config_.threads;
    if (t == 0) {
        // Auto: a shard per hardware thread, but parallelism only pays
        // once each shard has a few dozen nodes to step per cycle.
        unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0)
            hw = 1;
        const unsigned cap = n / 32;
        t = std::min(hw, cap ? cap : 1);
    }
    return std::max(1u, std::min(t, n));
}

void
JMachine::activateNode(NodeId id)
{
    if (inParallel_) {
        // Cross-shard wake during the parallel node phase: buffer it
        // per shard and merge in node-id order at the cycle barrier
        // instead of mutating the shared active list.
        pendingWakes_[ThreadPool::currentShard()].push_back(id);
        return;
    }
    // A header arrival (or rollback) invalidates any doze horizon: the
    // node may need stepping as early as the next cycle.
    dozeUntil_[id] = 0;
    if (!activeFlag_[id]) {
        activeFlag_[id] = 1;
        activeNodes_.push_back(id);
        nodes_[id].processor().noteWake(now_);
    } else if (parkedFlag_[id]) {
        // Early wake of a parked node: back on the step list now. Its
        // heap entry is now stale (dozeUntil_ no longer matches) and
        // gets discarded whenever it reaches the top. The core was
        // never put to sleep, so there is no noteWake here.
        parkedFlag_[id] = 0;
        --parkedCount_;
        activeNodes_.push_back(id);
    }
}

void
JMachine::parkNode(NodeId id, Cycle until)
{
    parkedFlag_[id] = 1;
    ++parkedCount_;
    dozeUntil_[id] = until;
    wakeHeap_.push_back({until, id});
    std::push_heap(wakeHeap_.begin(), wakeHeap_.end(), wakeAfter);
}

void
JMachine::wakeDueNodes()
{
    while (!wakeHeap_.empty() && wakeHeap_.front().at <= now_) {
        const Wake w = wakeHeap_.front();
        std::pop_heap(wakeHeap_.begin(), wakeHeap_.end(), wakeAfter);
        wakeHeap_.pop_back();
        // Live iff the node is still parked on exactly this horizon
        // (an early message wake cleared dozeUntil_; a re-park after
        // that wrote a different one).
        if (parkedFlag_[w.id] && dozeUntil_[w.id] == w.at) {
            parkedFlag_[w.id] = 0;
            --parkedCount_;
            activeNodes_.push_back(w.id);
        }
    }
}

Cycle
JMachine::nextParkedWake()
{
    while (!wakeHeap_.empty()) {
        const Wake w = wakeHeap_.front();
        if (parkedFlag_[w.id] && dozeUntil_[w.id] == w.at)
            return w.at;
        std::pop_heap(wakeHeap_.begin(), wakeHeap_.end(), wakeAfter);
        wakeHeap_.pop_back();
    }
    return ~Cycle{0};
}

void
JMachine::mergePendingWakes()
{
    wakeScratch_.clear();
    for (auto &shard : pendingWakes_) {
        wakeScratch_.insert(wakeScratch_.end(), shard.begin(), shard.end());
        shard.clear();
    }
    if (wakeScratch_.empty())
        return;
    std::sort(wakeScratch_.begin(), wakeScratch_.end());
    for (const NodeId id : wakeScratch_)
        activateNode(id);
}

void
JMachine::maybeIdleSkip(Cycle max_cycles)
{
    // Skippable state: no flit anywhere in the fabric (blocked worms
    // keep their routers on the active list, so anyActive() covers
    // them), every active node's NI drained, and every active core
    // inside a multi-cycle instruction or dispatch. Until the earliest
    // busyUntil_, each tick would step nothing and change nothing, so
    // jumping the clock there is exact — serial and threaded kernels
    // run the identical check at the same point in the cycle.
    //
    // The fabric's verdict comes from its deterministic next-event
    // cycle: any in-flight flit (or committed flit awaiting its pull)
    // means the mesh has work no later than next cycle, so there is
    // nothing to skip.
    if (net_.nextEventCycle(now_) <= now_ + 1)
        return;
    // Same reasoning for the netops engine: its event heap names the
    // next cycle anything in it can happen.
    if (netops_ && netops_->nextEventCycle() <= now_ + 1)
        return;
    Cycle target;
    if (config_.wakeScheduler) {
        // Parked nodes carry their wake cycles in the heap; anything
        // still on the step list needs stepping now or next cycle, so
        // only an empty list can skip — one heap-top read instead of
        // the all-active-nodes scan.
        if (!activeNodes_.empty() || parkedCount_ == 0)
            return;
        target = nextParkedWake();
    } else {
        if (activeNodes_.empty())
            return;
        target = ~Cycle{0};
        for (const NodeId id : activeNodes_) {
            const Node &node = nodes_[id];
            if (!node.ni().quiescent())
                return;
            const Cycle ready = node.processor().nextEventCycle();
            if (ready <= now_ + 1)
                return;  // issues this cycle or the next: nothing to save
            target = std::min(target, ready);
        }
    }
    if (netops_)
        target = std::min(target, netops_->nextEventCycle());
    if (target > max_cycles)
        target = max_cycles;
    if (target <= now_)
        return;
    if (kTraceCompiledIn && tracer_ &&
        tracer_->wants(TraceKind::IdleSkip)) {
        // Always recorded on the main thread (ring 0): the idle-skip
        // check runs between cycles, outside both fork-joins.
        TraceEvent ev;
        ev.cycle = now_;
        ev.node = kMachineTrack;
        ev.kind = TraceKind::IdleSkip;
        ev.a0 = target;
        tracer_->record(ev);
    }
    // The whole jumped span is fabric-quiet by the check above: account
    // the avoided router visits so steps + skipped stays exact.
    net_.noteQuietCycles(target - now_);
    idleSkipped_ += target - now_;
    now_ = target;
}

RunResult
JMachine::run(Cycle max_cycles)
{
    const unsigned shards = resolvedThreads();
    if (shards <= 1)
        return runSerial(max_cycles);
    return runThreaded(max_cycles, shards);
}

RunResult
JMachine::runSerial(Cycle max_cycles)
{
    RunResult result;
    result.reason = StopReason::CycleLimit;
    std::uint64_t node_ticks = 0, net_ticks = 0, commit_ticks = 0;
    std::uint64_t stepped = 0;
    const Cycle skipped_at_entry = idleSkipped_;
    bool stopped = false;
    while (!stopped && now_ < max_cycles) {
        if (config_.idleSkip) {
            maybeIdleSkip(max_cycles);
            if (now_ >= max_cycles)
                break;
        }
        if (!wakeHeap_.empty())
            wakeDueNodes();
        const std::uint64_t t0 = hostTicks();
        // With one active node, no parked node, and an empty fabric
        // nothing can preempt that node: its core may fuse superblock
        // spans unconditionally (bounded by the run horizon).
        const bool exclusive = activeNodes_.size() == 1 &&
                               parkedCount_ == 0 && !net_.anyActive() &&
                               (!netops_ || netops_->idle());
        // The step calls this cycle avoids entirely: every parked node
        // would have been a scan-and-skip in the tick-everything loop.
        skippedNodeSteps_ += parkedCount_;
        // Step active nodes; compact the list as nodes go idle.
        std::size_t keep = 0;
        const std::size_t n = activeNodes_.size();
        for (std::size_t i = 0; i < n; ++i) {
            const NodeId id = activeNodes_[i];
            // Dozing node: the core is mid-span with a quiescent NI, so
            // its step() would be a no-op (see dozeUntil_). With the
            // wake scheduler such nodes are parked instead, so this
            // only triggers in scheduler-off mode (or on the cycle a
            // wake raced a re-activation).
            if (now_ < dozeUntil_[id]) {
                skippedNodeSteps_ += 1;
                activeNodes_[keep++] = id;
                continue;
            }
            Node &node = nodes_[id];
            nodeSteps_ += 1;
            if (node.step(now_, max_cycles, exclusive)) {
                const Cycle doze = node.dozeHint(now_);
                if (doze != 0 && config_.wakeScheduler) {
                    parkNode(id, doze);
                } else {
                    dozeUntil_[id] = doze;
                    activeNodes_[keep++] = id;
                }
            } else {
                activeFlag_[id] = 0;
                node.processor().noteSleep(now_);
                if (node.processor().halted() && !haltedFlag_[id]) {
                    haltedFlag_[id] = 1;
                    haltedCount_ += 1;
                }
            }
        }
        // Nodes woken during this loop (by activateNode) were appended
        // past n; keep them.
        for (std::size_t i = n; i < activeNodes_.size(); ++i)
            activeNodes_[keep++] = activeNodes_[i];
        activeNodes_.resize(keep);
        const std::uint64_t t1 = hostTicks();

        std::uint64_t t2 = t1, t3 = t1;
        if (net_.anyActive()) {
            net_.noteStepBegin();
            if (net_.fastPathEligible()) {
                // Sparse cycle: one fused pass (pull worklist, move the
                // few active routers, commit dirty words inline). The
                // whole step bills to the net phase.
                net_.stepFast(now_);
                t2 = hostTicks();
                t3 = t2;
            } else {
                net_.pullShard(0);
                net_.moveShard(0, now_);
                t2 = hostTicks();
                net_.commitPhase(now_);
                t3 = hostTicks();
            }
        } else {
            net_.noteQuietCycles(1);
        }
        if (netops_)
            netops_->step(now_);
        net_.pool().sampleHighWater();
        stepped += 1;
        now_ += 1;
        node_ticks += t1 - t0;
        net_ticks += t2 - t1;
        commit_ticks += t3 - t2;

        if (haltedCount_ == nodeCount()) {
            result.reason = StopReason::AllHalted;
            stopped = true;
        } else if (activeNodes_.empty() && parkedCount_ == 0 &&
                   !net_.anyActive() && (!netops_ || netops_->idle())) {
            result.reason = StopReason::Quiescent;
            stopped = true;
        }
    }
    result.cycles = now_;
    result.profile.nodeSeconds = hostSeconds(node_ticks);
    result.profile.netSeconds = hostSeconds(net_ticks);
    result.profile.commitSeconds = hostSeconds(commit_ticks);
    result.profile.steppedCycles = stepped;
    result.profile.skippedCycles = idleSkipped_ - skipped_at_entry;
    result.footprintBytes = footprintBytes();
    result.counters = counters_.snapshot();
    return result;
}

void
JMachine::stepShard(unsigned shard, unsigned shards, std::size_t n,
                    Cycle horizon, bool exclusive)
{
    const std::size_t begin = n * shard / shards;
    const std::size_t end = n * (shard + 1) / shards;
    unsigned newly_halted = 0;
    std::uint64_t steps = 0, skips = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const NodeId id = activeNodes_[i];
        // Doze entries are only written by the shard that owns the
        // node's slot this cycle and only cleared at the barrier
        // (mergePendingWakes), so the check is race-free.
        if (now_ < dozeUntil_[id]) {
            skips += 1;
            stillActive_[i] = 1;
            continue;
        }
        Node &node = nodes_[id];
        steps += 1;
        if (node.step(now_, horizon, exclusive)) {
            // Parking mutates the shared wake heap, so it is deferred
            // to the barrier: record the doze horizon and mark the
            // slot. A wake buffered this cycle clears dozeUntil_ at
            // the merge, which cancels the park.
            const Cycle doze = node.dozeHint(now_);
            dozeUntil_[id] = doze;
            stillActive_[i] =
                doze != 0 && config_.wakeScheduler ? 2 : 1;
            continue;
        }
        stillActive_[i] = 0;
        activeFlag_[id] = 0;
        node.processor().noteSleep(now_);
        if (node.processor().halted() && !haltedFlag_[id]) {
            haltedFlag_[id] = 1;
            ++newly_halted;
        }
    }
    shardHalted_[shard] = newly_halted;
    shardSteps_[shard] = steps;
    shardSkipped_[shard] = skips;
}

RunResult
JMachine::runThreaded(Cycle max_cycles, unsigned shards)
{
    if (!pool_ || pool_->shards() != shards)
        pool_ = std::make_unique<ThreadPool>(shards);
    shardHalted_.assign(shards, 0);
    shardSteps_.assign(shards, 0);
    shardSkipped_.assign(shards, 0);
    pendingWakes_.resize(shards);
    net_.beginStaging(shards);
    if (netops_)
        netops_->setStageShards(shards);
    if (tracer_)
        tracer_->ensureShards(shards);

    RunResult result;
    result.reason = StopReason::CycleLimit;
    std::uint64_t node_ticks = 0, net_ticks = 0, commit_ticks = 0;
    std::uint64_t stepped = 0;
    const Cycle skipped_at_entry = idleSkipped_;
    bool stopped = false;
    while (!stopped && now_ < max_cycles) {
        if (config_.idleSkip) {
            maybeIdleSkip(max_cycles);
            if (now_ >= max_cycles)
                break;
        }
        if (!wakeHeap_.empty())
            wakeDueNodes();
        const std::size_t n = activeNodes_.size();
        stillActive_.resize(n);
        const std::uint64_t t0 = hostTicks();
        // Same exclusivity proof as the serial kernel; with one active
        // node only one shard has work, so the flag is race-free.
        const bool exclusive = activeNodes_.size() == 1 &&
                               parkedCount_ == 0 && !net_.anyActive() &&
                               (!netops_ || netops_->idle());
        skippedNodeSteps_ += parkedCount_;
        // Fork A: node stepping fused with the fabric's pull phase.
        // The pull only reads channel outputs committed last cycle
        // (each owned by a router in the pulling shard's slab), so it
        // cannot interact with the concurrently stepping nodes.
        inParallel_ = true;
        pool_->run([this, n, shards, max_cycles, exclusive](unsigned shard) {
            stepShard(shard, shards, n, max_cycles, exclusive);
            net_.pullShard(shard);
        });
        inParallel_ = false;
        const std::uint64_t t1 = hostTicks();
        for (unsigned s = 0; s < shards; ++s) {
            haltedCount_ += shardHalted_[s];
            shardHalted_[s] = 0;
            nodeSteps_ += shardSteps_[s];
            shardSteps_[s] = 0;
            skippedNodeSteps_ += shardSkipped_[s];
            shardSkipped_[s] = 0;
        }
        // Barrier bookkeeping, all on the main thread: apply buffered
        // wakes (appended past n, like the serial loop), park nodes
        // the shards marked (a buffered wake cancels the park by
        // clearing dozeUntil_), compact the survivors, then commit
        // staged injections in node-id order.
        mergePendingWakes();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!stillActive_[i])
                continue;
            const NodeId id = activeNodes_[i];
            if (stillActive_[i] == 2 && dozeUntil_[id] > now_)
                parkNode(id, dozeUntil_[id]);
            else
                activeNodes_[keep++] = id;
        }
        for (std::size_t i = n; i < activeNodes_.size(); ++i)
            activeNodes_[keep++] = activeNodes_[i];
        activeNodes_.resize(keep);

        net_.commitStaged();
        const std::uint64_t t2 = hostTicks();

        std::uint64_t t3 = t2, t4 = t2;
        if (net_.anyActive()) {
            net_.noteStepBegin();
            // Fork B: the fabric's move phase per router slab. Writes
            // go only to channel `next` registers (unique upstream
            // owner) and the slab's own delivery sinks; delivery wakes
            // are buffered per shard like node-phase wakes.
            inParallel_ = true;
            pool_->run([this](unsigned shard) { net_.moveShard(shard, now_); });
            inParallel_ = false;
            t3 = hostTicks();
            mergePendingWakes();
            net_.commitPhase(now_);
            t4 = hostTicks();
        } else {
            net_.noteQuietCycles(1);
        }
        // The netops engine steps on the main thread after both forks,
        // exactly where the serial kernel steps it: staged issues from
        // the node phase commit in canonical (src, seq) order and any
        // reply deliveries land through the normal DeliverSink path.
        if (netops_)
            netops_->step(now_);
        net_.pool().sampleHighWater();
        stepped += 1;
        now_ += 1;
        node_ticks += t1 - t0;
        commit_ticks += (t2 - t1) + (t4 - t3);
        net_ticks += t3 - t2;

        if (haltedCount_ == nodeCount()) {
            result.reason = StopReason::AllHalted;
            stopped = true;
        } else if (activeNodes_.empty() && parkedCount_ == 0 &&
                   !net_.anyActive() && (!netops_ || netops_->idle())) {
            result.reason = StopReason::Quiescent;
            stopped = true;
        }
    }
    result.cycles = now_;
    net_.endStaging();
    result.profile.nodeSeconds = hostSeconds(node_ticks);
    result.profile.netSeconds = hostSeconds(net_ticks);
    result.profile.commitSeconds = hostSeconds(commit_ticks);
    result.profile.steppedCycles = stepped;
    result.profile.skippedCycles = idleSkipped_ - skipped_at_entry;
    result.footprintBytes = footprintBytes();
    result.counters = counters_.snapshot();
    return result;
}

void
JMachine::poke(NodeId id, Addr addr, Word value)
{
    nodes_[id].memory().write(addr, value);
}

Word
JMachine::peek(NodeId id, Addr addr) const
{
    return nodes_[id].memory().read(addr);
}

void
JMachine::pokeInt(NodeId id, Addr addr, std::int32_t v)
{
    poke(id, addr, Word::makeInt(v));
}

std::int32_t
JMachine::peekInt(NodeId id, Addr addr) const
{
    return peek(id, addr).asInt();
}

ProcessorStats
JMachine::aggregateStats() const
{
    // Every ProcessorStats field is registered per node under a shared
    // name, so the registry's summed view is exactly the old hand-
    // gathered aggregate.
    ProcessorStats total;
    for (std::size_t c = 0; c < total.cyclesByClass.size(); ++c)
        total.cyclesByClass[c] = counters_.value(
            std::string("proc.cycles.") +
            statClassName(static_cast<StatClass>(c)));
    total.instructions = counters_.value("proc.instructions");
    total.instructionsOs = counters_.value("proc.instructions_os");
    total.dispatches = counters_.value("proc.dispatches");
    total.suspends = counters_.value("proc.suspends");
    for (std::size_t f = 0; f < kNumFaults; ++f)
        total.faults[f] = counters_.value(
            std::string("proc.faults.") +
            faultName(static_cast<FaultKind>(f)));
    total.queueStallCycles = counters_.value("proc.queue_stall_cycles");
    total.runCycles = counters_.value("proc.run_cycles");
    total.idleCycles = counters_.value("proc.idle_cycles");
    total.segCacheHits = counters_.value("proc.seg_cache_hits");
    total.segCacheMisses = counters_.value("proc.seg_cache_misses");
    total.xlateCacheHits = counters_.value("proc.xlate_cache_hits");
    total.xlateCacheMisses = counters_.value("proc.xlate_cache_misses");
    return total;
}

std::uint64_t
JMachine::footprintBytes() const
{
    const unsigned n = nodeCount();
    std::uint64_t total = sizeof(JMachine) + n * sizeof(Node);
    for (NodeId id = 0; id < n; ++id)
        total += nodes_[id].footprintBytes();
    total += net_.footprintBytes();
    total += prog_.footprintBytes();
    if (tracer_)
        total += sizeof(Tracer) + tracer_->footprintBytes();
    if (netops_)
        total += sizeof(NetOps) + netops_->footprintBytes();
    // Kernel bookkeeping: the per-node arrays and the wake machinery.
    total += activeNodes_.capacity() * sizeof(NodeId) +
             activeFlag_.capacity() + parkedFlag_.capacity() +
             haltedFlag_.capacity() + stillActive_.capacity() +
             dozeUntil_.capacity() * sizeof(Cycle) +
             wakeHeap_.capacity() * sizeof(Wake) +
             wakeScratch_.capacity() * sizeof(NodeId) +
             shardHalted_.capacity() * sizeof(unsigned) +
             shardSteps_.capacity() * sizeof(std::uint64_t) +
             shardSkipped_.capacity() * sizeof(std::uint64_t) +
             pendingWakes_.capacity() * sizeof(pendingWakes_[0]);
    for (const auto &q : pendingWakes_)
        total += q.capacity() * sizeof(NodeId);
    return total;
}

void
JMachine::resetStats()
{
    for (NodeId id = 0; id < nodeCount(); ++id) {
        Node &node = nodes_[id];
        node.processor().resetStats();
        node.ni().resetStats();
        node.ni().queue(0).resetStats();
        node.ni().queue(1).resetStats();
    }
    net_.resetStats();
    if (netops_)
        netops_->resetStats();
}

std::uint64_t
JMachine::configDigest() const
{
    ckpt::Digest d;
    d.mix(config_.dims.x);
    d.mix(config_.dims.y);
    d.mix(config_.dims.z);
    d.mix(config_.memory.imemWords);
    d.mix(config_.memory.ememWords);
    d.mix(config_.memory.ememAccessCycles);
    d.mix(config_.memory.imemExtraCycles);
    d.mix(config_.ni.sendBufferWords);
    d.mix(config_.ni.queueBase0);
    d.mix(config_.ni.queueWords0);
    d.mix(config_.ni.queueBase1);
    d.mix(config_.ni.queueWords1);
    d.mix(config_.ni.returnToSender ? 1 : 0);
    d.mix(config_.proc.dispatchCycles);
    d.mix(config_.proc.faultEntryCycles);
    d.mix(config_.proc.takenBranchPenalty);
    d.mix(config_.proc.ememFetchCycles);
    for (std::size_t f = 0; f < kNumFaults; ++f) {
        d.mix(config_.proc.hasVector[f] ? 1 : 0);
        d.mix(config_.proc.vectors[f]);
    }
    d.mix(config_.roundRobinArbitration ? 1 : 0);
    // In-network computing options are architectural: a snapshot from a
    // combining-on machine must not restore into a combining-off one.
    d.mix(config_.netops.combining ? 1 : 0);
    d.mix(config_.netops.faa ? 1 : 0);
    d.mix(config_.netops.barrierTree ? 1 : 0);
    d.mix(config_.netops.combineEntries);
    d.mix(config_.netops.combineFanIn);
    d.mix(config_.netops.issueCycles);
    d.mix(config_.netops.hopCycles);
    d.mix(config_.netops.serviceCycles);
    d.mix(config_.netops.memCycles);
    d.mix(config_.netops.treeHopCycles);
    d.mix(config_.netops.treeCombineCycles);
    d.mix(config_.netops.slotsPerNode);
    // The program image: a snapshot only restores into a machine that
    // loaded the exact same code and initialized data.
    d.mix(prog_.instructionCount());
    d.mix(prog_.codeEndWord());
    d.mix(prog_.data().size());
    for (const auto &[addr, word] : prog_.data()) {
        d.mix(addr);
        d.mix(word.bits);
        d.mix(static_cast<std::uint64_t>(word.tag));
    }
    d.mix(prog_.sbRunLens().size());
    for (const std::uint32_t len : prog_.sbRunLens())
        d.mix(len);
    d.mix(prog_.spinHeads().size());
    for (const IAddr head : prog_.spinHeads())
        d.mix(head);
    d.mix(prog_.hasP1Sends() ? 1 : 0);
    d.mix(prog_.decodedOps().size());
    return d.value();
}

void
JMachine::save(ckpt::Snapshot &out) const
{
    if (inParallel_)
        panic("checkpoint: save called from inside the parallel phase");
    ckpt::Writer w;
    const unsigned n = nodeCount();

    // ---- header ----
    w.u32(ckpt::kMagic);
    w.u32(ckpt::kVersion);
    w.u64(configDigest());

    // ---- kernel section ----
    w.u64(now_);
    w.u64(idleSkipped_);
    w.u32(haltedCount_);
    w.u64(nodeSteps_);
    w.u64(skippedNodeSteps_);
    w.u64(parkedCount_);
    // The step list in its exact order: compaction order is part of
    // the deterministic step sequence.
    w.u32(static_cast<std::uint32_t>(activeNodes_.size()));
    for (const NodeId id : activeNodes_)
        w.u32(id);
    for (unsigned id = 0; id < n; ++id)
        w.u8(activeFlag_[id]);
    for (unsigned id = 0; id < n; ++id)
        w.u8(parkedFlag_[id]);
    for (unsigned id = 0; id < n; ++id)
        w.u8(haltedFlag_[id]);
    for (unsigned id = 0; id < n; ++id)
        w.u64(dozeUntil_[id]);
    // The raw heap array (already a valid heap; stale entries and all —
    // they are part of the lazy-deletion state).
    w.u32(static_cast<std::uint32_t>(wakeHeap_.size()));
    for (const Wake &wk : wakeHeap_) {
        w.u64(wk.at);
        w.u32(wk.id);
    }

    // ---- pool section: every live message, by dense ordinal ----
    // Handles are pool-allocation names (free-list order depends on the
    // shard count), so collection order defines the ordinals: per node
    // in id order (NI send rings, bounce buffers), then the fabric
    // (router FIFOs in port/vn order, then channel registers). The
    // same handle can appear many times (one per flit); the first
    // sighting assigns its ordinal.
    std::vector<MsgHandle> held;
    for (unsigned id = 0; id < n; ++id)
        nodes_[id].collectHandles(held);
    net_.collectHandles(held);
    if (netops_)
        netops_->collectHandles(held);
    ckpt::HandleMap map;
    std::vector<MsgHandle> ordered;
    for (const MsgHandle h : held) {
        if (map.toOrdinal.count(h))
            continue;
        map.toOrdinal.emplace(h,
                              static_cast<std::uint32_t>(ordered.size()));
        ordered.push_back(h);
    }
    const MessagePool &pool = net_.pool();
    w.u32(static_cast<std::uint32_t>(ordered.size()));
    for (const MsgHandle h : ordered) {
        const Message &msg = pool.get(h);
        w.u32(msg.src);
        w.u32(msg.dest);
        w.u8(msg.destAddr.x);
        w.u8(msg.destAddr.y);
        w.u8(msg.destAddr.z);
        w.u8(msg.priority);
        w.u32(static_cast<std::uint32_t>(msg.words.size()));
        for (const Word &word : msg.words)
            w.word(word);
        w.u64(msg.injectCycle);
        w.u64(msg.deliverCycle);
        w.u32(msg.srcSeq);
        w.b(msg.finalized);
        w.u8(msg.netop);
    }
    const PoolStats ps = pool.stats();
    w.u64(ps.allocs);
    w.u64(ps.recycled);
    w.u64(ps.released);
    w.u64(ps.liveNow);
    w.u64(ps.liveHighWater);

    // ---- per-node and fabric sections ----
    for (unsigned id = 0; id < n; ++id)
        nodes_[id].save(w, map);
    net_.save(w, map);
    // The netops section exists iff the engine does; both sides agree
    // because the toggles are part of the config digest.
    if (netops_)
        netops_->save(w, map);

    out.bytes = std::move(w.buffer());
}

bool
JMachine::restore(const ckpt::Snapshot &snap, std::string *err)
{
    const unsigned n = nodeCount();
    // Header checks leave the machine untouched on failure.
    if (snap.bytes.size() < 16) {
        if (err)
            *err = "snapshot too short for a header";
        return false;
    }
    ckpt::Reader r(snap.bytes.data(), snap.bytes.size());
    const std::uint32_t magic = r.u32();
    if (magic != ckpt::kMagic) {
        if (err)
            *err = "bad snapshot magic";
        return false;
    }
    const std::uint32_t version = r.u32();
    if (version != ckpt::kVersion) {
        if (err)
            *err = "unsupported snapshot version " + std::to_string(version);
        return false;
    }
    const std::uint64_t digest = r.u64();
    if (digest != configDigest()) {
        if (err)
            *err = "snapshot was taken on a different machine "
                   "configuration or program";
        return false;
    }

    // ---- kernel section ----
    now_ = r.u64();
    idleSkipped_ = r.u64();
    haltedCount_ = r.u32();
    nodeSteps_ = r.u64();
    skippedNodeSteps_ = r.u64();
    parkedCount_ = r.u64();
    const std::uint32_t activeCount = r.u32();
    if (activeCount > n)
        fatal("checkpoint: active-node list longer than the machine");
    activeNodes_.clear();
    activeNodes_.reserve(activeCount);
    for (std::uint32_t i = 0; i < activeCount; ++i) {
        const NodeId id = r.u32();
        if (id >= n)
            fatal("checkpoint: active node id out of range");
        activeNodes_.push_back(id);
    }
    for (unsigned id = 0; id < n; ++id)
        activeFlag_[id] = r.u8();
    for (unsigned id = 0; id < n; ++id)
        parkedFlag_[id] = r.u8();
    for (unsigned id = 0; id < n; ++id)
        haltedFlag_[id] = r.u8();
    for (unsigned id = 0; id < n; ++id)
        dozeUntil_[id] = r.u64();
    const std::uint32_t heapCount = r.u32();
    wakeHeap_.clear();
    wakeHeap_.reserve(heapCount);
    for (std::uint32_t i = 0; i < heapCount; ++i) {
        Wake wk;
        wk.at = r.u64();
        wk.id = r.u32();
        if (wk.id >= n)
            fatal("checkpoint: wake-heap node id out of range");
        wakeHeap_.push_back(wk);
    }

    // ---- pool section ----
    // Rebuild the pool from scratch on the calling (main) shard so the
    // restored free-list state is independent of how the saving side
    // had sharded its allocations.
    MessagePool &pool = net_.pool();
    pool.resetAll();
    const std::uint32_t msgCount = r.u32();
    ckpt::HandleMap map;
    map.toHandle.reserve(msgCount);
    for (std::uint32_t i = 0; i < msgCount; ++i) {
        const MsgHandle h = pool.alloc();
        Message &msg = pool.get(h);
        msg.src = r.u32();
        msg.dest = r.u32();
        msg.destAddr.x = r.u8();
        msg.destAddr.y = r.u8();
        msg.destAddr.z = r.u8();
        msg.priority = r.u8();
        const std::uint32_t wordCount = r.u32();
        msg.words.reserve(wordCount);
        for (std::uint32_t j = 0; j < wordCount; ++j)
            msg.words.push_back(r.word());
        msg.injectCycle = r.u64();
        msg.deliverCycle = r.u64();
        msg.srcSeq = r.u32();
        msg.finalized = r.b();
        msg.netop = r.u8();
        map.toHandle.push_back(h);
    }
    const std::uint64_t allocs = r.u64();
    const std::uint64_t recycled = r.u64();
    const std::uint64_t released = r.u64();
    const std::uint64_t liveNow = r.u64();
    const std::uint64_t liveHighWater = r.u64();
    pool.restoreCounters(allocs, recycled, released, liveNow,
                         liveHighWater);

    // ---- per-node and fabric sections ----
    for (unsigned id = 0; id < n; ++id)
        nodes_[id].restore(r, map);
    net_.restore(r, map);
    if (netops_)
        netops_->restore(r, map);

    if (r.remaining() != 0)
        fatal("checkpoint: " + std::to_string(r.remaining()) +
              " trailing bytes after the image");

    // Transient threaded-kernel state never crosses a snapshot: the
    // next runThreaded() re-establishes its own staging.
    inParallel_ = false;
    for (auto &shard : pendingWakes_)
        shard.clear();
    wakeScratch_.clear();

    // The image may carry parked nodes from a scheduler-on saver; a
    // scheduler-off kernel tracks dozing nodes on the step list
    // instead (see setWakeScheduler).
    if (!config_.wakeScheduler)
        unparkAllNodes();
    return true;
}

void
JMachine::setWakeScheduler(bool on)
{
    config_.wakeScheduler = on;
    if (!on)
        unparkAllNodes();
}

void
JMachine::unparkAllNodes()
{
    // Hand every parked node back to the step list with its dozeUntil_
    // horizon intact: the scheduler-off kernel skips it there until
    // its wake cycle, and the off-mode idle-skip scan (which consults
    // only the step list) sees the horizon. Ascending id keeps the
    // list in the order a from-boot scheduler-off run would grow it.
    if (parkedCount_ > 0) {
        const NodeId n = nodeCount();
        for (NodeId id = 0; id < n; ++id) {
            if (parkedFlag_[id]) {
                parkedFlag_[id] = 0;
                activeNodes_.push_back(id);
            }
        }
        parkedCount_ = 0;
    }
    wakeHeap_.clear();
}

void
JMachine::setSuperblock(bool on)
{
    config_.proc.superblock = on;
    for (NodeId id = 0; id < nodeCount(); ++id)
        nodes_[id].processor().setSuperblock(on);
}

} // namespace jmsim
