#include "machine/jmachine.hh"

#include "machine/loader.hh"
#include "sim/logging.hh"

namespace jmsim
{

JMachine::JMachine(const MachineConfig &config, Program prog,
                   const std::string &boot_label)
    : config_(config),
      prog_(std::move(prog)),
      net_(config.dims),
      activeFlag_(config.dims.nodes(), 0),
      haltedFlag_(config.dims.nodes(), 0)
{
    const unsigned n = config_.dims.nodes();
    nodes_.reserve(n);
    net_.setRoundRobin(config_.roundRobinArbitration);
    for (NodeId id = 0; id < n; ++id) {
        nodes_.push_back(std::make_unique<Node>());
        nodes_[id]->init(id, config_.dims, config_.memory, config_.ni,
                         config_.proc, &net_, &prog_,
                         [this, id] { activateNode(id); });
    }
    loadProgram(*this, boot_label);
    for (NodeId id = 0; id < n; ++id)
        activateNode(id);
}

void
JMachine::activateNode(NodeId id)
{
    if (!activeFlag_[id]) {
        activeFlag_[id] = 1;
        activeNodes_.push_back(id);
        nodes_[id]->processor().noteWake(now_);
    }
}

RunResult
JMachine::run(Cycle max_cycles)
{
    RunResult result;
    while (now_ < max_cycles) {
        // Step active nodes; compact the list as nodes go idle.
        std::size_t keep = 0;
        const std::size_t n = activeNodes_.size();
        for (std::size_t i = 0; i < n; ++i) {
            const NodeId id = activeNodes_[i];
            Node &node = *nodes_[id];
            if (node.step(now_)) {
                activeNodes_[keep++] = id;
            } else {
                activeFlag_[id] = 0;
                node.processor().noteSleep(now_);
                if (node.processor().halted() && !haltedFlag_[id]) {
                    haltedFlag_[id] = 1;
                    haltedCount_ += 1;
                }
            }
        }
        // Nodes woken during this loop (by activateNode) were appended
        // past n; keep them.
        for (std::size_t i = n; i < activeNodes_.size(); ++i)
            activeNodes_[keep++] = activeNodes_[i];
        activeNodes_.resize(keep);

        net_.step(now_);
        now_ += 1;

        if (haltedCount_ == nodeCount()) {
            result.reason = StopReason::AllHalted;
            result.cycles = now_;
            return result;
        }
        if (activeNodes_.empty() && !net_.anyActive()) {
            result.reason = StopReason::Quiescent;
            result.cycles = now_;
            return result;
        }
    }
    result.reason = StopReason::CycleLimit;
    result.cycles = now_;
    return result;
}

void
JMachine::poke(NodeId id, Addr addr, Word value)
{
    nodes_[id]->memory().write(addr, value);
}

Word
JMachine::peek(NodeId id, Addr addr) const
{
    return nodes_[id]->memory().read(addr);
}

void
JMachine::pokeInt(NodeId id, Addr addr, std::int32_t v)
{
    poke(id, addr, Word::makeInt(v));
}

std::int32_t
JMachine::peekInt(NodeId id, Addr addr) const
{
    return peek(id, addr).asInt();
}

ProcessorStats
JMachine::aggregateStats() const
{
    ProcessorStats total;
    for (const auto &node : nodes_) {
        const ProcessorStats &s = node->processor().stats();
        for (std::size_t c = 0; c < total.cyclesByClass.size(); ++c)
            total.cyclesByClass[c] += s.cyclesByClass[c];
        total.instructions += s.instructions;
        total.instructionsOs += s.instructionsOs;
        total.dispatches += s.dispatches;
        total.suspends += s.suspends;
        for (std::size_t f = 0; f < kNumFaults; ++f)
            total.faults[f] += s.faults[f];
        total.queueStallCycles += s.queueStallCycles;
        total.runCycles += s.runCycles;
        total.idleCycles += s.idleCycles;
    }
    return total;
}

void
JMachine::resetStats()
{
    for (auto &node : nodes_) {
        node->processor().resetStats();
        node->ni().resetStats();
        node->ni().queue(0).resetStats();
        node->ni().queue(1).resetStats();
    }
    net_.resetStats();
}

} // namespace jmsim
