/**
 * @file
 * Deterministic machine-state checkpoints.
 *
 * A Snapshot is a versioned binary image of one JMachine's complete
 * architectural state — node memories (backed DRAM chunks only),
 * register sets and translation caches, NI send channels and message
 * queues, every in-flight message with its flits and cached routes,
 * the wake-scheduler heap, the fabric's back-pressure retry state, and
 * every counter the CounterRegistry reads — such that a run restored
 * at cycle C continues bit-identically to the uninterrupted run: same
 * final cycle count, same counter snapshot, same jtrace stream.
 *
 * Host-side execution strategy is deliberately NOT part of the image:
 * the header digest covers the architectural configuration (mesh
 * dims, memory/NI/processor timing, arbitration) and the program
 * image, but none of the host toggles (threads, idleSkip,
 * wakeScheduler, netScheduler, superblock, trace). A snapshot taken
 * under one strategy therefore restores into a machine running any
 * other — the property the jrun_server sweep farm is built on.
 *
 * Message handles are pool-allocation names, not architectural state
 * (free-list order depends on the shard count), so the image stores
 * messages by a dense ordinal and every stored Flit/MsgHandle field
 * is rewritten through a HandleMap on both paths.
 *
 * Layout: {magic u32, version u32, config digest u64} then the body
 * sections in machine order (kernel, pool, nodes, network). Header
 * mismatches are reported to the caller (JMachine::restore returns
 * false); body corruption past a valid header is detected by the
 * bounds-checked Reader and is fatal.
 */

#ifndef JMSIM_CKPT_SNAPSHOT_HH
#define JMSIM_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/word.hh"
#include "net/message.hh"

namespace jmsim
{
namespace ckpt
{

inline constexpr std::uint32_t kMagic = 0x4A4D434Bu;  ///< "JMCK"
/** v2: Message::netop byte in the pool section + the netops engine
 *  section (combine tables, in-flight requests, barrier tree). */
inline constexpr std::uint32_t kVersion = 2;

/** Little-endian byte sink the component save() methods write into. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** Doubles travel as their IEEE-754 bit pattern (exact). */
    void f64(double v);

    void
    word(const Word &w)
    {
        u32(w.bits);
        u8(static_cast<std::uint8_t>(w.tag));
    }

    std::vector<std::uint8_t> &buffer() { return buf_; }
    const std::vector<std::uint8_t> &buffer() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader over a snapshot body; overruns are fatal. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }
    double f64();
    Word word();

    std::size_t remaining() const { return size_ - pos_; }
    std::size_t position() const { return pos_; }

  private:
    void need(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Ordinal sentinel for a null message handle. */
inline constexpr std::uint32_t kNullOrdinal = 0xFFFFFFFFu;

/**
 * Two-way message-identity map. Saving assigns each live message a
 * dense ordinal (toOrdinal); restoring maps the ordinal back to the
 * handle the pool handed out on this side (toHandle). Handles
 * themselves never enter the image.
 */
struct HandleMap
{
    std::unordered_map<MsgHandle, std::uint32_t> toOrdinal;
    std::vector<MsgHandle> toHandle;

    /** Ordinal of a live handle (save path); fatal if unregistered. */
    std::uint32_t ordinalOf(MsgHandle h) const;

    /** Handle for a stored ordinal (restore path); fatal if bad. */
    MsgHandle handleOf(std::uint32_t ordinal) const;
};

/** FNV-1a accumulator for the header's architectural-config digest. */
class Digest
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= 1099511628211ull;
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 1469598103934665603ull;
};

/** One serialized machine image (header + body). */
struct Snapshot
{
    std::vector<std::uint8_t> bytes;

    std::size_t sizeBytes() const { return bytes.size(); }

    /** Write the image to @p path. @return false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Replace the image with the contents of @p path. */
    bool readFile(const std::string &path);
};

} // namespace ckpt
} // namespace jmsim

#endif // JMSIM_CKPT_SNAPSHOT_HH
