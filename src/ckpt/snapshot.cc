#include "ckpt/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace jmsim
{
namespace ckpt
{

void
Writer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Reader::need(std::size_t n)
{
    if (size_ - pos_ < n)
        fatal("checkpoint body truncated (need " + std::to_string(n) +
              " bytes at offset " + std::to_string(pos_) + ", have " +
              std::to_string(size_ - pos_) + ")");
}

std::uint8_t
Reader::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint32_t
Reader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
Reader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

double
Reader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

Word
Reader::word()
{
    std::uint32_t bits = u32();
    std::uint8_t tag = u8();
    if (tag >= kNumTags)
        fatal("checkpoint: bad word tag " + std::to_string(unsigned(tag)));
    return Word{bits, static_cast<Tag>(tag)};
}

std::uint32_t
HandleMap::ordinalOf(MsgHandle h) const
{
    if (h == kNullMsg)
        return kNullOrdinal;
    auto it = toOrdinal.find(h);
    if (it == toOrdinal.end())
        fatal("checkpoint: live message handle " + std::to_string(h) +
              " not collected");
    return it->second;
}

MsgHandle
HandleMap::handleOf(std::uint32_t ordinal) const
{
    if (ordinal == kNullOrdinal)
        return kNullMsg;
    if (ordinal >= toHandle.size())
        fatal("checkpoint: message ordinal " + std::to_string(ordinal) +
              " out of range (" + std::to_string(toHandle.size()) + " live)");
    return toHandle[ordinal];
}

bool
Snapshot::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

bool
Snapshot::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    bytes.clear();
    std::uint8_t buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace ckpt
} // namespace jmsim
