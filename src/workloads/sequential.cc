#include "workloads/apps.hh"

#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

/**
 * Tuned sequential baselines for Figure 5. The paper's speedups for
 * LCS, radix sort, and N-Queens are relative to "a good sequential
 * implementation"; these are single-node jasm programs with no
 * message traffic, written in the same style the parallel codes use.
 */

const char *kSeqLcs = R"(
; params: +0 lenA, +1 lenB. A at ACH+1.., B in external memory.
; Two-row DP: col[] holds the previous column.
.equ ACH, 992
.equ COL, 2020
.equ BSTR, 73728
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    ; zero col[1..lenA]
    LDL A2, seg(COL, 1056)
    LD R0, [A1+0]
    ST [A2+0], R0
    MOVEI R1, 1
    MOVEI R2, 0
zc:
    GT R3, R1, R0
    BT R3, zd
    STX [A2+R1], R2
    ADDI R1, R1, #1
    BR zc
zd:
    LDL A0, seg(BSTR, 4096)
    MOVEI R2, 0              ; j
col_loop:
    LD R0, [A1+1]
    LT R3, R2, R0
    BF R3, finish
    LDX R0, [A0+R2]          ; c = b[j]
    ST [A1+9], R2            ; spill j
    ; inner sweep over the rows, carry packed as in the parallel code
    MOVEI R1, 0              ; carry = diag | left<<13
    MOVEI R2, 1              ; i
row_loop:
    LDL A3, seg(ACH, 1056)
    LDX R3, [A3+R2]
    EQ R3, R3, R0
    BF R3, nomatch
    LSHI R3, R1, #-13
    LSHI R3, R3, #13
    SUB R3, R1, R3
    ADDI R3, R3, #1
    LDX A3, [A2+R2]
    BR store
nomatch:
    LSHI R3, R1, #-13
    LDX A3, [A2+R2]
    LT R1, A3, R3
    BT R1, store
    MOVE R3, A3
store:
    LSHI R1, R3, #13
    OR R1, R1, A3
    STX [A2+R2], R3
    ADDI R2, R2, #1
    LD A3, [A2+0]
    LE A3, R2, A3
    BT A3, row_loop
    LD R2, [A1+9]
    ADDI R2, R2, #1
    BR col_loop
finish:
    LD R0, [A1+0]
    LDX R0, [A2+R0]          ; col[lenA]
    OUT R0
    HALT
)";

const char *kSeqRadix = R"(
; params: +0 keys, +1 passes. Buffers in external memory.
.equ HIST, 1664
.equ NB,   1696
.equ BUFA, 73728
.equ BUFB, 139264
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 0
    ST [A1+16], R0           ; pass
pass_loop:
    ; zero hist
    LDL A2, seg(HIST, 16)
    MOVEI R0, 0
    MOVEI R1, 0
zh:
    STX [A2+R0], R1
    ADDI R0, R0, #1
    LEI R2, R0, #15
    BT R2, zh
    ; source buffer by parity
    LD R0, [A1+16]
    ANDI R0, R0, #1
    EQI R0, R0, #0
    BF R0, src_b
    LDL A0, seg(BUFA, 65536)
    BR src_done
src_b:
    LDL A0, seg(BUFB, 65536)
src_done:
    ; count
    LD R0, [A1+16]
    ASHI R3, R0, #2
    NEG R3, R3               ; shift
    ST [A1+17], R3
    LD R1, [A1+0]
    MOVEI R0, 0
count:
    LDX R2, [A0+R0]
    LSH R2, R2, R3
    ANDI R2, R2, #15
    LDX A3, [A2+R2]
    ADDI A3, A3, #1
    STX [A2+R2], A3
    ADDI R0, R0, #1
    LT A3, R0, R1
    BT A3, count
    ; exclusive scan into NB
    LDL A3, seg(NB, 16)
    MOVEI R0, 0
    MOVEI R1, 0
scan:
    STX [A3+R1], R0
    LDX R2, [A2+R1]
    ADD R0, R0, R2
    ADDI R1, R1, #1
    LEI R2, R1, #15
    BT R2, scan
    ; reorder into the other buffer
    LD R0, [A1+16]
    ANDI R0, R0, #1
    EQI R0, R0, #0
    BF R0, dst_a
    LDL A2, seg(BUFB, 65536)
    BR dst_done
dst_a:
    LDL A2, seg(BUFA, 65536)
dst_done:
    LDL A3, seg(NB, 16)
    LD R3, [A1+17]
    MOVEI R0, 0
reorder:
    LDX R1, [A0+R0]          ; key
    LSH R2, R1, R3
    ANDI R2, R2, #15         ; digit
    ST [A1+18], R0           ; spill the key index
    LDX R0, [A3+R2]          ; rank = NB[d]
    ST [A1+19], R0
    ADDI R0, R0, #1
    STX [A3+R2], R0          ; NB[d]++
    LD R0, [A1+19]
    STX [A2+R0], R1          ; dst[rank] = key
    LD R0, [A1+18]
    ADDI R0, R0, #1
    LD R2, [A1+0]
    LT R2, R0, R2
    BT R2, reorder
    ; next pass
    LD R0, [A1+16]
    ADDI R0, R0, #1
    ST [A1+16], R0
    LD R1, [A1+1]
    LT R1, R0, R1
    BF R1, seq_done
    BR pass_loop
seq_done:
    HALT
)";

const char *kSeqQueens = R"(
; params: +4 full mask. Counts all solutions by iterative DFS.
.equ STK, 1600
boot:
    CALL A2, jos_init
    LDL A0, seg(STK, 100)
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 0
    MOVEI R1, 0
    MOVEI R2, 0
    MOVEI R3, 0
    ST [A1+20], R3
q_push:
    LD A2, [A1+4]
    EQ A2, R0, A2
    BF A2, q_not_leaf
    LD A2, [A1+20]
    ADDI A2, A2, #1
    ST [A1+20], A2
    BR q_pop
q_not_leaf:
    OR A2, R0, R1
    OR A2, A2, R2
    NOT A2, A2
    LD A3, [A1+4]
    AND A2, A2, A3
    STX [A0+R3], A2
    ADDI R3, R3, #1
    STX [A0+R3], R0
    ADDI R3, R3, #1
    STX [A0+R3], R1
    ADDI R3, R3, #1
    STX [A0+R3], R2
    ADDI R3, R3, #1
q_top:
    ADDI R3, R3, #-4
    LDX A2, [A0+R3]
    ADDI R3, R3, #4
    EQI A3, A2, #0
    BT A3, q_pop
    NEG A3, A2
    AND A3, A2, A3
    SUB A2, A2, A3
    ADDI R3, R3, #-4
    STX [A0+R3], A2
    ADDI R3, R3, #1
    LDX R0, [A0+R3]
    ADDI R3, R3, #1
    LDX R1, [A0+R3]
    ADDI R3, R3, #1
    LDX R2, [A0+R3]
    ADDI R3, R3, #1
    OR R0, R0, A3
    OR R1, R1, A3
    ASHI R1, R1, #1
    LD A2, [A1+4]
    AND R1, R1, A2
    OR R2, R2, A3
    LSHI R2, R2, #-1
    BR q_push
q_pop:
    ADDI R3, R3, #-4
    LTI A2, R3, #1
    BT A2, q_done
    BR q_top
q_done:
    LD R0, [A1+20]
    OUT R0
    HALT
)";

} // namespace

Cycle
runLcsSequential(unsigned len_a, unsigned len_b, std::uint32_t seed)
{
    if (len_a > 1024 || len_b > 4096)
        fatal("sequential LCS: strings too long");
    const auto a = lcsString(len_a, seed);
    const auto b = lcsString(len_b, seed + 1);
    auto m = buildMachine(1, "seq_lcs.jasm", kSeqLcs);
    pokeParam(*m, 0, 0, static_cast<std::int32_t>(len_a));
    pokeParam(*m, 0, 1, static_cast<std::int32_t>(len_b));
    const Addr ach = static_cast<Addr>(m->program().symbol("ACH"));
    const Addr bstr = static_cast<Addr>(m->program().symbol("BSTR"));
    for (unsigned i = 0; i < len_a; ++i)
        m->pokeInt(0, ach + 1 + i, a[i]);
    for (unsigned j = 0; j < len_b; ++j)
        m->pokeInt(0, bstr + j, b[j]);
    const RunResult r = m->run(4'000'000'000ull);
    if (r.reason != StopReason::AllHalted)
        fatal("sequential LCS did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != 1 ||
        out[0] != static_cast<std::int32_t>(referenceLcs(a, b)))
        fatal("sequential LCS wrong answer");
    return r.cycles;
}

Cycle
runNQueensSequential(unsigned queens)
{
    auto m = buildMachine(1, "seq_queens.jasm", kSeqQueens);
    pokeParam(*m, 0, 4, static_cast<std::int32_t>((1u << queens) - 1));
    const RunResult r = m->run(8'000'000'000ull);
    if (r.reason != StopReason::AllHalted)
        fatal("sequential N-Queens did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != 1 ||
        static_cast<std::uint64_t>(out[0]) != referenceNQueens(queens))
        fatal("sequential N-Queens wrong answer");
    return r.cycles;
}

Cycle
runRadixSequential(unsigned keys, unsigned key_bits, std::uint32_t seed)
{
    if (keys > 65536)
        fatal("sequential radix: too many keys");
    const unsigned passes = (key_bits + 3) / 4;
    const auto input = radixKeys(keys, key_bits, seed);
    auto m = buildMachine(1, "seq_radix.jasm", kSeqRadix);
    pokeParam(*m, 0, 0, static_cast<std::int32_t>(keys));
    pokeParam(*m, 0, 1, static_cast<std::int32_t>(passes));
    const Addr bufa = static_cast<Addr>(m->program().symbol("BUFA"));
    const Addr bufb = static_cast<Addr>(m->program().symbol("BUFB"));
    for (unsigned i = 0; i < keys; ++i)
        m->pokeInt(0, bufa + i, static_cast<std::int32_t>(input[i]));
    const RunResult r = m->run(4'000'000'000ull);
    if (r.reason != StopReason::AllHalted)
        fatal("sequential radix did not finish");
    const auto expect = referenceSort(input);
    const Addr final_buf = (passes % 2) ? bufb : bufa;
    for (unsigned i = 0; i < keys; ++i) {
        if (m->peekInt(0, final_buf + i) !=
            static_cast<std::int32_t>(expect[i]))
            fatal("sequential radix wrong value at " + std::to_string(i));
    }
    return r.cycles;
}

} // namespace workloads
} // namespace jmsim
