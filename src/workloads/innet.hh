/**
 * @file
 * In-network computing workloads: the ablation material behind
 * bench/table6_innet (EXPERIMENTS.md "in-network ablation").
 *
 * Three barrier implementations at matched iteration counts — the
 * software scan barrier of Table 3, a fetch-and-add counting barrier,
 * and the hardware tree — plus a hotspot fetch-and-add stress that
 * exercises router combining. Builders are exposed separately from the
 * measure functions so the netops tests can snapshot machines
 * mid-flight.
 */

#ifndef JMSIM_WORKLOADS_INNET_HH
#define JMSIM_WORKLOADS_INNET_HH

#include <cstdint>
#include <memory>

#include "machine/jmachine.hh"
#include "sim/types.hh"

namespace jmsim
{
namespace workloads
{

/** Build (but do not run) the hardware-tree barrier program: every
 *  node runs @p iterations nop_barrier calls, node 0 stamps elapsed
 *  cycles to OUT. */
std::unique_ptr<JMachine> buildTreeBarrierMachine(unsigned nodes,
                                                  unsigned iterations);

/** Build the fetch-and-add counting barrier: arrive with faa(0, +1),
 *  then poll faa(0, +0) until the count reaches iteration * nodes. */
std::unique_ptr<JMachine> buildFaaBarrierMachine(unsigned nodes,
                                                 unsigned iterations,
                                                 bool combining);

/** Build the hotspot stress: every node issues @p ops_per_node
 *  faa(0, +1) requests back to back; node 0 polls until the counter
 *  reaches nodes * ops_per_node and stamps elapsed cycles to OUT. */
std::unique_ptr<JMachine> buildFaaHotspotMachine(unsigned nodes,
                                                 unsigned ops_per_node,
                                                 bool combining,
                                                 bool round_robin = false);

/** Microseconds per hardware-tree barrier (Table 3 companion column). */
double measureTreeBarrierUs(unsigned nodes, unsigned iterations = 8);

/** Microseconds per fetch-and-add counting barrier. */
double measureFaaBarrierUs(unsigned nodes, unsigned iterations = 8,
                           bool combining = true);

/** Hotspot run summary (per-op latency plus the engine's counters). */
struct HotspotResult
{
    double cyclesPerOp = 0;         ///< elapsed / (nodes * ops_per_node)
    std::uint64_t combineHits = 0;  ///< net.combine_hits
    std::uint64_t faaOps = 0;       ///< net.faa_ops (includes the polls)
    std::int32_t finalValue = 0;    ///< variable 0 after the run
    Cycle runCycles = 0;
};

HotspotResult runFaaHotspot(unsigned nodes, unsigned ops_per_node,
                            bool combining, bool round_robin = false);

} // namespace workloads
} // namespace jmsim

#endif // JMSIM_WORKLOADS_INNET_HH
