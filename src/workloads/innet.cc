#include "workloads/innet.hh"

#include <string>

#include "netops/netops.hh"
#include "runtime/jos.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

const char *kTreeBarrierSource = R"(
; Hardware-tree barrier timing: every node runs K waves through
; nop_barrier; node 0 stamps before and after. Param +0: K.
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+0]
    ST [A1+10], R0
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, others
    GETSP R0, CYCLELO
    ST [A1+9], R0
others:
    CALL A2, nop_barrier
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, others
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, done
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
done:
    HALT
)";

const char *kFaaBarrierSource = R"(
; Fetch-and-add counting barrier: arrive with faa(0, +1), then poll
; faa(0, +0) until the counter reaches wave * NODES. The counter only
; grows, so a fast node entering wave k+1 cannot confuse a slow
; node's wave-k poll. Param +0: K waves.
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+0]
    ST [A1+10], R0          ; waves remaining
    MOVEI R0, 0
    ST [A1+11], R0          ; release target
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, wave
    GETSP R0, CYCLELO
    ST [A1+9], R0
wave:
    LD R0, [A1+11]
    GETSP R1, NODES
    ADD R0, R0, R1
    ST [A1+11], R0          ; target += NODES
    MOVEI R0, 0
    MOVEI R1, 1
    MOVEI R2, 0
    CALL A2, nop_faa        ; arrive
poll:
    MOVEI R0, 0
    MOVEI R1, 0
    MOVEI R2, 0
    CALL A2, nop_faa        ; R0 = current count
    LD R1, [A1+11]
    LT R2, R0, R1
    BT R2, poll
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, wave
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, done
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
done:
    HALT
)";

const char *kFaaHotspotSource = R"(
; Hotspot stress: every node fires K faa(0, +1) requests back to back;
; node 0 then polls faa(0, +0) until the counter reaches the poked
; total and stamps the elapsed cycles. Params: +0 K, +1 nodes * K.
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+0]
    ST [A1+10], R0          ; ops remaining
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, ops
    GETSP R0, CYCLELO
    ST [A1+9], R0
ops:
    MOVEI R0, 0
    MOVEI R1, 1
    MOVEI R2, 0
    CALL A2, nop_faa
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, ops
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, done
wait_all:
    MOVEI R0, 0
    MOVEI R1, 0
    MOVEI R2, 0
    CALL A2, nop_faa
    LD R1, [A1+1]
    LT R2, R0, R1
    BT R2, wait_all
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
done:
    HALT
)";

/** Like driver buildMachine, but with an explicit netops block (the
 *  global override would leak between ablation arms) and the optional
 *  round-robin NI arbitration used by the determinism tests. */
std::unique_ptr<JMachine>
buildNetOpsMachine(unsigned nodes, const std::string &name,
                   const std::string &source, const NetOpsConfig &nops,
                   bool round_robin)
{
    Program prog = assemble(jos::withKernel(name, source, false, true));
    MachineConfig cfg = standardConfig(nodes);
    cfg.netops = nops;
    if (round_robin)
        cfg.roundRobinArbitration = true;
    auto m = std::make_unique<JMachine>(cfg, std::move(prog));
    for (NodeId id = 0; id < m->nodeCount(); ++id) {
        for (Addr a = jos::kAppScratchBase; a < 4096; ++a)
            m->pokeInt(id, a, 0);
    }
    return m;
}

double
finishBarrierRun(JMachine &m, const char *what, unsigned iterations)
{
    const RunResult r = m.run(80'000'000);
    if (r.reason == StopReason::CycleLimit)
        fatal(std::string(what) + " benchmark did not finish");
    const auto out = outInts(m, 0);
    if (out.size() != 1)
        fatal(std::string(what) + " benchmark produced no result");
    return cyclesToUs(static_cast<Cycle>(out[0])) / iterations;
}

} // namespace

std::unique_ptr<JMachine>
buildTreeBarrierMachine(unsigned nodes, unsigned iterations)
{
    NetOpsConfig nops;
    nops.barrierTree = true;
    auto m = buildNetOpsMachine(nodes, "treebar.jasm", kTreeBarrierSource,
                                nops, false);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(iterations));
    return m;
}

std::unique_ptr<JMachine>
buildFaaBarrierMachine(unsigned nodes, unsigned iterations, bool combining)
{
    NetOpsConfig nops;
    nops.faa = true;
    nops.combining = combining;
    auto m = buildNetOpsMachine(nodes, "faabar.jasm", kFaaBarrierSource,
                                nops, false);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(iterations));
    return m;
}

std::unique_ptr<JMachine>
buildFaaHotspotMachine(unsigned nodes, unsigned ops_per_node, bool combining,
                       bool round_robin)
{
    NetOpsConfig nops;
    nops.faa = true;
    nops.combining = combining;
    auto m = buildNetOpsMachine(nodes, "hotspot.jasm", kFaaHotspotSource,
                                nops, round_robin);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(ops_per_node));
    pokeParamAll(*m, 1, static_cast<std::int32_t>(nodes * ops_per_node));
    return m;
}

double
measureTreeBarrierUs(unsigned nodes, unsigned iterations)
{
    auto m = buildTreeBarrierMachine(nodes, iterations);
    return finishBarrierRun(*m, "tree barrier", iterations);
}

double
measureFaaBarrierUs(unsigned nodes, unsigned iterations, bool combining)
{
    auto m = buildFaaBarrierMachine(nodes, iterations, combining);
    return finishBarrierRun(*m, "faa barrier", iterations);
}

HotspotResult
runFaaHotspot(unsigned nodes, unsigned ops_per_node, bool combining,
              bool round_robin)
{
    auto m = buildFaaHotspotMachine(nodes, ops_per_node, combining,
                                    round_robin);
    const RunResult r = m->run(80'000'000);
    if (r.reason == StopReason::CycleLimit)
        fatal("hotspot benchmark did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != 1)
        fatal("hotspot benchmark produced no result");

    HotspotResult result;
    result.runCycles = r.cycles;
    result.cyclesPerOp = static_cast<double>(out[0]) /
                         (static_cast<double>(nodes) * ops_per_node);
    const NetOps *nops = m->netops();
    result.combineHits = nops->combineHits();
    result.faaOps = nops->faaOps();
    result.finalValue = nops->slotValue(0);
    return result;
}

} // namespace workloads
} // namespace jmsim
