/**
 * @file
 * Shared helpers for workload drivers: build a machine around a jasm
 * application, poke parameters, run, and collect OUT results.
 */

#ifndef JMSIM_WORKLOADS_DRIVER_HH
#define JMSIM_WORKLOADS_DRIVER_HH

#include <memory>
#include <string>
#include <vector>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"
#include "workloads/apps.hh"

namespace jmsim
{
namespace workloads
{

/** Build the standard machine configuration for @p nodes. */
MachineConfig standardConfig(unsigned nodes);

/** Ablation hook: override the dispatch cost used by standardConfig
 *  (0 restores the architectural default of 4 cycles). */
void setDispatchCyclesForTesting(unsigned cycles);

/** Override the simulation-kernel worker count used by standardConfig:
 *  1 = serial kernel, N > 1 = that many shards, 0 = auto,
 *  -1 restores the default (auto). Threaded runs are bit-identical to
 *  serial ones, so this only changes host-side wall-clock time. */
void setSimThreads(int threads);

/** Override superblock span execution used by standardConfig:
 *  0 = force per-op interpretation, 1 = force span fusion,
 *  -1 restores the default (on). Spans are a host-side execution
 *  strategy only — counters and timing are bit-identical either way —
 *  so this exists for A/B verification and perf triage. */
void setSuperblock(int enabled);

/** Override the event-driven wake scheduler used by standardConfig:
 *  0 = tick-everything kernel, 1 = park provably-idle nodes in the
 *  wake heap, -1 restores the default (on). Pure host-side execution
 *  strategy — runs are bit-identical either way — so this exists for
 *  A/B verification and perf triage. */
void setWakeScheduler(int enabled);

/** Override the event-driven fabric scheduler used by standardConfig:
 *  0 = legacy full-scan mesh stepping, 1 = pull worklists, dirty-word
 *  commits, and the fused sparse fast path, -1 restores the default
 *  (on). Pure host-side execution strategy — runs are bit-identical
 *  either way — so this exists for A/B verification and perf triage. */
void setNetScheduler(int enabled);

/** Override the in-network computing options used by standardConfig.
 *  Unlike the host-side toggles above this is ARCHITECTURAL: it turns
 *  on router combining / fetch-and-add / the hardware barrier tree,
 *  changes the config digest, and makes buildMachine bundle the netops
 *  jasm library. Benches and jasm_tool route their --combining /
 *  --faa / --barrier-tree flags through this. */
void setNetOpsConfig(const NetOpsConfig &cfg);

/** Restore the default (all in-network computing off). */
void clearNetOpsConfig();

/** Trace every machine built by standardConfig with @p config (tools
 *  and benches route their --trace flags through this). */
void setTraceConfig(const TraceConfig &config);

/** Restore the default (tracing off). */
void clearTraceConfig();

/**
 * Jasm prologue placing an application's node->router address table
 * (32 header/constant words plus one router address per node, read
 * with `seg(TBL, TBLS)`). Meshes the table fits on-chip keep the
 * historical layout — TBL at SRAM word 1024, length @p small_len — so
 * those programs assemble bit-identically to the old fixed-length
 * sources; larger meshes relocate the table to external memory, where
 * the 64-word-aligned large segment format reaches thousands of
 * entries (at DRAM access cost).
 */
std::string routerTablePrologue(unsigned nodes, unsigned small_len);

/** Assemble kernel(+barrier)+app and build a machine. */
std::unique_ptr<JMachine> buildMachine(unsigned nodes,
                                       const std::string &app_name,
                                       const std::string &app_source,
                                       bool with_barrier = false);

/** Poke an application parameter word (APP_SCRATCH + index). */
void pokeParam(JMachine &m, NodeId node, unsigned index, std::int32_t value);

/** Poke a parameter on every node. */
void pokeParamAll(JMachine &m, unsigned index, std::int32_t value);

/** Host-output words of one node as ints. */
std::vector<std::int32_t> outInts(const JMachine &m, NodeId node);

/** Aggregate the machine's statistics into an AppResult (Figure 6 /
 *  Table 4 material). runCycles and answer are filled by the caller. */
AppResult collectAppResult(const JMachine &m);

/** As above, but also attach the run's kernel profile and
 *  counter-registry snapshot (pool traffic etc.) to the result. */
AppResult collectAppResult(const JMachine &m, const RunResult &run);

} // namespace workloads
} // namespace jmsim

#endif // JMSIM_WORKLOADS_DRIVER_HH
