#include "workloads/apps.hh"

#include "sim/host_timer.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

/**
 * Parallel radix sort, 4 bits per digit (paper Section 4.3.2). Keys
 * are distributed evenly; each pass runs a local counting phase, a
 * binary combining/distributing tree that turns per-node bucket counts
 * into per-node bucket base ranks, and a reorder phase that sends
 * every key to its destination slot as a 3-word WriteData message.
 * The tree doubles as the inter-pass synchronization point, exactly
 * as the paper notes.
 *
 * TBL holds the node-base ranks (NB, [0..15]), per-pass constants,
 * and the node->router-address table ([32..32+nodes)); its placement
 * comes from routerTablePrologue — on-chip SRAM for machines it fits,
 * external memory beyond that. HIST is the local histogram; ACC/UPB/
 * UPF are the tree's per-level partial sums, receive buffers, and
 * arrival flags. Key buffers live in external memory (BUFA/BUFB,
 * swapped per pass).
 */
const char *kRadixSource = R"(
.equ HIST, 1664
.equ ACC,  1696
.equ UPB,  1856
.equ UPF,  2016
.equ BUFA, 73728
.equ BUFB, 139264
; params: +0 kpn, +1 log2kpn, +2 passes
; state:  +8 recvcount, +10 downflag, +13 bitk, +14 k, +15 k2, +16 pass
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    ; ---- node -> router address table ----
.region nnr
    LDL A0, seg(TBL, TBLS)
    MOVEI R3, 0
mk_addr:
    MOVE R0, R3
    CALL A2, jos_nnr
    LDL R1, #32
    ADD R1, R1, R3
    STX [A0+R1], R0
    ADDI R3, R3, #1
    GETSP R1, NODES
    LT R1, R3, R1
    BT R1, mk_addr
.region comp
    ; ---- constants ----
    LD R0, [A1+1]
    NEG R0, R0
    ST [A0+17], R0           ; -log2kpn
    LD R0, [A1+0]
    ADDI R1, R0, #-1
    ST [A0+18], R1           ; slot mask
    ST [A0+21], R0           ; kpn
    LDL R0, #32
    ST [A0+20], R0
    MOVEI R0, 0
    ST [A1+16], R0           ; pass = 0

; ======================= pass loop =======================
pass_loop:
    LDL A1, seg(APP_SCRATCH, 64)
    LDL A0, seg(TBL, TBLS)
    ; per-pass constants: shift and WriteData header (parity)
    LD R0, [A1+16]
    ASHI R0, R0, #2
    NEG R0, R0
    ST [A0+16], R0           ; -(4*pass)
    LD R0, [A1+16]
    ANDI R0, R0, #1
    EQI R0, R0, #0
    BF R0, hdr_odd
    LDL R1, hdr(writedata_a, 3)
    BR hdr_done
hdr_odd:
    LDL R1, hdr(writedata_b, 3)
hdr_done:
    ST [A0+19], R1

    ; ---- phase 1: local histogram ----
    LDL A2, seg(HIST, 16)
    MOVEI R0, 0
    MOVEI R1, 0
zh:
    STX [A2+R0], R1
    ADDI R0, R0, #1
    LEI R2, R0, #15
    BT R2, zh
    ; A0 = source buffer for this pass
    LD R0, [A1+16]
    ANDI R0, R0, #1
    EQI R0, R0, #0
    BF R0, src_b
    LDL A0, seg(BUFA, 65536)
    BR src_done
src_b:
    LDL A0, seg(BUFB, 65536)
src_done:
    LDL A2, seg(TBL, TBLS)
    LD R3, [A2+16]           ; shift
    LD R1, [A2+21]           ; kpn
    LDL A2, seg(HIST, 16)
    MOVEI R0, 0
count_loop:
    LDX R2, [A0+R0]
    LSH R2, R2, R3
    ANDI R2, R2, #15
    LDX A3, [A2+R2]
    ADDI A3, A3, #1
    STX [A2+R2], A3
    ADDI R0, R0, #1
    LT A3, R0, R1
    BT A3, count_loop

    ; ---- phase 2: combining / distributing tree ----
    MOVEI R0, 1
    ST [A1+13], R0           ; bitk
    MOVEI R0, 0
    ST [A1+14], R0           ; k
tree_up:
    LD R1, [A1+13]
    GETSP R2, NODES
    GE R3, R1, R2
    BT R3, tree_root
    GETSP R0, NODEID
    AND R3, R0, R1
    NEI R3, R3, #0
    BT R3, up_send
    ; left parent at this level: remember ACC[k] = HIST, merge child
    LDL A0, seg(ACC, 160)
    LDL A2, seg(HIST, 16)
    LD R0, [A1+14]
    ASHI R0, R0, #4
    MOVEI R1, 0
cp1:
    LDX R2, [A2+R1]
    ADD R3, R0, R1
    STX [A0+R3], R2
    ADDI R1, R1, #1
    LEI R3, R1, #15
    BT R3, cp1
    ; wait for the right child's counts
    LDL A0, seg(UPF, 16)
    LD R0, [A1+14]
.region sync
w_up:
    LDX R1, [A0+R0]
    EQI R1, R1, #0
    BT R1, w_up
.region comp
    MOVEI R1, 0
    STX [A0+R0], R1          ; clear for the next pass
    LDL A0, seg(UPB, 160)
    LD R0, [A1+14]
    ASHI R0, R0, #4
    MOVEI R1, 0
cp2:
    ADD R3, R0, R1
    LDX R2, [A0+R3]
    LDX R3, [A2+R1]
    ADD R2, R2, R3
    STX [A2+R1], R2
    ADDI R1, R1, #1
    LEI R3, R1, #15
    BT R3, cp2
    LD R0, [A1+14]
    ADDI R0, R0, #1
    ST [A1+14], R0
    LD R0, [A1+13]
    ASHI R0, R0, #1
    ST [A1+13], R0
    BR tree_up
up_send:
    ; send accumulated counts to the parent (me - bitk)
    GETSP R0, NODEID
    LD R1, [A1+13]
    SUB R0, R0, R1
    LDL A0, seg(TBL, TBLS)
    LDL R2, #32
    ADD R0, R0, R2
    LDX R0, [A0+R0]
.region comm
    SEND0 R0
    LDL R2, hdr(rs_up, 18)
    LD R3, [A1+14]
    SEND20 R2, R3
    LDL A2, seg(HIST, 16)
    MOVEI R1, 0
up_words:
    LDX R2, [A2+R1]
    ADDI R1, R1, #1
    LEI R3, R1, #15
    BT R3, up_more
    SEND0E R2
    BR up_sent
up_more:
    SEND0 R2
    BR up_words
up_sent:
.region sync
w_down:
    LD R0, [A1+10]
    EQI R0, R0, #0
    BT R0, w_down
.region comp
    MOVEI R0, 0
    ST [A1+10], R0
    BR tree_down
tree_root:
    ; node 0: NB = exclusive scan of the global totals
    LDL A0, seg(TBL, TBLS)
    LDL A2, seg(HIST, 16)
    MOVEI R0, 0
    MOVEI R1, 0
scan:
    STX [A0+R1], R0
    LDX R2, [A2+R1]
    ADD R0, R0, R2
    ADDI R1, R1, #1
    LEI R2, R1, #15
    BT R2, scan
tree_down:
    ; distribute bases to right children, deepest level first
    LD R0, [A1+14]
down_loop:
    ADDI R0, R0, #-1
    LTI R1, R0, #0
    BT R1, tree_done
    ST [A1+15], R0
    MOVEI R1, 1
    LSH R1, R1, R0
    GETSP R2, NODEID
    ADD R1, R1, R2
    LDL A0, seg(TBL, TBLS)
    LDL R2, #32
    ADD R1, R1, R2
    LDX R1, [A0+R1]
.region comm
    SEND0 R1
    LDL R2, hdr(rs_down, 17)
    SEND0 R2
    LDL A2, seg(ACC, 160)
    LD R0, [A1+15]
    ASHI R0, R0, #4
    MOVEI R1, 0
dw:
    ADD R2, R0, R1
    LDX R2, [A2+R2]
    LDX R3, [A0+R1]
    ADD R2, R2, R3
    ADDI R1, R1, #1
    LEI R3, R1, #15
    BT R3, dw_more
    SEND0E R2
    BR dw_done
dw_more:
    SEND0 R2
    BR dw
dw_done:
.region comp
    LD R0, [A1+15]
    BR down_loop
tree_done:

    ; ---- phase 3: reorder (one WriteData message per key) ----
    LD R0, [A1+16]
    ANDI R0, R0, #1
    EQI R0, R0, #0
    BF R0, rsrc_b
    LDL A0, seg(BUFA, 65536)
    BR rsrc_done
rsrc_b:
    LDL A0, seg(BUFB, 65536)
rsrc_done:
    LDL A1, seg(TBL, TBLS)
    MOVEI R0, 0
reorder:
    LDX R1, [A0+R0]          ; key
    LD R2, [A1+16]
    LSH R2, R1, R2
    ANDI R2, R2, #15         ; digit
    LDX A2, [A1+R2]          ; rank = NB[d]
    ADDI A3, A2, #1
    STX [A1+R2], A3
    LD R2, [A1+17]
    LSH R2, A2, R2           ; destination node
    LD A3, [A1+20]
    ADD R2, R2, A3
    LDX R2, [A1+R2]          ; destination router address
    LD A3, [A1+18]
    AND A2, A2, A3           ; destination slot
.region comm
    SEND0 R2
    LD R2, [A1+19]
    SEND20 R2, A2
    SEND0E R1
.region comp
    ADDI R0, R0, #1
    LD A3, [A1+21]
    LT A3, R0, A3
    BT A3, reorder

    ; ---- phase 4: wait until my slice fully arrived ----
    LDL A1, seg(APP_SCRATCH, 64)
.region sync
w_recv:
    LD R0, [A1+8]
    LD R1, [A1+0]
    LT R0, R0, R1
    BT R0, w_recv
.region comp
    MOVEI R0, 0
    ST [A1+8], R0
    LD R0, [A1+16]
    ADDI R0, R0, #1
    ST [A1+16], R0
    LD R1, [A1+2]
    LT R1, R0, R1
    BF R1, radix_done
    BR pass_loop
radix_done:
    HALT

; ---------------- handlers ----------------
rs_up:                       ; [hdr, level, c0..c15]
    LDL A0, seg(UPB, 176)
    LD R0, [A3+1]
    ASHI R0, R0, #4
    MOVEI R1, 0
ru_copy:
    ADDI R3, R1, #2
    LDX R2, [A3+R3]
    ADD R3, R0, R1
    STX [A0+R3], R2
    ADDI R1, R1, #1
    LEI R3, R1, #15
    BT R3, ru_copy
    LDL A0, seg(UPF, 16)
    LD R0, [A3+1]
    MOVEI R1, 1
    STX [A0+R0], R1
    SUSPEND

rs_down:                     ; [hdr, b0..b15]
    LDL A0, seg(TBL, TBLS)
    MOVEI R1, 0
rd_copy:
    ADDI R3, R1, #1
    LDX R2, [A3+R3]
    STX [A0+R1], R2
    ADDI R1, R1, #1
    LEI R3, R1, #15
    BT R3, rd_copy
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 1
    ST [A1+10], R0
    SUSPEND

writedata_a:                 ; even pass: write into BUFB
    LDL A0, seg(BUFB, 65536)
    LD R0, [A3+1]
    LD R1, [A3+2]
    STX [A0+R0], R1
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+8]
    ADDI R0, R0, #1
    ST [A1+8], R0
    SUSPEND

writedata_b:                 ; odd pass: write into BUFA
    LDL A0, seg(BUFA, 65536)
    LD R0, [A3+1]
    LD R1, [A3+2]
    STX [A0+R0], R1
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+8]
    ADDI R0, R0, #1
    ST [A1+8], R0
    SUSPEND
)";

} // namespace

PreparedApp
prepareRadixSort(const RadixConfig &config)
{
    if (config.keys % config.nodes != 0)
        fatal("radix: keys must divide evenly across nodes");
    const unsigned kpn = config.keys / config.nodes;
    if (kpn > 65536)
        fatal("radix: more than 64K keys per node");
    unsigned log2kpn = 0;
    while ((1u << log2kpn) < kpn)
        ++log2kpn;
    if ((1u << log2kpn) != kpn)
        fatal("radix: keys per node must be a power of two");
    const unsigned passes =
        (config.keyBits + config.digitBits - 1) / config.digitBits;
    if (config.digitBits != 4)
        fatal("radix: this implementation sorts 4 bits per digit");

    // The combining/distributing tree carries 10 levels of 16-bucket
    // partial sums (ACC/UPB are 160 words), so the jasm scales to
    // 2^10 nodes; the node->router table itself no longer caps the
    // machine (it relocates to external memory past 544 nodes).
    if (config.nodes > 1024)
        fatal("radix: the combining tree holds 10 levels (<= 1024 nodes)");

    const std::uint64_t boot0 = hostTicks();
    const auto keys = radixKeys(config.keys, config.keyBits, config.seed);

    auto m = buildMachine(config.nodes, "radix.jasm",
                          routerTablePrologue(config.nodes, 576) +
                              kRadixSource);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(kpn));
    pokeParamAll(*m, 1, static_cast<std::int32_t>(log2kpn));
    pokeParamAll(*m, 2, static_cast<std::int32_t>(passes));
    const Addr bufa = static_cast<Addr>(m->program().symbol("BUFA"));
    const Addr bufb = static_cast<Addr>(m->program().symbol("BUFB"));
    for (NodeId id = 0; id < config.nodes; ++id) {
        for (unsigned i = 0; i < kpn; ++i) {
            m->pokeInt(id, bufa + i,
                       static_cast<std::int32_t>(keys[id * kpn + i]));
        }
    }

    PreparedApp app;
    app.machine = std::move(m);
    app.name = "radix sort";
    app.cycleLimit = static_cast<Cycle>(passes) *
                         (static_cast<Cycle>(kpn) * 120 + 100000) +
                     1000000;
    app.requireAllHalted = true;
    app.validate = [config, kpn, passes, bufa, bufb,
                    keys](JMachine &machine) -> std::int64_t {
        const auto expect = referenceSort(keys);
        const Addr final_buf = (passes % 2) ? bufb : bufa;
        for (NodeId id = 0; id < config.nodes; ++id) {
            for (unsigned i = 0; i < kpn; ++i) {
                const std::int32_t got =
                    machine.peekInt(id, final_buf + i);
                if (got != static_cast<std::int32_t>(expect[id * kpn + i]))
                    fatal("radix sort wrong value at rank " +
                          std::to_string(id * kpn + i));
            }
        }
        return static_cast<std::int64_t>(config.keys);
    };
    app.bootSeconds = hostSeconds(hostTicks() - boot0);
    return app;
}

AppResult
runRadixSort(const RadixConfig &config)
{
    PreparedApp app = prepareRadixSort(config);
    return finishApp(app);
}

} // namespace workloads
} // namespace jmsim
