#include "workloads/apps.hh"

#include "sim/host_timer.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

/**
 * Traveling Salesperson (paper Section 4.3.4), reproducing the way the
 * CST/COSMOS system used the machine:
 *
 *  - the distance matrix is a distributed-object stand-in: each row is
 *    a named object (Ptr tag) resolved through XLATE at every use
 *    (Table 5's enormous xlate counts; misses refill from the JOS
 *    software directory);
 *  - task-processing threads suspend periodically via a null call (a
 *    continuation message to self) so bound updates can be processed —
 *    the paper's 16% synchronization overhead;
 *  - improved bounds are broadcast to every node;
 *  - tasks (fixed-length subpaths) are distributed round-robin.
 *
 * Task state (explicit DFS stack) lives in a per-task block in
 * external memory, so a "null call" saves only the stack pointer.
 */
const char *kTspSource = R"(
.equ STK_BG, 1600
.equ MAT,    73728
.equ TASKS,  81920
; params: +4 n, +5 step budget K, +6 full mask, +7 prefix depth P
; state:  +21 tasks, +22 round robin, +23 done, +25 spill,
;         +26 local slot counter, +27 bound, +28 spill
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    ; ---- bind row names (every node): ptr(i) -> row descriptor ----
    MOVEI R3, 0
ent:
    LD R0, [A1+4]
    LT R0, R3, R0
    BF R0, ent_done
    LSHI R0, R3, #6
    LDL R1, #MAT
    ADD R0, R0, R1
    LD R1, [A1+4]
    SETSEG R1, R0, R1
    WTAG R0, R3, #ptr
    ST [A1+28], R3
    CALL A2, jos_dir_bind
    LDL A1, seg(APP_SCRATCH, 64)
    LD R3, [A1+28]
    ADDI R3, R3, #1
    BR ent
ent_done:
    ; ---- node->router table (all nodes broadcast bounds) ----
.region nnr
    LDL A0, seg(TBL, TBLS)
    MOVEI R3, 0
mk_addr:
    MOVE R0, R3
    CALL A2, jos_nnr
    LDL R1, #32
    ADD R1, R1, R3
    STX [A0+R1], R0
    ADDI R3, R3, #1
    GETSP R1, NODES
    LT R1, R3, R1
    BT R1, mk_addr
.region comp
    LDL A1, seg(APP_SCRATCH, 64)
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    ; ---- generate depth-P subpath tasks ----
    LDL A0, seg(STK_BG, 100)
    MOVEI R3, 0
    MOVEI R0, 1
    STX [A0+R3], R0          ; nextcity = 1
    ADDI R3, R3, #1
    MOVEI R0, 0
    STX [A0+R3], R0          ; city = 0
    ADDI R3, R3, #1
    STX [A0+R3], R0          ; cost = 0
    ADDI R3, R3, #1
    MOVEI R0, 1
    STX [A0+R3], R0          ; visited = {0}
    ADDI R3, R3, #1
g_step:
    LEI R0, R3, #0
    BT R0, g_done
    ADDI R3, R3, #-4
    LDX R0, [A0+R3]          ; candidate index i
    LD R1, [A1+4]
    LT R1, R0, R1
    BF R1, g_step            ; frame exhausted: R3 already popped
    ADDI R1, R0, #1
    STX [A0+R3], R1
    ADDI R3, R3, #4
    MOVEI R1, 1
    LSH R1, R1, R0           ; bit
    ADDI R3, R3, #-1
    LDX A2, [A0+R3]          ; visited
    ADDI R3, R3, #1
    AND A3, A2, R1
    EQI A3, A3, #0
    BF A3, g_step
    ; newcost = cost + M[city][i] (direct access in the generator)
    ADDI R3, R3, #-3
    LDX A3, [A0+R3]          ; city
    ADDI R3, R3, #1
    LDX R1, [A0+R3]          ; cost
    ADDI R3, R3, #2
    LSHI A3, A3, #6
    LDL A2, #MAT
    ADD A3, A3, A2
    LD A2, [A1+4]
    SETSEG A3, A3, A2
    LDX A2, [A3+R0]
    ADD R1, R1, A2           ; newcost
    MOVEI A2, 1
    LSH A2, A2, R0
    ADDI R3, R3, #-1
    LDX A3, [A0+R3]
    ADDI R3, R3, #1
    OR A2, A2, A3            ; visited'
    LSHI A3, R3, #-2         ; child depth
    LD R2, [A1+7]
    EQ A3, A3, R2
    BT A3, g_send
    MOVEI R2, 1
    STX [A0+R3], R2
    ADDI R3, R3, #1
    STX [A0+R3], R0
    ADDI R3, R3, #1
    STX [A0+R3], R1
    ADDI R3, R3, #1
    STX [A0+R3], A2
    ADDI R3, R3, #1
    BR g_step
g_send:
    LD R2, [A1+21]
    ADDI R2, R2, #1
    ST [A1+21], R2           ; tasks++
    LD R2, [A1+22]
    ST [A1+25], R3
    LDL A3, seg(TBL, TBLS)
    LDL R3, #32
    ADD R3, R3, R2
    LDX A3, [A3+R3]
.region comm
    SEND0 A3
    LDL R3, hdr(tsp_task, 5)
    SEND20 R3, R0            ; header, last city
    SEND20 A2, R1            ; visited', cost
    MOVEI R3, 0
    SEND0E R3
.region comp
    LD R2, [A1+22]
    ADDI R2, R2, #1
    GETSP R3, NODES
    LT R3, R2, R3
    BT R3, g_rr
    MOVEI R2, 0
g_rr:
    ST [A1+22], R2
    LD R3, [A1+25]
    BR g_step
g_done:
.region sync
g_wait:
    LD R0, [A1+23]
    LD R1, [A1+21]
    LT R0, R0, R1
    BT R0, g_wait
.region comp
    LD R0, [A1+27]
    OUT R0                   ; optimal tour cost
    LD R0, [A1+21]
    OUT R0                   ; task count
    HALT
park:
    CALL A2, jos_park

; ----------------------------------------------------------------------
; Task processing (method invocation): allocate a task block and run.
; ----------------------------------------------------------------------
tsp_task:                    ; [hdr, city, visited, cost, pad]
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+26]
    ADDI R1, R0, #1
    ST [A1+26], R1
    LDL R1, #512
    LT R1, R0, R1
    BT R1, slot_ok
    BR jos_die               ; task-block pool exhausted
slot_ok:
    LSHI R1, R0, #7          ; slot * 128
    LDL R2, #TASKS
    ADD R1, R1, R2
    LDL R2, #128
    SETSEG A0, R1, R2
    ST [A0+4], R0            ; remember the slot id
    MOVEI R1, 1
    ST [A0+8], R1            ; frame: nextcity = 1
    LD R1, [A3+1]
    ST [A0+9], R1            ;   city
    LD R1, [A3+3]
    ST [A0+10], R1           ;   cost
    LD R1, [A3+2]
    ST [A0+11], R1           ;   visited
    MOVEI R1, 12
    ST [A0+0], R1            ; sp
    BR tsp_run

tsp_cont:                    ; [hdr, slot, pad] -- the null call returns
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A3+1]
    LSHI R1, R0, #7
    LDL R2, #TASKS
    ADD R1, R1, R2
    LDL R2, #128
    SETSEG A0, R1, R2
    BR tsp_run

; shared DFS segment runner: A0 = task block, A1 = scratch
tsp_run:
    LD R3, [A1+5]
    ST [A0+1], R3            ; refill the step budget
    LD R2, [A0+0]            ; sp
step:
    LEI R0, R2, #8
    BT R0, task_done
    ADDI R2, R2, #-4
    LDX R0, [A0+R2]          ; i = nextcity
    LD R1, [A1+4]
    LT R1, R0, R1
    BF R1, step              ; frame exhausted (R2 already popped)
    ADDI R1, R0, #1
    STX [A0+R2], R1
    ADDI R2, R2, #4
    MOVEI R1, 1
    LSH R1, R1, R0
    ADDI R2, R2, #-1
    LDX A2, [A0+R2]          ; visited
    ADDI R2, R2, #1
    AND A3, A2, R1
    EQI A3, A3, #0
    BF A3, budget_next
    ; newcost = cost + row(city)[i], row resolved by name
    ADDI R2, R2, #-3
    LDX A3, [A0+R2]          ; city
    ADDI R2, R2, #1
    LDX R1, [A0+R2]          ; cost
    ADDI R2, R2, #2
.region xlate
    WTAG A3, A3, #ptr
    XLATE A3, A3
.region comp
    LDX R3, [A3+R0]
    ADD R1, R1, R3           ; newcost
    LD R3, [A1+27]
    GE R3, R1, R3
    BT R3, budget_next       ; prune against the bound
    MOVEI R3, 1
    LSH R3, R3, R0
    OR A2, A2, R3            ; visited'
    LD R3, [A1+6]
    EQ R3, A2, R3
    BF R3, push_child
    ; complete tour: close the cycle through city 0
.region xlate
    WTAG A3, R0, #ptr
    XLATE A3, A3
.region comp
    MOVEI R3, 0
    LDX R3, [A3+R3]
    ADD R1, R1, R3
    LD R3, [A1+27]
    LT R3, R1, R3
    BF R3, budget_next
    ST [A1+27], R1           ; new local bound
    ; broadcast the bound to every node
    ST [A0+2], R2
    ST [A0+3], R0
    MOVEI R0, 0
bc_loop:
    GETSP R3, NODES
    LT R3, R0, R3
    BF R3, bc_done
    LDL A2, seg(TBL, TBLS)
    LDL R3, #32
    ADD R3, R3, R0
    LDX A3, [A2+R3]
.region comm
    SEND0 A3
    LDL A3, hdr(tsp_bound, 2)
    SEND20E A3, R1
.region comp
    ADDI R0, R0, #1
    BR bc_loop
bc_done:
    LD R2, [A0+2]
    LD R0, [A0+3]
    BR budget_next
push_child:
    MOVEI R3, 1
    STX [A0+R2], R3
    ADDI R2, R2, #1
    STX [A0+R2], R0
    ADDI R2, R2, #1
    STX [A0+R2], R1
    ADDI R2, R2, #1
    STX [A0+R2], A2
    ADDI R2, R2, #1
budget_next:
    LD R3, [A0+1]
    ADDI R3, R3, #-1
    ST [A0+1], R3
    GTI R3, R3, #0
    BT R3, step
    ; null call: save the stack pointer, continue via a self-message
    ST [A0+0], R2
.region sync
    GETSP R0, NNR
    SEND0 R0
    LDL R1, hdr(tsp_cont, 3)
    LD R2, [A0+4]
    SEND20 R1, R2
    MOVEI R1, 0
    SEND0E R1
.region comp
    SUSPEND
task_done:
.region comm
    MOVEI R0, 0
    SEND0 R0
    LDL R1, hdr(tsp_done, 3)
    MOVEI R2, 1
    SEND20 R1, R2
    MOVEI R1, 0
    SEND0E R1
.region comp
    SUSPEND

tsp_bound:                   ; [hdr, cost]
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A3+1]
    LD R1, [A1+27]
    LT R1, R0, R1
    BF R1, bound_old
    ST [A1+27], R0
bound_old:
    SUSPEND

tsp_done:                    ; [hdr, 1, pad]
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+23]
    ADDI R0, R0, #1
    ST [A1+23], R0
    SUSPEND
)";

} // namespace

PreparedApp
prepareTsp(const TspConfig &config)
{
    if (config.cities < 4 || config.cities > 16)
        fatal("TSP: cities must be in [4, 16]");
    unsigned prefix = config.prefixDepth;
    std::uint64_t tasks = 1;
    if (prefix == 0) {
        for (prefix = 2; prefix < std::min(config.cities - 1, 5u);
             ++prefix) {
            tasks = 1;
            for (unsigned k = 1; k < prefix; ++k)
                tasks *= config.cities - k;
            if (tasks >= 4ull * config.nodes)
                break;
        }
    }
    tasks = 1;
    for (unsigned k = 1; k < prefix; ++k)
        tasks *= config.cities - k;
    if ((tasks + config.nodes - 1) / config.nodes > 512)
        fatal("TSP: too many tasks per node");

    const std::uint64_t boot0 = hostTicks();
    const auto dist = tspMatrix(config.cities, config.seed);

    auto m = buildMachine(config.nodes, "tsp.jasm",
                          routerTablePrologue(config.nodes, 544) +
                              kTspSource);
    pokeParamAll(*m, 4, static_cast<std::int32_t>(config.cities));
    pokeParamAll(*m, 5, static_cast<std::int32_t>(config.suspendPeriod));
    pokeParamAll(*m, 6,
                 static_cast<std::int32_t>((1u << config.cities) - 1));
    pokeParamAll(*m, 7, static_cast<std::int32_t>(prefix));
    const Addr mat = static_cast<Addr>(m->program().symbol("MAT"));
    for (NodeId id = 0; id < config.nodes; ++id) {
        m->pokeInt(id, jos::kAppScratchBase + 27, 1 << 30);  // bound
        for (unsigned i = 0; i < config.cities; ++i) {
            for (unsigned j = 0; j < config.cities; ++j)
                m->pokeInt(id, mat + i * 64 + j, dist[i][j]);
        }
    }

    PreparedApp app;
    app.machine = std::move(m);
    app.name = "TSP";
    app.cycleLimit = 8'000'000'000ull;
    app.requireAllHalted = false;
    app.validate = [dist](JMachine &machine) -> std::int64_t {
        const auto out = outInts(machine, 0);
        if (out.size() != 2)
            fatal("TSP produced no result");
        const std::int64_t expect = referenceTsp(dist);
        if (out[0] != expect)
            fatal("TSP wrong answer: " + std::to_string(out[0]) +
                  " vs " + std::to_string(expect));
        return out[0];
    };
    app.bootSeconds = hostSeconds(hostTicks() - boot0);
    return app;
}

AppResult
runTsp(const TspConfig &config)
{
    PreparedApp app = prepareTsp(config);
    return finishApp(app);
}

} // namespace workloads
} // namespace jmsim
