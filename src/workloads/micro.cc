#include "workloads/micro.hh"

#include <chrono>

#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

// Parameter slots (APP_SCRATCH offsets) shared by the micro programs.
// +0..+3 inputs, +8.. runtime state.

const char *kPingSource = R"(
; Figure 2: round-trip latency of a null RPC / remote read.
; Params (node 0): +0 target id, +1 iterations, +2 mode (0 ping,
; 1 read1, 2 read6), +3 absolute read address.
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, worker
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+1]
    ST [A1+10], R0          ; remaining iterations
main_loop:
    MOVEI R0, 0
    ST [A1+8], R0           ; flag = 0
    GETSP R0, CYCLELO
    ST [A1+9], R0           ; t0
.region comm
    LD R0, [A1+0]
    CALL A2, jos_nnr
    SEND0 R0
    LD R1, [A1+2]
    EQI R2, R1, #0
    BT R2, send_ping
    EQI R2, R1, #1
    BT R2, send_read1
    LDL R1, hdr(read_handler, 4)
    SEND0 R1
    GETSP R1, NNR
    LD R2, [A1+3]
    SEND20 R1, R2
    MOVEI R1, 6
    SEND0E R1
    BR wait
send_read1:
    LDL R1, hdr(read_handler, 4)
    SEND0 R1
    GETSP R1, NNR
    LD R2, [A1+3]
    SEND20 R1, R2
    MOVEI R1, 1
    SEND0E R1
    BR wait
send_ping:
    LDL R1, hdr(ping_handler, 2)
    GETSP R2, NNR
    SEND20E R1, R2
wait:
.region sync
    LD R0, [A1+8]
    EQI R0, R0, #0
    BT R0, wait
.region comp
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, main_loop
    HALT

worker:
    CALL A2, jos_park

ping_handler:               ; [hdr, replyaddr]
    LD R0, [A3+1]
    SEND0 R0
    LDL R1, hdr(ack_handler, 1)
    SEND0E R1
    SUSPEND

read_handler:               ; [hdr, replyaddr, addr, n]
    LD R0, [A3+2]
    LDL R2, #63
    AND R1, R0, R2
    SUB R0, R0, R1
    LDL R2, #70
    SETSEG A0, R0, R2       ; 64-aligned window over the data
    LD R0, [A3+1]
    SEND0 R0
    LD R2, [A3+3]
    EQI R0, R2, #6
    BT R0, read6_body
    LDL R0, hdr(ackd_handler, 2)
    LDX R2, [A0+R1]
    SEND20E R0, R2
    SUSPEND
read6_body:
    LDL R0, hdr(ackd_handler, 7)
    SEND0 R0
    LDX R0, [A0+R1]
    ADDI R1, R1, #1
    LDX R2, [A0+R1]
    SEND20 R0, R2
    ADDI R1, R1, #1
    LDX R0, [A0+R1]
    ADDI R1, R1, #1
    LDX R2, [A0+R1]
    SEND20 R0, R2
    ADDI R1, R1, #1
    LDX R0, [A0+R1]
    ADDI R1, R1, #1
    LDX R2, [A0+R1]
    SEND20E R0, R2
    SUSPEND

ack_handler:
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 1
    ST [A1+8], R0
    SUSPEND

ackd_handler:
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 1
    ST [A1+8], R0
    SUSPEND
)";

const char *kSparseSource = R"(
; Sparse-activity probe: tokens circulate a small ring of hot nodes
; while every other node busy-waits on a flag nothing ever sets — the
; activity shape of a distributed search after its work has drained to
; a few nodes.  Params: +0 role (1 = hot), +1 ring mask (hot count - 1,
; hot a power of two), +2 tokens injected at boot (first hot node
; only).  State: +9 tokens forwarded.
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+0]
    EQI R1, R0, #0
    BF R1, hot_boot
.region sync
cold_spin:
    LD R0, [A1+8]
    EQI R1, R0, #0
    BT R1, cold_spin
    SUSPEND
.region comp
hot_boot:
    LD R3, [A1+2]
inject:
    GTI R0, R3, #0
    BF R0, hot_done
    GETSP R0, NODEID
    ADDI R0, R0, #1
    ANDM R0, [A1+1]         ; next = (id + 1) & mask
    CALL A2, jos_nnr
    MOVEI R2, 0
.region comm
    SEND0 R0
    LDL R1, hdr(tok_h, 6)
    SEND0 R1
    SEND20 R2, R2
    SEND20 R2, R2
    SEND0E R2
.region comp
    ADDI R3, R3, #-1
    BR inject
hot_done:
    SUSPEND

tok_h:                      ; count the token, pass it along the ring
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+9]
    ADDI R0, R0, #1
    ST [A1+9], R0
    GETSP R0, NODEID
    ADDI R0, R0, #1
    ANDM R0, [A1+1]
    CALL A2, jos_nnr
    MOVEI R2, 0
.region comm
    SEND0 R0
    LDL R1, hdr(tok_h, 6)
    SEND0 R1
    SEND20 R2, R2
    SEND20 R2, R2
    SEND0E R2
    SUSPEND
)";

const char *kLoadSource = R"(
; Figure 3: random-traffic latency vs offered load.
; Params (all nodes): +0 message length L (words, incl. header, >= 2),
; +1 idle-loop iterations (3 cycles each), +2 messages enabled.
; State: +8 acks, +9 iterations done, +10 PRNG, +11 requests sent,
; +12 accumulated round-trip cycles, +13 exchange start stamp.
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
loop:
    LD R0, [A1+2]
    EQI R0, R0, #0
    BT R0, skip_msg
    ; xorshift32 step
    LD R0, [A1+10]
    LSHI R1, R0, #13
    XOR R0, R0, R1
    LSHI R1, R0, #-15
    XOR R0, R0, R1
    LSHI R1, R0, #5
    XOR R0, R0, R1
    ST [A1+10], R0
    GETSP R1, NODES
    ADDI R1, R1, #-1
    AND R0, R0, R1          ; dest = x & (N-1)
    CALL A2, jos_nnr
    GETSP R1, CYCLELO
    ST [A1+13], R1          ; exchange start stamp
.region comm
    SEND0 R0
    LD R2, [A1+0]
    LDL R3, ip(load_req)
    MKHDR R1, R3, R2
    SEND0 R1                ; header
    GETSP R1, NNR
    ADDI R2, R2, #-2
    EQI R3, R2, #0
    BF R3, have_pads
    SEND0E R1
    BR sent
have_pads:
    SEND0 R1                ; reply address
pad_loop:                   ; stream pads at 2 words/cycle
    LEI R3, R2, #4
    BT R3, pad_tail
    SEND20 R2, R2
    SEND20 R2, R2
    ADDI R2, R2, #-4
    BR pad_loop
pad_tail:
    EQI R3, R2, #1
    BT R3, pad_t1
    EQI R3, R2, #2
    BT R3, pad_t2
    EQI R3, R2, #3
    BT R3, pad_t3
    SEND20 R2, R2
    SEND20E R2, R2
    BR sent
pad_t3:
    SEND20 R2, R2
    SEND0E R2
    BR sent
pad_t2:
    SEND20E R2, R2
    BR sent
pad_t1:
    SEND0E R2
sent:
.region comp
    LD R0, [A1+11]
    ADDI R0, R0, #1
    ST [A1+11], R0
.region sync
ack_spin:
    LD R1, [A1+8]
    LD R0, [A1+11]
    LT R1, R1, R0
    BT R1, ack_spin
.region comp
    GETSP R0, CYCLELO
    LD R1, [A1+13]
    SUB R0, R0, R1
    LD R1, [A1+12]
    ADD R1, R1, R0
    ST [A1+12], R1          ; accumulate round-trip cycles
skip_msg:
    LD R0, [A1+1]
idle_loop:
    GTI R1, R0, #0
    BF R1, idle_done
    ADDI R0, R0, #-1
    BR idle_loop
idle_done:
    LD R0, [A1+9]
    ADDI R0, R0, #1
    ST [A1+9], R0
    BR loop

load_req:                   ; [hdr, replyaddr, pads...]
.region comm
    LD R0, [A3+1]
    SEND0 R0
    LDL A1, seg(APP_SCRATCH, 64)
    LD R2, [A1+0]
    LDL R3, ip(load_ack)
    MKHDR R1, R3, R2
    ADDI R2, R2, #-1
    EQI R3, R2, #0
    BF R3, rep_pads
    SEND0E R1
    SUSPEND
rep_pads:
    SEND0 R1
rep_loop:
    LEI R3, R2, #4
    BT R3, rep_tail
    SEND20 R2, R2
    SEND20 R2, R2
    ADDI R2, R2, #-4
    BR rep_loop
rep_tail:
    EQI R3, R2, #1
    BT R3, rep_t1
    EQI R3, R2, #2
    BT R3, rep_t2
    EQI R3, R2, #3
    BT R3, rep_t3
    SEND20 R2, R2
    SEND20E R2, R2
    SUSPEND
rep_t3:
    SEND20 R2, R2
    SEND0E R2
    SUSPEND
rep_t2:
    SEND20E R2, R2
    SUSPEND
rep_t1:
    SEND0E R2
    SUSPEND

load_ack:
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+8]
    ADDI R0, R0, #1
    ST [A1+8], R0
    SUSPEND
)";

const char *kBlastSource = R"(
; Figure 4: two-node terminal bandwidth.
; Params (node 0): +0 L (words incl. header), +1 message count,
; +2 mode (0 discard, 1 copy to imem, 2 copy to emem).
; Params (node 1): +0 L (for the copy loop bound).
.equ IBUF, 2944
.equ EBUF, 73728
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, worker
    LDL A1, seg(APP_SCRATCH, 64)
    ; Hoist the per-message constants: destination router address and
    ; the mode's message header.
    MOVEI R0, 1
    CALL A2, jos_nnr
    ST [A1+11], R0          ; dest
    LD R1, [A1+2]
    EQI R2, R1, #0
    BF R2, not_discard
    LDL R3, ip(blast_discard)
    BR have_ip
not_discard:
    EQI R2, R1, #1
    BF R2, mode_emem
    LDL R3, ip(blast_imem)
    BR have_ip
mode_emem:
    LDL R3, ip(blast_emem)
have_ip:
    LD R2, [A1+0]
    MKHDR R1, R3, R2
    ST [A1+12], R1          ; header word
    GETSP R0, CYCLELO
    ST [A1+9], R0           ; t0
    ; Registers across the send loop: R0 = dest, R1 = header,
    ; R2 = pad word, A0 = remaining message count.
    LD R0, [A1+11]
    LD R1, [A1+12]
    MOVEI R2, 0
    LD A0, [A1+1]
    ; Dispatch to an unrolled loop for the common sizes (tuned code,
    ; as the paper's microbenchmarks were).
    LD R3, [A1+0]
    ADDI R3, R3, #-16
    EQI R3, R3, #0
    BT R3, u16
    LD R3, [A1+0]
    EQI R3, R3, #12
    BT R3, u12
    LD R3, [A1+0]
    EQI R3, R3, #8
    BT R3, u8
    LD R3, [A1+0]
    EQI R3, R3, #4
    BT R3, u4
    LD R3, [A1+0]
    EQI R3, R3, #2
    BT R3, u2
    LD R3, [A1+0]
    EQI R3, R3, #1
    BT R3, u1
    BR generic
.region comm
u16:
    SEND0 R0
    SEND20 R1, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20E R2, R2
    ADDI A0, A0, #-1
    GTI R3, A0, #0
    BT R3, u16
    BR b_done
u12:
    SEND0 R0
    SEND20 R1, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20E R2, R2
    ADDI A0, A0, #-1
    GTI R3, A0, #0
    BT R3, u12
    BR b_done
u8:
    SEND0 R0
    SEND20 R1, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20E R2, R2
    ADDI A0, A0, #-1
    GTI R3, A0, #0
    BT R3, u8
    BR b_done
u4:
    SEND0 R0
    SEND20 R1, R2
    SEND20E R2, R2
    ADDI A0, A0, #-1
    GTI R3, A0, #0
    BT R3, u4
    BR b_done
u2:
    SEND0 R0
    SEND20E R1, R2
    ADDI A0, A0, #-1
    GTI R3, A0, #0
    BT R3, u2
    BR b_done
u1:
    SEND0 R0
    SEND0E R1
    ADDI A0, A0, #-1
    GTI R3, A0, #0
    BT R3, u1
    BR b_done
.region comp
generic:
    LD R0, [A1+1]
    ST [A1+10], R0          ; remaining messages
blast_loop:
.region comm
    LD R0, [A1+11]
    SEND0 R0                ; destination
    LD R1, [A1+12]
    LD R2, [A1+0]
    ADDI R2, R2, #-1        ; payload words after the header
    EQI R3, R2, #0
    BF R3, b_pads
    SEND0E R1
    BR b_sent
b_pads:
    SEND0 R1                ; header
b_pad_loop:                 ; stream pads at 2 words/cycle
    LEI R3, R2, #4
    BT R3, b_tail
    SEND20 R2, R2
    SEND20 R2, R2
    ADDI R2, R2, #-4
    BR b_pad_loop
b_tail:
    EQI R3, R2, #1
    BT R3, b_t1
    EQI R3, R2, #2
    BT R3, b_t2
    EQI R3, R2, #3
    BT R3, b_t3
    SEND20 R2, R2
    SEND20E R2, R2
    BR b_sent
b_t3:
    SEND20 R2, R2
    SEND0E R2
    BR b_sent
b_t2:
    SEND20E R2, R2
    BR b_sent
b_t1:
    SEND0E R2
b_sent:
.region comp
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, blast_loop
b_done:
    ; completion marker (FIFO behind the blast)
.region comm
    LD R0, [A1+11]
    SEND0 R0
    LDL R1, hdr(blast_done, 2)
    GETSP R2, NNR
    SEND20E R1, R2
.region sync
done_spin:
    LD R0, [A1+8]
    EQI R0, R0, #0
    BT R0, done_spin
.region comp
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
    HALT

worker:
    CALL A2, jos_park

blast_discard:
    SUSPEND

blast_imem:
    LDL A0, seg(IBUF, 64)
    LDL A1, seg(APP_SCRATCH, 64)
    LD R2, [A1+0]
    MOVEI R1, 1
bi_loop:
    LT R3, R1, R2
    BF R3, bi_done
    LDX R3, [A3+R1]
    STX [A0+R1], R3
    ADDI R1, R1, #1
    BR bi_loop
bi_done:
    SUSPEND

blast_emem:
    LDL A0, seg(EBUF, 64)
    LDL A1, seg(APP_SCRATCH, 64)
    LD R2, [A1+0]
    MOVEI R1, 1
be_loop:
    LT R3, R1, R2
    BF R3, be_done
    LDX R3, [A3+R1]
    STX [A0+R1], R3
    ADDI R1, R1, #1
    BR be_loop
be_done:
    SUSPEND

blast_done:                 ; [hdr, replyaddr]
    LD R0, [A3+1]
    SEND0 R0
    LDL R1, hdr(blast_ack, 1)
    SEND0E R1
    SUSPEND

blast_ack:
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 1
    ST [A1+8], R0
    SUSPEND
)";

const char *kSyncSource = R"(
; Table 2: producer-consumer synchronization costs.
; Node 0 measures the straight-line sequences with cycle stamps, then
; reads a cfut slot and suspends. Node 1 delays long enough for the
; suspension to complete, then sends a producer message whose handler
; (on node 0) delivers the value through jos_put and restarts the
; consumer. Slots: DATA at +16 (int), FLAG at +17, CSLOT at +18 (cfut).
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, node1
    LDL A0, seg(APP_SCRATCH, 64)
    ; ---- calibration: empty timed region ----
    GETSP R0, CYCLELO
    GETSP R1, CYCLELO
    SUB R1, R1, R0
    OUT R1                  ; [0] harness overhead
    ; ---- tags, success: read a present value ----
    GETSP R0, CYCLELO
    LD R2, [A0+16]
    GETSP R1, CYCLELO
    SUB R1, R1, R0
    OUT R1                  ; [1]
    ; ---- no tags, success: test flag then read ----
    GETSP R0, CYCLELO
    LD R2, [A0+17]
    EQI R3, R2, #0
    BT R3, nt_absent
    LD R2, [A0+16]
nt_absent:
    GETSP R1, CYCLELO
    SUB R1, R1, R0
    OUT R1                  ; [2] (flag=1 path poked by driver)
    ; ---- no tags, failure: flag clear, branch away ----
    MOVEI R2, 0
    ST [A0+17], R2
    GETSP R0, CYCLELO
    LD R2, [A0+17]
    EQI R3, R2, #0
    BF R3, nt2_present
    MOVEI R2, 0             ; "suspend entry" stand-in
nt2_present:
    GETSP R1, CYCLELO
    SUB R1, R1, R0
    OUT R1                  ; [3]
    ; ---- no tags, write: store data + set flag ----
    GETSP R0, CYCLELO
    ST [A0+16], R2
    MOVEI R3, 1
    ST [A0+17], R3
    GETSP R1, CYCLELO
    SUB R1, R1, R0
    OUT R1                  ; [4]
    ; ---- tags, write (value-present path of jos_put) ----
    MOVEI R0, 16
    LDL R1, #42
    GETSP R2, CYCLELO
    OUT R2                  ; [5] t before
    CALL A2, jos_put
    GETSP R2, CYCLELO
    OUT R2                  ; [6] t after
    ; ---- phase 2: fault on the cfut slot and suspend ----
    LDL A0, seg(APP_SCRATCH, 64)
    LD R1, [A0+18]          ; cfut -> fault, save, suspend
    ; ------- restarted here by jos_put -------
    GETSP R0, CYCLELO
    OUT R0                  ; [7] t3: thread resumed
    OUT R1                  ; [8] delivered value (sanity)
    HALT

node1:
    LDL R0, #400
n1_delay:
    ADDI R0, R0, #-1
    GTI R1, R0, #0
    BT R1, n1_delay
    MOVEI R0, 0
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(producer, 1)
    SEND0E R1
    HALT

producer:                   ; runs on node 0
    LDL A0, seg(APP_SCRATCH, 64)
    MOVEI R0, 18
    LDL R1, #555
    GETSP R2, CYCLELO
    OUT R2                  ; [node0: next] t2: just before jos_put
    CALL A2, jos_put
    SUSPEND
)";

const char *kBarrierSource = R"(
; Table 3: software barrier timing. Every node runs K barriers; node 0
; stamps before and after. Param +0: K.
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A1+0]
    ST [A1+10], R0
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, others
    GETSP R0, CYCLELO
    ST [A1+9], R0
others:
    CALL A2, bar_barrier
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, others
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, done
    GETSP R0, CYCLELO
    LD R1, [A1+9]
    SUB R0, R0, R1
    OUT R0
done:
    HALT
)";

} // namespace

PingResult
measurePing(unsigned nodes, NodeId target, PingKind kind, bool emem_data,
            unsigned iterations)
{
    auto m = buildMachine(nodes, "ping.jasm", kPingSource);
    const Addr read_addr = emem_data ? jos::kAppEmemBase : 3000;
    pokeParam(*m, 0, 0, static_cast<std::int32_t>(target));
    pokeParam(*m, 0, 1, static_cast<std::int32_t>(iterations));
    pokeParam(*m, 0, 2, static_cast<std::int32_t>(kind));
    pokeParam(*m, 0, 3, static_cast<std::int32_t>(read_addr));
    for (unsigned i = 0; i < 8; ++i)
        m->pokeInt(target, read_addr + i, 1000 + static_cast<int>(i));

    const RunResult r = m->run(2'000'000);
    if (r.reason == StopReason::CycleLimit)
        fatal("ping benchmark did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != iterations)
        fatal("ping benchmark produced wrong output count");

    PingResult result;
    const MeshDims &dims = m->config().dims;
    result.hops = dims.toCoord(0).hopsTo(dims.toCoord(target));
    double sum = 0;
    for (auto v : out)
        sum += v;
    result.roundTripCycles = sum / out.size();
    return result;
}

OverheadResult
measureOverhead()
{
    OverheadResult result;
    // Send overhead: the self-ping program's comm prologue is known
    // code; measure a single 2-word send sequence with cycle stamps.
    auto m = buildMachine(2, "sendcost.jasm", R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, w
    MOVEI R0, 1
    CALL A2, jos_nnr
    GETSP R2, CYCLELO
    SEND0 R0
    LDL R1, hdr(null_h, 2)
    GETSP R3, NNR
    SEND20E R1, R3
    GETSP R1, CYCLELO
    SUB R1, R1, R2
    OUT R1
    HALT
w:
    CALL A2, jos_park
null_h:
    SUSPEND
)");
    m->run(100000);
    const auto out = outInts(*m, 0);
    if (out.size() != 1)
        fatal("overhead benchmark failed");
    // Subtract the closing GETSP that is part of the harness.
    result.sendCyclesPerMsg = out[0] - 1;

    // Receive overhead: hardware dispatch plus the null handler's
    // SUSPEND, read from the handler statistics of the run above.
    const Program &prog = m->program();
    const auto &hs = m->node(1).processor().handlerStats();
    auto it = hs.find(prog.entry("null_h"));
    if (it == hs.end())
        fatal("null handler never ran");
    result.receiveCyclesPerMsg =
        static_cast<double>(m->config().proc.dispatchCycles) +
        static_cast<double>(it->second.cycles) / it->second.dispatches;

    // Per-byte: steady-state channel occupancy from a 16-word blast.
    const double mbits = measureBlast(16, BlastMode::Discard, 64);
    // cycles per byte = (cycles/sec) / (bytes/sec)
    result.cyclesPerByte = kClockHz / (mbits * 1e6 / 8.0);
    return result;
}

LoadPoint
measureLoadPoint(unsigned nodes, unsigned msg_words, unsigned idle_iters,
                 Cycle window, std::uint32_t seed)
{
    if (msg_words < 2)
        fatal("load messages need at least 2 words");

    const auto run_case = [&](bool enabled) {
        auto m = buildMachine(nodes, "load.jasm", kLoadSource);
        pokeParamAll(*m, 0, static_cast<std::int32_t>(msg_words));
        pokeParamAll(*m, 1, static_cast<std::int32_t>(idle_iters));
        pokeParamAll(*m, 2, enabled ? 1 : 0);
        for (NodeId id = 0; id < m->nodeCount(); ++id) {
            const std::uint32_t s =
                (id + seed) * 2654435761u ^ 0x9e3779b9u;
            m->pokeInt(id, jos::kAppScratchBase + 10,
                       static_cast<std::int32_t>(s | 1));
        }
        // Warmup, then measure.
        m->run(window);
        std::vector<std::int32_t> iters0(m->nodeCount());
        std::vector<std::int32_t> rtt0(m->nodeCount());
        for (NodeId id = 0; id < m->nodeCount(); ++id) {
            iters0[id] = m->peekInt(id, jos::kAppScratchBase + 9);
            rtt0[id] = m->peekInt(id, jos::kAppScratchBase + 12);
        }
        m->network().resetStats();
        m->run(2 * window);
        double iter_sum = 0, rtt_sum = 0;
        for (NodeId id = 0; id < m->nodeCount(); ++id) {
            iter_sum += m->peekInt(id, jos::kAppScratchBase + 9) - iters0[id];
            rtt_sum += m->peekInt(id, jos::kAppScratchBase + 12) - rtt0[id];
        }
        struct CaseResult
        {
            double cyclesPerIter;
            double rttPerIter;
            double bisectionBits;
        };
        const double per_iter =
            iter_sum > 0 ? static_cast<double>(window) * m->nodeCount() /
                               iter_sum
                         : 0;
        const double rtt = iter_sum > 0 ? rtt_sum / iter_sum : 0;
        return CaseResult{per_iter, rtt,
                          m->network().stats().bisectionBitsPos()};
    };

    const auto base = run_case(false);
    const auto loaded = run_case(true);

    LoadPoint point;
    point.grainCycles = base.cyclesPerIter;
    // One-way latency from the per-exchange stamps (the stamp brackets
    // send + round trip + ack detection; halve for one way).
    point.oneWayLatency = loaded.rttPerIter / 2.0;
    point.bisectionMbits =
        loaded.bisectionBits * kClockHz / static_cast<double>(window) / 1e6;
    point.msgsPerNodePerKcycle =
        loaded.cyclesPerIter > 0 ? 1000.0 / loaded.cyclesPerIter : 0;
    point.efficiency = loaded.cyclesPerIter > 0
                           ? base.cyclesPerIter / loaded.cyclesPerIter
                           : 0;
    return point;
}

namespace
{

/** Build a machine running the Figure 3 load program with per-node
 *  PRNG seeds; the caller pokes the grain (param +1) afterwards. */
std::unique_ptr<JMachine>
buildLoadMachine(unsigned nodes, unsigned msg_words, std::uint32_t seed)
{
    if (msg_words < 2)
        fatal("load messages need at least 2 words");
    auto m = buildMachine(nodes, "load.jasm", kLoadSource);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(msg_words));
    pokeParamAll(*m, 2, 1);
    for (NodeId id = 0; id < m->nodeCount(); ++id) {
        const std::uint32_t s = (id + seed) * 2654435761u ^ 0x9e3779b9u;
        m->pokeInt(id, jos::kAppScratchBase + 10,
                   static_cast<std::int32_t>(s | 1));
    }
    return m;
}

/** Run @p m for @p window cycles and collect the probe signature. */
TrafficProbe
collectTrafficProbe(JMachine &m, Cycle window)
{
    TrafficProbe probe;
    const auto t0 = std::chrono::steady_clock::now();
    probe.run = m.run(window);
    const auto t1 = std::chrono::steady_clock::now();
    probe.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    probe.procStats = m.aggregateStats();
    probe.instructions = probe.procStats.instructions;
    probe.netStats = m.network().stats();
    // The per-node NI stats are registered machine-wide, so the
    // aggregate is a registry read instead of a hand-summed loop.
    const CounterRegistry &reg = m.counters();
    probe.niStats.messagesSent = reg.value("ni.messages_sent");
    probe.niStats.wordsSent = reg.value("ni.words_sent");
    probe.niStats.sendFullEvents = reg.value("ni.send_full_events");
    probe.niStats.deliveryStallCycles = reg.value("ni.delivery_stall_cycles");
    probe.niStats.messagesBounced = reg.value("ni.messages_bounced");
    probe.netLatency = m.network().latencyHistogram();
    if (const Tracer *tracer = m.tracer()) {
        probe.trace = tracer->collect();
        probe.traceDropped = tracer->dropped();
    }
    return probe;
}

} // namespace

TrafficProbe
runFig3Traffic(unsigned nodes, unsigned msg_words, unsigned idle_iters,
               Cycle window, std::uint32_t seed)
{
    const auto b0 = std::chrono::steady_clock::now();
    auto m = buildLoadMachine(nodes, msg_words, seed);
    pokeParamAll(*m, 1, static_cast<std::int32_t>(idle_iters));
    const auto b1 = std::chrono::steady_clock::now();
    TrafficProbe probe = collectTrafficProbe(*m, window);
    probe.bootSeconds = std::chrono::duration<double>(b1 - b0).count();
    return probe;
}

TrafficProbe
runFig4Load(unsigned nodes, Cycle window, std::uint32_t seed)
{
    return runFig3Traffic(nodes, 24, 0, window, seed);
}

std::unique_ptr<JMachine>
buildFig4Machine(unsigned nodes, std::uint32_t seed)
{
    auto m = buildLoadMachine(nodes, 24, seed);
    pokeParamAll(*m, 1, 0);
    return m;
}

TrafficProbe
runSparseActivity(unsigned nodes, unsigned hot_nodes, Cycle window,
                  std::uint32_t seed)
{
    if (hot_nodes < 2 || hot_nodes > nodes ||
        (hot_nodes & (hot_nodes - 1)) != 0)
        fatal("sparse activity needs a power-of-two hot set of >= 2");
    const auto b0 = std::chrono::steady_clock::now();
    auto m = buildMachine(nodes, "sparse.jasm", kSparseSource);
    // Hot nodes are the low ids — one mesh-local corner — so the
    // circulating tokens keep the fabric (and hence the kernel's tick
    // loop) busy without touching the rest of the machine.  Everything
    // else sits in cold_spin: architecturally awake, stepping to a
    // no-op every cycle.  The seed varies how many tokens circulate.
    for (unsigned h = 0; h < hot_nodes; ++h) {
        pokeParam(*m, static_cast<NodeId>(h), 0, 1);
        pokeParam(*m, static_cast<NodeId>(h), 1,
                  static_cast<std::int32_t>(hot_nodes - 1));
    }
    pokeParam(*m, 0, 2, static_cast<std::int32_t>(2 + seed % 3));
    const auto b1 = std::chrono::steady_clock::now();
    TrafficProbe probe = collectTrafficProbe(*m, window);
    probe.bootSeconds = std::chrono::duration<double>(b1 - b0).count();
    return probe;
}

double
measureBlast(unsigned msg_words, BlastMode mode, unsigned messages)
{
    auto m = buildMachine(2, "blast.jasm", kBlastSource);
    pokeParam(*m, 0, 0, static_cast<std::int32_t>(msg_words));
    pokeParam(*m, 0, 1, static_cast<std::int32_t>(messages));
    pokeParam(*m, 0, 2, static_cast<std::int32_t>(mode));
    pokeParam(*m, 1, 0, static_cast<std::int32_t>(msg_words));
    const RunResult r = m->run(10'000'000);
    if (r.reason == StopReason::CycleLimit)
        fatal("blast benchmark did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != 1)
        fatal("blast benchmark produced no result");
    const double cycles = out[0];
    const double bits =
        static_cast<double>(messages) * msg_words * 32.0;
    return bits / (cycles / kClockHz) / 1e6;
}

SyncCosts
measureSyncCosts()
{
    auto m = buildMachine(2, "sync.jasm", kSyncSource);
    m->pokeInt(0, jos::kAppScratchBase + 16, 7);
    m->pokeInt(0, jos::kAppScratchBase + 17, 1);
    m->poke(0, jos::kAppScratchBase + 18, Word::makeCfut());

    // Step cycle by cycle so we can observe the fault and the moment
    // the consumer's suspension completes (node 0 going idle).
    const Processor &proc = m->node(0).processor();
    Cycle fault_cycle = 0;
    Cycle idle_cycle = 0;
    for (unsigned i = 0; i < 50000; ++i) {
        const RunResult r = m->runFor(1);
        const auto &st = proc.stats();
        const auto cfuts =
            st.faults[static_cast<unsigned>(FaultKind::CfutRead)];
        if (fault_cycle == 0 && cfuts == 1)
            fault_cycle = m->now();
        if (fault_cycle != 0 && idle_cycle == 0 && !proc.runnable())
            idle_cycle = m->now();
        if (r.reason == StopReason::AllHalted)
            break;
        if (i + 2 == 50000)
            fatal("sync benchmark did not finish");
    }
    if (fault_cycle == 0 || idle_cycle == 0)
        fatal("sync benchmark never faulted/suspended");

    const auto out = outInts(*m, 0);
    if (out.size() != 10)
        fatal("sync benchmark produced wrong output count: " +
              std::to_string(out.size()));
    const double harness = out[0];

    SyncCosts costs;
    costs.tagSuccess = out[1] - harness;
    costs.noTagSuccess = out[2] - harness;
    costs.noTagFailure = out[3] - harness;
    costs.noTagWrite = out[4] - harness;
    // jos_put present path: subtract CALL (3) + return JMP (2).
    costs.tagWrite = (out[6] - out[5] - harness) - 5;

    const ProcessorConfig &pc = m->config().proc;
    // Failure (the trap itself): the load plus trap entry.
    costs.tagFailure = 2.0 + pc.faultEntryCycles;
    // Save: from the fault being charged to the processor going idle.
    costs.tagSave = static_cast<double>(idle_cycle - fault_cycle);
    // Restore: t3 - t2 spans jos_put's CALL (3), its ctx-detect
    // prologue (LDRAWX+RTAG+EQI+taken BT = 6), the restore body, the
    // re-executed load (2), and the closing GETSP (1).
    costs.tagRestore = (out[8] - out[7]) - 12;
    if (out[9] != 555)
        fatal("sync benchmark delivered a wrong value");
    return costs;
}

double
measureBarrierUs(unsigned nodes, unsigned iterations)
{
    auto m = buildMachine(nodes, "barrier.jasm", kBarrierSource, true);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(iterations));
    const RunResult r = m->run(40'000'000);
    if (r.reason == StopReason::CycleLimit)
        fatal("barrier benchmark did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != 1)
        fatal("barrier benchmark produced no result");
    return cyclesToUs(static_cast<Cycle>(out[0])) / iterations;
}

} // namespace workloads
} // namespace jmsim
