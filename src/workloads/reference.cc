#include <algorithm>
#include <numeric>

#include "sim/random.hh"
#include "workloads/apps.hh"

namespace jmsim
{
namespace workloads
{

std::vector<std::uint8_t>
lcsString(unsigned length, std::uint32_t seed)
{
    Xorshift64 rng(seed);
    std::vector<std::uint8_t> s(length);
    for (auto &c : s)
        c = static_cast<std::uint8_t>('a' + rng.nextBelow(4));
    return s;
}

unsigned
referenceLcs(const std::vector<std::uint8_t> &a,
             const std::vector<std::uint8_t> &b)
{
    // Two-row dynamic program over |a| x |b|.
    std::vector<unsigned> prev(a.size() + 1, 0), cur(a.size() + 1, 0);
    for (std::size_t j = 1; j <= b.size(); ++j) {
        for (std::size_t i = 1; i <= a.size(); ++i) {
            if (a[i - 1] == b[j - 1])
                cur[i] = prev[i - 1] + 1;
            else
                cur[i] = std::max(prev[i], cur[i - 1]);
        }
        std::swap(prev, cur);
    }
    return prev[a.size()];
}

std::vector<std::uint32_t>
radixKeys(unsigned count, unsigned bits, std::uint32_t seed)
{
    Xorshift64 rng(seed);
    const std::uint32_t mask =
        bits >= 32 ? 0xffffffffu : ((1u << bits) - 1);
    std::vector<std::uint32_t> keys(count);
    for (auto &k : keys)
        k = static_cast<std::uint32_t>(rng.next()) & mask;
    return keys;
}

std::vector<std::uint32_t>
referenceSort(std::vector<std::uint32_t> keys)
{
    std::sort(keys.begin(), keys.end());
    return keys;
}

namespace
{

std::uint64_t
queensRec(std::uint32_t cols, std::uint32_t d1, std::uint32_t d2,
          std::uint32_t full)
{
    if (cols == full)
        return 1;
    std::uint64_t count = 0;
    std::uint32_t avail = ~(cols | d1 | d2) & full;
    while (avail) {
        const std::uint32_t bit = avail & (0u - avail);
        avail -= bit;
        count += queensRec(cols | bit, ((d1 | bit) << 1) & full,
                           (d2 | bit) >> 1, full);
    }
    return count;
}

} // namespace

std::uint64_t
referenceNQueens(unsigned n)
{
    return queensRec(0, 0, 0, (1u << n) - 1);
}

std::vector<std::vector<std::int32_t>>
tspMatrix(unsigned cities, std::uint32_t seed)
{
    Xorshift64 rng(seed);
    std::vector<std::vector<std::int32_t>> d(
        cities, std::vector<std::int32_t>(cities, 0));
    for (unsigned i = 0; i < cities; ++i) {
        for (unsigned j = i + 1; j < cities; ++j) {
            const std::int32_t w =
                static_cast<std::int32_t>(1 + rng.nextBelow(99));
            d[i][j] = w;
            d[j][i] = w;
        }
    }
    return d;
}

namespace
{

void
tspRec(const std::vector<std::vector<std::int32_t>> &d, unsigned city,
       std::uint32_t visited, std::int64_t cost, std::int64_t &best)
{
    const unsigned n = d.size();
    if (cost >= best)
        return;
    if (visited == (1u << n) - 1) {
        const std::int64_t total = cost + d[city][0];
        if (total < best)
            best = total;
        return;
    }
    for (unsigned next = 1; next < n; ++next) {
        if (visited & (1u << next))
            continue;
        tspRec(d, next, visited | (1u << next), cost + d[city][next], best);
    }
}

} // namespace

std::int64_t
referenceTsp(const std::vector<std::vector<std::int32_t>> &dist)
{
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    tspRec(dist, 0, 1, 0, best);
    return best;
}

} // namespace workloads
} // namespace jmsim
