#include "workloads/driver.hh"

#include <cstdlib>
#include <map>

#include "sim/logging.hh"

namespace jmsim
{
namespace workloads
{

namespace
{
unsigned dispatchOverride = 0;
int threadsOverride = -1;
int superblockOverride = -1;
int wakeSchedulerOverride = -1;
int netSchedulerOverride = -1;
NetOpsConfig netopsOverride;
TraceConfig traceOverride;
} // namespace

void
setDispatchCyclesForTesting(unsigned cycles)
{
    dispatchOverride = cycles;
}

void
setSimThreads(int threads)
{
    threadsOverride = threads;
}

void
setSuperblock(int enabled)
{
    superblockOverride = enabled;
}

void
setWakeScheduler(int enabled)
{
    wakeSchedulerOverride = enabled;
}

void
setNetScheduler(int enabled)
{
    netSchedulerOverride = enabled;
}

void
setNetOpsConfig(const NetOpsConfig &cfg)
{
    netopsOverride = cfg;
}

void
clearNetOpsConfig()
{
    netopsOverride = NetOpsConfig{};
}

void
setTraceConfig(const TraceConfig &config)
{
    traceOverride = config;
}

void
clearTraceConfig()
{
    traceOverride = TraceConfig{};
}

MachineConfig
standardConfig(unsigned nodes)
{
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(nodes);
    if (dispatchOverride)
        cfg.proc.dispatchCycles = dispatchOverride;
    if (threadsOverride >= 0)
        cfg.threads = static_cast<unsigned>(threadsOverride);
    if (superblockOverride >= 0)
        cfg.proc.superblock = superblockOverride != 0;
    if (wakeSchedulerOverride >= 0)
        cfg.wakeScheduler = wakeSchedulerOverride != 0;
    if (netSchedulerOverride >= 0)
        cfg.netScheduler = netSchedulerOverride != 0;
    cfg.netops = netopsOverride;
    cfg.trace = traceOverride;
    return cfg;
}

std::string
routerTablePrologue(unsigned nodes, unsigned small_len)
{
    // 32 header/constant words plus one router address per node. The
    // external-memory base sits just past the largest on-chip-address
    // user (radix's BUFB key buffer ends at word 204800) and is
    // 64-word aligned as the large segment format requires.
    const unsigned need = 32 + nodes;
    if (need <= small_len) {
        return ".equ TBL, 1024\n.equ TBLS, " + std::to_string(small_len) +
               "\n";
    }
    return ".equ TBL, 204800\n.equ TBLS, " + std::to_string(need) + "\n";
}

std::unique_ptr<JMachine>
buildMachine(unsigned nodes, const std::string &app_name,
             const std::string &app_source, bool with_barrier)
{
    Program prog = assemble(jos::withKernel(app_name, app_source, with_barrier,
                                            netopsOverride.enabled()));
    auto m = std::make_unique<JMachine>(standardConfig(nodes),
                                        std::move(prog));
    // Zero the application scratch area so programs can keep counters
    // there without their own init loops.
    for (NodeId id = 0; id < m->nodeCount(); ++id) {
        for (Addr a = jos::kAppScratchBase; a < 4096; ++a)
            m->pokeInt(id, a, 0);
    }
    // Debug hook: JMSIM_TRACE_NODE=<id> streams that node's execution.
    if (const char *tn = std::getenv("JMSIM_TRACE_NODE"))
        m->node(static_cast<NodeId>(std::atoi(tn))).processor().setTrace(true);
    return m;
}

void
pokeParam(JMachine &m, NodeId node, unsigned index, std::int32_t value)
{
    m.pokeInt(node, jos::kAppScratchBase + index, value);
}

void
pokeParamAll(JMachine &m, unsigned index, std::int32_t value)
{
    for (NodeId id = 0; id < m.nodeCount(); ++id)
        pokeParam(m, id, index, value);
}

std::vector<std::int32_t>
outInts(const JMachine &m, NodeId node)
{
    std::vector<std::int32_t> out;
    for (const Word &w : m.node(node).processor().hostOut())
        out.push_back(w.asInt());
    return out;
}

AppResult
collectAppResult(const JMachine &m)
{
    AppResult result;
    std::map<std::string, ThreadClassStats> classes;
    const Program &prog = m.program();
    for (NodeId id = 0; id < m.nodeCount(); ++id) {
        const Processor &proc = m.node(id).processor();
        const ProcessorStats &s = proc.stats();
        result.instructions += s.instructions;
        result.instructionsOs += s.instructionsOs;
        result.dispatches += s.dispatches;
        result.xlates += proc.xlate().stats().lookups;
        result.xlateFaults +=
            s.faults[static_cast<unsigned>(FaultKind::XlateMiss)];
        for (std::size_t c = 0; c < result.cyclesByClass.size(); ++c)
            result.cyclesByClass[c] += s.cyclesByClass[c];
        result.idleCycles += proc.idleCyclesAt(m.now());
        for (const auto &[entry, hs] : proc.handlerStats()) {
            ThreadClassStats &tc = classes[prog.nearestLabel(entry)];
            tc.threads += hs.dispatches;
            tc.instructions += hs.instructions;
            tc.messageWords += hs.messageWords;
        }
    }
    for (auto &[name, tc] : classes) {
        tc.name = name;
        result.threadClasses.push_back(tc);
    }
    return result;
}

AppResult
collectAppResult(const JMachine &m, const RunResult &run)
{
    AppResult result = collectAppResult(m);
    result.profile = run.profile;
    result.footprintBytes = run.footprintBytes;
    result.counters = run.counters;
    return result;
}

AppResult
finishApp(PreparedApp &app)
{
    JMachine &m = *app.machine;
    const RunResult r = m.run(app.cycleLimit);
    const bool finished = app.requireAllHalted
                              ? r.reason == StopReason::AllHalted
                              : r.reason != StopReason::CycleLimit;
    if (!finished)
        fatal(app.name + " did not finish");

    AppResult result = collectAppResult(m, r);
    result.runCycles = r.cycles;
    if (app.validate)
        result.answer = app.validate(m);
    result.bootSeconds = app.bootSeconds;
    return result;
}

} // namespace workloads
} // namespace jmsim
