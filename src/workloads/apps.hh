/**
 * @file
 * The paper's four macro-benchmark applications (Section 4), each
 * implemented in jasm with a C++ driver and validated against a C++
 * reference implementation.
 *
 * All four report an AppResult: the run time in cycles plus the
 * statistics the paper tabulates (Figure 5 speedups, Figure 6 time
 * breakdowns, Table 4/5 thread statistics).
 */

#ifndef JMSIM_WORKLOADS_APPS_HH
#define JMSIM_WORKLOADS_APPS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "machine/jmachine.hh"
#include "sim/types.hh"

namespace jmsim
{
namespace workloads
{

/** Per-thread-class statistics (Table 4 rows). */
struct ThreadClassStats
{
    std::string name;
    std::uint64_t threads = 0;
    std::uint64_t instructions = 0;
    std::uint64_t messageWords = 0;

    double
    instrPerThread() const
    {
        return threads ? static_cast<double>(instructions) / threads : 0;
    }

    double
    avgMessageLength() const
    {
        return threads ? static_cast<double>(messageWords) / threads : 0;
    }
};

/** Result of one application run. */
struct AppResult
{
    Cycle runCycles = 0;
    std::int64_t answer = 0;      ///< application-level result (validated)
    std::uint64_t instructions = 0;
    std::uint64_t instructionsOs = 0;
    std::uint64_t xlates = 0;
    std::uint64_t xlateFaults = 0;
    std::uint64_t dispatches = 0;
    /** Aggregate cycles per accounting class (Figure 6). */
    std::array<std::uint64_t,
        static_cast<std::size_t>(StatClass::NumClasses)> cyclesByClass{};
    Cycle idleCycles = 0;
    /** Thread classes keyed by handler label (Table 4/5). */
    std::vector<ThreadClassStats> threadClasses;
    /** Host-time phase breakdown of the final run() call. */
    KernelProfile profile;
    /** Simulator-state bytes at the end of the final run() call. */
    std::uint64_t footprintBytes = 0;
    /** Counter-registry snapshot at the end of the final run() call
     *  (pool traffic, network totals, ... — see CounterRegistry). */
    std::vector<CounterSample> counters;

    /** Host seconds spent booting the machine before the first stepped
     *  cycle: assembly, predecode/superblock discovery, machine build,
     *  and input poking. The cost the checkpoint farm amortizes. */
    double bootSeconds = 0.0;

    double runMs() const { return cyclesToSeconds(runCycles) * 1e3; }
};

/**
 * A workload machine booted to its run-ready state with the run phase
 * packaged alongside — the unit the checkpoint/fork sweep farm works
 * in: boot once (expensive: assemble, predecode, build, poke inputs),
 * then run-and-validate many times from snapshots or forked images.
 */
struct PreparedApp
{
    std::unique_ptr<JMachine> machine;
    std::string name;
    Cycle cycleLimit = 0;
    /** AllHalted required (radix); false accepts Quiescent too. */
    bool requireAllHalted = true;
    double bootSeconds = 0.0;   ///< host seconds spent booting
    /** Check the machine's final state against the reference
     *  implementation (fatal on mismatch) and return the answer. */
    std::function<std::int64_t(JMachine &)> validate;
};

/** Run a prepared app to completion, validate, and collect stats. */
AppResult finishApp(PreparedApp &app);

/** Longest Common Subsequence: systolic, one char per message. */
struct LcsConfig
{
    unsigned nodes = 64;
    unsigned lenA = 1024;   ///< distributed string (rows)
    unsigned lenB = 4096;   ///< streamed string (columns)
    std::uint32_t seed = 42;
};
AppResult runLcs(const LcsConfig &config);

/** Radix sort: 4-bit digits, counting sort per digit, fine-grained
 *  remote writes in the reorder phase. */
struct RadixConfig
{
    unsigned nodes = 64;
    unsigned keys = 65536;
    unsigned keyBits = 28;
    unsigned digitBits = 4;
    std::uint32_t seed = 7;
};
AppResult runRadixSort(const RadixConfig &config);

/** N-Queens: breadth-first expansion then distributed depth-first. */
struct NQueensConfig
{
    unsigned nodes = 64;
    unsigned queens = 10;
    unsigned expandDepth = 0;  ///< 0 = choose automatically
};
AppResult runNQueens(const NQueensConfig &config);

/** Traveling Salesperson with a CST-like object layer. */
struct TspConfig
{
    unsigned nodes = 64;
    unsigned cities = 10;
    unsigned prefixDepth = 0;  ///< 0 = choose automatically
    std::uint32_t seed = 3;
    /** DFS steps between null-call suspensions (CST behaviour). */
    unsigned suspendPeriod = 12;
};
AppResult runTsp(const TspConfig &config);

// ---- boot/run separation (checkpoint farm and round-trip tests) ----

PreparedApp prepareRadixSort(const RadixConfig &config);
PreparedApp prepareNQueens(const NQueensConfig &config);
PreparedApp prepareTsp(const TspConfig &config);

// ---- sequential jasm baselines (Figure 5 speedup bases) ----

/** Tuned sequential LCS on one node; returns validated run cycles. */
Cycle runLcsSequential(unsigned len_a, unsigned len_b, std::uint32_t seed = 42);

/** Tuned sequential radix sort on one node. */
Cycle runRadixSequential(unsigned keys, unsigned key_bits = 28,
                         std::uint32_t seed = 7);

/** Tuned sequential N-Queens on one node. */
Cycle runNQueensSequential(unsigned queens);

// ---- C++ reference implementations (validation + speedup bases) ----

/** Reference LCS length. */
unsigned referenceLcs(const std::vector<std::uint8_t> &a,
                      const std::vector<std::uint8_t> &b);

/** Reference radix-sorted copy. */
std::vector<std::uint32_t> referenceSort(std::vector<std::uint32_t> keys);

/** Reference N-Queens solution count. */
std::uint64_t referenceNQueens(unsigned n);

/** Reference optimal TSP tour cost (exhaustive branch and bound). */
std::int64_t referenceTsp(const std::vector<std::vector<std::int32_t>> &dist);

/** Deterministic inputs shared by driver and reference. */
std::vector<std::uint8_t> lcsString(unsigned length, std::uint32_t seed);
std::vector<std::uint32_t> radixKeys(unsigned count, unsigned bits,
                                     std::uint32_t seed);
std::vector<std::vector<std::int32_t>> tspMatrix(unsigned cities,
                                                 std::uint32_t seed);

} // namespace workloads
} // namespace jmsim

#endif // JMSIM_WORKLOADS_APPS_HH
