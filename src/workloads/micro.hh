/**
 * @file
 * Micro-benchmark workloads: the paper's Section 3 experiments.
 *
 * Each function assembles a small jasm program, runs it on a simulated
 * machine, and returns the measured quantities used by the bench
 * binaries to regenerate Figure 2 (latency vs distance), Table 1
 * (message overhead), Figure 3 (latency vs load / efficiency vs grain),
 * Figure 4 (terminal bandwidth), Table 2 (producer-consumer
 * synchronization), and Table 3 (barrier synchronization).
 */

#ifndef JMSIM_WORKLOADS_MICRO_HH
#define JMSIM_WORKLOADS_MICRO_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/jmachine.hh"
#include "sim/types.hh"

namespace jmsim
{
namespace workloads
{

/** Remote-operation flavours of Figure 2. */
enum class PingKind : std::uint8_t
{
    Ping,      ///< 2-word request, 1-word acknowledgment
    Read1,     ///< 4-word read request, 2-word reply
    Read6,     ///< 4-word read request, 7-word reply
};

/** One Figure 2 measurement. */
struct PingResult
{
    unsigned hops = 0;
    double roundTripCycles = 0;  ///< averaged over iterations
};

/**
 * Round-trip latency from node 0 to @p target.
 * @param emem_data remote reads touch external (true) or internal memory
 */
PingResult measurePing(unsigned nodes, NodeId target, PingKind kind,
                       bool emem_data, unsigned iterations = 4);

/** Measured one-way message overhead (Table 1's J-Machine row). */
struct OverheadResult
{
    double sendCyclesPerMsg = 0;    ///< formatting + injection
    double receiveCyclesPerMsg = 0; ///< dispatch + null handler
    double cyclesPerByte = 0;       ///< channel occupancy per payload byte

    double cyclesPerMsg() const { return sendCyclesPerMsg + receiveCyclesPerMsg; }
    double usPerMsg() const { return cyclesPerMsg() * kUsPerCycle; }
    double usPerByte() const { return cyclesPerByte * kUsPerCycle; }
};

OverheadResult measureOverhead();

/** One point of Figure 3's load sweep. */
struct LoadPoint
{
    double bisectionMbits = 0;      ///< measured one-direction crossing rate
    double oneWayLatency = 0;       ///< cycles
    double msgsPerNodePerKcycle = 0;
    double efficiency = 0;          ///< idle (compute) fraction of loop time
    double grainCycles = 0;         ///< modeled computation per exchange
};

/**
 * Random-traffic latency vs load (Figure 3).
 * @param msg_words   total message length L (header included), >= 2
 * @param idle_iters  modelled computation: iterations of a 3-cycle loop
 * @param window      measurement window in cycles (after equal warmup)
 */
LoadPoint measureLoadPoint(unsigned nodes, unsigned msg_words,
                           unsigned idle_iters, Cycle window,
                           std::uint32_t seed = 1);

/** Simulator host-performance / determinism probe over the Figure 3
 *  traffic program: one fixed-window run, with the wall-clock time of
 *  the run() call and the machine's complete statistics signature. */
struct TrafficProbe
{
    RunResult run;                   ///< stop state after the window
    std::uint64_t instructions = 0;  ///< simulated instructions executed
    double hostSeconds = 0;          ///< wall-clock time inside run()
    /** Host seconds spent booting (assemble, predecode, build, poke)
     *  before the first stepped cycle. */
    double bootSeconds = 0;
    ProcessorStats procStats;        ///< aggregate over every node
    NetworkStats netStats;           ///< fabric statistics
    NiStats niStats;                 ///< aggregate NI statistics
    /** Per-message inject->deliver latency (net.latency_cycles). */
    Histogram netLatency{1, kLatencyHistBuckets};
    /** Collected trace stream, when the driver's trace override is on. */
    std::vector<TraceEvent> trace;
    std::uint64_t traceDropped = 0;
};

/** Run fig3-style random traffic for @p window cycles; the machine
 *  honours the driver's setSimThreads() override. */
TrafficProbe runFig3Traffic(unsigned nodes, unsigned msg_words,
                            unsigned idle_iters, Cycle window,
                            std::uint32_t seed = 1);

/** Fig4-style saturation probe: maximum-length (24-word) random-target
 *  messages with zero modelled computation, so every node offers load
 *  as fast as its NI drains — the fabric-bound stress case for the
 *  host-perf sweep and the high-load determinism golden. */
TrafficProbe runFig4Load(unsigned nodes, Cycle window,
                         std::uint32_t seed = 1);

/** Build (but do not run) the fig4 saturation-load machine: the
 *  checkpoint tests snapshot it mid-flight, with the fabric full of
 *  in-transit worms. Run it with runFor() and collect stats by hand. */
std::unique_ptr<JMachine> buildFig4Machine(unsigned nodes,
                                           std::uint32_t seed = 1);

/** Heterogeneous-activity probe for the wake scheduler: @p hot_nodes
 *  nodes (spread across the id range) exchange fig3 traffic
 *  back-to-back while every other node sinks into a compute phase far
 *  longer than the window after one boot-time exchange.  The fabric
 *  stays busy — the global idle-skip never fires — but almost every
 *  node is parked almost every cycle, so per-cycle kernel cost is
 *  O(hot), not O(nodes).  This is the nqueens-tail activity shape as
 *  a repeatable microbenchmark. */
TrafficProbe runSparseActivity(unsigned nodes, unsigned hot_nodes,
                               Cycle window, std::uint32_t seed = 1);

/** Delivery handling for Figure 4. */
enum class BlastMode : std::uint8_t
{
    Discard,
    CopyToImem,
    CopyToEmem,
};

/** Sustained two-node transfer rate in Mbits/s (32-bit data words). */
double measureBlast(unsigned msg_words, BlastMode mode,
                    unsigned messages = 64);

/** Table 2: cycle costs of producer-consumer synchronization. */
struct SyncCosts
{
    // with hardware presence tags
    double tagSuccess = 0;   ///< read of a present value
    double tagFailure = 0;   ///< read of an absent value, up to trap entry
    double tagWrite = 0;     ///< producer store via jos_put (value present path)
    double tagSave = 0;      ///< thread save: fault entry -> suspension
    double tagRestore = 0;   ///< jos_put restart -> thread resumed
    // without tags (explicit flag variable)
    double noTagSuccess = 0;
    double noTagFailure = 0; ///< flag test fails (before any save)
    double noTagWrite = 0;   ///< store data + set flag
};

SyncCosts measureSyncCosts();

/** Table 3: microseconds per barrier for a machine size. */
double measureBarrierUs(unsigned nodes, unsigned iterations = 8);

} // namespace workloads
} // namespace jmsim

#endif // JMSIM_WORKLOADS_MICRO_HH
