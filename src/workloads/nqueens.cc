#include "workloads/apps.hh"

#include "sim/host_timer.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

/**
 * N-Queens (paper Section 4.3.3): node 0 expands the first few rows
 * breadth-first and scatters the resulting boards round-robin as
 * 8-word NQueens messages; each board is counted by an iterative
 * bitmask depth-first search run to completion inside the handler
 * (the paper's ~300K-instruction coarse-grained threads). Results
 * return to node 0 as 3-word NQDone messages.
 *
 * The P0 handler and the background expander use separate DFS stacks
 * (STK_P0 / STK_BG) since the handler may preempt the expander.
 */
const char *kNQueensSource = R"(
.equ STK_P0, 1600
.equ STK_BG, 1700
; params: +4 full mask, +5 expansion depth E
; state:  +20 handler count, +21 boards, +22 round robin, +23 done,
;         +24 total
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    ; ---- node->router table (node 0 only needs it) ----
.region nnr
    LDL A0, seg(TBL, TBLS)
    MOVEI R3, 0
mk_addr:
    MOVE R0, R3
    CALL A2, jos_nnr
    LDL R1, #32
    ADD R1, R1, R3
    STX [A0+R1], R0
    ADDI R3, R3, #1
    GETSP R1, NODES
    LT R1, R3, R1
    BT R1, mk_addr
.region comp
    ; ---- breadth-first expansion to depth E ----
    LDL A0, seg(STK_BG, 100)
    MOVEI R0, 0
    MOVEI R1, 0
    MOVEI R2, 0
    MOVEI R3, 0
x_push:
    ; frame: [avail, cols, d1, d2]; child board is sent (not pushed)
    ; when it holds E queens (depth check happens at child creation)
    OR A2, R0, R1
    OR A2, A2, R2
    NOT A2, A2
    LD A3, [A1+4]
    AND A2, A2, A3
    STX [A0+R3], A2
    ADDI R3, R3, #1
    STX [A0+R3], R0
    ADDI R3, R3, #1
    STX [A0+R3], R1
    ADDI R3, R3, #1
    STX [A0+R3], R2
    ADDI R3, R3, #1
x_top:
    ADDI R3, R3, #-4
    LDX A2, [A0+R3]
    ADDI R3, R3, #4
    EQI A3, A2, #0
    BT A3, x_pop
    NEG A3, A2
    AND A3, A2, A3           ; next column bit
    SUB A2, A2, A3
    ADDI R3, R3, #-4
    STX [A0+R3], A2
    ADDI R3, R3, #1
    LDX R0, [A0+R3]
    ADDI R3, R3, #1
    LDX R1, [A0+R3]
    ADDI R3, R3, #1
    LDX R2, [A0+R3]
    ADDI R3, R3, #1
    ; child = (cols|bit, ((d1|bit)<<1)&full, (d2|bit)>>1)
    OR R0, R0, A3
    OR R1, R1, A3
    ASHI R1, R1, #1
    LD A2, [A1+4]
    AND R1, R1, A2
    OR R2, R2, A3
    LSHI R2, R2, #-1
    ; depth of child = sp/4
    LSHI A2, R3, #-2
    LD A3, [A1+5]
    EQ A2, A2, A3
    BT A2, x_send
    BR x_push
x_send:
    ; scatter the board round-robin as an 8-word message; the DFS
    ; stack pointer spills to memory while R3 indexes the tables
    ST [A1+25], R3
    LD R3, [A1+21]
    ADDI R3, R3, #1
    ST [A1+21], R3           ; boards++
    LD R3, [A1+22]           ; round-robin cursor
    LDL A2, seg(TBL, TBLS)
    LDL A3, #32
    ADD R3, R3, A3
    LDX A3, [A2+R3]          ; destination router address
.region comm
    SEND0 A3
    LDL A2, hdr(nqueens, 8)
    SEND20 A2, R0            ; header, cols
    SEND20 R1, R2            ; d1, d2
    MOVEI A2, 0
    SEND20 A2, A2
    SEND20E A2, A2           ; pad to 8 words
.region comp
    LD R3, [A1+22]
    ADDI R3, R3, #1
    GETSP A2, NODES
    LT A3, R3, A2
    BT A3, rr_ok
    MOVEI R3, 0
rr_ok:
    ST [A1+22], R3
    LD R3, [A1+25]           ; restore the stack pointer
    BR x_top
x_pop:
    ADDI R3, R3, #-4
    LTI A2, R3, #1
    BT A2, x_done
    BR x_top
x_done:
    ; wait for every board's result
.region sync
x_wait:
    LD R0, [A1+23]
    LD R1, [A1+21]
    LT R0, R0, R1
    BT R0, x_wait
.region comp
    LD R0, [A1+24]
    OUT R0
    LD R0, [A1+21]
    OUT R0
    HALT
park:
    CALL A2, jos_park

; ----------------------------------------------------------------------
; NQueens: count solutions below one board by iterative DFS.
; ----------------------------------------------------------------------
nqueens:                     ; [hdr, cols, d1, d2, pad*4]
    LDL A0, seg(STK_P0, 100)
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A3+1]
    LD R1, [A3+2]
    LD R2, [A3+3]
    MOVEI R3, 0
    ST [A1+20], R3
q_push:
    LD A2, [A1+4]
    EQ A2, R0, A2
    BF A2, q_not_leaf
    LD A2, [A1+20]
    ADDI A2, A2, #1
    ST [A1+20], A2
    BR q_pop
q_not_leaf:
    OR A2, R0, R1
    OR A2, A2, R2
    NOT A2, A2
    LD A3, [A1+4]
    AND A2, A2, A3
    STX [A0+R3], A2
    ADDI R3, R3, #1
    STX [A0+R3], R0
    ADDI R3, R3, #1
    STX [A0+R3], R1
    ADDI R3, R3, #1
    STX [A0+R3], R2
    ADDI R3, R3, #1
q_top:
    ADDI R3, R3, #-4
    LDX A2, [A0+R3]
    ADDI R3, R3, #4
    EQI A3, A2, #0
    BT A3, q_pop
    NEG A3, A2
    AND A3, A2, A3
    SUB A2, A2, A3
    ADDI R3, R3, #-4
    STX [A0+R3], A2
    ADDI R3, R3, #1
    LDX R0, [A0+R3]
    ADDI R3, R3, #1
    LDX R1, [A0+R3]
    ADDI R3, R3, #1
    LDX R2, [A0+R3]
    ADDI R3, R3, #1
    OR R0, R0, A3
    OR R1, R1, A3
    ASHI R1, R1, #1
    LD A2, [A1+4]
    AND R1, R1, A2
    OR R2, R2, A3
    LSHI R2, R2, #-1
    BR q_push
q_pop:
    ADDI R3, R3, #-4
    LTI A2, R3, #1
    BT A2, q_done
    BR q_top
q_done:
    LD R0, [A1+20]
.region comm
    MOVEI R1, 0
    SEND0 R1                 ; node 0
    LDL R2, hdr(nqdone, 3)
    SEND20 R2, R0
    MOVEI R1, 0
    SEND0E R1
.region comp
    SUSPEND

nqdone:                      ; [hdr, count, pad]
    LDL A1, seg(APP_SCRATCH, 64)
    LD R0, [A3+1]
    LD R1, [A1+24]
    ADD R1, R1, R0
    ST [A1+24], R1
    LD R1, [A1+23]
    ADDI R1, R1, #1
    ST [A1+23], R1
    SUSPEND
)";

} // namespace

PreparedApp
prepareNQueens(const NQueensConfig &config)
{
    if (config.queens < 4 || config.queens > 16)
        fatal("N-Queens: queens must be in [4, 16]");
    unsigned expand = config.expandDepth;
    if (expand == 0) {
        // Deepen until the board pool comfortably over-decomposes the
        // machine (the paper varied the expansion with machine size).
        std::uint64_t boards = 1;
        for (expand = 1; expand < config.queens - 1; ++expand) {
            boards *= config.queens - (expand - 1);
            if (boards >= 8ull * config.nodes)
                break;
        }
    }

    const std::uint64_t boot0 = hostTicks();
    auto m = buildMachine(config.nodes, "nqueens.jasm",
                          routerTablePrologue(config.nodes, 544) +
                              kNQueensSource);
    pokeParamAll(*m, 4,
                 static_cast<std::int32_t>((1u << config.queens) - 1));
    pokeParamAll(*m, 5, static_cast<std::int32_t>(expand));

    PreparedApp app;
    app.machine = std::move(m);
    app.name = "N-Queens";
    app.cycleLimit = 4'000'000'000ull;
    app.requireAllHalted = false;
    app.validate = [config](JMachine &machine) -> std::int64_t {
        const auto out = outInts(machine, 0);
        if (out.size() != 2)
            fatal("N-Queens produced no result");
        const std::uint64_t expect = referenceNQueens(config.queens);
        if (static_cast<std::uint64_t>(out[0]) != expect)
            fatal("N-Queens wrong answer: " + std::to_string(out[0]) +
                  " vs " + std::to_string(expect));
        return out[0];
    };
    app.bootSeconds = hostSeconds(hostTicks() - boot0);
    return app;
}

AppResult
runNQueens(const NQueensConfig &config)
{
    PreparedApp app = prepareNQueens(config);
    return finishApp(app);
}

} // namespace workloads
} // namespace jmsim
