#include "workloads/apps.hh"

#include "sim/logging.hh"
#include "workloads/driver.hh"

namespace jmsim
{
namespace workloads
{

namespace
{

/**
 * Systolic LCS, as the paper describes: one string distributed across
 * the nodes (rows of the DP), the other streamed from node 0 one
 * character per message. Each NxtChar message carries the character
 * and the packed boundary values (diag in bits [12:0], left-boundary
 * in bits [25:13] -- LCS values fit in 13 bits); the handler sweeps this node's rows and forwards.
 *
 * SRAM layout: ACH+1.. holds this node's chunk of A, COL+0 holds the
 * row count and COL+1.. the current column values.
 */
const char *kLcsSource = R"(
.equ ACH, 992
.equ COL, 2020
.equ BSTR, 73728
; params: +0 rows, +1 lenB
; state:  +8 processed, +12 successor router addr, +13 last-node flag
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    GETSP R0, NODEID
    ADDI R0, R0, #1
    GETSP R1, NODES
    LT R2, R0, R1
    BT R2, not_last
    MOVEI R2, 1
    ST [A1+13], R2
    BR after_succ
not_last:
.region nnr
    CALL A2, jos_nnr
    ST [A1+12], R0
.region comp
after_succ:
    ; zero col[1..rows], col[0] = rows
    LDL A2, seg(COL, 1056)
    LD R0, [A1+0]
    ST [A2+0], R0
    MOVEI R1, 1
    MOVEI R2, 0
zcol:
    GT R3, R1, R0
    BT R3, zdone
    STX [A2+R1], R2
    ADDI R1, R1, #1
    BR zcol
zdone:
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    ; node 0 streams the 4096 characters of B to itself
    LDL A0, seg(BSTR, 4096)
    MOVEI R2, 0
feed:
    LD R0, [A1+1]
    LT R3, R2, R0
    BF R3, park
    LDX R0, [A0+R2]
.region comm
    MOVEI R3, 0
    SEND0 R3                ; node 0's router address is 0
    LDL R1, hdr(nxtchar, 3)
    SEND20 R1, R0
    MOVEI R1, 0
    SEND0E R1               ; zero boundary carries
.region comp
    ADDI R2, R2, #1
    BR feed
park:
    CALL A2, jos_park

; ----------------------------------------------------------------------
; NxtChar: the application's single hot handler.
; ----------------------------------------------------------------------
nxtchar:
    LDL A0, seg(ACH, 1056)
    LDL A2, seg(COL, 1056)
    LD R0, [A3+1]            ; character
    LD R1, [A3+2]            ; carries: diag | left<<13
    MOVEI R2, 1              ; row index
row_loop:
    LDX R3, [A0+R2]          ; a[i]
    EQ R3, R3, R0
    BF R3, nomatch
    ; new = diag + 1, diag = carry - (left << 13)
    LSHI R3, R1, #-13
    LSHI R3, R3, #13
    SUB R3, R1, R3           ; diag
    ADDI R3, R3, #1
    LDX A1, [A2+R2]          ; up (next row's diag)
    BR store_common
nomatch:
    ; new = max(up, left)
    LSHI R3, R1, #-13        ; left
    LDX A1, [A2+R2]          ; up
    LT R1, A1, R3
    BT R1, store_common
    MOVE R3, A1              ; new = up
store_common:
    ; carry for the next row: diag = old col[i] (up), left = new
    LSHI R1, R3, #13
    OR R1, R1, A1
    STX [A2+R2], R3
    ADDI R2, R2, #1
    LD A1, [A2+0]            ; rows
    LE A1, R2, A1
    BT A1, row_loop
    ; epilogue: count and forward (or finish)
    LDL A1, seg(APP_SCRATCH, 64)
    LD R2, [A1+8]
    ADDI R2, R2, #1
    ST [A1+8], R2
    LD R3, [A1+13]
    EQI R3, R3, #1
    BT R3, last_node
.region comm
    LD R3, [A1+12]
    SEND0 R3
    LDL R2, hdr(nxtchar, 3)
    SEND20 R2, R0
    SEND0E R1
.region comp
    SUSPEND
last_node:
    LD R3, [A1+1]
    LT R3, R2, R3
    BF R3, all_done
    SUSPEND
all_done:
    ; final LCS value is the freshly computed last-row entry
    LSHI R0, R1, #-13
.region comm
    MOVEI R3, 0
    SEND0 R3
    LDL R2, hdr(lcs_done, 2)
    SEND20E R2, R0
.region comp
    SUSPEND

lcs_done:
    LD R0, [A3+1]
    OUT R0
    SUSPEND
)";

} // namespace

AppResult
runLcs(const LcsConfig &config)
{
    if (config.lenA % config.nodes != 0)
        fatal("LCS: lenA must divide evenly across nodes");
    const unsigned rows = config.lenA / config.nodes;
    if (rows > 1024)
        fatal("LCS: more than 1024 rows per node");

    const auto a = lcsString(config.lenA, config.seed);
    const auto b = lcsString(config.lenB, config.seed + 1);

    auto m = buildMachine(config.nodes, "lcs.jasm", kLcsSource);
    pokeParamAll(*m, 0, static_cast<std::int32_t>(rows));
    pokeParamAll(*m, 1, static_cast<std::int32_t>(config.lenB));
    const Addr ach = static_cast<Addr>(m->program().symbol("ACH"));
    const Addr bstr = static_cast<Addr>(m->program().symbol("BSTR"));
    for (NodeId id = 0; id < config.nodes; ++id) {
        for (unsigned i = 0; i < rows; ++i)
            m->pokeInt(id, ach + 1 + i, a[id * rows + i]);
    }
    for (unsigned j = 0; j < config.lenB; ++j)
        m->pokeInt(0, bstr + j, b[j]);

    const Cycle limit =
        static_cast<Cycle>(config.lenB) * (40ull * rows + 4000) + 1000000;
    const RunResult r = m->run(limit);
    if (r.reason == StopReason::CycleLimit)
        fatal("LCS did not finish");
    const auto out = outInts(*m, 0);
    if (out.size() != 1)
        fatal("LCS produced no result");

    AppResult result = collectAppResult(*m, r);
    result.runCycles = r.cycles;
    result.answer = out[0];
    const unsigned expect = referenceLcs(a, b);
    if (out[0] != static_cast<std::int32_t>(expect))
        fatal("LCS wrong answer: " + std::to_string(out[0]) + " vs " +
              std::to_string(expect));
    return result;
}

} // namespace workloads
} // namespace jmsim
