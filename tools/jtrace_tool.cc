/**
 * @file
 * jtrace command-line tool: inspect Chrome trace-event JSON written by
 * the simulator (jasm_tool --trace, the workload drivers, or
 * JMachine::exportTrace).
 *
 *   jtrace_tool summarize trace.json
 *   jtrace_tool filter [--kinds k1,k2] [--cats proc,ni,net,kernel]
 *               [--node N] [--from C] [--to C] in.json out.json
 *   jtrace_tool export in.json out.json
 *
 * summarize reconstructs per-message latency from the matched
 * msg.send / msg.recv pairs (identical geometry to the simulator's
 * net.latency_cycles histogram, so the percentiles agree exactly),
 * plus queue-occupancy percentiles and per-kind event counts.
 *
 * filter keeps only the selected events and writes a valid Chrome
 * trace again; export round-trips a file unchanged (parse + rewrite),
 * which canonicalizes anything the parser accepts.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace/chrome_trace.hh"
#include "trace/trace_event.hh"

using namespace jmsim;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: jtrace_tool summarize trace.json\n"
        "       jtrace_tool filter [--kinds k1,k2] [--cats c1,c2] "
        "[--node N] [--from C] [--to C] in.json out.json\n"
        "       jtrace_tool export in.json out.json\n"
        "kinds: dispatch suspend fault msg.send msg.recv msg.bounce\n"
        "       queue.depth flit.fwd flit.blk idle.skip\n"
        "cats:  all proc ni net kernel\n");
    return 2;
}

bool
load(const char *path, ParsedTrace &out)
{
    if (!parseChromeTrace(path, out)) {
        std::fprintf(stderr, "jtrace: cannot parse %s\n", path);
        return false;
    }
    return true;
}

/** Comma list of kind names -> bitmask over TraceKind. */
bool
parseKinds(const char *list, std::uint32_t &mask)
{
    mask = 0;
    std::string token;
    for (const char *p = list;; ++p) {
        if (*p && *p != ',') {
            token.push_back(*p);
            continue;
        }
        if (!token.empty()) {
            TraceKind kind;
            if (!traceKindFromName(token, kind))
                return false;
            mask |= 1u << static_cast<unsigned>(kind);
            token.clear();
        }
        if (!*p)
            break;
    }
    return mask != 0;
}

void
printHistogram(const char *name, const Histogram &h)
{
    std::printf("  %-18s count %-8llu mean %8.1f  p50 %6llu  p90 %6llu  "
                "p99 %6llu  max %6llu\n",
                name, static_cast<unsigned long long>(h.count()), h.mean(),
                static_cast<unsigned long long>(h.percentile(0.50)),
                static_cast<unsigned long long>(h.percentile(0.90)),
                static_cast<unsigned long long>(h.percentile(0.99)),
                static_cast<unsigned long long>(h.max()));
}

int
summarize(const char *path)
{
    ParsedTrace in;
    if (!load(path, in))
        return 1;
    const TraceSummary s = summarizeTrace(in.events);
    std::printf("%s: %zu events", path, in.events.size());
    if (in.dropped)
        std::printf(" (%llu dropped at capture)",
                    static_cast<unsigned long long>(in.dropped));
    std::printf("\n");
    std::printf("  cycles %llu..%llu\n",
                static_cast<unsigned long long>(s.firstCycle),
                static_cast<unsigned long long>(s.lastCycle));
    std::printf("  events by kind:\n");
    for (unsigned k = 0; k < kNumTraceKinds; ++k) {
        if (s.countByKind[k])
            std::printf("    %-12s %llu\n",
                        traceKindName(static_cast<TraceKind>(k)),
                        static_cast<unsigned long long>(s.countByKind[k]));
    }
    if (s.latency.count()) {
        std::printf("  message latency (inject->deliver cycles, "
                    "%llu matched, %llu unmatched sends, "
                    "%llu unmatched recvs):\n",
                    static_cast<unsigned long long>(s.matchedMessages),
                    static_cast<unsigned long long>(s.unmatchedSends),
                    static_cast<unsigned long long>(s.unmatchedRecvs));
        printHistogram("latency", s.latency);
    }
    for (unsigned prio = 0; prio < 2; ++prio) {
        if (s.queueWords[prio].count()) {
            const std::string name =
                "queue.p" + std::to_string(prio) + " words";
            printHistogram(name.c_str(), s.queueWords[prio]);
        }
    }
    if (s.idleSkippedCycles)
        std::printf("  idle-skipped cycles: %llu\n",
                    static_cast<unsigned long long>(s.idleSkippedCycles));
    return 0;
}

int
filter(int argc, char **argv)
{
    std::uint32_t kind_mask = ~0u;
    std::uint32_t node = ~0u;
    bool node_set = false;
    Cycle from = 0;
    Cycle to = ~Cycle{0};
    std::vector<const char *> paths;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--kinds") && i + 1 < argc) {
            if (!parseKinds(argv[++i], kind_mask)) {
                std::fprintf(stderr, "jtrace: bad --kinds '%s'\n", argv[i]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--cats") && i + 1 < argc) {
            std::uint32_t cats;
            if (!parseTraceCategories(argv[++i], cats)) {
                std::fprintf(stderr, "jtrace: bad --cats '%s'\n", argv[i]);
                return 2;
            }
            kind_mask = 0;
            for (unsigned k = 0; k < kNumTraceKinds; ++k) {
                if (categoryOf(static_cast<TraceKind>(k)) & cats)
                    kind_mask |= 1u << k;
            }
        } else if (!std::strcmp(argv[i], "--node") && i + 1 < argc) {
            node = static_cast<std::uint32_t>(std::atoll(argv[++i]));
            node_set = true;
        } else if (!std::strcmp(argv[i], "--from") && i + 1 < argc) {
            from = static_cast<Cycle>(std::atoll(argv[++i]));
        } else if (!std::strcmp(argv[i], "--to") && i + 1 < argc) {
            to = static_cast<Cycle>(std::atoll(argv[++i]));
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.size() != 2)
        return usage();
    ParsedTrace in;
    if (!load(paths[0], in))
        return 1;
    std::vector<TraceEvent> kept;
    kept.reserve(in.events.size());
    for (const TraceEvent &ev : in.events) {
        if (!((kind_mask >> static_cast<unsigned>(ev.kind)) & 1u))
            continue;
        if (node_set && ev.node != node)
            continue;
        if (ev.cycle < from || ev.cycle > to)
            continue;
        kept.push_back(ev);
    }
    if (!writeChromeTrace(paths[1], kept, in.dropped)) {
        std::fprintf(stderr, "jtrace: cannot write %s\n", paths[1]);
        return 1;
    }
    std::printf("kept %zu of %zu events -> %s\n", kept.size(),
                in.events.size(), paths[1]);
    return 0;
}

int
exportCopy(const char *in_path, const char *out_path)
{
    ParsedTrace in;
    if (!load(in_path, in))
        return 1;
    if (!writeChromeTrace(out_path, in.events, in.dropped)) {
        std::fprintf(stderr, "jtrace: cannot write %s\n", out_path);
        return 1;
    }
    std::printf("wrote %zu events -> %s\n", in.events.size(), out_path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string verb = argv[1];
    if (verb == "summarize" && argc == 3)
        return summarize(argv[2]);
    if (verb == "filter")
        return filter(argc - 2, argv + 2);
    if (verb == "export" && argc == 4)
        return exportCopy(argv[2], argv[3]);
    return usage();
}
