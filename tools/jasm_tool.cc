/**
 * @file
 * jasm command-line tool: assemble .jasm files and print a listing,
 * the symbol table, or image statistics. Useful when developing
 * workloads outside the C++ drivers.
 *
 *   jasm_tool [--no-kernel] [--symbols] [--listing] file.jasm...
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jasm/assembler.hh"
#include "sim/logging.hh"
#include "runtime/jos.hh"

using namespace jmsim;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
printListing(const Program &prog)
{
    std::string last_label;
    for (IAddr i = 0; i < prog.codeEndWord() * 2; ++i) {
        if (!prog.validIaddr(i))
            continue;
        const std::string label = prog.nearestLabel(i);
        if (label != last_label) {
            std::printf("%s:\n", label.c_str());
            last_label = label;
        }
        std::printf("  %6u.%u  [%-5s] %s\n", i / 2, i % 2,
                    statClassName(prog.klassAt(i)),
                    prog.fetch(i).toString().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool with_kernel = true;
    bool symbols = false;
    bool listing = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--no-kernel"))
            with_kernel = false;
        else if (!std::strcmp(argv[i], "--symbols"))
            symbols = true;
        else if (!std::strcmp(argv[i], "--listing"))
            listing = true;
        else
            files.push_back(argv[i]);
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: jasm_tool [--no-kernel] [--symbols] "
                     "[--listing] file.jasm...\n");
        return 2;
    }

    try {
        std::vector<SourceFile> sources;
        if (with_kernel) {
            sources.push_back({"jos.jasm", jos::kernelSource()});
            sources.push_back({"barrier.jasm", jos::barrierSource()});
        }
        for (const auto &f : files)
            sources.push_back({f, readFile(f)});
        const Program prog = assemble(sources);

        std::printf("%llu instructions, code through word %u, %zu "
                    "initialized data words\n",
                    static_cast<unsigned long long>(
                        prog.instructionCount()),
                    prog.codeEndWord(), prog.data().size());
        if (symbols) {
            // The symbol map is not directly iterable; print the
            // labels via the listing machinery instead.
            std::printf("(use --listing for label positions)\n");
        }
        if (listing)
            printListing(prog);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
