/**
 * @file
 * jasm command-line tool: assemble .jasm files and print a listing,
 * the symbol table, or image statistics — or run them on a simulated
 * machine. Useful when developing workloads outside the C++ drivers.
 *
 *   jasm_tool [--no-kernel] [--symbols] [--listing] file.jasm...
 *   jasm_tool --run [--nodes N] [--threads T] [--max-cycles C]
 *             [--superblock on|off] [--wake-sched on|off]
 *             [--net-sched on|off] [--faa on|off] [--combining on|off]
 *             [--barrier-tree on|off] [--trace out.json]
 *             [--trace-filter cats] file.jasm
 *
 * `--threads` selects the simulation kernel's worker count: 1 forces
 * the serial kernel, N > 1 runs N shards (bit-identical results), and
 * the default (0) picks from the host's hardware concurrency.
 *
 * `--superblock off` disables fused span execution and interprets one
 * op per cycle (bit-identical results, slower host time) — an A/B
 * switch for verifying or triaging the span engine.
 *
 * `--wake-sched off` disables the event-driven wake scheduler and
 * rescans every non-halted node each cycle (bit-identical results,
 * slower host time on sparse-activity workloads) — the A/B switch for
 * the kernel's park/wake machinery.
 *
 * `--net-sched off` disables the event-driven fabric scheduler and
 * steps the mesh with the legacy full-scan pull/commit phases
 * (bit-identical results, slower host time when few routers carry
 * flits) — the A/B switch for the fabric's worklist machinery.
 *
 * `--faa on`, `--combining on`, and `--barrier-tree on` enable the
 * in-network computing options (fetch-and-add requests, router-level
 * combining, and the hardware barrier tree). Unlike the host toggles
 * above these are ARCHITECTURAL — they change cycle counts — and they
 * bundle the netops jasm library so programs can CALL nop_faa and
 * nop_barrier.
 *
 * `--trace <file>` records a cycle-accurate event trace of the run and
 * writes it as Chrome trace-event JSON (open in chrome://tracing or
 * ui.perfetto.dev). `--trace-filter` narrows the recorded categories
 * to a comma list of proc,ni,net,kernel (default all).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jasm/assembler.hh"
#include "sim/logging.hh"
#include "runtime/jos.hh"
#include "trace/tracer.hh"
#include "workloads/driver.hh"

using namespace jmsim;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
printListing(const Program &prog)
{
    std::string last_label;
    for (IAddr i = 0; i < prog.codeEndWord() * 2; ++i) {
        if (!prog.validIaddr(i))
            continue;
        const std::string label = prog.nearestLabel(i);
        if (label != last_label) {
            std::printf("%s:\n", label.c_str());
            last_label = label;
        }
        std::printf("  %6u.%u  [%-5s] %s\n", i / 2, i % 2,
                    statClassName(prog.klassAt(i)),
                    prog.fetch(i).toString().c_str());
    }
}

/** Assemble + run one program on a machine; print the outcome. */
int
runProgram(const std::string &path, unsigned nodes, int threads,
           int superblock, int wake_sched, int net_sched,
           const NetOpsConfig &netops, Cycle max_cycles,
           const TraceConfig &trace)
{
    workloads::setSimThreads(threads);
    workloads::setSuperblock(superblock);
    workloads::setWakeScheduler(wake_sched);
    workloads::setNetScheduler(net_sched);
    workloads::setNetOpsConfig(netops);
    workloads::setTraceConfig(trace);
    auto m = workloads::buildMachine(nodes, path, readFile(path));
    std::printf("running %s on %u nodes (%u worker shard%s)\n",
                path.c_str(), m->nodeCount(), m->resolvedThreads(),
                m->resolvedThreads() == 1 ? "" : "s");
    const RunResult r = m->run(max_cycles);
    workloads::clearTraceConfig();
    workloads::clearNetOpsConfig();
    workloads::setSimThreads(-1);
    workloads::setSuperblock(-1);
    workloads::setWakeScheduler(-1);
    workloads::setNetScheduler(-1);
    if (trace.enabled && m->exportTrace())
        std::printf("wrote %s (%zu events, %llu dropped)\n",
                    trace.outPath.c_str(), m->tracer()->collect().size(),
                    static_cast<unsigned long long>(m->tracer()->dropped()));

    if (const NetOps *nops = m->netops())
        std::printf("netops: %llu faa ops, %llu combine hits, "
                    "%llu barrier waves\n",
                    static_cast<unsigned long long>(nops->faaOps()),
                    static_cast<unsigned long long>(nops->combineHits()),
                    static_cast<unsigned long long>(nops->waves()));
    const char *reason = r.reason == StopReason::AllHalted ? "all-halted"
                         : r.reason == StopReason::Quiescent ? "quiescent"
                                                             : "cycle-limit";
    const ProcessorStats stats = m->aggregateStats();
    std::printf("stopped after %llu cycles (%s); %llu instructions, "
                "%llu dispatches, %llu messages delivered\n",
                static_cast<unsigned long long>(r.cycles), reason,
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.dispatches),
                static_cast<unsigned long long>(
                    m->network().stats().messagesDelivered));
    for (NodeId id = 0; id < m->nodeCount(); ++id) {
        const auto &out = m->node(id).processor().hostOut();
        if (out.empty())
            continue;
        std::printf("node %u OUT:", id);
        for (const Word &w : out)
            std::printf(" %d", w.asInt());
        std::printf("\n");
    }
    return r.reason == StopReason::CycleLimit ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool with_kernel = true;
    bool symbols = false;
    bool listing = false;
    bool run = false;
    unsigned nodes = 64;
    int threads = -1;       // -1 = driver default (auto)
    int superblock = -1;    // -1 = driver default (on)
    int wake_sched = -1;    // -1 = driver default (on)
    int net_sched = -1;     // -1 = driver default (on)
    Cycle max_cycles = 50'000'000;
    NetOpsConfig netops;
    TraceConfig trace;
    std::vector<std::string> files;
    // On/off flags sharing the --superblock parse shape.
    struct BoolFlag
    {
        const char *name;
        bool *value;
    };
    const BoolFlag netops_flags[] = {
        {"--faa", &netops.faa},
        {"--combining", &netops.combining},
        {"--barrier-tree", &netops.barrierTree},
    };
    for (int i = 1; i < argc; ++i) {
        bool matched = false;
        for (const BoolFlag &f : netops_flags) {
            if (std::strcmp(argv[i], f.name) || i + 1 >= argc)
                continue;
            const char *v = argv[++i];
            if (!std::strcmp(v, "on"))
                *f.value = true;
            else if (!std::strcmp(v, "off"))
                *f.value = false;
            else {
                std::fprintf(stderr, "bad %s '%s' (want on or off)\n",
                             f.name, v);
                return 2;
            }
            matched = true;
            break;
        }
        if (matched)
            continue;
        if (!std::strcmp(argv[i], "--no-kernel"))
            with_kernel = false;
        else if (!std::strcmp(argv[i], "--symbols"))
            symbols = true;
        else if (!std::strcmp(argv[i], "--listing"))
            listing = true;
        else if (!std::strcmp(argv[i], "--run"))
            run = true;
        else if (!std::strcmp(argv[i], "--nodes") && i + 1 < argc)
            nodes = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--max-cycles") && i + 1 < argc)
            max_cycles = static_cast<Cycle>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--superblock") && i + 1 < argc) {
            const char *v = argv[++i];
            if (!std::strcmp(v, "on"))
                superblock = 1;
            else if (!std::strcmp(v, "off"))
                superblock = 0;
            else {
                std::fprintf(stderr,
                             "bad --superblock '%s' (want on or off)\n", v);
                return 2;
            }
        }
        else if (!std::strcmp(argv[i], "--wake-sched") && i + 1 < argc) {
            const char *v = argv[++i];
            if (!std::strcmp(v, "on"))
                wake_sched = 1;
            else if (!std::strcmp(v, "off"))
                wake_sched = 0;
            else {
                std::fprintf(stderr,
                             "bad --wake-sched '%s' (want on or off)\n", v);
                return 2;
            }
        }
        else if (!std::strcmp(argv[i], "--net-sched") && i + 1 < argc) {
            const char *v = argv[++i];
            if (!std::strcmp(v, "on"))
                net_sched = 1;
            else if (!std::strcmp(v, "off"))
                net_sched = 0;
            else {
                std::fprintf(stderr,
                             "bad --net-sched '%s' (want on or off)\n", v);
                return 2;
            }
        }
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            trace.enabled = true;
            trace.outPath = argv[++i];
        } else if (!std::strcmp(argv[i], "--trace-filter") && i + 1 < argc) {
            if (!parseTraceCategories(argv[++i], trace.categories)) {
                std::fprintf(stderr,
                             "bad --trace-filter '%s' (want a comma list "
                             "of all,proc,ni,net,kernel)\n",
                             argv[i]);
                return 2;
            }
        } else
            files.push_back(argv[i]);
    }
    if (files.empty() || (run && files.size() != 1)) {
        std::fprintf(stderr,
                     "usage: jasm_tool [--no-kernel] [--symbols] "
                     "[--listing] file.jasm...\n"
                     "       jasm_tool --run [--nodes N] [--threads T] "
                     "[--max-cycles C] [--superblock on|off] "
                     "[--wake-sched on|off] [--net-sched on|off] "
                     "[--faa on|off] [--combining on|off] "
                     "[--barrier-tree on|off] "
                     "[--trace out.json] [--trace-filter cats] "
                     "file.jasm\n");
        return 2;
    }
    if (run) {
        try {
            return runProgram(files[0], nodes, threads, superblock,
                              wake_sched, net_sched, netops, max_cycles,
                              trace);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    try {
        std::vector<SourceFile> sources;
        if (with_kernel) {
            sources.push_back({"jos.jasm", jos::kernelSource()});
            sources.push_back({"barrier.jasm", jos::barrierSource()});
        }
        for (const auto &f : files)
            sources.push_back({f, readFile(f)});
        const Program prog = assemble(sources);

        std::printf("%llu instructions, code through word %u, %zu "
                    "initialized data words\n",
                    static_cast<unsigned long long>(
                        prog.instructionCount()),
                    prog.codeEndWord(), prog.data().size());
        if (symbols) {
            // The symbol map is not directly iterable; print the
            // labels via the listing machinery instead.
            std::printf("(use --listing for label positions)\n");
        }
        if (listing)
            printListing(prog);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
