/**
 * @file
 * jrun_server: batch job server for workload sweeps.
 *
 * Reads a JSON-lines sweep spec (one flat object per line, `--spec
 * FILE` or stdin), groups the jobs by machine image — workload plus
 * its size parameters, ignoring host toggles — and boots each image
 * exactly once (assemble, predecode/superblock discovery, build, poke
 * inputs). Every job of a group then runs from that image: by default
 * the server fork()s a worker per job, so the booted machine is shared
 * copy-on-write and the parent's image stays pristine for the next
 * job; with `--no-fork` it instead saves a checkpoint of the booted
 * machine and restores it before each job, sequentially in-process.
 * Either way the sweep pays each boot once instead of once per row.
 *
 * Spec fields: `workload` ("radix_sort" | "nqueens" | "tsp"),
 * `nodes`, the workload's size (`keys` / `queens` / `cities`), an
 * optional `label`, an optional `warmup` cycle count, and the host
 * toggles `threads`, `wake_scheduler`, `net_scheduler`, `superblock`,
 * `idle_skip` (0/1 or true/false; omitted = machine default). Toggles
 * never change simulated results — the rows of a group differ only in
 * host cost — which is what makes a toggle sweep from one image sound.
 *
 * `warmup` (group-level, read from the group's first job; `--warmup
 * N` sets the default) advances the freshly booted image N cycles
 * before it is shared, so the jobs of a group also split the cost of
 * their common run prefix, not just the boot. That prefix is where
 * the amortization headroom lives: with the image parked near the end
 * of the run, a 4-variant toggle group pays boot + prefix once and
 * four short tails, where a cold sweep pays four full runs.
 *
 * `--jobs N` (fork mode only, default 1) keeps up to N forked workers
 * running at once. Each worker's stdout is redirected into a pipe and
 * the parent prints completed rows strictly in spec order, so the
 * output stream is byte-identical to a sequential sweep. The summary
 * reports the summed worker run time (`work_sec`) and the resulting
 * wall-clock `speedup` over running those same workers one at a time.
 *
 * Output: one RunResult JSON line per job as it finishes (the shared
 * sim/run_result_json schema; `boot_sec` carries the group's boot
 * cost on the row that paid it and 0 on rows that reused the image),
 * then a final `{"summary": ...}` line with sweep totals and
 * jobs-per-minute. `--cold` disables all sharing — every job boots
 * and runs from cycle 0 — and exists as the honest baseline for
 * measuring what the farm saves.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define JRUN_HAVE_FORK 1
#endif

#include "ckpt/snapshot.hh"
#include "sim/run_result_json.hh"
#include "trace/counter_registry.hh"
#include "workloads/apps.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** One parsed spec line. */
struct Job
{
    std::string label;
    std::string workload;
    unsigned nodes = 64;
    unsigned keys = 65536;   ///< radix_sort
    unsigned queens = 10;    ///< nqueens
    unsigned cities = 10;    ///< tsp
    long warmup = -1;        ///< group warmup cycles; -1 = CLI default
    // Host toggles; -1 = leave the machine default.
    int threads = -1;
    int wakeScheduler = -1;
    int netScheduler = -1;
    int superblock = -1;
    int idleSkip = -1;

    /** Jobs with the same key share one booted machine image. */
    std::string
    bootKey() const
    {
        return workload + "/" + std::to_string(nodes) + "/" +
               std::to_string(keys) + "/" + std::to_string(queens) + "/" +
               std::to_string(cities);
    }
};

// ---- flat JSON-line parsing --------------------------------------
// The spec is our own format: one object per line, string / integer /
// boolean values, no nesting. A rigid scanner beats a JSON library
// dependency here.

const char *
findKey(const std::string &line, const char *key)
{
    const std::string quoted = std::string("\"") + key + "\"";
    std::size_t at = line.find(quoted);
    if (at == std::string::npos)
        return nullptr;
    at += quoted.size();
    while (at < line.size() && (line[at] == ' ' || line[at] == ':'))
        ++at;
    return at < line.size() ? line.c_str() + at : nullptr;
}

bool
parseString(const std::string &line, const char *key, std::string *out)
{
    const char *v = findKey(line, key);
    if (!v || *v != '"')
        return false;
    const char *end = std::strchr(v + 1, '"');
    if (!end)
        return false;
    out->assign(v + 1, end);
    return true;
}

bool
parseInt(const std::string &line, const char *key, long *out)
{
    const char *v = findKey(line, key);
    if (!v)
        return false;
    if (!std::strncmp(v, "true", 4)) {
        *out = 1;
        return true;
    }
    if (!std::strncmp(v, "false", 5)) {
        *out = 0;
        return true;
    }
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v)
        return false;
    *out = n;
    return true;
}

bool
parseJob(const std::string &line, Job *job, std::string *err)
{
    if (!parseString(line, "workload", &job->workload)) {
        *err = "missing \"workload\"";
        return false;
    }
    if (job->workload != "radix_sort" && job->workload != "nqueens" &&
        job->workload != "tsp") {
        *err = "unknown workload \"" + job->workload + "\"";
        return false;
    }
    parseString(line, "label", &job->label);
    if (job->label.empty())
        job->label = job->workload;
    long v = 0;
    if (parseInt(line, "nodes", &v))
        job->nodes = static_cast<unsigned>(v);
    if (parseInt(line, "keys", &v))
        job->keys = static_cast<unsigned>(v);
    if (parseInt(line, "queens", &v))
        job->queens = static_cast<unsigned>(v);
    if (parseInt(line, "cities", &v))
        job->cities = static_cast<unsigned>(v);
    if (parseInt(line, "warmup", &v))
        job->warmup = v;
    if (parseInt(line, "threads", &v))
        job->threads = static_cast<int>(v);
    if (parseInt(line, "wake_scheduler", &v))
        job->wakeScheduler = v ? 1 : 0;
    if (parseInt(line, "net_scheduler", &v))
        job->netScheduler = v ? 1 : 0;
    if (parseInt(line, "superblock", &v))
        job->superblock = v ? 1 : 0;
    if (parseInt(line, "idle_skip", &v))
        job->idleSkip = v ? 1 : 0;
    return true;
}

// ---- job execution -----------------------------------------------

PreparedApp
bootJob(const Job &job)
{
    if (job.workload == "radix_sort") {
        RadixConfig c;
        c.nodes = job.nodes;
        c.keys = job.keys;
        return prepareRadixSort(c);
    }
    if (job.workload == "nqueens") {
        NQueensConfig c;
        c.nodes = job.nodes;
        c.queens = job.queens;
        return prepareNQueens(c);
    }
    TspConfig c;
    c.nodes = job.nodes;
    c.cities = job.cities;
    return prepareTsp(c);
}

void
applyToggles(JMachine &m, const Job &job)
{
    if (job.threads >= 0)
        m.setThreads(static_cast<unsigned>(job.threads));
    if (job.wakeScheduler >= 0)
        m.setWakeScheduler(job.wakeScheduler != 0);
    if (job.netScheduler >= 0)
        m.setNetScheduler(job.netScheduler != 0);
    if (job.superblock >= 0)
        m.setSuperblock(job.superblock != 0);
    if (job.idleSkip >= 0)
        m.setIdleSkip(job.idleSkip != 0);
}

/** Run @p app's machine to completion for @p job and print its row.
 *  @p boot_sec is the boot this row is charged for (the group's cost
 *  on the row that paid it, 0 on rows that reused the image). */
void
emitJob(PreparedApp &app, const Job &job, double boot_sec)
{
    applyToggles(*app.machine, job);
    const auto t0 = std::chrono::steady_clock::now();
    const AppResult r = finishApp(app);
    RunRow row;
    row.workload = job.label;
    row.nodes = job.nodes;
    row.threads = job.threads > 0 ? static_cast<unsigned>(job.threads) : 1;
    row.hostSeconds = secondsSince(t0);
    row.simCycles = r.runCycles;
    row.simInstructions = r.instructions;
    row.nodeSec = r.profile.nodeSeconds;
    row.netSec = r.profile.netSeconds;
    row.commitSec = r.profile.commitSeconds;
    row.poolLiveHighWater = counterValue(r.counters, "pool.live_high_water");
    row.poolAllocs = counterValue(r.counters, "pool.allocs");
    row.poolRecycled = counterValue(r.counters, "pool.recycled");
    row.footprintBytes = r.footprintBytes;
    row.bootSec = boot_sec;
    std::printf("%s\n", runRowJson(row).c_str());
}

void
emitError(const Job &job, const std::string &what)
{
    std::printf("{\"workload\": \"%s\", \"error\": \"%s\"}\n",
                job.label.c_str(), what.c_str());
}

struct SweepTotals
{
    unsigned jobs = 0;
    unsigned failed = 0;
    double bootSec = 0;
    /** Summed per-job run time (fork -> exit, or the in-process run):
     *  what a one-at-a-time sweep would have spent inside jobs. */
    double workSec = 0;
};

#if JRUN_HAVE_FORK
/** Concurrent fork workers (--jobs N). Each worker's stdout goes into
 *  a pipe; rows print in launch order once the worker is done, so N-way
 *  sweeps emit the same byte stream as sequential ones. */
class ForkFarm
{
  public:
    ForkFarm(unsigned window, SweepTotals *totals)
        : window_(window ? window : 1), totals_(totals)
    {
    }

    /** Fork a worker for @p job off the booted @p app. Blocks (reaping
     *  the oldest workers) while the window is full. */
    void
    launch(PreparedApp &app, const Job &job, double boot_owed)
    {
        while (liveCount() >= window_)
            reapOne();
        std::fflush(stdout);
        std::fflush(stderr);
        int fds[2];
        if (pipe(fds) != 0) {
            emitError(job, "pipe failed");
            totals_->jobs += 1;
            totals_->failed += 1;
            return;
        }
        const pid_t pid = fork();
        if (pid == 0) {
            // Worker: close the farm's other pipe ends so siblings see
            // EOF the moment their owner exits, then write the row to
            // our own pipe.
            close(fds[0]);
            for (const Child &c : children_)
                if (!c.done)
                    close(c.fd);
            dup2(fds[1], STDOUT_FILENO);
            close(fds[1]);
            int rc = 0;
            try {
                emitJob(app, job, boot_owed);
            } catch (const std::exception &e) {
                emitError(job, e.what());
                rc = 1;
            }
            std::fflush(stdout);
            _exit(rc);
        }
        close(fds[1]);
        if (pid < 0) {
            close(fds[0]);
            emitError(job, "fork failed");
            totals_->jobs += 1;
            totals_->failed += 1;
            return;
        }
        Child c;
        c.pid = pid;
        c.fd = fds[0];
        c.job = &job;
        c.start = std::chrono::steady_clock::now();
        children_.push_back(std::move(c));
        totals_->jobs += 1;
    }

    /** Wait for every outstanding worker and print its row. */
    void
    drain()
    {
        while (liveCount() > 0)
            reapOne();
        printReady();
    }

  private:
    struct Child
    {
        pid_t pid = -1;
        int fd = -1;
        const Job *job = nullptr;
        std::chrono::steady_clock::time_point start;
        std::string out;
        bool done = false;
        bool ok = false;
        bool printed = false;
    };

    std::size_t
    liveCount() const
    {
        std::size_t n = 0;
        for (const Child &c : children_)
            n += c.done ? 0 : 1;
        return n;
    }

    /** Block until any worker exits; record its output and duration. */
    void
    reapOne()
    {
        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid <= 0)
            return;
        for (Child &c : children_) {
            if (c.pid != pid || c.done)
                continue;
            char buf[4096];
            ssize_t n;
            while ((n = read(c.fd, buf, sizeof buf)) > 0)
                c.out.append(buf, static_cast<std::size_t>(n));
            close(c.fd);
            c.done = true;
            c.ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
            if (WIFSIGNALED(status))
                emitError(*c.job, "worker killed by signal");
            totals_->workSec += secondsSince(c.start);
            if (!c.ok)
                totals_->failed += 1;
            break;
        }
        printReady();
    }

    /** Emit finished rows in launch order; drop fully-printed heads. */
    void
    printReady()
    {
        std::size_t head = 0;
        for (Child &c : children_) {
            if (!c.done)
                break;
            if (!c.printed) {
                std::fwrite(c.out.data(), 1, c.out.size(), stdout);
                c.printed = true;
            }
            ++head;
        }
        children_.erase(children_.begin(),
                        children_.begin() + static_cast<long>(head));
    }

    unsigned window_;
    SweepTotals *totals_;
    std::vector<Child> children_;
};
#endif

#if JRUN_HAVE_FORK
using Farm = ForkFarm;
#else
using Farm = void;
#endif

/** Run one boot group: jobs sharing a machine image, spec order. */
void
runGroup(const std::vector<const Job *> &group, Farm *farm, Cycle warmup,
         SweepTotals *totals)
{
    const bool use_fork = farm != nullptr;
    PreparedApp app;
    try {
        app = bootJob(*group.front());
        const long group_warmup = group.front()->warmup >= 0
                                      ? group.front()->warmup
                                      : static_cast<long>(warmup);
        if (group_warmup > 0)
            app.machine->run(static_cast<Cycle>(group_warmup));
    } catch (const std::exception &e) {
#if JRUN_HAVE_FORK
        // Keep the stream in spec order: outstanding rows first.
        if (farm)
            farm->drain();
#endif
        for (const Job *job : group)
            emitError(*job, e.what());
        totals->failed += static_cast<unsigned>(group.size());
        return;
    }
    totals->bootSec += app.bootSeconds;

    // In checkpoint mode the image backs every job after the first
    // (which runs straight off the booted machine); a singleton group
    // never needs it.
    ckpt::Snapshot image;
    if (!use_fork && group.size() > 1)
        app.machine->save(image);

    double boot_owed = app.bootSeconds;
    bool first = true;
    for (const Job *job : group) {
#if JRUN_HAVE_FORK
        if (use_fork) {
            // Worker: a copy-on-write image of the booted machine.
            farm->launch(app, *job, boot_owed);
            boot_owed = 0;  // the image is paid for
            continue;
        }
#endif
        bool ok = true;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            // Each job starts from the boot-time checkpoint; the
            // previous job's completed run is discarded.
            std::string err;
            if (!first && !app.machine->restore(image, &err))
                throw std::runtime_error(err);
            emitJob(app, *job, boot_owed);
        } catch (const std::exception &e) {
            emitError(*job, e.what());
            ok = false;
        }
        totals->workSec += secondsSince(t0);
        totals->jobs += 1;
        if (!ok)
            totals->failed += 1;
        boot_owed = 0;  // the image is paid for
        first = false;
    }
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--spec FILE] [--no-fork] [--jobs N] [--warmup CYCLES] "
        "[--cold]\n"
        "  Reads a JSON-lines sweep spec (stdin without --spec), boots\n"
        "  each (workload, size) once, runs every job from that image\n"
        "  (fork by default, checkpoint restore with --no-fork), and\n"
        "  streams one RunResult JSON line per job plus a summary.\n"
        "  --jobs N keeps up to N forked workers running at once\n"
        "  (default 1 = sequential; rows still print in spec order).\n"
        "  --cold disables all sharing (boot + full run per job): the\n"
        "  baseline the farm modes are measured against.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *spec_path = nullptr;
    bool use_fork = true;
    bool cold = false;
    unsigned jobs_n = 1;
    Cycle warmup = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--spec") && i + 1 < argc)
            spec_path = argv[++i];
        else if (!std::strcmp(argv[i], "--no-fork"))
            use_fork = false;
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                return usage(argv[0]);
            jobs_n = static_cast<unsigned>(n);
        } else if (!std::strcmp(argv[i], "--warmup") && i + 1 < argc)
            warmup = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--cold"))
            cold = true;
        else
            return usage(argv[0]);
    }
    if (cold) {
        use_fork = false;
        warmup = 0;
    }
#if !JRUN_HAVE_FORK
    use_fork = false;  // in-process sequential fallback
#endif

    std::FILE *spec = spec_path ? std::fopen(spec_path, "r") : stdin;
    if (!spec) {
        std::fprintf(stderr, "cannot read spec %s\n", spec_path);
        return 2;
    }
    std::vector<Job> jobs;
    char line[1024];
    unsigned lineno = 0;
    while (std::fgets(line, sizeof line, spec)) {
        ++lineno;
        std::string text(line);
        if (text.find_first_not_of(" \t\r\n") == std::string::npos)
            continue;
        Job job;
        std::string err;
        if (!parseJob(text, &job, &err)) {
            std::fprintf(stderr, "spec line %u: %s\n", lineno, err.c_str());
            if (spec != stdin)
                std::fclose(spec);
            return 2;
        }
        jobs.push_back(std::move(job));
    }
    if (spec != stdin)
        std::fclose(spec);
    if (jobs.empty()) {
        std::fprintf(stderr, "empty sweep spec\n");
        return 2;
    }

    // Group by machine image, preserving first-appearance order. Cold
    // mode makes every job its own boot — the per-row cost the farm
    // is there to amortize.
    std::vector<std::pair<std::string, std::vector<const Job *>>> groups;
    std::map<std::string, std::size_t> group_at;
    for (Job &job : jobs) {
        if (cold) {
            job.warmup = 0;
            groups.push_back({job.bootKey(), {&job}});
            continue;
        }
        const std::string key = job.bootKey();
        const auto it = group_at.find(key);
        if (it == group_at.end()) {
            group_at.emplace(key, groups.size());
            groups.push_back({key, {&job}});
        } else {
            groups[it->second].second.push_back(&job);
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    SweepTotals totals;
#if JRUN_HAVE_FORK
    ForkFarm farm(jobs_n, &totals);
    Farm *farm_ptr = use_fork ? &farm : nullptr;
#else
    Farm *farm_ptr = nullptr;
#endif
    for (const auto &group : groups)
        runGroup(group.second, farm_ptr, warmup, &totals);
#if JRUN_HAVE_FORK
    if (farm_ptr)
        farm.drain();
#endif
    const double wall = secondsSince(t0);

    // speedup: summed worker time over wall clock — what running the
    // same workers one at a time would have cost, relative to now.
    std::printf("{\"summary\": true, \"jobs\": %u, \"failed\": %u, "
                "\"boots\": %zu, \"boot_sec\": %.6f, \"wall_sec\": %.6f, "
                "\"jobs_per_min\": %.2f, \"jobs_n\": %u, "
                "\"work_sec\": %.6f, \"speedup\": %.2f, \"mode\": \"%s\"}\n",
                totals.jobs, totals.failed, groups.size(), totals.bootSec,
                wall, wall > 0 ? totals.jobs * 60.0 / wall : 0.0, jobs_n,
                totals.workSec, wall > 0 ? totals.workSec / wall : 0.0,
                cold ? "cold" : use_fork ? "fork" : "checkpoint");
    return totals.failed == 0 ? 0 : 1;
}
