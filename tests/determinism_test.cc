/**
 * @file
 * Determinism regression for the threaded simulation kernel: a run with
 * N worker shards must be bit-identical to the serial kernel — same
 * cycle counts, same aggregate processor statistics, same network and
 * NI statistics — on both an open traffic workload (fig3 random
 * traffic) and a halting application (radix sort).
 *
 * Registered twice in ctest: the DeterminismSerial suite pins the
 * serial kernel (repeat-run reproducibility), the DeterminismThreaded
 * suite compares serial against a 4-shard run.
 */

#include <gtest/gtest.h>

#include "trace/counter_registry.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

namespace jmsim
{
namespace
{

using workloads::TrafficProbe;

/** Pin the thread override for a scope, restoring auto on exit. */
struct ThreadsGuard
{
    explicit ThreadsGuard(int threads) { workloads::setSimThreads(threads); }
    ~ThreadsGuard() { workloads::setSimThreads(-1); }
};

/** Pin the superblock override for a scope, restoring default (on). */
struct SuperblockGuard
{
    explicit SuperblockGuard(int on) { workloads::setSuperblock(on); }
    ~SuperblockGuard() { workloads::setSuperblock(-1); }
};

void
expectEqualProcStats(const ProcessorStats &a, const ProcessorStats &b)
{
    for (std::size_t c = 0; c < a.cyclesByClass.size(); ++c)
        EXPECT_EQ(a.cyclesByClass[c], b.cyclesByClass[c]) << "class " << c;
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.instructionsOs, b.instructionsOs);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.suspends, b.suspends);
    for (std::size_t f = 0; f < kNumFaults; ++f)
        EXPECT_EQ(a.faults[f], b.faults[f]) << "fault " << f;
    EXPECT_EQ(a.queueStallCycles, b.queueStallCycles);
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.segCacheHits, b.segCacheHits);
    EXPECT_EQ(a.segCacheMisses, b.segCacheMisses);
    EXPECT_EQ(a.xlateCacheHits, b.xlateCacheHits);
    EXPECT_EQ(a.xlateCacheMisses, b.xlateCacheMisses);
}

void
expectEqualProbes(const TrafficProbe &a, const TrafficProbe &b)
{
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.reason, b.run.reason);
    EXPECT_EQ(a.instructions, b.instructions);
    expectEqualProcStats(a.procStats, b.procStats);
    EXPECT_EQ(a.netStats.messagesDelivered, b.netStats.messagesDelivered);
    EXPECT_EQ(a.netStats.wordsDelivered, b.netStats.wordsDelivered);
    EXPECT_EQ(a.netStats.bisectionFlitsPos, b.netStats.bisectionFlitsPos);
    EXPECT_EQ(a.netStats.bisectionFlitsNeg, b.netStats.bisectionFlitsNeg);
    EXPECT_EQ(a.niStats.messagesSent, b.niStats.messagesSent);
    EXPECT_EQ(a.niStats.wordsSent, b.niStats.wordsSent);
    EXPECT_EQ(a.niStats.sendFullEvents, b.niStats.sendFullEvents);
    EXPECT_EQ(a.niStats.deliveryStallCycles, b.niStats.deliveryStallCycles);
    EXPECT_EQ(a.niStats.messagesBounced, b.niStats.messagesBounced);
    // Message-pool alloc/release counts are architectural (one alloc
    // per message created, one release per tail delivered) and so must
    // match across kernels. Recycle counts and capacity are not: they
    // depend on how the free lists were sharded.
    EXPECT_EQ(counterValue(a.run.counters, "pool.allocs"),
              counterValue(b.run.counters, "pool.allocs"));
    EXPECT_EQ(counterValue(a.run.counters, "pool.released"),
              counterValue(b.run.counters, "pool.released"));
}

void
expectEqualAppResults(const workloads::AppResult &a,
                      const workloads::AppResult &b)
{
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.answer, b.answer);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.instructionsOs, b.instructionsOs);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.xlates, b.xlates);
    EXPECT_EQ(a.xlateFaults, b.xlateFaults);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    for (std::size_t c = 0; c < a.cyclesByClass.size(); ++c)
        EXPECT_EQ(a.cyclesByClass[c], b.cyclesByClass[c]) << "class " << c;
    ASSERT_EQ(a.threadClasses.size(), b.threadClasses.size());
    for (std::size_t i = 0; i < a.threadClasses.size(); ++i) {
        EXPECT_EQ(a.threadClasses[i].name, b.threadClasses[i].name);
        EXPECT_EQ(a.threadClasses[i].threads, b.threadClasses[i].threads);
        EXPECT_EQ(a.threadClasses[i].instructions,
                  b.threadClasses[i].instructions);
        EXPECT_EQ(a.threadClasses[i].messageWords,
                  b.threadClasses[i].messageWords);
    }
}

TrafficProbe
trafficAt(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runFig3Traffic(nodes, 6, 40, window);
}

TrafficProbe
fig4At(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runFig4Load(nodes, window);
}

TEST(DeterminismSerial, RepeatRunsIdentical)
{
    const TrafficProbe first = trafficAt(64, 1, 2000);
    const TrafficProbe second = trafficAt(64, 1, 2000);
    EXPECT_GT(first.instructions, 0u);
    EXPECT_GT(first.netStats.messagesDelivered, 0u);
    expectEqualProbes(first, second);
}

// Golden architectural numbers captured from the fetch/switch
// interpreter before the predecoded dispatch-table rewrite, the
// translation caches, and the machine-wide idle skip. Those are pure
// host-side optimizations: any drift in these values is an
// architectural regression, not noise.
TEST(DeterminismSerial, TrafficMatchesPreDecodeGolden)
{
    const TrafficProbe p = trafficAt(64, 1, 2000);
    EXPECT_EQ(p.run.cycles, 2000u);
    EXPECT_EQ(p.instructions, 93827u);
    EXPECT_EQ(p.procStats.runCycles, 128012u);
    EXPECT_EQ(p.netStats.messagesDelivered, 618u);
}

TEST(DeterminismSerial, RadixMatchesPreDecodeGolden)
{
    workloads::RadixConfig c;
    c.nodes = 16;
    c.keys = 1024;
    ThreadsGuard guard(1);
    const auto r = workloads::runRadixSort(c);
    EXPECT_EQ(r.answer, 1024);
    EXPECT_EQ(r.runCycles, 61436u);
    EXPECT_EQ(r.instructions, 551751u);
    EXPECT_EQ(r.dispatches, 7378u);
}

// Superblock span execution is a host-side strategy, not a model
// change: with spans forced off (one op interpreted per cycle) the
// golden numbers above must still hold exactly, at both kernel
// configurations.
TEST(DeterminismSerial, TrafficGoldenHoldsWithSuperblocksOff)
{
    SuperblockGuard sb(0);
    const TrafficProbe p = trafficAt(64, 1, 2000);
    EXPECT_EQ(p.run.cycles, 2000u);
    EXPECT_EQ(p.instructions, 93827u);
    EXPECT_EQ(p.procStats.runCycles, 128012u);
    EXPECT_EQ(p.netStats.messagesDelivered, 618u);
}

TEST(DeterminismSerial, RadixGoldenHoldsWithSuperblocksOff)
{
    SuperblockGuard sb(0);
    workloads::RadixConfig c;
    c.nodes = 16;
    c.keys = 1024;
    ThreadsGuard guard(1);
    const auto r = workloads::runRadixSort(c);
    EXPECT_EQ(r.answer, 1024);
    EXPECT_EQ(r.runCycles, 61436u);
    EXPECT_EQ(r.instructions, 551751u);
    EXPECT_EQ(r.dispatches, 7378u);
}

TEST(DeterminismThreaded, RadixSuperblocksOffMatchesSerialOn)
{
    workloads::RadixConfig c;
    c.nodes = 16;
    c.keys = 1024;
    workloads::AppResult on, off;
    {
        ThreadsGuard guard(1);
        on = workloads::runRadixSort(c);
    }
    {
        SuperblockGuard sb(0);
        ThreadsGuard guard(4);
        off = workloads::runRadixSort(c);
    }
    EXPECT_EQ(on.answer, 1024);
    expectEqualAppResults(on, off);
}

TEST(DeterminismSerial, RadixRepeatRunsIdentical)
{
    workloads::RadixConfig c;
    c.nodes = 16;
    c.keys = 1024;
    ThreadsGuard guard(1);
    const auto first = workloads::runRadixSort(c);
    const auto second = workloads::runRadixSort(c);
    EXPECT_EQ(first.answer, 1024);
    expectEqualAppResults(first, second);
}

// Golden numbers for the fig4 saturation workload, captured from the
// shared_ptr-message / serial-fabric implementation immediately before
// the arena-backed network fabric landed. The fabric rewrite is a pure
// host-side optimization: any drift here is an architectural
// regression.
TEST(DeterminismSerial, Fig4LoadMatchesPreArenaGolden)
{
    const TrafficProbe p = fig4At(64, 1, 2500);
    EXPECT_EQ(p.run.cycles, 2500u);
    EXPECT_EQ(p.instructions, 100000u);
    EXPECT_EQ(p.procStats.runCycles, 160030u);
    EXPECT_EQ(p.netStats.messagesDelivered, 880u);
    EXPECT_EQ(p.netStats.wordsDelivered, 21120u);
    EXPECT_EQ(p.netStats.bisectionFlitsPos, 9980u);
    EXPECT_EQ(p.netStats.bisectionFlitsNeg, 9797u);
    EXPECT_EQ(p.niStats.messagesSent, 889u);
    EXPECT_EQ(p.niStats.wordsSent, 21336u);
    EXPECT_EQ(p.niStats.sendFullEvents, 1813u);
    EXPECT_EQ(p.niStats.deliveryStallCycles, 0u);
    // Steady-state zero allocation: under saturation the pool recycles
    // instead of growing — 880 deliveries fed 913 sends from a single
    // 256-slot slab, and the high water is exactly one in-flight
    // message per node.
    EXPECT_EQ(counterValue(p.run.counters, "pool.allocs"), 913u);
    EXPECT_EQ(counterValue(p.run.counters, "pool.released"), 880u);
    EXPECT_EQ(counterValue(p.run.counters, "pool.capacity"), 256u);
    EXPECT_EQ(counterValue(p.run.counters, "pool.live_high_water"), 64u);
}

TEST(DeterminismThreaded, Fig4LoadMatchesSerialAcrossThreadCounts)
{
    const TrafficProbe serial = fig4At(64, 1, 2500);
    const TrafficProbe two = fig4At(64, 2, 2500);
    const TrafficProbe four = fig4At(64, 4, 2500);
    EXPECT_GT(serial.netStats.messagesDelivered, 0u);
    expectEqualProbes(serial, two);
    expectEqualProbes(serial, four);
}

TEST(DeterminismThreaded, Fig4LoadMatchesSerialAt256Nodes)
{
    const TrafficProbe serial = fig4At(256, 1, 2500);
    const TrafficProbe four = fig4At(256, 4, 2500);
    EXPECT_EQ(serial.run.cycles, 2500u);
    EXPECT_EQ(serial.instructions, 356400u);
    EXPECT_EQ(serial.netStats.messagesDelivered, 2284u);
    expectEqualProbes(serial, four);
}

TEST(DeterminismThreaded, TrafficMatchesSerialAt256Nodes)
{
    const TrafficProbe serial = trafficAt(256, 1, 1500);
    const TrafficProbe threaded = trafficAt(256, 4, 1500);
    EXPECT_GT(serial.instructions, 0u);
    EXPECT_GT(serial.netStats.messagesDelivered, 0u);
    expectEqualProbes(serial, threaded);
}

TEST(DeterminismThreaded, RadixMatchesSerialAt256Nodes)
{
    workloads::RadixConfig c;
    c.nodes = 256;
    c.keys = 4096;
    workloads::AppResult serial, threaded;
    {
        ThreadsGuard guard(1);
        serial = workloads::runRadixSort(c);
    }
    {
        ThreadsGuard guard(4);
        threaded = workloads::runRadixSort(c);
    }
    EXPECT_EQ(serial.answer, 4096);
    // A halting workload: the threaded kernel must stop on the same
    // cycle with the same statistics.
    expectEqualAppResults(serial, threaded);
}

TEST(DeterminismThreaded, ShardCountDoesNotMatter)
{
    const TrafficProbe two = trafficAt(64, 2, 1200);
    const TrafficProbe seven = trafficAt(64, 7, 1200);
    expectEqualProbes(two, seven);
}

/** Pin the wake-scheduler override for a scope, restoring default. */
struct WakeGuard
{
    explicit WakeGuard(int on) { workloads::setWakeScheduler(on); }
    ~WakeGuard() { workloads::setWakeScheduler(-1); }
};

// Large-mesh determinism: the 1K (8x16x8) and 4K (16x16x16) meshes the
// event-driven kernel was built for, serial vs threaded and scheduler
// on vs off — all four configurations must produce one bit-identical
// run. Short windows keep these inside the ctest budget; the absolute
// goldens pin the numbers captured when the meshes first ran.
TEST(DeterminismThreaded, TrafficMatchesSerialAt1KNodes)
{
    const TrafficProbe serial = trafficAt(1024, 1, 600);
    const TrafficProbe two = trafficAt(1024, 2, 600);
    const TrafficProbe four = trafficAt(1024, 4, 600);
    EXPECT_EQ(serial.run.cycles, 600u);
    EXPECT_GT(serial.instructions, 0u);
    EXPECT_GT(serial.netStats.messagesDelivered, 0u);
    expectEqualProbes(serial, two);
    expectEqualProbes(serial, four);
}

TEST(DeterminismThreaded, TrafficSchedulerOffMatchesOnAt1KNodes)
{
    TrafficProbe on, off;
    {
        WakeGuard w(1);
        on = trafficAt(1024, 1, 600);
    }
    {
        WakeGuard w(0);
        off = trafficAt(1024, 4, 600);
    }
    expectEqualProbes(on, off);
}

TEST(DeterminismThreaded, TrafficMatchesSerialAt4KNodes)
{
    const TrafficProbe serial = trafficAt(4096, 1, 400);
    const TrafficProbe four = trafficAt(4096, 4, 400);
    TrafficProbe off;
    {
        WakeGuard w(0);
        off = trafficAt(4096, 2, 400);
    }
    EXPECT_EQ(serial.run.cycles, 400u);
    EXPECT_GT(serial.instructions, 0u);
    expectEqualProbes(serial, four);
    expectEqualProbes(serial, off);
    // The memory-audit acceptance bound: a 4096-node mesh stays far
    // under 1 GB of simulator state.
    EXPECT_GT(serial.run.footprintBytes, 0u);
    EXPECT_LT(serial.run.footprintBytes, 1ull << 30);
}

} // namespace
} // namespace jmsim
