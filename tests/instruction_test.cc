/** @file Encode/decode tests for the 18-bit instruction slots. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

Instruction
make(Opcode op, std::uint8_t rd = 0, std::uint8_t ra = 0,
     std::uint8_t rb = 0, std::int32_t imm = 0, std::uint8_t abase = 0)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.ra = ra;
    inst.rb = rb;
    inst.imm = imm;
    inst.abase = abase;
    return inst;
}

TEST(Instruction, RoundTripEveryFormat)
{
    const Instruction cases[] = {
        make(Opcode::Nop),
        make(Opcode::Jmp, reg::A2),
        make(Opcode::Move, reg::R1, reg::A3),
        make(Opcode::Add, reg::R0, reg::R1, reg::R2),
        make(Opcode::Addi, reg::R3, reg::R0, 0, -16),
        make(Opcode::Movei, reg::R2, 0, 0, 127),
        make(Opcode::Wtag, reg::R0, reg::R1, 0,
             static_cast<std::int32_t>(Tag::Cfut)),
        make(Opcode::Ld, reg::R2, 0, 0, 63, 1),
        make(Opcode::Ldx, reg::R2, 0, reg::R3, 0, 2),
        make(Opcode::St, reg::R1, 0, 0, 5, 3),
        make(Opcode::Addm, reg::R0, 0, 0, 7, 0),
        make(Opcode::Br, 0, 0, 0, -1024),
        make(Opcode::Bt, reg::R2, 0, 0, 127),
        make(Opcode::Send20e, reg::R1, reg::R2),
        make(Opcode::Getsp, reg::R0, 0, 0,
             static_cast<std::int32_t>(SpecialReg::Nnr)),
    };
    for (const Instruction &inst : cases) {
        const std::uint32_t bits = inst.encode();
        EXPECT_LT(bits, 1u << encoding::kSlotBits);
        const Instruction back = Instruction::decode(bits);
        EXPECT_EQ(back, inst) << inst.toString();
    }
}

TEST(Instruction, RejectsOutOfRangeFields)
{
    EXPECT_THROW(make(Opcode::Addi, 0, 0, 0, 16).encode(), FatalError);
    EXPECT_THROW(make(Opcode::Addi, 0, 0, 0, -17).encode(), FatalError);
    EXPECT_THROW(make(Opcode::Movei, 0, 0, 0, 128).encode(), FatalError);
    EXPECT_THROW(make(Opcode::Br, 0, 0, 0, 1024).encode(), FatalError);
    EXPECT_THROW(make(Opcode::Ld, 0, 0, 0, 64).encode(), FatalError);
}

TEST(Instruction, TwoSlotsPerWord)
{
    const std::uint32_t lo = make(Opcode::Add, 1, 2, 3).encode();
    const std::uint32_t hi = make(Opcode::Movei, 2, 0, 0, -5).encode();
    const std::uint64_t word = packInstrWord(lo, hi);
    EXPECT_LT(word, 1ull << 36);  // 36-bit instruction word
    EXPECT_EQ(unpackInstrSlot(word, 0), lo);
    EXPECT_EQ(unpackInstrSlot(word, 1), hi);
}

TEST(Instruction, DisassemblyMentionsOperands)
{
    const Instruction inst = make(Opcode::Add, reg::R0, reg::R1, reg::A3);
    EXPECT_EQ(inst.toString(), "ADD R0, R1, A3");
    EXPECT_EQ(make(Opcode::Ld, reg::R2, 0, 0, 7, 1).toString(),
              "LD R2, [A1+7]");
}

/** Property sweep: random-ish field combinations round-trip. */
class SlotSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SlotSweep, RandomizedRoundTrip)
{
    std::uint64_t x = 0x9e3779b9u + GetParam() * 2654435761ull;
    for (int i = 0; i < 200; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        Instruction inst;
        inst.op = Opcode::Add;  // RRR: all register fields live
        inst.rd = static_cast<std::uint8_t>(x & 7);
        inst.ra = static_cast<std::uint8_t>((x >> 3) & 7);
        inst.rb = static_cast<std::uint8_t>((x >> 6) & 7);
        const Instruction back = Instruction::decode(inst.encode());
        ASSERT_EQ(back, inst);
        Instruction imm;
        imm.op = Opcode::Lti;
        imm.rd = static_cast<std::uint8_t>((x >> 9) & 7);
        imm.ra = static_cast<std::uint8_t>((x >> 12) & 7);
        imm.imm = static_cast<std::int32_t>((x >> 15) & 31) - 16;
        ASSERT_EQ(Instruction::decode(imm.encode()), imm);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotSweep, ::testing::Range(0, 8));

/** Exhaustive property: every opcode round-trips with every legal
 *  combination of its format's field extremes. */
TEST(Instruction, EveryOpcodeRoundTripsAtFieldExtremes)
{
    using encoding::kOff11Max;
    using encoding::kOff11Min;
    using encoding::kOffset6Max;
    using encoding::kSimm5Max;
    using encoding::kSimm5Min;
    using encoding::kSimm8Max;
    using encoding::kSimm8Min;

    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        const Format fmt = opcodeInfo(op).format;
        std::vector<Instruction> variants;
        const auto add = [&](std::uint8_t rd, std::uint8_t ra,
                             std::uint8_t rb, std::int32_t imm,
                             std::uint8_t abase = 0) {
            Instruction inst;
            inst.op = op;
            inst.rd = rd;
            inst.ra = ra;
            inst.rb = rb;
            inst.imm = imm;
            inst.abase = abase;
            variants.push_back(inst);
        };
        switch (fmt) {
          case Format::None:
            add(0, 0, 0, 0);
            break;
          case Format::R:
          case Format::Wide:
            add(0, 0, 0, 0);
            add(7, 0, 0, 0);
            break;
          case Format::RR:
            add(0, 7, 0, 0);
            add(7, 0, 0, 0);
            break;
          case Format::RRR:
            add(0, 3, 7, 0);
            add(7, 7, 7, 0);
            break;
          case Format::RRI:
            add(0, 7, 0, kSimm5Min);
            add(7, 0, 0, kSimm5Max);
            break;
          case Format::RI:
            add(0, 0, 0, kSimm8Min);
            add(7, 0, 0, kSimm8Max);
            break;
          case Format::RIT:
            add(0, 7, 0, 0);
            add(7, 0, 0, 15);
            break;
          case Format::MemLoad:
          case Format::MemStore:
          case Format::MemOp:
            add(0, 0, 0, 0, 3);
            add(7, 0, 0, kOffset6Max, 0);
            break;
          case Format::MemLoadX:
          case Format::MemStoreX:
            add(0, 0, 3, 0, 2);
            add(7, 0, 7, 0, 1);
            break;
          case Format::Branch:
            add(0, 0, 0, kOff11Min);
            add(0, 0, 0, kOff11Max);
            break;
          case Format::CondBranch:
          case Format::CallF:
            add(0, 0, 0, kSimm8Min);
            add(7, 0, 0, kSimm8Max);
            break;
        }
        for (const Instruction &inst : variants) {
            const std::uint32_t bits = inst.encode();
            Instruction back = Instruction::decode(bits);
            back.literal = inst.literal;
            EXPECT_EQ(back, inst)
                << opcodeInfo(op).mnemonic << ": " << inst.toString();
            // Disassembly never crashes and names the mnemonic.
            EXPECT_NE(inst.toString().find(opcodeInfo(op).mnemonic),
                      std::string::npos);
        }
    }
}

} // namespace
} // namespace jmsim
