/**
 * @file
 * Tests for the event-driven fabric scheduler: nextEventCycle() is
 * exact on crafted in-flight configurations, a quiet fabric makes zero
 * router steps, the router-step accounting partitions routers x cycles
 * exactly, and — the hard invariant — a `--net-sched off` run is
 * bit-identical to an event-driven one on the serial and the sharded
 * kernel alike.
 */

#include <gtest/gtest.h>

#include "net/mesh_network.hh"
#include "trace/counter_registry.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

namespace jmsim
{
namespace
{

using workloads::TrafficProbe;

struct ThreadsGuard
{
    explicit ThreadsGuard(int threads) { workloads::setSimThreads(threads); }
    ~ThreadsGuard() { workloads::setSimThreads(-1); }
};

struct NetGuard
{
    explicit NetGuard(int on) { workloads::setNetScheduler(on); }
    ~NetGuard() { workloads::setNetScheduler(-1); }
};

// ---------------------------------------------------------------------
// Crafted in-flight configurations on a bare mesh.
// ---------------------------------------------------------------------

/** Sink that can refuse delivery (wormhole back-pressure at the
 *  delivery port) and counts tails it accepted. */
class GateSink : public DeliverSink
{
  public:
    bool refuse = false;
    MeshNetwork *net = nullptr;
    unsigned tails = 0;

    bool canAcceptFlit(const Flit &) override { return !refuse; }

    void
    acceptFlit(const Flit &flit, Cycle now) override
    {
        Message &msg = net->pool().get(flit.msg);
        if (msg.tailAt(flit.index)) {
            ++tails;
            msg.deliverCycle = now;
            net->noteMessageDelivered(msg);
        }
    }
};

struct BareMesh
{
    explicit BareMesh(unsigned nodes)
        : dims(MeshDims::forNodeCount(nodes)), net(dims),
          sinks(dims.nodes())
    {
        for (NodeId id = 0; id < dims.nodes(); ++id) {
            sinks[id].net = &net;
            net.setDeliverSink(id, &sinks[id]);
        }
    }

    void
    inject(NodeId src, NodeId dest, unsigned words, Cycle &now)
    {
        const MsgHandle h = net.pool().alloc();
        Message &msg = net.pool().get(h);
        msg.src = src;
        msg.dest = dest;
        msg.destAddr = net.dims().toCoord(dest);
        msg.priority = 0;
        MsgHeader hdr;
        hdr.handlerIp = 0;
        hdr.length = words;
        msg.words.push_back(hdr.encode());
        for (unsigned i = 1; i < words; ++i)
            msg.words.push_back(Word::makeInt(static_cast<std::int32_t>(i)));
        msg.finalized = true;
        for (std::uint32_t i = 0; i < msg.flitCount(); ++i) {
            unsigned spins = 0;
            while (!net.canInject(src, 0)) {
                net.step(now++);
                ASSERT_LT(++spins, 5000u)
                    << "injection port never freed — fabric wedged";
            }
            Flit f;
            f.msg = h;
            f.index = i;
            f.vn = 0;
            f.tail = msg.tailAt(i);
            net.injectFlit(src, f);
        }
    }

    /** Step until the fabric compacts back to quiet (bounded). */
    void
    drain(Cycle &now)
    {
        unsigned spins = 0;
        while (net.anyActive()) {
            net.step(now++);
            ASSERT_LT(++spins, 5000u) << "fabric never drained";
        }
    }

    MeshDims dims;
    MeshNetwork net;
    std::vector<GateSink> sinks;
};

TEST(FabricNextEvent, QuietMeshHasNoEvent)
{
    BareMesh m(64);
    EXPECT_FALSE(m.net.anyActive());
    EXPECT_EQ(m.net.nextEventCycle(0), kNoFabricEvent);
    EXPECT_EQ(m.net.nextEventCycle(12345), kNoFabricEvent);
}

TEST(FabricNextEvent, InFlightFlitMeansNextCycle)
{
    BareMesh m(64);
    Cycle now = 0;
    m.inject(0, 63, 4, now);
    // From injection until the tail retires, the fabric must report
    // work next cycle — a conservative verdict on any intermediate
    // state (flit in a FIFO, in a channel register, or parked on the
    // back-pressure retry list) would let the machine skip a live
    // cycle.
    ASSERT_TRUE(m.net.anyActive());
    unsigned live_cycles = 0;
    while (m.sinks[63].tails == 0) {
        ASSERT_EQ(m.net.nextEventCycle(now), now + 1)
            << "fabric with in-flight flits must have an event next cycle";
        m.net.step(now++);
        ASSERT_LT(++live_cycles, 200u);
    }
    // Drain: after the tail is consumed the mesh compacts back to
    // quiet and the verdict flips to "no event".
    m.drain(now);
    EXPECT_EQ(m.net.nextEventCycle(now), kNoFabricEvent);
    EXPECT_FALSE(m.net.busy());
}

TEST(FabricNextEvent, BackPressuredFlitsKeepTheFabricLive)
{
    BareMesh m(64);
    Cycle now = 0;
    m.sinks[63].refuse = true;
    // Two worms to a refusing sink on disjoint approach ports: the
    // destination's input FIFOs fill, commits get refused (the
    // retry-list path), and the worms block in the fabric. The fabric
    // must stay live the whole time — a blocked worm is work waiting
    // on the sink. (Worms are kept short enough for the fabric's
    // buffering to absorb them whole; injection itself must not wedge.)
    m.inject(0, 63, 4, now);   // arrives on the +z port after 9 hops
    m.inject(62, 63, 2, now);  // arrives on the +x port after 1 hop
    for (unsigned i = 0; i < 100; ++i) {
        ASSERT_EQ(m.net.nextEventCycle(now), now + 1)
            << "back-pressured fabric must not report quiet";
        m.net.step(now++);
    }
    EXPECT_EQ(m.sinks[63].tails, 0u);
    m.sinks[63].refuse = false;
    m.drain(now);
    EXPECT_EQ(m.sinks[63].tails, 2u);
    EXPECT_EQ(m.net.nextEventCycle(now), kNoFabricEvent);
}

TEST(FabricNextEvent, LegacyModeTracksTheSameActivity)
{
    // The activity tracking (and so the next-event verdict) is shared
    // state, not an event-mode feature: the legacy scan keeps it too.
    BareMesh m(64);
    m.net.setEventDriven(false);
    Cycle now = 0;
    EXPECT_EQ(m.net.nextEventCycle(0), kNoFabricEvent);
    m.inject(0, 9, 4, now);
    EXPECT_EQ(m.net.nextEventCycle(now), now + 1);
    m.drain(now);
    EXPECT_EQ(m.sinks[9].tails, 1u);
    EXPECT_EQ(m.net.nextEventCycle(now), kNoFabricEvent);
}

// ---------------------------------------------------------------------
// Machine-level bit-identity: --net-sched off vs on.
// ---------------------------------------------------------------------

TrafficProbe
fig3At(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runFig3Traffic(nodes, 6, 40, window);
}

TrafficProbe
fig4At(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runFig4Load(nodes, window);
}

TrafficProbe
ringAt(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runSparseActivity(nodes, 8, window);
}

void
expectIdenticalRuns(const TrafficProbe &a, const TrafficProbe &b)
{
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.reason, b.run.reason);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.procStats.runCycles, b.procStats.runCycles);
    EXPECT_EQ(a.procStats.idleCycles, b.procStats.idleCycles);
    EXPECT_EQ(a.procStats.dispatches, b.procStats.dispatches);
    EXPECT_EQ(a.netStats.messagesDelivered, b.netStats.messagesDelivered);
    EXPECT_EQ(a.netStats.wordsDelivered, b.netStats.wordsDelivered);
    EXPECT_EQ(a.netStats.bisectionFlitsPos, b.netStats.bisectionFlitsPos);
    EXPECT_EQ(a.netStats.bisectionFlitsNeg, b.netStats.bisectionFlitsNeg);
    EXPECT_EQ(a.niStats.messagesSent, b.niStats.messagesSent);
    EXPECT_EQ(a.niStats.sendFullEvents, b.niStats.sendFullEvents);
}

TEST(NetScheduler, Fig3OffMatchesOnSerial)
{
    TrafficProbe on, off;
    {
        NetGuard g(1);
        on = fig3At(64, 1, 2000);
    }
    {
        NetGuard g(0);
        off = fig3At(64, 1, 2000);
    }
    EXPECT_GT(on.instructions, 0u);
    expectIdenticalRuns(on, off);
    // The pre-scheduler golden (see determinism_test.cc) holds both
    // ways: the fabric scheduler is a host-side strategy, not a model
    // change.
    EXPECT_EQ(on.run.cycles, 2000u);
    EXPECT_EQ(on.instructions, 93827u);
    EXPECT_EQ(on.netStats.messagesDelivered, 618u);
}

TEST(NetScheduler, Fig3OffMatchesOnThreaded)
{
    TrafficProbe on2, off2, on4, off4;
    {
        NetGuard g(1);
        on2 = fig3At(64, 2, 2000);
        on4 = fig3At(64, 4, 2000);
    }
    {
        NetGuard g(0);
        off2 = fig3At(64, 2, 2000);
        off4 = fig3At(64, 4, 2000);
    }
    expectIdenticalRuns(on2, off2);
    expectIdenticalRuns(on4, off4);
    expectIdenticalRuns(on2, on4);
}

TEST(NetScheduler, Fig4SaturationOffMatchesOnBothKernels)
{
    TrafficProbe on_s, off_s, on_t, off_t;
    {
        NetGuard g(1);
        on_s = fig4At(64, 1, 2500);
        on_t = fig4At(64, 4, 2500);
    }
    {
        NetGuard g(0);
        off_s = fig4At(64, 1, 2500);
        off_t = fig4At(64, 4, 2500);
    }
    expectIdenticalRuns(on_s, off_s);
    expectIdenticalRuns(on_s, on_t);
    expectIdenticalRuns(on_s, off_t);
    // Saturation golden (see determinism_test.cc).
    EXPECT_EQ(on_s.instructions, 100000u);
    EXPECT_EQ(on_s.netStats.messagesDelivered, 880u);
    EXPECT_EQ(on_s.netStats.wordsDelivered, 21120u);
}

TEST(NetScheduler, SparseRingOffMatchesOnBothKernels)
{
    // The heterogeneous-activity shape of the BENCH fabric_quiet A/B
    // row, and the workload whose serial runs live on the fused fast
    // path (stepFast) nearly every ticked cycle.
    TrafficProbe on_s, off_s, on_t;
    {
        NetGuard g(1);
        on_s = ringAt(256, 1, 10000);
        on_t = ringAt(256, 4, 10000);
    }
    {
        NetGuard g(0);
        off_s = ringAt(256, 1, 10000);
    }
    EXPECT_GT(on_s.netStats.messagesDelivered, 0u);
    expectIdenticalRuns(on_s, off_s);
    expectIdenticalRuns(on_s, on_t);
}

// ---------------------------------------------------------------------
// Router-step accounting.
// ---------------------------------------------------------------------

/** The partition invariant: every (router, cycle) pair was either
 *  visited or skipped, with nothing counted twice. */
void
expectExactStepAccounting(const TrafficProbe &p, unsigned nodes)
{
    const std::uint64_t steps =
        counterValue(p.run.counters, "net.router_steps");
    const std::uint64_t skipped =
        counterValue(p.run.counters, "net.skipped_router_steps");
    EXPECT_EQ(steps + skipped,
              static_cast<std::uint64_t>(nodes) * p.run.cycles);
}

TEST(NetScheduler, RouterStepInvariantExactSerial)
{
    NetGuard g(1);
    const TrafficProbe fig4 = fig4At(64, 1, 2500);
    expectExactStepAccounting(fig4, 64);
    EXPECT_GT(counterValue(fig4.run.counters, "net.router_steps"), 0u);

    // High-grain traffic: long compute phases, so most router steps
    // are skipped and whole fabric-quiet cycles are event-skipped.
    const TrafficProbe sparse = [&] {
        ThreadsGuard guard(1);
        return workloads::runFig3Traffic(64, 6, 2000, 4000);
    }();
    expectExactStepAccounting(sparse, 64);
    const std::uint64_t steps =
        counterValue(sparse.run.counters, "net.router_steps");
    const std::uint64_t skipped =
        counterValue(sparse.run.counters, "net.skipped_router_steps");
    EXPECT_GT(skipped, steps)
        << "high-grain traffic should skip more router steps than it makes";
    EXPECT_GT(counterValue(sparse.run.counters, "net.event_skipped_cycles"),
              0u);
}

TEST(NetScheduler, RouterStepInvariantExactThreaded)
{
    NetGuard g(1);
    expectExactStepAccounting(fig4At(64, 4, 2500), 64);
    expectExactStepAccounting(fig3At(64, 2, 2000), 64);
}

TEST(NetScheduler, RouterStepInvariantHoldsWithSchedulerOff)
{
    // The legacy path keeps the same books: steps it makes are counted,
    // cycles its anyActive() early-out skips are event-skipped.
    NetGuard g(0);
    expectExactStepAccounting(fig4At(64, 1, 2500), 64);
    expectExactStepAccounting(fig3At(64, 1, 2000), 64);
}

TEST(NetScheduler, FabricQuietCostsZeroRouterSteps)
{
    // A machine whose nodes never send: every fabric cycle is quiet,
    // so the mesh makes no router steps at all — the step cost tracks
    // in-flight flits, not mesh size.
    ThreadsGuard guard(1);
    auto m = workloads::buildMachine(
        64, "noop.jasm", "boot:\n    CALL A2, jos_init\n    SUSPEND\n");
    const RunResult r = m->runFor(20000);
    EXPECT_EQ(r.reason, StopReason::Quiescent);
    EXPECT_EQ(m->counters().value("net.router_steps"), 0u);
    EXPECT_EQ(m->counters().value("net.skipped_router_steps"),
              64u * m->now());
}

} // namespace
} // namespace jmsim
