/**
 * @file
 * jtrace subsystem tests: ring wrap/drop accounting, canonical
 * collect() ordering, the counter registry, the Chrome trace-event
 * writer/parser (golden string + file round-trip), bit-identical
 * serial vs sharded trace streams, and the latency reconstruction
 * guarantee (summarizeTrace vs the fabric's own histogram).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/chrome_trace.hh"
#include "trace/counter_registry.hh"
#include "trace/tracer.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

TraceEvent
makeEvent(Cycle cycle, std::uint32_t node, TraceKind kind,
          std::uint8_t arg8, std::uint64_t a0, std::uint64_t a1)
{
    TraceEvent ev;
    ev.cycle = cycle;
    ev.node = node;
    ev.kind = kind;
    ev.arg8 = arg8;
    ev.a0 = a0;
    ev.a1 = a1;
    return ev;
}

/** One traced fig3 run with the requested worker count. */
TrafficProbe
tracedRun(int threads, Cycle window)
{
    TraceConfig tc;
    tc.enabled = true;
    setSimThreads(threads);
    setTraceConfig(tc);
    TrafficProbe p = runFig3Traffic(64, 6, 40, window);
    clearTraceConfig();
    setSimThreads(-1);
    return p;
}

} // namespace

TEST(TraceRingTest, WrapOverwritesOldestAndCountsDrops)
{
    TraceRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (Cycle c = 0; c < 10; ++c)
        ring.push(makeEvent(c, 1, TraceKind::Dispatch, 0, c, 0));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);

    std::vector<TraceEvent> out;
    ring.appendTo(out);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].cycle, 6 + i) << "slot " << i;

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    out.clear();
    ring.appendTo(out);
    EXPECT_TRUE(out.empty());
}

TEST(TracerTest, CollectSortsByCyclePhaseNode)
{
    TraceConfig tc;
    tc.enabled = true;
    Tracer tracer(tc);
    // Recorded deliberately out of canonical order. MsgRecv is a
    // move-phase (1) kind, Dispatch a node-phase (0) kind, IdleSkip a
    // kernel (2) kind.
    tracer.record(makeEvent(5, 9, TraceKind::MsgRecv, 0, 1, 0));
    tracer.record(makeEvent(5, 2, TraceKind::Dispatch, 0, 2, 0));
    tracer.record(makeEvent(3, 7, TraceKind::IdleSkip, 0, 3, 0));
    tracer.record(makeEvent(3, 1, TraceKind::MsgSend, 0, 4, 0));
    tracer.record(makeEvent(5, 2, TraceKind::MsgSend, 0, 5, 0));

    const std::vector<TraceEvent> got = tracer.collect();
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got[0].a0, 4u);  // cycle 3 phase 0
    EXPECT_EQ(got[1].a0, 3u);  // cycle 3 phase 2
    EXPECT_EQ(got[2].a0, 2u);  // cycle 5 phase 0 node 2
    EXPECT_EQ(got[3].a0, 5u);  // cycle 5 phase 0 node 2 (stable)
    EXPECT_EQ(got[4].a0, 1u);  // cycle 5 phase 1
    // collect() is non-destructive.
    EXPECT_EQ(tracer.collect().size(), 5u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, CategoryMaskFiltersKinds)
{
    TraceConfig tc;
    tc.enabled = true;
    tc.categories = kTraceCatNet;
    Tracer tracer(tc);
    EXPECT_TRUE(tracer.wants(TraceKind::FlitForward));
    EXPECT_TRUE(tracer.wants(TraceKind::FlitBlock));
    EXPECT_FALSE(tracer.wants(TraceKind::Dispatch));
    EXPECT_FALSE(tracer.wants(TraceKind::MsgSend));
    EXPECT_FALSE(tracer.wants(TraceKind::IdleSkip));
}

TEST(TraceKindTest, NamesRoundTrip)
{
    for (unsigned k = 0; k < kNumTraceKinds; ++k) {
        const TraceKind kind = static_cast<TraceKind>(k);
        TraceKind back;
        ASSERT_TRUE(traceKindFromName(traceKindName(kind), back));
        EXPECT_EQ(back, kind);
    }
    TraceKind out;
    EXPECT_FALSE(traceKindFromName("no.such.kind", out));

    std::uint32_t mask = 0;
    ASSERT_TRUE(parseTraceCategories("proc,net", mask));
    EXPECT_EQ(mask, kTraceCatProc | kTraceCatNet);
    ASSERT_TRUE(parseTraceCategories("all", mask));
    EXPECT_EQ(mask, kTraceCatAll);
    EXPECT_FALSE(parseTraceCategories("proc,bogus", mask));
}

TEST(CounterRegistryTest, SumsSourcesAndSnapshots)
{
    CounterRegistry reg;
    std::uint64_t a = 3, b = 4;
    reg.addCounter("x.same", &a);
    reg.addCounter("x.same", &b);
    reg.addCounter("a.callback", [] { return std::uint64_t{10}; });
    EXPECT_TRUE(reg.hasCounter("x.same"));
    EXPECT_FALSE(reg.hasCounter("x.other"));
    EXPECT_EQ(reg.value("x.same"), 7u);
    a = 30;
    EXPECT_EQ(reg.value("x.same"), 34u);  // pull model: live values

    const std::vector<CounterSample> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "a.callback");  // name-sorted
    EXPECT_EQ(snap[0].value, 10u);
    EXPECT_EQ(snap[1].name, "x.same");
    EXPECT_EQ(snap[1].value, 34u);
    EXPECT_EQ(counterValue(snap, "x.same"), 34u);
    EXPECT_EQ(counterValue(snap, "missing"), 0u);

    reg.addHistogram("h", [] {
        Histogram h{1, 8};
        h.add(2);
        h.add(4);
        return h;
    });
    const Histogram h = reg.histogram("h");
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), 4u);
}

TEST(ChromeTraceTest, GoldenJson)
{
    const std::vector<TraceEvent> events = {
        makeEvent(10, 3, TraceKind::Dispatch, 1, 100, 2),
        makeEvent(11, 3, TraceKind::QueueDepth, 0, 5, 1),
        makeEvent(20, kMachineTrack, TraceKind::IdleSkip, 0, 32, 0),
    };
    const char *golden =
        R"({"displayTimeUnit":"ms","otherData":{"droppedEvents":"7","cyclesPerUs":"1"},"traceEvents":[
{"name":"process_name","ph":"M","pid":3,"args":{"name":"node 3"}},
{"name":"thread_name","ph":"M","pid":3,"tid":0,"args":{"name":"proc"}},
{"name":"thread_name","ph":"M","pid":3,"tid":1,"args":{"name":"ni"}},
{"name":"thread_name","ph":"M","pid":3,"tid":2,"args":{"name":"router"}},
{"name":"process_name","ph":"M","pid":4294967295,"args":{"name":"machine"}},
{"name":"dispatch","ph":"i","ts":10,"dur":0,"pid":3,"tid":0,"args":{"k":0,"v":1,"a0":100,"a1":2}},
{"name":"queue.p0","ph":"C","ts":11,"pid":3,"args":{"words":5,"msgs":1}},
{"name":"idle.skip","ph":"X","ts":20,"dur":12,"pid":4294967295,"tid":0,"args":{"k":9,"v":0,"a0":32,"a1":0}}
]}
)";
    EXPECT_EQ(chromeTraceJson(events, 7), golden);
}

TEST(ChromeTraceTest, FileRoundTrip)
{
    const std::vector<TraceEvent> events = {
        makeEvent(10, 3, TraceKind::Dispatch, 1, 100, 2),
        makeEvent(11, 3, TraceKind::MsgSend, 0,
                  42, (std::uint64_t{17} << 32) | 6),
        makeEvent(15, 17, TraceKind::FlitForward, 4,
                  (std::uint64_t{3} << 32) | 42, 0),
        makeEvent(18, 17, TraceKind::MsgRecv, 0,
                  (std::uint64_t{3} << 32) | 42, 7),
        makeEvent(18, 17, TraceKind::QueueDepth, 1, 9, 2),
        makeEvent(20, kMachineTrack, TraceKind::IdleSkip, 0, 32, 0),
    };
    const std::string path =
        testing::TempDir() + "jmsim_trace_roundtrip.json";
    ASSERT_TRUE(writeChromeTrace(path, events, 5));

    ParsedTrace back;
    ASSERT_TRUE(parseChromeTrace(path, back));
    std::remove(path.c_str());
    EXPECT_EQ(back.dropped, 5u);
    ASSERT_EQ(back.events.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_TRUE(back.events[i] == events[i]) << "event " << i;
}

TEST(ChromeTraceTest, ParseRejectsGarbage)
{
    const std::string path = testing::TempDir() + "jmsim_trace_bad.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace\n", f);
    std::fclose(f);
    ParsedTrace out;
    EXPECT_FALSE(parseChromeTrace(path, out));
    std::remove(path.c_str());
    EXPECT_FALSE(parseChromeTrace(path, out));  // missing file
}

TEST(TraceSummaryTest, MatchesSendsToRecvs)
{
    // node 1 sends seq 1 and 2; only seq 1 is delivered (to node 2);
    // one recv arrives with no matching send.
    const std::vector<TraceEvent> events = {
        makeEvent(5, 1, TraceKind::MsgSend, 0, 1,
                  (std::uint64_t{2} << 32) | 6),
        makeEvent(6, 1, TraceKind::MsgSend, 0, 2,
                  (std::uint64_t{2} << 32) | 6),
        makeEvent(12, 2, TraceKind::MsgRecv, 0,
                  (std::uint64_t{1} << 32) | 1, 7),
        makeEvent(14, 2, TraceKind::MsgRecv, 0,
                  (std::uint64_t{9} << 32) | 8, 3),
        makeEvent(30, kMachineTrack, TraceKind::IdleSkip, 0, 42, 0),
    };
    const TraceSummary s = summarizeTrace(events);
    EXPECT_EQ(s.firstCycle, 5u);
    EXPECT_EQ(s.lastCycle, 30u);
    EXPECT_EQ(s.countByKind[static_cast<unsigned>(TraceKind::MsgSend)], 2u);
    EXPECT_EQ(s.countByKind[static_cast<unsigned>(TraceKind::MsgRecv)], 2u);
    EXPECT_EQ(s.matchedMessages, 1u);
    EXPECT_EQ(s.unmatchedSends, 1u);
    EXPECT_EQ(s.unmatchedRecvs, 1u);
    EXPECT_EQ(s.latency.count(), 2u);
    EXPECT_EQ(s.latency.max(), 7u);
    EXPECT_EQ(s.idleSkippedCycles, 12u);
}

TEST(TraceDeterminism, SerialAndShardedEmitIdenticalStreams)
{
    const TrafficProbe serial = tracedRun(1, 1200);
    ASSERT_EQ(serial.traceDropped, 0u);
    ASSERT_FALSE(serial.trace.empty());
    // The run must actually exercise the interesting kinds.
    const TraceSummary s = summarizeTrace(serial.trace);
    EXPECT_GT(s.countByKind[static_cast<unsigned>(TraceKind::MsgSend)], 0u);
    EXPECT_GT(s.countByKind[static_cast<unsigned>(TraceKind::MsgRecv)], 0u);
    EXPECT_GT(s.countByKind[static_cast<unsigned>(TraceKind::Dispatch)], 0u);
    EXPECT_GT(
        s.countByKind[static_cast<unsigned>(TraceKind::FlitForward)], 0u);

    for (int threads : {4, 7}) {
        const TrafficProbe sharded = tracedRun(threads, 1200);
        ASSERT_EQ(sharded.traceDropped, 0u) << "threads=" << threads;
        ASSERT_EQ(sharded.trace.size(), serial.trace.size())
            << "threads=" << threads;
        std::size_t first_mismatch = serial.trace.size();
        for (std::size_t i = 0; i < serial.trace.size(); ++i) {
            if (!(sharded.trace[i] == serial.trace[i])) {
                first_mismatch = i;
                break;
            }
        }
        EXPECT_EQ(first_mismatch, serial.trace.size())
            << "threads=" << threads << ": streams diverge at event "
            << first_mismatch;
    }
}

TEST(TraceLatency, SummaryMatchesFabricHistogram)
{
    const TrafficProbe p = tracedRun(1, 2000);
    ASSERT_EQ(p.traceDropped, 0u);
    const TraceSummary s = summarizeTrace(p.trace);

    // Every delivery emits exactly one msg.recv, and the summarizer's
    // histogram shares the fabric's {1-cycle, 1024-bucket} geometry, so
    // the reconstruction is exact (the PR's acceptance bound is 1 cycle).
    EXPECT_EQ(s.countByKind[static_cast<unsigned>(TraceKind::MsgRecv)],
              p.netStats.messagesDelivered);
    ASSERT_GT(p.netLatency.count(), 0u);
    ASSERT_EQ(s.latency.count(), p.netLatency.count());
    EXPECT_NEAR(s.latency.mean(), p.netLatency.mean(), 1.0);
    for (const double q : {0.50, 0.90, 0.99}) {
        EXPECT_NEAR(static_cast<double>(s.latency.percentile(q)),
                    static_cast<double>(p.netLatency.percentile(q)), 1.0)
            << "quantile " << q;
    }
    EXPECT_NEAR(static_cast<double>(s.latency.max()),
                static_cast<double>(p.netLatency.max()), 1.0);
    EXPECT_EQ(s.unmatchedRecvs, 0u);
}
