/**
 * @file
 * Unit tests for the event-driven wake scheduler: parked nodes cost
 * zero step calls, the stepped/skipped cycle accounting is exact, the
 * footprint audit reports sane numbers, and — the hard invariant — a
 * scheduler-off run is bit-identical to a scheduler-on one at every
 * kernel configuration.
 */

#include <gtest/gtest.h>

#include "trace/counter_registry.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

namespace jmsim
{
namespace
{

using workloads::TrafficProbe;

struct ThreadsGuard
{
    explicit ThreadsGuard(int threads) { workloads::setSimThreads(threads); }
    ~ThreadsGuard() { workloads::setSimThreads(-1); }
};

struct WakeGuard
{
    explicit WakeGuard(int on) { workloads::setWakeScheduler(on); }
    ~WakeGuard() { workloads::setWakeScheduler(-1); }
};

TrafficProbe
trafficAt(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runFig3Traffic(nodes, 6, 40, window);
}

/** High-grain traffic: long compute phases between sends, so almost
 *  every node spends almost every cycle parked mid-instruction. */
TrafficProbe
sparseTrafficAt(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runFig3Traffic(nodes, 6, 2000, window);
}

void
expectIdenticalRuns(const TrafficProbe &a, const TrafficProbe &b)
{
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.reason, b.run.reason);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.procStats.runCycles, b.procStats.runCycles);
    EXPECT_EQ(a.procStats.idleCycles, b.procStats.idleCycles);
    EXPECT_EQ(a.procStats.dispatches, b.procStats.dispatches);
    EXPECT_EQ(a.netStats.messagesDelivered, b.netStats.messagesDelivered);
    EXPECT_EQ(a.netStats.wordsDelivered, b.netStats.wordsDelivered);
    EXPECT_EQ(a.niStats.messagesSent, b.niStats.messagesSent);
    EXPECT_EQ(a.niStats.sendFullEvents, b.niStats.sendFullEvents);
}

// The scheduler may only skip cycles/nodes that provably step to a
// no-op, so turning it off must not change a single architectural
// number — at either kernel.
TEST(WakeScheduler, OffMatchesOnSerial)
{
    TrafficProbe on, off;
    {
        WakeGuard w(1);
        on = trafficAt(64, 1, 2000);
    }
    {
        WakeGuard w(0);
        off = trafficAt(64, 1, 2000);
    }
    EXPECT_GT(on.instructions, 0u);
    expectIdenticalRuns(on, off);
    // The pre-scheduler golden (see determinism_test.cc) holds both ways.
    EXPECT_EQ(on.run.cycles, 2000u);
    EXPECT_EQ(on.instructions, 93827u);
    EXPECT_EQ(on.procStats.runCycles, 128012u);
    EXPECT_EQ(on.netStats.messagesDelivered, 618u);
}

TEST(WakeScheduler, OffMatchesOnThreaded)
{
    TrafficProbe on, off;
    {
        WakeGuard w(1);
        on = trafficAt(64, 4, 2000);
    }
    {
        WakeGuard w(0);
        off = trafficAt(64, 4, 2000);
    }
    expectIdenticalRuns(on, off);
}

TEST(WakeScheduler, SparseWorkloadOffMatchesOnBothKernels)
{
    TrafficProbe on_s, off_s, on_t;
    {
        WakeGuard w(1);
        on_s = sparseTrafficAt(64, 1, 4000);
        on_t = sparseTrafficAt(64, 4, 4000);
    }
    {
        WakeGuard w(0);
        off_s = sparseTrafficAt(64, 1, 4000);
    }
    EXPECT_GT(on_s.instructions, 0u);
    expectIdenticalRuns(on_s, off_s);
    expectIdenticalRuns(on_s, on_t);
}

/** The BENCH sparse-activity workload: a token ring over 8 hot nodes
 *  while every other node poll-spins (see runSparseActivity). */
TrafficProbe
ringAt(unsigned nodes, int threads, Cycle window)
{
    ThreadsGuard guard(threads);
    return workloads::runSparseActivity(nodes, 8, window);
}

// The heterogeneous-activity shape the scheduler's BENCH row measures:
// the hot ring keeps the fabric busy while thousands of poll-spinning
// nodes park. Turning the scheduler off (or sharding the kernel) must
// not move a single number.
TEST(WakeScheduler, SparseRingOffMatchesOnBothKernels)
{
    TrafficProbe on_s, off_s, on_t;
    {
        WakeGuard w(1);
        on_s = ringAt(256, 1, 10000);
        on_t = ringAt(256, 4, 10000);
    }
    {
        WakeGuard w(0);
        off_s = ringAt(256, 1, 10000);
    }
    EXPECT_GT(on_s.instructions, 0u);
    EXPECT_GT(on_s.netStats.messagesDelivered, 0u);
    expectIdenticalRuns(on_s, off_s);
    expectIdenticalRuns(on_s, on_t);
}

// On the ring workload nearly every node is parked nearly every ticked
// cycle, so avoided step calls must dwarf the made ones.
TEST(WakeScheduler, SparseRingParksNodes)
{
    WakeGuard w(1);
    const TrafficProbe p = ringAt(256, 1, 10000);
    const std::uint64_t steps =
        counterValue(p.run.counters, "kernel.node_steps");
    const std::uint64_t skipped =
        counterValue(p.run.counters, "kernel.skipped_node_steps");
    EXPECT_GT(steps, 0u);
    EXPECT_GT(skipped, 10 * steps)
        << "the poll-spinning majority should park, not step";
    EXPECT_EQ(p.run.profile.steppedCycles + p.run.profile.skippedCycles,
              p.run.cycles);
}

// Stepped and skipped cycles partition the run exactly: every cycle of
// a fresh run was either ticked by the kernel or jumped by idle-skip.
TEST(WakeScheduler, SteppedPlusSkippedSumToCycles)
{
    const TrafficProbe p = sparseTrafficAt(64, 1, 4000);
    EXPECT_EQ(p.run.profile.steppedCycles + p.run.profile.skippedCycles,
              p.run.cycles);
    // The sparse workload actually exercises the skip path.
    EXPECT_GT(p.run.profile.skippedCycles, 0u);
}

TEST(WakeScheduler, SteppedPlusSkippedSumToCyclesThreaded)
{
    const TrafficProbe p = sparseTrafficAt(64, 4, 4000);
    EXPECT_EQ(p.run.profile.steppedCycles + p.run.profile.skippedCycles,
              p.run.cycles);
}

// On the high-grain workload the scheduler parks compute-phase nodes,
// so the kernel must report far fewer step calls than a tick-everything
// loop would make — and account every avoided call.
TEST(WakeScheduler, SparseWorkloadParksNodes)
{
    WakeGuard w(1);
    const TrafficProbe p = sparseTrafficAt(64, 1, 4000);
    const std::uint64_t steps =
        counterValue(p.run.counters, "kernel.node_steps");
    const std::uint64_t skipped =
        counterValue(p.run.counters, "kernel.skipped_node_steps");
    EXPECT_GT(steps, 0u);
    EXPECT_GT(skipped, steps)
        << "high-grain traffic should skip more node steps than it makes";
}

// An all-idle machine must cost zero node steps per cycle: after a
// traffic window every node has drained, and running the quiescent
// mesh further makes no step calls at all.
TEST(WakeScheduler, QuiescentMeshDoesZeroNodeSteps)
{
    ThreadsGuard guard(1);
    auto m = workloads::buildMachine(
        16, "noop.jasm", "boot:\n    CALL A2, jos_init\n    SUSPEND\n");
    const RunResult first = m->runFor(20000);
    EXPECT_EQ(first.reason, StopReason::Quiescent);
    EXPECT_EQ(m->parkedNodes(), 0u);
    const std::uint64_t steps_after_drain =
        m->counters().value("kernel.node_steps");
    const RunResult more = m->runFor(100);
    EXPECT_EQ(more.reason, StopReason::Quiescent);
    EXPECT_EQ(m->counters().value("kernel.node_steps"), steps_after_drain)
        << "stepping a quiescent mesh must not call node.step";
}

// The footprint audit: a small machine reports a small, non-zero
// number, and the count responds to real allocations (a bigger mesh
// costs more).
TEST(WakeScheduler, FootprintBytesReported)
{
    ThreadsGuard guard(1);
    const TrafficProbe small = trafficAt(16, 1, 500);
    const TrafficProbe large = trafficAt(64, 1, 500);
    EXPECT_GT(small.run.footprintBytes, 0u);
    EXPECT_GT(large.run.footprintBytes, small.run.footprintBytes);
    // 64 nodes is dominated by 64 * 4K-word SRAMs (~2 MB array data);
    // anything past tens of MB means eager allocation crept back in.
    EXPECT_LT(large.run.footprintBytes, 32ull << 20);
}

} // namespace
} // namespace jmsim
