/**
 * @file
 * In-network computing tests: combine-table hit/miss semantics, FAA
 * correctness under either NI arbitration policy, barrier-tree wave
 * determinism across host kernels, mid-barrier checkpoint round-trips,
 * and cross-config restore rejection (DESIGN.md §3k).
 */

#include <gtest/gtest.h>

#include <string>

#include "ckpt/snapshot.hh"
#include "netops/netops.hh"
#include "workloads/driver.hh"
#include "workloads/innet.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

constexpr unsigned kNodes = 16;
constexpr unsigned kOpsPerNode = 8;
constexpr Cycle kRunLimit = 10'000'000;

/** Run a tree-barrier machine to completion; return (cycles, out[0]). */
struct BarrierRun
{
    Cycle cycles = 0;
    std::int32_t elapsed = 0;
    std::uint64_t waves = 0;
};

BarrierRun
runTreeBarrier(unsigned nodes, unsigned iterations)
{
    auto m = buildTreeBarrierMachine(nodes, iterations);
    const RunResult r = m->run(kRunLimit);
    BarrierRun out;
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    out.cycles = r.cycles;
    const auto ints = outInts(*m, 0);
    EXPECT_EQ(ints.size(), 1u);
    if (!ints.empty())
        out.elapsed = ints[0];
    out.waves = m->netops()->waves();
    return out;
}

} // namespace

TEST(NetOpsCombine, HotspotHitsAndCorrectTotal)
{
    const HotspotResult on = runFaaHotspot(kNodes, kOpsPerNode, true);
    EXPECT_GT(on.combineHits, 0u);
    EXPECT_EQ(on.finalValue,
              static_cast<std::int32_t>(kNodes * kOpsPerNode));
    // faa_ops counts every merged request at apply time, so the total
    // covers all N*K increments plus node 0's completion polls.
    EXPECT_GE(on.faaOps, static_cast<std::uint64_t>(kNodes * kOpsPerNode));
}

TEST(NetOpsCombine, OffMeansNoHitsAndHigherLatency)
{
    const HotspotResult off = runFaaHotspot(kNodes, kOpsPerNode, false);
    const HotspotResult on = runFaaHotspot(kNodes, kOpsPerNode, true);
    EXPECT_EQ(off.combineHits, 0u);
    EXPECT_EQ(off.finalValue, on.finalValue);
    // Combining merges hotspot requests in flight, so the serialized
    // home-memory bottleneck relaxes and per-op latency drops.
    EXPECT_LT(on.cyclesPerOp, off.cyclesPerOp);
}

TEST(NetOpsCombine, ResultIdenticalUnderEitherArbitration)
{
    const HotspotResult fixed = runFaaHotspot(kNodes, kOpsPerNode, true,
                                              false);
    const HotspotResult rr = runFaaHotspot(kNodes, kOpsPerNode, true, true);
    EXPECT_EQ(fixed.finalValue,
              static_cast<std::int32_t>(kNodes * kOpsPerNode));
    EXPECT_EQ(rr.finalValue, fixed.finalValue);
}

TEST(NetOpsBarrier, WaveCountMatchesIterations)
{
    const unsigned iters = 5;
    const BarrierRun r = runTreeBarrier(kNodes, iters);
    EXPECT_EQ(r.waves, iters);
    EXPECT_GT(r.elapsed, 0);
}

TEST(NetOpsBarrier, DeterministicAcrossKernels)
{
    const BarrierRun serial = runTreeBarrier(kNodes, 4);
    for (const int threads : {2, 4}) {
        setSimThreads(threads);
        const BarrierRun t = runTreeBarrier(kNodes, 4);
        setSimThreads(-1);
        EXPECT_EQ(t.cycles, serial.cycles) << threads << " shards";
        EXPECT_EQ(t.elapsed, serial.elapsed) << threads << " shards";
        EXPECT_EQ(t.waves, serial.waves) << threads << " shards";
    }

    setSuperblock(0);
    setWakeScheduler(0);
    setNetScheduler(0);
    const BarrierRun plain = runTreeBarrier(kNodes, 4);
    setSuperblock(-1);
    setWakeScheduler(-1);
    setNetScheduler(-1);
    EXPECT_EQ(plain.cycles, serial.cycles);
    EXPECT_EQ(plain.elapsed, serial.elapsed);
    EXPECT_EQ(plain.waves, serial.waves);
}

TEST(NetOpsCkpt, MidBarrierRoundTripMatchesUninterrupted)
{
    const unsigned iters = 6;
    auto a = buildTreeBarrierMachine(kNodes, iters);

    // Advance until a release wave has happened AND tree events are in
    // flight: the image then carries a barrier caught mid-climb.
    while (a->netops()->waves() < 1 || a->netops()->idle()) {
        const RunResult r = a->runFor(1);
        ASSERT_NE(r.reason, StopReason::AllHalted);
        ASSERT_LT(a->now(), 200'000u);
    }
    ckpt::Snapshot snap;
    a->save(snap);
    const Cycle snapCycle = a->now();
    const RunResult full = a->run(kRunLimit);
    ASSERT_EQ(full.reason, StopReason::AllHalted);

    // Continue the restored machine under a different kernel mix.
    auto b = buildTreeBarrierMachine(kNodes, iters);
    b->setThreads(4);
    b->setSuperblock(false);
    std::string err;
    ASSERT_TRUE(b->restore(snap, &err)) << err;
    EXPECT_EQ(b->now(), snapCycle);
    const RunResult cont = b->run(kRunLimit);

    EXPECT_EQ(cont.cycles, full.cycles);
    EXPECT_EQ(outInts(*b, 0), outInts(*a, 0));
    EXPECT_EQ(b->netops()->waves(), iters);

    // And the image itself is stable: save-restore-save round-trips.
    auto c = buildTreeBarrierMachine(kNodes, iters);
    ASSERT_TRUE(c->restore(snap, &err)) << err;
    ckpt::Snapshot second;
    c->save(second);
    EXPECT_EQ(snap.bytes, second.bytes);
}

TEST(NetOpsCkpt, MidHotspotRoundTripKeepsCombineState)
{
    auto a = buildFaaHotspotMachine(kNodes, kOpsPerNode, true);
    while (a->netops()->idle() || a->netops()->faaOps() == 0) {
        const RunResult r = a->runFor(1);
        ASSERT_NE(r.reason, StopReason::AllHalted);
        ASSERT_LT(a->now(), 200'000u);
    }
    ckpt::Snapshot snap;
    a->save(snap);
    const RunResult full = a->run(kRunLimit);
    ASSERT_EQ(full.reason, StopReason::AllHalted);

    auto b = buildFaaHotspotMachine(kNodes, kOpsPerNode, true);
    std::string err;
    ASSERT_TRUE(b->restore(snap, &err)) << err;
    const RunResult cont = b->run(kRunLimit);

    EXPECT_EQ(cont.cycles, full.cycles);
    EXPECT_EQ(b->netops()->slotValue(0),
              static_cast<std::int32_t>(kNodes * kOpsPerNode));
    EXPECT_EQ(b->netops()->combineHits(), a->netops()->combineHits());
    EXPECT_EQ(b->netops()->faaOps(), a->netops()->faaOps());
}

TEST(NetOpsCkpt, CrossConfigRestoreIsRejected)
{
    // Combining is architectural: an image saved with it on must not
    // restore into a machine with it off (or vice versa).
    auto a = buildFaaHotspotMachine(kNodes, kOpsPerNode, true);
    a->runFor(200);
    ckpt::Snapshot snap;
    a->save(snap);

    auto b = buildFaaHotspotMachine(kNodes, kOpsPerNode, false);
    std::string err;
    EXPECT_FALSE(b->restore(snap, &err));
    EXPECT_NE(err.find("configuration"), std::string::npos) << err;
    EXPECT_EQ(b->now(), 0u);

    // A netops image also refuses a netops-free machine of the same
    // mesh (different digest, and the section would be unparseable).
    auto c = buildFaaHotspotMachine(kNodes, kOpsPerNode, true);
    EXPECT_TRUE(c->restore(snap, &err)) << err;
}
