/** @file Unit tests for the hardware name-translation table. */

#include <gtest/gtest.h>

#include "mem/xlate_table.hh"

namespace jmsim
{
namespace
{

TEST(XlateTable, EnterThenLookupHits)
{
    XlateTable table;
    table.enter(Word::makePtr(42), Word::makeInt(1000));
    const auto hit = table.lookup(Word::makePtr(42));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->asInt(), 1000);
    EXPECT_EQ(table.stats().hits, 1u);
}

TEST(XlateTable, MissIsCounted)
{
    XlateTable table;
    EXPECT_FALSE(table.lookup(Word::makePtr(7)).has_value());
    EXPECT_EQ(table.stats().misses, 1u);
}

TEST(XlateTable, KeysCompareByTagAndBits)
{
    XlateTable table;
    table.enter(Word::makePtr(5), Word::makeInt(1));
    EXPECT_FALSE(table.lookup(Word::makeInt(5)).has_value());
    EXPECT_TRUE(table.lookup(Word::makePtr(5)).has_value());
}

TEST(XlateTable, ReEnterUpdatesInPlace)
{
    XlateTable table;
    table.enter(Word::makePtr(5), Word::makeInt(1));
    table.enter(Word::makePtr(5), Word::makeInt(2));
    EXPECT_EQ(table.lookup(Word::makePtr(5))->asInt(), 2);
    EXPECT_EQ(table.stats().evictions, 0u);
}

TEST(XlateTable, EvictsWithinASet)
{
    XlateTable table(1, 2);  // one set, two ways
    table.enter(Word::makePtr(1), Word::makeInt(1));
    table.enter(Word::makePtr(2), Word::makeInt(2));
    table.enter(Word::makePtr(3), Word::makeInt(3));
    EXPECT_EQ(table.stats().evictions, 1u);
    // Exactly two of the three remain.
    unsigned present = 0;
    for (std::uint32_t k = 1; k <= 3; ++k)
        present += table.lookup(Word::makePtr(k)).has_value() ? 1 : 0;
    EXPECT_EQ(present, 2u);
}

TEST(XlateTable, InvalidateRemoves)
{
    XlateTable table;
    table.enter(Word::makePtr(9), Word::makeInt(9));
    table.invalidate(Word::makePtr(9));
    EXPECT_FALSE(table.lookup(Word::makePtr(9)).has_value());
}

/** Property: with enough capacity, every inserted binding survives. */
class XlateSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(XlateSweep, AllBindingsSurviveUnderCapacity)
{
    XlateTable table(64, 4);
    const unsigned n = GetParam();
    for (std::uint32_t k = 0; k < n; ++k)
        table.enter(Word::makePtr(k * 977 + 13), Word::makeInt(k));
    if (table.stats().evictions == 0) {
        for (std::uint32_t k = 0; k < n; ++k) {
            auto hit = table.lookup(Word::makePtr(k * 977 + 13));
            ASSERT_TRUE(hit.has_value());
            EXPECT_EQ(hit->asInt(), static_cast<std::int32_t>(k));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, XlateSweep,
                         ::testing::Values(4u, 16u, 64u, 128u));

} // namespace
} // namespace jmsim
