/** @file Tests of the sequential jasm baselines used as Figure 5's
 * speedup bases: they validate internally and must cost less per
 * element than the fine-grained parallel codes on one node. */

#include <gtest/gtest.h>

#include "workloads/apps.hh"

namespace jmsim
{
namespace workloads
{
namespace
{

TEST(Baseline, SequentialLcsValidatesAndScalesQuadratically)
{
    const Cycle small = runLcsSequential(32, 64);
    const Cycle big = runLcsSequential(64, 128);
    EXPECT_GT(small, 0u);
    // 4x the cells: between 3x and 5x the cycles.
    EXPECT_GT(big, 3 * small);
    EXPECT_LT(big, 5 * small);
}

TEST(Baseline, SequentialRadixBeatsFineGrainedOnOneNode)
{
    const unsigned keys = 1024;
    const Cycle seq = runRadixSequential(keys);
    RadixConfig c;
    c.nodes = 1;
    c.keys = keys;
    const Cycle par = runRadixSort(c).runCycles;
    // The paper: a remote write costs over 3x a local write, so the
    // message-per-key style loses on one node.
    EXPECT_LT(seq, par);
}

TEST(Baseline, SequentialQueensValidates)
{
    const Cycle q6 = runNQueensSequential(6);
    const Cycle q8 = runNQueensSequential(8);
    EXPECT_GT(q8, q6);   // bigger tree, more cycles
}

} // namespace
} // namespace workloads
} // namespace jmsim
