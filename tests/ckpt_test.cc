/**
 * @file
 * Checkpoint round-trip tests: a machine restored from a snapshot must
 * continue bit-identically to the uninterrupted run — same final cycle
 * count, same counter-registry snapshot, same jtrace stream — across
 * every host execution strategy (serial, threaded, wake scheduler and
 * superblocks on or off), because the image carries architectural
 * state only. Plus header rejection (bad magic, bad version, config
 * digest mismatch) and body-corruption detection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"
#include "sim/logging.hh"
#include "trace/counter_registry.hh"
#include "workloads/driver.hh"
#include "workloads/micro.hh"

using namespace jmsim;
using namespace jmsim::workloads;

namespace
{

/** Counters that depend on pool free-list sharding, not architecture:
 *  a restored pool starts from a compact rebuild, so its recycle
 *  count and slab capacity legitimately diverge. */
bool
poolHostCounter(const std::string &name)
{
    return name == "pool.recycled" || name == "pool.capacity";
}

/** Counters that measure the host execution strategy itself (kernel
 *  and fabric scheduler work accounting): equal for same-toggle runs,
 *  legitimately different across toggles. */
bool
strategyCounter(const std::string &name)
{
    return name.rfind("kernel.", 0) == 0 ||
           name == "net.router_steps" ||
           name == "net.skipped_router_steps" ||
           name == "net.event_skipped_cycles";
}

void
expectEqualCounters(const std::vector<CounterSample> &a,
                    const std::vector<CounterSample> &b,
                    bool architectural_only)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].name, b[i].name);
        if (poolHostCounter(a[i].name))
            continue;
        if (architectural_only && strategyCounter(a[i].name))
            continue;
        EXPECT_EQ(a[i].value, b[i].value) << a[i].name;
    }
}

constexpr unsigned kNodes = 64;
constexpr Cycle kSnapCycle = 1200;   // mid-flight: fabric full of worms
constexpr Cycle kEndCycle = 2500;

/** Fig4 machine run to the snapshot point, plus its image. */
std::unique_ptr<JMachine>
fig4AtSnapPoint(ckpt::Snapshot &snap)
{
    auto m = buildFig4Machine(kNodes);
    m->run(kSnapCycle);
    m->save(snap);
    return m;
}

} // namespace

TEST(CkptFormat, SaveRestoreSaveIsBitIdentical)
{
    ckpt::Snapshot first;
    auto a = fig4AtSnapPoint(first);
    EXPECT_GT(first.sizeBytes(), 16u);

    auto b = buildFig4Machine(kNodes);
    std::string err;
    ASSERT_TRUE(b->restore(first, &err)) << err;
    EXPECT_EQ(b->now(), kSnapCycle);

    ckpt::Snapshot second;
    b->save(second);
    EXPECT_EQ(first.bytes, second.bytes);
}

TEST(CkptFormat, SnapshotFileRoundTrip)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    const std::string path = "ckpt_test_image.jmck";
    ASSERT_TRUE(snap.writeFile(path));
    ckpt::Snapshot loaded;
    ASSERT_TRUE(loaded.readFile(path));
    std::remove(path.c_str());
    EXPECT_EQ(snap.bytes, loaded.bytes);
}

TEST(CkptRoundTrip, Fig4ContinuationMatchesUninterrupted)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    const RunResult full = a->run(kEndCycle);

    auto b = buildFig4Machine(kNodes);
    ASSERT_TRUE(b->restore(snap));
    const RunResult cont = b->run(kEndCycle);

    EXPECT_EQ(full.cycles, cont.cycles);
    EXPECT_EQ(full.reason, cont.reason);
    expectEqualCounters(full.counters, cont.counters, false);
}

TEST(CkptRoundTrip, Fig4RestoresAcrossThreadCounts)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    const RunResult full = a->run(kEndCycle);

    for (const unsigned threads : {2u, 4u}) {
        auto b = buildFig4Machine(kNodes);
        b->setThreads(threads);
        ASSERT_TRUE(b->restore(snap));
        const RunResult cont = b->run(kEndCycle);
        EXPECT_EQ(full.cycles, cont.cycles) << threads << " shards";
        expectEqualCounters(full.counters, cont.counters, false);
    }
}

// Restore the sched-on serial image into every off-default strategy:
// the image is architectural, so each continuation must land on the
// same architectural counters.
TEST(CkptRoundTrip, Fig4RestoresWithWakeSchedulerOff)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    const RunResult full = a->run(kEndCycle);

    auto b = buildFig4Machine(kNodes);
    b->setWakeScheduler(false);
    b->setIdleSkip(false);
    ASSERT_TRUE(b->restore(snap));
    const RunResult cont = b->run(kEndCycle);
    EXPECT_EQ(full.cycles, cont.cycles);
    expectEqualCounters(full.counters, cont.counters, true);
}

TEST(CkptRoundTrip, Fig4RestoresWithSuperblockAndNetSchedulerOff)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    const RunResult full = a->run(kEndCycle);

    auto b = buildFig4Machine(kNodes);
    b->setSuperblock(false);
    b->setNetScheduler(false);
    b->setThreads(2);
    ASSERT_TRUE(b->restore(snap));
    const RunResult cont = b->run(kEndCycle);
    EXPECT_EQ(full.cycles, cont.cycles);
    expectEqualCounters(full.counters, cont.counters, true);
}

TEST(CkptRoundTrip, ThreadedSnapshotRestoresIntoSerial)
{
    // Save out of a 4-shard machine mid-run, restore into a serial
    // one: the image must not depend on the saving side's sharding.
    auto a = buildFig4Machine(kNodes);
    a->setThreads(4);
    a->run(kSnapCycle);
    ckpt::Snapshot snap;
    a->save(snap);
    const RunResult full = a->run(kEndCycle);

    auto b = buildFig4Machine(kNodes);
    b->setThreads(1);
    ASSERT_TRUE(b->restore(snap));
    const RunResult cont = b->run(kEndCycle);
    EXPECT_EQ(full.cycles, cont.cycles);
    expectEqualCounters(full.counters, cont.counters, true);
}

TEST(CkptRoundTrip, TraceSuffixMatchesUninterrupted)
{
    TraceConfig tc;
    tc.enabled = true;
    setTraceConfig(tc);
    auto a = buildFig4Machine(kNodes);
    a->run(kSnapCycle);
    ckpt::Snapshot snap;
    a->save(snap);
    a->run(kEndCycle);
    std::vector<TraceEvent> fullTrace = a->tracer()->collect();

    auto b = buildFig4Machine(kNodes);
    clearTraceConfig();
    ASSERT_TRUE(b->restore(snap));
    b->run(kEndCycle);
    const std::vector<TraceEvent> contTrace = b->tracer()->collect();

    // The uninterrupted stream from the snapshot cycle onward must be
    // the restored machine's stream, event for event.
    fullTrace.erase(std::remove_if(fullTrace.begin(), fullTrace.end(),
                                   [](const TraceEvent &ev) {
                                       return ev.cycle < kSnapCycle;
                                   }),
                    fullTrace.end());
    ASSERT_FALSE(contTrace.empty());
    ASSERT_EQ(fullTrace.size(), contTrace.size());
    for (std::size_t i = 0; i < fullTrace.size(); ++i)
        EXPECT_TRUE(fullTrace[i] == contTrace[i]) << "event " << i;
}

TEST(CkptRoundTrip, RadixMidRunRestoreFinishesAndValidates)
{
    PreparedApp a;
    {
        RadixConfig c;
        c.nodes = 16;
        c.keys = 1024;
        a = prepareRadixSort(c);
    }
    a.machine->run(30000);  // mid-sort: tree and reorder traffic live
    ckpt::Snapshot snap;
    a.machine->save(snap);
    const AppResult full = finishApp(a);
    EXPECT_EQ(full.answer, 1024);

    // Finish the restored machine under a different strategy mix.
    RadixConfig c;
    c.nodes = 16;
    c.keys = 1024;
    PreparedApp b = prepareRadixSort(c);
    b.machine->setThreads(4);
    b.machine->setWakeScheduler(false);
    ASSERT_TRUE(b.machine->restore(snap));
    const AppResult cont = finishApp(b);

    EXPECT_EQ(cont.answer, 1024);
    EXPECT_EQ(full.runCycles, cont.runCycles);
    EXPECT_EQ(full.instructions, cont.instructions);
    EXPECT_EQ(full.dispatches, cont.dispatches);
    EXPECT_EQ(full.idleCycles, cont.idleCycles);
    for (std::size_t cls = 0; cls < full.cyclesByClass.size(); ++cls)
        EXPECT_EQ(full.cyclesByClass[cls], cont.cyclesByClass[cls]);
}

// The fork-farm path: no snapshot at all — a booted machine runs a
// shared prefix under the default strategies, then a worker flips
// toggles on the live machine and finishes. The flip must re-home the
// strategy-private state (parked nodes onto the step list, undrained
// channel flits onto the legacy pull bits) or the continuation
// diverges.
TEST(CkptRoundTrip, LiveToggleFlipMatchesUninterrupted)
{
    RadixConfig c;
    c.nodes = 16;
    c.keys = 1024;
    PreparedApp a = prepareRadixSort(c);
    const AppResult full = finishApp(a);

    PreparedApp b = prepareRadixSort(c);
    b.machine->run(30000);
    b.machine->setWakeScheduler(false);
    b.machine->setNetScheduler(false);
    b.machine->setSuperblock(false);
    const AppResult cont = finishApp(b);

    EXPECT_EQ(full.answer, cont.answer);
    EXPECT_EQ(full.runCycles, cont.runCycles);
    EXPECT_EQ(full.instructions, cont.instructions);
    EXPECT_EQ(full.dispatches, cont.dispatches);
    EXPECT_EQ(full.idleCycles, cont.idleCycles);
}

TEST(CkptReject, BadMagicLeavesMachineUntouched)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    ckpt::Snapshot bad = snap;
    bad.bytes[0] ^= 0xFF;

    auto b = buildFig4Machine(kNodes);
    std::string err;
    EXPECT_FALSE(b->restore(bad, &err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
    EXPECT_EQ(b->now(), 0u);
    // The untouched machine still accepts the good image.
    EXPECT_TRUE(b->restore(snap, &err)) << err;
    EXPECT_EQ(b->now(), kSnapCycle);
}

TEST(CkptReject, VersionMismatch)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    snap.bytes[4] += 1;

    auto b = buildFig4Machine(kNodes);
    std::string err;
    EXPECT_FALSE(b->restore(snap, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
    EXPECT_EQ(b->now(), 0u);
}

TEST(CkptReject, ConfigDigestMismatch)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);

    // A different mesh (and so a different machine) must refuse the
    // image at the header, before touching any state.
    auto b = buildFig4Machine(8);
    std::string err;
    EXPECT_FALSE(b->restore(snap, &err));
    EXPECT_NE(err.find("configuration"), std::string::npos) << err;
    EXPECT_EQ(b->now(), 0u);
}

TEST(CkptReject, TruncatedHeader)
{
    ckpt::Snapshot tiny;
    tiny.bytes.assign(8, 0);
    auto b = buildFig4Machine(8);
    std::string err;
    EXPECT_FALSE(b->restore(tiny, &err));
    EXPECT_EQ(b->now(), 0u);
}

TEST(CkptReject, TruncatedBodyIsFatal)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    snap.bytes.resize(snap.bytes.size() / 2);

    auto b = buildFig4Machine(kNodes);
    EXPECT_THROW(b->restore(snap), FatalError);
}

TEST(CkptReject, TrailingGarbageIsFatal)
{
    ckpt::Snapshot snap;
    auto a = fig4AtSnapPoint(snap);
    snap.bytes.push_back(0);

    auto b = buildFig4Machine(kNodes);
    EXPECT_THROW(b->restore(snap), FatalError);
}

// Fuzz-lite: a valid image truncated at every 64-byte boundary must be
// refused cleanly — restore() returns false (header cuts) or throws a
// recoverable FatalError (body cuts) — and must never read out of
// bounds or corrupt the machine beyond re-restoring. The ubsan preset
// runs this same binary, so decode-side UB trips there.
TEST(CkptReject, TruncationAtEveryBlockBoundaryIsClean)
{
    ckpt::Snapshot snap;
    auto a = buildFig4Machine(4);
    a->run(600);
    a->save(snap);

    auto b = buildFig4Machine(4);
    std::string err;
    for (std::size_t cut = 0; cut < snap.bytes.size(); cut += 64) {
        ckpt::Snapshot trunc;
        trunc.bytes.assign(snap.bytes.begin(), snap.bytes.begin() + cut);
        bool ok = true;
        try {
            ok = b->restore(trunc, &err);
        } catch (const FatalError &) {
            continue; // body cut: detected and reported
        }
        EXPECT_FALSE(ok) << "truncated image accepted at byte " << cut;
    }
    // Whatever the truncated attempts did, the full image still lands.
    ASSERT_TRUE(b->restore(snap, &err)) << err;
    EXPECT_EQ(b->now(), 600u);
}
