/** @file Unit tests for the slab-allocated message arena. */

#include <gtest/gtest.h>

#include "net/message_pool.hh"
#include "sim/thread_pool.hh"

namespace jmsim
{
namespace
{

TEST(MessagePool, HandleReuseHasNoStalePayload)
{
    MessagePool pool;
    const MsgHandle h = pool.alloc();
    Message &msg = pool.get(h);
    msg.src = 7;
    msg.dest = 9;
    msg.priority = 1;
    msg.injectCycle = 123;
    msg.deliverCycle = 456;
    msg.finalized = true;
    for (int i = 0; i < 24; ++i)
        msg.words.push_back(Word::makeInt(i));
    const std::size_t cap = msg.words.capacity();
    pool.release(h);

    const MsgHandle h2 = pool.alloc();
    EXPECT_EQ(h2, h);  // single shard: LIFO free list hands it back
    const Message &fresh = pool.get(h2);
    EXPECT_EQ(fresh.src, 0u);
    EXPECT_EQ(fresh.dest, 0u);
    EXPECT_EQ(fresh.priority, 0u);
    EXPECT_EQ(fresh.injectCycle, 0u);
    EXPECT_EQ(fresh.deliverCycle, 0u);
    EXPECT_FALSE(fresh.finalized);
    EXPECT_TRUE(fresh.words.empty());
    // The recycling payoff: the payload storage survives the round trip.
    EXPECT_GE(fresh.words.capacity(), cap);
}

TEST(MessagePool, GrowsUnderBackpressure)
{
    MessagePool pool;
    // More live messages than one slab holds: the directory grows and
    // the handles stay distinct and stable.
    const unsigned n = MessagePool::kSlabSize * 2 + 5;
    std::vector<MsgHandle> handles;
    for (unsigned i = 0; i < n; ++i) {
        const MsgHandle h = pool.alloc();
        pool.get(h).src = i;
        handles.push_back(h);
    }
    const PoolStats s = pool.stats();
    EXPECT_EQ(s.liveNow, n);
    EXPECT_GE(s.capacity, n);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(pool.get(handles[i]).src, i) << i;
    for (const MsgHandle h : handles)
        pool.release(h);
    EXPECT_EQ(pool.stats().liveNow, 0u);
}

TEST(MessagePool, SteadyStateAllocatesNoNewCapacity)
{
    MessagePool pool;
    // Warm up to the workload's high-water mark...
    std::vector<MsgHandle> live;
    for (int i = 0; i < 50; ++i)
        live.push_back(pool.alloc());
    for (const MsgHandle h : live)
        pool.release(h);
    const std::uint32_t warm_capacity = pool.stats().capacity;
    pool.resetStats();

    // ...then run a long alloc/release steady state: every alloc is
    // served from the free list and the arena never grows — the
    // zero-allocation property of the per-flit hot path.
    for (int round = 0; round < 1000; ++round) {
        const MsgHandle h = pool.alloc();
        pool.get(h).words.push_back(Word::makeInt(round));
        pool.release(h);
    }
    const PoolStats s = pool.stats();
    EXPECT_EQ(s.allocs, 1000u);
    EXPECT_EQ(s.recycled, 1000u);  // all served from the free list
    EXPECT_EQ(s.released, 1000u);
    EXPECT_EQ(s.capacity, warm_capacity);
    EXPECT_EQ(s.liveNow, 0u);
}

TEST(MessagePool, TailAppearsOnlyAtFinalize)
{
    // Cut-through injection: the NI streams flits out while the
    // processor is still appending words, so no flit index may read as
    // the tail until SEND*E finalizes the message.
    MessagePool pool;
    const MsgHandle h = pool.alloc();
    Message &msg = pool.get(h);
    msg.words.push_back(Word::makeInt(0));
    msg.words.push_back(Word::makeInt(1));
    for (std::uint32_t i = 0; i < msg.flitCount(); ++i)
        EXPECT_FALSE(msg.tailAt(i)) << i;
    msg.finalized = true;
    const std::uint32_t flits = msg.flitCount();
    EXPECT_EQ(flits, 1u + 2u * 2u);  // head + 2 flits per word
    for (std::uint32_t i = 0; i + 1 < flits; ++i)
        EXPECT_FALSE(msg.tailAt(i)) << i;
    EXPECT_TRUE(msg.tailAt(flits - 1));
}

TEST(MessagePool, ShardedCountersFoldOnShrink)
{
    MessagePool pool;
    const unsigned shards = 4;
    pool.setShards(shards);
    ThreadPool workers(shards);
    // Each shard allocates and releases on its own free list, as the
    // node phase (alloc at send) and move phase (release at delivery)
    // of the sharded kernel do.
    workers.run([&pool](unsigned shard) {
        std::vector<MsgHandle> mine;
        for (unsigned i = 0; i < 10 + shard; ++i)
            mine.push_back(pool.alloc());
        for (const MsgHandle h : mine)
            pool.release(h);
        for (unsigned i = 0; i < shard; ++i)
            pool.alloc();  // left live on purpose
    });
    const std::uint64_t expect_allocs = 4 * 10 + (0 + 1 + 2 + 3) * 2;
    const std::uint64_t expect_live = 0 + 1 + 2 + 3;
    PoolStats s = pool.stats();
    EXPECT_EQ(s.allocs, expect_allocs);
    EXPECT_EQ(s.liveNow, expect_live);
    // Folding back to one shard must not strand a counter or a slot.
    pool.setShards(1);
    s = pool.stats();
    EXPECT_EQ(s.allocs, expect_allocs);
    EXPECT_EQ(s.liveNow, expect_live);
}

} // namespace
} // namespace jmsim
