/** @file Unit tests for the jasm lexer. */

#include <gtest/gtest.h>

#include "jasm/lexer.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

std::vector<Token>
lex(const std::string &text)
{
    return tokenize(SourceFile{"test.jasm", text});
}

TEST(Lexer, RegistersAreRecognized)
{
    const auto toks = lex("R0 r3 A0 a3 R4 B2");
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0].kind, TokKind::Reg);
    EXPECT_EQ(toks[0].value, 0);
    EXPECT_EQ(toks[1].kind, TokKind::Reg);
    EXPECT_EQ(toks[1].value, 3);
    EXPECT_EQ(toks[2].kind, TokKind::Reg);
    EXPECT_EQ(toks[2].value, 4);
    EXPECT_EQ(toks[3].kind, TokKind::Reg);
    EXPECT_EQ(toks[3].value, 7);
    EXPECT_EQ(toks[4].kind, TokKind::Ident);  // R4 is not a register
    EXPECT_EQ(toks[5].kind, TokKind::Ident);
}

TEST(Lexer, NumberFormats)
{
    const auto toks = lex("123 0x1f 'a'");
    EXPECT_EQ(toks[0].value, 123);
    EXPECT_EQ(toks[1].value, 31);
    EXPECT_EQ(toks[2].value, 'a');
}

TEST(Lexer, CommentsAndLines)
{
    const auto toks = lex("NOP ; a comment, with punctuation []()\nHALT");
    ASSERT_EQ(toks.size(), 4u);  // NOP EOL HALT EOL
    EXPECT_EQ(toks[0].text, "NOP");
    EXPECT_EQ(toks[1].kind, TokKind::Eol);
    EXPECT_EQ(toks[2].text, "HALT");
    EXPECT_EQ(toks[2].line, 2);
}

TEST(Lexer, DirectivesKeepTheirName)
{
    const auto toks = lex(".equ X, 5");
    EXPECT_EQ(toks[0].kind, TokKind::Directive);
    EXPECT_EQ(toks[0].text, "equ");
}

TEST(Lexer, PunctuationKinds)
{
    const auto toks = lex(", : # [ ] ( ) + - *");
    const TokKind expect[] = {TokKind::Comma,    TokKind::Colon,
                              TokKind::Hash,     TokKind::LBracket,
                              TokKind::RBracket, TokKind::LParen,
                              TokKind::RParen,   TokKind::Plus,
                              TokKind::Minus,    TokKind::Star};
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(toks[i].kind, expect[i]) << i;
}

TEST(Lexer, RejectsStrayCharacters)
{
    EXPECT_THROW(lex("NOP @"), FatalError);
    EXPECT_THROW(lex("'ab'"), FatalError);
    EXPECT_THROW(lex("0x"), FatalError);
}

TEST(Lexer, AlwaysEndsWithEol)
{
    EXPECT_EQ(lex("").back().kind, TokKind::Eol);
    EXPECT_EQ(lex("NOP").back().kind, TokKind::Eol);
}

} // namespace
} // namespace jmsim
