/** @file Unit tests for node memory and segment allocation. */

#include <gtest/gtest.h>

#include "mem/memory.hh"
#include "mem/segment.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

TEST(NodeMemory, InternalAndExternalRanges)
{
    NodeMemory mem;
    EXPECT_TRUE(mem.isInternal(0));
    EXPECT_TRUE(mem.isInternal(4095));
    EXPECT_FALSE(mem.isInternal(4096));
    EXPECT_FALSE(mem.isValid(4096));         // the gap
    EXPECT_TRUE(mem.isExternal(kEmemBase));
    EXPECT_TRUE(mem.isExternal(mem.ememEnd() - 1));
    EXPECT_FALSE(mem.isValid(mem.ememEnd()));
}

TEST(NodeMemory, AccessPenaltiesMatchThePaper)
{
    // Internal operand: 2-cycle instruction; external access: 6 total.
    NodeMemory mem;
    EXPECT_EQ(mem.accessPenalty(100), 1u);
    EXPECT_EQ(mem.accessPenalty(kEmemBase + 5), 5u);
}

TEST(NodeMemory, ReadWriteRoundTrip)
{
    NodeMemory mem;
    mem.write(17, Word::makeInt(-5));
    EXPECT_EQ(mem.read(17).asInt(), -5);
    mem.write(kEmemBase + 1000, Word::makeCfut());
    EXPECT_EQ(mem.read(kEmemBase + 1000).tag, Tag::Cfut);
}

TEST(NodeMemory, UninitializedIsBadTagged)
{
    NodeMemory mem;
    EXPECT_EQ(mem.read(50).tag, Tag::Bad);
    EXPECT_EQ(mem.read(kEmemBase + 9).tag, Tag::Bad);
}

TEST(NodeMemory, LazyExternalBacking)
{
    NodeMemory mem;
    EXPECT_FALSE(mem.ememTouched());
    (void)mem.read(kEmemBase);   // reads do not allocate
    EXPECT_FALSE(mem.ememTouched());
    mem.write(kEmemBase, Word::makeInt(1));
    EXPECT_TRUE(mem.ememTouched());
}

TEST(SegmentAllocator, AlignsAndBumps)
{
    NodeMemory mem;
    SegmentAllocator alloc = SegmentAllocator::forExternal(mem);
    const SegDesc a = alloc.allocate(100);
    const SegDesc b = alloc.allocate(10);
    EXPECT_EQ(a.base % SegDesc::kBaseAlign, 0u);
    EXPECT_EQ(b.base % SegDesc::kBaseAlign, 0u);
    EXPECT_GE(b.base, a.base + a.length);
    const SegDesc copy{a.base, a.length};
    EXPECT_TRUE(copy.encodable());
}

TEST(SegmentAllocator, ExhaustionIsFatal)
{
    SegmentAllocator alloc(kEmemBase, 128);
    alloc.allocate(100);
    EXPECT_THROW(alloc.allocate(100), FatalError);
}

} // namespace
} // namespace jmsim
