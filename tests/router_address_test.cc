/** @file Unit tests for mesh coordinates and geometry. */

#include <gtest/gtest.h>

#include "net/router_address.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

TEST(RouterAddr, PackUnpackRoundTrip)
{
    for (std::uint8_t x : {0, 5, 31}) {
        for (std::uint8_t y : {0, 7, 31}) {
            for (std::uint8_t z : {0, 1, 31}) {
                const RouterAddr a{x, y, z};
                EXPECT_EQ(RouterAddr::unpack(a.pack()), a);
            }
        }
    }
}

TEST(RouterAddr, ManhattanDistance)
{
    EXPECT_EQ((RouterAddr{0, 0, 0}).hopsTo({7, 7, 7}), 21u);
    EXPECT_EQ((RouterAddr{3, 2, 1}).hopsTo({3, 2, 1}), 0u);
    EXPECT_EQ((RouterAddr{5, 0, 0}).hopsTo({2, 0, 0}), 3u);
}

TEST(MeshDims, PaperGeometry)
{
    const MeshDims dims = MeshDims::forNodeCount(512);
    EXPECT_EQ(dims.x, 8u);
    EXPECT_EQ(dims.y, 8u);
    EXPECT_EQ(dims.z, 8u);
}

TEST(MeshDims, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(MeshDims::forNodeCount(48), FatalError);
    EXPECT_THROW(MeshDims::forNodeCount(0), FatalError);
}

/** Property: linear <-> coordinate conversion is a bijection. */
class MeshSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MeshSweep, LinearCoordinateBijection)
{
    const MeshDims dims = MeshDims::forNodeCount(GetParam());
    EXPECT_EQ(dims.nodes(), GetParam());
    for (NodeId id = 0; id < dims.nodes(); ++id) {
        const RouterAddr a = dims.toCoord(id);
        EXPECT_LT(a.x, dims.x);
        EXPECT_LT(a.y, dims.y);
        EXPECT_LT(a.z, dims.z);
        EXPECT_EQ(dims.toLinear(a), id);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u, 128u,
                                           512u));

} // namespace
} // namespace jmsim
