/**
 * @file
 * Tests for superblock discovery and span execution: run-length
 * boundaries at stop-flagged ops, optimistic narrowing at kStopOpt
 * ops, spin-loop discovery, and bit-exact A/B parity between span
 * execution and the per-op interpreter on compute, translation, and
 * message-driven workloads (serial and sharded kernels).
 */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "mem/memory.hh"
#include "runtime/jos.hh"

namespace jmsim
{
namespace
{

Program
makeProgram(const std::string &app)
{
    Program prog = assemble(jos::withKernel("superblock.jasm", app, false));
    prog.predecode(kEmemBase);
    return prog;
}

JMachine
makeMachine(unsigned nodes, const std::string &app, bool superblock,
            unsigned threads = 1)
{
    Program prog = assemble(jos::withKernel("superblock.jasm", app, false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(nodes);
    cfg.proc.superblock = superblock;
    cfg.threads = threads;
    return JMachine(cfg, std::move(prog));
}

std::vector<std::int32_t>
outInts(const JMachine &m, NodeId id = 0)
{
    std::vector<std::int32_t> out;
    for (const Word &w : m.node(id).processor().hostOut())
        out.push_back(w.asInt());
    return out;
}

/** Full-stat equality: span execution must be invisible to the model. */
void
expectIdentical(JMachine &a, JMachine &b, Cycle max_cycles)
{
    const RunResult ra = a.run(max_cycles);
    const RunResult rb = b.run(max_cycles);
    EXPECT_EQ(ra.reason, rb.reason);
    EXPECT_EQ(ra.cycles, rb.cycles);
    const ProcessorStats sa = a.aggregateStats();
    const ProcessorStats sb_ = b.aggregateStats();
    EXPECT_EQ(sa.instructions, sb_.instructions);
    EXPECT_EQ(sa.instructionsOs, sb_.instructionsOs);
    EXPECT_EQ(sa.dispatches, sb_.dispatches);
    EXPECT_EQ(sa.suspends, sb_.suspends);
    EXPECT_EQ(sa.runCycles, sb_.runCycles);
    EXPECT_EQ(sa.queueStallCycles, sb_.queueStallCycles);
    EXPECT_EQ(sa.segCacheHits, sb_.segCacheHits);
    EXPECT_EQ(sa.segCacheMisses, sb_.segCacheMisses);
    EXPECT_EQ(sa.xlateCacheHits, sb_.xlateCacheHits);
    EXPECT_EQ(sa.xlateCacheMisses, sb_.xlateCacheMisses);
    for (std::size_t c = 0; c < sa.cyclesByClass.size(); ++c)
        EXPECT_EQ(sa.cyclesByClass[c], sb_.cyclesByClass[c]) << "class " << c;
    for (std::size_t f = 0; f < kNumFaults; ++f)
        EXPECT_EQ(sa.faults[f], sb_.faults[f]) << "fault " << f;
    EXPECT_EQ(a.network().stats().messagesDelivered,
              b.network().stats().messagesDelivered);
    EXPECT_EQ(a.network().stats().wordsDelivered,
              b.network().stats().wordsDelivered);
    for (NodeId id = 0; id < a.nodeCount(); ++id)
        EXPECT_EQ(outInts(a, id), outInts(b, id)) << "node " << id;
}

// ---- discovery ----

TEST(Discovery, RunEndsBeforeSendAndSendCannotStartASpan)
{
    Program prog = makeProgram(R"(
boot:
    MOVEI R0, 1
    ADDI R0, R0, #2
    GETSP R1, NNR
    SEND0 R1
    HALT
)");
    const IAddr boot = prog.entry("boot");
    const SuperBlockInfo info = prog.superblockAt(boot);
    // MOVEI, ADDI, GETSP fuse; the SEND publishes flits the same cycle
    // and must run on the architectural clock edge.
    EXPECT_EQ(info.safeLen, 3u);
    EXPECT_EQ(info.optLen, 3u);
    EXPECT_FALSE(info.endsInBranch);

    IAddr ip = boot;
    for (unsigned n = 0; n < 3; ++n)
        ip = prog.decodedOps()[ip].nextIp;
    const SuperBlockInfo at_send = prog.superblockAt(ip);
    EXPECT_EQ(at_send.safeLen, 0u);
    EXPECT_EQ(at_send.optLen, 0u);
}

TEST(Discovery, BranchEndsTheBlockButExecutesInside)
{
    Program prog = makeProgram(R"(
boot:
    MOVEI R0, 0
    MOVEI R1, 3
    BR out
    NOP
out:
    HALT
)");
    const SuperBlockInfo info = prog.superblockAt(prog.entry("boot"));
    EXPECT_EQ(info.safeLen, 3u);  // MOVEI, MOVEI, BR
    EXPECT_TRUE(info.endsInBranch);
}

TEST(Discovery, OptimisticSpansStopAtTranslationOps)
{
    Program prog = makeProgram(R"(
boot:
    MOVEI R0, 42
    MOVEI R1, 1
    ENTER R0, R1
    XLATE R2, R0
    MOVEI R3, 9
    HALT
)");
    const SuperBlockInfo info = prog.superblockAt(prog.entry("boot"));
    // Safe/exclusive spans run through ENTER/XLATE up to the HALT;
    // optimistic (rollback-capable) spans cannot undo translation-table
    // mutations and stop before ENTER.
    EXPECT_EQ(info.safeLen, 5u);
    EXPECT_EQ(info.optLen, 2u);
}

TEST(Discovery, SpinLoopClosingBranchCarriesItsHead)
{
    Program prog = makeProgram(R"(
boot:
    MOVEI R0, 0
wait:
    EQI R1, R0, #1
    BF R1, wait
    HALT
)");
    const IAddr head = prog.entry("wait");
    // The closing BF sits one op past the EQI.
    const IAddr branch = prog.decodedOps()[head].nextIp;
    ASSERT_LT(branch, prog.spinHeads().size());
    EXPECT_EQ(prog.spinHeads()[branch], head);
}

TEST(Discovery, LoopsWithSideEffectsAreNotSpins)
{
    Program prog = makeProgram(R"(
.equ BUF, 256
boot:
    LDL A0, seg(BUF, 16)
    MOVEI R0, 50
loop:
    ST [A0+0], R0
    ADDI R0, R0, #-1
    GTI R1, R0, #0
    BT R1, loop
    HALT
)");
    // The ST publishes memory other threads (and rollback) observe:
    // the closing BT must not be marked as a busy-wait.
    const IAddr head = prog.entry("loop");
    IAddr ip = head;
    while (static_cast<Opcode>(prog.decodedOps()[ip].handler) != Opcode::Bt)
        ip = prog.decodedOps()[ip].nextIp;
    EXPECT_EQ(prog.spinHeads()[ip], Program::kNoSpinHead);
}

// ---- execution parity (superblocks on vs off) ----

TEST(Parity, ComputeLoopIsBitIdentical)
{
    const std::string app = R"(
.equ EBUF, 65536
boot:
    LDL A0, seg(EBUF, 16)
    MOVEI R0, 50
    MOVEI R3, 0
loop:
    ST [A0+1], R0
    LD R1, [A0+1]
    ADD R3, R3, R1
    ADDI R0, R0, #-1
    GTI R2, R0, #0
    BT R2, loop
    OUT R3
    HALT
)";
    JMachine on = makeMachine(1, app, true);
    JMachine off = makeMachine(1, app, false);
    expectIdentical(on, off, 100000);
    ASSERT_EQ(outInts(on).size(), 1u);
    EXPECT_EQ(outInts(on)[0], 1275);
}

TEST(Parity, TranslationCachesAreBitIdentical)
{
    const std::string app = R"(
boot:
    MOVEI R0, 42
    MOVEI R1, 1
    ENTER R0, R1
    XLATE R2, R0
    OUT R2
    XLATE R2, R0
    OUT R2
    MOVEI R1, 2
    ENTER R0, R1
    XLATE R2, R0
    OUT R2
    HALT
)";
    JMachine on = makeMachine(1, app, true);
    JMachine off = makeMachine(1, app, false);
    expectIdentical(on, off, 100000);
    const XlateStats &xs = on.node(0).processor().xlate().stats();
    EXPECT_EQ(xs.lookups, 3u);
}

TEST(Parity, MessagePingWithSpinWaitIsBitIdentical)
{
    // Node 0 pings node 1 in a loop and busy-waits on an ack flag: the
    // wait loop is a discovered spin (fast-forwarded inside spans), and
    // each ack delivery lands mid-span and must roll the optimistic
    // state back to the exact arrival cycle.
    const std::string app = R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, worker
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 25
    ST [A1+10], R0
main_loop:
    MOVEI R0, 0
    ST [A1+8], R0
    MOVEI R0, 1
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(ping_handler, 2)
    GETSP R2, NNR
    SEND20E R1, R2
wait:
    LD R0, [A1+8]
    EQI R0, R0, #0
    BT R0, wait
    LD R0, [A1+10]
    ADDI R0, R0, #-1
    ST [A1+10], R0
    GTI R1, R0, #0
    BT R1, main_loop
    OUT R0
    HALT

worker:
    CALL A2, jos_park

ping_handler:               ; [hdr, replyaddr]
    LD R0, [A3+1]
    SEND0 R0
    LDL R1, hdr(ack_handler, 1)
    SEND0E R1
    SUSPEND

ack_handler:
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R0, 1
    ST [A1+8], R0
    SUSPEND
)";
    JMachine on = makeMachine(4, app, true);
    JMachine off = makeMachine(4, app, false);
    expectIdentical(on, off, 200000);
    ASSERT_EQ(outInts(on).size(), 1u);
    EXPECT_EQ(outInts(on)[0], 0);

    // And the sharded kernel with spans on matches the serial kernel
    // with spans off — the two mechanisms compose.
    JMachine on4 = makeMachine(4, app, true, 4);
    JMachine off1 = makeMachine(4, app, false, 1);
    expectIdentical(on4, off1, 200000);
}

} // namespace
} // namespace jmsim
