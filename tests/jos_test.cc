/** @file Tests of the JOS runtime kernel routines. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "sim/logging.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

namespace jmsim
{
namespace
{

std::unique_ptr<JMachine>
makeMachine(unsigned nodes, const std::string &app, bool barrier = false)
{
    Program prog = assemble(jos::withKernel("app.jasm", app, barrier));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(nodes);
    return std::make_unique<JMachine>(cfg, std::move(prog));
}

TEST(Jos, NnrMatchesMeshGeometry)
{
    // Every node converts every linear id and reports the packed
    // address; compare against the C++ geometry.
    for (unsigned nodes : {2u, 8u, 64u, 512u}) {
        auto m = makeMachine(nodes, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, off
    MOVEI R3, 0
lp:
    MOVE R0, R3
    CALL A2, jos_nnr
    OUT R0
    ADDI R3, R3, #1
    GETSP R1, NODES
    LT R1, R3, R1
    BT R1, lp
off:
    HALT
)");
        m->run(1'000'000);
        const auto &out = m->node(0).processor().hostOut();
        const MeshDims dims = MeshDims::forNodeCount(nodes);
        ASSERT_EQ(out.size(), nodes);
        for (NodeId id = 0; id < nodes; ++id) {
            EXPECT_EQ(static_cast<std::uint32_t>(out[id].asInt()),
                      dims.toCoord(id).pack())
                << "node count " << nodes << " id " << id;
        }
    }
}

TEST(Jos, XlateMissRefillsFromDirectory)
{
    // Bind without priming the hardware table; the first XLATE takes
    // a miss handled by jos_fault_xlate, the second hits.
    auto m = makeMachine(1, R"(
boot:
    CALL A2, jos_init
    LDL R0, ptr(77)
    LDL R1, #1234
    CALL A2, jos_dir_bind
    LDL R0, ptr(77)
    XLATE R2, R0
    OUT R2
    XLATE R3, R0
    OUT R3
    HALT
)");
    m->run(100000);
    const auto &out = m->node(0).processor().hostOut();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].asInt(), 1234);
    EXPECT_EQ(out[1].asInt(), 1234);
    const auto &st = m->node(0).processor().stats();
    EXPECT_EQ(st.faults[static_cast<unsigned>(FaultKind::XlateMiss)], 1u);
}

TEST(Jos, UnboundNameDiesAtJosDie)
{
    auto m = makeMachine(1, R"(
boot:
    CALL A2, jos_init
    LDL R0, ptr(99)
    XLATE R2, R0
    HALT
)");
    EXPECT_THROW(m->run(100000), FatalError);
}

TEST(Jos, SendFaultRetriesUntilDrained)
{
    // Blast far more words than the send buffer holds; the JOS retry
    // handler absorbs the overflow and everything is delivered.
    auto m = makeMachine(2, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    MOVEI R0, 1
    CALL A2, jos_nnr
    MOVE R3, R0              ; dest address lives in R3's shadow: keep
    LDL A0, seg(APP_SCRATCH, 64)
    ST [A0+12], R0
    MOVEI R3, 0
    MOVEI R2, 0
lp:
    LD R0, [A0+12]
    SEND0 R0
    LDL R1, hdr(sink, 9)
    SEND0 R1
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20 R2, R2
    SEND20E R2, R2
    ADDI R3, R3, #1
    LTI R1, R3, #12
    BT R1, lp
    HALT
park:
    CALL A2, jos_park
sink:
    SUSPEND
)");
    m->pokeInt(0, jos::kAppScratchBase, 0);
    m->run(1'000'000);
    const auto &st = m->node(0).processor().stats();
    EXPECT_GT(st.faults[static_cast<unsigned>(FaultKind::SendFault)], 0u);
    const auto &hs = m->node(1).processor().handlerStats();
    const Program &prog = m->program();
    auto it = hs.find(prog.entry("sink"));
    ASSERT_NE(it, hs.end());
    EXPECT_EQ(it->second.dispatches, 12u);
}

TEST(Jos, ContextPoolRecyclesAcrossSuspensions)
{
    // More cfut suspensions than the pool holds at once, serialized so
    // each context is freed before the next is needed.
    auto m = makeMachine(2, R"(
.equ SLOT, 4032
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, producer_node
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R3, 0
consume:
    LDL A0, seg(SLOT, 16)
    LD R0, [A0+0]           ; faults + suspends each round
    ADDM R3, [A1+20]
    OUT R0
    ; reset the slot to cfut for the next round
    MOVEI R1, 0
    WTAG R1, R1, #cfut
    ST [A0+0], R1
    LD R3, [A1+20]
    LTI R1, R3, #0          ; never true; counter only
    ADDI R3, R3, #0
    LD R3, [A1+21]
    ADDI R3, R3, #1
    ST [A1+21], R3
    LTI R1, R3, #12
    BT R1, consume
    HALT

producer_node:
    LDL A1, seg(APP_SCRATCH, 64)
    MOVEI R3, 0
prod_loop:
    ; delay, then poke one value
    LDL R0, #300
d:
    ADDI R0, R0, #-1
    GTI R1, R0, #0
    BT R1, d
    MOVEI R0, 0
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(producer, 1)
    SEND0E R1
    ADDI R3, R3, #1
    LTI R1, R3, #12
    BT R1, prod_loop
    HALT

producer:
    LDL A0, seg(SLOT, 16)
    MOVEI R0, 0
    LDL R1, #555
    CALL A2, jos_put
    SUSPEND
)");
    m->poke(0, 4032, Word::makeCfut());
    for (Addr a = jos::kAppScratchBase + 20; a < jos::kAppScratchBase + 24;
         ++a)
        m->pokeInt(0, a, 0);
    const RunResult r = m->run(3'000'000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    const auto &st = m->node(0).processor().stats();
    EXPECT_EQ(st.faults[static_cast<unsigned>(FaultKind::CfutRead)], 12u);
    // The free list survived 12 suspend/restart rounds with 8 blocks.
    EXPECT_EQ(m->peekInt(0, jos::kGlobalsBase + 4),
              static_cast<std::int32_t>(jos::kCtxPoolBase));
}

TEST(Jos, BarrierIsReusableManyTimes)
{
    auto m = makeMachine(4, R"(
boot:
    CALL A2, jos_init
    LDL A3, seg(APP_SCRATCH, 64)
    MOVEI R3, 0
    ST [A3+16], R3
lp:
    CALL A2, bar_barrier
    LDL A3, seg(APP_SCRATCH, 64)
    LD R3, [A3+16]
    ADDI R3, R3, #1
    ST [A3+16], R3
    LDL R1, #50
    LT R1, R3, R1
    BT R1, lp
    OUT R3
    HALT
)", true);
    const RunResult r = m->run(3'000'000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    for (NodeId id = 0; id < 4; ++id)
        EXPECT_EQ(m->node(id).processor().hostOut()[0].asInt(), 50);
}

} // namespace
} // namespace jmsim
