/**
 * @file
 * Tests for the predecoded interpreter and its caches: DecodedOp
 * translation (branch targets, LDL successor), segment-descriptor
 * cache invalidation on register rewrite, XLATE front-cache
 * invalidation on re-ENTER, the post-resetStats handler re-seed, and
 * the machine-wide idle skip (on/off A/B must be bit-identical).
 */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "mem/memory.hh"
#include "runtime/jos.hh"

namespace jmsim
{
namespace
{

JMachine
makeMachine(unsigned nodes, const std::string &app, bool idle_skip = true)
{
    Program prog = assemble(jos::withKernel("predecode.jasm", app, false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(nodes);
    cfg.idleSkip = idle_skip;
    return JMachine(cfg, std::move(prog));
}

std::vector<std::int32_t>
outInts(const JMachine &m, NodeId id = 0)
{
    std::vector<std::int32_t> out;
    for (const Word &w : m.node(id).processor().hostOut())
        out.push_back(w.asInt());
    return out;
}

TEST(Predecode, ResolvesBranchTargetsAndLdlSuccessor)
{
    Program prog = assemble(jos::withKernel("predecode.jasm", R"(
boot:
    BR skip
    NOP
    NOP
skip:
    LDL R0, #123456
    OUT R0
    HALT
)", false));
    prog.predecode(kEmemBase);
    const auto &ops = prog.decodedOps();

    const IAddr br = prog.entry("boot");
    ASSERT_LT(br, ops.size());
    ASSERT_TRUE(ops[br].valid);
    EXPECT_EQ(ops[br].handler, static_cast<std::uint8_t>(Opcode::Br));
    EXPECT_EQ(ops[br].target, prog.entry("skip"));
    EXPECT_EQ(ops[br].wordAddr, br >> 1);

    const IAddr ldl = prog.entry("skip");
    ASSERT_TRUE(ops[ldl].valid);
    EXPECT_EQ(ops[ldl].handler, static_cast<std::uint8_t>(Opcode::Ldl));
    // Wide format: the successor skips the filler slot and literal word.
    EXPECT_EQ(ops[ldl].nextIp, ldl + 4);
    EXPECT_EQ(ops[ldl].literal.asInt(), 123456);

    // Internal code words carry no fetch surcharge.
    EXPECT_FALSE(ops[br].ememWord);
}

TEST(Predecode, IsIdempotent)
{
    Program prog = assemble(jos::withKernel("predecode.jasm",
                                            "boot:\n HALT\n", false));
    prog.predecode(kEmemBase);
    const DecodedOp *data = prog.decodedOps().data();
    const std::size_t size = prog.decodedOps().size();
    prog.predecode(kEmemBase);
    EXPECT_EQ(prog.decodedOps().data(), data);
    EXPECT_EQ(prog.decodedOps().size(), size);
}

TEST(SegCache, RewrittenDescriptorInvalidatesStaleTranslation)
{
    // A0 is rebound between accesses; a stale cached translation of the
    // first descriptor would route the second store to T1 and make the
    // final load read 9 instead of 7.
    JMachine m = makeMachine(1, R"(
.equ T1, 256
.equ T2, 300
boot:
    LDL A0, seg(T1, 16)
    MOVEI R0, 7
    ST [A0+0], R0
    LD R1, [A0+0]
    OUT R1                  ; 7
    LDL A0, seg(T2, 16)
    MOVEI R0, 9
    ST [A0+0], R0
    LD R1, [A0+0]
    OUT R1                  ; 9
    LDL A0, seg(T1, 16)
    LD R1, [A0+0]
    OUT R1                  ; 7 (stale translation would read T2's 9)
    HALT
)");
    const RunResult r = m.run(100000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    const auto out = outInts(m);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 7);
    EXPECT_EQ(out[1], 9);
    EXPECT_EQ(out[2], 7);

    // Each LDL rebind forces a fresh decode; the loads behind an
    // unchanged register hit.
    const ProcessorStats &st = m.node(0).processor().stats();
    EXPECT_GE(st.segCacheMisses, 3u);
    EXPECT_GT(st.segCacheHits, 0u);
}

TEST(XlateCache, ReEnterInvalidatesCachedBinding)
{
    JMachine m = makeMachine(1, R"(
boot:
    MOVEI R0, 42
    MOVEI R1, 1
    ENTER R0, R1
    XLATE R2, R0
    OUT R2                  ; 1 (cold: table lookup, fills front cache)
    XLATE R2, R0
    OUT R2                  ; 1 (front-cache hit)
    MOVEI R1, 2
    ENTER R0, R1
    XLATE R2, R0
    OUT R2                  ; 2 (re-ENTER must drop the cached 1)
    HALT
)");
    const RunResult r = m.run(100000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    const auto out = outInts(m);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 1);
    EXPECT_EQ(out[2], 2);

    const ProcessorStats &st = m.node(0).processor().stats();
    EXPECT_GE(st.xlateCacheHits, 1u);
    EXPECT_GE(st.xlateCacheMisses, 2u);

    // The front cache must not perturb the architectural XLATE stats:
    // three XLATEs, all hits, front-cached or not.
    const XlateStats &xs = m.node(0).processor().xlate().stats();
    EXPECT_EQ(xs.lookups, 3u);
    EXPECT_EQ(xs.hits, 3u);
    EXPECT_EQ(xs.misses, 0u);
}

TEST(ResetStats, ReseedsLiveHandlerDispatch)
{
    JMachine m = makeMachine(1, R"(
boot:
    MOVEI R0, 5
    SUSPEND
)");
    const RunResult r = m.run(10000);
    EXPECT_EQ(r.reason, StopReason::Quiescent);
    const IAddr boot_entry = m.program().entry("boot");
    {
        const auto &hs = m.node(0).processor().handlerStats();
        const auto it = hs.find(boot_entry);
        ASSERT_NE(it, hs.end());
        EXPECT_EQ(it->second.dispatches, 1u);
        EXPECT_GT(it->second.instructions, 0u);
    }
    m.resetStats();
    // The background thread is still live (parked): its boot dispatch
    // must be re-seeded so post-reset windows account it, exactly as
    // boot() seeded it originally.
    {
        const auto &hs = m.node(0).processor().handlerStats();
        const auto it = hs.find(boot_entry);
        ASSERT_NE(it, hs.end());
        EXPECT_EQ(it->second.dispatches, 1u);
        EXPECT_EQ(it->second.instructions, 0u);
    }
    EXPECT_EQ(m.aggregateStats().instructions, 0u);
}

TEST(IdleSkip, BitIdenticalToTickedRunAndActuallySkips)
{
    // External-memory traffic: every ST/LD burns 6 cycles, so the core
    // spends most cycles mid-instruction and the machine can jump the
    // clock between issues.
    const std::string app = R"(
.equ EBUF, 65536
boot:
    LDL A0, seg(EBUF, 16)
    MOVEI R0, 50
    MOVEI R3, 0
loop:
    ST [A0+1], R0
    LD R1, [A0+1]
    ADD R3, R3, R1
    ADDI R0, R0, #-1
    GTI R2, R0, #0
    BT R2, loop
    OUT R3
    HALT
)";
    JMachine skipping = makeMachine(1, app, true);
    JMachine ticking = makeMachine(1, app, false);
    const RunResult rs = skipping.run(100000);
    const RunResult rt = ticking.run(100000);

    EXPECT_EQ(rs.reason, StopReason::AllHalted);
    EXPECT_EQ(rs.reason, rt.reason);
    EXPECT_EQ(rs.cycles, rt.cycles);
    EXPECT_EQ(outInts(skipping), outInts(ticking));

    const ProcessorStats a = skipping.aggregateStats();
    const ProcessorStats b = ticking.aggregateStats();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.dispatches, b.dispatches);
    for (std::size_t c = 0; c < a.cyclesByClass.size(); ++c)
        EXPECT_EQ(a.cyclesByClass[c], b.cyclesByClass[c]) << "class " << c;

    EXPECT_GT(skipping.idleSkippedCycles(), 0u);
    EXPECT_EQ(ticking.idleSkippedCycles(), 0u);
}

} // namespace
} // namespace jmsim
