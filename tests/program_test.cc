/** @file Unit tests for the Program container and the loader. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

TEST(Program, FetchOutsideCodeIsInvalid)
{
    const Program p = assembleString("boot:\n NOP\n");
    EXPECT_TRUE(p.validIaddr(0));
    EXPECT_TRUE(p.validIaddr(1));  // alignment filler
    EXPECT_FALSE(p.validIaddr(2));
    EXPECT_FALSE(p.validIaddr(100000));
}

TEST(Program, UndefinedSymbolIsFatal)
{
    const Program p = assembleString("boot:\n NOP\n");
    EXPECT_THROW(p.symbol("nope"), FatalError);
    EXPECT_FALSE(p.hasSymbol("nope"));
    EXPECT_TRUE(p.hasSymbol("boot"));
}

TEST(Program, InstructionCountTracksEmission)
{
    const Program p = assembleString(R"(
boot:
    NOP
    NOP
    HALT
)");
    EXPECT_GE(p.instructionCount(), 3u);
}

TEST(Loader, RejectsImagesOverlappingQueues)
{
    // Data placed inside the priority-0 queue region must be refused.
    Program prog = assemble(jos::withKernel("bad.jasm", R"(
boot:
    HALT
.org 3100
.word 1
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    EXPECT_THROW(JMachine(cfg, std::move(prog)), FatalError);
}

TEST(Loader, RequiresABootSymbol)
{
    Program prog = assemble(jos::withKernel("nob.jasm", R"(
start:
    HALT
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    EXPECT_THROW(JMachine(cfg, std::move(prog)), FatalError);
}

TEST(Loader, DataImageReachesEveryNode)
{
    Program prog = assemble(jos::withKernel("img.jasm", R"(
boot:
    HALT
.org 512
.word 111, 222
.emem
.org 73728
.word 333
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(4);
    JMachine m(cfg, std::move(prog));
    for (NodeId id = 0; id < 4; ++id) {
        EXPECT_EQ(m.peekInt(id, 512), 111);
        EXPECT_EQ(m.peekInt(id, 513), 222);
        EXPECT_EQ(m.peekInt(id, 73728), 333);
    }
}

TEST(Machine, RunForIsIncremental)
{
    Program prog = assemble(jos::withKernel("spin.jasm", R"(
boot:
    LDL R0, #1000000
l:
    ADDI R0, R0, #-1
    GTI R1, R0, #0
    BT R1, l
    HALT
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    m.runFor(100);
    EXPECT_EQ(m.now(), 100u);
    m.runFor(50);
    EXPECT_EQ(m.now(), 150u);
}

TEST(Machine, AggregateAndResetStats)
{
    Program prog = assemble(jos::withKernel("agg.jasm", R"(
boot:
    MOVEI R0, 1
    MOVEI R1, 2
    ADD R0, R0, R1
    HALT
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(2);
    JMachine m(cfg, std::move(prog));
    m.run(1000);
    const ProcessorStats before = m.aggregateStats();
    EXPECT_GT(before.instructions, 0u);
    m.resetStats();
    EXPECT_EQ(m.aggregateStats().instructions, 0u);
}

TEST(Machine, QuiescenceVsHalt)
{
    // A parked machine is quiescent; a halted machine reports all-halt.
    Program parked = assemble(jos::withKernel("p.jasm", R"(
boot:
    CALL A2, jos_park
)",
                                              false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m1(cfg, std::move(parked));
    EXPECT_EQ(m1.run(10000).reason, StopReason::Quiescent);

    Program halted = assemble(jos::withKernel("h.jasm", R"(
boot:
    HALT
)",
                                              false));
    JMachine m2(cfg, std::move(halted));
    EXPECT_EQ(m2.run(10000).reason, StopReason::AllHalted);
}

} // namespace
} // namespace jmsim
