/** @file Unit tests for the simulation kernel utilities. */

#include <gtest/gtest.h>

#include <chrono>

#include "sim/host_timer.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace jmsim
{
namespace
{

TEST(Types, ClockConversions)
{
    EXPECT_DOUBLE_EQ(cyclesToUs(125), 10.0);      // 12.5 MHz
    EXPECT_DOUBLE_EQ(cyclesToSeconds(12500000), 1.0);
}

TEST(Random, DeterministicAndSeedSensitive)
{
    Xorshift64 a(1), b(1), c(2);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next());
    }
}

TEST(Random, BoundsRespected)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(10), 10u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
    EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(SampleStat, Moments)
{
    SampleStat s;
    for (double v : {1.0, 2.0, 3.0, 10.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    SampleStat t;
    t.add(0.0);
    t.merge(s);
    EXPECT_EQ(t.count(), 5u);
    EXPECT_DOUBLE_EQ(t.min(), 0.0);
}

TEST(Histogram, BucketsAndPercentiles)
{
    Histogram h(10, 5);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.buckets()[0], 10u);    // 0..9
    EXPECT_EQ(h.buckets()[4], 10u);    // 40..49
    EXPECT_EQ(h.buckets()[5], 50u);    // overflow bucket
    EXPECT_LE(h.percentile(0.10), 19u);
    EXPECT_EQ(h.max(), 99u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(HostTimer, TicksAdvanceAndConvertSanely)
{
    using clock = std::chrono::steady_clock;
    const std::uint64_t t0 = hostTicks();
    const auto w0 = clock::now();
    while (clock::now() - w0 < std::chrono::milliseconds(2)) {
    }
    const std::uint64_t t1 = hostTicks();
    ASSERT_GT(t1, t0);
    EXPECT_GT(hostTicksPerSecond(), 0.0);
    // ~2ms busy wait measured through the tick clock: allow generous
    // slack for scheduling noise, but the conversion must be in range.
    const double secs = hostSeconds(t1 - t0);
    EXPECT_GT(secs, 0.0005);
    EXPECT_LT(secs, 1.0);
}

TEST(Logging, PanicAndFatalThrowTypedErrors)
{
    EXPECT_THROW(panic("x"), PanicError);
    EXPECT_THROW(fatal("y"), FatalError);
    try {
        fatal("specific message");
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("specific message"),
                  std::string::npos);
    }
}

} // namespace
} // namespace jmsim
