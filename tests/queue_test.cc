/** @file Unit tests for the hardware message queue's ring allocator. */

#include <gtest/gtest.h>

#include "mdp/message_queue.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

MessageQueue
makeQueue(Addr base = 3072, std::uint32_t size = 16)
{
    MessageQueue q;
    q.configure(base, size);
    return q;
}

void
deliver(MessageQueue &q, std::uint32_t len)
{
    q.begin(len, 0, 0);
    for (std::uint32_t i = 0; i < len; ++i)
        q.wordArrived();
}

TEST(MessageQueue, BasicFifo)
{
    MessageQueue q = makeQueue();
    deliver(q, 3);
    deliver(q, 4);
    EXPECT_EQ(q.messageCount(), 2u);
    EXPECT_EQ(q.head().length, 3u);
    EXPECT_TRUE(q.headDispatchable());
    q.pop();
    EXPECT_EQ(q.head().length, 4u);
}

TEST(MessageQueue, ContiguousAddressing)
{
    MessageQueue q = makeQueue(100, 16);
    const Addr a = q.begin(3, 0, 0);
    EXPECT_EQ(a, 100u);
    for (int i = 0; i < 3; ++i)
        q.wordArrived();
    const Addr b = q.begin(4, 0, 0);
    EXPECT_EQ(b, 103u);
}

TEST(MessageQueue, WrapSkipsTail)
{
    MessageQueue q = makeQueue(100, 10);
    deliver(q, 6);
    deliver(q, 3);        // at offset 6..8; 1 word left at the end
    q.pop();              // free the 6-word message
    ASSERT_TRUE(q.canBegin(4));
    const Addr c = q.begin(4, 0, 0);
    EXPECT_EQ(c, 100u);   // wrapped to the start, padding the last word
}

TEST(MessageQueue, RefusesWhenFull)
{
    MessageQueue q = makeQueue(0, 8);
    deliver(q, 5);
    EXPECT_FALSE(q.canBegin(4));
    EXPECT_TRUE(q.canBegin(3));
}

TEST(MessageQueue, HeadDispatchableNeedsHeader)
{
    MessageQueue q = makeQueue();
    q.begin(3, 0, 0);
    EXPECT_FALSE(q.headDispatchable());
    q.wordArrived();      // the header word
    EXPECT_TRUE(q.headDispatchable());
    EXPECT_FALSE(q.head().complete());
}

TEST(MessageQueue, PopRequiresCompleteDelivery)
{
    MessageQueue q = makeQueue();
    q.begin(2, 0, 0);
    q.wordArrived();
    EXPECT_THROW(q.pop(), PanicError);
}

TEST(MessageQueue, HighWaterMarkTracksUse)
{
    MessageQueue q = makeQueue(0, 32);
    deliver(q, 10);
    deliver(q, 10);
    q.pop();
    q.pop();
    EXPECT_EQ(q.stats().maxWordsUsed, 20u);
    EXPECT_EQ(q.wordsUsed(), 0u);
}

/** Property: any sequence of accepted begin/pop keeps usage bounded. */
class QueueChurn : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(QueueChurn, NeverExceedsCapacity)
{
    MessageQueue q = makeQueue(0, 64);
    std::uint64_t x = GetParam() * 2654435761ull + 1;
    unsigned pending = 0;
    for (int step = 0; step < 2000; ++step) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        const std::uint32_t len = 1 + (x % 9);
        if ((x & 1) && q.canBegin(len)) {
            deliver(q, len);
            ++pending;
        } else if (pending > 0) {
            q.pop();
            --pending;
        }
        ASSERT_LE(q.wordsUsed(), 64u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueChurn, ::testing::Range(1u, 9u));

} // namespace
} // namespace jmsim
