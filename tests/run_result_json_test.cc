/**
 * @file
 * Golden test for the shared run-result JSON row schema: host_perf's
 * baseline writer, its rigid readBaseline() parser, and jrun_server's
 * streamed job lines all depend on this exact field order and
 * formatting, so the emitted string is pinned character for character.
 */

#include <gtest/gtest.h>

#include "sim/run_result_json.hh"

using namespace jmsim;

TEST(RunResultJson, GoldenRow)
{
    RunRow row;
    row.workload = "radix_sort";
    row.nodes = 64;
    row.threads = 2;
    row.hostSeconds = 0.25;
    row.simCycles = 61436;
    row.simInstructions = 551751;
    row.speedup = 1.5;
    row.nodeSec = 0.125;
    row.netSec = 0.0625;
    row.commitSec = 0.03125;
    row.poolLiveHighWater = 10;
    row.poolAllocs = 7378;
    row.poolRecycled = 7377;
    row.footprintBytes = 2447516;
    row.peakRssBytes = 8572928;
    row.bootSec = 0.015625;

    EXPECT_EQ(
        runRowJson(row),
        "{\"workload\": \"radix_sort\", \"nodes\": 64, \"threads\": 2, "
        "\"host_seconds\": 0.250000, \"sim_cycles\": 61436, "
        "\"sim_instructions\": 551751, \"instr_per_host_sec\": 2207004.0, "
        "\"speedup_vs_serial\": 1.500, "
        "\"node_sec\": 0.125000, \"net_sec\": 0.062500, "
        "\"commit_sec\": 0.031250, "
        "\"pool_live_high_water\": 10, \"pool_allocs\": 7378, "
        "\"pool_recycled\": 7377, \"footprint_bytes\": 2447516, "
        "\"peak_rss_bytes\": 8572928, \"boot_sec\": 0.015625}");
}

TEST(RunResultJson, DefaultsAndZeroRate)
{
    RunRow row;
    row.workload = "sweep_farm";
    EXPECT_EQ(row.instrPerHostSec(), 0.0);
    EXPECT_EQ(
        runRowJson(row),
        "{\"workload\": \"sweep_farm\", \"nodes\": 0, \"threads\": 0, "
        "\"host_seconds\": 0.000000, \"sim_cycles\": 0, "
        "\"sim_instructions\": 0, \"instr_per_host_sec\": 0.0, "
        "\"speedup_vs_serial\": 1.000, "
        "\"node_sec\": 0.000000, \"net_sec\": 0.000000, "
        "\"commit_sec\": 0.000000, "
        "\"pool_live_high_water\": 0, \"pool_allocs\": 0, "
        "\"pool_recycled\": 0, \"footprint_bytes\": 0, "
        "\"peak_rss_bytes\": 0, \"boot_sec\": 0.000000}");
}
