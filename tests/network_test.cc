/** @file Unit tests for the wormhole mesh network in isolation. */

#include <gtest/gtest.h>

#include "net/mesh_network.hh"

namespace jmsim
{
namespace
{

/** A sink that records delivered messages (the router releases the
 *  message right after the tail callback, so only plain data that is
 *  needed later — the handle and the arrival cycle — is kept). */
class RecordingSink : public DeliverSink
{
  public:
    bool refuse = false;
    MeshNetwork *net = nullptr;
    std::vector<std::pair<MsgHandle, Cycle>> delivered;
    Cycle lastTail = 0;

    bool canAcceptFlit(const Flit &) override { return !refuse; }

    void
    acceptFlit(const Flit &flit, Cycle now) override
    {
        Message &msg = net->pool().get(flit.msg);
        if (msg.tailAt(flit.index)) {
            delivered.emplace_back(flit.msg, now);
            lastTail = now;
            msg.deliverCycle = now;
            net->noteMessageDelivered(msg);
        }
    }
};

MsgHandle
makeMessage(MeshNetwork &net, NodeId src, NodeId dest, unsigned words,
            unsigned prio = 0)
{
    const MsgHandle h = net.pool().alloc();
    Message &msg = net.pool().get(h);
    msg.src = src;
    msg.dest = dest;
    msg.destAddr = net.dims().toCoord(dest);
    msg.priority = static_cast<std::uint8_t>(prio);
    MsgHeader hdr;
    hdr.handlerIp = 0;
    hdr.length = words;
    msg.words.push_back(hdr.encode());
    for (unsigned i = 1; i < words; ++i)
        msg.words.push_back(Word::makeInt(static_cast<std::int32_t>(i)));
    msg.finalized = true;
    return h;
}

void
injectWhole(MeshNetwork &net, MsgHandle h, Cycle &now)
{
    const Message &msg = net.pool().get(h);
    for (std::uint32_t i = 0; i < msg.flitCount(); ++i) {
        while (!net.canInject(msg.src, msg.priority))
            net.step(now++);
        Flit f;
        f.msg = h;
        f.index = i;
        f.vn = msg.priority;
        f.tail = msg.tailAt(i);
        net.injectFlit(msg.src, f);
    }
}

struct Harness
{
    explicit Harness(unsigned nodes)
        : dims(MeshDims::forNodeCount(nodes)), net(dims),
          sinks(dims.nodes())
    {
        for (NodeId id = 0; id < dims.nodes(); ++id) {
            sinks[id].net = &net;
            net.setDeliverSink(id, &sinks[id]);
        }
    }

    MeshDims dims;
    MeshNetwork net;
    std::vector<RecordingSink> sinks;
};

TEST(Network, DeliversAcrossTheMesh)
{
    Harness h(64);
    Cycle now = 0;
    const auto msg = makeMessage(h.net, 0, 63, 4);
    injectWhole(h.net, msg, now);
    for (int i = 0; i < 200 && h.sinks[63].delivered.empty(); ++i)
        h.net.step(now++);
    ASSERT_EQ(h.sinks[63].delivered.size(), 1u);
    EXPECT_EQ(h.net.stats().messagesDelivered, 1u);
    EXPECT_EQ(h.net.stats().wordsDelivered, 4u);
}

TEST(Network, LatencyIsOneCyclePerHopPlusSerialization)
{
    // Two messages at different distances: the delivery-time delta
    // equals the hop delta (1 cycle/hop), independent of length.
    for (unsigned words : {2u, 8u}) {
        Cycle t_near = 0, t_far = 0;
        {
            Harness h(64);
            Cycle now = 0;
            injectWhole(h.net, makeMessage(h.net, 0, 1, words), now);
            while (h.sinks[1].delivered.empty())
                h.net.step(now++);
            t_near = h.sinks[1].lastTail;
        }
        {
            Harness h(64);
            Cycle now = 0;
            injectWhole(h.net, makeMessage(h.net, 0, 3, words), now);
            while (h.sinks[3].delivered.empty())
                h.net.step(now++);
            t_far = h.sinks[3].lastTail;
        }
        EXPECT_EQ(t_far - t_near, 2u) << words;
    }
}

TEST(Network, EcubeIsDeterministicAndDeadlockFree)
{
    // All-to-one hotspot: every node sends to node 0; everything
    // arrives despite full channels.
    Harness h(64);
    Cycle now = 0;
    std::vector<MsgHandle> msgs;
    for (NodeId src = 1; src < 64; ++src)
        msgs.push_back(makeMessage(h.net, src, 0, 3));
    for (const auto m : msgs)
        injectWhole(h.net, m, now);
    for (int i = 0; i < 20000 && h.sinks[0].delivered.size() < 63; ++i)
        h.net.step(now++);
    EXPECT_EQ(h.sinks[0].delivered.size(), 63u);
}

TEST(Network, BackPressureBlocksWithoutLoss)
{
    Harness h(8);
    h.sinks[1].refuse = true;
    Cycle now = 0;
    const auto msg = makeMessage(h.net, 0, 1, 4);
    injectWhole(h.net, msg, now);
    for (int i = 0; i < 100; ++i)
        h.net.step(now++);
    EXPECT_TRUE(h.net.busy());  // the worm is stuck, not dropped
    h.sinks[1].refuse = false;
    for (int i = 0; i < 100 && h.sinks[1].delivered.empty(); ++i)
        h.net.step(now++);
    EXPECT_EQ(h.sinks[1].delivered.size(), 1u);
    EXPECT_FALSE(h.net.busy());
}

TEST(Network, PriorityOneOvertakesAtChannels)
{
    // Saturate P0 towards node 1, then inject one P1 message from the
    // same source; P1 must not wait for the whole P0 backlog.
    Harness h(8);
    Cycle now = 0;
    std::vector<MsgHandle> bulk;
    for (int i = 0; i < 6; ++i)
        bulk.push_back(makeMessage(h.net, 0, 1, 8, 0));
    const auto urgent = makeMessage(h.net, 0, 1, 2, 1);
    for (const auto m : bulk)
        injectWhole(h.net, m, now);
    injectWhole(h.net, urgent, now);
    Cycle urgent_at = 0, last_bulk_at = 0;
    for (int i = 0; i < 2000; ++i) {
        h.net.step(now++);
        if (!urgent_at && h.net.pool().get(urgent).deliverCycle)
            urgent_at = h.net.pool().get(urgent).deliverCycle;
        if (h.net.pool().get(bulk.back()).deliverCycle)
            last_bulk_at = h.net.pool().get(bulk.back()).deliverCycle;
        if (urgent_at && last_bulk_at)
            break;
    }
    ASSERT_GT(urgent_at, 0u);
    ASSERT_GT(last_bulk_at, 0u);
    EXPECT_LT(urgent_at, last_bulk_at);
}

TEST(Network, BisectionCountsPositiveCrossings)
{
    Harness h(8);  // 2x2x2
    Cycle now = 0;
    injectWhole(h.net, makeMessage(h.net, 0, 1, 4), now);  // crosses x
    injectWhole(h.net, makeMessage(h.net, 0, 2, 4), now);  // y only
    for (int i = 0; i < 200; ++i)
        h.net.step(now++);
    EXPECT_EQ(h.net.stats().bisectionFlitsPos, 2u * 4u);  // body flits
    EXPECT_EQ(h.net.stats().bisectionFlitsNeg, 0u);
}

TEST(Network, SelfMessageLoopsThroughTheRouter)
{
    Harness h(8);
    Cycle now = 0;
    const auto msg = makeMessage(h.net, 3, 3, 2);
    injectWhole(h.net, msg, now);
    for (int i = 0; i < 50 && h.sinks[3].delivered.empty(); ++i)
        h.net.step(now++);
    EXPECT_EQ(h.sinks[3].delivered.size(), 1u);
}

/** Property: random traffic is fully delivered, any mesh shape. */
class TrafficSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TrafficSweep, EverythingArrives)
{
    Harness h(GetParam());
    Cycle now = 0;
    std::uint64_t x = GetParam() * 0x9e3779b97f4a7c15ull + 1;
    unsigned sent = 0;
    for (int i = 0; i < 100; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        const NodeId src = static_cast<NodeId>(x % h.dims.nodes());
        const NodeId dst = static_cast<NodeId>((x >> 13) % h.dims.nodes());
        const unsigned words = 1 + static_cast<unsigned>((x >> 29) % 6);
        injectWhole(h.net, makeMessage(h.net, src, dst, words), now);
        ++sent;
        h.net.step(now++);
    }
    for (int i = 0; i < 20000 && h.net.stats().messagesDelivered < sent;
         ++i)
        h.net.step(now++);
    EXPECT_EQ(h.net.stats().messagesDelivered, sent);
    EXPECT_FALSE(h.net.busy());
    // Every delivered message went back to the pool: live = the
    // handles this test still holds in `bulk`-style locals (none here
    // survive delivery), i.e. released == delivered.
    EXPECT_EQ(h.net.pool().stats().released, sent);
    EXPECT_EQ(h.net.pool().stats().liveNow, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrafficSweep,
                         ::testing::Values(2u, 4u, 8u, 32u, 64u, 256u));

} // namespace
} // namespace jmsim
