/** @file Unit tests for tagged words, headers, and descriptors. */

#include <gtest/gtest.h>

#include "isa/word.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

TEST(Word, IntRoundTrip)
{
    const Word w = Word::makeInt(-123456);
    EXPECT_EQ(w.tag, Tag::Int);
    EXPECT_EQ(w.asInt(), -123456);
}

TEST(Word, TagPredicates)
{
    EXPECT_TRUE(Word::makeCfut().isFuture());
    EXPECT_TRUE((Word{0, Tag::Fut}).isFuture());
    EXPECT_FALSE(Word::makeInt(0).isFuture());
    EXPECT_FALSE(Word::makeNil().isFuture());
}

TEST(Word, TagNamesAreDistinct)
{
    for (unsigned i = 0; i < kNumTags; ++i) {
        for (unsigned j = i + 1; j < kNumTags; ++j) {
            EXPECT_STRNE(tagName(static_cast<Tag>(i)),
                         tagName(static_cast<Tag>(j)));
        }
    }
}

TEST(MsgHeader, RoundTrip)
{
    MsgHeader hdr;
    hdr.handlerIp = 1234;
    hdr.length = 17;
    const Word w = hdr.encode();
    EXPECT_EQ(w.tag, Tag::Msg);
    const MsgHeader back = MsgHeader::decode(w);
    EXPECT_EQ(back.handlerIp, 1234u);
    EXPECT_EQ(back.length, 17u);
}

TEST(MsgHeader, RejectsOverflow)
{
    MsgHeader hdr;
    hdr.handlerIp = MsgHeader::kMaxIp + 1;
    hdr.length = 1;
    EXPECT_THROW(hdr.encode(), FatalError);
    hdr.handlerIp = 0;
    hdr.length = MsgHeader::kMaxLength + 1;
    EXPECT_THROW(hdr.encode(), FatalError);
}

TEST(SegDesc, SmallFormatExactBase)
{
    // Message segments have arbitrary SRAM bases.
    SegDesc d{3077, 9};
    ASSERT_TRUE(d.encodable());
    const SegDesc back = SegDesc::decode(d.encode());
    EXPECT_EQ(back.base, 3077u);
    EXPECT_EQ(back.length, 9u);
}

TEST(SegDesc, LargeFormatAlignedBase)
{
    SegDesc d{0x10000, 65536};
    ASSERT_TRUE(d.encodable());
    const SegDesc back = SegDesc::decode(d.encode());
    EXPECT_EQ(back.base, 0x10000u);
    EXPECT_EQ(back.length, 65536u);
}

TEST(SegDesc, RejectsUnalignedLarge)
{
    SegDesc d{0x10001, 65536};  // > small max, base not 64-aligned
    EXPECT_FALSE(d.encodable());
    EXPECT_THROW(d.encode(), FatalError);
}

TEST(SegDesc, Contains)
{
    SegDesc d{100, 5};
    EXPECT_TRUE(d.contains(0));
    EXPECT_TRUE(d.contains(4));
    EXPECT_FALSE(d.contains(5));
}

/** Property sweep: every in-range (base, length) pair round-trips. */
class SegDescSweep : public ::testing::TestWithParam<std::pair<Addr, std::uint32_t>>
{
};

TEST_P(SegDescSweep, RoundTrip)
{
    const auto [base, length] = GetParam();
    SegDesc d{base, length};
    ASSERT_TRUE(d.encodable());
    const SegDesc back = SegDesc::decode(d.encode());
    EXPECT_EQ(back.base, base);
    EXPECT_EQ(back.length, length);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, SegDescSweep,
    ::testing::Values(std::pair<Addr, std::uint32_t>{0, 0},
                      std::pair<Addr, std::uint32_t>{4095, 4095},
                      std::pair<Addr, std::uint32_t>{64, 262144 - 64},
                      std::pair<Addr, std::uint32_t>{SegDesc::kMaxBase, 1},
                      std::pair<Addr, std::uint32_t>{3072, 512},
                      std::pair<Addr, std::uint32_t>{0x10000, 100000}));

} // namespace
} // namespace jmsim
