/** @file Integration tests: assemble, load, run whole machines. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

namespace jmsim
{
namespace
{

MachineConfig
smallConfig(unsigned nodes)
{
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(nodes);
    return cfg;
}

JMachine
makeMachine(unsigned nodes, const std::string &app, bool barrier = false)
{
    Program prog = assemble(jos::withKernel("app.jasm", app, barrier));
    return JMachine(smallConfig(nodes), std::move(prog));
}

TEST(Machine, SingleNodeArithmetic)
{
    // 2 + 3*4 = 14, written to the host buffer.
    JMachine m = makeMachine(1, R"(
boot:
    MOVEI R0, 2
    MOVEI R1, 3
    MOVEI R2, 4
    MUL R1, R1, R2
    ADD R0, R0, R1
    OUT R0
    HALT
)");
    const RunResult r = m.run(1000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    ASSERT_EQ(m.node(0).processor().hostOut().size(), 1u);
    EXPECT_EQ(m.node(0).processor().hostOut()[0].asInt(), 14);
}

TEST(Machine, MemoryAndLiterals)
{
    JMachine m = makeMachine(1, R"(
.equ TBL, 256
boot:
    LDL A0, seg(TBL, 16)
    MOVEI R0, 7
    ST [A0+3], R0
    LD R1, [A0+3]
    ADDI R1, R1, #1
    ST [A0+4], R1
    LDX R2, [A0+R1]       ; TBL[8] is uninitialized -> do not read; use R1
    HALT
.org TBL
.word 0,0,0,0,0,0,0,0,42
)");
    // Pre-run poke then run.
    const RunResult r = m.run(1000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    EXPECT_EQ(m.peekInt(0, 256 + 3), 7);
    EXPECT_EQ(m.peekInt(0, 256 + 4), 8);
    EXPECT_EQ(m.peekInt(0, 256 + 8), 42);
}

TEST(Machine, SelfMessageDispatch)
{
    // boot sends a message to itself; the handler stores the payload.
    JMachine m = makeMachine(1, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NNR
    SEND0 R0
    LDL R1, hdr(handler, 2)
    LDL R2, #99
    SEND20E R1, R2
    CALL A2, jos_park
handler:
    LD R0, [A3+1]
    OUT R0
    SUSPEND
)");
    const RunResult r = m.run(2000);
    EXPECT_EQ(r.reason, StopReason::Quiescent);
    ASSERT_EQ(m.node(0).processor().hostOut().size(), 1u);
    EXPECT_EQ(m.node(0).processor().hostOut()[0].asInt(), 99);
}

TEST(Machine, TwoNodePing)
{
    // Node 0 pings node 1; node 1's handler acks back; node 0's ack
    // handler records the round trip.
    JMachine m = makeMachine(2, R"(
.equ FLAG, 4032
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, worker
    ; node 0: send ping to node 1
    MOVEI R0, 1
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(ping_handler, 2)
    GETSP R2, NNR          ; my address, for the reply
    SEND20E R1, R2
worker:
    CALL A2, jos_park

ping_handler:
    LD R0, [A3+1]          ; requester address
    SEND0 R0
    LDL R1, hdr(ack_handler, 2)
    LDL R2, #1
    SEND20E R1, R2
    SUSPEND

ack_handler:
    LD R0, [A3+1]
    OUT R0
    SUSPEND
)");
    const RunResult r = m.run(5000);
    EXPECT_EQ(r.reason, StopReason::Quiescent);
    ASSERT_EQ(m.node(0).processor().hostOut().size(), 1u);
    EXPECT_EQ(m.node(0).processor().hostOut()[0].asInt(), 1);
    // The handler ran on node 1.
    EXPECT_GT(m.node(1).processor().stats().dispatches, 0u);
}

TEST(Machine, BarrierAcrossNodes)
{
    // All nodes meet at a barrier 3 times; each then reports its id.
    JMachine m = makeMachine(8, R"(
boot:
    CALL A2, jos_init
    CALL A2, bar_barrier
    CALL A2, bar_barrier
    CALL A2, bar_barrier
    GETSP R0, NODEID
    OUT R0
    HALT
)", true);
    const RunResult r = m.run(100000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    for (NodeId id = 0; id < 8; ++id) {
        ASSERT_EQ(m.node(id).processor().hostOut().size(), 1u) << id;
        EXPECT_EQ(m.node(id).processor().hostOut()[0].asInt(),
                  static_cast<std::int32_t>(id));
    }
}

TEST(Machine, CfutSuspendAndRestart)
{
    // Node 0's background thread reads a cfut slot and suspends; node 1
    // delays (so the fault deterministically happens first) and then
    // sends a producer message whose handler delivers the value via
    // jos_put, restarting the suspended thread.
    JMachine m = makeMachine(2, R"(
.equ SLOT, 4032
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, producer_node
    ; node 0: consume. The load faults and suspends this thread.
    LDL A0, seg(SLOT, 16)
    LD R0, [A0+0]
    OUT R0
    HALT

producer_node:
    ; node 1: delay ~500 cycles, then poke node 0.
    LDL R0, #200
delay:
    ADDI R0, R0, #-1
    GTI R1, R0, #0
    BT R1, delay
    MOVEI R0, 0
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(producer, 1)
    SEND0E R1
    HALT

producer:
    LDL A0, seg(SLOT, 16)
    MOVEI R0, 0
    LDL R1, #777
    CALL A2, jos_put
    SUSPEND

.org SLOT
.word cfut
)");
    const RunResult r = m.run(10000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    ASSERT_EQ(m.node(0).processor().hostOut().size(), 1u);
    EXPECT_EQ(m.node(0).processor().hostOut()[0].asInt(), 777);
    EXPECT_EQ(m.node(0).processor().stats()
                  .faults[static_cast<unsigned>(FaultKind::CfutRead)],
              1u);
    // The context block was recycled onto the free list.
    EXPECT_EQ(m.peekInt(0, jos::kGlobalsBase + 4),
              static_cast<std::int32_t>(jos::kCtxPoolBase));
}

} // namespace
} // namespace jmsim
