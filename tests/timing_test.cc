/** @file Cost-model anchor tests: every timing constant the paper
 * states is verified against measured cycle stamps. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

/** Run a timed region and return its cycle count (harness-corrected). */
std::int32_t
timeRegion(const std::string &setup, const std::string &region)
{
    const std::string src = "boot:\n" + setup + R"(
    GETSP R2, CYCLELO
)" + region + R"(
    GETSP R3, CYCLELO
    SUB R3, R3, R2
    OUT R3
    HALT
sink:
    SUSPEND
)";
    Program prog = assemble(jos::withKernel("t.jasm", src, false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    m.run(100000);
    const auto &out = m.node(0).processor().hostOut();
    EXPECT_EQ(out.size(), 1u);
    // Subtract the closing GETSP (1 cycle).
    return out.empty() ? -1 : out[0].asInt() - 1;
}

TEST(Timing, RegisterRegisterIsOneCycle)
{
    // "Most instructions can operate in one cycle if both operands are
    // in registers" -- peak 12.5 MIPS at 12.5 MHz.
    EXPECT_EQ(timeRegion("    MOVEI R0, 1\n    MOVEI R1, 2\n",
                         "    ADD R0, R0, R1\n    ADD R0, R0, R1\n"
                         "    ADD R0, R0, R1\n    ADD R0, R0, R1\n"),
              4);
}

TEST(Timing, InternalMemoryOperandIsTwoCycles)
{
    // "...two cycles if one operand is in internal memory."
    EXPECT_EQ(timeRegion("    LDL A0, seg(256,16)\n    MOVEI R0, 5\n"
                         "    ST [A0+0], R0\n",
                         "    LD R1, [A0+0]\n    LD R1, [A0+0]\n"),
              4);
    EXPECT_EQ(timeRegion("    LDL A0, seg(256,16)\n    MOVEI R0, 5\n"
                         "    ST [A0+0], R0\n    MOVEI R1, 1\n",
                         "    ADDM R1, [A0+0]\n"),
              2);
}

TEST(Timing, ExternalMemoryIsSixCycles)
{
    // "External memory latency (6 cycles)..."
    EXPECT_EQ(timeRegion("    LDL A0, seg(73728,16)\n    MOVEI R0, 5\n"
                         "    ST [A0+0], R0\n",
                         "    LD R1, [A0+0]\n"),
              6);
}

TEST(Timing, TakenBranchAddsOneCycle)
{
    // An unconditional branch to the next word costs 1 + the taken
    // penalty; an untaken conditional costs 1.
    EXPECT_EQ(timeRegion("", "    BR skip\nskip:\n"), 2);
    // The untaken conditional still pays 1 cycle for the alignment
    // filler before the word-aligned label.
    EXPECT_EQ(timeRegion("    MOVEI R0, 0\n", "    BT R0, skip\nskip:\n"),
              2);
}

TEST(Timing, XlateHitIsThreeCycles)
{
    // "A successful xlate takes three cycles."
    EXPECT_EQ(timeRegion("    LDL R0, ptr(4)\n    MOVEI R1, 9\n"
                         "    ENTER R0, R1\n",
                         "    XLATE R1, R0\n"),
              3);
}

TEST(Timing, SendInjectsTwoWordsPerCycle)
{
    // "...inject messages at a rate of up to 2 words per cycle":
    // 1 destination + 6 payload words in 4 instruction cycles. The
    // receiver is a remote node so its dispatch cannot preempt the
    // measuring thread.
    Program prog = assemble(jos::withKernel("t.jasm", R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    MOVEI R0, 1
    CALL A2, jos_nnr
    LDL R1, hdr(sink, 6)
    MOVEI A0, 0
    GETSP R2, CYCLELO
    SEND0 R0
    SEND20 R1, A0
    SEND20 A0, A0
    SEND20E A0, A0
    GETSP R3, CYCLELO
    SUB R3, R3, R2
    OUT R3
    HALT
park:
    CALL A2, jos_park
sink:
    SUSPEND
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(2);
    JMachine m(cfg, std::move(prog));
    m.run(100000);
    const auto &out = m.node(0).processor().hostOut();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].asInt() - 1, 4);
}

TEST(Timing, DispatchIsFourCycles)
{
    // Arrival-to-handler-stamp, with the send/network path measured
    // separately: total = net + dispatch + GETSP. We verify by
    // sweeping the configured dispatch cost and observing a 1:1 shift.
    const auto run_with = [](unsigned dispatch) {
        Program prog = assemble(jos::withKernel("t.jasm", R"(
boot:
    CALL A2, jos_init
    GETSP R0, CYCLELO
    OUT R0
    GETSP R0, NNR
    SEND0 R0
    LDL R1, hdr(h, 1)
    SEND0E R1
    CALL A2, jos_park
h:
    GETSP R0, CYCLELO
    OUT R0
    SUSPEND
)",
                                                false));
        MachineConfig cfg;
        cfg.dims = MeshDims::forNodeCount(1);
        cfg.proc.dispatchCycles = dispatch;
        JMachine m(cfg, std::move(prog));
        m.run(10000);
        const auto &out = m.node(0).processor().hostOut();
        return out[1].asInt() - out[0].asInt();
    };
    EXPECT_EQ(run_with(8) - run_with(4), 4);
    EXPECT_EQ(run_with(4) - run_with(2), 2);
}

TEST(Timing, WideInstructionsCostTwoCycles)
{
    // 2 cycles for the wide LDL plus 1 for the pair-alignment filler
    // that precedes it -- the paper's "instruction alignment issues"
    // are part of the model.
    EXPECT_EQ(timeRegion("", "    LDL R0, #123\n"), 3);
}

// The sink handler used by the injection test.
// (Assembled into every program above; unused elsewhere.)
TEST(Timing, PeakRateMatchesPaperPeakMips)
{
    // A pure reg-reg loop body (unrolled) executes 1 instruction per
    // cycle: the paper's 12.5 MIPS peak at 12.5 MHz.
    Program prog = assemble(jos::withKernel("t.jasm", R"(
boot:
    MOVEI R0, 0
    MOVEI R1, 1
    GETSP R2, CYCLELO
    ADD R0, R0, R1
    ADD R0, R0, R1
    ADD R0, R0, R1
    ADD R0, R0, R1
    ADD R0, R0, R1
    ADD R0, R0, R1
    ADD R0, R0, R1
    ADD R0, R0, R1
    GETSP R3, CYCLELO
    SUB R3, R3, R2
    OUT R3
    HALT
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    m.run(10000);
    EXPECT_EQ(m.node(0).processor().hostOut()[0].asInt(), 9);
}

} // namespace
} // namespace jmsim
