/** @file Table-driven semantics tests covering the whole instruction
 * set: each case runs a tiny program and checks its OUT results. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

struct Case
{
    const char *name;
    const char *body;    ///< placed between boot: and HALT
    std::vector<std::int32_t> expect;
};

std::vector<std::int32_t>
run(const std::string &body)
{
    Program prog = assemble(jos::withKernel(
        "t.jasm", "boot:\n" + body + "\n    HALT\n", false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    const RunResult r = m.run(100000);
    EXPECT_EQ(r.reason, StopReason::AllHalted);
    std::vector<std::int32_t> out;
    for (const Word &w : m.node(0).processor().hostOut())
        out.push_back(w.asInt());
    return out;
}

class Semantics : public ::testing::TestWithParam<Case>
{
};

TEST_P(Semantics, Matches)
{
    const Case &c = GetParam();
    EXPECT_EQ(run(c.body), c.expect) << c.name;
}

const Case kAlu[] = {
    {"add", "MOVEI R0,3\n MOVEI R1,4\n ADD R2,R0,R1\n OUT R2", {7}},
    {"sub", "MOVEI R0,3\n MOVEI R1,4\n SUB R2,R0,R1\n OUT R2", {-1}},
    {"mul_negative", "MOVEI R0,-3\n MOVEI R1,4\n MUL R2,R0,R1\n OUT R2",
     {-12}},
    {"and", "MOVEI R0,12\n MOVEI R1,10\n AND R2,R0,R1\n OUT R2", {8}},
    {"or", "MOVEI R0,12\n MOVEI R1,10\n OR R2,R0,R1\n OUT R2", {14}},
    {"xor", "MOVEI R0,12\n MOVEI R1,10\n XOR R2,R0,R1\n OUT R2", {6}},
    {"not", "MOVEI R0,0\n NOT R1,R0\n OUT R1", {-1}},
    {"neg", "MOVEI R0,5\n NEG R1,R0\n OUT R1", {-5}},
    {"ash_left", "MOVEI R0,3\n MOVEI R1,4\n ASH R2,R0,R1\n OUT R2", {48}},
    {"ash_right_arith",
     "MOVEI R0,-32\n MOVEI R1,-2\n ASH R2,R0,R1\n OUT R2", {-8}},
    {"lsh_right_logical",
     "MOVEI R0,-1\n LDL R1,#-28\n LSH R2,R0,R1\n OUT R2", {15}},
    {"shift_overwide", "MOVEI R0,5\n LDL R1,#40\n LSH R2,R0,R1\n OUT R2",
     {0}},
    {"addi_range", "MOVEI R0,0\n ADDI R0,R0,#15\n ADDI R0,R0,#-16\n OUT R0",
     {-1}},
    {"andi", "MOVEI R0,13\n ANDI R1,R0,#7\n OUT R1", {5}},
    {"ori_xori", "MOVEI R0,8\n ORI R1,R0,#1\n XORI R1,R1,#15\n OUT R1",
     {6}},
    {"ashi_lshi", "MOVEI R0,1\n ASHI R0,R0,#4\n LSHI R0,R0,#-2\n OUT R0",
     {4}},
};

const Case kCompare[] = {
    {"lt_le", "MOVEI R0,2\n MOVEI R1,2\n LT R2,R0,R1\n OUT R2\n"
              " LE R2,R0,R1\n OUT R2", {0, 1}},
    {"gt_ge", "MOVEI R0,3\n MOVEI R1,2\n GT R2,R0,R1\n OUT R2\n"
              " GE R2,R1,R0\n OUT R2", {1, 0}},
    {"eq_ne_tags",
     "MOVEI R0,0\n LDL R1,nil\n EQ R2,R0,R1\n OUT R2\n NE R2,R0,R1\n"
     " OUT R2", {0, 1}},  // same bits, different tag
    {"immediate_compares",
     "MOVEI R0,-4\n LTI R1,R0,#0\n OUT R1\n GEI R1,R0,#-4\n OUT R1\n"
     " NEI R1,R0,#-4\n OUT R1", {1, 1, 0}},
};

const Case kMemory[] = {
    {"ld_st_offsets",
     "LDL A0, seg(256,64)\n MOVEI R0,9\n ST [A0+63],R0\n LD R1,[A0+63]\n"
     " OUT R1", {9}},
    {"ldx_stx",
     "LDL A0, seg(256,64)\n MOVEI R0,5\n MOVEI R1,11\n STX [A0+R0],R1\n"
     " LDX R2,[A0+R0]\n OUT R2", {11}},
    {"mem_ops",
     "LDL A0, seg(256,16)\n MOVEI R0,10\n ST [A0+0],R0\n MOVEI R1,4\n"
     " ADDM R1,[A0+0]\n OUT R1\n SUBM R1,[A0+0]\n OUT R1\n"
     " MOVEI R1,6\n ANDM R1,[A0+0]\n OUT R1\n ORM R1,[A0+0]\n OUT R1\n"
     " XORM R1,[A0+0]\n OUT R1",
     {14, 4, 2, 10, 0}},
    {"store_any_tag",
     "LDL A0, seg(256,16)\n LDL R0, ptr(7)\n ST [A0+1],R0\n"
     " LDRAW R1,[A0+1]\n RTAG R1,R1\n OUT R1",
     {static_cast<std::int32_t>(Tag::Ptr)}},
};

const Case kControl[] = {
    {"br_skips", "MOVEI R0,1\n BR over\n OUT R0\nover:\n MOVEI R0,2\n"
                 " OUT R0", {2}},
    {"bt_bf",
     "MOVEI R0,1\n EQI R1,R0,#1\n BT R1,yes\n OUT R0\nyes:\n"
     " EQI R1,R0,#2\n BF R1,no\n OUT R0\nno:\n MOVEI R0,3\n OUT R0",
     {3}},
    {"nested_calls",
     "MOVEI R0,1\n CALL A2, f\n OUT R0\n BR end\n"
     "f:\n ADDI R0,R0,#1\n MOVE A1,A2\n CALL A2, g\n MOVE A2,A1\n"
     " JMP A2\n"
     "g:\n ADDI R0,R0,#10\n JMP A2\n"
     "end:", {12}},
    {"getsp_nodes", "GETSP R0, NODES\n OUT R0", {1}},
    {"getsp_dims", "GETSP R0, DIMS\n OUT R0", {1 | (1 << 5) | (1 << 10)}},
};

const Case kTags[] = {
    {"wtag_rtag_every_tag",
     "MOVEI R0,3\n WTAG R1,R0,#sym\n RTAG R2,R1\n OUT R2\n"
     " WTAG R1,R0,#ctx\n RTAG R2,R1\n OUT R2\n"
     " WTAG R1,R0,#user2\n RTAG R2,R1\n OUT R2",
     {static_cast<std::int32_t>(Tag::Sym),
      static_cast<std::int32_t>(Tag::Ctx),
      static_cast<std::int32_t>(Tag::User2)}},
    {"setseg_mkhdr",
     "LDL R0,#256\n MOVEI R1,16\n SETSEG A0,R0,R1\n MOVEI R2,7\n"
     " ST [A0+15],R2\n LD R3,[A0+15]\n OUT R3\n"
     " LDL R0, ip(boot)\n MOVEI R1,5\n MKHDR R2,R0,R1\n RTAG R3,R2\n"
     " OUT R3",
     {7, static_cast<std::int32_t>(Tag::Msg)}},
    {"enter_xlate_probe",
     "LDL R0, ptr(1)\n MOVEI R1,42\n ENTER R0,R1\n XLATE R2,R0\n OUT R2\n"
     " LDL R0, sym(9)\n MOVEI R1,43\n ENTER R0,R1\n XLATE R2,R0\n OUT R2",
     {42, 43}},
};

INSTANTIATE_TEST_SUITE_P(Alu, Semantics, ::testing::ValuesIn(kAlu),
                         [](const auto &info) { return info.param.name; });
INSTANTIATE_TEST_SUITE_P(Compare, Semantics,
                         ::testing::ValuesIn(kCompare),
                         [](const auto &info) { return info.param.name; });
INSTANTIATE_TEST_SUITE_P(Memory, Semantics, ::testing::ValuesIn(kMemory),
                         [](const auto &info) { return info.param.name; });
INSTANTIATE_TEST_SUITE_P(Control, Semantics,
                         ::testing::ValuesIn(kControl),
                         [](const auto &info) { return info.param.name; });
INSTANTIATE_TEST_SUITE_P(Tags, Semantics, ::testing::ValuesIn(kTags),
                         [](const auto &info) { return info.param.name; });

// ---- fault-raising behaviours, table-driven ----

struct FaultCase
{
    const char *name;
    const char *body;
};

class Faulting : public ::testing::TestWithParam<FaultCase>
{
};

TEST_P(Faulting, DiesWithoutAHandler)
{
    const std::string src =
        std::string("boot:\n") + GetParam().body + "\n    HALT\n";
    Program prog = assemble(jos::withKernel("t.jasm", src, false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    EXPECT_THROW(m.run(100000), FatalError) << GetParam().name;
}

const FaultCase kFaults[] = {
    {"alu_on_addr_tag", "LDL A0, seg(256,16)\n ADD R0, A0, A0"},
    {"alu_on_nil", "LDL R0, nil\n ADDI R0, R0, #1"},
    {"jmp_to_data", "MOVEI R0, 3\n WTAG R0, R0, #sym\n JMP R0"},
    {"ld_through_int", "MOVEI R0, 5\n MOVE A0, R0\n LD R1, [A0+0]"},
    {"bounds_indexed",
     "LDL A0, seg(256,4)\n MOVEI R0,4\n LDX R1,[A0+R0]"},
    {"negative_index",
     "LDL A0, seg(256,4)\n MOVEI R0,-1\n LDX R1,[A0+R0]"},
    {"unmapped_gap",
     "LDL A0, seg(4032,8192)\n LDL R0,#4096\n LDX R1,[A0+R0]"},
    {"mkhdr_bad_length",
     "LDL R0, ip(boot)\n LDL R1,#8192\n MKHDR R2,R0,R1"},
    {"setseg_unencodable",
     "LDL R0,#73729\n LDL R1,#200000\n SETSEG A0,R0,R1"},
    {"cfut_load",
     "LDL A0, seg(256,4)\n LDL R0, cfut\n ST [A0+0],R0\n LD R1,[A0+0]"},
};

INSTANTIATE_TEST_SUITE_P(Kinds, Faulting, ::testing::ValuesIn(kFaults),
                         [](const auto &info) { return info.param.name; });

} // namespace
} // namespace jmsim
